package rdfcube_test

import (
	"bytes"
	"strings"
	"testing"

	"rdfcube"
)

const ns = "http://example.org/"

const sample = `
@prefix : <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
:dwells rdfs:subPropertyOf :livesIn .
:alice a :Blogger ; :hasAge 28 ; :livesIn :Madrid .
:bob a :Blogger ; :hasAge 35 ; :dwells :NY .
:alice :wrotePost :p1 . :alice :wrotePost :p2 .
:bob :wrotePost :p3 .
:p1 :postedOn :s1 . :p2 :postedOn :s2 . :p3 :postedOn :s1 .
`

func loadSample(t *testing.T) *rdfcube.Graph {
	t.Helper()
	g := rdfcube.NewGraph()
	n, err := rdfcube.ReadNTriples(g, strings.NewReader(sample))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if n == 0 {
		t.Fatal("no triples loaded")
	}
	return g
}

func samplePrefixes() rdfcube.Prefixes {
	p := rdfcube.DefaultPrefixes()
	p[""] = ns
	return p
}

func TestPublicPipeline(t *testing.T) {
	g := loadSample(t)
	if added := rdfcube.Saturate(g); added == 0 {
		t.Error("saturation must derive bob's livesIn")
	}

	c, err := rdfcube.ParseQuery(
		"c(x, dcity) :- x rdf:type :Blogger, x :livesIn dcity", samplePrefixes())
	if err != nil {
		t.Fatal(err)
	}
	m, err := rdfcube.ParseQuery(
		"m(x, v) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn v", samplePrefixes())
	if err != nil {
		t.Fatal(err)
	}
	q, err := rdfcube.NewQuery(c, m, rdfcube.Count)
	if err != nil {
		t.Fatal(err)
	}
	ev := rdfcube.NewEvaluator(g)
	cube, err := ev.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	// alice: Madrid ↦ 2 posts; bob: NY ↦ 1 (via the entailed livesIn).
	cells := rdfcube.DecodeCube(cube, g)
	if len(cells) != 2 {
		t.Fatalf("cube = %v, want 2 cells", cells)
	}
	byCity := map[string]float64{}
	for _, cell := range cells {
		byCity[cell.Dims[0]] = cell.Value
	}
	if byCity[ns+"Madrid"] != 2 || byCity[ns+"NY"] != 1 {
		t.Errorf("cube = %v", byCity)
	}
}

func TestPublicOLAPOps(t *testing.T) {
	g := loadSample(t)
	rdfcube.Saturate(g)
	c, _ := rdfcube.ParseQuery(
		"c(x, dage, dcity) :- x rdf:type :Blogger, x :hasAge dage, x :livesIn dcity", samplePrefixes())
	m, _ := rdfcube.ParseQuery(
		"m(x, v) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn v", samplePrefixes())
	q, err := rdfcube.NewQuery(c, m, rdfcube.Count)
	if err != nil {
		t.Fatal(err)
	}
	ev := rdfcube.NewEvaluator(g)
	pres, err := ev.Pres(q)
	if err != nil {
		t.Fatal(err)
	}
	ansQ, err := ev.AnswerFromPres(q, pres)
	if err != nil {
		t.Fatal(err)
	}

	// Slice + rewrite agreement through the public API.
	sliced, err := rdfcube.SliceOp(q, "dage", rdfcube.NewInt(28))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ev.Answer(sliced)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := ev.DiceRewrite(sliced, ansQ)
	if err != nil {
		t.Fatal(err)
	}
	if !rdfcube.CubesEqual(direct, rewritten) {
		t.Error("slice rewrite disagrees")
	}

	// Drill-out through the public API.
	qOut, err := rdfcube.DrillOutOp(q, "dage")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ev.Answer(qOut)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ev.DrillOutRewrite(q, pres, "dage")
	if err != nil {
		t.Fatal(err)
	}
	if !rdfcube.CubesEqual(d2, r2) {
		t.Error("drill-out rewrite disagrees")
	}
}

func TestPublicSelectSyntax(t *testing.T) {
	g := loadSample(t)
	q, err := rdfcube.ParseSelect(`
		PREFIX : <http://example.org/>
		SELECT ?x WHERE { ?x rdf:type :Blogger }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rdfcube.EvalBGP(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("SELECT found %d bloggers, want 2", res.Len())
	}
}

func TestPublicWriteNTriples(t *testing.T) {
	g := loadSample(t)
	var buf bytes.Buffer
	if err := rdfcube.WriteNTriples(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2 := rdfcube.NewGraph()
	n, err := rdfcube.ReadNTriples(g2, &buf)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if n != g.Len() {
		t.Errorf("round trip %d triples, want %d", n, g.Len())
	}
}

func TestPublicTermConstructors(t *testing.T) {
	if !rdfcube.NewIRI("http://x").IsIRI() {
		t.Error("NewIRI")
	}
	if !rdfcube.NewInt(5).IsLiteral() || !rdfcube.NewBool(true).IsLiteral() {
		t.Error("literal constructors")
	}
	if f, err := rdfcube.AggByName("avg"); err != nil || f.Distributive() {
		t.Error("AggByName(avg)")
	}
}
