// Sensor analytics: a third domain exercising the public API — IoT
// sensors whose readings are classified by zone and floor. Sensors
// mounted on zone boundaries carry *two* zone values (multi-valued
// dimension), so drilling the zone dimension out demands Algorithm 1's
// deduplication: the example prints the correct cube next to the naive
// one and shows where they diverge.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rdfcube"
	"rdfcube/internal/core"
)

const ns = "http://sensors.example.org/"

func iri(local string) rdfcube.Term { return rdfcube.NewIRI(ns + local) }

func main() {
	g := rdfcube.NewGraph()
	rng := rand.New(rand.NewSource(7))
	add := func(s, p, o rdfcube.Term) { g.Add(rdfcube.NewTriple(s, p, o)) }

	const sensors = 200
	zones := []string{"north", "south", "east", "west"}
	for i := 0; i < sensors; i++ {
		s := iri(fmt.Sprintf("sensor%d", i))
		add(s, rdfcube.NewIRI(ns+"type"), iri("TempSensor"))
		z := rng.Intn(len(zones))
		add(s, iri("inZone"), iri(zones[z]))
		if rng.Float64() < 0.25 { // boundary sensor: second zone
			add(s, iri("inZone"), iri(zones[(z+1)%len(zones)]))
		}
		add(s, iri("onFloor"), rdfcube.NewInt(int64(1+rng.Intn(3))))
		for r := 0; r < 1+rng.Intn(5); r++ {
			reading := iri(fmt.Sprintf("reading%d_%d", i, r))
			add(s, iri("reported"), reading)
			add(reading, iri("celsius"), rdfcube.NewInt(int64(15+rng.Intn(20))))
		}
	}

	prefixes := rdfcube.DefaultPrefixes()
	prefixes[""] = ns
	classifier, err := rdfcube.ParseQuery(
		"c(s, dzone, dfloor) :- s :type :TempSensor, s :inZone dzone, s :onFloor dfloor", prefixes)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := rdfcube.ParseQuery(
		"m(s, v) :- s :type :TempSensor, s :reported r, r :celsius v", prefixes)
	if err != nil {
		log.Fatal(err)
	}
	q, err := rdfcube.NewQuery(classifier, measure, rdfcube.Sum)
	if err != nil {
		log.Fatal(err)
	}

	ev := rdfcube.NewEvaluator(g)
	pres, err := ev.Pres(q)
	if err != nil {
		log.Fatal(err)
	}
	ansQ, err := ev.AnswerFromPres(q, pres)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum-of-readings cube by (zone, floor): %d cells from %d pres rows\n\n",
		ansQ.Len(), pres.Len())

	// Drill out the zone dimension: total per floor.
	correct, err := ev.DrillOutRewrite(q, pres, "dzone")
	if err != nil {
		log.Fatal(err)
	}
	naive, err := core.NaiveDrillOutFromAns(q, ansQ, "dzone")
	if err != nil {
		log.Fatal(err)
	}
	correct.Sort()
	naive.Sort()

	fmt.Println("per-floor totals: Algorithm 1 (correct) vs naive re-aggregation:")
	nCells := rdfcube.DecodeCube(naive, g)
	for i, cell := range rdfcube.DecodeCube(correct, g) {
		naiveVal := 0.0
		if i < len(nCells) {
			naiveVal = nCells[i].Value
		}
		marker := ""
		if cell.Value != naiveVal {
			marker = "  <- naive overcounts boundary sensors"
		}
		fmt.Printf("  floor %v: correct %7g   naive %7g%s\n", cell.Dims, cell.Value, naiveVal, marker)
	}

	// Cross-check against direct evaluation (Proposition 2).
	qOut, err := rdfcube.DrillOutOp(q, "dzone")
	if err != nil {
		log.Fatal(err)
	}
	direct, err := ev.Answer(qOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlgorithm 1 agrees with direct evaluation: %v\n", rdfcube.CubesEqual(direct, correct))
}
