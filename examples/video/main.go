// Video analytics: the DRILL-IN scenario of Example 6 / Figure 3 at
// scale. A cube of view counts per website URL is refined by drilling in
// the supported-browser dimension; Algorithm 2 answers the refined cube
// from pres(Q) plus one auxiliary query instead of re-evaluating
// classifier and measure.
package main

import (
	"fmt"
	"log"
	"time"

	"rdfcube"
	"rdfcube/internal/benchmark"
	"rdfcube/internal/core"
	"rdfcube/internal/datagen"
)

func main() {
	cfg := datagen.DefaultVideoConfig()
	cfg.Videos = 20000
	cfg.Websites = 2000
	cfg.BrowsersPerSite = 3

	fmt.Printf("building video workload (%d videos, %d websites)...\n", cfg.Videos, cfg.Websites)
	wl, err := benchmark.BuildVideo(cfg, "sum")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  AnS instance: %d triples; pres(Q): %d rows; ans(Q): %d cells\n\n",
		wl.Inst.Len(), wl.Pres.Len(), wl.Ans.Len())

	// Show the auxiliary query Algorithm 2 derives (Definition 6).
	aux, err := core.AuxQuery(wl.Query.Classifier, "d3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auxiliary drill-in query:\n  %s\n\n", aux)

	qIn, err := rdfcube.DrillInOp(wl.Query, "d3")
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	direct, err := wl.Ev.Answer(qIn)
	if err != nil {
		log.Fatal(err)
	}
	dDur := time.Since(t0)

	t0 = time.Now()
	rewritten, err := wl.Ev.DrillInRewrite(wl.Query, wl.Pres, "d3")
	if err != nil {
		log.Fatal(err)
	}
	rDur := time.Since(t0)

	fmt.Printf("DRILL-IN d3 (browser): direct %v, Algorithm 2 %v (speedup %s)\n",
		dDur.Round(time.Microsecond), rDur.Round(time.Microsecond), benchmark.Speedup(dDur, rDur))
	fmt.Printf("refined cube: %d cells, strategies agree: %v\n\n",
		rewritten.Len(), rdfcube.CubesEqual(direct, rewritten))

	rewritten.Sort()
	fmt.Println("first cells of the refined cube (url, browser, views):")
	cells := rdfcube.DecodeCube(rewritten, wl.Inst)
	for i, cell := range cells {
		if i == 5 {
			break
		}
		fmt.Printf("  %v -> %g\n", cell.Dims, cell.Value)
	}
}
