// Interactive-style OLAP session: a Session manager answers a sequence
// of analytical queries, automatically detecting that each one is a
// SLICE, DICE, DRILL-OUT or DRILL-IN of an earlier, materialized query
// and answering it by rewriting instead of re-evaluation — the paper's
// problem statement (Figure 2) as a running system.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rdfcube"
	"rdfcube/internal/benchmark"
	"rdfcube/internal/datagen"
)

func main() {
	cfg := datagen.DefaultBloggerConfig()
	cfg.Bloggers = 10000
	cfg.Dimensions = 3
	fmt.Println("building blogger instance...")
	wl, err := benchmark.BuildBlogger(cfg, "sum")
	if err != nil {
		log.Fatal(err)
	}
	sess := rdfcube.NewSession(wl.Inst)
	base := wl.Query

	steps := []struct {
		name  string
		query func() (*rdfcube.Query, error)
	}{
		{"Q: base 3-dim cube", func() (*rdfcube.Query, error) { return base, nil }},
		{"SLICE age", func() (*rdfcube.Query, error) {
			return rdfcube.SliceOp(base, "d0", datagen.DimValue(0, 5))
		}},
		{"DICE age,city", func() (*rdfcube.Query, error) {
			return rdfcube.DiceOp(base, map[string][]rdfcube.Term{
				"d0": {datagen.DimValue(0, 1), datagen.DimValue(0, 2)},
				"d1": {datagen.DimValue(1, 0)},
			})
		}},
		{"DRILL-OUT gender", func() (*rdfcube.Query, error) {
			return rdfcube.DrillOutOp(base, "d2")
		}},
		{"Q again", func() (*rdfcube.Query, error) { return base, nil }},
	}

	fmt.Printf("\n%-20s %-18s %10s %8s\n", "step", "strategy", "time", "cells")
	for _, step := range steps {
		q, err := step.query()
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		cube, strategy, err := sess.Answer(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %-18s %10v %8d\n",
			step.name, strategy, time.Since(t0).Round(time.Microsecond), cube.Len())
	}

	fmt.Printf("\nstrategy totals: %v\n", sess.Stats())
	fmt.Println("only the first answer touched the AnS instance; every later one reused it.")

	// Show the final drill-out cube.
	qOut, err := rdfcube.DrillOutOp(base, "d2")
	if err != nil {
		log.Fatal(err)
	}
	cube, _, err := sess.Answer(qOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrill-out cube (first rows):")
	small := cube.Clone()
	small.Sort()
	if len(small.Rows) > 5 {
		small.Rows = small.Rows[:5]
	}
	px := datagen.Prefixes()
	px["d"] = datagen.NS
	if err := rdfcube.WriteCube(os.Stdout, small, wl.Inst, "text", px); err != nil {
		log.Fatal(err)
	}
}
