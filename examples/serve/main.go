// Client walkthrough of the rdfcubed HTTP API: load the blogger dataset
// into a running server, materialize the blogger analytical schema,
// then run an interactive-style OLAP session — the base cube, a DICE
// and a DRILL-OUT — printing which strategy answered each request. The
// transformed queries are answered by the server's shared view registry
// rewriting another request's materialized results (the paper's
// Figure 2 as a service): only the first cube touches the instance.
//
// Point it at a daemon with -addr, or run it standalone (it boots an
// in-process server on a loopback port):
//
//	go run ./examples/serve                  # self-contained
//	rdfcubed -addr :8344 &                   # or against a daemon
//	go run ./examples/serve -addr http://localhost:8344
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"rdfcube/internal/datagen"
	"rdfcube/internal/nt"
	"rdfcube/internal/server"
	"rdfcube/internal/store"
)

func main() {
	addr := flag.String("addr", "", "server base URL (empty: start an in-process server)")
	bloggers := flag.Int("bloggers", 5000, "blogger count for the generated dataset")
	flag.Parse()

	base := *addr
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := server.New(nil, server.Config{MaxViewBytes: 64 << 20})
		go http.Serve(ln, srv.Handler())
		base = "http://" + ln.Addr().String()
		fmt.Printf("started in-process rdfcubed on %s\n", base)
	}

	// 1. Load the blogger dataset (Figure 1's scenario) as N-Triples.
	cfg := datagen.DefaultBloggerConfig()
	cfg.Bloggers = *bloggers
	cfg.Dimensions = 2
	graph, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	w := nt.NewWriter(&buf)
	d := graph.Dict()
	graph.ForEach(store.Pattern{}, func(t store.IDTriple) bool {
		tr, _ := d.DecodeTriple(t.S, t.P, t.O)
		w.Write(tr)
		return true
	})
	w.Flush()
	var load server.LoadResponse
	mustCall(base+"/load", "text/plain", buf.Bytes(), &load)
	fmt.Printf("loaded %d triples (frozen=%v)\n", load.Triples, load.Frozen)

	// 2. Materialize the blogger analytical schema (RDFS-saturating the
	// base first, so :dwellsIn facts reach :livesIn).
	schema, err := datagen.BloggerSchema(2)
	if err != nil {
		log.Fatal(err)
	}
	schemaReq := server.SchemaRequest{Name: schema.Name, Saturate: true}
	for _, n := range schema.Nodes {
		schemaReq.Nodes = append(schemaReq.Nodes, server.SchemaNode{
			Class: n.Class.String(), Query: n.Query.String(),
		})
	}
	for _, e := range schema.Edges {
		schemaReq.Edges = append(schemaReq.Edges, server.SchemaEdge{
			Property: e.Property.String(), From: e.From.String(), To: e.To.String(),
			Query: e.Query.String(),
		})
	}
	raw, _ := json.Marshal(schemaReq)
	var mat server.MaterializeResponse
	mustCall(base+"/materialize", "application/json", raw, &mat)
	fmt.Printf("materialized %q: %d instance triples\n\n", mat.Name, mat.InstanceTriples)

	// 3. The OLAP session. Example 1's cube — bloggers by (age, city),
	// counting the sites they post on — then a DICE on young city
	// dwellers, then Example 5's drill-out (drop the city dimension;
	// Algorithm 1 deduplicates multi-valued facts before re-aggregating).
	cube := server.QueryRequest{
		Classifier: "c(x, age, city) :- x rdf:type :Blogger, x :hasAge age, x :livesIn city",
		Measure:    "m(x, site) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn site",
		Agg:        "count",
		Prefixes:   map[string]string{"": datagen.NS},
	}
	dice := cube
	dice.Ops = []server.OpSpec{{
		Op: "dice",
		Restrictions: map[string][]string{
			"age":  {"20", "21", "22", "23", "24"},
			"city": {":livesIn_val0", ":livesIn_val1"},
		},
	}}
	drill := cube
	drill.Ops = []server.OpSpec{{Op: "drillout", Dims: []string{"city"}}}

	fmt.Printf("%-28s %-18s %10s %8s\n", "request", "strategy", "time", "cells")
	for _, step := range []struct {
		name string
		req  server.QueryRequest
	}{
		{"Q: cube (age, city)", cube},
		{"DICE age∈20..24, 2 cities", dice},
		{"DRILL-OUT city (Example 5)", drill},
	} {
		raw, _ := json.Marshal(step.req)
		t0 := time.Now()
		var resp server.QueryResponse
		mustCall(base+"/query", "application/json", raw, &resp)
		fmt.Printf("%-28s %-18s %10v %8d\n",
			step.name, resp.Strategy, time.Since(t0).Round(time.Microsecond), resp.Cells)
	}

	// 4. Server-side strategy totals.
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		log.Fatal(err)
	}
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nserver strategies: %v\n", stats.Registry.Strategies)
	fmt.Printf("views registered: %d (~%d KiB)\n", stats.Registry.Entries, stats.Registry.Bytes>>10)
	fmt.Println("only the first request evaluated the instance; the DICE and the")
	fmt.Println("DRILL-OUT were rewritten from its registered pres(Q)/ans(Q).")
}

// mustCall POSTs a body and decodes the JSON response, aborting on any
// failure.
func mustCall(url, contentType string, body []byte, out any) {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		log.Fatalf("%s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("%s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatalf("%s: %v (%s)", url, err, data)
	}
}
