// Blogger analytics: the paper's running scenario at scale, end to end —
// synthetic base graph, RDFS saturation, analytical-schema
// materialization, a 3-dimensional cube, and all four OLAP operations
// answered both directly and by rewriting, with timings.
package main

import (
	"fmt"
	"log"
	"time"

	"rdfcube"
	"rdfcube/internal/benchmark"
	"rdfcube/internal/core"
	"rdfcube/internal/datagen"
)

func main() {
	cfg := datagen.DefaultBloggerConfig()
	cfg.Bloggers = 20000
	cfg.Dimensions = 3
	cfg.MultiValueProb = 0.15

	fmt.Printf("building blogger workload (%d bloggers, %d dims)...\n", cfg.Bloggers, cfg.Dimensions)
	wl, err := benchmark.BuildBlogger(cfg, "sum")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  base graph: %d triples, AnS instance: %d triples\n", wl.Base.Len(), wl.Inst.Len())
	fmt.Printf("  pres(Q): %d rows (built in %v), ans(Q): %d cells\n\n",
		wl.Pres.Len(), wl.PresBuild.Round(time.Millisecond), wl.Ans.Len())

	// SLICE on the age dimension.
	sliced, err := rdfcube.SliceOp(wl.Query, "d0", datagen.DimValue(0, 7))
	if err != nil {
		log.Fatal(err)
	}
	compare("SLICE d0=25",
		func() (*rdfcube.Cube, error) { return wl.Ev.Answer(sliced) },
		func() (*rdfcube.Cube, error) { return wl.Ev.DiceRewrite(sliced, wl.Ans) })

	// DICE on age and city.
	diced, err := rdfcube.DiceOp(wl.Query, map[string][]rdfcube.Term{
		"d0": {datagen.DimValue(0, 1), datagen.DimValue(0, 2)},
		"d1": {datagen.DimValue(1, 0), datagen.DimValue(1, 1), datagen.DimValue(1, 2)},
	})
	if err != nil {
		log.Fatal(err)
	}
	compare("DICE d0,d1",
		func() (*rdfcube.Cube, error) { return wl.Ev.Answer(diced) },
		func() (*rdfcube.Cube, error) { return wl.Ev.DiceRewrite(diced, wl.Ans) })

	// DRILL-OUT the third dimension (Algorithm 1).
	qOut, err := rdfcube.DrillOutOp(wl.Query, "d2")
	if err != nil {
		log.Fatal(err)
	}
	compare("DRILL-OUT d2",
		func() (*rdfcube.Cube, error) { return wl.Ev.Answer(qOut) },
		func() (*rdfcube.Cube, error) { return wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, "d2") })

	// The incorrect naive drill-out, for contrast.
	correct, err := wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, "d2")
	if err != nil {
		log.Fatal(err)
	}
	naive, err := core.NaiveDrillOutFromAns(wl.Query, wl.Ans, "d2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive ans(Q)-based drill-out: %d cells, identical to Algorithm 1: %v\n",
		naive.Len(), rdfcube.CubesEqual(correct, naive))
	fmt.Println("  (multi-valued dimensions make the naive rewrite double-count; see Example 5)")
}

func compare(label string, direct, rewrite func() (*rdfcube.Cube, error)) {
	t0 := time.Now()
	d, err := direct()
	if err != nil {
		log.Fatal(err)
	}
	dDur := time.Since(t0)
	t0 = time.Now()
	r, err := rewrite()
	if err != nil {
		log.Fatal(err)
	}
	rDur := time.Since(t0)
	fmt.Printf("%-14s direct %-10v rewrite %-10v speedup %5s cells %-6d equal=%v\n",
		label, dDur.Round(time.Microsecond), rDur.Round(time.Microsecond),
		benchmark.Speedup(dDur, rDur), r.Len(), rdfcube.CubesEqual(d, r))
}
