// Quickstart: build a tiny RDF graph, define an analytical query, answer
// it, then slice the resulting cube two ways — directly and by the
// paper's rewriting — and check they agree.
package main

import (
	"fmt"
	"log"
	"strings"

	"rdfcube"
)

const doc = `
@prefix : <http://example.org/> .
:alice a :Blogger ; :hasAge 28 ; :livesIn :Madrid .
:bob   a :Blogger ; :hasAge 35 ; :livesIn :NY .
:carol a :Blogger ; :hasAge 35 ; :livesIn :NY .
:alice :wrotePost :p1 . :alice :wrotePost :p2 . :alice :wrotePost :p3 .
:bob   :wrotePost :p4 .
:carol :wrotePost :p5 .
:p1 :postedOn :site1 . :p2 :postedOn :site1 . :p3 :postedOn :site2 .
:p4 :postedOn :site2 .
:p5 :postedOn :site3 .
`

func main() {
	g := rdfcube.NewGraph()
	if _, err := rdfcube.ReadNTriples(g, strings.NewReader(doc)); err != nil {
		log.Fatal(err)
	}

	prefixes := rdfcube.DefaultPrefixes()
	prefixes[""] = "http://example.org/"

	classifier, err := rdfcube.ParseQuery(
		"c(x, dage, dcity) :- x rdf:type :Blogger, x :hasAge dage, x :livesIn dcity", prefixes)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := rdfcube.ParseQuery(
		"m(x, vsite) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn vsite", prefixes)
	if err != nil {
		log.Fatal(err)
	}
	q, err := rdfcube.NewQuery(classifier, measure, rdfcube.Count)
	if err != nil {
		log.Fatal(err)
	}

	ev := rdfcube.NewEvaluator(g)
	cube, err := ev.Answer(q)
	if err != nil {
		log.Fatal(err)
	}
	cube.Sort()
	fmt.Println("posts-per-site cube (age, city, count):")
	for _, cell := range rdfcube.DecodeCube(cube, g) {
		fmt.Printf("  %v -> %g\n", cell.Dims, cell.Value)
	}

	// SLICE age=35, answered two ways.
	sliced, err := rdfcube.SliceOp(q, "dage", rdfcube.NewInt(35))
	if err != nil {
		log.Fatal(err)
	}
	direct, err := ev.Answer(sliced)
	if err != nil {
		log.Fatal(err)
	}
	rewritten, err := ev.DiceRewrite(sliced, cube)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslice age=35: direct %d cells, rewrite %d cells, equal=%v\n",
		direct.Len(), rewritten.Len(), rdfcube.CubesEqual(direct, rewritten))
	for _, cell := range rdfcube.DecodeCube(rewritten, g) {
		fmt.Printf("  %v -> %g\n", cell.Dims, cell.Value)
	}
}
