// Command benchrunner regenerates the experiment tables of DESIGN.md §4:
// for every OLAP operation it compares direct evaluation of the
// transformed analytical query against the paper's view-based rewriting,
// printing one table per experiment.
//
// Usage:
//
//	benchrunner [-experiment all|e1|e2|...|e13] [-scale N]
//	            [-json FILE] [-best-of N]
//
// -scale multiplies the default dataset sizes (1 ≈ seconds, 10 ≈ minutes).
// -json additionally writes the measured rows as a machine-readable
// report (conventionally BENCH_<experiment>.json) so successive PRs can
// track the performance trajectory; cmd/benchcompare gates CI on it.
// -best-of repeats every experiment N times and keeps each path's best
// time per row, damping scheduler noise in the recorded speedups.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rdfcube/internal/benchmark"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run: all, e1..e13")
	scale := flag.Int("scale", 1, "dataset size multiplier")
	jsonPath := flag.String("json", "", "write a machine-readable report to this file (e.g. BENCH_all.json)")
	bestOf := flag.Int("best-of", 1, "repetitions per experiment; each row keeps its best times")
	flag.Parse()
	if *bestOf < 1 {
		*bestOf = 1
	}

	var selected []string
	switch {
	case *experiment == "all":
		selected = benchmark.ExperimentOrder
	case benchmark.Experiments[*experiment] != nil:
		selected = []string{*experiment}
	default:
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	w := os.Stdout
	s := benchmark.ClampScale(*scale)
	report := benchmark.NewReport(s)
	for _, name := range selected {
		rows, err := benchmark.Experiments[name](w, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		// Repetitions print nothing; each folds its best times into the
		// first run's rows.
		for rep := 1; rep < *bestOf; rep++ {
			again, err := benchmark.Experiments[name](io.Discard, s)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %s (rep %d): %v\n", name, rep+1, err)
				os.Exit(1)
			}
			rows = benchmark.MergeBest(rows, again)
		}
		report.Add(name, rows)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote %s\n", *jsonPath)
	}
}
