// Command benchrunner regenerates the experiment tables of DESIGN.md §4:
// for every OLAP operation it compares direct evaluation of the
// transformed analytical query against the paper's view-based rewriting,
// printing one table per experiment.
//
// Usage:
//
//	benchrunner [-experiment all|e1|e2|e3|e4|e5|e6|e7|e8] [-scale N]
//
// -scale multiplies the default dataset sizes (1 ≈ seconds, 10 ≈ minutes).
package main

import (
	"flag"
	"fmt"
	"os"

	"rdfcube/internal/benchmark"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run: all, e1..e8")
	scale := flag.Int("scale", 1, "dataset size multiplier")
	flag.Parse()

	w := os.Stdout
	var err error
	switch *experiment {
	case "all":
		err = benchmark.RunAll(w, *scale)
	case "e1":
		_, err = benchmark.RunE1Slice(w, scaled(benchmark.SliceSizes, *scale))
	case "e2":
		_, err = benchmark.RunE2Dice(w, 10000**scale, benchmark.Selectivities)
	case "e3":
		_, err = benchmark.RunE3DrillOut(w, 5000**scale, benchmark.DimSweep)
	case "e4":
		_, err = benchmark.RunE4DrillIn(w, scaled(benchmark.SliceSizes, *scale))
	case "e5":
		_, err = benchmark.RunE5Summary(w, 10000**scale)
	case "e6":
		_, err = benchmark.RunE6NaiveError(w, 5000**scale, benchmark.MultiValueSweep)
	case "e7":
		_, err = benchmark.RunE7Materialize(w, scaled(benchmark.SliceSizes, *scale))
	case "e8":
		_, err = benchmark.RunE8Aggregations(w, 5000**scale, benchmark.AggNames)
	default:
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(1)
	}
}

func scaled(sizes []int, scale int) []int {
	out := make([]int, len(sizes))
	for i, s := range sizes {
		out[i] = s * scale
	}
	return out
}
