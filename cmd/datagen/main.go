// Command datagen writes a synthetic RDF dataset (the blogger scenario
// of Figure 1 or the video scenario of Figure 3) to an N-Triples file.
//
// Usage:
//
//	datagen -kind blogger -bloggers 10000 -out blogger.nt
//	datagen -kind video -videos 5000 -out video.nt
package main

import (
	"flag"
	"fmt"
	"os"

	"rdfcube/internal/datagen"
	"rdfcube/internal/nt"
	"rdfcube/internal/store"
)

func main() {
	kind := flag.String("kind", "blogger", "dataset kind: blogger or video")
	out := flag.String("out", "", "output file (default stdout)")
	seed := flag.Int64("seed", 1, "random seed")
	bloggers := flag.Int("bloggers", 1000, "blogger count (kind=blogger)")
	dims := flag.Int("dims", 2, "dimension properties per blogger (kind=blogger)")
	multiValue := flag.Float64("multivalue", 0.1, "multi-valued dimension probability")
	missing := flag.Float64("missing", 0.05, "missing dimension probability")
	videos := flag.Int("videos", 1000, "video count (kind=video)")
	websites := flag.Int("websites", 100, "website count (kind=video)")
	flag.Parse()

	var st *store.Store
	var err error
	switch *kind {
	case "blogger":
		cfg := datagen.DefaultBloggerConfig()
		cfg.Seed = *seed
		cfg.Bloggers = *bloggers
		cfg.Dimensions = *dims
		cfg.MultiValueProb = *multiValue
		cfg.MissingProb = *missing
		st, err = cfg.Generate()
	case "video":
		cfg := datagen.DefaultVideoConfig()
		cfg.Seed = *seed
		cfg.Videos = *videos
		cfg.Websites = *websites
		st, err = cfg.Generate()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	nw := nt.NewWriter(w)
	d := st.Dict()
	var wErr error
	st.ForEach(store.Pattern{}, func(t store.IDTriple) bool {
		tr, ok := d.DecodeTriple(t.S, t.P, t.O)
		if !ok {
			return true
		}
		if err := nw.Write(tr); err != nil {
			wErr = err
			return false
		}
		return true
	})
	if wErr == nil {
		wErr = nw.Flush()
	}
	if wErr != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", wErr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d triples\n", st.Len())
}
