// Command rdfcube answers an analytical query — optionally after an OLAP
// transformation — over an RDF graph loaded from an N-Triples file.
//
// The tool runs the full pipeline: load → RDFS saturation → evaluate the
// AnQ (the instance is the loaded graph itself; use -schema-free data
// such as the output of cmd/datagen piped through materialization, or
// any graph whose vocabulary the queries match).
//
// Usage:
//
//	rdfcube {-data graph.nt | -load graph.rdfc} \
//	   -classifier 'c(x, dage) :- x rdf:type :Blogger, x :hasAge dage' \
//	   -measure    'm(x, v) :- x :wrotePost p, p :postedOn v' \
//	   -agg count \
//	   [-prefix :=http://example.org/] \
//	   [-updates delta.nt] [-save graph.rdfc] \
//	   [-slice dage=28 | -drillout dage | -drillin d3] \
//	   [-explain]
//
// -updates streams a second N-Triples file into the graph *after* it has
// been frozen: the triples land in the store's delta overlay (the
// compacted indexes survive) and the query is answered over the merged
// base+delta view without a re-freeze — the CLI face of the delta-layer
// write path.
//
// -save writes the loaded (and saturated/updated) graph as a frozen v2
// snapshot — the same format the rdfcubed daemon checkpoints — and -load
// starts from such a snapshot instead of re-parsing N-Triples, skipping
// saturation and the sort/freeze work entirely. -load also accepts
// legacy v1 flat snapshots.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rdfcube"
	"rdfcube/internal/obs"
)

func main() {
	data := flag.String("data", "", "N-Triples input file (or use -load)")
	load := flag.String("load", "", "binary snapshot input file (v2 frozen or legacy v1)")
	save := flag.String("save", "", "write the prepared graph as a frozen v2 snapshot to this file")
	classifier := flag.String("classifier", "", "classifier query, datalog syntax (required)")
	measure := flag.String("measure", "", "measure query, datalog syntax (required)")
	aggName := flag.String("agg", "count", "aggregation: count, sum, avg, min, max, countdistinct")
	var prefixFlags multiFlag
	flag.Var(&prefixFlags, "prefix", "prefix binding name=IRI (repeatable)")
	sliceSpec := flag.String("slice", "", "SLICE: dim=value")
	diceSpec := flag.String("dice", "", "DICE: dim=v1|v2;dim2=v3|v4")
	drillOut := flag.String("drillout", "", "DRILL-OUT: comma-separated dimensions")
	drillIn := flag.String("drillin", "", "DRILL-IN: existential classifier variable")
	saturate := flag.Bool("saturate", true, "apply RDFS saturation before answering")
	updates := flag.String("updates", "", "N-Triples file applied after freezing, through the delta overlay")
	format := flag.String("format", "text", "output format: text, csv or json")
	explain := flag.Bool("explain", false, "print the traced per-operator plan tree (timings, rows, seeks) to stderr")
	flag.Parse()

	if (*data == "") == (*load == "") || *classifier == "" || *measure == "" {
		flag.Usage()
		os.Exit(2)
	}

	prefixes := rdfcube.DefaultPrefixes()
	for _, p := range prefixFlags {
		name, iri, ok := strings.Cut(p, "=")
		if !ok {
			die("bad -prefix %q, want name=IRI", p)
		}
		prefixes[strings.TrimSuffix(name, ":")] = iri
	}

	var g *rdfcube.Graph
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			die("%v", err)
		}
		g, err = rdfcube.OpenFrozenSnapshot(f)
		f.Close()
		if err != nil {
			die("loading snapshot %s: %v", *load, err)
		}
		// A snapshot normally holds an already-saturated graph, so no
		// saturation pass runs by default; passing -saturate explicitly
		// forces one (entailed triples land in the delta overlay — the
		// frozen layout survives).
		fmt.Fprintf(os.Stderr, "loaded snapshot: %d triples (frozen)\n", g.Len())
		saturateSet := false
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "saturate" {
				saturateSet = true
			}
		})
		if saturateSet && *saturate {
			fmt.Fprintf(os.Stderr, "saturation added %d triples\n", rdfcube.Saturate(g))
		}
	} else {
		f, err := os.Open(*data)
		if err != nil {
			die("%v", err)
		}
		g = rdfcube.NewGraph()
		n, err := rdfcube.ReadNTriples(g, f)
		f.Close()
		if err != nil {
			die("loading %s: %v", *data, err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d triples\n", n)
		if *saturate {
			fmt.Fprintf(os.Stderr, "saturation added %d triples\n", rdfcube.Saturate(g))
		}
		// Loading is done: compact onto the read-optimized sorted indexes.
		g.Freeze()
	}

	if *updates != "" {
		uf, err := os.Open(*updates)
		if err != nil {
			die("%v", err)
		}
		un, err := rdfcube.ReadNTriples(g, uf)
		uf.Close()
		if err != nil {
			die("loading updates %s: %v", *updates, err)
		}
		fmt.Fprintf(os.Stderr, "applied %d update triples (delta overlay: %d, frozen: %v)\n",
			un, g.DeltaLen(), g.IsFrozen())
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			die("%v", err)
		}
		if err := rdfcube.WriteFrozenSnapshot(g, f); err != nil {
			f.Close()
			die("saving snapshot %s: %v", *save, err)
		}
		if err := f.Close(); err != nil {
			die("saving snapshot %s: %v", *save, err)
		}
		fmt.Fprintf(os.Stderr, "saved frozen snapshot %s (%d triples)\n", *save, g.Len())
	}

	c, err := rdfcube.ParseQuery(*classifier, prefixes)
	if err != nil {
		die("classifier: %v", err)
	}
	m, err := rdfcube.ParseQuery(*measure, prefixes)
	if err != nil {
		die("measure: %v", err)
	}
	aggFn, err := rdfcube.AggByName(*aggName)
	if err != nil {
		die("%v", err)
	}
	q, err := rdfcube.NewQuery(c, m, aggFn)
	if err != nil {
		die("%v", err)
	}

	switch {
	case *sliceSpec != "":
		dim, val, ok := strings.Cut(*sliceSpec, "=")
		if !ok {
			die("bad -slice %q, want dim=value", *sliceSpec)
		}
		q, err = rdfcube.SliceOp(q, dim, parseValue(val, prefixes))
		if err != nil {
			die("%v", err)
		}
	case *diceSpec != "":
		restrictions := map[string][]rdfcube.Term{}
		for _, part := range strings.Split(*diceSpec, ";") {
			dim, vals, ok := strings.Cut(part, "=")
			if !ok {
				die("bad -dice %q, want dim=v1|v2;dim2=v3", *diceSpec)
			}
			for _, v := range strings.Split(vals, "|") {
				restrictions[dim] = append(restrictions[dim], parseValue(v, prefixes))
			}
		}
		q, err = rdfcube.DiceOp(q, restrictions)
		if err != nil {
			die("%v", err)
		}
	case *drillOut != "":
		q, err = rdfcube.DrillOutOp(q, strings.Split(*drillOut, ",")...)
		if err != nil {
			die("%v", err)
		}
	case *drillIn != "":
		q, err = rdfcube.DrillInOp(q, *drillIn)
		if err != nil {
			die("%v", err)
		}
	}

	ev := rdfcube.NewEvaluator(g)
	var tr *obs.Trace
	var qcost *obs.Cost
	if *explain {
		// EXPLAIN ANALYZE, CLI face: trace the evaluation through the
		// planner and physical operators with a cost accumulator
		// attached, then render the span tree and the exact per-query
		// resource accounting.
		tracer := &obs.Tracer{}
		var ctx context.Context
		ctx, tr = tracer.Start(context.Background(), "query")
		ctx, qcost = obs.WithCost(ctx)
		ev = ev.WithContext(ctx)
	}
	t0 := time.Now()
	cube, err := ev.Answer(q)
	if err != nil {
		die("%v", err)
	}
	if tr != nil {
		tr.Root.End()
		fmt.Fprint(os.Stderr, tr.Root.Dump().Render())
		qcost.AddWallNs(time.Since(t0).Nanoseconds())
		fmt.Fprintf(os.Stderr, "cost: %s\n", qcost.Snapshot().HeaderString())
	}
	if err := rdfcube.WriteCube(os.Stdout, cube, g, *format, prefixes); err != nil {
		die("%v", err)
	}
	fmt.Fprintf(os.Stderr, "%d cube cells\n", cube.Len())
}

// parseValue interprets a slice/dice value through the shared constant-
// term parser (integer, float, prefixed name, <IRI>, quoted literal);
// bare words fall back to a plain literal for CLI convenience.
func parseValue(s string, prefixes rdfcube.Prefixes) rdfcube.Term {
	if t, err := rdfcube.ParseTerm(s, prefixes); err == nil {
		return t
	}
	return rdfcube.NewLiteral(s)
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rdfcube: "+format+"\n", args...)
	os.Exit(1)
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
