// Command benchcompare gates the performance trajectory: it compares a
// benchrunner JSON report against a checked-in baseline and fails
// (exit 1) when
//
//   - any row that matched direct evaluation in the baseline no longer
//     does (a correctness regression is never noise), or
//   - a baseline row is missing from the current report, or
//   - the geometric mean of the per-row speedup ratios
//     (current/baseline) regresses by more than -max-regress.
//
// Speedups — not absolute nanoseconds — are compared, so the gate is
// robust to CI machines being faster or slower than the machine that
// recorded the baseline, and the aggregate (geometric-mean) gate keeps
// single-row scheduler noise from failing a build while a real
// regression — which drags every row — still trips it. Rows whose
// baseline times sit below a noise floor on either path carry
// meaningless ratios and are checked for correctness only. Record both
// reports with `benchrunner -best-of 3` to damp the remaining variance.
//
// Usage:
//
//	benchcompare -baseline BENCH_baseline.json -current BENCH_all.json
//	             [-max-regress 0.15] [-min-ns 1000000]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"rdfcube/internal/benchmark"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline report")
	currentPath := flag.String("current", "", "report to check (required)")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum tolerated fractional regression of the geomean speedup ratio")
	minNs := flag.Int64("min-ns", 1_000_000, "noise floor: rows with a baseline path faster than this are correctness-checked only")
	flag.Parse()
	if *currentPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := readReport(*baselinePath)
	if err != nil {
		fatal("baseline: %v", err)
	}
	current, err := readReport(*currentPath)
	if err != nil {
		fatal("current: %v", err)
	}

	failures := 0
	var logRatios []float64
	fmt.Printf("%-4s %-22s %10s %10s %8s  %s\n", "exp", "row", "base", "current", "ratio", "note")
	for _, name := range benchmark.ExperimentOrder {
		baseRows, ok := baseline.Experiments[name]
		if !ok {
			continue // experiment not in baseline: nothing to gate
		}
		curByLabel := map[string]benchmark.JSONRow{}
		for _, row := range current.Experiments[name] {
			curByLabel[row.Label] = row
		}
		for _, base := range baseRows {
			cur, ok := curByLabel[base.Label]
			if !ok {
				failures++
				fmt.Printf("%-4s %-22s %10.2fx %10s %8s  FAIL: row missing\n", name, base.Label, base.Speedup, "-", "-")
				continue
			}
			note := "ok"
			ratio := 0.0
			switch {
			case base.Match && !cur.Match:
				note = "FAIL: rewrite no longer matches direct evaluation"
				failures++
			case base.DirectNs < *minNs || base.RewriteNs < *minNs:
				note = "below noise floor; correctness only"
			case base.Speedup > 0 && cur.Speedup > 0:
				ratio = cur.Speedup / base.Speedup
				logRatios = append(logRatios, math.Log(ratio))
			}
			rs := "-"
			if ratio > 0 {
				rs = fmt.Sprintf("%.2f", ratio)
			}
			fmt.Printf("%-4s %-22s %10.2fx %10.2fx %8s  %s\n",
				name, base.Label, base.Speedup, cur.Speedup, rs, note)
		}
	}

	if len(logRatios) > 0 {
		sum := 0.0
		for _, lr := range logRatios {
			sum += lr
		}
		geomean := math.Exp(sum / float64(len(logRatios)))
		verdict := "ok"
		if geomean < 1-*maxRegress {
			verdict = fmt.Sprintf("FAIL: regressed > %.0f%%", *maxRegress*100)
			failures++
		}
		fmt.Printf("\ngeomean speedup ratio over %d gated rows: %.3f  %s\n", len(logRatios), geomean, verdict)
	}
	if failures > 0 {
		fmt.Printf("benchcompare: %d failure(s) vs %s\n", failures, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchcompare: trajectory holds vs %s\n", *baselinePath)
}

func readReport(path string) (*benchmark.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r benchmark.Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcompare: "+format+"\n", args...)
	os.Exit(1)
}
