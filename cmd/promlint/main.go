// Command promlint validates a Prometheus text exposition (format
// 0.0.4) read from stdin against the format's invariants — HELP/TYPE
// headers, sample syntax, label escaping, duplicate series, cumulative
// histogram buckets with le="+Inf" equal to _count.
//
// It is the CI face of obs.ValidateExposition, the same checker the
// unit tests run against the in-process registry:
//
//	curl -sf localhost:8344/metrics | promlint
//
// Exit status 0 when the exposition is valid, 1 with the first
// violation on stderr otherwise.
package main

import (
	"fmt"
	"os"

	"rdfcube/internal/obs"
)

func main() {
	if err := obs.ValidateExposition(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
}
