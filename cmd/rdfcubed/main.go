// Command rdfcubed is the OLAP cube server daemon: it loads a graph
// (N-Triples or binary snapshot), freezes it onto the read-optimized
// indexes, and serves the HTTP/JSON API of internal/server — analytical
// queries, OLAP operations, schema materialization, snapshots and
// statistics — with every client's materialized views shared through
// one registry, so one analyst's cube answers another analyst's
// drill-out.
//
// Usage:
//
//	rdfcubed [-addr :8344] [-data graph.nt | -snapshot graph.rdfc]
//	         [-data-dir DIR] [-checkpoint-every 0]
//	         [-mmap] [-spill-threshold 0] [-wal-group-commit 0]
//	         [-saturate] [-max-view-mb 256] [-max-views 0]
//	         [-compact-threshold 0] [-background-compact]
//	         [-query-timeout 0] [-max-inflight 0] [-queue-timeout 1s]
//	         [-retry-min 100ms] [-retry-max 5s] [-fault-plan ""]
//	         [-shutdown-timeout 10s]
//	         [-log-format text] [-log-level info]
//	         [-trace] [-slow-query 0] [-slow-query-burst 1]
//	         [-workload-topk 20] [-admission always] [-pprof-addr ""]
//
// Writes accepted over POST /insert land in the store's delta overlay —
// the frozen indexes survive and registered views are maintained through
// the delta feed; -compact-threshold tunes how large the overlay may
// grow before it is folded into a rebuilt base (0 keeps the store
// default), and -background-compact (on by default) folds it in a
// background goroutine — concurrent with queries — instead of stalling
// the write that crossed the threshold.
//
// -data-dir makes the daemon durable: graphs are checkpointed there as
// frozen (v2) snapshots, every accepted write batch is fsynced to a
// write-ahead log before it is acknowledged, and the materialized-view
// registry is snapshotted alongside. On startup a non-empty data-dir
// wins over -data/-snapshot: the daemon recovers the exact
// (baseEpoch, deltaSeq) state — snapshot load, WAL replay, view warming
// — so restart cost is proportional to the WAL tail, not the dataset.
// Checkpoints happen on POST /snapshot, on structural writes
// (materialize, freeze, compaction), every -checkpoint-every when set,
// and once more on graceful shutdown.
//
// -mmap serves the base graph straight from the mmap'd durable snapshot
// (written in the v3 mapped layout): columns are zero-copy views over
// the file decoded block-at-a-time through a fixed block cache, and the
// dictionary pages term blocks in lazily, so resident memory stays
// cache-bounded regardless of dataset size — the bigger-than-RAM
// serving mode. Writes still land in the heap delta overlay;
// -spill-threshold bounds that overlay by spilling it to sorted
// on-disk runs, and compaction folds everything into a new snapshot
// that is remapped atomically. -wal-group-commit trades bounded commit
// latency for write throughput: concurrent writers share one fsync
// when their appends overlap (solo writers never wait).
//
// Serving is bounded and self-protecting: -query-timeout caps each
// analytical query (cancelled cooperatively mid-join, 504), -max-inflight
// caps concurrent requests with -queue-timeout bounding how long an
// excess request may queue before it is shed (503 + Retry-After), and a
// durability failure (disk full, fsync error) flips the daemon into
// read-only mode — writes 503, queries keep serving — until a
// backoff-retried checkpoint (between -retry-min and -retry-max) re-arms
// it. GET /readyz reflects read-only mode for load balancers; /healthz
// stays green while the process lives. -fault-plan arms deterministic
// filesystem fault injection (see internal/faultfs) for crash drills.
//
// Observability: GET /metrics serves the Prometheus exposition of every
// engine counter and latency histogram; GET /statsz is the JSON view
// over the same registry. -trace traces every query (per-operator span
// trees, inspectable at GET /debug/traces/last), ?explain=analyze on
// POST /query traces one request and returns its annotated plan tree,
// and -slow-query logs any query past the threshold with its trace ID
// and per-stage breakdown (rate-limited per query fingerprint to
// -slow-query-burst records, refilled at one per second). Every query
// is cost-accounted — rows scanned/produced, seeks, batches, bytes
// materialized — reported in the X-RDFCube-Cost response header and
// aggregated by canonical query fingerprint in the workload profiler
// (GET /debug/workload, rdfcube_workload_* series, top -workload-topk
// shapes by total cost). -admission=cost feeds those measurements back
// into the view registry: a direct evaluation is materialized only when
// its measured cost times the shape's observed reuse outweighs its byte
// footprint, and eviction prefers the lowest benefit-per-byte view.
// -log-format/-log-level shape the structured
// (slog) logs; -pprof-addr serves net/http/pprof on a separate listener
// (keep it private — it is deliberately not on the API address).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests finish (bounded by -shutdown-timeout) before the process
// exits. An empty server (no -data/-snapshot) accepts data over
// POST /load and POST /load-snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/nt"
	"rdfcube/internal/rdfs"
	"rdfcube/internal/server"
	"rdfcube/internal/store"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	data := flag.String("data", "", "N-Triples file to load at startup")
	snapshot := flag.String("snapshot", "", "binary snapshot file to load at startup")
	saturate := flag.Bool("saturate", false, "apply RDFS saturation after loading -data")
	maxViewMB := flag.Int64("max-view-mb", 256, "materialized-view registry budget in MiB (0 = unbounded)")
	maxViews := flag.Int("max-views", 0, "materialized-view registry entry cap (0 = unbounded)")
	compactThreshold := flag.Int("compact-threshold", 0, "delta-overlay size that triggers compaction into a rebuilt frozen base (0 = store default)")
	backgroundCompact := flag.Bool("background-compact", true, "fold the delta overlay into a rebuilt base in a background goroutine instead of on the write path")
	dataDir := flag.String("data-dir", "", "durable state directory (snapshots + write-ahead logs + view registry); non-empty state there wins over -data/-snapshot")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval with -data-dir (0 = only on demand/structural writes/shutdown)")
	mmap := flag.Bool("mmap", false, "serve the base graph from an mmap'd snapshot (zero-copy columns, lazy dictionary); requires -data-dir")
	spillThreshold := flag.Int("spill-threshold", 0, "with -mmap: delta-overlay triple count past which the overlay spills to sorted on-disk runs (0 = never spill)")
	walGroupCommit := flag.Duration("wal-group-commit", 0, "coalesce concurrent WAL appends into one fsync, waiting up to this window when writers overlap (0 = one fsync per batch)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline; an evaluation past it is cancelled cooperatively and answered 504 (0 = unbounded)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent-request admission cap; excess requests queue then shed 503 (0 = unbounded)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "how long a request may wait for an admission slot before it is shed")
	retryMin := flag.Duration("retry-min", 100*time.Millisecond, "initial backoff between durability re-arm attempts in read-only mode")
	retryMax := flag.Duration("retry-max", 5*time.Second, "backoff ceiling for durability re-arm attempts")
	faultPlan := flag.String("fault-plan", "", "deterministic filesystem fault plan for crash drills, e.g. 'sync:base.wal@2x1,read:base.snap:corrupt' (see internal/faultfs)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown grace period")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	traceAll := flag.Bool("trace", false, "trace every query (per-operator span trees at GET /debug/traces/last)")
	slowQuery := flag.Duration("slow-query", 0, "log any query slower than this with its trace ID and per-stage breakdown (0 = off)")
	slowQueryBurst := flag.Int("slow-query-burst", 1, "slow-query log burst per query fingerprint (refilled at 1/s; suppressed records are counted onto the next emitted one)")
	workloadTopK := flag.Int("workload-topk", 20, "how many top-by-cost query shapes the workload profiler tracks (GET /debug/workload)")
	admission := flag.String("admission", "always", "view-registry admission policy: always (materialize every direct evaluation) or cost (admit only when measured evaluation cost times observed reuse beats the byte footprint)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off; keep it private)")
	flag.Parse()

	logger, err := buildLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfcubed:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("err", err.Error()))
		os.Exit(1)
	}

	// With a data-dir holding a snapshot, recovery wins; the seed graph
	// is only parsed when the directory is fresh.
	seedNeeded := true
	if server.HasState(*dataDir) {
		seedNeeded = false
		if *data != "" || *snapshot != "" {
			logger.Warn("data-dir holds state; ignoring -data/-snapshot",
				slog.String("data_dir", *dataDir))
		}
	}
	var base *store.Store
	if seedNeeded {
		if base, err = loadGraph(logger, *data, *snapshot, *saturate); err != nil {
			fatal("loading startup graph", err)
		}
	}

	if *mmap && *dataDir == "" {
		fatal("-mmap", fmt.Errorf("requires -data-dir (the mapped base IS the durable snapshot)"))
	}

	var admissionCost bool
	switch *admission {
	case "always":
	case "cost":
		admissionCost = true
	default:
		fatal("-admission", fmt.Errorf("%q: want always or cost", *admission))
	}

	var fsys faultfs.FS
	if *faultPlan != "" {
		faults, err := faultfs.ParsePlan(*faultPlan)
		if err != nil {
			fatal("-fault-plan", err)
		}
		in := faultfs.NewInjector(nil)
		in.ArmPlan(faults)
		fsys = in
		logger.Info("fault injection armed", slog.String("plan", *faultPlan))
	}

	t0 := time.Now()
	srv, err := server.Open(base, server.Config{
		MaxViewBytes:         *maxViewMB << 20,
		MaxViewEntries:       *maxViews,
		CompactThreshold:     *compactThreshold,
		BackgroundCompaction: *backgroundCompact,
		DataDir:              *dataDir,
		Mapped:               *mmap,
		SpillThreshold:       *spillThreshold,
		WALGroupCommit:       *walGroupCommit,
		FS:                   fsys,
		QueryTimeout:         *queryTimeout,
		MaxInFlight:          *maxInFlight,
		QueueTimeout:         *queueTimeout,
		RetryMin:             *retryMin,
		RetryMax:             *retryMax,
		TraceAll:             *traceAll,
		SlowQuery:            *slowQuery,
		SlowQueryBurst:       *slowQueryBurst,
		WorkloadTopK:         *workloadTopK,
		AdmissionCost:        admissionCost,
		Logger:               logger,
	})
	if err != nil {
		fatal("opening server", err)
	}
	if *dataDir != "" {
		logger.Info("data-dir opened",
			slog.String("data_dir", *dataDir),
			slog.Duration("elapsed", time.Since(t0).Round(time.Millisecond)))
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling surface
		// never shares an address with the public API.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof serving", slog.String("addr", *pprofAddr))
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof listener failed", slog.String("err", err.Error()))
			}
		}()
	}

	if *dataDir != "" && *checkpointEvery > 0 {
		go func() {
			ticker := time.NewTicker(*checkpointEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if cp, err := srv.Checkpoint(); err != nil {
						logger.Error("periodic checkpoint failed", slog.String("err", err.Error()))
					} else {
						logger.Info("checkpoint",
							slog.Int("triples", cp.Triples),
							slog.Int("delta_tail", cp.DeltaTail),
							slog.Int("views", cp.Views),
							slog.Duration("elapsed", time.Duration(cp.ElapsedNs).Round(time.Millisecond)))
					}
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving",
			slog.String("addr", *addr),
			slog.Int64("view_budget_mib", *maxViewMB),
			slog.Bool("trace", *traceAll),
			slog.Duration("slow_query", *slowQuery))
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fatal("listener failed", err)
	case <-ctx.Done():
	}
	logger.Info("shutting down", slog.Duration("grace", *shutdownTimeout))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("forced shutdown", slog.String("err", err.Error()))
	}
	if *dataDir != "" {
		// Final checkpoint: the next start recovers without replaying the
		// WAL tail.
		if cp, err := srv.Checkpoint(); err != nil {
			logger.Error("shutdown checkpoint failed", slog.String("err", err.Error()))
		} else {
			logger.Info("shutdown checkpoint",
				slog.Int("triples", cp.Triples), slog.Int("views", cp.Views))
		}
		srv.Close()
	}
	stats := srv.Registry().Stats()
	logger.Info("served",
		slog.Any("strategies", stats.ByStrategy),
		slog.Int("views", stats.Entries),
		slog.Int64("bytes", stats.Bytes),
		slog.Int64("maintained", stats.Maintained),
		slog.Int64("evictions", stats.Evictions),
		slog.Int64("invalidations", stats.Invalidations),
		slog.Int64("coalesced", stats.Coalesced),
		slog.Int64("neg_skips", stats.NegSkips))
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("listener failed", err)
	}
}

// buildLogger constructs the process slog.Logger from the -log-format
// and -log-level flags.
func buildLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// loadGraph builds the startup graph: a binary snapshot (already frozen
// by ReadSnapshotFrozen), an N-Triples file (frozen after optional
// saturation — the load-to-serve boundary), or an empty store.
func loadGraph(logger *slog.Logger, data, snapshot string, saturate bool) (*store.Store, error) {
	switch {
	case data != "" && snapshot != "":
		return nil, fmt.Errorf("-data and -snapshot are mutually exclusive")
	case snapshot != "":
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		t0 := time.Now()
		// OpenFrozenSnapshot sniffs the version: v2 frozen snapshots load
		// straight into the columnar layout, v1 flat files rebuild+freeze.
		st, err := store.OpenFrozenSnapshot(f)
		if err != nil {
			return nil, fmt.Errorf("loading snapshot %s: %w", snapshot, err)
		}
		logger.Info("loaded snapshot",
			slog.String("file", snapshot),
			slog.Int("triples", st.Len()),
			slog.Duration("elapsed", time.Since(t0).Round(time.Millisecond)))
		return st, nil
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		t0 := time.Now()
		st := store.New()
		n, err := readNTriples(st, f)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", data, err)
		}
		if saturate {
			n += rdfs.Saturate(st)
		}
		st.Freeze() // loading done: serve from the sorted indexes
		logger.Info("loaded triples",
			slog.String("file", data),
			slog.Int("triples", n),
			slog.Bool("saturate", saturate),
			slog.Duration("elapsed", time.Since(t0).Round(time.Millisecond)))
		return st, nil
	default:
		return store.New(), nil
	}
}

// readNTriples streams an N-Triples document into st, returning the
// number of distinct triples added.
func readNTriples(st *store.Store, r io.Reader) (int, error) {
	added := 0
	rd := nt.NewReader(r)
	for {
		t, err := rd.Next()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, err
		}
		if st.Add(t) {
			added++
		}
	}
}
