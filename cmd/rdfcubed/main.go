// Command rdfcubed is the OLAP cube server daemon: it loads a graph
// (N-Triples or binary snapshot), freezes it onto the read-optimized
// indexes, and serves the HTTP/JSON API of internal/server — analytical
// queries, OLAP operations, schema materialization, snapshots and
// statistics — with every client's materialized views shared through
// one registry, so one analyst's cube answers another analyst's
// drill-out.
//
// Usage:
//
//	rdfcubed [-addr :8344] [-data graph.nt | -snapshot graph.rdfc]
//	         [-data-dir DIR] [-checkpoint-every 0]
//	         [-saturate] [-max-view-mb 256] [-max-views 0]
//	         [-compact-threshold 0] [-background-compact]
//	         [-query-timeout 0] [-max-inflight 0] [-queue-timeout 1s]
//	         [-retry-min 100ms] [-retry-max 5s] [-fault-plan ""]
//	         [-shutdown-timeout 10s]
//
// Writes accepted over POST /insert land in the store's delta overlay —
// the frozen indexes survive and registered views are maintained through
// the delta feed; -compact-threshold tunes how large the overlay may
// grow before it is folded into a rebuilt base (0 keeps the store
// default), and -background-compact (on by default) folds it in a
// background goroutine — concurrent with queries — instead of stalling
// the write that crossed the threshold.
//
// -data-dir makes the daemon durable: graphs are checkpointed there as
// frozen (v2) snapshots, every accepted write batch is fsynced to a
// write-ahead log before it is acknowledged, and the materialized-view
// registry is snapshotted alongside. On startup a non-empty data-dir
// wins over -data/-snapshot: the daemon recovers the exact
// (baseEpoch, deltaSeq) state — snapshot load, WAL replay, view warming
// — so restart cost is proportional to the WAL tail, not the dataset.
// Checkpoints happen on POST /snapshot, on structural writes
// (materialize, freeze, compaction), every -checkpoint-every when set,
// and once more on graceful shutdown.
//
// Serving is bounded and self-protecting: -query-timeout caps each
// analytical query (cancelled cooperatively mid-join, 504), -max-inflight
// caps concurrent requests with -queue-timeout bounding how long an
// excess request may queue before it is shed (503 + Retry-After), and a
// durability failure (disk full, fsync error) flips the daemon into
// read-only mode — writes 503, queries keep serving — until a
// backoff-retried checkpoint (between -retry-min and -retry-max) re-arms
// it. GET /readyz reflects read-only mode for load balancers; /healthz
// stays green while the process lives. -fault-plan arms deterministic
// filesystem fault injection (see internal/faultfs) for crash drills.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests finish (bounded by -shutdown-timeout) before the process
// exits. An empty server (no -data/-snapshot) accepts data over
// POST /load and POST /load-snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/nt"
	"rdfcube/internal/rdfs"
	"rdfcube/internal/server"
	"rdfcube/internal/store"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	data := flag.String("data", "", "N-Triples file to load at startup")
	snapshot := flag.String("snapshot", "", "binary snapshot file to load at startup")
	saturate := flag.Bool("saturate", false, "apply RDFS saturation after loading -data")
	maxViewMB := flag.Int64("max-view-mb", 256, "materialized-view registry budget in MiB (0 = unbounded)")
	maxViews := flag.Int("max-views", 0, "materialized-view registry entry cap (0 = unbounded)")
	compactThreshold := flag.Int("compact-threshold", 0, "delta-overlay size that triggers compaction into a rebuilt frozen base (0 = store default)")
	backgroundCompact := flag.Bool("background-compact", true, "fold the delta overlay into a rebuilt base in a background goroutine instead of on the write path")
	dataDir := flag.String("data-dir", "", "durable state directory (snapshots + write-ahead logs + view registry); non-empty state there wins over -data/-snapshot")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval with -data-dir (0 = only on demand/structural writes/shutdown)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline; an evaluation past it is cancelled cooperatively and answered 504 (0 = unbounded)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent-request admission cap; excess requests queue then shed 503 (0 = unbounded)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "how long a request may wait for an admission slot before it is shed")
	retryMin := flag.Duration("retry-min", 100*time.Millisecond, "initial backoff between durability re-arm attempts in read-only mode")
	retryMax := flag.Duration("retry-max", 5*time.Second, "backoff ceiling for durability re-arm attempts")
	faultPlan := flag.String("fault-plan", "", "deterministic filesystem fault plan for crash drills, e.g. 'sync:base.wal@2x1,read:base.snap:corrupt' (see internal/faultfs)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown grace period")
	flag.Parse()

	logger := log.New(os.Stderr, "rdfcubed: ", log.LstdFlags)

	// With a data-dir holding a snapshot, recovery wins; the seed graph
	// is only parsed when the directory is fresh.
	seedNeeded := true
	if server.HasState(*dataDir) {
		seedNeeded = false
		if *data != "" || *snapshot != "" {
			logger.Printf("data-dir %s holds state; ignoring -data/-snapshot", *dataDir)
		}
	}
	var base *store.Store
	var err error
	if seedNeeded {
		if base, err = loadGraph(logger, *data, *snapshot, *saturate); err != nil {
			logger.Fatal(err)
		}
	}

	var fsys faultfs.FS
	if *faultPlan != "" {
		faults, err := faultfs.ParsePlan(*faultPlan)
		if err != nil {
			logger.Fatalf("-fault-plan: %v", err)
		}
		in := faultfs.NewInjector(nil)
		in.ArmPlan(faults)
		fsys = in
		logger.Printf("fault injection armed: %s", *faultPlan)
	}

	t0 := time.Now()
	srv, err := server.Open(base, server.Config{
		MaxViewBytes:         *maxViewMB << 20,
		MaxViewEntries:       *maxViews,
		CompactThreshold:     *compactThreshold,
		BackgroundCompaction: *backgroundCompact,
		DataDir:              *dataDir,
		FS:                   fsys,
		QueryTimeout:         *queryTimeout,
		MaxInFlight:          *maxInFlight,
		QueueTimeout:         *queueTimeout,
		RetryMin:             *retryMin,
		RetryMax:             *retryMax,
	})
	if err != nil {
		logger.Fatal(err)
	}
	if *dataDir != "" {
		logger.Printf("data-dir %s opened in %v", *dataDir, time.Since(t0).Round(time.Millisecond))
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *dataDir != "" && *checkpointEvery > 0 {
		go func() {
			ticker := time.NewTicker(*checkpointEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if cp, err := srv.Checkpoint(); err != nil {
						logger.Printf("periodic checkpoint failed: %v", err)
					} else {
						logger.Printf("checkpoint: %d triples, %d delta tail, %d views in %v",
							cp.Triples, cp.DeltaTail, cp.Views, time.Duration(cp.ElapsedNs).Round(time.Millisecond))
					}
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("serving on %s (view budget %d MiB)", *addr, *maxViewMB)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Fatal(err)
	case <-ctx.Done():
	}
	logger.Printf("shutting down (grace %v)...", *shutdownTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("forced shutdown: %v", err)
	}
	if *dataDir != "" {
		// Final checkpoint: the next start recovers without replaying the
		// WAL tail.
		if cp, err := srv.Checkpoint(); err != nil {
			logger.Printf("shutdown checkpoint failed: %v", err)
		} else {
			logger.Printf("shutdown checkpoint: %d triples, %d views", cp.Triples, cp.Views)
		}
		srv.Close()
	}
	stats := srv.Registry().Stats()
	logger.Printf("served strategies: %v; %d views, ~%d bytes, %d maintained, %d evictions, %d invalidations, %d coalesced, %d neg-skips",
		stats.ByStrategy, stats.Entries, stats.Bytes, stats.Maintained, stats.Evictions, stats.Invalidations, stats.Coalesced, stats.NegSkips)
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
}

// loadGraph builds the startup graph: a binary snapshot (already frozen
// by ReadSnapshotFrozen), an N-Triples file (frozen after optional
// saturation — the load-to-serve boundary), or an empty store.
func loadGraph(logger *log.Logger, data, snapshot string, saturate bool) (*store.Store, error) {
	switch {
	case data != "" && snapshot != "":
		return nil, fmt.Errorf("-data and -snapshot are mutually exclusive")
	case snapshot != "":
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		t0 := time.Now()
		// OpenFrozenSnapshot sniffs the version: v2 frozen snapshots load
		// straight into the columnar layout, v1 flat files rebuild+freeze.
		st, err := store.OpenFrozenSnapshot(f)
		if err != nil {
			return nil, fmt.Errorf("loading snapshot %s: %w", snapshot, err)
		}
		logger.Printf("loaded snapshot %s: %d triples in %v (frozen)", snapshot, st.Len(), time.Since(t0).Round(time.Millisecond))
		return st, nil
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		t0 := time.Now()
		st := store.New()
		n, err := readNTriples(st, f)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", data, err)
		}
		if saturate {
			n += rdfs.Saturate(st)
		}
		st.Freeze() // loading done: serve from the sorted indexes
		logger.Printf("loaded %s: %d triples in %v (saturate=%v, frozen)", data, n, time.Since(t0).Round(time.Millisecond), saturate)
		return st, nil
	default:
		return store.New(), nil
	}
}

// readNTriples streams an N-Triples document into st, returning the
// number of distinct triples added.
func readNTriples(st *store.Store, r io.Reader) (int, error) {
	added := 0
	rd := nt.NewReader(r)
	for {
		t, err := rd.Next()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, err
		}
		if st.Add(t) {
			added++
		}
	}
}
