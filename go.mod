module rdfcube

go 1.24
