package rdfcube_test

// One testing.B benchmark per experiment row of DESIGN.md §4. Each bench
// pair contrasts direct evaluation of the transformed query (from the
// AnS instance) with the paper's rewriting (from materialized pres(Q) /
// ans(Q)); the /Direct vs /Rewrite ratio is the paper's headline claim.
//
// Dataset sizes are kept at "bench scale" (seconds per bench); the
// cmd/benchrunner tool runs the full sweeps.

import (
	"testing"

	"rdfcube"
	"rdfcube/internal/benchmark"
	"rdfcube/internal/bgp"
	"rdfcube/internal/core"
	"rdfcube/internal/datagen"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
	"rdfcube/internal/viewreg"
)

// workloads are built once and shared across benches.
var (
	benchBlogger   *benchmark.Workload
	benchBlogger4D *benchmark.Workload
	benchVideo     *benchmark.Workload
)

func bloggerWorkload(b *testing.B) *benchmark.Workload {
	b.Helper()
	if benchBlogger == nil {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = 5000
		cfg.Dimensions = 2
		wl, err := benchmark.BuildBlogger(cfg, "count")
		if err != nil {
			b.Fatal(err)
		}
		benchBlogger = wl
	}
	return benchBlogger
}

func blogger4DWorkload(b *testing.B) *benchmark.Workload {
	b.Helper()
	if benchBlogger4D == nil {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = 5000
		cfg.Dimensions = 4
		wl, err := benchmark.BuildBlogger(cfg, "sum")
		if err != nil {
			b.Fatal(err)
		}
		benchBlogger4D = wl
	}
	return benchBlogger4D
}

func videoWorkload(b *testing.B) *benchmark.Workload {
	b.Helper()
	if benchVideo == nil {
		cfg := datagen.DefaultVideoConfig()
		cfg.Videos = 5000
		cfg.Websites = 500
		wl, err := benchmark.BuildVideo(cfg, "sum")
		if err != nil {
			b.Fatal(err)
		}
		benchVideo = wl
	}
	return benchVideo
}

// E1: SLICE.
func BenchmarkSliceDirect(b *testing.B) {
	wl := bloggerWorkload(b)
	sliced, err := core.Slice(wl.Query, "d0", datagen.DimValue(0, 10))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.Answer(sliced); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSliceDirectMapIndex is BenchmarkSliceDirect forced onto the
// mutable nested-map indexes (Thaw), quantifying the frozen sorted-array
// layout's win on the same workload.
func BenchmarkSliceDirectMapIndex(b *testing.B) {
	wl := bloggerWorkload(b)
	sliced, err := core.Slice(wl.Query, "d0", datagen.DimValue(0, 10))
	if err != nil {
		b.Fatal(err)
	}
	wl.Inst.Thaw()
	defer wl.Inst.Freeze()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.Answer(sliced); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSliceRewrite(b *testing.B) {
	wl := bloggerWorkload(b)
	sliced, err := core.Slice(wl.Query, "d0", datagen.DimValue(0, 10))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.DiceRewrite(sliced, wl.Ans); err != nil {
			b.Fatal(err)
		}
	}
}

// E2: DICE (25% of the age domain, both city restrictions).
func dicedQuery(b *testing.B, wl *benchmark.Workload) *core.Query {
	b.Helper()
	var ages []rdfcube.Term
	for v := 0; v < datagen.DimCardinality(0)/4; v++ {
		ages = append(ages, datagen.DimValue(0, v))
	}
	diced, err := core.Dice(wl.Query, map[string][]rdfcube.Term{
		"d0": ages,
		"d1": {datagen.DimValue(1, 0), datagen.DimValue(1, 1), datagen.DimValue(1, 2)},
	})
	if err != nil {
		b.Fatal(err)
	}
	return diced
}

func BenchmarkDiceDirect(b *testing.B) {
	wl := bloggerWorkload(b)
	diced := dicedQuery(b, wl)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.Answer(diced); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiceDirectMapIndex is BenchmarkDiceDirect on the map indexes;
// see BenchmarkSliceDirectMapIndex.
func BenchmarkDiceDirectMapIndex(b *testing.B) {
	wl := bloggerWorkload(b)
	diced := dicedQuery(b, wl)
	wl.Inst.Thaw()
	defer wl.Inst.Freeze()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.Answer(diced); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiceRewrite(b *testing.B) {
	wl := bloggerWorkload(b)
	diced := dicedQuery(b, wl)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.DiceRewrite(diced, wl.Ans); err != nil {
			b.Fatal(err)
		}
	}
}

// E3: DRILL-OUT on a 4-dimensional cube.
func BenchmarkDrillOutDirect(b *testing.B) {
	wl := blogger4DWorkload(b)
	qOut, err := core.DrillOut(wl.Query, "d3")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.Answer(qOut); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDrillOutRewrite(b *testing.B) {
	wl := blogger4DWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, "d3"); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 foil: the naive (incorrect) ans(Q)-based drill-out, for cost
// comparison with Algorithm 1.
func BenchmarkNaiveVsAlg1(b *testing.B) {
	wl := blogger4DWorkload(b)
	b.Run("NaiveFromAns", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.NaiveDrillOutFromAns(wl.Query, wl.Ans, "d3"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Algorithm1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, "d3"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E4: DRILL-IN.
func BenchmarkDrillInDirect(b *testing.B) {
	wl := videoWorkload(b)
	qIn, err := core.DrillIn(wl.Query, "d3")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.Answer(qIn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDrillInRewrite(b *testing.B) {
	wl := videoWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.DrillInRewrite(wl.Query, wl.Pres, "d3"); err != nil {
			b.Fatal(err)
		}
	}
}

// E7: materialization cost of pres(Q) vs ans(Q).
func BenchmarkMaterializePres(b *testing.B) {
	wl := bloggerWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.Pres(wl.Query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializeAns(b *testing.B) {
	wl := bloggerWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Ev.AnswerFromPres(wl.Query, wl.Pres); err != nil {
			b.Fatal(err)
		}
	}
}

// E8: drill-out by aggregation function (distributive vs not).
func BenchmarkAggFunctions(b *testing.B) {
	for _, name := range []string{"count", "sum", "avg"} {
		b.Run(name, func(b *testing.B) {
			cfg := datagen.DefaultBloggerConfig()
			cfg.Bloggers = 2000
			wl, err := benchmark.BuildBlogger(cfg, name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, "d1"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E9: the insert/query mix through the shared view registry. Writes land
// in the store's delta overlay (the frozen base survives) and maintain
// the registered view through the delta feed; reads are answered from
// it. ns/op averages over the whole mix, so this tracks the write path —
// delta insertion, feed maintenance, merged reads — next to the
// read-only benches above. The workload is built per run (it mutates).
func BenchmarkInsertQueryMix(b *testing.B) {
	mixes := []struct {
		name       string
		writeEvery int // every n-th operation is an insert batch
	}{
		{"90read10write", 10},
		{"50read50write", 2},
	}
	for _, mix := range mixes {
		b.Run(mix.name, func(b *testing.B) {
			cfg := datagen.DefaultBloggerConfig()
			cfg.Bloggers = 2000
			cfg.Dimensions = 2
			wl, err := benchmark.BuildBlogger(cfg, "sum")
			if err != nil {
				b.Fatal(err)
			}
			reg := viewreg.New(wl.Inst, viewreg.Config{})
			if _, _, err := reg.Answer(wl.Query); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if i%mix.writeEvery == 0 {
					benchmark.InsertBloggerFacts(wl.Inst, i*2, 2)
					reg.NotifyWrite()
					continue
				}
				if _, _, err := reg.Answer(wl.Query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E5 umbrella: the full pipeline (generate → saturate → materialize →
// pres) at a fixed scale; tracks end-to-end cost regressions.
func BenchmarkAllOps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = 1000
		cfg.Dimensions = 3
		if _, err := benchmark.BuildBlogger(cfg, "sum"); err != nil {
			b.Fatal(err)
		}
	}
}

// E11: the star join through the cursor engine vs the nested-loop
// reference (same query, same store).
var benchStar *rdfcubeStarBench

type rdfcubeStarBench struct {
	st *store.Store
	q  *sparql.Query
}

func starBench(b *testing.B) *rdfcubeStarBench {
	b.Helper()
	if benchStar == nil {
		st := benchmark.BuildStarGraph(30000)
		q, err := benchmark.StarQuery(4)
		if err != nil {
			b.Fatal(err)
		}
		benchStar = &rdfcubeStarBench{st: st, q: q}
	}
	return benchStar
}

func BenchmarkStarJoinNested(b *testing.B) {
	w := starBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Eval(w.st, w.q, bgp.Options{Distinct: true, ForceNestedLoop: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStarJoinLeapfrog(b *testing.B) {
	w := starBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Eval(w.st, w.q, bgp.Options{Distinct: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// E12: batch-at-a-time vs row-at-a-time execution on the chain and
// wide-star workloads (same plan, different granularity).
var (
	benchChain    *rdfcubeStarBench
	benchWideStar *rdfcubeStarBench
)

func chainBench(b *testing.B) *rdfcubeStarBench {
	b.Helper()
	if benchChain == nil {
		q, err := benchmark.ChainQuery()
		if err != nil {
			b.Fatal(err)
		}
		benchChain = &rdfcubeStarBench{st: benchmark.BuildChainGraph(4000), q: q}
	}
	return benchChain
}

func wideStarBench(b *testing.B) *rdfcubeStarBench {
	b.Helper()
	if benchWideStar == nil {
		q, err := benchmark.WideStarQuery(3)
		if err != nil {
			b.Fatal(err)
		}
		benchWideStar = &rdfcubeStarBench{st: benchmark.BuildStarGraph(30000), q: q}
	}
	return benchWideStar
}

func BenchmarkChainJoinRows(b *testing.B) {
	w := chainBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Eval(w.st, w.q, bgp.Options{Distinct: true, RowPipeline: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainJoinBatch(b *testing.B) {
	w := chainBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Eval(w.st, w.q, bgp.Options{Distinct: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWideStarRows(b *testing.B) {
	w := wideStarBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Eval(w.st, w.q, bgp.Options{Distinct: true, RowPipeline: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWideStarBatch(b *testing.B) {
	w := wideStarBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Eval(w.st, w.q, bgp.Options{Distinct: true}); err != nil {
			b.Fatal(err)
		}
	}
}
