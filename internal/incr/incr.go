// Package incr maintains the materialized partial result pres(Q) of an
// analytical query incrementally as triples are added to the AnS
// instance, so the rewriting algorithms keep paying view-maintenance
// cost instead of recomputation cost.
//
// The paper materializes pres(Q) once, as a by-product of answering Q;
// its companion line of work (reference [5], dynamic RDF databases)
// motivates keeping such materializations alive under updates. The delta
// rules follow from Definition 4:
//
//	pres(Q) = c(I) ⋈_x m_k(I)
//	Δpres   = Δc ⋈ m_k(I ∪ Δ)  ∪  c(I) ⋈ Δm_k
//
// where Δc (Δm̄) are the classifier (measure) embeddings that use at
// least one inserted triple. Definition 3's bijection between the bag
// result of m and the set result of m̄ (the measure with all body
// variables distinguished) is what makes exact maintenance possible:
// new measure *tuples* are identified by new m̄ *embeddings*, each of
// which receives a fresh key continuing the newk() sequence.
//
// A materialization can absorb insertions through two doors: Insert
// writes a triple batch to the instance itself and applies it, while
// Sync consumes the store's delta feed (store.DeltaSince) — the door the
// shared view registry uses when *someone else* already wrote to the
// instance. Both leave the store's representation alone: with the
// delta-layer store, writes land in the sorted overlay on top of the
// frozen base, so delta evaluations run on the merged fast path and no
// re-freeze heuristics are needed here.
//
// Deletions are out of scope (the paper's warehouse is append-oriented);
// Refresh recomputes from scratch when needed — Sync falls back to it
// when the store's base epoch moved (compaction folded the feed away, or
// an out-of-band structural change happened).
package incr

import (
	"context"
	"fmt"

	"rdfcube/internal/algebra"
	"rdfcube/internal/bgp"
	"rdfcube/internal/core"
	"rdfcube/internal/dict"
	"rdfcube/internal/obs"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// MaintainedPres is a pres(Q) materialization that absorbs instance
// insertions incrementally.
type MaintainedPres struct {
	q    *core.Query
	ev   *core.Evaluator
	inst *store.Store

	// c is the current classifier result (set semantics, Σ applied);
	// cKeys indexes its rows.
	c     *algebra.Relation
	cKeys map[string]struct{}
	// mbarKeys indexes the current m̄ embeddings (all measure body
	// variables); mk is the keyed measure m_k.
	mbarKeys map[string]struct{}
	mbarQ    *sparql.Query
	mk       *algebra.Relation
	nextKey  uint64

	// pres is the current materialization. Each maintenance application
	// swaps in a fresh *Relation header (rows appended copy-on-write), so
	// a caller that captured Pres() before the application can keep
	// reading its snapshot concurrently with the swap.
	pres *algebra.Relation

	// ver is the instance version the materialization reflects; Sync
	// applies store.DeltaSince(ver.Seq) to catch up. dirty marks a
	// partially-applied delta (apply failed midway): the keyed dedup
	// makes replay converge only for rows that never reached pres, so
	// the next Sync repairs via a full Refresh instead.
	ver   store.Version
	dirty bool
}

// New fully evaluates q over the evaluator's instance and returns a
// maintained materialization.
func New(ev *core.Evaluator, q *core.Query) (*MaintainedPres, error) {
	return NewCtx(context.Background(), ev, q)
}

// NewCtx is New with the *initial* evaluation bound to ctx, so a caller
// can abandon an expensive materialization build. The returned
// materialization stores ev itself — not a ctx-bound copy — so later
// Sync/Refresh calls are not poisoned by an expired request context.
func NewCtx(ctx context.Context, ev *core.Evaluator, q *core.Query) (*MaintainedPres, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	mp := &MaintainedPres{
		q:        q.Clone(),
		ev:       ev,
		inst:     ev.Instance(),
		cKeys:    map[string]struct{}{},
		mbarKeys: map[string]struct{}{},
		ver:      ev.Instance().Version(),
	}
	mp.mbarQ = mbarQuery(q)

	cCtx, cSpan := obs.StartSpan(ctx, "incr.classifier")
	c, err := ev.WithContext(cCtx).EvalClassifier(q)
	cSpan.End()
	if err != nil {
		return nil, err
	}
	mp.c = c
	for _, row := range c.Rows {
		mp.cKeys[rowKey(row)] = struct{}{}
	}

	// Evaluate m̄ once; each embedding becomes one keyed measure tuple.
	mCtx, mSpan := obs.StartSpan(ctx, "incr.measure")
	res, err := bgp.EvalCtx(mCtx, mp.inst, mp.mbarQ, bgp.Options{Distinct: true, KeepAllVars: true})
	mSpan.End()
	if err != nil {
		return nil, err
	}
	root, v := q.Measure.Head[0], q.Measure.Head[1]
	rootCol, vCol := res.Column(root), res.Column(v)
	if rootCol < 0 || vCol < 0 {
		return nil, fmt.Errorf("incr: measure head variables missing from m̄ result")
	}
	mp.mk = algebra.NewRelation(core.KeyCol, root, v)
	for _, row := range res.Rows {
		mp.mbarKeys[idKey(row)] = struct{}{}
		mp.nextKey++
		mp.mk.Append(algebra.Row{
			algebra.KeyV(mp.nextKey),
			algebra.TermV(row[rootCol]),
			algebra.TermV(row[vCol]),
		})
	}
	return mp, mp.rebuildPres()
}

// mbarQuery returns m̄: the measure body with every body variable
// distinguished (Definition 3), root first.
func mbarQuery(q *core.Query) *sparql.Query {
	mbar := q.Measure.Clone()
	mbar.Head = mbar.Vars()
	root := q.Measure.Head[0]
	for i, v := range mbar.Head {
		if v == root && i != 0 {
			mbar.Head[0], mbar.Head[i] = mbar.Head[i], mbar.Head[0]
			break
		}
	}
	return mbar
}

// rebuildPres recomputes pres from the maintained c and mk.
func (mp *MaintainedPres) rebuildPres() error {
	root := mp.q.Root()
	joined, err := mp.c.Join(mp.mk, []string{root}, []string{root})
	if err != nil {
		return err
	}
	cols := append([]string{root}, mp.q.Dims()...)
	cols = append(cols, core.KeyCol, mp.q.MeasureVar())
	mp.pres = joined.Project(cols...)
	return nil
}

// Pres returns the current materialized pres(Q). The caller must not
// mutate it. The returned relation is a stable snapshot: later
// maintenance applications swap in a fresh header instead of growing
// this one.
func (mp *MaintainedPres) Pres() *algebra.Relation { return mp.pres }

// Version returns the instance version the materialization reflects.
func (mp *MaintainedPres) Version() store.Version { return mp.ver }

// Answer aggregates the maintained pres(Q) into ans(Q) (Equation 3).
func (mp *MaintainedPres) Answer() (*algebra.Relation, error) {
	return mp.ev.AnswerFromPres(mp.q, mp.pres)
}

// Query returns the maintained query.
func (mp *MaintainedPres) Query() *core.Query { return mp.q }

// Insert adds triples to the AnS instance and updates the
// materialization incrementally. It returns the number of new classifier
// rows and new measure tuples absorbed (its own batch only). On a frozen
// instance the writes land in the store's delta overlay, so the delta
// evaluations below run on the merged fast path without any re-freeze.
//
// Insert first Syncs: triples that reached the instance out of band
// since the last application are absorbed from the delta feed (or, if
// the base epoch moved, via Refresh) before the batch — otherwise the
// version fast-forward below would silently mask them from later Syncs.
func (mp *MaintainedPres) Insert(triples []rdf.Triple) (newFacts, newMeasures int, err error) {
	if _, _, _, err := mp.Sync(); err != nil {
		return 0, 0, err
	}
	var delta []store.IDTriple
	for _, tr := range triples {
		s, p, o := mp.inst.Dict().EncodeTriple(tr)
		t := store.IDTriple{S: s, P: p, O: o}
		if mp.inst.AddID(t) {
			delta = append(delta, t)
		}
	}
	if len(delta) == 0 {
		mp.ver = mp.inst.Version()
		return 0, 0, nil
	}
	newFacts, newMeasures, err = mp.apply(delta)
	if err != nil {
		// Do not fast-forward: the store has the triples but the
		// materialization does not. The dirty mark set by apply makes
		// the next Sync repair via Refresh.
		return newFacts, newMeasures, err
	}
	mp.ver = mp.inst.Version()
	return newFacts, newMeasures, nil
}

// Sync consumes the instance's delta feed: it applies every triple
// accepted since the materialization's version. When the base epoch
// moved (the feed was folded away by compaction, or the store was
// structurally changed), Sync falls back to a full Refresh and reports
// refreshed = true.
func (mp *MaintainedPres) Sync() (newFacts, newMeasures int, refreshed bool, err error) {
	ver := mp.inst.Version()
	if !mp.dirty && ver == mp.ver {
		return 0, 0, false, nil
	}
	if mp.dirty || ver.Base != mp.ver.Base {
		return 0, 0, true, mp.Refresh()
	}
	delta := mp.inst.DeltaSince(mp.ver.Seq)
	if len(delta) == 0 {
		mp.ver = ver
		return 0, 0, false, nil
	}
	newFacts, newMeasures, err = mp.apply(delta)
	if err != nil {
		return newFacts, newMeasures, false, err
	}
	mp.ver = ver
	return newFacts, newMeasures, false, nil
}

// apply absorbs delta — triples already present in the instance — into
// the maintained c, m_k and pres. It marks the materialization dirty for
// its duration: an error can leave c/m_k partially updated with pres
// behind, which keyed replay cannot repair, so Sync falls back to
// Refresh while the mark stands.
func (mp *MaintainedPres) apply(delta []store.IDTriple) (newFacts, newMeasures int, err error) {
	mp.dirty = true
	// Δc: classifier embeddings touching a delta triple, Σ-filtered,
	// projected to the head, minus rows already present.
	cRows, err := deltaHeadRows(mp.inst, mp.q.Classifier, delta)
	if err != nil {
		return 0, 0, err
	}
	dims := mp.q.Dims()
	deltaC := algebra.NewRelation(mp.c.Cols...)
	for _, row := range cRows {
		deltaC.Append(row)
	}
	pred, err := sigmaFilterFor(mp.ev, deltaC, dims, mp.q.Sigma)
	if err != nil {
		return 0, 0, err
	}
	deltaC = deltaC.Select(pred)
	freshC := algebra.NewRelation(mp.c.Cols...)
	for _, row := range deltaC.Rows {
		k := rowKey(row)
		if _, dup := mp.cKeys[k]; dup {
			continue
		}
		mp.cKeys[k] = struct{}{}
		freshC.Append(row)
		mp.c.Append(row)
	}

	// Δm̄: new measure embeddings; each gets a fresh key.
	root, v := mp.q.Measure.Head[0], mp.q.Measure.Head[1]
	mRows, mVars, err := deltaFullRows(mp.inst, mp.mbarQ, delta)
	if err != nil {
		return 0, 0, err
	}
	rootCol, vCol := -1, -1
	for i, name := range mVars {
		if name == root {
			rootCol = i
		}
		if name == v {
			vCol = i
		}
	}
	freshMk := algebra.NewRelation(core.KeyCol, root, v)
	for _, row := range mRows {
		k := idKey(row)
		if _, dup := mp.mbarKeys[k]; dup {
			continue
		}
		mp.mbarKeys[k] = struct{}{}
		mp.nextKey++
		nr := algebra.Row{
			algebra.KeyV(mp.nextKey),
			algebra.TermV(row[rootCol]),
			algebra.TermV(row[vCol]),
		}
		freshMk.Append(nr)
		mp.mk.Append(nr)
	}

	// Δpres = Δc ⋈ mk(all) ∪ c_old ⋈ Δmk. The first term uses the full
	// mk (which already includes Δmk); the second must exclude Δc rows
	// to avoid double-counting, so join against c *before* this batch's
	// rows were appended — equivalently, subtract the overlap. We join
	// freshC against full mk, and (c minus freshC) against freshMk; since
	// c already contains freshC, build the old-c view explicitly.
	cols := append([]string{mp.q.Root()}, dims...)
	cols = append(cols, core.KeyCol, mp.q.MeasureVar())

	part1, err := freshC.Join(mp.mk, []string{mp.q.Root()}, []string{mp.q.Root()})
	if err != nil {
		return 0, 0, err
	}
	freshKeys := map[string]struct{}{}
	for _, row := range freshC.Rows {
		freshKeys[rowKey(row)] = struct{}{}
	}
	oldC := mp.c.Select(func(row algebra.Row) bool {
		_, isFresh := freshKeys[rowKey(row)]
		return !isFresh
	})
	part2, err := oldC.Join(freshMk, []string{mp.q.Root()}, []string{mp.q.Root()})
	if err != nil {
		return 0, 0, err
	}
	// Swap in a fresh relation header (rows appended copy-on-write):
	// callers holding the previous Pres() snapshot keep a consistent
	// view while the materialization moves forward.
	next := &algebra.Relation{Cols: mp.pres.Cols, Rows: mp.pres.Rows}
	for _, part := range []*algebra.Relation{part1, part2} {
		proj := part.Project(cols...)
		next.Rows = append(next.Rows, proj.Rows...)
	}
	mp.pres = next
	mp.dirty = false
	return freshC.Len(), freshMk.Len(), nil
}

// Refresh recomputes the materialization from scratch; used after
// out-of-band instance mutations (e.g. deletions).
func (mp *MaintainedPres) Refresh() error {
	fresh, err := New(mp.ev, mp.q)
	if err != nil {
		return err
	}
	*mp = *fresh
	return nil
}

// deltaHeadRows returns the head projections of embeddings of q's body
// that use at least one delta triple. Rows may repeat across seeds; the
// caller deduplicates. Evaluation seeds each body pattern in turn with
// each matching delta triple and evaluates the remainder of the body.
func deltaHeadRows(st *store.Store, q *sparql.Query, delta []store.IDTriple) ([]algebra.Row, error) {
	full, _, err := deltaFullRowsProjected(st, q, delta, q.Head)
	if err != nil {
		return nil, err
	}
	return full, nil
}

// deltaFullRows returns the distinct full-body embeddings (all body
// variables) using at least one delta triple, and the variable order.
func deltaFullRows(st *store.Store, q *sparql.Query, delta []store.IDTriple) ([][]dict.ID, []string, error) {
	vars := q.Vars()
	rows, names, err := deltaFullRowsProjected(st, q, delta, vars)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]dict.ID, len(rows))
	for i, row := range rows {
		ids := make([]dict.ID, len(row))
		for j, cell := range row {
			ids[j] = cell.ID
		}
		out[i] = ids
	}
	return out, names, nil
}

// deltaFullRowsProjected enumerates embeddings touching the delta,
// projected onto the given variables, deduplicated on the *full* body
// binding so one embedding is reported once even if several of its
// triples are new.
func deltaFullRowsProjected(st *store.Store, q *sparql.Query, delta []store.IDTriple, project []string) ([]algebra.Row, []string, error) {
	allVars := q.Vars()
	varPos := map[string]int{}
	for i, v := range allVars {
		varPos[v] = i
	}
	d := st.Dict()
	seen := map[string]struct{}{}
	var out []algebra.Row

	for i, tp := range q.Patterns {
		for _, t := range delta {
			binding, ok := matchPattern(d, tp, t)
			if !ok {
				continue
			}
			// Substitute the seed bindings into a copy of the query.
			sub := q.Clone()
			for name, id := range binding {
				term, ok := d.Decode(id)
				if !ok {
					return nil, nil, fmt.Errorf("incr: unknown ID %d", id)
				}
				substituteBody(sub, name, term)
			}
			// Drop the seeded pattern (it is now fully constant and
			// known to hold); keep the rest.
			sub.Patterns = append(sub.Patterns[:i:i], sub.Patterns[i+1:]...)
			var res *bgp.Result
			switch {
			case len(sub.Patterns) == 0:
				res = &bgp.Result{}
			case len(sub.Vars()) == 0:
				// The seed bound every variable: the remaining patterns
				// are ground; verify they hold.
				holds := true
				for _, g := range sub.Patterns {
					if !groundHolds(st, g) {
						holds = false
						break
					}
				}
				if !holds {
					continue
				}
				res = &bgp.Result{}
				sub.Patterns = nil
			default:
				var err error
				res, err = bgp.Eval(st, sub, bgp.Options{Distinct: true, KeepAllVars: true})
				if err != nil {
					return nil, nil, err
				}
			}
			colOf := map[string]int{}
			for ci, name := range res.Vars {
				colOf[name] = ci
			}
			emit := func(row []dict.ID) {
				// Assemble the full binding: seed values + row values.
				fullRow := make([]dict.ID, len(allVars))
				complete := true
				for vi, name := range allVars {
					if id, ok := binding[name]; ok {
						fullRow[vi] = id
						continue
					}
					ci, ok := colOf[name]
					if !ok || row == nil {
						complete = false
						break
					}
					fullRow[vi] = row[ci]
				}
				if !complete {
					return
				}
				k := idKeyIDs(fullRow)
				if _, dup := seen[k]; dup {
					return
				}
				seen[k] = struct{}{}
				proj := make(algebra.Row, len(project))
				for pi, name := range project {
					proj[pi] = algebra.TermV(fullRow[varPos[name]])
				}
				out = append(out, proj)
			}
			if len(sub.Patterns) == 0 {
				// The whole body was the seeded pattern.
				emit(nil)
				continue
			}
			for _, row := range res.Rows {
				emit(row)
			}
		}
	}
	return out, project, nil
}

// groundHolds reports whether a fully-constant pattern is in the store.
func groundHolds(st *store.Store, tp sparql.TriplePattern) bool {
	return st.Contains(rdf.Triple{S: tp.S.Term, P: tp.P.Term, O: tp.O.Term})
}

// matchPattern unifies a triple pattern with a concrete triple,
// returning the variable binding, or ok=false on mismatch (including
// repeated variables that would bind inconsistently).
func matchPattern(d *dict.Dictionary, tp sparql.TriplePattern, t store.IDTriple) (map[string]dict.ID, bool) {
	binding := map[string]dict.ID{}
	bind := func(n sparql.Node, id dict.ID) bool {
		if n.IsVar() {
			if prev, ok := binding[n.Var]; ok {
				return prev == id
			}
			binding[n.Var] = id
			return true
		}
		want, ok := d.Lookup(n.Term)
		return ok && want == id
	}
	if !bind(tp.S, t.S) || !bind(tp.P, t.P) || !bind(tp.O, t.O) {
		return nil, false
	}
	return binding, true
}

// substituteBody replaces a variable with a constant in the body only
// (head membership is irrelevant here; results are reassembled from the
// seed bindings).
func substituteBody(q *sparql.Query, name string, t rdf.Term) {
	var head []string
	for _, v := range q.Head {
		if v != name {
			head = append(head, v)
		}
	}
	q.Head = head
	for i, tp := range q.Patterns {
		if tp.S.Var == name {
			q.Patterns[i].S = sparql.C(t)
		}
		if tp.P.Var == name {
			q.Patterns[i].P = sparql.C(t)
		}
		if tp.O.Var == name {
			q.Patterns[i].O = sparql.C(t)
		}
	}
	if len(q.Head) == 0 && len(q.Patterns) > 0 {
		// Keep the query valid: promote any remaining variable.
		if vs := q.Vars(); len(vs) > 0 {
			q.Head = []string{vs[0]}
		}
	}
}

// sigmaFilterFor adapts the evaluator's Σ filtering to a delta relation.
func sigmaFilterFor(ev *core.Evaluator, rel *algebra.Relation, dims []string, sigma core.Sigma) (func(algebra.Row) bool, error) {
	if len(sigma) == 0 {
		return func(algebra.Row) bool { return true }, nil
	}
	d := ev.Instance().Dict()
	type colSet struct {
		col     int
		allowed map[dict.ID]struct{}
	}
	var sets []colSet
	for _, dim := range dims {
		vals, ok := sigma[dim]
		if !ok {
			continue
		}
		col := rel.Column(dim)
		if col < 0 {
			return nil, fmt.Errorf("incr: Σ dimension %q missing from relation %v", dim, rel.Cols)
		}
		allowed := make(map[dict.ID]struct{}, len(vals))
		for _, t := range vals {
			if id, ok := d.Lookup(t); ok {
				allowed[id] = struct{}{}
			}
		}
		sets = append(sets, colSet{col: col, allowed: allowed})
	}
	return func(row algebra.Row) bool {
		for _, s := range sets {
			if _, ok := s.allowed[row[s.col].ID]; !ok {
				return false
			}
		}
		return true
	}, nil
}

// rowKey encodes a term row.
func rowKey(row algebra.Row) string {
	b := make([]byte, 0, len(row)*8)
	for _, cell := range row {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(uint64(cell.ID)>>s))
		}
	}
	return string(b)
}

func idKey(row []dict.ID) string { return idKeyIDs(row) }

func idKeyIDs(row []dict.ID) string {
	b := make([]byte, 0, len(row)*8)
	for _, id := range row {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(uint64(id)>>s))
		}
	}
	return string(b)
}
