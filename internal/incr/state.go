package incr

// Serializable maintenance state. A MaintainedPres is more than its
// pres(Q): exact delta maintenance needs the classifier result c, the
// keyed measure m_k, the m̄ embedding-dedup set and the newk() counter.
// State captures all of it, so a view-registry snapshot can bring a
// materialization back *maintainable* — after a restart it keeps
// absorbing the store's delta feed instead of being recomputed, which is
// the whole point of warming views from disk.

import (
	"fmt"

	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/store"
)

// State is a point-in-time snapshot of a MaintainedPres, sufficient to
// reconstruct it with FromState over the same instance (same dictionary
// ID assignment — e.g. a store recovered to the exact version the state
// was taken at). The relations are shared, not copied: treat a State as
// immutable.
type State struct {
	// C is the maintained classifier result, Mk the keyed measure m_k,
	// Pres the materialized pres(Q).
	C, Mk, Pres *algebra.Relation
	// MbarKeys are the dedup keys of the m̄ embeddings seen so far.
	MbarKeys []string
	// NextKey continues the newk() sequence.
	NextKey uint64
	// Ver is the instance version the materialization reflects.
	Ver store.Version
}

// State exports the materialization's maintenance state. It fails on a
// dirty materialization (a partially-applied delta cannot be resumed
// from a copy).
func (mp *MaintainedPres) State() (*State, error) {
	if mp.dirty {
		return nil, fmt.Errorf("incr: cannot snapshot a dirty materialization")
	}
	keys := make([]string, 0, len(mp.mbarKeys))
	for k := range mp.mbarKeys {
		keys = append(keys, k)
	}
	return &State{
		C:        mp.c,
		Mk:       mp.mk,
		Pres:     mp.pres,
		MbarKeys: keys,
		NextKey:  mp.nextKey,
		Ver:      mp.ver,
	}, nil
}

// FromState reconstructs a maintained materialization of q from a
// previously exported State, without evaluating anything: the relations
// are adopted as-is and the dedup indexes are rebuilt from them. The
// caller is responsible for the state belonging to q and to the
// evaluator's instance (the view registry guards this with fingerprints
// and store versions); structural mismatches are rejected.
func FromState(ev *core.Evaluator, q *core.Query, s *State) (*MaintainedPres, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if s.C == nil || s.Mk == nil || s.Pres == nil {
		return nil, fmt.Errorf("incr: incomplete state")
	}
	root := q.Root()
	if len(s.Mk.Cols) != 3 || s.Mk.Cols[0] != core.KeyCol || s.Mk.Cols[1] != root {
		return nil, fmt.Errorf("incr: m_k columns %v do not match query root %q", s.Mk.Cols, root)
	}
	wantC := append([]string{root}, q.Dims()...)
	if len(s.C.Cols) != len(wantC) {
		return nil, fmt.Errorf("incr: classifier columns %v, want %v", s.C.Cols, wantC)
	}
	for i, col := range wantC {
		if s.C.Cols[i] != col {
			return nil, fmt.Errorf("incr: classifier columns %v, want %v", s.C.Cols, wantC)
		}
	}
	wantPres := append(append([]string{root}, q.Dims()...), core.KeyCol, q.MeasureVar())
	if len(s.Pres.Cols) != len(wantPres) {
		return nil, fmt.Errorf("incr: pres columns %v, want %v", s.Pres.Cols, wantPres)
	}
	for i, col := range wantPres {
		if s.Pres.Cols[i] != col {
			return nil, fmt.Errorf("incr: pres columns %v, want %v", s.Pres.Cols, wantPres)
		}
	}
	mp := &MaintainedPres{
		q:        q.Clone(),
		ev:       ev,
		inst:     ev.Instance(),
		c:        s.C,
		cKeys:    make(map[string]struct{}, s.C.Len()),
		mbarKeys: make(map[string]struct{}, len(s.MbarKeys)),
		mk:       s.Mk,
		nextKey:  s.NextKey,
		pres:     s.Pres,
		ver:      s.Ver,
	}
	mp.mbarQ = mbarQuery(mp.q)
	for _, row := range s.C.Rows {
		mp.cKeys[rowKey(row)] = struct{}{}
	}
	for _, k := range s.MbarKeys {
		mp.mbarKeys[k] = struct{}{}
	}
	return mp, nil
}
