package incr

import (
	"fmt"
	"math/rand"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

const ns = "http://e.org/"

func iri(s string) rdf.Term { return rdf.NewIRI(ns + s) }

func px() sparql.Prefixes {
	p := sparql.DefaultPrefixes()
	p[""] = ns
	return p
}

func testQuery(t *testing.T, f agg.Func) *core.Query {
	t.Helper()
	c := sparql.MustParseDatalog(
		"c(x, d0, d1) :- x rdf:type :Fact, x :dim0 d0, x :dim1 d1", px())
	m := sparql.MustParseDatalog(
		"m(x, v) :- x rdf:type :Fact, x :did e, e :score v", px())
	q, err := core.New(c, m, f)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// factTriples builds the triples of one synthetic fact.
func factTriples(rng *rand.Rand, id int) []rdf.Triple {
	x := iri(fmt.Sprintf("fact%d", id))
	var out []rdf.Triple
	add := func(s, p, o rdf.Term) { out = append(out, rdf.Triple{S: s, P: p, O: o}) }
	add(x, rdf.Type, iri("Fact"))
	add(x, iri("dim0"), rdf.NewInt(int64(rng.Intn(3))))
	if rng.Float64() < 0.4 {
		add(x, iri("dim0"), rdf.NewInt(int64(3+rng.Intn(2)))) // multi-valued
	}
	add(x, iri("dim1"), rdf.NewInt(int64(rng.Intn(4))))
	for m := 0; m < rng.Intn(3); m++ {
		e := iri(fmt.Sprintf("ev%d_%d", id, m))
		add(x, iri("did"), e)
		add(e, iri("score"), rdf.NewInt(int64(1+rng.Intn(9))))
	}
	return out
}

// checkAgainstFresh compares the maintained pres/ans against a
// from-scratch evaluation (keys differ; compare the keyless projection
// as bags, and the cube exactly).
func checkAgainstFresh(t *testing.T, mp *MaintainedPres) {
	t.Helper()
	q := mp.Query()
	freshPres, err := mp.ev.Pres(q)
	if err != nil {
		t.Fatal(err)
	}
	cols := append([]string{q.Root()}, q.Dims()...)
	cols = append(cols, q.MeasureVar())
	a := mp.Pres().Project(cols...)
	b := freshPres.Project(cols...)
	if !algebra.Equal(a, b) {
		t.Fatalf("maintained pres diverged from fresh evaluation\n maintained: %d rows\n fresh: %d rows",
			a.Len(), b.Len())
	}
	// Keys must still deduplicate correctly: distinct (row, key) pairs
	// equal distinct pairs in the fresh pres.
	if mp.Pres().Dedup().Len() != freshPres.Dedup().Len() {
		t.Fatalf("key structure diverged: %d vs %d distinct pres rows",
			mp.Pres().Dedup().Len(), freshPres.Dedup().Len())
	}
	gotAns, err := mp.Answer()
	if err != nil {
		t.Fatal(err)
	}
	wantAns, err := mp.ev.AnswerFromPres(q, freshPres)
	if err != nil {
		t.Fatal(err)
	}
	if !algebra.Equal(gotAns, wantAns) {
		t.Fatalf("maintained answer diverged\n got: %v\n want: %v", gotAns.Rows, wantAns.Rows)
	}
}

func TestIncrementalMatchesFreshRandom(t *testing.T) {
	for _, aggName := range []string{"sum", "count", "avg"} {
		t.Run(aggName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			st := store.New()
			f, err := agg.ByName(aggName)
			if err != nil {
				t.Fatal(err)
			}
			// Initial population.
			id := 0
			for ; id < 20; id++ {
				for _, tr := range factTriples(rng, id) {
					st.Add(tr)
				}
			}
			ev := core.NewEvaluator(st)
			mp, err := New(ev, testQuery(t, f))
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstFresh(t, mp)
			// Ten incremental batches of new facts.
			for batch := 0; batch < 10; batch++ {
				var triples []rdf.Triple
				for n := 0; n < 1+rng.Intn(5); n++ {
					triples = append(triples, factTriples(rng, id)...)
					id++
				}
				if _, _, err := mp.Insert(triples); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				checkAgainstFresh(t, mp)
			}
		})
	}
}

func TestInsertExtendsExistingFact(t *testing.T) {
	// New triples that extend an existing fact: an extra dimension value
	// (new classifier rows) and an extra measure (new keyed tuple).
	rng := rand.New(rand.NewSource(7))
	st := store.New()
	for idx := 0; idx < 10; idx++ {
		for _, tr := range factTriples(rng, idx) {
			st.Add(tr)
		}
	}
	// Ensure fact0 exists with at least one measure.
	x := iri("fact0")
	st.Add(rdf.Triple{S: x, P: rdf.Type, O: iri("Fact")})
	st.Add(rdf.Triple{S: x, P: iri("dim0"), O: rdf.NewInt(0)})
	st.Add(rdf.Triple{S: x, P: iri("dim1"), O: rdf.NewInt(0)})
	st.Add(rdf.Triple{S: x, P: iri("did"), O: iri("seed_e")})
	st.Add(rdf.Triple{S: iri("seed_e"), P: iri("score"), O: rdf.NewInt(5)})

	ev := core.NewEvaluator(st)
	mp, err := New(ev, testQuery(t, agg.Sum))
	if err != nil {
		t.Fatal(err)
	}
	before := mp.Pres().Len()

	// A second dim0 value multiplies fact0's classifier rows.
	if _, _, err := mp.Insert([]rdf.Triple{
		{S: x, P: iri("dim0"), O: rdf.NewInt(99)},
	}); err != nil {
		t.Fatal(err)
	}
	checkAgainstFresh(t, mp)
	if mp.Pres().Len() <= before {
		t.Fatal("multi-valued extension did not grow pres")
	}

	// A new measure for fact0 must join against ALL its classifier rows.
	if _, _, err := mp.Insert([]rdf.Triple{
		{S: x, P: iri("did"), O: iri("new_e")},
		{S: iri("new_e"), P: iri("score"), O: rdf.NewInt(8)},
	}); err != nil {
		t.Fatal(err)
	}
	checkAgainstFresh(t, mp)
}

func TestInsertDuplicateTriplesNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	st := store.New()
	var all []rdf.Triple
	for idx := 0; idx < 15; idx++ {
		trs := factTriples(rng, idx)
		all = append(all, trs...)
		for _, tr := range trs {
			st.Add(tr)
		}
	}
	ev := core.NewEvaluator(st)
	mp, err := New(ev, testQuery(t, agg.Sum))
	if err != nil {
		t.Fatal(err)
	}
	before := mp.Pres().Len()
	nf, nm, err := mp.Insert(all) // every triple already present
	if err != nil {
		t.Fatal(err)
	}
	if nf != 0 || nm != 0 || mp.Pres().Len() != before {
		t.Fatalf("duplicate insert changed state: facts=%d measures=%d", nf, nm)
	}
	checkAgainstFresh(t, mp)
}

func TestInsertWithSigma(t *testing.T) {
	// Σ-restricted maintained query: newly inserted facts outside the
	// restriction must not enter pres.
	rng := rand.New(rand.NewSource(11))
	st := store.New()
	for idx := 0; idx < 20; idx++ {
		for _, tr := range factTriples(rng, idx) {
			st.Add(tr)
		}
	}
	q := testQuery(t, agg.Sum)
	restricted, err := core.Dice(q, map[string][]rdf.Term{"d0": {rdf.NewInt(0), rdf.NewInt(1)}})
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(st)
	mp, err := New(ev, restricted)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstFresh(t, mp)
	id := 100
	for batch := 0; batch < 5; batch++ {
		var triples []rdf.Triple
		for n := 0; n < 3; n++ {
			triples = append(triples, factTriples(rng, id)...)
			id++
		}
		if _, _, err := mp.Insert(triples); err != nil {
			t.Fatal(err)
		}
		checkAgainstFresh(t, mp)
	}
}

// TestSyncConsumesDeltaFeed: writes that reach the instance out of band
// (not through Insert) are absorbed by Sync via the store's delta feed,
// on top of the frozen base; a compaction between writes and Sync forces
// the Refresh fallback, which must also converge.
func TestSyncConsumesDeltaFeed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	st := store.New()
	for idx := 0; idx < 20; idx++ {
		for _, tr := range factTriples(rng, idx) {
			st.Add(tr)
		}
	}
	st.Freeze()
	ev := core.NewEvaluator(st)
	mp, err := New(ev, testQuery(t, agg.Sum))
	if err != nil {
		t.Fatal(err)
	}

	// Out-of-band writes into the frozen store land in the delta overlay.
	id := 500
	for batch := 0; batch < 4; batch++ {
		for n := 0; n < 3; n++ {
			for _, tr := range factTriples(rng, id) {
				st.Add(tr)
			}
			id++
		}
		if !st.IsFrozen() {
			t.Fatal("writes dropped the frozen base")
		}
		nf, nm, refreshed, err := mp.Sync()
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if refreshed {
			t.Fatalf("batch %d: Sync refreshed despite a live delta feed", batch)
		}
		if nf == 0 && nm == 0 && batch == 0 {
			t.Fatal("Sync absorbed nothing from a non-empty delta")
		}
		checkAgainstFresh(t, mp)
		if mp.Version() != st.Version() {
			t.Fatalf("batch %d: version %+v, store %+v", batch, mp.Version(), st.Version())
		}
	}
	// Idempotent when caught up.
	if nf, nm, refreshed, err := mp.Sync(); nf != 0 || nm != 0 || refreshed || err != nil {
		t.Fatalf("caught-up Sync: %d %d %v %v", nf, nm, refreshed, err)
	}

	// Compaction folds the feed away: the next Sync after further writes
	// must fall back to Refresh and still converge.
	for _, tr := range factTriples(rng, id) {
		st.Add(tr)
	}
	st.Freeze() // compacts: base epoch moves
	_, _, refreshed, err := mp.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatal("Sync did not refresh after a base-epoch move")
	}
	checkAgainstFresh(t, mp)
}

// TestInsertAbsorbsPendingFeed: an out-of-band write followed by an
// Insert must not be masked — Insert's version fast-forward has to pull
// the pending feed triples in first, or a later Sync would never see
// them (regression: maintained pres permanently diverged).
func TestInsertAbsorbsPendingFeed(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	st := store.New()
	for idx := 0; idx < 15; idx++ {
		for _, tr := range factTriples(rng, idx) {
			st.Add(tr)
		}
	}
	st.Freeze()
	mp, err := New(core.NewEvaluator(st), testQuery(t, agg.Sum))
	if err != nil {
		t.Fatal(err)
	}
	// Out of band: straight into the store's delta overlay.
	for _, tr := range factTriples(rng, 600) {
		st.Add(tr)
	}
	// Through the materialization: must absorb both.
	if _, _, err := mp.Insert(factTriples(rng, 601)); err != nil {
		t.Fatal(err)
	}
	checkAgainstFresh(t, mp)
	if nf, nm, refreshed, err := mp.Sync(); nf != 0 || nm != 0 || refreshed || err != nil {
		t.Fatalf("post-Insert Sync found leftovers: %d %d %v %v", nf, nm, refreshed, err)
	}
}

func TestRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	st := store.New()
	for idx := 0; idx < 10; idx++ {
		for _, tr := range factTriples(rng, idx) {
			st.Add(tr)
		}
	}
	ev := core.NewEvaluator(st)
	mp, err := New(ev, testQuery(t, agg.Sum))
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-band mutation, then Refresh.
	x := iri("oob")
	st.Add(rdf.Triple{S: x, P: rdf.Type, O: iri("Fact")})
	st.Add(rdf.Triple{S: x, P: iri("dim0"), O: rdf.NewInt(1)})
	st.Add(rdf.Triple{S: x, P: iri("dim1"), O: rdf.NewInt(1)})
	st.Add(rdf.Triple{S: x, P: iri("did"), O: iri("oob_e")})
	st.Add(rdf.Triple{S: iri("oob_e"), P: iri("score"), O: rdf.NewInt(3)})
	if err := mp.Refresh(); err != nil {
		t.Fatal(err)
	}
	checkAgainstFresh(t, mp)
}

func TestMaintainedDrillOutStaysCorrect(t *testing.T) {
	// The point of maintenance: after inserts, Algorithm 1 over the
	// maintained pres still answers the drilled-out query correctly.
	rng := rand.New(rand.NewSource(17))
	st := store.New()
	for idx := 0; idx < 30; idx++ {
		for _, tr := range factTriples(rng, idx) {
			st.Add(tr)
		}
	}
	ev := core.NewEvaluator(st)
	q := testQuery(t, agg.Sum)
	mp, err := New(ev, q)
	if err != nil {
		t.Fatal(err)
	}
	id := 200
	for batch := 0; batch < 5; batch++ {
		var triples []rdf.Triple
		for n := 0; n < 4; n++ {
			triples = append(triples, factTriples(rng, id)...)
			id++
		}
		if _, _, err := mp.Insert(triples); err != nil {
			t.Fatal(err)
		}
		rewritten, err := ev.DrillOutRewrite(q, mp.Pres(), "d1")
		if err != nil {
			t.Fatal(err)
		}
		qOut, err := core.DrillOut(q, "d1")
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ev.Answer(qOut)
		if err != nil {
			t.Fatal(err)
		}
		if !algebra.Equal(direct, rewritten) {
			t.Fatalf("batch %d: drill-out over maintained pres diverged", batch)
		}
	}
}

func BenchmarkInsertVsRecompute(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	st := store.New()
	for idx := 0; idx < 2000; idx++ {
		for _, tr := range factTriples(rng, idx) {
			st.Add(tr)
		}
	}
	ev := core.NewEvaluator(st)
	c := sparql.MustParseDatalog(
		"c(x, d0, d1) :- x rdf:type :Fact, x :dim0 d0, x :dim1 d1", px())
	m := sparql.MustParseDatalog(
		"m(x, v) :- x rdf:type :Fact, x :did e, e :score v", px())
	q, err := core.New(c, m, agg.Sum)
	if err != nil {
		b.Fatal(err)
	}
	mp, err := New(ev, q)
	if err != nil {
		b.Fatal(err)
	}
	id := 10000
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := mp.Insert(factTriples(rng, id)); err != nil {
				b.Fatal(err)
			}
			id++
		}
	})
	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, tr := range factTriples(rng, id) {
				st.Add(tr)
			}
			id++
			if _, err := ev.Pres(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
