// Package export renders cube relations (and pres(Q) partial results)
// for human and machine consumption: aligned text tables, CSV, and JSON.
// Term IDs are resolved through the graph dictionary; numeric literals
// print their lexical form, IRIs print either in full or abbreviated by
// a reverse-prefix table.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"rdfcube/internal/algebra"
	"rdfcube/internal/dict"
	"rdfcube/internal/sparql"
)

// Options controls rendering.
type Options struct {
	// Dict resolves term IDs; required.
	Dict *dict.Dictionary
	// Prefixes, when set, abbreviates IRIs to prefix:local form using
	// the longest matching namespace.
	Prefixes sparql.Prefixes
	// SortRows renders rows in deterministic sorted order.
	SortRows bool
}

// cellString renders one relation cell.
func (o Options) cellString(v algebra.Value) string {
	switch v.Kind {
	case algebra.TermValue:
		t, ok := o.Dict.Decode(v.ID)
		if !ok {
			return fmt.Sprintf("?%d", v.ID)
		}
		if t.IsIRI() && o.Prefixes != nil {
			if s, ok := o.abbreviate(t.Value()); ok {
				return s
			}
		}
		return t.Value()
	default:
		return v.String()
	}
}

// abbreviate rewrites iri to prefix:local using the longest namespace.
func (o Options) abbreviate(iri string) (string, bool) {
	best, bestNS := "", ""
	for name, nsIRI := range o.Prefixes {
		if nsIRI == "" || !strings.HasPrefix(iri, nsIRI) {
			continue
		}
		// Longest namespace wins; ties break on the shorter, then
		// lexicographically smaller prefix name, for deterministic output.
		if len(nsIRI) > len(bestNS) ||
			(len(nsIRI) == len(bestNS) && (len(name) < len(best) || (len(name) == len(best) && name < best))) {
			best, bestNS = name, nsIRI
		}
	}
	if bestNS == "" {
		return "", false
	}
	return best + ":" + iri[len(bestNS):], true
}

// rows materializes string cells, optionally sorted.
func (o Options) rows(rel *algebra.Relation) [][]string {
	out := make([][]string, len(rel.Rows))
	for i, row := range rel.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = o.cellString(v)
		}
		out[i] = cells
	}
	if o.SortRows {
		sort.Slice(out, func(i, j int) bool {
			for k := range out[i] {
				if out[i][k] != out[j][k] {
					return out[i][k] < out[j][k]
				}
			}
			return false
		})
	}
	return out
}

// Text writes an aligned, header-first text table.
func Text(w io.Writer, rel *algebra.Relation, opts Options) error {
	rows := opts.rows(rel)
	widths := make([]int, len(rel.Cols))
	for i, c := range rel.Cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if err := line(rel.Cols); err != nil {
		return err
	}
	sep := make([]string, len(rel.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes an RFC 4180 document with a header row.
func CSV(w io.Writer, rel *algebra.Relation, opts Options) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Cols); err != nil {
		return err
	}
	for _, row := range opts.rows(rel) {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonCube is the JSON document shape.
type jsonCube struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// JSON writes {"columns": [...], "rows": [[...], ...]}.
func JSON(w io.Writer, rel *algebra.Relation, opts Options) error {
	doc := jsonCube{Columns: rel.Cols, Rows: opts.rows(rel)}
	if doc.Rows == nil {
		doc.Rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Format dispatches by name: "text", "csv" or "json".
func Format(w io.Writer, rel *algebra.Relation, format string, opts Options) error {
	switch format {
	case "text", "":
		return Text(w, rel, opts)
	case "csv":
		return CSV(w, rel, opts)
	case "json":
		return JSON(w, rel, opts)
	default:
		return fmt.Errorf("export: unknown format %q (want text, csv or json)", format)
	}
}
