package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"rdfcube/internal/algebra"
	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
)

func fixture() (*algebra.Relation, Options) {
	d := dict.New()
	madrid := d.Encode(rdf.NewIRI("http://e.org/Madrid"))
	ny := d.Encode(rdf.NewIRI("http://e.org/NY"))
	age28 := d.Encode(rdf.NewInt(28))
	rel := algebra.NewRelation("dage", "dcity", "v")
	rel.Append(algebra.Row{algebra.TermV(age28), algebra.TermV(ny), algebra.NumV(2)})
	rel.Append(algebra.Row{algebra.TermV(age28), algebra.TermV(madrid), algebra.NumV(3.5)})
	px := sparql.Prefixes{"ex": "http://e.org/"}
	return rel, Options{Dict: d, Prefixes: px, SortRows: true}
}

func TestText(t *testing.T) {
	rel, opts := fixture()
	var buf bytes.Buffer
	if err := Text(&buf, rel, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("text output has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "dage") || !strings.Contains(lines[0], "dcity") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "ex:Madrid") {
		t.Errorf("IRI not abbreviated:\n%s", out)
	}
	// Sorted: Madrid row before NY row.
	if strings.Index(out, "Madrid") > strings.Index(out, "NY") {
		t.Error("rows not sorted")
	}
}

func TestCSV(t *testing.T) {
	rel, opts := fixture()
	var buf bytes.Buffer
	if err := CSV(&buf, rel, opts); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("CSV rows = %d, want 3", len(records))
	}
	if records[0][2] != "v" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][1] != "ex:Madrid" || records[1][2] != "3.5" {
		t.Errorf("first data row = %v", records[1])
	}
}

func TestJSON(t *testing.T) {
	rel, opts := fixture()
	var buf bytes.Buffer
	if err := JSON(&buf, rel, opts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Columns) != 3 || len(doc.Rows) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestJSONEmptyRelation(t *testing.T) {
	_, opts := fixture()
	rel := algebra.NewRelation("a")
	var buf bytes.Buffer
	if err := JSON(&buf, rel, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rows":[]`) {
		t.Errorf("empty relation must serialize rows as []: %s", buf.String())
	}
}

func TestFormatDispatch(t *testing.T) {
	rel, opts := fixture()
	for _, f := range []string{"text", "csv", "json", ""} {
		var buf bytes.Buffer
		if err := Format(&buf, rel, f, opts); err != nil {
			t.Errorf("Format(%q): %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("Format(%q) wrote nothing", f)
		}
	}
	var buf bytes.Buffer
	if err := Format(&buf, rel, "xml", opts); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestUnknownTermID(t *testing.T) {
	_, opts := fixture()
	rel := algebra.NewRelation("a")
	rel.Append(algebra.Row{algebra.TermV(9999)})
	var buf bytes.Buffer
	if err := Text(&buf, rel, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "?9999") {
		t.Errorf("unknown ID not flagged: %s", buf.String())
	}
}

func TestNoAbbreviationWithoutPrefixes(t *testing.T) {
	rel, opts := fixture()
	opts.Prefixes = nil
	var buf bytes.Buffer
	if err := Text(&buf, rel, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "http://e.org/Madrid") {
		t.Error("full IRI expected without prefixes")
	}
}

func TestKeyAndNumCells(t *testing.T) {
	d := dict.New()
	rel := algebra.NewRelation("k", "v")
	rel.Append(algebra.Row{algebra.KeyV(7), algebra.NumV(1.25)})
	var buf bytes.Buffer
	if err := Text(&buf, rel, Options{Dict: d}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k7") || !strings.Contains(buf.String(), "1.25") {
		t.Errorf("cell rendering: %s", buf.String())
	}
}
