package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"rdfcube/internal/faultfs"
)

// writeThreeRecordWAL builds a log with three batches and returns its
// raw bytes plus the start offset of each record.
func writeThreeRecordWAL(t *testing.T, path string) (raw []byte, offsets []int64) {
	t.Helper()
	w, err := CreateWAL(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(walHdrLen)
	for _, b := range []Batch{walBatch(0, 1), walBatch(1, 2), walBatch(3, 1)} {
		offsets = append(offsets, off)
		before := w.Bytes()
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		off += w.Bytes() - before
	}
	w.Close()
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, offsets
}

// TestWALMidLogCorruption flips one payload byte of every non-final
// record in turn: intact records follow the damage, so OpenWAL must
// fail closed with ErrCorrupt (as an ArtifactError naming the record
// offset) instead of silently truncating acknowledged writes away.
func TestWALMidLogCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mid.wal")
	raw, offsets := writeThreeRecordWAL(t, path)

	for rec := 0; rec < 2; rec++ {
		flip := append([]byte(nil), raw...)
		flip[offsets[rec]+8] ^= 0x01 // first payload byte
		os.WriteFile(path, flip, 0o644)

		_, _, _, err := OpenWAL(path, 0)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("record %d corruption: err = %v, want ErrCorrupt", rec, err)
		}
		var ae *ArtifactError
		if !errors.As(err, &ae) {
			t.Fatalf("record %d corruption: %v is not an ArtifactError", rec, err)
		}
		if ae.Kind != "wal" || ae.Offset != offsets[rec] {
			t.Fatalf("record %d corruption: kind=%q offset=%d, want wal @%d", rec, ae.Kind, ae.Offset, offsets[rec])
		}
	}
}

// TestWALTornFinalRecord flips a payload byte of the LAST record: with
// nothing intact after it this is indistinguishable from a crash
// mid-append, so it truncates away — the two acknowledged batches
// before it survive and the log stays appendable.
func TestWALTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.wal")
	raw, offsets := writeThreeRecordWAL(t, path)

	flip := append([]byte(nil), raw...)
	flip[offsets[2]+8] ^= 0x01
	os.WriteFile(path, flip, 0o644)

	w, batches, _, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatalf("torn final record: %v, want clean truncation", err)
	}
	if len(batches) != 2 {
		t.Fatalf("torn final record: %d batches survive, want 2", len(batches))
	}
	if w.Bytes() != offsets[2] {
		t.Fatalf("log truncated to %d bytes, want %d", w.Bytes(), offsets[2])
	}
	if err := w.Append(walBatch(3, 1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
}

// TestWALValidCRCBadPayload crafts a record whose checksum matches a
// payload that does not decode: a torn append cannot produce that, so
// it must surface ErrCorrupt even as the final record.
func TestWALValidCRCBadPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.wal")
	raw, _ := writeThreeRecordWAL(t, path)

	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	rec := make([]byte, 8+len(garbage))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(garbage)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(garbage, castagnoli))
	copy(rec[8:], garbage)
	os.WriteFile(path, append(append([]byte(nil), raw...), rec...), 0o644)

	_, _, _, err := OpenWAL(path, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("valid-CRC garbage record: err = %v, want ErrCorrupt", err)
	}
	var ae *ArtifactError
	if !errors.As(err, &ae) || ae.Offset != int64(len(raw)) {
		t.Fatalf("valid-CRC garbage record: %v, want ArtifactError at offset %d", err, len(raw))
	}
}

// TestWALAppendRollback injects a short write into an append: the log
// must roll back to the previous record boundary so replay never meets
// torn bytes, and the next (clean) append extends the log normally.
func TestWALAppendRollback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "roll.wal")
	in := faultfs.NewInjector(nil)
	w, err := CreateWALFS(in, path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walBatch(0, 2)); err != nil {
		t.Fatal(err)
	}
	good := w.Bytes()

	in.Arm(faultfs.Fault{Op: faultfs.OpWrite, Path: "roll.wal", Mode: faultfs.ModeShortWrite, Count: 1})
	if err := w.Append(walBatch(2, 3)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("faulted append: %v, want ErrInjected", err)
	}
	if info, _ := os.Stat(path); info.Size() != good {
		t.Fatalf("log is %d bytes after rollback, want %d", info.Size(), good)
	}
	if err := w.Append(walBatch(2, 1)); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	w.Close()

	_, batches, _, err := OpenWAL(path, 0)
	if err != nil || len(batches) != 2 {
		t.Fatalf("replay after rollback: %d batches (err %v), want 2", len(batches), err)
	}
}

// TestWALSyncFaultENOSPC drives Append through fsync failure and
// ENOSPC: both must surface the error, keep the log consistent, and
// leave errors.Is-checkable causes.
func TestWALSyncFaultENOSPC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nospace.wal")
	in := faultfs.NewInjector(nil)
	w, err := CreateWALFS(in, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Append(walBatch(0, 1))

	in.Arm(faultfs.Fault{Op: faultfs.OpSync, Path: "nospace.wal", Mode: faultfs.ModeErr, Count: 1})
	if err := w.Append(walBatch(1, 1)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("fsync fault: %v", err)
	}
	in.Arm(faultfs.Fault{Op: faultfs.OpWrite, Path: "nospace.wal", Mode: faultfs.ModeENOSPC, Count: 1})
	if err := w.Append(walBatch(1, 1)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("enospc fault: %v", err)
	}
	if err := w.Append(walBatch(1, 1)); err != nil {
		t.Fatalf("append after faults cleared: %v", err)
	}
	_, batches, _, err := OpenWALFS(in, path, 0)
	if err != nil || len(batches) != 2 {
		t.Fatalf("replay: %d batches (err %v), want 2", len(batches), err)
	}
}
