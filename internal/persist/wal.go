package persist

// Write-ahead log for delta writes over a frozen snapshot.
//
// File layout:
//
//	magic "RDCW" | version u8 | baseEpoch u64 LE
//	record*: payloadLen u32 LE | crc32c u32 LE | payload
//
// Each record is one Batch — the new dictionary terms and accepted
// triples of one write — appended and fsynced before the write is
// acknowledged. The header pins the snapshot base epoch the log extends;
// Reset rewrites the header when a compaction moves the base.
//
// Replay is idempotent: terms re-encode to their existing IDs and the
// store suppresses duplicate triples, so a log whose prefix is already
// folded into the snapshot (crash between snapshot write and log reset)
// replays harmlessly.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"sync/atomic"

	"rdfcube/internal/dict"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/obs"
	"rdfcube/internal/rdf"
)

const (
	walMagic   = "RDCW"
	walVersion = 1
	walHdrLen  = 4 + 1 + 8
	// walMaxRecord caps one record's payload; larger claims are treated
	// as corruption (a batch is one HTTP-request-sized write).
	walMaxRecord = 1 << 30
)

// Triple is a dictionary-encoded triple in WAL records (the persist-side
// mirror of store.IDTriple; this package sits below the store).
type Triple struct {
	S, P, O dict.ID
}

// Batch is one WAL record: the write's newly-interned terms (IDs
// DictLen+1..DictLen+len(Terms), in interning order) and its accepted
// triples, in arrival order.
type Batch struct {
	// DictLen is the dictionary size before this batch's terms.
	DictLen int
	// Terms are the terms first interned by this batch, in ID order.
	Terms []rdf.Term
	// Triples are the accepted (previously absent) triples, in arrival
	// order — the store's delta-feed slice for this write.
	Triples []Triple
}

// WALMetrics receives the log's write-path observations. The collectors
// come from an obs.Registry owned by the caller (the server), which
// re-arms a fresh WAL after every checkpoint swap — the registry's
// idempotent registration keeps the series continuous across swaps.
// Any field may be nil (obs collectors are nil-safe).
type WALMetrics struct {
	// AppendSeconds observes the full append latency per batch: encode,
	// write and fsync. SyncSeconds observes the fsync portion alone, so
	// the gap between the two is the cheap in-memory work.
	AppendSeconds *obs.Histogram
	SyncSeconds   *obs.Histogram
	// AppendedBytes counts record bytes durably appended; AppendErrors
	// counts failed appends (rolled back or log marked broken).
	AppendedBytes *obs.Counter
	AppendErrors  *obs.Counter
	// GroupSyncs counts fsyncs issued by the group committer (one per
	// leader); GroupCoalesced counts batches made durable by another
	// caller's fsync. durable_batches / GroupSyncs is the coalescing
	// factor.
	GroupSyncs     *obs.Counter
	GroupCoalesced *obs.Counter
}

// WAL is an append-only, fsync-per-batch delta log.
type WAL struct {
	path string
	fsys faultfs.FS
	f    faultfs.File
	// batches and bytes are durable counts. They are atomics because a
	// group-commit leader advances them outside the owner's write lock
	// (wal_group.go), racing metric scrapes that sample Bytes().
	epoch   uint64
	batches atomic.Int64
	bytes   atomic.Int64
	m       *WALMetrics
	// gc, when non-nil, routes Append through the group committer
	// (wal_group.go): records are staged by many callers and one leader
	// fsyncs for all of them.
	gc *walGroup
	// broken marks a log whose tail could not be rolled back after a
	// failed append: further appends would land beyond torn bytes and be
	// silently dropped by the next replay, so they are refused instead.
	broken bool
}

// SetMetrics arms (or, with nil, disarms) write-path metrics. Call it
// before concurrent use; the WAL itself is single-writer.
func (w *WAL) SetMetrics(m *WALMetrics) { w.m = m }

// CreateWAL creates (or truncates) the log at path for the given base
// epoch.
func CreateWAL(path string, baseEpoch uint64) (*WAL, error) {
	return CreateWALFS(faultfs.OS, path, baseEpoch)
}

// CreateWALFS is CreateWAL over an injectable filesystem.
func CreateWALFS(fsys faultfs.FS, path string, baseEpoch uint64) (*WAL, error) {
	fsys = faultfs.OrOS(fsys)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{path: path, fsys: fsys, f: f}
	if err := w.writeHeader(baseEpoch); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *WAL) writeHeader(baseEpoch uint64) error {
	var hdr [walHdrLen]byte
	copy(hdr[:4], walMagic)
	hdr[4] = walVersion
	binary.LittleEndian.PutUint64(hdr[5:], baseEpoch)
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	if err := w.f.Truncate(walHdrLen); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if _, err := w.f.Seek(walHdrLen, io.SeekStart); err != nil {
		return err
	}
	w.epoch = baseEpoch
	w.batches.Store(0)
	w.bytes.Store(walHdrLen)
	if w.gc != nil {
		w.gc.reset(walHdrLen)
	}
	return nil
}

// OpenWAL opens the log at path, reading every intact record. A missing
// file is created empty.
//
// Two failure shapes are distinguished, byte for byte:
//
//   - A *torn tail* — a trailing record that is truncated, or whose
//     checksum fails with no intact record after it — is the signature
//     of a crash mid-append. It is truncated away so subsequent appends
//     extend a clean log; the writes it held were never acknowledged.
//   - *Mid-log corruption* — a checksum-failing record FOLLOWED by at
//     least one intact record, or a checksum-valid record that does not
//     decode — cannot come from a torn append: acknowledged writes
//     after the damage would be silently dropped by truncation. It
//     fails closed with an ArtifactError (wrapping ErrCorrupt) naming
//     the path and byte offset.
//
// The returned batches are the replayable delta, in append order,
// together with the base epoch the log extends.
func OpenWAL(path string, defaultEpoch uint64) (w *WAL, batches []Batch, baseEpoch uint64, err error) {
	return OpenWALFS(faultfs.OS, path, defaultEpoch)
}

// OpenWALFS is OpenWAL over an injectable filesystem.
func OpenWALFS(fsys faultfs.FS, path string, defaultEpoch uint64) (w *WAL, batches []Batch, baseEpoch uint64, err error) {
	fsys = faultfs.OrOS(fsys)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	w = &WAL{path: path, fsys: fsys, f: f}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if info.Size() == 0 {
		if err := w.writeHeader(defaultEpoch); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		return w, nil, defaultEpoch, nil
	}
	var hdr [walHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, nil, 0, artifactErr("wal", path, 0, corruptf("short header: %v", err))
	}
	if string(hdr[:4]) != walMagic || hdr[4] != walVersion {
		f.Close()
		return nil, nil, 0, artifactErr("wal", path, 0, corruptf("bad header %q version %d", hdr[:4], hdr[4]))
	}
	w.epoch = binary.LittleEndian.Uint64(hdr[5:])

	good := int64(walHdrLen)
	var rec [8]byte
	for {
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			break // clean EOF or torn record header
		}
		payloadLen := binary.LittleEndian.Uint32(rec[:4])
		crc := binary.LittleEndian.Uint32(rec[4:])
		// Bound the claimed length by the bytes actually on disk before
		// allocating, and by the sanity cap; a claim overrunning EOF is
		// indistinguishable from a torn length field and treated as a
		// torn tail.
		if payloadLen > walMaxRecord || int64(payloadLen) > info.Size()-good-8 {
			break
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		next := good + 8 + int64(payloadLen)
		if crc32.Checksum(payload, castagnoli) != crc {
			// A complete record with a failing checksum: torn only if
			// nothing intact follows. An intact successor proves the log
			// extended past this record, so the damage happened after the
			// append — fail closed instead of silently dropping the
			// acknowledged writes behind it.
			if intactRecordAt(f, next, info.Size()) {
				f.Close()
				return nil, nil, 0, artifactErr("wal", path, good,
					corruptf("record checksum mismatch with intact records following (mid-log corruption, not a torn tail)"))
			}
			break
		}
		b, err := decodeBatch(payload)
		if err != nil {
			// The checksum held but the payload does not decode: a torn
			// append cannot produce a valid CRC over garbage, so this is
			// corruption (or a writer bug), never a safe truncation.
			f.Close()
			return nil, nil, 0, artifactErr("wal", path, good, err)
		}
		batches = append(batches, b)
		good = next
	}
	// Drop the torn tail, if any, and position appends after the last
	// intact record.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	w.batches.Store(int64(len(batches)))
	w.bytes.Store(good)
	return w, batches, w.epoch, nil
}

// intactRecordAt reports whether a complete, checksum-valid record
// starts at off. Used to distinguish mid-log corruption (intact records
// after a bad one) from a torn tail (nothing intact follows).
func intactRecordAt(f faultfs.File, off, size int64) bool {
	var rec [8]byte
	if off+8 > size {
		return false
	}
	if _, err := f.ReadAt(rec[:], off); err != nil {
		return false
	}
	payloadLen := binary.LittleEndian.Uint32(rec[:4])
	crc := binary.LittleEndian.Uint32(rec[4:])
	if payloadLen > walMaxRecord || int64(payloadLen) > size-off-8 {
		return false
	}
	payload := make([]byte, payloadLen)
	if _, err := f.ReadAt(payload, off+8); err != nil {
		return false
	}
	return crc32.Checksum(payload, castagnoli) == crc
}

// encodeRecord frames one batch as a WAL record: length, checksum,
// payload.
func encodeRecord(b Batch) []byte {
	var e Enc
	e.Uvarint(uint64(b.DictLen))
	e.Uvarint(uint64(len(b.Terms)))
	for _, t := range b.Terms {
		e.Term(t)
	}
	e.Uvarint(uint64(len(b.Triples)))
	for _, t := range b.Triples {
		e.Uvarint(uint64(t.S))
		e.Uvarint(uint64(t.P))
		e.Uvarint(uint64(t.O))
	}
	payload := e.Bytes()
	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	copy(rec[8:], payload)
	return rec
}

// Append encodes b, appends it and fsyncs. The write is durable when
// Append returns. A failed append rolls the file back to the previous
// record boundary, so a short write (ENOSPC, I/O error) can never
// leave torn bytes that would swallow later records at replay; if even
// the rollback fails, the log refuses further appends.
//
// With group commit armed (SetGroupCommit), Append is safe for
// concurrent callers and one fsync covers every batch staged while it
// runs; without it, the WAL is single-writer.
func (w *WAL) Append(b Batch) error {
	if w.gc != nil {
		p, err := w.Stage(b)
		if err != nil {
			return err
		}
		return p.Commit()
	}
	if w.broken {
		w.m.countError()
		return fmt.Errorf("wal %s: refusing append after unrecoverable write failure", w.path)
	}
	var start time.Time
	if w.m != nil {
		start = time.Now()
	}
	rec := encodeRecord(b)
	_, werr := w.f.Write(rec)
	if werr == nil {
		var syncStart time.Time
		if w.m != nil {
			syncStart = time.Now()
		}
		werr = w.f.Sync()
		if werr == nil && w.m != nil {
			w.m.SyncSeconds.Observe(time.Since(syncStart).Nanoseconds())
		}
	}
	if werr != nil {
		w.m.countError()
		if terr := w.f.Truncate(w.bytes.Load()); terr == nil {
			if _, serr := w.f.Seek(w.bytes.Load(), io.SeekStart); serr != nil {
				w.broken = true
			}
		} else {
			w.broken = true
		}
		return werr
	}
	w.batches.Add(1)
	w.bytes.Add(int64(len(rec)))
	if w.m != nil {
		w.m.AppendSeconds.Observe(time.Since(start).Nanoseconds())
		w.m.AppendedBytes.Add(int64(len(rec)))
	}
	return nil
}

// countError bumps the append-error counter (nil-safe on the metrics
// struct itself, not just its fields).
func (m *WALMetrics) countError() {
	if m != nil {
		m.AppendErrors.Inc()
	}
}

func decodeBatch(payload []byte) (Batch, error) {
	d := NewDec(payload)
	b := Batch{DictLen: int(d.Uvarint())}
	nTerms := d.Count(2)
	for i := 0; i < nTerms; i++ {
		b.Terms = append(b.Terms, d.Term())
		if d.Err() != nil {
			return Batch{}, d.Err()
		}
	}
	nTriples := d.Count(3)
	for i := 0; i < nTriples; i++ {
		t := Triple{
			S: dict.ID(d.Uvarint()),
			P: dict.ID(d.Uvarint()),
			O: dict.ID(d.Uvarint()),
		}
		if d.Err() != nil {
			return Batch{}, d.Err()
		}
		if t.S == 0 || t.P == 0 || t.O == 0 {
			return Batch{}, corruptf("wal: zero term ID in triple %d", i)
		}
		b.Triples = append(b.Triples, t)
	}
	if d.Err() != nil {
		return Batch{}, d.Err()
	}
	if d.Remaining() != 0 {
		return Batch{}, corruptf("wal: %d trailing bytes in record", d.Remaining())
	}
	return b, nil
}

// Reset truncates the log back to an empty record set under a new base
// epoch — called after a checkpoint folded the logged delta into the
// snapshot.
func (w *WAL) Reset(baseEpoch uint64) error {
	return w.writeHeader(baseEpoch)
}

// ReplaceWAL atomically replaces the log at path with one holding the
// given epoch and batches, returning the open replacement. This is the
// checkpoint truncation: the snapshot just absorbed the old log, and the
// delta tail still pending in memory becomes the entire new log. The
// swap is build-then-rename, so a crash at any point leaves either the
// old complete log or the new complete log — never a window where
// acknowledged writes exist in neither the snapshot nor the WAL.
func ReplaceWAL(path string, epoch uint64, batches []Batch) (*WAL, error) {
	return ReplaceWALFS(faultfs.OS, path, epoch, batches)
}

// ReplaceWALFS is ReplaceWAL over an injectable filesystem.
func ReplaceWALFS(fsys faultfs.FS, path string, epoch uint64, batches []Batch) (*WAL, error) {
	fsys = faultfs.OrOS(fsys)
	tmp := path + ".tmp"
	w, err := CreateWALFS(fsys, tmp, epoch)
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			w.Close()
			fsys.Remove(tmp)
			return nil, err
		}
	}
	if err := fsys.Rename(tmp, path); err != nil {
		w.Close()
		fsys.Remove(tmp)
		return nil, err
	}
	w.path = path
	if err := syncDir(fsys, filepath.Dir(path)); err != nil {
		return w, err
	}
	return w, nil
}

// Epoch returns the base epoch the log extends.
func (w *WAL) Epoch() uint64 { return w.epoch }

// Batches reports the number of records durably appended since the last
// Reset (or present at open).
func (w *WAL) Batches() int64 { return w.batches.Load() }

// Bytes reports the log's durable on-disk size.
func (w *WAL) Bytes() int64 { return w.bytes.Load() }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the underlying file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// String renders the WAL state for logs.
func (w *WAL) String() string {
	return fmt.Sprintf("wal %s: epoch %d, %d batches, %d bytes", w.path, w.epoch, w.batches.Load(), w.bytes.Load())
}
