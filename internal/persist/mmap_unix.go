//go:build unix

package persist

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform serves MapFile with a real
// memory mapping (as opposed to the read-everything fallback).
const mmapSupported = true

// MapFile maps the whole of f read-only and shared. The returned bytes
// alias the page cache: untouched pages cost no physical memory, and
// reading a cold page faults it in from disk. Unmap releases the
// mapping. Mapping an empty file returns a nil, zero-length slice.
func MapFile(f *os.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
}

// Unmap releases a mapping returned by MapFile. The caller must
// guarantee no goroutine still reads the slice: on this platform the
// pages genuinely go away and a late read faults.
func Unmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
