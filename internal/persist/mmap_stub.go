//go:build !unix

package persist

import (
	"io"
	"os"
)

const mmapSupported = false

// MapFile on platforms without mmap reads the whole file into a heap
// slice: every MappedFile consumer stays correct, only the
// bounded-by-page-cache memory property is lost.
func MapFile(f *os.File) ([]byte, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}

// Unmap is a no-op for the heap-backed fallback.
func Unmap(b []byte) error { return nil }
