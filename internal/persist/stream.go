package persist

// StreamFileWriter writes a section file without holding every payload
// in memory at once: the header and a zeroed section table go out first,
// payloads are streamed section by section (length and CRC accumulated
// on the fly), and Finish backpatches the table via WriteAt. FileWriter
// stays the right tool for small artifacts; this one exists for the
// mapped compaction path, which streams a merged multi-hundred-megabyte
// snapshot and must not double it in heap.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"rdfcube/internal/faultfs"
)

// StreamFileWriter assembles a section file on a random-access sink.
type StreamFileWriter struct {
	f       faultfs.File
	ids     []uint8
	lens    []uint64
	crcs    []uint32
	cur     int // section currently streaming, -1 between sections
	written int // sections completed
	err     error
}

// NewStreamFileWriter writes the header and a placeholder section table
// for the given section ids (which must then be streamed in exactly that
// order) and returns the writer positioned at the first payload byte.
func NewStreamFileWriter(f faultfs.File, magic string, version uint8, ids []uint8) (*StreamFileWriter, error) {
	if len(magic) != 4 {
		panic("persist: magic must be 4 bytes")
	}
	if len(ids) > 255 {
		return nil, fmt.Errorf("persist: too many sections (%d)", len(ids))
	}
	head := make([]byte, 0, 6+13*len(ids))
	head = append(head, magic...)
	head = append(head, version, uint8(len(ids)))
	var zero [13]byte
	for _, id := range ids {
		zero[0] = id
		head = append(head, zero[:]...)
	}
	if _, err := f.Write(head); err != nil {
		return nil, err
	}
	return &StreamFileWriter{
		f:    f,
		ids:  ids,
		lens: make([]uint64, len(ids)),
		crcs: make([]uint32, len(ids)),
		cur:  -1,
	}, nil
}

// BeginSection starts streaming the payload of the next section, which
// must carry the given id (sections go out in the order declared at
// construction).
func (w *StreamFileWriter) BeginSection(id uint8) error {
	if w.err != nil {
		return w.err
	}
	if w.cur >= 0 {
		w.cur = -1
		w.written++
	}
	if w.written >= len(w.ids) || w.ids[w.written] != id {
		w.err = fmt.Errorf("persist: section %d out of declared order", id)
		return w.err
	}
	w.cur = w.written
	return nil
}

// Write streams payload bytes of the current section.
func (w *StreamFileWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.cur < 0 {
		w.err = fmt.Errorf("persist: Write outside a section")
		return 0, w.err
	}
	n, err := w.f.Write(p)
	w.lens[w.cur] += uint64(n)
	w.crcs[w.cur] = crc32.Update(w.crcs[w.cur], castagnoli, p[:n])
	if err != nil {
		w.err = err
	}
	return n, err
}

// Finish closes the last section and backpatches the section table with
// the accumulated lengths and CRCs. It does not sync or close the file.
func (w *StreamFileWriter) Finish() error {
	if w.err != nil {
		return w.err
	}
	if w.cur >= 0 {
		w.cur = -1
		w.written++
	}
	if w.written != len(w.ids) {
		return fmt.Errorf("persist: %d of %d sections written", w.written, len(w.ids))
	}
	var hdr [13]byte
	for i, id := range w.ids {
		hdr[0] = id
		binary.LittleEndian.PutUint64(hdr[1:9], w.lens[i])
		binary.LittleEndian.PutUint32(hdr[9:13], w.crcs[i])
		if _, err := w.f.WriteAt(hdr[:], int64(6+13*i)); err != nil {
			return err
		}
	}
	return nil
}

// AtomicWriteFile is AtomicWriteFS with random-access to the temp file:
// write receives the faultfs.File itself (WriteAt included) instead of
// an io.Writer, which is what StreamFileWriter needs to backpatch its
// section table. The rename-into-place semantics are identical: path
// holds either the old or the complete new content, never a torn mix.
func AtomicWriteFile(fsys faultfs.FS, path string, write func(faultfs.File) error) error {
	fsys = faultfs.OrOS(fsys)
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(fsys, dir)
}

var _ io.Writer = (*StreamFileWriter)(nil)
