// Package persist is the durable-storage toolkit of the engine: the
// binary primitives, section-file framing and write-ahead log that
// internal/store (frozen snapshot format v2), internal/viewreg (view
// registry snapshots) and internal/server (the data-dir lifecycle) build
// their on-disk state from.
//
// # Section files
//
// Every snapshot artifact is a *section file*:
//
//	magic [4]byte | version u8 | sectionCount u8
//	section table: per section  id u8 | length u64 LE | crc32c u32 LE
//	payloads, in table order
//
// Sections are independently CRC-checksummed (Castagnoli), so a
// truncated or bit-flipped file fails closed with ErrCorrupt instead of
// deserializing garbage. The table-up-front layout means a future reader
// can mmap the file and locate any section without scanning — payloads
// are raw byte ranges at known offsets.
//
// # Primitives
//
// Enc/Dec provide the varint/zigzag/string/term codec shared by all
// formats. Dec is sticky-error and bounds every count it reads against
// the bytes actually present, so malformed input (fuzzed, truncated,
// adversarial lengths) produces ErrCorrupt — never a panic and never an
// attacker-chosen allocation.
//
// # Write-ahead log
//
// WAL is the delta-durability half of a checkpoint pair: the snapshot
// captures a store's frozen base at some (baseEpoch, deltaSeq=0) version
// and the WAL accumulates the delta batches accepted since, one fsynced
// record per write batch. Recovery replays the log in order — append-only
// triple batches are idempotent under the store's duplicate suppression —
// and a torn tail (crash mid-append) is detected by the record CRC and
// truncated away. See wal.go.
//
// # Data-dir layout
//
// The rdfcubed daemon composes these pieces under one directory:
//
//	<dir>/base.snap   frozen snapshot (format v2) of the base graph
//	<dir>/base.wal    delta WAL for the base graph
//	<dir>/inst.snap   frozen snapshot of the serving instance
//	<dir>/inst.wal    delta WAL for the serving instance
//	<dir>/views.snap  view-registry snapshot over the serving instance
//
// inst.* exist only while a materialized instance distinct from the base
// is being served. Snapshot files are replaced atomically (AtomicWrite):
// a crash mid-checkpoint leaves the previous snapshot + a replayable WAL.
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/rdf"
)

// ErrCorrupt reports a malformed, truncated or checksum-failing
// persistent artifact. All decode errors in this package wrap it.
var ErrCorrupt = errors.New("persist: corrupt data")

// corruptf wraps ErrCorrupt with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ArtifactError is a typed failure of one persistent artifact: it names
// the file, the artifact kind (wal, snapshot, views, dict) and — when
// known — the byte offset, so an operator reading daemon logs can tell
// WAL corruption from snapshot corruption from dictionary-reference
// corruption without reproducing the failure. It wraps the underlying
// error (usually ErrCorrupt, so errors.Is(err, ErrCorrupt) keeps
// working).
type ArtifactError struct {
	// Path is the artifact's file path.
	Path string
	// Kind classifies the artifact: "wal", "snapshot", "views" or
	// "dict" (a WAL record referencing a term the dictionary never
	// assigned).
	Kind string
	// Offset is the byte offset of the failure within the file, or -1
	// when unknown.
	Offset int64
	// Err is the underlying failure.
	Err error
}

func (e *ArtifactError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("%s %s: at byte offset %d: %v", e.Kind, e.Path, e.Offset, e.Err)
	}
	return fmt.Sprintf("%s %s: %v", e.Kind, e.Path, e.Err)
}

func (e *ArtifactError) Unwrap() error { return e.Err }

// artifactErr wraps err as an ArtifactError unless it already is one.
func artifactErr(kind, path string, offset int64, err error) error {
	var ae *ArtifactError
	if errors.As(err, &ae) {
		return err
	}
	return &ArtifactError{Path: path, Kind: kind, Offset: offset, Err: err}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Enc accumulates a section payload in memory.
type Enc struct {
	buf []byte
}

// Len reports the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.buf) }

// Bytes returns the accumulated payload (aliased, not copied).
func (e *Enc) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a zigzag-encoded signed varint.
func (e *Enc) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Byte appends one raw byte.
func (e *Enc) Byte(b byte) { e.buf = append(e.buf, b) }

// Float64 appends a fixed-width little-endian float.
func (e *Enc) Float64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Term appends an RDF term: kind, value, and — for literals — datatype
// and language tag.
func (e *Enc) Term(t rdf.Term) {
	e.Byte(byte(t.Kind()))
	e.String(t.Value())
	if t.IsLiteral() {
		e.String(t.Datatype())
		e.String(t.Lang())
	}
}

// Dec decodes a payload with a sticky error: after the first malformed
// read every subsequent read returns zero values and Err() reports the
// failure. Counts are bounded by the bytes remaining, so a hostile
// length prefix cannot drive an allocation.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining reports the undecoded byte count.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("unexpected end of input")
		return 0
	}
	b := d.b[d.off]
	d.off++
	return b
}

// Float64 reads a fixed-width little-endian float.
func (d *Dec) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated float64")
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return f
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds %d remaining bytes", n, d.Remaining())
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Count reads an element count and bounds it by the remaining payload
// assuming each element occupies at least elemBytes bytes, rejecting
// hostile length prefixes before any allocation.
func (d *Dec) Count(elemBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if n > uint64(d.Remaining()/elemBytes) {
		d.fail("count %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

// Term reads a term written by Enc.Term.
func (d *Dec) Term() rdf.Term {
	kind := rdf.TermKind(d.Byte())
	value := d.String()
	if d.err != nil {
		return rdf.Term{}
	}
	switch kind {
	case rdf.KindIRI:
		return rdf.NewIRI(value)
	case rdf.KindBlank:
		return rdf.NewBlank(value)
	case rdf.KindLiteral:
		datatype := d.String()
		lang := d.String()
		if d.err != nil {
			return rdf.Term{}
		}
		if lang != "" {
			return rdf.NewLangLiteral(value, lang)
		}
		return rdf.NewTypedLiteral(value, datatype)
	default:
		d.fail("unknown term kind %d", kind)
		return rdf.Term{}
	}
}

// FileWriter assembles a section file.
type FileWriter struct {
	magic    string
	version  uint8
	ids      []uint8
	payloads [][]byte
}

// NewFileWriter returns a writer for the given 4-byte magic and format
// version.
func NewFileWriter(magic string, version uint8) *FileWriter {
	if len(magic) != 4 {
		panic("persist: magic must be 4 bytes")
	}
	return &FileWriter{magic: magic, version: version}
}

// Section adds a section payload under id. Sections are written in
// insertion order; ids must be unique per file.
func (fw *FileWriter) Section(id uint8, payload []byte) {
	fw.ids = append(fw.ids, id)
	fw.payloads = append(fw.payloads, payload)
}

// Write writes the header, section table and payloads to w.
func (fw *FileWriter) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(fw.magic)
	bw.WriteByte(fw.version)
	bw.WriteByte(uint8(len(fw.ids)))
	var hdr [13]byte
	for i, id := range fw.ids {
		hdr[0] = id
		binary.LittleEndian.PutUint64(hdr[1:9], uint64(len(fw.payloads[i])))
		binary.LittleEndian.PutUint32(hdr[9:13], crc32.Checksum(fw.payloads[i], castagnoli))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
	}
	for _, p := range fw.payloads {
		if _, err := bw.Write(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// File is a parsed section file with CRC-verified payloads.
type File struct {
	Version  uint8
	sections map[uint8][]byte
}

// ReadFile parses a section file from r, verifying the magic and every
// section checksum. Section payloads are read incrementally, so a
// hostile length claim fails on the actually-missing bytes instead of
// allocating up front.
func ReadFile(r io.Reader, magic string) (*File, error) {
	br := bufio.NewReader(r)
	var head [6]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, corruptf("short header: %v", err)
	}
	if string(head[:4]) != magic {
		return nil, corruptf("bad magic %q, want %q", head[:4], magic)
	}
	f := &File{Version: head[4], sections: map[uint8][]byte{}}
	nSections := int(head[5])
	type entry struct {
		id     uint8
		length uint64
		crc    uint32
	}
	entries := make([]entry, nSections)
	var hdr [13]byte
	for i := range entries {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, corruptf("short section table: %v", err)
		}
		entries[i] = entry{
			id:     hdr[0],
			length: binary.LittleEndian.Uint64(hdr[1:9]),
			crc:    binary.LittleEndian.Uint32(hdr[9:13]),
		}
		if _, dup := f.sections[entries[i].id]; dup || entries[i].id == 0 {
			return nil, corruptf("bad section id %d", entries[i].id)
		}
		f.sections[entries[i].id] = nil
	}
	for _, e := range entries {
		var buf bytes.Buffer
		if n, err := io.CopyN(&buf, br, int64(e.length)); err != nil || uint64(n) != e.length {
			return nil, corruptf("section %d truncated at %d of %d bytes", e.id, n, e.length)
		}
		payload := buf.Bytes()
		if crc32.Checksum(payload, castagnoli) != e.crc {
			return nil, corruptf("section %d checksum mismatch", e.id)
		}
		f.sections[e.id] = payload
	}
	return f, nil
}

// Section returns a decoder over section id, or an ErrCorrupt error when
// the section is absent.
func (f *File) Section(id uint8) (*Dec, error) {
	p, ok := f.sections[id]
	if !ok {
		return nil, corruptf("missing section %d", id)
	}
	return NewDec(p), nil
}

// HasSection reports whether section id is present.
func (f *File) HasSection(id uint8) bool {
	_, ok := f.sections[id]
	return ok
}

// Front coding. Dictionary term values are stored in blocks of
// FrontBlock terms: the first value of a block is stored whole, each
// subsequent one as (shared-prefix length, suffix) relative to its
// predecessor — the HDT-style layout that makes sorted-ish IRI runs
// (shared namespaces, numbered locals) collapse to a few bytes each.

// FrontBlock is the front-coding block size of dictionary sections.
const FrontBlock = 16

// CommonPrefixLen returns the length of the longest common prefix of a
// and b.
func CommonPrefixLen(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// EncodeTermBlock appends terms to e with front-coded values: position
// i%FrontBlock == 0 restarts the chain.
func EncodeTermBlock(e *Enc, terms []rdf.Term) {
	prev := ""
	for i, t := range terms {
		e.Byte(byte(t.Kind()))
		v := t.Value()
		if i%FrontBlock == 0 {
			e.String(v)
		} else {
			p := CommonPrefixLen(prev, v)
			e.Uvarint(uint64(p))
			e.String(v[p:])
		}
		prev = v
		if t.IsLiteral() {
			e.String(t.Datatype())
			e.String(t.Lang())
		}
	}
}

// DecodeTermBlock reads n front-coded terms written by EncodeTermBlock.
func DecodeTermBlock(d *Dec, n int) ([]rdf.Term, error) {
	terms := make([]rdf.Term, 0, n)
	prev := ""
	for i := 0; i < n; i++ {
		kind := rdf.TermKind(d.Byte())
		var value string
		if i%FrontBlock == 0 {
			value = d.String()
		} else {
			p := d.Uvarint()
			if d.err == nil && p > uint64(len(prev)) {
				d.fail("front-coded prefix %d exceeds previous value length %d", p, len(prev))
			}
			suffix := d.String()
			if d.err != nil {
				return nil, d.err
			}
			value = prev[:p] + suffix
		}
		prev = value
		var t rdf.Term
		switch kind {
		case rdf.KindIRI:
			t = rdf.NewIRI(value)
		case rdf.KindBlank:
			t = rdf.NewBlank(value)
		case rdf.KindLiteral:
			datatype := d.String()
			lang := d.String()
			if lang != "" {
				t = rdf.NewLangLiteral(value, lang)
			} else {
				t = rdf.NewTypedLiteral(value, datatype)
			}
		default:
			d.fail("unknown term kind %d at term %d", kind, i)
		}
		if d.err != nil {
			return nil, d.err
		}
		terms = append(terms, t)
	}
	return terms, nil
}

// AtomicWrite writes the output of write to path via a same-directory
// temp file, fsyncs it, renames it into place and fsyncs the directory —
// so the file at path is always either the old or the new complete
// content, never a torn mix.
func AtomicWrite(path string, write func(io.Writer) error) error {
	return AtomicWriteFS(faultfs.OS, path, write)
}

// AtomicWriteFS is AtomicWrite over an injectable filesystem: any
// failure — temp creation, a short or failed write, the fsync, the
// rename — leaves the previous file at path intact.
func AtomicWriteFS(fsys faultfs.FS, path string, write func(io.Writer) error) error {
	fsys = faultfs.OrOS(fsys)
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(fsys, dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms (and some filesystems) reject fsync on directories;
	// the rename itself is still atomic there.
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}
