//go:build linux

package persist

import (
	"syscall"
	"unsafe"
)

// Advise hints the kernel about the upcoming access pattern of a mapped
// region. Failures are ignored — madvise is advisory by definition and
// some filesystems reject it. The region must lie within a live mapping.
func Advise(b []byte, kind AdviseKind) {
	if len(b) == 0 {
		return
	}
	var adv int
	switch kind {
	case AdviseSequential:
		adv = syscall.MADV_SEQUENTIAL
	case AdviseRandom:
		adv = syscall.MADV_RANDOM
	case AdviseDontNeed:
		adv = syscall.MADV_DONTNEED
	case AdviseWillNeed:
		adv = syscall.MADV_WILLNEED
	default:
		return
	}
	// madvise wants page-aligned addresses; the regions we advise are
	// section spans inside a mapping, so round the start down and let the
	// kernel clamp the tail.
	addr := uintptr(unsafe.Pointer(&b[0]))
	length := uintptr(len(b))
	if rem := addr % pageSize; rem != 0 {
		addr -= rem
		length += rem
	}
	_, _, _ = syscall.Syscall(syscall.SYS_MADVISE, addr, length, uintptr(adv))
}

var pageSize = uintptr(syscall.Getpagesize())
