package persist

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
)

func groupBatch(i int) Batch {
	return Batch{
		DictLen: 3,
		Terms:   []rdf.Term{rdf.NewIRI(fmt.Sprintf("http://ex.org/t%d", i))},
		Triples: []Triple{{S: dict.ID(i%7 + 1), P: 2, O: 3}},
	}
}

// TestWALGroupCommitManyWriters drives many concurrent appenders
// through the group committer and checks that (a) every batch survives
// a reopen, (b) the fsync count is strictly below the batch count — the
// whole point — and (c) the accounting identity syncs + coalesced ==
// batches holds.
func TestWALGroupCommitManyWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	w, err := CreateWAL(path, 7)
	if err != nil {
		t.Fatal(err)
	}
	w.SetGroupCommit(200 * time.Microsecond)

	const writers, perWriter = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := w.Append(groupBatch(g*perWriter + i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(writers * perWriter)
	if got := w.Batches(); got != total {
		t.Fatalf("durable batches %d, want %d", got, total)
	}
	syncs, coalesced := w.GroupStats()
	if syncs+coalesced != total {
		t.Fatalf("accounting: syncs %d + coalesced %d != batches %d", syncs, coalesced, total)
	}
	if syncs >= total {
		t.Fatalf("no coalescing: %d fsyncs for %d batches", syncs, total)
	}
	if coalesced == 0 {
		t.Fatal("no batch rode another's fsync")
	}
	t.Logf("%d batches, %d fsyncs (%.1fx coalescing)", total, syncs, float64(total)/float64(syncs))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, batches, epoch, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 || int64(len(batches)) != total {
		t.Fatalf("reopen: epoch %d batches %d, want 7/%d", epoch, len(batches), total)
	}
	seen := map[string]bool{}
	for _, b := range batches {
		if len(b.Terms) != 1 || len(b.Triples) != 1 {
			t.Fatalf("malformed replayed batch %+v", b)
		}
		seen[b.Terms[0].Value()] = true
	}
	if len(seen) != int(total) {
		t.Fatalf("replay holds %d distinct batches, want %d", len(seen), total)
	}
}

// TestWALGroupCommitStageOrder checks the split API: records staged in
// a known order replay in that order even when the commits land
// out of order — replay order is what gives WAL term IDs meaning.
func TestWALGroupCommitStageOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "order.wal")
	w, err := CreateWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.SetGroupCommit(time.Millisecond)

	const n = 40
	pending := make([]*PendingAppend, n)
	for i := 0; i < n; i++ {
		p, err := w.Stage(groupBatch(i))
		if err != nil {
			t.Fatal(err)
		}
		pending[i] = p
	}
	// Commit back to front: durability order must not affect replay order.
	var wg sync.WaitGroup
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(p *PendingAppend) {
			defer wg.Done()
			if err := p.Commit(); err != nil {
				t.Error(err)
			}
		}(pending[i])
	}
	wg.Wait()
	w.Close()

	_, batches, _, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != n {
		t.Fatalf("replayed %d batches, want %d", len(batches), n)
	}
	for i, b := range batches {
		want := fmt.Sprintf("http://ex.org/t%d", i)
		if b.Terms[0].Value() != want {
			t.Fatalf("batch %d replays term %q, want %q", i, b.Terms[0].Value(), want)
		}
	}
}

// TestWALGroupCommitReset checks that a Reset (checkpoint truncation)
// re-baselines the committer state.
func TestWALGroupCommitReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.wal")
	w, err := CreateWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.SetGroupCommit(time.Millisecond)
	for i := 0; i < 5; i++ {
		if err := w.Append(groupBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(2); err != nil {
		t.Fatal(err)
	}
	if w.Batches() != 0 {
		t.Fatalf("batches %d after reset", w.Batches())
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(groupBatch(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	_, batches, epoch, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || len(batches) != 3 {
		t.Fatalf("reopen: epoch %d, %d batches; want 2, 3", epoch, len(batches))
	}
}
