//go:build !linux

package persist

// Advise is a no-op on platforms without madvise support wired up.
func Advise(b []byte, kind AdviseKind) {}
