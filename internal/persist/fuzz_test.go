package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
)

// FuzzOpenWAL feeds arbitrary bytes to the WAL reader: it must classify
// every input as (header-corrupt error | torn tail | intact records)
// without panicking, and the log must stay appendable afterwards.
func FuzzOpenWAL(f *testing.F) {
	dir := f.TempDir()
	good := filepath.Join(dir, "seed.wal")
	w, err := CreateWAL(good, 5)
	if err != nil {
		f.Fatal(err)
	}
	w.Append(Batch{DictLen: 0, Terms: []rdf.Term{rdf.NewIRI("urn:a")}, Triples: []Triple{{1, 2, 3}}})
	w.Append(Batch{DictLen: 1, Triples: []Triple{{2, 3, 1}, {3, 1, 2}}})
	w.Close()
	seed, err := os.ReadFile(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte("RDCW"))
	mut := append([]byte(nil), seed...)
	mut[walHdrLen+9] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		w, batches, _, err := OpenWAL(path, 1)
		if err != nil {
			return // corrupt header: rejected outright
		}
		defer w.Close()
		for _, b := range batches {
			if b.DictLen < 0 {
				t.Fatal("negative dict length")
			}
			for _, tr := range b.Triples {
				if tr.S == 0 || tr.P == 0 || tr.O == 0 {
					t.Fatal("zero ID survived decoding")
				}
			}
		}
		// Whatever was salvaged, the log must accept appends and replay
		// them plus the salvage on reopen.
		if err := w.Append(Batch{DictLen: 9, Triples: []Triple{{dict.ID(7), dict.ID(8), dict.ID(9)}}}); err != nil {
			t.Fatalf("append after salvage: %v", err)
		}
		w.Close()
		_, again, _, err := OpenWAL(path, 1)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		if len(again) != len(batches)+1 {
			t.Fatalf("reopen: %d batches, want %d", len(again), len(batches)+1)
		}
	})
}

// FuzzReadFile exercises the section-file reader: arbitrary bytes must
// either parse (CRC-verified sections) or fail with ErrCorrupt.
func FuzzReadFile(f *testing.F) {
	fw := NewFileWriter("RDCV", 1)
	fw.Section(1, []byte("meta"))
	fw.Section(2, bytes.Repeat([]byte{7}, 100))
	var buf bytes.Buffer
	if err := fw.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:7])
	f.Add([]byte("RDCV\x01\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := ReadFile(bytes.NewReader(data), "RDCV")
		if err != nil {
			return
		}
		for id := uint8(1); id < 4; id++ {
			if d, err := file.Section(id); err == nil {
				d.Uvarint()
				_ = d.String()
				d.Term()
				d.Count(1)
			}
		}
	})
}
