package persist

// WAL group commit: many writers, one fsync.
//
// The fsync dominates append latency, and under concurrent writers the
// default one-fsync-per-batch protocol serializes them all behind the
// disk. Group commit splits an append in two:
//
//	Stage   write the framed record into the file (cheap, buffered by
//	        the page cache) under the group's short mutex. The caller
//	        typically holds its own ordering lock across Stage, so
//	        record order matches the order writes were applied — which
//	        matters, because records carry absolute dictionary IDs and
//	        replay re-interns terms in record order.
//	Commit  wait until an fsync covers the staged record. The first
//	        committer becomes the leader: it fsyncs once for every
//	        record staged so far, and followers that arrived meanwhile
//	        return without touching the disk.
//
// The bounded wait window trades a little leader latency for a bigger
// group: when two unsynced records have coexisted since the last sync
// (detected concurrency), the leader sleeps up to the window before
// snapshotting its target, letting callers still queued behind the
// application lock stage into the same fsync. A solo writer never pays
// the window — with no overlapping stage, the leader syncs immediately
// and latency matches the non-grouped path.
//
// Failure keeps the non-grouped contract: a failed stage rolls the file
// back to the staged boundary; a failed fsync rolls everything unsynced
// back to the durable boundary and every waiting committer gets the
// error (none of their writes were acknowledged). If rollback itself
// fails the log turns refusing, exactly like the solo path.

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// walGroup is the shared state of the group committer.
type walGroup struct {
	mu   sync.Mutex
	cond *sync.Cond
	// window bounds the leader's straggler wait (0 = sync immediately).
	window time.Duration

	written int64 // staged byte offset (>= synced)
	synced  int64 // durable byte offset
	staged  int64 // records staged but not yet durable
	syncing bool  // a leader is inside fsync
	// concurrent is set when two unsynced records coexist — the signal
	// that a wait window would actually grow the group.
	concurrent bool
	// resetSeq increments whenever unsynced records are discarded after
	// a failed fsync; pending commits from before the reset observe the
	// bump and report lastErr.
	resetSeq uint64
	lastErr  error

	syncs     int64
	coalesced int64
}

func (gc *walGroup) reset(off int64) {
	gc.mu.Lock()
	gc.written, gc.synced = off, off
	gc.staged, gc.concurrent = 0, false
	gc.mu.Unlock()
}

// SetGroupCommit arms the group committer with the given straggler
// window (window <= 0 disarms it and returns the WAL to single-writer
// fsync-per-append). Arm it before concurrent use; with group commit
// armed, Append/Stage/Commit are safe for concurrent callers.
func (w *WAL) SetGroupCommit(window time.Duration) {
	if window <= 0 {
		w.gc = nil
		return
	}
	gc := &walGroup{window: window, written: w.bytes.Load(), synced: w.bytes.Load()}
	gc.cond = sync.NewCond(&gc.mu)
	w.gc = gc
}

// GroupCommit reports whether the group committer is armed.
func (w *WAL) GroupCommit() bool { return w.gc != nil }

// GroupStats reports the committer's lifetime fsync count and how many
// batches rode another caller's fsync. Zero when not armed.
func (w *WAL) GroupStats() (syncs, coalesced int64) {
	gc := w.gc
	if gc == nil {
		return 0, 0
	}
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.syncs, gc.coalesced
}

// PendingAppend is a staged-but-not-yet-durable WAL record. Commit
// blocks until an fsync covers it (possibly another caller's).
type PendingAppend struct {
	w      *WAL
	end    int64 // staged byte offset our record reaches
	seq    uint64
	recLen int
	start  time.Time
}

// Stage frames b and writes it into the log without syncing. The record
// is NOT durable until Commit returns nil. Callers needing replay order
// to match application order must serialize their Stage calls
// externally (the server's write lock does); Commit can then be called
// outside that lock, which is where the coalescing happens. Without
// group commit armed, Stage degrades to a full synchronous Append and
// Commit is a no-op.
func (w *WAL) Stage(b Batch) (*PendingAppend, error) {
	gc := w.gc
	if gc == nil {
		if err := w.Append(b); err != nil {
			return nil, err
		}
		return &PendingAppend{}, nil
	}
	var start time.Time
	if w.m != nil {
		start = time.Now()
	}
	rec := encodeRecord(b)
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if w.broken {
		w.m.countError()
		return nil, fmt.Errorf("wal %s: refusing append after unrecoverable write failure", w.path)
	}
	if _, werr := w.f.Write(rec); werr != nil {
		w.m.countError()
		if terr := w.f.Truncate(gc.written); terr == nil {
			if _, serr := w.f.Seek(gc.written, io.SeekStart); serr != nil {
				w.broken = true
			}
		} else {
			w.broken = true
		}
		return nil, werr
	}
	if gc.staged > 0 {
		gc.concurrent = true
	}
	gc.staged++
	gc.written += int64(len(rec))
	return &PendingAppend{w: w, end: gc.written, seq: gc.resetSeq, recLen: len(rec), start: start}, nil
}

// Commit blocks until the staged record is durable and returns nil, or
// returns the error that discarded it. The first committer of a sync
// generation leads the fsync for everyone staged so far.
func (p *PendingAppend) Commit() error {
	w := p.w
	if w == nil || w.gc == nil {
		return nil // staged through the non-grouped fallback: already durable
	}
	gc := w.gc
	gc.mu.Lock()
	for {
		if gc.resetSeq != p.seq {
			err := gc.lastErr
			gc.mu.Unlock()
			w.m.countError()
			return err
		}
		if gc.synced >= p.end {
			gc.mu.Unlock()
			p.observeDurable()
			return nil
		}
		if !gc.syncing {
			break // become the leader
		}
		gc.cond.Wait()
	}
	gc.syncing = true
	if gc.concurrent && gc.window > 0 {
		// Writers are overlapping: hold the sync briefly so callers still
		// queued behind the application lock stage into this fsync.
		gc.mu.Unlock()
		time.Sleep(gc.window)
		gc.mu.Lock()
	}
	target := gc.written
	covered := gc.staged
	gc.staged = 0
	gc.concurrent = false
	gc.mu.Unlock()

	var syncStart time.Time
	if w.m != nil {
		syncStart = time.Now()
	}
	serr := w.f.Sync()

	gc.mu.Lock()
	gc.syncing = false
	if serr != nil {
		// Nothing past the durable boundary was acknowledged; roll it all
		// back — including records staged during the failed fsync — and
		// fail every pending commit.
		gc.lastErr = serr
		gc.resetSeq++
		if terr := w.f.Truncate(gc.synced); terr == nil {
			if _, serr2 := w.f.Seek(gc.synced, io.SeekStart); serr2 != nil {
				w.broken = true
			}
		} else {
			w.broken = true
		}
		gc.written = gc.synced
		gc.staged = 0
		gc.concurrent = false
		gc.cond.Broadcast()
		gc.mu.Unlock()
		w.m.countError()
		return serr
	}
	gc.synced = target
	gc.syncs++
	gc.coalesced += covered - 1
	w.bytes.Store(target)
	w.batches.Add(covered)
	gc.cond.Broadcast()
	gc.mu.Unlock()
	if w.m != nil {
		w.m.SyncSeconds.Observe(time.Since(syncStart).Nanoseconds())
		w.m.GroupSyncs.Inc()
		if covered > 1 {
			w.m.GroupCoalesced.Add(covered - 1)
		}
	}
	p.observeDurable()
	return nil
}

// observeDurable records the per-batch success metrics once the record
// is known durable.
func (p *PendingAppend) observeDurable() {
	if p.w.m == nil {
		return
	}
	p.w.m.AppendSeconds.Observe(time.Since(p.start).Nanoseconds())
	p.w.m.AppendedBytes.Add(int64(p.recLen))
}
