package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
)

func TestEncDecRoundtrip(t *testing.T) {
	var e Enc
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Varint(-7)
	e.Varint(1 << 33)
	e.Byte(0xAB)
	e.Float64(3.25)
	e.String("")
	e.String("hello \x00 binary")
	terms := []rdf.Term{
		rdf.NewIRI("http://ex.org/a"),
		rdf.NewBlank("b0"),
		rdf.NewLiteral("plain"),
		rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		rdf.NewLangLiteral("chat", "FR"),
	}
	for _, tm := range terms {
		e.Term(tm)
	}

	d := NewDec(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("uvarint: %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Fatalf("uvarint: %d", got)
	}
	if got := d.Varint(); got != -7 {
		t.Fatalf("varint: %d", got)
	}
	if got := d.Varint(); got != 1<<33 {
		t.Fatalf("varint: %d", got)
	}
	if got := d.Byte(); got != 0xAB {
		t.Fatalf("byte: %x", got)
	}
	if got := d.Float64(); got != 3.25 {
		t.Fatalf("float: %v", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("string: %q", got)
	}
	if got := d.String(); got != "hello \x00 binary" {
		t.Fatalf("string: %q", got)
	}
	for i, want := range terms {
		if got := d.Term(); got != want {
			t.Fatalf("term %d: %v != %v", i, got, want)
		}
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err %v, remaining %d", d.Err(), d.Remaining())
	}
	// Reads past the end must error, not panic.
	if d.Uvarint(); d.Err() == nil {
		t.Fatal("read past end did not error")
	}
}

func TestDecHostileCounts(t *testing.T) {
	var e Enc
	e.Uvarint(1 << 60) // claims a colossal count
	d := NewDec(e.Bytes())
	if n := d.Count(8); n != 0 || d.Err() == nil {
		t.Fatalf("hostile count accepted: n=%d err=%v", n, d.Err())
	}

	var e2 Enc
	e2.Uvarint(1 << 50) // string length beyond the payload
	d2 := NewDec(e2.Bytes())
	if s := d2.String(); s != "" || d2.Err() == nil {
		t.Fatal("hostile string length accepted")
	}
}

func TestFrontCoding(t *testing.T) {
	var terms []rdf.Term
	for i := 0; i < 100; i++ {
		terms = append(terms, rdf.NewIRI("http://very.long.namespace.example.org/resource/item"+string(rune('a'+i%26))+"x"))
	}
	terms = append(terms, rdf.NewLangLiteral("salut", "fr"), rdf.NewTypedLiteral("9", "http://www.w3.org/2001/XMLSchema#integer"))
	var e Enc
	EncodeTermBlock(&e, terms)
	got, err := DecodeTermBlock(NewDec(e.Bytes()), len(terms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range terms {
		if got[i] != terms[i] {
			t.Fatalf("term %d: %v != %v", i, got[i], terms[i])
		}
	}
	// Front coding should beat plain encoding on shared-prefix runs.
	var plain Enc
	for _, tm := range terms {
		plain.Term(tm)
	}
	if e.Len() >= plain.Len() {
		t.Fatalf("front-coded %d bytes >= plain %d bytes", e.Len(), plain.Len())
	}
}

func TestSectionFileRoundtrip(t *testing.T) {
	fw := NewFileWriter("TEST", 3)
	fw.Section(1, []byte("alpha"))
	fw.Section(7, []byte{})
	fw.Section(2, bytes.Repeat([]byte{0x5a}, 10000))
	var buf bytes.Buffer
	if err := fw.Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(bytes.NewReader(buf.Bytes()), "TEST")
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != 3 {
		t.Fatalf("version %d", f.Version)
	}
	for id, want := range map[uint8][]byte{1: []byte("alpha"), 7: {}, 2: bytes.Repeat([]byte{0x5a}, 10000)} {
		dec, err := f.Section(id)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Remaining() != len(want) {
			t.Fatalf("section %d: %d bytes, want %d", id, dec.Remaining(), len(want))
		}
	}
	if _, err := f.Section(9); !errors.Is(err, ErrCorrupt) {
		t.Fatal("missing section not reported")
	}

	// Any corruption or truncation must fail closed.
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, 6, 15, len(raw) - 1} {
		if _, err := ReadFile(bytes.NewReader(raw[:cut]), "TEST"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
	}
	flip := append([]byte(nil), raw...)
	flip[len(flip)-1] ^= 1
	if _, err := ReadFile(bytes.NewReader(flip), "TEST"); !errors.Is(err, ErrCorrupt) {
		t.Fatal("payload bit flip not detected")
	}
	if _, err := ReadFile(bytes.NewReader(raw), "NOPE"); !errors.Is(err, ErrCorrupt) {
		t.Fatal("magic mismatch not detected")
	}
}

func walBatch(dictLen int, n int) Batch {
	b := Batch{DictLen: dictLen}
	for i := 0; i < n; i++ {
		b.Terms = append(b.Terms, rdf.NewIRI("http://ex.org/t"+string(rune('a'+i))))
		b.Triples = append(b.Triples, Triple{S: dict.ID(i + 1), P: dict.ID(i + 2), O: dict.ID(i + 3)})
	}
	return b
}

func TestWALRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, err := CreateWAL(path, 42)
	if err != nil {
		t.Fatal(err)
	}
	batches := []Batch{walBatch(0, 1), walBatch(1, 3), walBatch(4, 2)}
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	w2, got, epoch, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if epoch != 42 {
		t.Fatalf("epoch %d, want 42", epoch)
	}
	if len(got) != len(batches) {
		t.Fatalf("%d batches, want %d", len(got), len(batches))
	}
	for i := range batches {
		if got[i].DictLen != batches[i].DictLen ||
			len(got[i].Terms) != len(batches[i].Terms) ||
			len(got[i].Triples) != len(batches[i].Triples) {
			t.Fatalf("batch %d mismatch: %+v vs %+v", i, got[i], batches[i])
		}
		for j := range batches[i].Triples {
			if got[i].Triples[j] != batches[i].Triples[j] {
				t.Fatalf("batch %d triple %d mismatch", i, j)
			}
		}
		for j := range batches[i].Terms {
			if got[i].Terms[j] != batches[i].Terms[j] {
				t.Fatalf("batch %d term %d mismatch", i, j)
			}
		}
	}

	// Appends after reopen extend the log.
	if err := w2.Append(walBatch(6, 1)); err != nil {
		t.Fatal(err)
	}
	_, got, _, err = OpenWAL(path, 0)
	if err != nil || len(got) != 4 {
		t.Fatalf("after reopen append: %d batches (err %v), want 4", len(got), err)
	}
}

func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, err := CreateWAL(path, 7)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(walBatch(0, 2))
	w.Append(walBatch(2, 1))
	w.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate at every byte boundary inside the second record and
	// append garbage variants: replay must keep batch 1 and never panic.
	for cut := len(intact) - 1; cut > walHdrLen+8; cut -= 3 {
		os.WriteFile(path, intact[:cut], 0o644)
		w2, batches, _, err := OpenWAL(path, 0)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		w2.Close()
		if len(batches) > 2 {
			t.Fatalf("cut %d: %d batches", cut, len(batches))
		}
	}
	// Garbage tail after intact records.
	os.WriteFile(path, append(append([]byte{}, intact...), 0xff, 0x07, 0xde, 0xad, 0xbe, 0xef), 0o644)
	w3, batches, _, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("garbage tail: %d batches, want 2", len(batches))
	}
	// The torn tail was truncated: appends now extend a clean log.
	if err := w3.Append(walBatch(3, 1)); err != nil {
		t.Fatal(err)
	}
	w3.Close()
	_, batches, _, err = OpenWAL(path, 0)
	if err != nil || len(batches) != 3 {
		t.Fatalf("after torn-tail append: %d batches (err %v), want 3", len(batches), err)
	}
}

func TestReplaceWAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.wal")
	w, err := CreateWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(walBatch(0, 2))
	w.Append(walBatch(2, 2))

	w2, err := ReplaceWAL(path, 9, []Batch{walBatch(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w2.Append(walBatch(1, 1)); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	_, batches, epoch, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 9 || len(batches) != 2 {
		t.Fatalf("epoch %d batches %d, want 9 and 2", epoch, len(batches))
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.snap")
	if err := AtomicWrite(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failing writer must leave the previous content untouched.
	if err := AtomicWrite(path, func(w io.Writer) error {
		w.Write([]byte("garbage"))
		return errors.New("boom")
	}); err == nil {
		t.Fatal("expected error")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("content %q (err %v), want v1", got, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("%d directory entries, want 1 (no temp litter)", len(ents))
	}
}
