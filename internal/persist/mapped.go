package persist

// Zero-copy access to section files: MappedFile parses the header and
// section table of a section file already resident as one byte slice
// (normally an mmap of the file, see MapFile) and exposes each payload
// as a subslice of that buffer — no decode, no copy. Every section CRC
// is verified eagerly at open, so a byte flip anywhere under the map
// surfaces as an ArtifactError before any column logic ever slices into
// the payloads; after that the contents are trusted exactly as far as
// the heap loader trusts a CRC-validated section.
//
// The file also carries the lazy-dictionary helpers: front-coded term
// blocks can be located (EncodeTermBlockOffsets), decoded individually
// (DecodeTermsAt) and ordered (CompareTerms) without materializing the
// whole dictionary.

import (
	"encoding/binary"
	"hash/crc32"
	"strings"

	"rdfcube/internal/rdf"
)

// AdviseKind names an access-pattern hint for Advise.
type AdviseKind uint8

// The madvise hints used by the mapped read path.
const (
	AdviseSequential AdviseKind = iota + 1
	AdviseRandom
	AdviseDontNeed
	AdviseWillNeed
)

// MappedFile is a section file parsed in place over one contiguous byte
// buffer. All section payloads alias that buffer.
type MappedFile struct {
	// Version is the format version byte.
	Version uint8
	data    []byte
	spans   map[uint8][2]int // id -> [start, end) within data
}

// OpenMappedFile parses the section file in data (verifying magic and
// every section CRC) without copying any payload. path and kind are used
// only for error context: failures return an *ArtifactError wrapping
// ErrCorrupt.
func OpenMappedFile(data []byte, magic, kind, path string) (*MappedFile, error) {
	fail := func(off int64, err error) (*MappedFile, error) {
		return nil, artifactErr(kind, path, off, err)
	}
	if len(data) < 6 {
		return fail(0, corruptf("short header: %d bytes", len(data)))
	}
	if string(data[:4]) != magic {
		return fail(0, corruptf("bad magic %q, want %q", data[:4], magic))
	}
	f := &MappedFile{Version: data[4], data: data, spans: map[uint8][2]int{}}
	nSections := int(data[5])
	tableEnd := 6 + 13*nSections
	if tableEnd > len(data) {
		return fail(6, corruptf("section table truncated"))
	}
	off := tableEnd
	type entry struct {
		id   uint8
		crc  uint32
		span [2]int
	}
	entries := make([]entry, 0, nSections)
	for i := 0; i < nSections; i++ {
		hdr := data[6+13*i:]
		id := hdr[0]
		length := binary.LittleEndian.Uint64(hdr[1:9])
		crc := binary.LittleEndian.Uint32(hdr[9:13])
		if _, dup := f.spans[id]; dup || id == 0 {
			return fail(int64(6+13*i), corruptf("bad section id %d", id))
		}
		if length > uint64(len(data)-off) {
			return fail(int64(off), corruptf("section %d claims %d bytes, %d remain", id, length, len(data)-off))
		}
		span := [2]int{off, off + int(length)}
		f.spans[id] = span
		entries = append(entries, entry{id: id, crc: crc, span: span})
		off = span[1]
	}
	// CRC-validate every payload before anything slices into it. This is
	// the integrity gate of the mapped read path: it costs one streaming
	// pass over the file at open (hardware CRC32C), and after it a
	// malformed-but-authentic payload is exactly as (im)possible as in
	// the copying reader.
	for _, e := range entries {
		payload := data[e.span[0]:e.span[1]]
		Advise(payload, AdviseSequential)
		if crc32.Checksum(payload, castagnoli) != e.crc {
			return fail(int64(e.span[0]), corruptf("section %d checksum mismatch", e.id))
		}
	}
	return f, nil
}

// SectionBytes returns the raw payload of section id, aliasing the
// underlying buffer. ok is false when the section is absent.
func (f *MappedFile) SectionBytes(id uint8) ([]byte, bool) {
	s, ok := f.spans[id]
	if !ok {
		return nil, false
	}
	return f.data[s[0]:s[1]], true
}

// Section returns a decoder over section id, or an ErrCorrupt error when
// the section is absent.
func (f *MappedFile) Section(id uint8) (*Dec, error) {
	p, ok := f.SectionBytes(id)
	if !ok {
		return nil, corruptf("missing section %d", id)
	}
	return NewDec(p), nil
}

// HasSection reports whether section id is present.
func (f *MappedFile) HasSection(id uint8) bool {
	_, ok := f.spans[id]
	return ok
}

// Data returns the whole underlying buffer.
func (f *MappedFile) Data() []byte { return f.data }

// Raw appends raw bytes to the payload.
func (e *Enc) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Pos reports the decoder's current byte offset.
func (d *Dec) Pos() int { return d.off }

// Rest returns the undecoded tail of the payload (aliased, not copied)
// and leaves the decoder position unchanged.
func (d *Dec) Rest() []byte { return d.b[d.off:] }

// Skip advances the decoder by n bytes.
func (d *Dec) Skip(n int) {
	if d.err != nil {
		return
	}
	if n < 0 || n > d.Remaining() {
		d.fail("skip %d exceeds %d remaining bytes", n, d.Remaining())
		return
	}
	d.off += n
}

// EncodeTermBlockOffsets is EncodeTermBlock, additionally returning the
// byte offset (relative to e's length at call time) of each FrontBlock
// restart — the block directory a lazy reader needs to decode one block
// without scanning its predecessors.
func EncodeTermBlockOffsets(e *Enc, terms []rdf.Term) []uint64 {
	base := e.Len()
	offs := make([]uint64, 0, (len(terms)+FrontBlock-1)/FrontBlock)
	prev := ""
	for i, t := range terms {
		if i%FrontBlock == 0 {
			offs = append(offs, uint64(e.Len()-base))
			prev = ""
		}
		e.Byte(byte(t.Kind()))
		v := t.Value()
		if i%FrontBlock == 0 {
			e.String(v)
		} else {
			p := CommonPrefixLen(prev, v)
			e.Uvarint(uint64(p))
			e.String(v[p:])
		}
		prev = v
		if t.IsLiteral() {
			e.String(t.Datatype())
			e.String(t.Lang())
		}
	}
	return offs
}

// DecodeTermsAt decodes n front-coded terms starting at a FrontBlock
// restart boundary — data must begin exactly at an offset reported by
// EncodeTermBlockOffsets.
func DecodeTermsAt(data []byte, n int) ([]rdf.Term, error) {
	return DecodeTermBlock(NewDec(data), n)
}

// CompareTerms is a total order over RDF terms: by kind, then value,
// then datatype, then language tag. The order itself is arbitrary but
// stable — it is the sort key of the snapshot's term-sorted ID section,
// so writer and reader must agree on it.
func CompareTerms(a, b rdf.Term) int {
	if ka, kb := a.Kind(), b.Kind(); ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	if c := strings.Compare(a.Value(), b.Value()); c != 0 {
		return c
	}
	if c := strings.Compare(a.Datatype(), b.Datatype()); c != 0 {
		return c
	}
	return strings.Compare(a.Lang(), b.Lang())
}
