// Package agg implements the aggregation functions ⊕ of analytical
// queries: count, sum, avg, min, max and count-distinct.
//
// Each function reports whether it is distributive, i.e. whether
// ⊕(a, ⊕(b, c)) = ⊕(⊕(a, b), c). Distributivity is central to the
// paper's Section 3.2 discussion: even for distributive functions,
// re-aggregating ans(Q) after a drill-out is incorrect when facts are
// multi-valued, which is why Algorithm 1 works on pres(Q) instead.
package agg

import (
	"fmt"
	"math"

	"rdfcube/internal/dict"
)

// Func describes an aggregation function and creates accumulators.
type Func interface {
	// Name returns the canonical lower-case name ("count", "sum", ...).
	Name() string
	// Distributive reports whether ⊕(a,⊕(b,c)) = ⊕(⊕(a,b),c).
	Distributive() bool
	// New returns a fresh accumulator.
	New() Accumulator
}

// Accumulator folds a bag of measure values into one aggregate.
type Accumulator interface {
	// Add feeds one measure value. term is the value's dictionary ID;
	// num is its numeric interpretation when numOK is true. Functions
	// needing numbers (sum, avg, min, max) ignore non-numeric inputs.
	Add(term dict.ID, num float64, numOK bool)
	// Result returns the aggregate. ok is false when the accumulator is
	// empty — per Definition 1, a fact with an empty measure bag does not
	// contribute to the cube.
	Result() (v float64, ok bool)
}

// The built-in aggregation functions.
var (
	Count         Func = countFunc{}
	Sum           Func = sumFunc{}
	Avg           Func = avgFunc{}
	Min           Func = minFunc{}
	Max           Func = maxFunc{}
	CountDistinct Func = countDistinctFunc{}
)

// ByName resolves a function by its canonical name.
func ByName(name string) (Func, error) {
	switch name {
	case "count":
		return Count, nil
	case "sum":
		return Sum, nil
	case "avg", "average":
		return Avg, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "countdistinct", "count_distinct":
		return CountDistinct, nil
	default:
		return nil, fmt.Errorf("agg: unknown aggregation function %q", name)
	}
}

type countFunc struct{}

func (countFunc) Name() string       { return "count" }
func (countFunc) Distributive() bool { return true }
func (countFunc) New() Accumulator   { return &countAcc{} }

type countAcc struct{ n int }

func (a *countAcc) Add(dict.ID, float64, bool) { a.n++ }
func (a *countAcc) Result() (float64, bool)    { return float64(a.n), a.n > 0 }

type sumFunc struct{}

func (sumFunc) Name() string       { return "sum" }
func (sumFunc) Distributive() bool { return true }
func (sumFunc) New() Accumulator   { return &sumAcc{} }

type sumAcc struct {
	sum float64
	n   int
}

func (a *sumAcc) Add(_ dict.ID, num float64, numOK bool) {
	if numOK {
		a.sum += num
		a.n++
	}
}
func (a *sumAcc) Result() (float64, bool) { return a.sum, a.n > 0 }

type avgFunc struct{}

func (avgFunc) Name() string       { return "avg" }
func (avgFunc) Distributive() bool { return false }
func (avgFunc) New() Accumulator   { return &avgAcc{} }

type avgAcc struct {
	sum float64
	n   int
}

func (a *avgAcc) Add(_ dict.ID, num float64, numOK bool) {
	if numOK {
		a.sum += num
		a.n++
	}
}

func (a *avgAcc) Result() (float64, bool) {
	if a.n == 0 {
		return 0, false
	}
	return a.sum / float64(a.n), true
}

type minFunc struct{}

func (minFunc) Name() string       { return "min" }
func (minFunc) Distributive() bool { return true }
func (minFunc) New() Accumulator   { return &minAcc{best: math.Inf(1)} }

type minAcc struct {
	best float64
	n    int
}

func (a *minAcc) Add(_ dict.ID, num float64, numOK bool) {
	if numOK {
		if num < a.best {
			a.best = num
		}
		a.n++
	}
}
func (a *minAcc) Result() (float64, bool) { return a.best, a.n > 0 }

type maxFunc struct{}

func (maxFunc) Name() string       { return "max" }
func (maxFunc) Distributive() bool { return true }
func (maxFunc) New() Accumulator   { return &maxAcc{best: math.Inf(-1)} }

type maxAcc struct {
	best float64
	n    int
}

func (a *maxAcc) Add(_ dict.ID, num float64, numOK bool) {
	if numOK {
		if num > a.best {
			a.best = num
		}
		a.n++
	}
}
func (a *maxAcc) Result() (float64, bool) { return a.best, a.n > 0 }

type countDistinctFunc struct{}

func (countDistinctFunc) Name() string       { return "countdistinct" }
func (countDistinctFunc) Distributive() bool { return false }
func (countDistinctFunc) New() Accumulator   { return &cdAcc{seen: map[dict.ID]struct{}{}} }

type cdAcc struct{ seen map[dict.ID]struct{} }

func (a *cdAcc) Add(term dict.ID, _ float64, _ bool) { a.seen[term] = struct{}{} }
func (a *cdAcc) Result() (float64, bool)             { return float64(len(a.seen)), len(a.seen) > 0 }
