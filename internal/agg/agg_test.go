package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rdfcube/internal/dict"
)

func feedNums(a Accumulator, nums ...float64) {
	for _, n := range nums {
		a.Add(dict.NoID, n, true)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"count", "sum", "avg", "min", "max", "countdistinct"} {
		f, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if f.Name() == "" {
			t.Errorf("%q has empty canonical name", name)
		}
	}
	// Aliases.
	if f, err := ByName("average"); err != nil || f.Name() != "avg" {
		t.Error("average alias broken")
	}
	if f, err := ByName("count_distinct"); err != nil || f.Name() != "countdistinct" {
		t.Error("count_distinct alias broken")
	}
	if _, err := ByName("median"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestDistributivityFlags(t *testing.T) {
	want := map[string]bool{
		"count": true, "sum": true, "min": true, "max": true,
		"avg": false, "countdistinct": false,
	}
	for name, distributive := range want {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if f.Distributive() != distributive {
			t.Errorf("%s.Distributive() = %v, want %v", name, f.Distributive(), distributive)
		}
	}
}

func TestEmptyAccumulatorsUndefined(t *testing.T) {
	// Definition 1: empty measure bags contribute nothing to the cube.
	for _, f := range []Func{Count, Sum, Avg, Min, Max, CountDistinct} {
		if _, ok := f.New().Result(); ok {
			t.Errorf("%s: empty accumulator reported a result", f.Name())
		}
	}
}

func TestCount(t *testing.T) {
	a := Count.New()
	// Count counts everything, including non-numeric values.
	a.Add(dict.ID(5), 0, false)
	a.Add(dict.ID(5), 0, false)
	feedNums(a, 1.5)
	if v, ok := a.Result(); !ok || v != 3 {
		t.Errorf("count = %g, %v", v, ok)
	}
}

func TestSum(t *testing.T) {
	a := Sum.New()
	feedNums(a, 1, 2, 3.5)
	a.Add(dict.ID(9), 0, false) // non-numeric ignored
	if v, ok := a.Result(); !ok || v != 6.5 {
		t.Errorf("sum = %g, %v", v, ok)
	}
	// Only non-numeric input: undefined.
	b := Sum.New()
	b.Add(dict.ID(9), 0, false)
	if _, ok := b.Result(); ok {
		t.Error("sum over non-numeric values must be undefined")
	}
}

func TestAvg(t *testing.T) {
	a := Avg.New()
	feedNums(a, 100, 120, 410)
	if v, ok := a.Result(); !ok || v != 210 {
		t.Errorf("avg = %g, %v (the Example 4 value)", v, ok)
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := Min.New(), Max.New()
	for _, v := range []float64{3, -1, 7, 0} {
		mn.Add(dict.NoID, v, true)
		mx.Add(dict.NoID, v, true)
	}
	if v, ok := mn.Result(); !ok || v != -1 {
		t.Errorf("min = %g, %v", v, ok)
	}
	if v, ok := mx.Result(); !ok || v != 7 {
		t.Errorf("max = %g, %v", v, ok)
	}
}

func TestCountDistinct(t *testing.T) {
	a := CountDistinct.New()
	for _, id := range []dict.ID{1, 2, 2, 3, 1} {
		a.Add(id, 0, false)
	}
	if v, ok := a.Result(); !ok || v != 3 {
		t.Errorf("countdistinct = %g, %v", v, ok)
	}
}

// TestDistributiveProperty verifies the ⊕(a,⊕(b,c)) = ⊕(⊕(a,b),c)
// equality that the Distributive flag advertises, by splitting random
// bags at random points and combining partial aggregates.
func TestDistributiveProperty(t *testing.T) {
	combine := map[string]func(x, y float64) float64{
		"count": func(x, y float64) float64 { return x + y },
		"sum":   func(x, y float64) float64 { return x + y },
		"min":   math.Min,
		"max":   math.Max,
	}
	rng := rand.New(rand.NewSource(21))
	for name, comb := range combine {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Distributive() {
			t.Fatalf("%s must be distributive", name)
		}
		for trial := 0; trial < 100; trial++ {
			n := 2 + rng.Intn(20)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(rng.Intn(100))
			}
			cut := 1 + rng.Intn(n-1)
			whole, left, right := f.New(), f.New(), f.New()
			feedNums(whole, vals...)
			feedNums(left, vals[:cut]...)
			feedNums(right, vals[cut:]...)
			w, _ := whole.Result()
			l, _ := left.Result()
			r, _ := right.Result()
			if got := comb(l, r); math.Abs(got-w) > 1e-9 {
				t.Fatalf("%s: combine(%g, %g) = %g, whole = %g", name, l, r, got, w)
			}
		}
	}
}

// TestAvgNotDistributive demonstrates why avg carries Distributive() ==
// false: naively averaging partial averages diverges from the true mean.
func TestAvgNotDistributive(t *testing.T) {
	whole, left, right := Avg.New(), Avg.New(), Avg.New()
	vals := []float64{1, 1, 1, 100}
	feedNums(whole, vals...)
	feedNums(left, vals[:3]...)
	feedNums(right, vals[3:]...)
	w, _ := whole.Result()
	l, _ := left.Result()
	r, _ := right.Result()
	if math.Abs((l+r)/2-w) < 1e-9 {
		t.Fatal("averaging partial averages accidentally matched; pick better test data")
	}
}

func TestPropertySumOrderIndependent(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		a, b := Sum.New(), Sum.New()
		feedNums(a, vals...)
		rev := make([]float64, len(vals))
		for i, v := range vals {
			rev[len(vals)-1-i] = v
		}
		feedNums(b, rev...)
		av, aok := a.Result()
		bv, bok := b.Result()
		if aok != bok {
			return false
		}
		if !aok {
			return true
		}
		return math.Abs(av-bv) <= 1e-6*math.Max(1, math.Abs(av))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
