package rdfs

import (
	"fmt"
	"math/rand"
	"testing"

	"rdfcube/internal/rdf"
	"rdfcube/internal/store"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e.org/" + s) }

func add(st *store.Store, s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }

func TestRDFS9SubClassInstance(t *testing.T) {
	st := store.New()
	add(st, iri("Student"), rdf.SubClassOf, iri("Person"))
	add(st, iri("alice"), rdf.Type, iri("Student"))
	Saturate(st)
	if !st.Contains(rdf.NewTriple(iri("alice"), rdf.Type, iri("Person"))) {
		t.Error("rdfs9: alice must be a Person")
	}
}

func TestRDFS11SubClassTransitive(t *testing.T) {
	st := store.New()
	add(st, iri("A"), rdf.SubClassOf, iri("B"))
	add(st, iri("B"), rdf.SubClassOf, iri("C"))
	add(st, iri("C"), rdf.SubClassOf, iri("D"))
	Saturate(st)
	for _, pair := range [][2]string{{"A", "C"}, {"A", "D"}, {"B", "D"}} {
		if !st.Contains(rdf.NewTriple(iri(pair[0]), rdf.SubClassOf, iri(pair[1]))) {
			t.Errorf("rdfs11: missing %s ⊑ %s", pair[0], pair[1])
		}
	}
}

func TestRDFS7SubProperty(t *testing.T) {
	st := store.New()
	add(st, iri("dwellsIn"), rdf.SubPropertyOf, iri("livesIn"))
	add(st, iri("alice"), iri("dwellsIn"), iri("Paris"))
	Saturate(st)
	if !st.Contains(rdf.NewTriple(iri("alice"), iri("livesIn"), iri("Paris"))) {
		t.Error("rdfs7: dwellsIn fact must entail livesIn")
	}
}

func TestRDFS5SubPropertyTransitive(t *testing.T) {
	st := store.New()
	add(st, iri("p"), rdf.SubPropertyOf, iri("q"))
	add(st, iri("q"), rdf.SubPropertyOf, iri("r"))
	add(st, iri("s"), iri("p"), iri("o"))
	Saturate(st)
	if !st.Contains(rdf.NewTriple(iri("p"), rdf.SubPropertyOf, iri("r"))) {
		t.Error("rdfs5: p ⊑ r missing")
	}
	if !st.Contains(rdf.NewTriple(iri("s"), iri("r"), iri("o"))) {
		t.Error("p fact must propagate to r through the closed hierarchy")
	}
}

func TestRDFS2Domain(t *testing.T) {
	st := store.New()
	add(st, iri("teaches"), rdf.Domain, iri("Teacher"))
	add(st, iri("bob"), iri("teaches"), iri("math"))
	Saturate(st)
	if !st.Contains(rdf.NewTriple(iri("bob"), rdf.Type, iri("Teacher"))) {
		t.Error("rdfs2: domain typing missing")
	}
}

func TestRDFS3Range(t *testing.T) {
	st := store.New()
	add(st, iri("teaches"), rdf.Range, iri("Course"))
	add(st, iri("bob"), iri("teaches"), iri("math"))
	Saturate(st)
	if !st.Contains(rdf.NewTriple(iri("math"), rdf.Type, iri("Course"))) {
		t.Error("rdfs3: range typing missing")
	}
}

func TestRuleInteraction(t *testing.T) {
	// dwellsIn ⊑ livesIn, livesIn has domain Resident, Resident ⊑ Person:
	// a dwellsIn fact must cascade to Person via three rules.
	st := store.New()
	add(st, iri("dwellsIn"), rdf.SubPropertyOf, iri("livesIn"))
	add(st, iri("livesIn"), rdf.Domain, iri("Resident"))
	add(st, iri("Resident"), rdf.SubClassOf, iri("Person"))
	add(st, iri("alice"), iri("dwellsIn"), iri("Paris"))
	Saturate(st)
	for _, want := range []rdf.Triple{
		rdf.NewTriple(iri("alice"), iri("livesIn"), iri("Paris")),
		rdf.NewTriple(iri("alice"), rdf.Type, iri("Resident")),
		rdf.NewTriple(iri("alice"), rdf.Type, iri("Person")),
	} {
		if !st.Contains(want) {
			t.Errorf("cascade missing %v", want)
		}
	}
}

func TestSaturateIdempotent(t *testing.T) {
	st := store.New()
	add(st, iri("A"), rdf.SubClassOf, iri("B"))
	add(st, iri("p"), rdf.Domain, iri("A"))
	add(st, iri("x"), iri("p"), iri("y"))
	first := Saturate(st)
	if first == 0 {
		t.Fatal("first saturation derived nothing")
	}
	if again := Saturate(st); again != 0 {
		t.Errorf("second saturation derived %d triples, want 0", again)
	}
	if !IsSaturated(st) {
		t.Error("IsSaturated must report true after saturation")
	}
}

func TestSubClassCycle(t *testing.T) {
	// A ⊑ B ⊑ A must terminate and entail mutual membership.
	st := store.New()
	add(st, iri("A"), rdf.SubClassOf, iri("B"))
	add(st, iri("B"), rdf.SubClassOf, iri("A"))
	add(st, iri("x"), rdf.Type, iri("A"))
	Saturate(st)
	if !st.Contains(rdf.NewTriple(iri("x"), rdf.Type, iri("B"))) {
		t.Error("cycle: x must be a B")
	}
}

func TestSaturationFixpointRandom(t *testing.T) {
	// Random schema + data graphs: saturation must reach a fixpoint that
	// a second run cannot extend, and every rdfs9 consequence must hold.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		st := store.New()
		nClasses := 5 + rng.Intn(5)
		for i := 0; i < nClasses; i++ {
			if rng.Intn(2) == 0 {
				add(st, iri(fmt.Sprintf("C%d", i)), rdf.SubClassOf, iri(fmt.Sprintf("C%d", rng.Intn(nClasses))))
			}
		}
		for i := 0; i < 20; i++ {
			add(st, iri(fmt.Sprintf("x%d", i)), rdf.Type, iri(fmt.Sprintf("C%d", rng.Intn(nClasses))))
		}
		Saturate(st)
		if !IsSaturated(st) {
			t.Fatalf("trial %d: not a fixpoint", trial)
		}
		// Soundness spot check of rdfs9 on the saturated graph.
		scID, _ := st.Dict().Lookup(rdf.SubClassOf)
		typeID, _ := st.Dict().Lookup(rdf.Type)
		if scID == 0 || typeID == 0 {
			continue
		}
		for _, sc := range st.Match(store.Pattern{P: scID}) {
			for _, inst := range st.Match(store.Pattern{P: typeID, O: sc.S}) {
				if !st.ContainsID(store.IDTriple{S: inst.S, P: typeID, O: sc.O}) {
					t.Fatalf("trial %d: rdfs9 consequence missing", trial)
				}
			}
		}
	}
}

func BenchmarkSaturate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := store.New()
		for c := 0; c < 20; c++ {
			add(st, iri(fmt.Sprintf("C%d", c)), rdf.SubClassOf, iri(fmt.Sprintf("C%d", (c+1)%20)))
		}
		for x := 0; x < 5000; x++ {
			add(st, iri(fmt.Sprintf("x%d", x)), rdf.Type, iri(fmt.Sprintf("C%d", x%20)))
		}
		b.StartTimer()
		Saturate(st)
	}
}
