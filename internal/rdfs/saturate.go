// Package rdfs implements RDFS entailment by saturation (forward
// chaining to fixpoint) over a triple store.
//
// The rule set is the "database fragment" of RDFS used by the RDF
// analytics framework the paper builds on — the rules that derive new
// data triples from schema triples:
//
//	rdfs2 : (p rdfs:domain c)        ∧ (s p o)        ⇒ (s rdf:type c)
//	rdfs3 : (p rdfs:range c)         ∧ (s p o)        ⇒ (o rdf:type c)
//	rdfs5 : (p rdfs:subPropertyOf q) ∧ (q ⊑ r)        ⇒ (p ⊑ r)
//	rdfs7 : (p rdfs:subPropertyOf q) ∧ (s p o)        ⇒ (s q o)
//	rdfs9 : (c rdfs:subClassOf d)    ∧ (s rdf:type c) ⇒ (s rdf:type d)
//	rdfs11: (c rdfs:subClassOf d)    ∧ (d ⊑ e)        ⇒ (c ⊑ e)
//
// Saturating the base graph before building an analytical-schema instance
// makes node/edge queries see all entailed facts, which is what makes AnS
// instances "semantic-rich".
package rdfs

import (
	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
	"rdfcube/internal/store"
)

// Saturate forward-chains the RDFS rules on st until fixpoint and returns
// the number of triples added. The store is modified in place.
//
// Strategy: first compute the transitive closures of subClassOf and
// subPropertyOf (rules 5/11) — these touch only schema triples, which are
// few. Then apply the data rules (2/3/7/9) in a semi-naive loop seeded
// with all data triples, re-deriving from newly added triples only.
func Saturate(st *store.Store) int {
	d := st.Dict()
	typeID := d.Encode(rdf.Type)
	scID := d.Encode(rdf.SubClassOf)
	spID := d.Encode(rdf.SubPropertyOf)
	domID := d.Encode(rdf.Domain)
	rngID := d.Encode(rdf.Range)

	added := 0

	// Transitive closure of subClassOf / subPropertyOf (rdfs11, rdfs5).
	added += closeTransitive(st, scID)
	added += closeTransitive(st, spID)

	// Super-relation maps for the data rules.
	superClass := relationMap(st, scID)
	superProp := relationMap(st, spID)
	domains := relationMap(st, domID)
	ranges := relationMap(st, rngID)

	// Semi-naive evaluation: the frontier holds triples not yet used as
	// premises of rules 2/3/7/9.
	frontier := st.Match(store.Pattern{})
	for len(frontier) > 0 {
		var next []store.IDTriple
		derive := func(t store.IDTriple) {
			if st.AddID(t) {
				added++
				next = append(next, t)
			}
		}
		for _, t := range frontier {
			if t.P == typeID {
				// rdfs9.
				for _, super := range superClass[t.O] {
					derive(store.IDTriple{S: t.S, P: typeID, O: super})
				}
				continue
			}
			// rdfs7.
			for _, super := range superProp[t.P] {
				derive(store.IDTriple{S: t.S, P: super, O: t.O})
			}
			// rdfs2.
			for _, c := range domains[t.P] {
				derive(store.IDTriple{S: t.S, P: typeID, O: c})
			}
			// rdfs3.
			for _, c := range ranges[t.P] {
				derive(store.IDTriple{S: t.O, P: typeID, O: c})
			}
		}
		frontier = next
	}
	return added
}

// closeTransitive adds the transitive closure of the binary relation
// encoded by predicate p and returns the number of added triples.
func closeTransitive(st *store.Store, p dict.ID) int {
	succ := relationMap(st, p)
	added := 0
	// Floyd–Warshall-style fixpoint on the (small) schema relation.
	for {
		grew := false
		for a, bs := range succ {
			for _, b := range bs {
				for _, c := range succ[b] {
					if a == c {
						continue // skip reflexive derivations
					}
					if st.AddID(store.IDTriple{S: a, P: p, O: c}) {
						added++
						succ[a] = append(succ[a], c)
						grew = true
					}
				}
			}
		}
		if !grew {
			return added
		}
	}
}

// relationMap materializes predicate p as a subject → objects adjacency map.
func relationMap(st *store.Store, p dict.ID) map[dict.ID][]dict.ID {
	m := make(map[dict.ID][]dict.ID)
	st.ForEach(store.Pattern{P: p}, func(t store.IDTriple) bool {
		m[t.S] = append(m[t.S], t.O)
		return true
	})
	return m
}

// IsSaturated reports whether applying Saturate to a copy of st would add
// nothing, i.e. st is already a fixpoint. Used by tests.
func IsSaturated(st *store.Store) bool {
	cp := store.NewWithDict(st.Dict())
	st.ForEach(store.Pattern{}, func(t store.IDTriple) bool {
		cp.AddID(t)
		return true
	})
	return Saturate(cp) == 0
}
