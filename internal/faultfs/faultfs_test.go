package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	in := NewInjector(nil)

	f, err := in.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := g.Read(buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
	g.Close()
	if got := in.Calls(OpWrite); got != 1 {
		t.Fatalf("write calls = %d, want 1", got)
	}
	if got := in.Fails(); got != 0 {
		t.Fatalf("fails = %d, want 0", got)
	}
}

// TestFireAtNth verifies a fault skips exactly After calls and clears
// after Count failures.
func TestFireAtNth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpSync, Path: "f.bin", After: 1, Count: 2})

	f, err := in.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	results := make([]bool, 5)
	for i := range results {
		results[i] = f.Sync() == nil
	}
	want := []bool{true, false, false, true, true}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("sync results = %v, want %v", results, want)
		}
	}
	if got := in.Fails(); got != 2 {
		t.Fatalf("fails = %d, want 2", got)
	}
}

func TestShortWriteAndENOSPC(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpWrite, Path: "short.bin", Mode: ModeShortWrite})
	in.Arm(Fault{Op: OpWrite, Path: "full.bin", Mode: ModeENOSPC})

	f, err := in.OpenFile(filepath.Join(dir, "short.bin"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	f.Close()
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v, want 5 bytes and ErrInjected", n, err)
	}
	if info, err := os.Stat(filepath.Join(dir, "short.bin")); err != nil || info.Size() != 5 {
		t.Fatalf("short.bin on disk: %v, %v — want 5 torn bytes", info, err)
	}

	g, err := in.OpenFile(filepath.Join(dir, "full.bin"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Write([]byte("x"))
	g.Close()
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("enospc write: %v, want ENOSPC and ErrInjected", err)
	}
}

func TestCorruptRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	if err := os.WriteFile(path, []byte{0x01, 0x02, 0x03}, 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpRead, Mode: ModeCorrupt, Count: 1})
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x01^0xFF || buf[1] != 0x02 {
		t.Fatalf("corrupt read delivered % x, want first byte flipped", buf)
	}
}

func TestRenameFault(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "a.tmp")
	next := filepath.Join(dir, "target.snap")
	if err := os.WriteFile(old, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpRename, Path: "target.snap"})
	if err := in.Rename(old, next); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: %v, want ErrInjected", err)
	}
	if _, err := os.Stat(next); err == nil {
		t.Fatal("target exists after failed rename")
	}
}

func TestParsePlan(t *testing.T) {
	faults, err := ParsePlan("sync:base.wal@2x3, write:enospc, read:base.snap:corrupt, rename:views.snap")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Op: OpSync, Path: "base.wal", After: 2, Count: 3},
		{Op: OpWrite, Mode: ModeENOSPC},
		{Op: OpRead, Path: "base.snap", Mode: ModeCorrupt},
		{Op: OpRename, Path: "views.snap"},
	}
	if len(faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(faults), len(want))
	}
	for i, f := range faults {
		if f != want[i] {
			t.Fatalf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
	if _, err := ParsePlan("explode:everything"); err == nil {
		t.Fatal("bad op accepted")
	}
}

// TestCrashMatrixPointsParse keeps the registered matrix plans valid.
func TestCrashMatrixPointsParse(t *testing.T) {
	for name, spec := range CrashMatrixPoints() {
		if _, err := ParsePlan(spec); err != nil {
			t.Errorf("point %s: %v", name, err)
		}
	}
}
