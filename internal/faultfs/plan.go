package faultfs

import (
	"fmt"
	"strconv"
	"strings"
)

// Fault-plan spec syntax (the daemons' -fault-plan flag):
//
//	plan  = fault *( "," fault )
//	fault = op [ ":" token ]* [ "@" after ] [ "x" count ]
//
// where op is open|create|read|write|sync|rename|remove|truncate, a
// token naming a mode (err|short|enospc|corrupt) sets the mode and any
// other token is a path substring matched against the file base name.
// "@N" skips the first N matching calls, "xM" limits the fault to M
// failures (after which it clears — a transient outage).
//
// Examples:
//
//	sync:base.wal@2x3      the 3rd-5th fsyncs of base.wal fail
//	write:enospc           every write fails with ENOSPC
//	read:base.snap:corrupt first read of base.snap is bit-flipped
//	rename:views.snap      view-registry checkpoint rename fails

// ParsePlan parses a fault-plan spec into armed faults.
func ParsePlan(spec string) ([]Fault, error) {
	var out []Fault
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseFault(spec string) (Fault, error) {
	var f Fault
	body := spec
	if i := strings.LastIndexByte(body, 'x'); i > 0 {
		if n, err := strconv.Atoi(body[i+1:]); err == nil {
			f.Count = n
			body = body[:i]
		}
	}
	if i := strings.LastIndexByte(body, '@'); i > 0 {
		n, err := strconv.Atoi(body[i+1:])
		if err != nil {
			return f, fmt.Errorf("faultfs: bad @after in %q: %v", spec, err)
		}
		f.After = n
		body = body[:i]
	}
	tokens := strings.Split(body, ":")
	op, err := ParseOp(tokens[0])
	if err != nil {
		return f, err
	}
	f.Op = op
	for _, tok := range tokens[1:] {
		if tok == "" {
			continue
		}
		if m, err := ParseMode(tok); err == nil {
			f.Mode = m
		} else {
			f.Path = tok
		}
	}
	return f, nil
}

// MustParsePlan is ParsePlan for hardcoded specs (tests, examples).
func MustParsePlan(spec string) []Fault {
	fs, err := ParsePlan(spec)
	if err != nil {
		panic(err)
	}
	return fs
}

// ArmPlan arms every fault of a parsed plan.
func (in *Injector) ArmPlan(faults []Fault) {
	for _, f := range faults {
		in.Arm(f)
	}
}

// CrashMatrixPoints are the canonical fault points the server's
// crash-matrix test trips one by one: each is a plan over the data-dir
// file set covering one failure class the durability invariant must
// survive — short writes and ENOSPC on the WAL, fsync errors on WAL and
// snapshot, torn (failed) renames of snapshot and view-registry files,
// and byte-level read corruption at recovery. Registered here, next to
// the injector, so adding a failure mode and covering it in the matrix
// is one edit.
func CrashMatrixPoints() map[string]string {
	return map[string]string{
		"wal-short-write":   "write:.wal:short",
		"wal-enospc":        "write:.wal:enospc",
		"wal-sync-err":      "sync:.wal",
		"snap-write-enospc": "write:base.snap:enospc",
		"snap-sync-err":     "sync:base.snap",
		"snap-torn-rename":  "rename:base.snap",
		"views-torn-rename": "rename:views.snap",
		"recovery-corrupt":  "read:base.snap:corrupt",
		"spill-torn-write":  "write:.spill:short",
		"spill-torn-rename": "rename:.spill",
	}
}
