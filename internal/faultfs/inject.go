package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// ErrInjected marks every failure produced by an Injector, so tests and
// operators can tell injected faults from real I/O errors. ENOSPC-mode
// faults additionally satisfy errors.Is(err, syscall.ENOSPC).
var ErrInjected = errors.New("faultfs: injected fault")

// Op classifies the filesystem calls a fault can target.
type Op uint8

const (
	OpOpen Op = iota
	OpCreate
	OpRead
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	opCount
)

var opNames = [opCount]string{"open", "create", "read", "write", "sync", "rename", "remove", "truncate"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ParseOp resolves an op name from a fault-plan spec.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if n == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("faultfs: unknown op %q (want one of %s)", s, strings.Join(opNames[:], ", "))
}

// Mode selects how a triggered fault manifests.
type Mode uint8

const (
	// ModeErr fails the call with a generic injected I/O error.
	ModeErr Mode = iota
	// ModeShortWrite writes only half the buffer, then fails — the torn
	// on-disk state a crash mid-write leaves behind.
	ModeShortWrite
	// ModeENOSPC fails the call with ENOSPC (disk full).
	ModeENOSPC
	// ModeCorrupt lets a read succeed but flips one byte of the data
	// returned — silent media corruption as seen by the reader.
	ModeCorrupt
)

var modeNames = []string{"err", "short", "enospc", "corrupt"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode resolves a mode name from a fault-plan spec.
func ParseMode(s string) (Mode, error) {
	for i, n := range modeNames {
		if n == s {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("faultfs: unknown mode %q (want one of %s)", s, strings.Join(modeNames, ", "))
}

// Fault is one armed fault: the After+1-th call matching (Op, Path)
// manifests as Mode, and keeps manifesting for Count calls (0 = every
// matching call from then on).
type Fault struct {
	// Op is the call class the fault targets.
	Op Op
	// Path matches calls whose file base name contains it ("" = any
	// file). Temp files inherit their target's base name prefix
	// (base.snap.tmp123 matches "base.snap"), so checkpoint internals
	// are addressable without knowing the random suffix.
	Path string
	// After skips the first After matching calls.
	After int
	// Count bounds how many calls fail once triggered; 0 = unlimited.
	// A bounded fault clears itself — the call after the last failure
	// succeeds, which is how tests model a transient outage.
	Count int
	// Mode is the failure shape.
	Mode Mode

	seen  int // matching calls observed
	fired int // failures manifested
}

// String renders the fault in the plan spec syntax (plan.go).
func (f *Fault) String() string {
	s := f.Op.String()
	if f.Path != "" {
		s += ":" + f.Path
	}
	if f.Mode != ModeErr {
		s += ":" + f.Mode.String()
	}
	if f.After > 0 {
		s += fmt.Sprintf("@%d", f.After)
	}
	if f.Count > 0 {
		s += fmt.Sprintf("x%d", f.Count)
	}
	return s
}

// Injector is an FS that fails deterministically according to a set of
// armed faults. Calls that no fault claims pass through to the base FS.
// All methods are safe for concurrent use.
type Injector struct {
	base FS

	mu     sync.Mutex
	faults []*Fault
	calls  [opCount]int64
	fails  int64
}

// NewInjector wraps base (nil = OS) with an empty fault plan.
func NewInjector(base FS) *Injector {
	return &Injector{base: OrOS(base)}
}

// Arm adds a fault to the plan.
func (in *Injector) Arm(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = append(in.faults, &f)
}

// Clear disarms every fault (pending counters included).
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = nil
}

// Calls reports how many op calls the injector has seen (fired or not).
func (in *Injector) Calls(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[op]
}

// Fails reports how many calls were failed by the plan.
func (in *Injector) Fails() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fails
}

// check records one (op, path) call and returns the mode to apply, or
// ok=false for a clean passthrough.
func (in *Injector) check(op Op, path string) (Mode, bool) {
	base := filepath.Base(path)
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[op]++
	for _, f := range in.faults {
		if f.Op != op {
			continue
		}
		if f.Path != "" && !strings.Contains(base, f.Path) {
			continue
		}
		f.seen++
		if f.seen <= f.After {
			continue
		}
		if f.Count > 0 && f.fired >= f.Count {
			continue
		}
		f.fired++
		in.fails++
		return f.Mode, true
	}
	return 0, false
}

// injectErr builds the error a triggered fault returns.
func injectErr(mode Mode, op Op, path string) error {
	if mode == ModeENOSPC {
		return fmt.Errorf("%w: %s %s: %w", ErrInjected, op, filepath.Base(path), syscall.ENOSPC)
	}
	return fmt.Errorf("%w: %s %s", ErrInjected, op, filepath.Base(path))
}

func (in *Injector) Open(name string) (File, error) {
	if mode, ok := in.check(OpOpen, name); ok {
		return nil, injectErr(mode, OpOpen, name)
	}
	f, err := in.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: f, in: in, name: name}, nil
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if mode, ok := in.check(OpCreate, name); ok {
		return nil, injectErr(mode, OpCreate, name)
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: f, in: in, name: name}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if mode, ok := in.check(OpCreate, filepath.Join(dir, pattern)); ok {
		return nil, injectErr(mode, OpCreate, pattern)
	}
	f, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: f, in: in, name: f.Name()}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	// A rename fault matches on either name, so plans can address the
	// stable target (base.snap) rather than the random temp name.
	if mode, ok := in.check(OpRename, newpath); ok {
		return injectErr(mode, OpRename, newpath)
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if mode, ok := in.check(OpRemove, name); ok {
		return injectErr(mode, OpRemove, name)
	}
	return in.base.Remove(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	return in.base.Stat(name)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	return in.base.MkdirAll(path, perm)
}

// injectFile routes per-file operations through the injector's plan.
type injectFile struct {
	File
	in   *Injector
	name string
}

func (f *injectFile) Read(p []byte) (int, error) {
	if mode, ok := f.in.check(OpRead, f.name); ok {
		return f.corruptOrFail(mode, p, func() (int, error) { return f.File.Read(p) })
	}
	return f.File.Read(p)
}

func (f *injectFile) ReadAt(p []byte, off int64) (int, error) {
	if mode, ok := f.in.check(OpRead, f.name); ok {
		return f.corruptOrFail(mode, p, func() (int, error) { return f.File.ReadAt(p, off) })
	}
	return f.File.ReadAt(p, off)
}

// corruptOrFail applies a read-class fault: ModeCorrupt performs the
// read and flips the first byte delivered; every other mode fails the
// call outright.
func (f *injectFile) corruptOrFail(mode Mode, p []byte, read func() (int, error)) (int, error) {
	if mode == ModeCorrupt {
		n, err := read()
		if n > 0 {
			p[0] ^= 0xFF
		}
		return n, err
	}
	return 0, injectErr(mode, OpRead, f.name)
}

func (f *injectFile) Write(p []byte) (int, error) {
	if mode, ok := f.in.check(OpWrite, f.name); ok {
		if mode == ModeShortWrite {
			n, err := f.File.Write(p[:len(p)/2])
			if err == nil {
				err = injectErr(mode, OpWrite, f.name)
			}
			return n, err
		}
		return 0, injectErr(mode, OpWrite, f.name)
	}
	return f.File.Write(p)
}

func (f *injectFile) WriteAt(p []byte, off int64) (int, error) {
	if mode, ok := f.in.check(OpWrite, f.name); ok {
		if mode == ModeShortWrite {
			n, err := f.File.WriteAt(p[:len(p)/2], off)
			if err == nil {
				err = injectErr(mode, OpWrite, f.name)
			}
			return n, err
		}
		return 0, injectErr(mode, OpWrite, f.name)
	}
	return f.File.WriteAt(p, off)
}

func (f *injectFile) Sync() error {
	if mode, ok := f.in.check(OpSync, f.name); ok {
		return injectErr(mode, OpSync, f.name)
	}
	return f.File.Sync()
}

func (f *injectFile) Truncate(size int64) error {
	if mode, ok := f.in.check(OpTruncate, f.name); ok {
		return injectErr(mode, OpTruncate, f.name)
	}
	return f.File.Truncate(size)
}
