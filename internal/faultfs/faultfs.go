// Package faultfs abstracts the filesystem operations the durability
// layer depends on — open, create, write, sync, rename, remove — behind
// an interface with two implementations: a zero-cost passthrough to the
// real OS, and a deterministic fault injector (inject.go) that can make
// the N-th matching call fail with a short write, an fsync error,
// ENOSPC, a failed rename or byte-level read corruption.
//
// internal/persist (WAL, AtomicWrite) and internal/server (the data-dir
// lifecycle) take an FS; production code passes OS (or nil, which means
// OS), tests and the daemons' -fault-plan flag pass an *Injector. Every
// failure mode the crash-matrix test exercises is therefore reachable
// from the same code paths production runs — no test-only forks of the
// durability logic.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the persistence layer uses.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file size.
	Truncate(size int64) error
	// Stat returns file metadata.
	Stat() (fs.FileInfo, error)
	// Name returns the name the file was opened with.
	Name() string
}

// FS is the filesystem surface of the durability layer. All paths are
// OS paths (the abstraction exists for fault injection, not for virtual
// filesystems).
type FS interface {
	// Open opens a file (or directory) read-only.
	Open(name string) (File, error)
	// OpenFile is the generalized open (os.OpenFile).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat returns file metadata without opening.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

// OrOS returns fsys, or OS when fsys is nil — the normalization every
// FS-taking entry point applies so callers can leave the field zero.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

type osFS struct{}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) {
	return os.Stat(name)
}
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
