// Package hash64 holds the word-wise FNV-1a hashing primitives shared
// by the query layers (bgp row dedup, algebra grouping/joins). Hashing
// is over 64-bit words rather than bytes — an 8x shorter loop for
// slightly weaker mixing, which is fine because every consumer verifies
// hash matches with exact equality.
package hash64

// FNV-1a parameters.
const (
	Offset = 14695981039346656037
	Prime  = 1099511628211
)

// Mix folds one word into the hash state.
func Mix(h, x uint64) uint64 { return (h ^ x) * Prime }
