// Package rdf implements the core RDF data model: terms (IRIs, literals,
// blank nodes), triples, and well-known vocabulary constants.
//
// The model follows RDF 1.1 Concepts. Literals carry an optional datatype
// IRI and are compared by lexical form plus datatype, so "1"^^xsd:integer
// and "1"^^xsd:string are distinct terms. Terms are immutable value types
// usable as map keys.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

// The three RDF term kinds.
const (
	KindIRI TermKind = iota + 1
	KindLiteral
	KindBlank
)

// String returns the kind name.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "IRI"
	case KindLiteral:
		return "Literal"
	case KindBlank:
		return "BlankNode"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term: an IRI, a literal, or a blank node.
//
// A Term is a comparable value type; two Terms are equal iff they denote
// the same RDF term. The zero Term is invalid and reports !IsValid().
type Term struct {
	kind TermKind
	// value holds the IRI string, the literal lexical form, or the blank
	// node label depending on kind.
	value string
	// datatype holds the datatype IRI for literals ("" means xsd:string
	// per RDF 1.1 simple literals).
	datatype string
	// lang holds the language tag for language-tagged literals.
	lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{kind: KindIRI, value: iri} }

// NewBlank returns a blank node term with the given label (without the
// leading "_:").
func NewBlank(label string) Term { return Term{kind: KindBlank, value: label} }

// NewLiteral returns a simple (xsd:string) literal.
func NewLiteral(lexical string) Term {
	return Term{kind: KindLiteral, value: lexical}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	if datatype == XSDString {
		datatype = ""
	}
	return Term{kind: KindLiteral, value: lexical, datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal. Language tags are
// normalized to lower case per RDF 1.1.
func NewLangLiteral(lexical, lang string) Term {
	return Term{kind: KindLiteral, value: lexical, lang: strings.ToLower(lang), datatype: RDFLangString}
}

// NewInt returns an xsd:integer literal.
func NewInt(v int64) Term {
	return Term{kind: KindLiteral, value: strconv.FormatInt(v, 10), datatype: XSDInteger}
}

// NewFloat returns an xsd:double literal.
func NewFloat(v float64) Term {
	return Term{kind: KindLiteral, value: strconv.FormatFloat(v, 'g', -1, 64), datatype: XSDDouble}
}

// NewBool returns an xsd:boolean literal.
func NewBool(v bool) Term {
	return Term{kind: KindLiteral, value: strconv.FormatBool(v), datatype: XSDBoolean}
}

// Kind reports the term kind. The zero Term has kind 0.
func (t Term) Kind() TermKind { return t.kind }

// IsValid reports whether t is a well-formed term (not the zero value).
func (t Term) IsValid() bool { return t.kind != 0 }

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.kind == KindIRI }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.kind == KindLiteral }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.kind == KindBlank }

// Value returns the IRI string, literal lexical form, or blank node label.
func (t Term) Value() string { return t.value }

// Datatype returns the datatype IRI of a literal. Simple literals report
// xsd:string. Non-literals report "".
func (t Term) Datatype() string {
	if t.kind != KindLiteral {
		return ""
	}
	if t.datatype == "" {
		return XSDString
	}
	return t.datatype
}

// Lang returns the language tag of a language-tagged literal, or "".
func (t Term) Lang() string { return t.lang }

// AsInt returns the literal value as int64. ok is false if t is not a
// numeric literal with an integral lexical form.
func (t Term) AsInt() (v int64, ok bool) {
	if t.kind != KindLiteral {
		return 0, false
	}
	v, err := strconv.ParseInt(t.value, 10, 64)
	return v, err == nil
}

// AsFloat returns the literal value as float64. ok is false if t is not a
// literal with a numeric lexical form.
func (t Term) AsFloat() (v float64, ok bool) {
	if t.kind != KindLiteral {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.value, 64)
	return v, err == nil
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.kind {
	case KindIRI:
		return "<" + t.value + ">"
	case KindBlank:
		return "_:" + t.value
	case KindLiteral:
		q := quoteLiteral(t.value)
		if t.lang != "" {
			return q + "@" + t.lang
		}
		if t.datatype != "" && t.datatype != RDFLangString {
			return q + "^^<" + t.datatype + ">"
		}
		return q
	default:
		return "<invalid>"
	}
}

// quoteLiteral escapes a lexical form for N-Triples output.
func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Compare orders terms: IRIs < literals < blank nodes; within a kind,
// lexicographic on (value, datatype, lang). It returns -1, 0 or +1.
func Compare(a, b Term) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(a.value, b.value); c != 0 {
		return c
	}
	if c := strings.Compare(a.datatype, b.datatype); c != 0 {
		return c
	}
	return strings.Compare(a.lang, b.lang)
}

// Triple is an RDF triple (statement).
type Triple struct {
	S, P, O Term
}

// NewTriple returns the triple (s, p, o).
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax, with the trailing dot.
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// IsValid reports whether all three positions hold valid terms and the
// subject/predicate positions satisfy RDF constraints (predicate must be
// an IRI; subject must not be a literal).
func (t Triple) IsValid() bool {
	if !t.S.IsValid() || !t.P.IsValid() || !t.O.IsValid() {
		return false
	}
	if !t.P.IsIRI() {
		return false
	}
	if t.S.IsLiteral() {
		return false
	}
	return true
}

// CompareTriples orders triples by (S, P, O).
func CompareTriples(a, b Triple) int {
	if c := Compare(a.S, b.S); c != 0 {
		return c
	}
	if c := Compare(a.P, b.P); c != 0 {
		return c
	}
	return Compare(a.O, b.O)
}
