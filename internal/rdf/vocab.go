package rdf

// Well-known vocabulary IRIs used throughout the library.
const (
	// RDF vocabulary.
	RDFNS         = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFType       = RDFNS + "type"
	RDFProperty   = RDFNS + "Property"
	RDFLangString = RDFNS + "langString"

	// RDFS vocabulary.
	RDFSNS            = "http://www.w3.org/2000/01/rdf-schema#"
	RDFSClass         = RDFSNS + "Class"
	RDFSSubClassOf    = RDFSNS + "subClassOf"
	RDFSSubPropertyOf = RDFSNS + "subPropertyOf"
	RDFSDomain        = RDFSNS + "domain"
	RDFSRange         = RDFSNS + "range"
	RDFSLabel         = RDFSNS + "label"

	// XSD datatypes.
	XSDNS       = "http://www.w3.org/2001/XMLSchema#"
	XSDString   = XSDNS + "string"
	XSDInteger  = XSDNS + "integer"
	XSDDecimal  = XSDNS + "decimal"
	XSDDouble   = XSDNS + "double"
	XSDBoolean  = XSDNS + "boolean"
	XSDDateTime = XSDNS + "dateTime"
)

// Type is the rdf:type IRI term, predeclared for convenience.
var Type = NewIRI(RDFType)

// SubClassOf is the rdfs:subClassOf IRI term.
var SubClassOf = NewIRI(RDFSSubClassOf)

// SubPropertyOf is the rdfs:subPropertyOf IRI term.
var SubPropertyOf = NewIRI(RDFSSubPropertyOf)

// Domain is the rdfs:domain IRI term.
var Domain = NewIRI(RDFSDomain)

// Range is the rdfs:range IRI term.
var Range = NewIRI(RDFSRange)
