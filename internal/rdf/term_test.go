package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermKinds(t *testing.T) {
	cases := []struct {
		term    Term
		kind    TermKind
		isIRI   bool
		isLit   bool
		isBlank bool
	}{
		{NewIRI("http://e.org/a"), KindIRI, true, false, false},
		{NewLiteral("hello"), KindLiteral, false, true, false},
		{NewTypedLiteral("5", XSDInteger), KindLiteral, false, true, false},
		{NewLangLiteral("bonjour", "FR"), KindLiteral, false, true, false},
		{NewBlank("b0"), KindBlank, false, false, true},
	}
	for _, c := range cases {
		if c.term.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.term, c.term.Kind(), c.kind)
		}
		if c.term.IsIRI() != c.isIRI || c.term.IsLiteral() != c.isLit || c.term.IsBlank() != c.isBlank {
			t.Errorf("%v: kind predicates wrong", c.term)
		}
		if !c.term.IsValid() {
			t.Errorf("%v: should be valid", c.term)
		}
	}
	var zero Term
	if zero.IsValid() {
		t.Error("zero Term must be invalid")
	}
}

func TestLiteralDatatypes(t *testing.T) {
	if got := NewLiteral("x").Datatype(); got != XSDString {
		t.Errorf("simple literal datatype = %q, want xsd:string", got)
	}
	if got := NewTypedLiteral("x", XSDString).Datatype(); got != XSDString {
		t.Errorf("explicit xsd:string datatype = %q", got)
	}
	// Simple and explicitly-typed xsd:string literals are the same term.
	if NewLiteral("x") != NewTypedLiteral("x", XSDString) {
		t.Error("xsd:string literal not normalized")
	}
	if got := NewLangLiteral("x", "EN").Lang(); got != "en" {
		t.Errorf("lang tag not lowercased: %q", got)
	}
	if got := NewLangLiteral("x", "en").Datatype(); got != RDFLangString {
		t.Errorf("lang literal datatype = %q, want rdf:langString", got)
	}
}

func TestLiteralIdentity(t *testing.T) {
	// Same lexical form, different datatype: distinct terms.
	a := NewTypedLiteral("1", XSDInteger)
	b := NewTypedLiteral("1", XSDString)
	if a == b {
		t.Error(`"1"^^xsd:integer must differ from "1"^^xsd:string`)
	}
	// Different language: distinct.
	if NewLangLiteral("chat", "fr") == NewLangLiteral("chat", "en") {
		t.Error("language-tagged literals with different tags must differ")
	}
}

func TestNumericAccessors(t *testing.T) {
	if v, ok := NewInt(-42).AsInt(); !ok || v != -42 {
		t.Errorf("AsInt = %d, %v", v, ok)
	}
	if v, ok := NewFloat(2.5).AsFloat(); !ok || v != 2.5 {
		t.Errorf("AsFloat = %g, %v", v, ok)
	}
	if _, ok := NewLiteral("abc").AsInt(); ok {
		t.Error("AsInt on non-numeric should fail")
	}
	if _, ok := NewIRI("http://e.org").AsFloat(); ok {
		t.Error("AsFloat on IRI should fail")
	}
	// Integers parse as floats too.
	if v, ok := NewInt(7).AsFloat(); !ok || v != 7 {
		t.Errorf("AsFloat on integer literal = %g, %v", v, ok)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://e.org/a"), "<http://e.org/a>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("hi"), `"hi"`},
		{NewLiteral(`say "hi"` + "\n"), `"say \"hi\"\n"`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<` + XSDInteger + `>`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	ordered := []Term{
		NewIRI("http://a.org"),
		NewIRI("http://b.org"),
		NewLiteral("a"),
		NewTypedLiteral("a", XSDInteger),
		NewBlank("x"),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b string, k1, k2 uint8) bool {
		mk := func(s string, k uint8) Term {
			switch k % 3 {
			case 0:
				return NewIRI(s)
			case 1:
				return NewLiteral(s)
			default:
				return NewBlank(s)
			}
		}
		x, y := mk(a, k1), mk(b, k2)
		return Compare(x, y) == -Compare(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTripleValidity(t *testing.T) {
	s := NewIRI("http://e.org/s")
	p := NewIRI("http://e.org/p")
	o := NewLiteral("v")
	if !NewTriple(s, p, o).IsValid() {
		t.Error("well-formed triple reported invalid")
	}
	if NewTriple(o, p, s).IsValid() {
		t.Error("literal subject must be invalid")
	}
	if NewTriple(s, o, s).IsValid() {
		t.Error("literal predicate must be invalid")
	}
	if NewTriple(s, NewBlank("b"), o).IsValid() {
		t.Error("blank predicate must be invalid")
	}
	if (Triple{S: s, P: p}).IsValid() {
		t.Error("zero object must be invalid")
	}
	// Blank subject is fine.
	if !NewTriple(NewBlank("b"), p, o).IsValid() {
		t.Error("blank subject must be valid")
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://e/s"), NewIRI("http://e/p"), NewInt(3))
	want := `<http://e/s> <http://e/p> "3"^^<` + XSDInteger + `> .`
	if tr.String() != want {
		t.Errorf("Triple.String() = %q, want %q", tr.String(), want)
	}
}

func TestCompareTriples(t *testing.T) {
	a := NewTriple(NewIRI("http://e/a"), NewIRI("http://e/p"), NewInt(1))
	b := NewTriple(NewIRI("http://e/b"), NewIRI("http://e/p"), NewInt(1))
	c := NewTriple(NewIRI("http://e/a"), NewIRI("http://e/q"), NewInt(1))
	if CompareTriples(a, b) >= 0 || CompareTriples(b, a) <= 0 {
		t.Error("subject ordering wrong")
	}
	if CompareTriples(a, c) >= 0 {
		t.Error("predicate ordering wrong")
	}
	if CompareTriples(a, a) != 0 {
		t.Error("equal triples must compare 0")
	}
}

func TestQuoteLiteralEscapes(t *testing.T) {
	term := NewLiteral("tab\there\r\nslash\\")
	s := term.String()
	for _, want := range []string{`\t`, `\r`, `\n`, `\\`} {
		if !strings.Contains(s, want) {
			t.Errorf("escaped form %q missing %q", s, want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "IRI" || KindLiteral.String() != "Literal" || KindBlank.String() != "BlankNode" {
		t.Error("TermKind names wrong")
	}
	if !strings.Contains(TermKind(99).String(), "99") {
		t.Error("unknown kind should include its number")
	}
}
