package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"rdfcube/internal/rdf"
)

// Prefixes maps prefix names (without the colon) to namespace IRIs. The
// empty prefix "" is the default namespace for ":local" names.
type Prefixes map[string]string

// DefaultPrefixes returns the standard prefix table (rdf, rdfs, xsd).
func DefaultPrefixes() Prefixes {
	return Prefixes{
		"rdf":  rdf.RDFNS,
		"rdfs": rdf.RDFSNS,
		"xsd":  rdf.XSDNS,
	}
}

// ParseDatalog parses the paper's notation:
//
//	name(v1, v2, ...) :- s p o, s p o, ...
//
// Each atom position is a variable (bare identifier), an <IRI>, a
// prefixed:name, a quoted or numeric literal. Variables are bare
// identifiers; anything containing ':' is resolved as a prefixed name.
func ParseDatalog(text string, prefixes Prefixes) (*Query, error) {
	if prefixes == nil {
		prefixes = DefaultPrefixes()
	}
	text = strings.TrimSpace(text)
	sep := strings.Index(text, ":-")
	if sep < 0 {
		return nil, fmt.Errorf("sparql: missing ':-' in %q", text)
	}
	head := strings.TrimSpace(text[:sep])
	body := strings.TrimSpace(text[sep+2:])

	q := &Query{}
	open := strings.Index(head, "(")
	close_ := strings.LastIndex(head, ")")
	if open < 0 || close_ < open {
		return nil, fmt.Errorf("sparql: malformed head %q", head)
	}
	q.Name = strings.TrimSpace(head[:open])
	for _, v := range strings.Split(head[open+1:close_], ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			return nil, fmt.Errorf("sparql: empty head variable in %q", head)
		}
		q.Head = append(q.Head, v)
	}

	atoms, err := splitAtoms(body)
	if err != nil {
		return nil, err
	}
	for _, atom := range atoms {
		toks, err := splitTerms(atom)
		if err != nil {
			return nil, err
		}
		if len(toks) != 3 {
			return nil, fmt.Errorf("sparql: atom %q must have 3 terms, got %d", atom, len(toks))
		}
		var tp TriplePattern
		if tp.S, err = parseNode(toks[0], prefixes, false); err != nil {
			return nil, err
		}
		if tp.P, err = parseNode(toks[1], prefixes, true); err != nil {
			return nil, err
		}
		if tp.O, err = parseNode(toks[2], prefixes, false); err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, tp)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParseDatalog is ParseDatalog that panics on error; for fixtures.
func MustParseDatalog(text string, prefixes Prefixes) *Query {
	q, err := ParseDatalog(text, prefixes)
	if err != nil {
		panic(err)
	}
	return q
}

// splitAtoms splits the body on commas that are outside quotes and <...>.
func splitAtoms(body string) ([]string, error) {
	var atoms []string
	depth := 0
	inQuote := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				inQuote = !inQuote
			}
		case '<':
			if !inQuote {
				depth++
			}
		case '>':
			if !inQuote {
				depth--
			}
		case ',':
			if !inQuote && depth == 0 {
				atoms = append(atoms, strings.TrimSpace(body[start:i]))
				start = i + 1
			}
		}
	}
	if inQuote {
		return nil, fmt.Errorf("sparql: unterminated quote in %q", body)
	}
	last := strings.TrimSpace(body[start:])
	if last != "" {
		atoms = append(atoms, last)
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("sparql: empty body")
	}
	return atoms, nil
}

// splitTerms splits an atom into whitespace-separated tokens, keeping
// quoted literals (with suffixes) and <IRI>s intact.
func splitTerms(atom string) ([]string, error) {
	var toks []string
	i := 0
	n := len(atom)
	for i < n {
		c := atom[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '<':
			j := strings.IndexByte(atom[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("sparql: unterminated IRI in %q", atom)
			}
			toks = append(toks, atom[i:i+j+1])
			i += j + 1
		case c == '"':
			j := i + 1
			for j < n && (atom[j] != '"' || atom[j-1] == '\\') {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sparql: unterminated literal in %q", atom)
			}
			j++
			for j < n && atom[j] != ' ' && atom[j] != '\t' {
				j++
			}
			toks = append(toks, atom[i:j])
			i = j
		default:
			j := i
			for j < n && atom[j] != ' ' && atom[j] != '\t' {
				j++
			}
			toks = append(toks, atom[i:j])
			i = j
		}
	}
	return toks, nil
}

// ParseTerm parses a constant RDF term in the datalog surface syntax:
// <IRI>, prefixed:name, "literal" (with optional @lang or ^^<datatype>),
// integer, float, or _:blank. Bare numeric tokens are canonicalized
// (007 → 7, 1e3 → 1000), so a typed-in value always equals the term a
// data loader would have interned; quote a literal to keep its exact
// lexical form. Bare identifiers — which the query parser would read as
// variables — are rejected: a constant position needs a constant. Used
// wherever term values arrive as strings (CLI flags, server JSON Σ
// restrictions).
func ParseTerm(tok string, prefixes Prefixes) (rdf.Term, error) {
	if prefixes == nil {
		prefixes = DefaultPrefixes()
	}
	tok = strings.TrimSpace(tok)
	if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return rdf.NewInt(v), nil
	}
	if v, err := strconv.ParseFloat(tok, 64); err == nil && strings.ContainsAny(tok, ".eE") {
		return rdf.NewFloat(v), nil
	}
	n, err := parseNode(tok, prefixes, false)
	if err != nil {
		return rdf.Term{}, err
	}
	if n.IsVar() {
		return rdf.Term{}, fmt.Errorf("sparql: %q is not a constant term (quote it for a plain literal)", tok)
	}
	return n.Term, nil
}

// parseNode resolves one token to a Node.
func parseNode(tok string, prefixes Prefixes, predicatePos bool) (Node, error) {
	switch {
	case tok == "a" && predicatePos:
		return C(rdf.Type), nil
	case strings.HasPrefix(tok, "?"):
		return V(tok[1:]), nil
	case strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">"):
		return IRI(tok[1 : len(tok)-1]), nil
	case strings.HasPrefix(tok, `"`):
		t, err := parseLiteralToken(tok)
		if err != nil {
			return Node{}, err
		}
		return C(t), nil
	case strings.HasPrefix(tok, "_:"):
		return C(rdf.NewBlank(tok[2:])), nil
	}
	// Numeric literal?
	if _, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return C(rdf.NewTypedLiteral(tok, rdf.XSDInteger)), nil
	}
	if _, err := strconv.ParseFloat(tok, 64); err == nil && strings.ContainsAny(tok, ".eE") {
		return C(rdf.NewTypedLiteral(tok, rdf.XSDDouble)), nil
	}
	// Prefixed name?
	if colon := strings.Index(tok, ":"); colon >= 0 {
		ns, ok := prefixes[tok[:colon]]
		if !ok {
			return Node{}, fmt.Errorf("sparql: unknown prefix %q in %q", tok[:colon], tok)
		}
		return IRI(ns + tok[colon+1:]), nil
	}
	// Bare identifier: a variable (the paper writes variables unadorned).
	if !isIdent(tok) {
		return Node{}, fmt.Errorf("sparql: unrecognized token %q", tok)
	}
	return V(tok), nil
}

func parseLiteralToken(tok string) (rdf.Term, error) {
	j := 1
	for j < len(tok) && (tok[j] != '"' || tok[j-1] == '\\') {
		j++
	}
	if j >= len(tok) {
		return rdf.Term{}, fmt.Errorf("sparql: unterminated literal %q", tok)
	}
	lex := strings.ReplaceAll(tok[1:j], `\"`, `"`)
	rest := tok[j+1:]
	switch {
	case rest == "":
		return rdf.NewLiteral(lex), nil
	case strings.HasPrefix(rest, "@"):
		return rdf.NewLangLiteral(lex, rest[1:]), nil
	case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
		return rdf.NewTypedLiteral(lex, rest[3:len(rest)-1]), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: malformed literal suffix in %q", tok)
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ParseSelect parses the SPARQL SELECT subset:
//
//	PREFIX ex: <http://example.org/>
//	SELECT ?x ?y WHERE { ?x rdf:type ex:Blogger . ?x ex:hasAge ?y }
//
// Supported: PREFIX headers, variable and constant positions, "a", "."
// separators. DISTINCT is accepted and ignored (set semantics is the
// default downstream). Unsupported constructs return an error.
func ParseSelect(text string) (*Query, error) {
	prefixes := DefaultPrefixes()
	rest := strings.TrimSpace(text)
	for {
		lower := strings.ToLower(rest)
		if !strings.HasPrefix(lower, "prefix") {
			break
		}
		line := rest[len("prefix"):]
		colon := strings.Index(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("sparql: malformed PREFIX in %q", rest)
		}
		name := strings.TrimSpace(line[:colon])
		line = strings.TrimSpace(line[colon+1:])
		if !strings.HasPrefix(line, "<") {
			return nil, fmt.Errorf("sparql: PREFIX needs <IRI>")
		}
		end := strings.Index(line, ">")
		if end < 0 {
			return nil, fmt.Errorf("sparql: unterminated PREFIX IRI")
		}
		prefixes[name] = line[1:end]
		rest = strings.TrimSpace(line[end+1:])
	}
	lower := strings.ToLower(rest)
	if !strings.HasPrefix(lower, "select") {
		return nil, fmt.Errorf("sparql: expected SELECT in %q", rest)
	}
	rest = strings.TrimSpace(rest[len("select"):])
	if strings.HasPrefix(strings.ToLower(rest), "distinct") {
		rest = strings.TrimSpace(rest[len("distinct"):])
	}
	whereIdx := strings.Index(strings.ToLower(rest), "where")
	if whereIdx < 0 {
		return nil, fmt.Errorf("sparql: missing WHERE")
	}
	q := &Query{Name: "q"}
	for _, tok := range strings.Fields(rest[:whereIdx]) {
		if !strings.HasPrefix(tok, "?") {
			return nil, fmt.Errorf("sparql: SELECT supports only variables, got %q", tok)
		}
		q.Head = append(q.Head, tok[1:])
	}
	rest = strings.TrimSpace(rest[whereIdx+len("where"):])
	if !strings.HasPrefix(rest, "{") || !strings.HasSuffix(rest, "}") {
		return nil, fmt.Errorf("sparql: WHERE clause must be braced")
	}
	body := strings.TrimSpace(rest[1 : len(rest)-1])
	body = strings.ReplaceAll(body, "\n", " ")
	for _, stmt := range splitOnDots(body) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		toks, err := splitTerms(stmt)
		if err != nil {
			return nil, err
		}
		if len(toks) != 3 {
			return nil, fmt.Errorf("sparql: pattern %q must have 3 terms", stmt)
		}
		var tp TriplePattern
		if tp.S, err = parseNode(toks[0], prefixes, false); err != nil {
			return nil, err
		}
		if tp.P, err = parseNode(toks[1], prefixes, true); err != nil {
			return nil, err
		}
		if tp.O, err = parseNode(toks[2], prefixes, false); err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, tp)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// SplitStatements splits a SPARQL-style pattern block on "." separators,
// ignoring dots inside quoted literals and <IRI> references. Exposed for
// other dialect parsers (e.g. the aggregation fragment).
func SplitStatements(body string) []string { return splitOnDots(body) }

// splitOnDots splits on "." outside quotes and <...>.
func splitOnDots(body string) []string {
	var parts []string
	depth := 0
	inQuote := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				inQuote = !inQuote
			}
		case '<':
			if !inQuote {
				depth++
			}
		case '>':
			if !inQuote {
				depth--
			}
		case '.':
			if !inQuote && depth == 0 {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, body[start:])
	return parts
}
