package sparql

import (
	"strings"
	"testing"

	"rdfcube/internal/rdf"
)

func testPrefixes() Prefixes {
	p := DefaultPrefixes()
	p[""] = "http://e.org/"
	p["ex"] = "http://example.com/"
	return p
}

func TestParseDatalogPaperQuery(t *testing.T) {
	// The rooted BGP from Section 2 of the paper.
	q, err := ParseDatalog(
		"q(x1, x2, x3) :- x1 :acquaintedWith x2, x1 :identifiedBy y1, x1 :wrotePost y2, y2 :postedOn x3",
		testPrefixes())
	if err != nil {
		t.Fatalf("ParseDatalog: %v", err)
	}
	if q.Name != "q" {
		t.Errorf("Name = %q", q.Name)
	}
	if len(q.Head) != 3 || q.Head[0] != "x1" || q.Head[2] != "x3" {
		t.Errorf("Head = %v", q.Head)
	}
	if len(q.Patterns) != 4 {
		t.Errorf("%d patterns, want 4", len(q.Patterns))
	}
	if !q.IsRooted() {
		t.Error("paper query must be rooted at x1")
	}
	if q.Root() != "x1" {
		t.Errorf("Root = %q", q.Root())
	}
	ex := q.ExistentialVars()
	if len(ex) != 2 || ex[0] != "y1" || ex[1] != "y2" {
		t.Errorf("ExistentialVars = %v", ex)
	}
}

func TestParseDatalogTermForms(t *testing.T) {
	q, err := ParseDatalog(
		`q(x) :- x rdf:type ex:Blogger, x :hasAge 28, x :score 3.5, x :name "Bill", x :note "hi"@en, x :n "5"^^<http://www.w3.org/2001/XMLSchema#integer>, x :link <http://raw.org/iri>`,
		testPrefixes())
	if err != nil {
		t.Fatalf("ParseDatalog: %v", err)
	}
	wantObjects := []rdf.Term{
		rdf.NewIRI("http://example.com/Blogger"),
		rdf.NewInt(28),
		rdf.NewTypedLiteral("3.5", rdf.XSDDouble),
		rdf.NewLiteral("Bill"),
		rdf.NewLangLiteral("hi", "en"),
		rdf.NewInt(5),
		rdf.NewIRI("http://raw.org/iri"),
	}
	for i, want := range wantObjects {
		got := q.Patterns[i].O
		if got.IsVar() || got.Term != want {
			t.Errorf("pattern %d object = %v, want %v", i, got, want)
		}
	}
	if q.Patterns[0].P.Term != rdf.Type {
		t.Errorf("rdf:type = %v", q.Patterns[0].P)
	}
}

func TestParseDatalogAKeyword(t *testing.T) {
	q, err := ParseDatalog("q(x) :- x a ex:Blogger", testPrefixes())
	if err != nil {
		t.Fatalf("ParseDatalog: %v", err)
	}
	if q.Patterns[0].P.Term != rdf.Type {
		t.Errorf(`"a" = %v, want rdf:type`, q.Patterns[0].P)
	}
}

func TestParseDatalogQuestionMarkVars(t *testing.T) {
	q, err := ParseDatalog("q(x) :- ?x rdf:type ex:Blogger", Prefixes{"rdf": rdf.RDFNS, "ex": "http://e/"})
	if err != nil {
		t.Fatalf("ParseDatalog: %v", err)
	}
	if !q.Patterns[0].S.IsVar() || q.Patterns[0].S.Var != "x" {
		t.Errorf("?x = %v", q.Patterns[0].S)
	}
}

func TestParseDatalogErrors(t *testing.T) {
	bad := []string{
		"q(x) x rdf:type ex:B",             // missing :-
		"q :- x rdf:type ex:B",             // malformed head
		"q() :- x rdf:type ex:B",           // empty head
		"q(x) :- ",                         // empty body
		"q(x) :- x rdf:type",               // 2-term atom
		"q(x) :- x rdf:type ex:B ex:C",     // 4-term atom
		"q(y) :- x rdf:type ex:B",          // head var unbound
		"q(x, x) :- x rdf:type ex:B",       // duplicate head var
		"q(x) :- x unknown:p ex:B",         // unknown prefix
		`q(x) :- "lit" rdf:type ex:B`,      // literal subject
		`q(x) :- x rdf:type "unterminated`, // unterminated literal
		"q(x) :- x rdf:type <unterminated", // unterminated IRI
		"q(x) :- x rdf:type ex:B, , ex:C",  // stray comma
	}
	for _, text := range bad {
		if _, err := ParseDatalog(text, testPrefixes()); err == nil {
			t.Errorf("accepted malformed query %q", text)
		}
	}
}

func TestParseSelect(t *testing.T) {
	q, err := ParseSelect(`
		PREFIX ex: <http://example.com/>
		SELECT ?x ?age WHERE { ?x rdf:type ex:Blogger . ?x ex:hasAge ?age }`)
	if err != nil {
		t.Fatalf("ParseSelect: %v", err)
	}
	if len(q.Head) != 2 || q.Head[0] != "x" || q.Head[1] != "age" {
		t.Errorf("Head = %v", q.Head)
	}
	if len(q.Patterns) != 2 {
		t.Errorf("%d patterns, want 2", len(q.Patterns))
	}
	if q.Patterns[1].P.Term != rdf.NewIRI("http://example.com/hasAge") {
		t.Errorf("predicate = %v", q.Patterns[1].P)
	}
}

func TestParseSelectDistinct(t *testing.T) {
	q, err := ParseSelect(`SELECT DISTINCT ?x WHERE { ?x rdf:type <http://e/C> }`)
	if err != nil {
		t.Fatalf("ParseSelect: %v", err)
	}
	if len(q.Head) != 1 {
		t.Errorf("Head = %v", q.Head)
	}
}

func TestParseSelectErrors(t *testing.T) {
	bad := []string{
		`SELECT ?x { ?x rdf:type <http://e/C> }`,           // missing WHERE
		`SELECT x WHERE { ?x rdf:type <http://e/C> }`,      // non-var in SELECT
		`SELECT ?x WHERE ?x rdf:type <http://e/C>`,         // unbraced
		`SELECT ?y WHERE { ?x rdf:type <http://e/C> }`,     // unbound head
		`PREFIX broken SELECT ?x WHERE { ?x rdf:type ?y }`, // malformed prefix
	}
	for _, text := range bad {
		if _, err := ParseSelect(text); err == nil {
			t.Errorf("accepted malformed SELECT %q", text)
		}
	}
}

func TestDatalogAndSelectAgree(t *testing.T) {
	d, err := ParseDatalog("q(x, y) :- x ex:p y, y rdf:type ex:C", testPrefixes())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSelect(`PREFIX ex: <http://example.com/>
		SELECT ?x ?y WHERE { ?x ex:p ?y . ?y rdf:type ex:C }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Patterns) != len(s.Patterns) {
		t.Fatalf("pattern counts differ: %d vs %d", len(d.Patterns), len(s.Patterns))
	}
	for i := range d.Patterns {
		if !d.Patterns[i].S.Equal(s.Patterns[i].S) ||
			!d.Patterns[i].P.Equal(s.Patterns[i].P) ||
			!d.Patterns[i].O.Equal(s.Patterns[i].O) {
			t.Errorf("pattern %d differs: %v vs %v", i, d.Patterns[i], s.Patterns[i])
		}
	}
}

func TestIsRooted(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"q(x) :- x ex:p y, y ex:q z", true},
		{"q(x) :- x ex:p y, z ex:q w", false}, // z,w unreachable
		{"q(x, y) :- y ex:p x", false},        // only o→s edge; root can't reach y
		{"q(x) :- x ex:p x", true},
	}
	for _, c := range cases {
		q, err := ParseDatalog(c.text, testPrefixes())
		if err != nil {
			t.Fatalf("%q: %v", c.text, err)
		}
		if got := q.IsRooted(); got != c.want {
			t.Errorf("IsRooted(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestSubstitute(t *testing.T) {
	q, err := ParseDatalog("q(x, d) :- x ex:p d, x ex:q d", testPrefixes())
	if err != nil {
		t.Fatal(err)
	}
	v := rdf.NewInt(5)
	sub := q.Substitute("d", v)
	if len(sub.Head) != 1 || sub.Head[0] != "x" {
		t.Errorf("head after substitute = %v", sub.Head)
	}
	for _, tp := range sub.Patterns {
		if tp.O.IsVar() || tp.O.Term != v {
			t.Errorf("object not substituted: %v", tp)
		}
	}
	// Original untouched.
	if q.Patterns[0].O.Var != "d" {
		t.Error("Substitute mutated the original query")
	}
}

func TestCloneIndependence(t *testing.T) {
	q, _ := ParseDatalog("q(x) :- x ex:p y", testPrefixes())
	cp := q.Clone()
	cp.Head[0] = "changed"
	cp.Patterns[0].S = V("other")
	if q.Head[0] != "x" || q.Patterns[0].S.Var != "x" {
		t.Error("Clone shares storage with the original")
	}
}

func TestQueryString(t *testing.T) {
	q, _ := ParseDatalog("c(x, d) :- x rdf:type ex:B, x ex:p d", testPrefixes())
	s := q.String()
	for _, want := range []string{"c(x, d)", ":-", "<http://example.com/B>"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q lacks %q", s, want)
		}
	}
	// Output re-parses to an equivalent query.
	back, err := ParseDatalog(s, testPrefixes())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", s, err)
	}
	if len(back.Patterns) != len(q.Patterns) {
		t.Error("String() round trip changed pattern count")
	}
}

func TestHeadAccessors(t *testing.T) {
	q, _ := ParseDatalog("q(x, d1) :- x ex:p d1, x ex:q z", testPrefixes())
	if !q.HasHeadVar("d1") || q.HasHeadVar("z") {
		t.Error("HasHeadVar wrong")
	}
	vars := q.Vars()
	if len(vars) != 3 {
		t.Errorf("Vars = %v", vars)
	}
}

func TestParseTerm(t *testing.T) {
	px := testPrefixes()
	cases := []struct {
		in   string
		want rdf.Term
	}{
		{"<http://e.org/x>", rdf.NewIRI("http://e.org/x")},
		{":x", rdf.NewIRI("http://e.org/x")},
		{"ex:y", rdf.NewIRI("http://example.com/y")},
		{"42", rdf.NewInt(42)},
		{"-7", rdf.NewInt(-7)},
		{"007", rdf.NewInt(7)}, // bare numerics canonicalize
		{"2.5", rdf.NewFloat(2.5)},
		{"1e3", rdf.NewFloat(1000)},
		{`"hi"`, rdf.NewLiteral("hi")},
		{`"hi"@en`, rdf.NewLangLiteral("hi", "en")},
		{"_:b0", rdf.NewBlank("b0")},
		{" :x ", rdf.NewIRI("http://e.org/x")}, // surrounding space trimmed
	}
	for _, c := range cases {
		got, err := ParseTerm(c.in, px)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTerm(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"bareword", "unknown:x", "?v", ""} {
		if _, err := ParseTerm(bad, px); err == nil {
			t.Errorf("ParseTerm(%q) accepted, want error", bad)
		}
	}
}
