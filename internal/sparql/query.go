// Package sparql defines the conjunctive (basic graph pattern) query
// model used throughout the library, together with two concrete text
// syntaxes: the paper's datalog-style notation
//
//	q(x, d1) :- x rdf:type :Blogger, x :hasAge d1
//
// and a SPARQL 1.1 SELECT subset
//
//	SELECT ?x ?d1 WHERE { ?x rdf:type :Blogger . ?x :hasAge ?d1 }
//
// Both parse to the same Query value. Queries default to set semantics;
// measure queries in analytical queries are evaluated under bag semantics
// by the evaluator, per the paper.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"rdfcube/internal/rdf"
)

// Node is one position of a triple pattern: either a variable or a
// constant RDF term.
type Node struct {
	// Var is the variable name when the node is a variable; "" otherwise.
	Var string
	// Term is the constant when the node is not a variable.
	Term rdf.Term
}

// V returns a variable node.
func V(name string) Node { return Node{Var: name} }

// C returns a constant node.
func C(t rdf.Term) Node { return Node{Term: t} }

// IRI returns a constant IRI node.
func IRI(iri string) Node { return Node{Term: rdf.NewIRI(iri)} }

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

// String renders the node in the datalog syntax.
func (n Node) String() string {
	if n.IsVar() {
		return n.Var
	}
	return n.Term.String()
}

// Equal reports structural equality of nodes.
func (n Node) Equal(m Node) bool { return n.Var == m.Var && n.Term == m.Term }

// TriplePattern is one atom of a BGP.
type TriplePattern struct {
	S, P, O Node
}

// String renders the pattern in the datalog syntax.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// Vars returns the variable names of the pattern in S, P, O order,
// without duplicates.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.IsVar() && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// Query is a conjunctive BGP query with a distinguished head.
type Query struct {
	// Name is the query symbol from the datalog head (informational).
	Name string
	// Head lists the distinguished (answer) variables, in order.
	Head []string
	// Patterns is the query body.
	Patterns []TriplePattern
}

// String renders the query in the paper's datalog notation.
func (q *Query) String() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "q"
	}
	b.WriteString(name)
	b.WriteString("(")
	b.WriteString(strings.Join(q.Head, ", "))
	b.WriteString(") :- ")
	for i, tp := range q.Patterns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tp.String())
	}
	return b.String()
}

// Clone returns a deep copy of q.
func (q *Query) Clone() *Query {
	cp := &Query{Name: q.Name}
	cp.Head = append([]string(nil), q.Head...)
	cp.Patterns = append([]TriplePattern(nil), q.Patterns...)
	return cp
}

// Vars returns all variable names occurring in the body, sorted.
func (q *Query) Vars() []string {
	seen := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ExistentialVars returns the body variables that are not distinguished
// (do not appear in the head), sorted.
func (q *Query) ExistentialVars() []string {
	head := map[string]bool{}
	for _, v := range q.Head {
		head[v] = true
	}
	var out []string
	for _, v := range q.Vars() {
		if !head[v] {
			out = append(out, v)
		}
	}
	return out
}

// HasHeadVar reports whether name is a distinguished variable of q.
func (q *Query) HasHeadVar(name string) bool {
	for _, v := range q.Head {
		if v == name {
			return true
		}
	}
	return false
}

// Validate checks structural well-formedness: non-empty head and body,
// no duplicate head variables, every head variable bound in the body,
// and no literal subjects.
func (q *Query) Validate() error {
	if len(q.Head) == 0 {
		return fmt.Errorf("sparql: query %q has empty head", q.Name)
	}
	if len(q.Patterns) == 0 {
		return fmt.Errorf("sparql: query %q has empty body", q.Name)
	}
	seen := map[string]bool{}
	for _, v := range q.Head {
		if seen[v] {
			return fmt.Errorf("sparql: duplicate head variable %q", v)
		}
		seen[v] = true
	}
	bodyVars := map[string]bool{}
	for _, tp := range q.Patterns {
		if !tp.S.IsVar() && tp.S.Term.IsLiteral() {
			return fmt.Errorf("sparql: literal subject in pattern %s", tp)
		}
		for _, v := range tp.Vars() {
			bodyVars[v] = true
		}
	}
	for _, v := range q.Head {
		if !bodyVars[v] {
			return fmt.Errorf("sparql: head variable %q not bound in body", v)
		}
	}
	return nil
}

// Root returns the first head variable, the distinguished root of a
// rooted BGP (the fact variable of classifiers and measures).
func (q *Query) Root() string {
	if len(q.Head) == 0 {
		return ""
	}
	return q.Head[0]
}

// IsRooted reports whether every body variable is reachable from the root
// variable following triple patterns subject→object, as required of
// classifier and measure queries (Section 2 of the paper).
func (q *Query) IsRooted() bool {
	root := q.Root()
	if root == "" {
		return false
	}
	// Adjacency over variables: s —> o for each pattern; constants do not
	// propagate reachability.
	adj := map[string][]string{}
	for _, tp := range q.Patterns {
		if tp.S.IsVar() && tp.O.IsVar() {
			adj[tp.S.Var] = append(adj[tp.S.Var], tp.O.Var)
		}
		if tp.S.IsVar() && tp.P.IsVar() {
			adj[tp.S.Var] = append(adj[tp.S.Var], tp.P.Var)
		}
	}
	reach := map[string]bool{root: true}
	stack := []string{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !reach[w] {
				reach[w] = true
				stack = append(stack, w)
			}
		}
	}
	for _, v := range q.Vars() {
		if !reach[v] {
			return false
		}
	}
	return true
}

// Substitute returns a copy of q with variable name replaced by the
// constant term wherever it occurs in the body; the head keeps the
// variable list minus name. Substituting a non-existent variable is a
// no-op on the body.
func (q *Query) Substitute(name string, t rdf.Term) *Query {
	cp := q.Clone()
	var head []string
	for _, v := range cp.Head {
		if v != name {
			head = append(head, v)
		}
	}
	cp.Head = head
	for i, tp := range cp.Patterns {
		if tp.S.Var == name {
			cp.Patterns[i].S = C(t)
		}
		if tp.P.Var == name {
			cp.Patterns[i].P = C(t)
		}
		if tp.O.Var == name {
			cp.Patterns[i].O = C(t)
		}
	}
	return cp
}
