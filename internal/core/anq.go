// Package core implements the paper's contribution: analytical queries
// (AnQs) over analytical-schema instances, their extended form with
// dimension restrictions Σ, the four OLAP operations (SLICE, DICE,
// DRILL-OUT, DRILL-IN) as query transformations, and — most importantly —
// the view-based rewriting algorithms that answer a transformed query
// from the materialized results of the original one:
//
//   - σ_dice over ans(Q) for SLICE and DICE (Proposition 1),
//   - Algorithm 1 over pres(Q) for DRILL-OUT (Proposition 2),
//   - Algorithm 2 over pres(Q) plus an auxiliary instance query for
//     DRILL-IN (Proposition 3).
package core

import (
	"fmt"
	"strings"

	"rdfcube/internal/agg"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
)

// KeyCol is the reserved column name of the measure key k added by the
// extended measure result m_k (Section 3). Query variables must not use it.
const KeyCol = "_k"

// Sigma is the dimension-restriction function Σ of extended analytical
// queries (Definition 2): it maps a dimension variable to the set of
// values it may take. A missing entry means the dimension ranges over its
// full value set V_i. An empty entry is invalid (Σ maps to non-empty sets).
type Sigma map[string][]rdf.Term

// Clone deep-copies the restriction map.
func (s Sigma) Clone() Sigma {
	if s == nil {
		return nil
	}
	out := make(Sigma, len(s))
	for k, v := range s {
		out[k] = append([]rdf.Term(nil), v...)
	}
	return out
}

// Restricts reports whether dimension dim is restricted.
func (s Sigma) Restricts(dim string) bool {
	_, ok := s[dim]
	return ok
}

// Query is an (extended) analytical query
// Q :- ⟨c_Σ(x, d1..dn), m(x, v), ⊕⟩ (Definitions 1–2).
//
// The classifier has set semantics; the measure has bag semantics. Both
// must be rooted BGPs sharing the same root (fact) variable. A nil or
// empty Sigma yields a plain AnQ.
type Query struct {
	// Classifier produces facts and their dimension values; head is
	// (x, d1, ..., dn).
	Classifier *sparql.Query
	// Measure produces values to aggregate; head is (x, v).
	Measure *sparql.Query
	// Agg is the aggregation function ⊕.
	Agg agg.Func
	// Sigma restricts dimension values (extended AnQ). Dimensions
	// without an entry are unrestricted.
	Sigma Sigma
}

// New constructs and validates an analytical query.
func New(classifier, measure *sparql.Query, f agg.Func) (*Query, error) {
	q := &Query{Classifier: classifier, Measure: measure, Agg: f}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustNew is New that panics on error; for fixtures and examples.
func MustNew(classifier, measure *sparql.Query, f agg.Func) *Query {
	q, err := New(classifier, measure, f)
	if err != nil {
		panic(err)
	}
	return q
}

// Validate checks the structural requirements of Definitions 1–2.
func (q *Query) Validate() error {
	if q.Classifier == nil || q.Measure == nil {
		return fmt.Errorf("core: analytical query needs classifier and measure")
	}
	if q.Agg == nil {
		return fmt.Errorf("core: analytical query needs an aggregation function")
	}
	if err := q.Classifier.Validate(); err != nil {
		return fmt.Errorf("core: classifier: %w", err)
	}
	if err := q.Measure.Validate(); err != nil {
		return fmt.Errorf("core: measure: %w", err)
	}
	if len(q.Measure.Head) != 2 {
		return fmt.Errorf("core: measure head must be (x, v), got %d variables", len(q.Measure.Head))
	}
	if len(q.Classifier.Head) < 1 {
		return fmt.Errorf("core: classifier head must start with the fact variable")
	}
	if q.Classifier.Root() != q.Measure.Root() {
		return fmt.Errorf("core: classifier root %q and measure root %q differ; both queries must be rooted at the same node",
			q.Classifier.Root(), q.Measure.Root())
	}
	if !q.Classifier.IsRooted() {
		return fmt.Errorf("core: classifier is not a rooted BGP")
	}
	if !q.Measure.IsRooted() {
		return fmt.Errorf("core: measure is not a rooted BGP")
	}
	for _, v := range append(append([]string(nil), q.Classifier.Head...), q.Measure.Head...) {
		if v == KeyCol {
			return fmt.Errorf("core: variable name %q is reserved for the measure key", KeyCol)
		}
	}
	mv := q.MeasureVar()
	for _, d := range q.Dims() {
		if d == mv {
			return fmt.Errorf("core: dimension %q collides with the measure variable", d)
		}
	}
	for dim, vals := range q.Sigma {
		if !q.HasDim(dim) {
			return fmt.Errorf("core: Σ restricts %q which is not a dimension of the classifier", dim)
		}
		if len(vals) == 0 {
			return fmt.Errorf("core: Σ(%s) must be a non-empty value set", dim)
		}
	}
	return nil
}

// Root returns the fact variable x.
func (q *Query) Root() string { return q.Classifier.Root() }

// Dims returns the dimension variables d1..dn, in classifier head order.
func (q *Query) Dims() []string {
	if len(q.Classifier.Head) <= 1 {
		return nil
	}
	return q.Classifier.Head[1:]
}

// HasDim reports whether dim is a dimension of q.
func (q *Query) HasDim(dim string) bool {
	for _, d := range q.Dims() {
		if d == dim {
			return true
		}
	}
	return false
}

// MeasureVar returns the measure value variable v.
func (q *Query) MeasureVar() string { return q.Measure.Head[1] }

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	return &Query{
		Classifier: q.Classifier.Clone(),
		Measure:    q.Measure.Clone(),
		Agg:        q.Agg,
		Sigma:      q.Sigma.Clone(),
	}
}

// String renders the query in the paper's ⟨c, m, ⊕⟩ notation.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	b.WriteString(q.Classifier.String())
	b.WriteString(", ")
	b.WriteString(q.Measure.String())
	b.WriteString(", ")
	b.WriteString(q.Agg.Name())
	b.WriteString("⟩")
	if len(q.Sigma) > 0 {
		b.WriteString(" with Σ{")
		first := true
		for _, d := range q.Dims() {
			vals, ok := q.Sigma[d]
			if !ok {
				continue
			}
			if !first {
				b.WriteString("; ")
			}
			first = false
			fmt.Fprintf(&b, "%s∈%v", d, vals)
		}
		b.WriteString("}")
	}
	return b.String()
}
