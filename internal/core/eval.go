package core

import (
	"context"
	"fmt"

	"rdfcube/internal/algebra"
	"rdfcube/internal/bgp"
	"rdfcube/internal/dict"
	"rdfcube/internal/obs"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// Evaluator answers analytical queries against a materialized AnS
// instance. It owns the direct-evaluation path (from the instance) and
// the materialization of pres(Q)/ans(Q); the rewriting algorithms in
// rewrite.go consume the materialized relations.
type Evaluator struct {
	inst *store.Store
	ctx  context.Context // nil = background; see WithContext
}

// NewEvaluator returns an evaluator over the given AnS instance.
func NewEvaluator(inst *store.Store) *Evaluator { return &Evaluator{inst: inst} }

// WithContext returns a copy of e whose BGP evaluations honor ctx —
// cancellation and deadlines abort in-flight pattern matching. The
// receiver is untouched, so a long-lived evaluator can be bound to a
// request context without poisoning later uses.
func (e *Evaluator) WithContext(ctx context.Context) *Evaluator {
	cp := *e
	cp.ctx = ctx
	return &cp
}

// context resolves the evaluation context.
func (e *Evaluator) context() context.Context {
	if e.ctx != nil {
		return e.ctx
	}
	return context.Background()
}

// Instance returns the underlying AnS instance store.
func (e *Evaluator) Instance() *store.Store { return e.inst }

// resolveNumeric interprets a term ID as a number for sum/avg/min/max.
func (e *Evaluator) resolveNumeric(id dict.ID) (float64, bool) {
	t, ok := e.inst.Dict().Decode(id)
	if !ok {
		return 0, false
	}
	return t.AsFloat()
}

// sigmaFilter compiles Σ into a row predicate over a relation whose
// dimension columns hold term IDs. Values absent from the dictionary can
// never match, so they are dropped at compile time.
func (e *Evaluator) sigmaFilter(rel *algebra.Relation, dims []string, sigma Sigma) (func(algebra.Row) bool, error) {
	if len(sigma) == 0 {
		return func(algebra.Row) bool { return true }, nil
	}
	d := e.inst.Dict()
	type colSet struct {
		col     int
		allowed map[dict.ID]struct{}
	}
	var sets []colSet
	for _, dim := range dims {
		vals, ok := sigma[dim]
		if !ok {
			continue
		}
		col := rel.Column(dim)
		if col < 0 {
			return nil, fmt.Errorf("core: Σ dimension %q not in relation %v", dim, rel.Cols)
		}
		allowed := make(map[dict.ID]struct{}, len(vals))
		for _, t := range vals {
			if id, ok := d.Lookup(t); ok {
				allowed[id] = struct{}{}
			}
		}
		sets = append(sets, colSet{col: col, allowed: allowed})
	}
	return func(row algebra.Row) bool {
		for _, s := range sets {
			if _, ok := s.allowed[row[s.col].ID]; !ok {
				return false
			}
		}
		return true
	}, nil
}

// EvalClassifier evaluates the (extended) classifier c_Σ with set
// semantics. Columns: root, d1..dn, holding term IDs.
func (e *Evaluator) EvalClassifier(q *Query) (*algebra.Relation, error) {
	res, err := bgp.EvalSetCtx(e.context(), e.inst, q.Classifier)
	if err != nil {
		return nil, err
	}
	rel := resultToRelation(res)
	pred, err := e.sigmaFilter(rel, q.Dims(), q.Sigma)
	if err != nil {
		return nil, err
	}
	return rel.Select(pred), nil
}

// EvalMeasureKeyed evaluates the measure m with bag semantics and attaches
// a fresh key to every tuple — the extended measure result m_k of
// Section 3. Columns: KeyCol, root, v.
func (e *Evaluator) EvalMeasureKeyed(q *Query) (*algebra.Relation, error) {
	res, err := bgp.EvalBagCtx(e.context(), e.inst, q.Measure)
	if err != nil {
		return nil, err
	}
	root, v := q.Measure.Head[0], q.Measure.Head[1]
	out := algebra.NewRelation(KeyCol, root, v)
	// newk(): successive integers, one per measure tuple. Rows are carved
	// from one flat cell block to keep the allocation count constant.
	out.Rows = make([]algebra.Row, len(res.Rows))
	cells := make([]algebra.Value, 3*len(res.Rows))
	for i, row := range res.Rows {
		r := cells[3*i : 3*i+3 : 3*i+3]
		r[0] = algebra.KeyV(uint64(i + 1))
		r[1] = algebra.TermV(row[0])
		r[2] = algebra.TermV(row[1])
		out.Rows[i] = r
	}
	return out, nil
}

// Pres materializes pres(Q) = c_Σ(I) ⋈_x m_k(I) (Definition 4).
// Columns: root, d1..dn, KeyCol, v.
func (e *Evaluator) Pres(q *Query) (*algebra.Relation, error) {
	c, err := e.EvalClassifier(q)
	if err != nil {
		return nil, err
	}
	mk, err := e.EvalMeasureKeyed(q)
	if err != nil {
		return nil, err
	}
	root := q.Root()
	joined, err := c.Join(mk, []string{root}, []string{root})
	if err != nil {
		return nil, err
	}
	// Order columns canonically: root, dims..., KeyCol, v.
	cols := append([]string{root}, q.Dims()...)
	cols = append(cols, KeyCol, q.MeasureVar())
	out := joined.Project(cols...)
	obs.CostFromContext(e.context()).AddBytes(out.EstimateBytes())
	return out, nil
}

// Answer computes ans(Q) directly from the instance, via Equation (3):
// ans(Q) = γ_{d1..dn,⊕(v)}(π_{x,d1..dn,v}(pres(Q))).
// Columns: d1..dn, v (the aggregate).
func (e *Evaluator) Answer(q *Query) (*algebra.Relation, error) {
	pres, err := e.Pres(q)
	if err != nil {
		return nil, err
	}
	return e.AnswerFromPres(q, pres)
}

// AnswerFromPres aggregates a materialized pres(Q) into ans(Q)
// (Equation 3). pres must have the canonical column layout produced by
// Pres for the same query.
func (e *Evaluator) AnswerFromPres(q *Query, pres *algebra.Relation) (*algebra.Relation, error) {
	if err := checkPresSchema(q, pres); err != nil {
		return nil, err
	}
	v := q.MeasureVar()
	// π_{x,d1..dn,v} has bag semantics: dropping the key keeps duplicate
	// measure values as duplicate rows, exactly what γ must see.
	proj := pres.Project(append([]string{q.Root()}, append(q.Dims(), v)...)...)
	cube := proj.GroupAggregate(q.Dims(), v, v, q.Agg, e.resolveNumeric)
	obs.CostFromContext(e.context()).AddBytes(cube.EstimateBytes())
	return cube, nil
}

// Intermediary computes int(Q) = c ⋈_x m̄ (Definition 3), where m̄ is the
// set-semantics query with m's body and all of m's body variables in the
// head. It is conceptually useful (Equation 1) but never needed for
// answering; provided for tests and completeness.
func (e *Evaluator) Intermediary(q *Query) (*algebra.Relation, error) {
	c, err := e.EvalClassifier(q)
	if err != nil {
		return nil, err
	}
	mbar := q.Measure.Clone()
	root := q.Root()
	// Rename non-root measure variables that collide with classifier
	// columns; the classifier and measure only share the root.
	taken := map[string]bool{}
	for _, col := range c.Cols {
		taken[col] = true
	}
	for _, vname := range mbar.Vars() {
		if vname != root && taken[vname] {
			renameVar(mbar, vname, vname+"_m")
		}
	}
	mbar.Head = mbar.Vars() // all body variables, sorted
	// Keep the root first for readability.
	for i, vname := range mbar.Head {
		if vname == root && i != 0 {
			mbar.Head[0], mbar.Head[i] = mbar.Head[i], mbar.Head[0]
			break
		}
	}
	res, err := bgp.EvalSetCtx(e.context(), e.inst, mbar)
	if err != nil {
		return nil, err
	}
	mrel := resultToRelation(res)
	return c.Join(mrel, []string{root}, []string{root})
}

// checkPresSchema verifies that rel has the canonical pres(Q) layout.
func checkPresSchema(q *Query, rel *algebra.Relation) error {
	want := append([]string{q.Root()}, q.Dims()...)
	want = append(want, KeyCol, q.MeasureVar())
	if len(rel.Cols) != len(want) {
		return fmt.Errorf("core: pres schema %v does not match query (want %v)", rel.Cols, want)
	}
	for i := range want {
		if rel.Cols[i] != want[i] {
			return fmt.Errorf("core: pres schema %v does not match query (want %v)", rel.Cols, want)
		}
	}
	return nil
}

// resultToRelation converts a BGP result into a TermValue relation.
// Rows are carved from one flat cell block: two allocations total
// instead of one per row. The engine's sort property carries over, so
// downstream δ and γ can run-detect instead of hashing.
func resultToRelation(res *bgp.Result) *algebra.Relation {
	rel := algebra.NewRelation(res.Vars...)
	rel.Rows = make([]algebra.Row, len(res.Rows))
	w := len(res.Vars)
	cells := make([]algebra.Value, w*len(res.Rows))
	for i, row := range res.Rows {
		r := cells[w*i : w*i+w : w*i+w]
		for j, id := range row {
			r[j] = algebra.TermV(id)
		}
		rel.Rows[i] = r
	}
	rel.Sorted = append([]string(nil), res.Sorted...)
	rel.Strict = res.Strict
	return rel
}

// renameVar rewrites every occurrence of variable old to new in q's body
// and head.
func renameVar(q *sparql.Query, old, new string) {
	for i := range q.Head {
		if q.Head[i] == old {
			q.Head[i] = new
		}
	}
	for i, tp := range q.Patterns {
		if tp.S.Var == old {
			q.Patterns[i].S = sparql.V(new)
		}
		if tp.P.Var == old {
			q.Patterns[i].P = sparql.V(new)
		}
		if tp.O.Var == old {
			q.Patterns[i].O = sparql.V(new)
		}
	}
}

// evalAux evaluates an auxiliary query (set semantics) into a relation.
func (e *Evaluator) evalAux(q *sparql.Query) (*algebra.Relation, error) {
	res, err := bgp.EvalSetCtx(e.context(), e.inst, q)
	if err != nil {
		return nil, err
	}
	return resultToRelation(res), nil
}
