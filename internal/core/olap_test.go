package core

// Unit tests for query construction, validation, and the OLAP
// transformations' edge cases.

import (
	"strings"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
)

func validClassifier(t *testing.T) *sparql.Query {
	t.Helper()
	return sparql.MustParseDatalog(
		"c(x, d1, d2) :- x rdf:type :Fact, x :p1 d1, x :p2 d2", exPrefixes())
}

func validMeasure(t *testing.T) *sparql.Query {
	t.Helper()
	return sparql.MustParseDatalog(
		"m(x, v) :- x rdf:type :Fact, x :val v", exPrefixes())
}

func TestNewValidates(t *testing.T) {
	q, err := New(validClassifier(t), validMeasure(t), agg.Count)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if q.Root() != "x" {
		t.Errorf("Root = %q", q.Root())
	}
	if dims := q.Dims(); len(dims) != 2 || dims[0] != "d1" || dims[1] != "d2" {
		t.Errorf("Dims = %v", dims)
	}
	if q.MeasureVar() != "v" {
		t.Errorf("MeasureVar = %q", q.MeasureVar())
	}
	if !q.HasDim("d1") || q.HasDim("x") || q.HasDim("v") {
		t.Error("HasDim wrong")
	}
}

func TestNewRejections(t *testing.T) {
	c, m := validClassifier(t), validMeasure(t)

	if _, err := New(nil, m, agg.Count); err == nil {
		t.Error("nil classifier accepted")
	}
	if _, err := New(c, nil, agg.Count); err == nil {
		t.Error("nil measure accepted")
	}
	if _, err := New(c, m, nil); err == nil {
		t.Error("nil aggregation accepted")
	}

	// Mismatched roots.
	m2 := sparql.MustParseDatalog("m(y, v) :- y rdf:type :Fact, y :val v", exPrefixes())
	if _, err := New(c, m2, agg.Count); err == nil || !strings.Contains(err.Error(), "root") {
		t.Errorf("mismatched roots: %v", err)
	}

	// Measure with wrong arity.
	m3 := sparql.MustParseDatalog("m(x, v, w) :- x :val v, x :val w", exPrefixes())
	if _, err := New(c, m3, agg.Count); err == nil || !strings.Contains(err.Error(), "(x, v)") {
		t.Errorf("ternary measure: %v", err)
	}

	// Unrooted classifier: y,z disconnected from x.
	c2 := sparql.MustParseDatalog("c(x, d1) :- x rdf:type :Fact, y :p z, y :q d1", exPrefixes())
	if _, err := New(c2, m, agg.Count); err == nil || !strings.Contains(err.Error(), "rooted") {
		t.Errorf("unrooted classifier: %v", err)
	}

	// Reserved key column name.
	c3 := sparql.MustParseDatalog("c(x, _k) :- x rdf:type :Fact, x :p1 _k", exPrefixes())
	if _, err := New(c3, m, agg.Count); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Errorf("reserved _k: %v", err)
	}

	// Dimension colliding with the measure variable.
	c4 := sparql.MustParseDatalog("c(x, v) :- x rdf:type :Fact, x :p1 v", exPrefixes())
	if _, err := New(c4, m, agg.Count); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Errorf("dim/measure collision: %v", err)
	}
}

func TestSigmaValidation(t *testing.T) {
	q := MustNew(validClassifier(t), validMeasure(t), agg.Count)
	q.Sigma = Sigma{"nope": {rdf.NewInt(1)}}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "not a dimension") {
		t.Errorf("Σ on unknown dim: %v", err)
	}
	q.Sigma = Sigma{"d1": {}}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "non-empty") {
		t.Errorf("empty Σ set: %v", err)
	}
}

func TestSliceTransform(t *testing.T) {
	q := MustNew(validClassifier(t), validMeasure(t), agg.Count)
	out, err := Slice(q, "d1", rdf.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sigma["d1"]) != 1 || out.Sigma["d1"][0] != rdf.NewInt(5) {
		t.Errorf("Σ after slice = %v", out.Sigma)
	}
	// The original is untouched.
	if q.Sigma != nil {
		t.Error("Slice mutated the original query")
	}
	// Slicing replaces a previous restriction on the same dimension.
	out2, err := Slice(out, "d1", rdf.NewInt(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Sigma["d1"]) != 1 || out2.Sigma["d1"][0] != rdf.NewInt(6) {
		t.Errorf("Σ after re-slice = %v", out2.Sigma)
	}
	if _, err := Slice(q, "nope", rdf.NewInt(1)); err == nil {
		t.Error("slice on unknown dimension accepted")
	}
}

func TestDiceTransform(t *testing.T) {
	q := MustNew(validClassifier(t), validMeasure(t), agg.Count)
	out, err := Dice(q, map[string][]rdf.Term{
		"d1": {rdf.NewInt(1), rdf.NewInt(2)},
		"d2": {rdf.NewInt(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sigma["d1"]) != 2 || len(out.Sigma["d2"]) != 1 {
		t.Errorf("Σ after dice = %v", out.Sigma)
	}
	if _, err := Dice(q, nil); err == nil {
		t.Error("empty dice accepted")
	}
	if _, err := Dice(q, map[string][]rdf.Term{"d1": {}}); err == nil {
		t.Error("empty value set accepted")
	}
	if _, err := Dice(q, map[string][]rdf.Term{"zz": {rdf.NewInt(1)}}); err == nil {
		t.Error("dice on unknown dimension accepted")
	}
}

func TestDrillOutTransform(t *testing.T) {
	q := MustNew(validClassifier(t), validMeasure(t), agg.Count)
	q.Sigma = Sigma{"d1": {rdf.NewInt(1)}}
	out, err := DrillOut(q, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if dims := out.Dims(); len(dims) != 1 || dims[0] != "d2" {
		t.Errorf("Dims after drill-out = %v", dims)
	}
	if out.Sigma.Restricts("d1") {
		t.Error("Σ entry for dropped dimension must be removed")
	}
	// Body unchanged (body(c') ≡ body(c)).
	if len(out.Classifier.Patterns) != len(q.Classifier.Patterns) {
		t.Error("drill-out must not change the classifier body")
	}
	if _, err := DrillOut(q); err == nil {
		t.Error("drill-out with no dims accepted")
	}
	if _, err := DrillOut(q, "zz"); err == nil {
		t.Error("drill-out on unknown dim accepted")
	}
	if _, err := DrillOut(q, "d1", "d2"); err == nil {
		t.Error("drill-out of every dimension accepted")
	}
}

func TestDrillInTransform(t *testing.T) {
	c := sparql.MustParseDatalog(
		"c(x, d1) :- x rdf:type :Fact, x :p1 d1, x :p2 d2, d2 :p3 d3", exPrefixes())
	q := MustNew(c, validMeasure(t), agg.Count)
	out, err := DrillIn(q, "d2")
	if err != nil {
		t.Fatal(err)
	}
	if dims := out.Dims(); len(dims) != 2 || dims[1] != "d2" {
		t.Errorf("Dims after drill-in = %v", dims)
	}
	// Two at once.
	out2, err := DrillIn(q, "d2", "d3")
	if err != nil {
		t.Fatal(err)
	}
	if dims := out2.Dims(); len(dims) != 3 {
		t.Errorf("Dims after double drill-in = %v", dims)
	}
	if _, err := DrillIn(q, "d1"); err == nil {
		t.Error("drill-in on existing dimension accepted")
	}
	if _, err := DrillIn(q, "zz"); err == nil {
		t.Error("drill-in on unknown variable accepted")
	}
	if _, err := DrillIn(q, "x"); err == nil {
		t.Error("drill-in on the root accepted")
	}
	if _, err := DrillIn(q); err == nil {
		t.Error("drill-in with no dims accepted")
	}
}

func TestAuxQueryConnectivity(t *testing.T) {
	// Two existential chains: d3 hangs off y1; y2's chain must stay out.
	c := sparql.MustParseDatalog(
		"c(x, d1) :- x rdf:type :Fact, x :a y1, y1 :b d3, x :c y2, y2 :d d1", exPrefixes())
	aux, err := AuxQuery(c, "d3")
	if err != nil {
		t.Fatal(err)
	}
	// Seed {y1 :b d3}; closure adds {x :a y1} (shares y1). The y2 chain
	// shares only the distinguished x, so it stays out.
	if len(aux.Patterns) != 2 {
		t.Fatalf("q_aux patterns = %d (%s), want 2", len(aux.Patterns), aux)
	}
	if len(aux.Head) != 2 || aux.Head[0] != "x" || aux.Head[1] != "d3" {
		t.Fatalf("q_aux head = %v, want [x d3]", aux.Head)
	}
}

func TestAuxQueryChainClosure(t *testing.T) {
	// d4 at the end of a 3-hop existential chain: the whole chain joins.
	c := sparql.MustParseDatalog(
		"c(x, d1) :- x rdf:type :Fact, x :p1 d1, x :a y1, y1 :b y2, y2 :c d4", exPrefixes())
	aux, err := AuxQuery(c, "d4")
	if err != nil {
		t.Fatal(err)
	}
	if len(aux.Patterns) != 3 {
		t.Fatalf("q_aux patterns = %d, want 3 (the full chain)", len(aux.Patterns))
	}
}

func TestAuxQueryErrors(t *testing.T) {
	c := validClassifier(t)
	if _, err := AuxQuery(c, "d1"); err == nil {
		t.Error("q_aux over a distinguished variable accepted")
	}
	if _, err := AuxQuery(c, "nope"); err == nil {
		t.Error("q_aux over an unknown variable accepted")
	}
}

func TestQueryStringRendering(t *testing.T) {
	q := MustNew(validClassifier(t), validMeasure(t), agg.Avg)
	s := q.String()
	for _, want := range []string{"⟨", "avg", "⟩"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q lacks %q", s, want)
		}
	}
	sliced, _ := Slice(q, "d1", rdf.NewInt(7))
	if !strings.Contains(sliced.String(), "Σ") {
		t.Errorf("extended query String() lacks Σ: %q", sliced.String())
	}
}

func TestSigmaClone(t *testing.T) {
	s := Sigma{"d": {rdf.NewInt(1)}}
	cp := s.Clone()
	cp["d"][0] = rdf.NewInt(2)
	if s["d"][0] != rdf.NewInt(1) {
		t.Error("Sigma.Clone shares value slices")
	}
	if Sigma(nil).Clone() != nil {
		t.Error("nil Sigma must clone to nil")
	}
}

func TestPresSchemaCheck(t *testing.T) {
	q := MustNew(validClassifier(t), validMeasure(t), agg.Count)
	q2 := MustNew(
		sparql.MustParseDatalog("c(x, other) :- x rdf:type :Fact, x :p1 other", exPrefixes()),
		validMeasure(t), agg.Count)
	st := bloggerInstance()
	ev := NewEvaluator(st)
	pres, err := ev.Pres(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.DrillOutRewrite(q2, pres, "other"); err == nil {
		t.Error("pres of a different query accepted")
	}
	if _, err := ev.AnswerFromPres(q2, pres); err == nil {
		t.Error("AnswerFromPres with mismatched schema accepted")
	}
}
