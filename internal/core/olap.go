package core

import (
	"fmt"

	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
)

// The four OLAP operations of Section 2, as transformations producing a
// new (extended) analytical query from an existing one. All four leave
// the measure and aggregation function unchanged; only the classifier
// head and the restriction Σ evolve.

// Slice binds dimension dim to the single value v:
// Σ' = (Σ \ {(dim, Σ(dim))}) ∪ {(dim, {v})}.
func Slice(q *Query, dim string, v rdf.Term) (*Query, error) {
	if !q.HasDim(dim) {
		return nil, fmt.Errorf("core: SLICE on %q: not a dimension of %v", dim, q.Dims())
	}
	out := q.Clone()
	if out.Sigma == nil {
		out.Sigma = Sigma{}
	}
	out.Sigma[dim] = []rdf.Term{v}
	return out, nil
}

// Dice restricts each listed dimension to the given value set:
// Σ' = (Σ \ ⋃{(dj, Σ(dj))}) ∪ ⋃{(dj, Sj)}.
func Dice(q *Query, restrictions map[string][]rdf.Term) (*Query, error) {
	if len(restrictions) == 0 {
		return nil, fmt.Errorf("core: DICE needs at least one restricted dimension")
	}
	out := q.Clone()
	if out.Sigma == nil {
		out.Sigma = Sigma{}
	}
	for dim, vals := range restrictions {
		if !q.HasDim(dim) {
			return nil, fmt.Errorf("core: DICE on %q: not a dimension of %v", dim, q.Dims())
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("core: DICE on %q: value set must be non-empty", dim)
		}
		out.Sigma[dim] = append([]rdf.Term(nil), vals...)
	}
	return out, nil
}

// DrillOut removes the listed dimensions from the classifier head (and
// their Σ entries). The classifier body is unchanged — body(c') ≡ body(c),
// as in Example 3.
func DrillOut(q *Query, dims ...string) (*Query, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("core: DRILL-OUT needs at least one dimension")
	}
	drop := map[string]bool{}
	for _, d := range dims {
		if !q.HasDim(d) {
			return nil, fmt.Errorf("core: DRILL-OUT on %q: not a dimension of %v", d, q.Dims())
		}
		drop[d] = true
	}
	if len(drop) == len(q.Dims()) {
		return nil, fmt.Errorf("core: DRILL-OUT cannot remove every dimension")
	}
	out := q.Clone()
	head := []string{q.Root()}
	for _, d := range q.Dims() {
		if !drop[d] {
			head = append(head, d)
		}
	}
	out.Classifier.Head = head
	for d := range drop {
		delete(out.Sigma, d)
	}
	return out, nil
}

// DrillIn adds dims — currently existential (non-distinguished) variables
// of the classifier body — to the classifier head, unrestricted in Σ.
func DrillIn(q *Query, dims ...string) (*Query, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("core: DRILL-IN needs at least one dimension")
	}
	out := q.Clone()
	existential := map[string]bool{}
	for _, v := range q.Classifier.ExistentialVars() {
		existential[v] = true
	}
	for _, d := range dims {
		if q.HasDim(d) {
			return nil, fmt.Errorf("core: DRILL-IN on %q: already a dimension", d)
		}
		if !existential[d] {
			return nil, fmt.Errorf("core: DRILL-IN on %q: not an existential variable of the classifier body", d)
		}
		out.Classifier.Head = append(out.Classifier.Head, d)
	}
	return out, nil
}

// AuxQuery derives the auxiliary DRILL-IN query q_aux of Definition 6 for
// classifier c and new dimension newDim:
//
//   - every classifier triple containing newDim is in body_aux;
//   - transitively, every classifier triple sharing a non-distinguished
//     (existential) variable with a triple already in body_aux is added;
//   - the distinguished variables of c occurring in body_aux, plus
//     newDim, form the head (dvars..., newDim).
func AuxQuery(c *sparql.Query, newDim string) (*sparql.Query, error) {
	existential := map[string]bool{}
	for _, v := range c.ExistentialVars() {
		existential[v] = true
	}
	if !existential[newDim] {
		return nil, fmt.Errorf("core: q_aux: %q is not an existential variable of the classifier", newDim)
	}

	inBody := make([]bool, len(c.Patterns))
	// Seed: triples containing newDim.
	frontierVars := map[string]bool{}
	for i, tp := range c.Patterns {
		if patternHasVar(tp, newDim) {
			inBody[i] = true
			for _, v := range tp.Vars() {
				if existential[v] {
					frontierVars[v] = true
				}
			}
		}
	}
	// Closure over shared existential variables.
	for {
		grew := false
		for i, tp := range c.Patterns {
			if inBody[i] {
				continue
			}
			shares := false
			for _, v := range tp.Vars() {
				if existential[v] && frontierVars[v] {
					shares = true
					break
				}
			}
			if !shares {
				continue
			}
			inBody[i] = true
			grew = true
			for _, v := range tp.Vars() {
				if existential[v] {
					frontierVars[v] = true
				}
			}
		}
		if !grew {
			break
		}
	}

	aux := &sparql.Query{Name: "q_aux"}
	inAux := map[string]bool{}
	for i, tp := range c.Patterns {
		if inBody[i] {
			aux.Patterns = append(aux.Patterns, tp)
			for _, v := range tp.Vars() {
				inAux[v] = true
			}
		}
	}
	// Head: distinguished variables of c present in body_aux, in c's head
	// order, then newDim.
	for _, v := range c.Head {
		if inAux[v] {
			aux.Head = append(aux.Head, v)
		}
	}
	aux.Head = append(aux.Head, newDim)
	if err := aux.Validate(); err != nil {
		return nil, fmt.Errorf("core: q_aux: %w", err)
	}
	return aux, nil
}

func patternHasVar(tp sparql.TriplePattern, name string) bool {
	return tp.S.Var == name || tp.P.Var == name || tp.O.Var == name
}
