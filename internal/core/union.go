package core

import (
	"fmt"

	"rdfcube/internal/algebra"
	"rdfcube/internal/bgp"
	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
)

// EvalClassifierUnion evaluates the extended classifier c_Σ by
// Definition 2's *literal* construction: the union, over every value
// combination (χ1, ..., χn) ∈ Σ(d1) × ... × Σ(dn), of the classifier
// with each restricted dimension substituted by its value.
//
// The production path (EvalClassifier) instead evaluates c once and
// filters rows by Σ — equivalent, and far cheaper when Σ value sets are
// large, since the union path evaluates one BGP per combination. The
// union path is kept as an executable specification: the equivalence of
// the two is a property test, and the cost gap is an ablation benchmark.
func (e *Evaluator) EvalClassifierUnion(q *Query) (*algebra.Relation, error) {
	dims := q.Dims()
	cols := append([]string{q.Root()}, dims...)
	out := algebra.NewRelation(cols...)

	// Unrestricted: a single evaluation.
	if len(q.Sigma) == 0 {
		return e.EvalClassifier(q)
	}

	// Enumerate Σ(d1) × ... × Σ(dn) over the restricted dimensions.
	var restricted []string
	for _, d := range dims {
		if q.Sigma.Restricts(d) {
			restricted = append(restricted, d)
		}
	}
	combos := cartesian(q.Sigma, restricted)
	d := e.inst.Dict()
	seen := map[string]struct{}{}
	for _, combo := range combos {
		// Substitute each restricted dimension with its chosen value.
		sub := q.Classifier.Clone()
		values := map[string]dict.ID{}
		skip := false
		for i, dim := range restricted {
			id, ok := d.Lookup(combo[i])
			if !ok {
				skip = true // value absent from the instance: no bindings
				break
			}
			values[dim] = id
			sub = sub.Substitute(dim, combo[i])
		}
		if skip {
			continue
		}
		res, err := bgp.EvalSetCtx(e.context(), e.inst, sub)
		if err != nil {
			return nil, err
		}
		// Re-insert the substituted constants as columns, in dims order.
		colOf := map[string]int{}
		for i, v := range res.Vars {
			colOf[v] = i
		}
		for _, row := range res.Rows {
			nr := make(algebra.Row, 0, len(cols))
			for _, c := range cols {
				if id, ok := values[c]; ok {
					nr = append(nr, algebra.TermV(id))
					continue
				}
				i, ok := colOf[c]
				if !ok {
					return nil, fmt.Errorf("core: union eval lost column %q", c)
				}
				nr = append(nr, algebra.TermV(row[i]))
			}
			// Set semantics across the union: identical rows from
			// overlapping combinations collapse.
			k := rowKeyCells(nr)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out.Append(nr)
		}
	}
	return out, nil
}

// rowKeyCells encodes a row of term cells for dedup.
func rowKeyCells(row algebra.Row) string {
	b := make([]byte, 0, len(row)*8)
	for _, v := range row {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(uint64(v.ID)>>s))
		}
	}
	return string(b)
}

// cartesian enumerates Σ(d1) × ... × Σ(dn) for the listed dimensions.
func cartesian(sigma Sigma, dims []string) [][]rdf.Term {
	combos := [][]rdf.Term{{}}
	for _, d := range dims {
		var next [][]rdf.Term
		for _, prefix := range combos {
			for _, v := range sigma[d] {
				combo := make([]rdf.Term, len(prefix), len(prefix)+1)
				copy(combo, prefix)
				next = append(next, append(combo, v))
			}
		}
		combos = next
	}
	return combos
}

// AnswerUnion answers q via the union-based classifier — the executable
// form of Definition 2's semantics ("an extended analytical query can be
// seen as a union of standard AnQs"). For tests and ablations.
func (e *Evaluator) AnswerUnion(q *Query) (*algebra.Relation, error) {
	c, err := e.EvalClassifierUnion(q)
	if err != nil {
		return nil, err
	}
	mk, err := e.EvalMeasureKeyed(q)
	if err != nil {
		return nil, err
	}
	root := q.Root()
	joined, err := c.Join(mk, []string{root}, []string{root})
	if err != nil {
		return nil, err
	}
	colsPres := append([]string{root}, q.Dims()...)
	colsPres = append(colsPres, KeyCol, q.MeasureVar())
	return e.AnswerFromPres(q, joined.Project(colsPres...))
}
