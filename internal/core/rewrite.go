package core

import (
	"fmt"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/dict"
)

// This file implements Section 3's rewriting algorithms: answering a
// transformed query Q_T from materialized results of the original Q
// instead of re-evaluating classifier and measure on the AnS instance.

// DiceRewrite answers a SLICE or DICE of q by the selection σ_dice over
// the materialized ans(Q) (Definition 5, Proposition 1). diced must have
// been produced by Slice or Dice applied to the query whose answer is
// ansQ; only Σ differs between the two queries, so filtering the cube's
// dimension columns by Σ' yields ans(Q_DICE) exactly.
func (e *Evaluator) DiceRewrite(diced *Query, ansQ *algebra.Relation) (*algebra.Relation, error) {
	dims := diced.Dims()
	if len(ansQ.Cols) != len(dims)+1 {
		return nil, fmt.Errorf("core: ans schema %v does not match dimensions %v", ansQ.Cols, dims)
	}
	for i, d := range dims {
		if ansQ.Cols[i] != d {
			return nil, fmt.Errorf("core: ans schema %v does not match dimensions %v", ansQ.Cols, dims)
		}
	}
	pred, err := e.sigmaFilter(ansQ, dims, diced.Sigma)
	if err != nil {
		return nil, err
	}
	return ansQ.Select(pred), nil
}

// DrillOutRewrite answers Q_DRILL-OUT from pres(Q) — Algorithm 1
// (Proposition 2):
//
//	T ← Π_{root, remaining dims, k, v}(pres(Q))   (bag projection)
//	T ← δ(T)                                      (deduplication)
//	T ← γ_{remaining dims, ⊕(v)}(T)               (group & aggregate)
//
// The δ step is essential: a fact multi-valued along a dropped dimension
// occurs once per dropped value after the projection, and without
// deduplication its measure tuples (identified by the key k) would be
// aggregated several times — the double-counting of Example 5.
func (e *Evaluator) DrillOutRewrite(orig *Query, pres *algebra.Relation, drop ...string) (*algebra.Relation, error) {
	if err := checkPresSchema(orig, pres); err != nil {
		return nil, err
	}
	dropped := map[string]bool{}
	for _, d := range drop {
		if !orig.HasDim(d) {
			return nil, fmt.Errorf("core: DRILL-OUT rewrite on %q: not a dimension of %v", d, orig.Dims())
		}
		dropped[d] = true
	}
	var remaining []string
	for _, d := range orig.Dims() {
		if !dropped[d] {
			remaining = append(remaining, d)
		}
	}
	if len(remaining) == 0 {
		return nil, fmt.Errorf("core: DRILL-OUT rewrite cannot remove every dimension")
	}
	v := orig.MeasureVar()
	cols := append([]string{orig.Root()}, remaining...)
	cols = append(cols, KeyCol, v)
	t := pres.Project(cols...)
	t = t.Dedup()
	return t.GroupAggregate(remaining, v, v, orig.Agg, e.resolveNumeric), nil
}

// DrillInRewrite answers Q_DRILL-IN from pres(Q) plus the AnS instance —
// Algorithm 2 (Proposition 3):
//
//	build q_aux(dvars, d_{n+1})              (Definition 6)
//	T ← pres(Q) ⋈_{dvars} q_aux(I)
//	T ← γ_{d1..dn, d_{n+1}, ⊕(v)}(T)
//
// Only the auxiliary query touches the instance; classifier and measure
// are not re-evaluated.
func (e *Evaluator) DrillInRewrite(orig *Query, pres *algebra.Relation, newDim string) (*algebra.Relation, error) {
	if err := checkPresSchema(orig, pres); err != nil {
		return nil, err
	}
	aux, err := AuxQuery(orig.Classifier, newDim)
	if err != nil {
		return nil, err
	}
	auxRel, err := e.evalAux(aux)
	if err != nil {
		return nil, err
	}
	dvars := aux.Head[:len(aux.Head)-1] // head is (dvars..., newDim)
	joined, err := pres.Join(auxRel, dvars, dvars)
	if err != nil {
		return nil, err
	}
	groupCols := append(append([]string(nil), orig.Dims()...), newDim)
	v := orig.MeasureVar()
	return joined.GroupAggregate(groupCols, v, v, orig.Agg, e.resolveNumeric), nil
}

// NaiveDrillOutFromAns is the incorrect baseline discussed in Section 3.2
// and Example 5: project the dropped dimensions out of ans(Q) and
// re-aggregate the already-aggregated measures with ⊕. For distributive
// functions this silently double-counts facts that are multi-valued along
// a dropped dimension; for non-distributive functions (avg) it is not
// even definable and returns an error. Kept as the experimental foil for
// the correctness ablation (experiment E6).
func NaiveDrillOutFromAns(orig *Query, ansQ *algebra.Relation, drop ...string) (*algebra.Relation, error) {
	if !orig.Agg.Distributive() {
		return nil, fmt.Errorf("core: naive drill-out undefined for non-distributive %s", orig.Agg.Name())
	}
	dropped := map[string]bool{}
	for _, d := range drop {
		dropped[d] = true
	}
	var remaining []string
	for _, d := range orig.Dims() {
		if !dropped[d] {
			remaining = append(remaining, d)
		}
	}
	v := orig.MeasureVar()
	proj := ansQ.Project(append(append([]string(nil), remaining...), v)...)
	// Re-aggregation of aggregates: counts and sums combine by summing;
	// min/max combine by min/max.
	var reagg agg.Func
	switch orig.Agg.Name() {
	case "count", "sum":
		reagg = agg.Sum
	default:
		reagg = orig.Agg
	}
	return proj.GroupAggregate(remaining, v, v, reagg, nil), nil
}

// CubeCell is one decoded row of a cube: dimension terms plus the
// aggregate value. Used by the public API and the printers.
type CubeCell struct {
	Dims  []string
	Value float64
}

// DecodeCube renders a cube relation (dims..., v) with IDs resolved
// through d into human-readable cells, in the relation's row order.
func DecodeCube(rel *algebra.Relation, d *dict.Dictionary) []CubeCell {
	cells := make([]CubeCell, 0, len(rel.Rows))
	for _, row := range rel.Rows {
		cell := CubeCell{}
		for _, val := range row[:len(row)-1] {
			if t, ok := d.Decode(val.ID); ok {
				cell.Dims = append(cell.Dims, t.Value())
			} else {
				cell.Dims = append(cell.Dims, val.String())
			}
		}
		cell.Value = row[len(row)-1].Num
		cells = append(cells, cell)
	}
	return cells
}
