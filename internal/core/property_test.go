package core

// Property-based tests: Propositions 1–3 and Equations (1)/(3) must hold
// on randomly generated instances with multi-valued dimensions,
// heterogeneous facts, and duplicate measure values.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// randomInstance generates a random AnS instance with nDims dimension
// properties. Facts can be multi-valued along dimensions, lack dimension
// values, and carry duplicate measure values.
func randomInstance(rng *rand.Rand, facts, nDims int) *store.Store {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	for f := 0; f < facts; f++ {
		x := iri(fmt.Sprintf("fact%d", f))
		add(x, rdf.Type, iri("Fact"))
		for d := 0; d < nDims; d++ {
			if rng.Float64() < 0.15 {
				continue // heterogeneous: missing dimension
			}
			prop := iri(fmt.Sprintf("dim%d", d))
			add(x, prop, rdf.NewInt(int64(rng.Intn(4))))
			if rng.Float64() < 0.35 {
				add(x, prop, rdf.NewInt(int64(4+rng.Intn(3)))) // second value
			}
		}
		// Measures via an intermediate entity (rooted 2-hop path) so the
		// bag can contain duplicates through distinct embeddings.
		nm := rng.Intn(4)
		for m := 0; m < nm; m++ {
			ev := iri(fmt.Sprintf("ev%d_%d", f, m))
			add(x, iri("did"), ev)
			add(ev, iri("score"), rdf.NewInt(int64(1+rng.Intn(5))))
		}
	}
	return st
}

// randomQuery builds the n-dimensional AnQ over randomInstance data.
func randomQuery(t *testing.T, nDims int, f agg.Func) *Query {
	t.Helper()
	head := "x"
	body := "x rdf:type :Fact"
	for d := 0; d < nDims; d++ {
		head += fmt.Sprintf(", d%d", d)
		body += fmt.Sprintf(", x :dim%d d%d", d, d)
	}
	c := sparql.MustParseDatalog(fmt.Sprintf("c(%s) :- %s", head, body), exPrefixes())
	m := sparql.MustParseDatalog("m(x, v) :- x rdf:type :Fact, x :did e, e :score v", exPrefixes())
	q, err := New(c, m, f)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

func cubesApproxEqual(a, b *algebra.Relation) bool {
	if a.Len() != b.Len() || len(a.Cols) != len(b.Cols) {
		return false
	}
	key := func(row algebra.Row) string {
		k := ""
		for _, v := range row[:len(row)-1] {
			k += fmt.Sprintf("%d|", v.ID)
		}
		return k
	}
	vals := map[string]float64{}
	for _, row := range a.Rows {
		vals[key(row)] = row[len(row)-1].Num
	}
	for _, row := range b.Rows {
		want, ok := vals[key(row)]
		if !ok {
			return false
		}
		if math.Abs(want-row[len(row)-1].Num) > 1e-9*math.Max(1, math.Abs(want)) {
			return false
		}
	}
	return true
}

// TestProposition1Random: σ_dice(ans(Q)) == ans(dice(Q)) on random data
// and random dices.
func TestProposition1Random(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		nDims := 1 + rng.Intn(3)
		st := randomInstance(rng, 20+rng.Intn(50), nDims)
		q := randomQuery(t, nDims, agg.Count)
		ev := NewEvaluator(st)
		ansQ, err := ev.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		// Random dice on a random subset of dimensions.
		restr := map[string][]rdf.Term{}
		for d := 0; d < nDims; d++ {
			if rng.Intn(2) == 0 {
				continue
			}
			var vals []rdf.Term
			for v := 0; v < 7; v++ {
				if rng.Intn(3) == 0 {
					vals = append(vals, rdf.NewInt(int64(v)))
				}
			}
			if len(vals) == 0 {
				vals = []rdf.Term{rdf.NewInt(int64(rng.Intn(7)))}
			}
			restr[fmt.Sprintf("d%d", d)] = vals
		}
		if len(restr) == 0 {
			restr["d0"] = []rdf.Term{rdf.NewInt(int64(rng.Intn(7)))}
		}
		diced, err := Dice(q, restr)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ev.Answer(diced)
		if err != nil {
			t.Fatal(err)
		}
		rewritten, err := ev.DiceRewrite(diced, ansQ)
		if err != nil {
			t.Fatal(err)
		}
		if !algebra.Equal(direct, rewritten) {
			t.Fatalf("trial %d: Proposition 1 violated\n direct: %v\n rewrite: %v",
				trial, direct.Rows, rewritten.Rows)
		}
	}
}

// TestProposition2Random: Algorithm 1 on pres(Q) == direct evaluation of
// the drilled-out query, for every aggregation function and random drop
// sets.
func TestProposition2Random(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	funcs := []agg.Func{agg.Count, agg.Sum, agg.Avg, agg.Min, agg.Max, agg.CountDistinct}
	for trial := 0; trial < 30; trial++ {
		nDims := 2 + rng.Intn(2)
		st := randomInstance(rng, 20+rng.Intn(40), nDims)
		f := funcs[trial%len(funcs)]
		q := randomQuery(t, nDims, f)
		ev := NewEvaluator(st)
		pres, err := ev.Pres(q)
		if err != nil {
			t.Fatal(err)
		}
		// Drop a random proper subset of dimensions.
		nDrop := 1 + rng.Intn(nDims-1)
		perm := rng.Perm(nDims)
		var drop []string
		for i := 0; i < nDrop; i++ {
			drop = append(drop, fmt.Sprintf("d%d", perm[i]))
		}
		qOut, err := DrillOut(q, drop...)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ev.Answer(qOut)
		if err != nil {
			t.Fatal(err)
		}
		rewritten, err := ev.DrillOutRewrite(q, pres, drop...)
		if err != nil {
			t.Fatal(err)
		}
		// Column order can differ when dropping interior dimensions;
		// reorder the rewrite onto the direct schema before comparing.
		rewritten = rewritten.Project(direct.Cols...)
		if !cubesApproxEqual(direct, rewritten) {
			t.Fatalf("trial %d (%s, drop %v): Proposition 2 violated\n direct: %v %v\n rewrite: %v %v",
				trial, f.Name(), drop, direct.Cols, direct.Rows, rewritten.Cols, rewritten.Rows)
		}
	}
}

// TestProposition3Random: Algorithm 2 == direct evaluation of the
// drilled-in query, on random instances with a two-hop classifier whose
// intermediate entity carries extra attributes.
func TestProposition3Random(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 25; trial++ {
		st := store.New()
		add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
		nHubs := 3 + rng.Intn(5)
		for h := 0; h < nHubs; h++ {
			hub := iri(fmt.Sprintf("hub%d", h))
			add(hub, iri("label"), rdf.NewInt(int64(h)))
			nb := 1 + rng.Intn(3)
			for b := 0; b < nb; b++ {
				add(hub, iri("tag"), iri(fmt.Sprintf("tag%d", rng.Intn(4))))
			}
		}
		nFacts := 10 + rng.Intn(30)
		for f := 0; f < nFacts; f++ {
			x := iri(fmt.Sprintf("fact%d", f))
			add(x, rdf.Type, iri("Fact"))
			add(x, iri("score"), rdf.NewInt(int64(1+rng.Intn(9))))
			nl := 1 + rng.Intn(2)
			for l := 0; l < nl; l++ {
				add(x, iri("at"), iri(fmt.Sprintf("hub%d", rng.Intn(nHubs))))
			}
		}
		c := sparql.MustParseDatalog(
			"c(x, d1) :- x rdf:type :Fact, x :at h, h :label d1, h :tag d2", exPrefixes())
		m := sparql.MustParseDatalog(
			"m(x, v) :- x rdf:type :Fact, x :score v", exPrefixes())
		q, err := New(c, m, agg.Sum)
		if err != nil {
			t.Fatal(err)
		}
		ev := NewEvaluator(st)
		pres, err := ev.Pres(q)
		if err != nil {
			t.Fatal(err)
		}
		qIn, err := DrillIn(q, "d2")
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ev.Answer(qIn)
		if err != nil {
			t.Fatal(err)
		}
		rewritten, err := ev.DrillInRewrite(q, pres, "d2")
		if err != nil {
			t.Fatal(err)
		}
		if !cubesApproxEqual(direct, rewritten) {
			t.Fatalf("trial %d: Proposition 3 violated\n direct: %v\n rewrite: %v",
				trial, direct.Rows, rewritten.Rows)
		}
	}
}

// TestEquation1Random: π_{x,dims,v}(int(Q)) == π_{x,dims,v}(pres(Q)) as
// sets — pres preserves exactly the embeddings of int.
func TestEquation1Random(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 15; trial++ {
		nDims := 1 + rng.Intn(2)
		st := randomInstance(rng, 15+rng.Intn(30), nDims)
		q := randomQuery(t, nDims, agg.Count)
		ev := NewEvaluator(st)
		pres, err := ev.Pres(q)
		if err != nil {
			t.Fatal(err)
		}
		intQ, err := ev.Intermediary(q)
		if err != nil {
			t.Fatal(err)
		}
		cols := append([]string{q.Root()}, q.Dims()...)
		cols = append(cols, q.MeasureVar())
		fromPres := pres.Project(cols...).Dedup()
		fromInt := intQ.Project(cols...).Dedup()
		fromPres.Sort()
		fromInt.Sort()
		if !algebra.Equal(fromPres, fromInt) {
			t.Fatalf("trial %d: Equation (1) violated\n pres: %v\n int: %v",
				trial, fromPres.Rows, fromInt.Rows)
		}
	}
}

// TestEquation3Random: Answer == AnswerFromPres(Pres) — the two paths to
// ans(Q) agree by construction and must stay that way.
func TestEquation3Random(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 15; trial++ {
		nDims := 1 + rng.Intn(3)
		st := randomInstance(rng, 20+rng.Intn(40), nDims)
		q := randomQuery(t, nDims, agg.Avg)
		ev := NewEvaluator(st)
		a1, err := ev.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := ev.Pres(q)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ev.AnswerFromPres(q, pres)
		if err != nil {
			t.Fatal(err)
		}
		if !cubesApproxEqual(a1, a2) {
			t.Fatalf("trial %d: Equation (3) violated", trial)
		}
	}
}

// TestSliceIsSingletonDice: SLICE is DICE with a singleton set.
func TestSliceIsSingletonDice(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	st := randomInstance(rng, 40, 2)
	q := randomQuery(t, 2, agg.Count)
	ev := NewEvaluator(st)
	v := rdf.NewInt(2)
	sliced, err := Slice(q, "d0", v)
	if err != nil {
		t.Fatal(err)
	}
	diced, err := Dice(q, map[string][]rdf.Term{"d0": {v}})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := ev.Answer(sliced)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ev.Answer(diced)
	if err != nil {
		t.Fatal(err)
	}
	if !algebra.Equal(a1, a2) {
		t.Fatal("SLICE != singleton DICE")
	}
}

// TestChainedOperations applies a pipeline of transformations (dice then
// drill-out) and cross-checks rewriting against direct evaluation at the
// final step.
func TestChainedOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	st := randomInstance(rng, 60, 3)
	q := randomQuery(t, 3, agg.Sum)
	ev := NewEvaluator(st)

	diced, err := Dice(q, map[string][]rdf.Term{
		"d1": {rdf.NewInt(0), rdf.NewInt(1), rdf.NewInt(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// pres of the diced query supports a subsequent drill-out rewrite.
	presDiced, err := ev.Pres(diced)
	if err != nil {
		t.Fatal(err)
	}
	qOut, err := DrillOut(diced, "d2")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ev.Answer(qOut)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := ev.DrillOutRewrite(diced, presDiced, "d2")
	if err != nil {
		t.Fatal(err)
	}
	if !cubesApproxEqual(direct, rewritten) {
		t.Fatal("chained dice→drill-out rewrite mismatch")
	}
}

// TestNaiveDrillOutDetectsMultiValued: with no multi-valued dimensions
// the naive rewrite agrees with Algorithm 1 for sum; with multi-valued
// dimensions it must differ somewhere (statistically certain at this
// size).
func TestNaiveDrillOutDetectsMultiValued(t *testing.T) {
	// Single-valued instance: naive is accidentally correct.
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	for f := 0; f < 30; f++ {
		x := iri(fmt.Sprintf("fact%d", f))
		add(x, rdf.Type, iri("Fact"))
		add(x, iri("dim0"), rdf.NewInt(int64(f%3)))
		add(x, iri("dim1"), rdf.NewInt(int64(f%5)))
		ev := iri(fmt.Sprintf("e%d", f))
		add(x, iri("did"), ev)
		add(ev, iri("score"), rdf.NewInt(int64(f%7+1)))
	}
	q := randomQuery(t, 2, agg.Sum)
	ev := NewEvaluator(st)
	pres, err := ev.Pres(q)
	if err != nil {
		t.Fatal(err)
	}
	ansQ, err := ev.AnswerFromPres(q, pres)
	if err != nil {
		t.Fatal(err)
	}
	correct, err := ev.DrillOutRewrite(q, pres, "d1")
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveDrillOutFromAns(q, ansQ, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if !cubesApproxEqual(correct, naive) {
		t.Fatal("on single-valued data the naive rewrite must agree")
	}
	// Avg: naive is undefined regardless.
	qAvg := randomQuery(t, 2, agg.Avg)
	if _, err := NaiveDrillOutFromAns(qAvg, ansQ, "d1"); err == nil {
		t.Fatal("naive drill-out must be undefined for avg")
	}
}

// TestEmptyMeasureFactsExcluded: facts whose measure bag is empty do not
// contribute cube cells (Definition 1).
func TestEmptyMeasureFactsExcluded(t *testing.T) {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	// Fact with dimensions but no measures.
	add(iri("lonely"), rdf.Type, iri("Fact"))
	add(iri("lonely"), iri("dim0"), rdf.NewInt(9))
	// Fact with everything.
	add(iri("full"), rdf.Type, iri("Fact"))
	add(iri("full"), iri("dim0"), rdf.NewInt(1))
	add(iri("full"), iri("did"), iri("e1"))
	add(iri("e1"), iri("score"), rdf.NewInt(5))
	q := randomQuery(t, 1, agg.Count)
	ev := NewEvaluator(st)
	ansQ, err := ev.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if ansQ.Len() != 1 {
		t.Fatalf("cube has %d cells, want 1 (empty-measure fact excluded)", ansQ.Len())
	}
	cells := DecodeCube(ansQ, st.Dict())
	if cells[0].Dims[0] != "1" {
		t.Fatalf("wrong surviving cell: %v", cells[0])
	}
}
