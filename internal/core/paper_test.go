package core

// Golden tests reproducing every worked example of the paper
// (experiments EX1–EX6 of DESIGN.md).

import (
	"sort"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

const exNS = "http://example.org/"

func exPrefixes() sparql.Prefixes {
	p := sparql.DefaultPrefixes()
	p[""] = exNS
	return p
}

func iri(local string) rdf.Term { return rdf.NewIRI(exNS + local) }

// addAll inserts triples written as (subject-local, predicate, object).
func addAll(t *testing.T, st *store.Store, triples [][3]rdf.Term) {
	t.Helper()
	for _, tr := range triples {
		if !st.Add(rdf.Triple{S: tr[0], P: tr[1], O: tr[2]}) {
			t.Fatalf("duplicate triple %v", tr)
		}
	}
}

// bloggerInstance builds the Example 1/2 AnS instance: three bloggers
// with ages, cities, posts, and sites such that the classifier answer and
// measure bags match the paper exactly.
func bloggerInstance() *store.Store {
	st := store.New()
	typeT := rdf.Type
	blogger := iri("Blogger")
	hasAge := iri("hasAge")
	livesIn := iri("livesIn")
	wrotePost := iri("wrotePost")
	postedOn := iri("postedOn")

	add := func(s, p, o rdf.Term) { st.Add(rdf.Triple{S: s, P: p, O: o}) }

	u1, u3, u4 := iri("user1"), iri("user3"), iri("user4")
	add(u1, typeT, blogger)
	add(u3, typeT, blogger)
	add(u4, typeT, blogger)
	add(u1, hasAge, rdf.NewInt(28))
	add(u3, hasAge, rdf.NewInt(35))
	add(u4, hasAge, rdf.NewInt(35))
	add(u1, livesIn, iri("Madrid"))
	add(u3, livesIn, iri("NY"))
	add(u4, livesIn, iri("NY"))
	// user1's measure bag must be {|s1, s1, s2|}: three posts, two on s1.
	p1, p2, p3, p4, p5 := iri("post1"), iri("post2"), iri("post3"), iri("post4"), iri("post5")
	s1, s2, s3 := iri("site1"), iri("site2"), iri("site3")
	add(u1, wrotePost, p1)
	add(u1, wrotePost, p2)
	add(u1, wrotePost, p3)
	add(p1, postedOn, s1)
	add(p2, postedOn, s1)
	add(p3, postedOn, s2)
	// user3: {|s2|}; user4: {|s3|}.
	add(u3, wrotePost, p4)
	add(p4, postedOn, s2)
	add(u4, wrotePost, p5)
	add(p5, postedOn, s3)
	return st
}

// bloggerQuery is the Example 1 AnQ: number of sites per (age, city).
func bloggerQuery(t *testing.T) *Query {
	t.Helper()
	c := sparql.MustParseDatalog(
		"c(x, dage, dcity) :- x rdf:type :Blogger, x :hasAge dage, x :livesIn dcity", exPrefixes())
	m := sparql.MustParseDatalog(
		"m(x, vsite) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn vsite", exPrefixes())
	q, err := New(c, m, agg.Count)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

// decodeCells sorts cube cells for deterministic comparison.
func decodeCells(rel *algebra.Relation, st *store.Store) []CubeCell {
	cells := DecodeCube(rel, st.Dict())
	sort.Slice(cells, func(i, j int) bool {
		for k := range cells[i].Dims {
			if cells[i].Dims[k] != cells[j].Dims[k] {
				return cells[i].Dims[k] < cells[j].Dims[k]
			}
		}
		return cells[i].Value < cells[j].Value
	})
	return cells
}

func wantCells(t *testing.T, got []CubeCell, want []CubeCell) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d cells %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i].Value != want[i].Value || len(got[i].Dims) != len(want[i].Dims) {
			t.Fatalf("cell %d: got %v, want %v", i, got[i], want[i])
		}
		for j := range want[i].Dims {
			if got[i].Dims[j] != want[i].Dims[j] {
				t.Fatalf("cell %d dim %d: got %q, want %q", i, j, got[i].Dims[j], want[i].Dims[j])
			}
		}
	}
}

// TestPaperExample2 checks the Example 2 answer:
// {⟨28, Madrid, 3⟩, ⟨35, NY, 2⟩}.
func TestPaperExample2(t *testing.T) {
	st := bloggerInstance()
	q := bloggerQuery(t)
	ev := NewEvaluator(st)
	ansQ, err := ev.Answer(q)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	wantCells(t, decodeCells(ansQ, st), []CubeCell{
		{Dims: []string{"28", exNS + "Madrid"}, Value: 3},
		{Dims: []string{"35", exNS + "NY"}, Value: 2},
	})
}

// TestPaperExample2MeasureBags checks the intermediary measure bags
// of Example 2: user1 ↦ {|s1,s1,s2|}, user3 ↦ {|s2|}, user4 ↦ {|s3|}.
func TestPaperExample2MeasureBags(t *testing.T) {
	st := bloggerInstance()
	q := bloggerQuery(t)
	ev := NewEvaluator(st)
	mk, err := ev.EvalMeasureKeyed(q)
	if err != nil {
		t.Fatalf("EvalMeasureKeyed: %v", err)
	}
	if mk.Len() != 5 {
		t.Fatalf("measure bag size = %d, want 5", mk.Len())
	}
	// Keys must be unique 1..5.
	seen := map[uint64]bool{}
	kCol := mk.MustColumn(KeyCol)
	for _, row := range mk.Rows {
		k := row[kCol].Key
		if k < 1 || k > 5 || seen[k] {
			t.Fatalf("bad key %d", k)
		}
		seen[k] = true
	}
	// user1 contributes three tuples.
	rootCol := mk.MustColumn("x")
	u1, _ := st.Dict().Lookup(iri("user1"))
	n := 0
	for _, row := range mk.Rows {
		if row[rootCol].ID == u1 {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("user1 measure multiplicity = %d, want 3", n)
	}
}

// wordCountInstance builds the Example 4 instance: word counts per post,
// with user4 in (28, Madrid) this time.
func wordCountInstance() *store.Store {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.Triple{S: s, P: p, O: o}) }
	blogger := iri("Blogger")
	u1, u3, u4 := iri("user1"), iri("user3"), iri("user4")
	add(u1, rdf.Type, blogger)
	add(u3, rdf.Type, blogger)
	add(u4, rdf.Type, blogger)
	add(u1, iri("hasAge"), rdf.NewInt(28))
	add(u3, iri("hasAge"), rdf.NewInt(35))
	add(u4, iri("hasAge"), rdf.NewInt(28))
	add(u1, iri("livesIn"), iri("Madrid"))
	add(u3, iri("livesIn"), iri("NY"))
	add(u4, iri("livesIn"), iri("Madrid"))
	p1, p2, p3, p4 := iri("post1"), iri("post2"), iri("post3"), iri("post4")
	add(u1, iri("wrotePost"), p1)
	add(u1, iri("wrotePost"), p2)
	add(u3, iri("wrotePost"), p3)
	add(u4, iri("wrotePost"), p4)
	add(p1, iri("hasWordCount"), rdf.NewInt(100))
	add(p2, iri("hasWordCount"), rdf.NewInt(120))
	add(p3, iri("hasWordCount"), rdf.NewInt(570))
	add(p4, iri("hasWordCount"), rdf.NewInt(410))
	return st
}

func wordCountQuery(t *testing.T) *Query {
	t.Helper()
	c := sparql.MustParseDatalog(
		"c(x, dage, dcity) :- x rdf:type :Blogger, x :hasAge dage, x :livesIn dcity", exPrefixes())
	m := sparql.MustParseDatalog(
		"m(x, vwords) :- x rdf:type :Blogger, x :wrotePost p, p :hasWordCount vwords", exPrefixes())
	q, err := New(c, m, agg.Avg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

// TestPaperExample4 checks the DICE of Example 4: the full answer is
// {⟨28, Madrid, 210⟩, ⟨35, NY, 570⟩}; dicing dage to [20,30] keeps only
// the first cell, and the σ rewriting over ans(Q) agrees with direct
// evaluation (Proposition 1).
func TestPaperExample4(t *testing.T) {
	st := wordCountInstance()
	q := wordCountQuery(t)
	ev := NewEvaluator(st)

	ansQ, err := ev.Answer(q)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	wantCells(t, decodeCells(ansQ, st), []CubeCell{
		{Dims: []string{"28", exNS + "Madrid"}, Value: 210},
		{Dims: []string{"35", exNS + "NY"}, Value: 570},
	})

	// DICE: dage restricted to {28} (the only value in [20,30]).
	diced, err := Dice(q, map[string][]rdf.Term{"dage": {rdf.NewInt(28)}})
	if err != nil {
		t.Fatalf("Dice: %v", err)
	}
	direct, err := ev.Answer(diced)
	if err != nil {
		t.Fatalf("Answer(diced): %v", err)
	}
	rewritten, err := ev.DiceRewrite(diced, ansQ)
	if err != nil {
		t.Fatalf("DiceRewrite: %v", err)
	}
	wantCells(t, decodeCells(direct, st), []CubeCell{
		{Dims: []string{"28", exNS + "Madrid"}, Value: 210},
	})
	if !algebra.Equal(direct, rewritten) {
		t.Fatalf("Proposition 1 violated: direct %v != rewrite %v", direct.Rows, rewritten.Rows)
	}
}

// TestPaperExample5 reproduces the DRILL-OUT example: a fact x that is
// multi-valued along the dropped dimension dn. Algorithm 1 over pres(Q)
// must count x's measure once; the naive re-aggregation of ans(Q) counts
// it twice.
func TestPaperExample5(t *testing.T) {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.Triple{S: s, P: p, O: o}) }
	thing := iri("Thing")
	d1p, dnp, mp := iri("d1prop"), iri("dnprop"), iri("measureProp")
	x, y := iri("x"), iri("y")
	a1, an, bn := iri("a1"), iri("an"), iri("bn")
	add(x, rdf.Type, thing)
	add(y, rdf.Type, thing)
	add(x, d1p, a1)
	add(y, d1p, a1)
	add(x, dnp, an)
	add(x, dnp, bn) // x is multi-valued along dn
	add(y, dnp, bn)
	add(x, mp, rdf.NewInt(7))  // m1
	add(y, mp, rdf.NewInt(11)) // m2

	c := sparql.MustParseDatalog(
		"c(x, d1, dn) :- x rdf:type :Thing, x :d1prop d1, x :dnprop dn", exPrefixes())
	m := sparql.MustParseDatalog(
		"m(x, v) :- x rdf:type :Thing, x :measureProp v", exPrefixes())
	q, err := New(c, m, agg.Sum)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ev := NewEvaluator(st)

	pres, err := ev.Pres(q)
	if err != nil {
		t.Fatalf("Pres: %v", err)
	}
	// pres(Q) has 3 rows: (x,a1,an,k1,m1), (x,a1,bn,k1,m1), (y,a1,bn,k2,m2).
	if pres.Len() != 3 {
		t.Fatalf("pres size = %d, want 3", pres.Len())
	}

	// Algorithm 1 output: {⟨a1, 7+11⟩}.
	alg1, err := ev.DrillOutRewrite(q, pres, "dn")
	if err != nil {
		t.Fatalf("DrillOutRewrite: %v", err)
	}
	wantCells(t, decodeCells(alg1, st), []CubeCell{
		{Dims: []string{exNS + "a1"}, Value: 18},
	})

	// Direct evaluation of Q_DRILL-OUT agrees (Proposition 2).
	qOut, err := DrillOut(q, "dn")
	if err != nil {
		t.Fatalf("DrillOut: %v", err)
	}
	direct, err := ev.Answer(qOut)
	if err != nil {
		t.Fatalf("Answer(drill-out): %v", err)
	}
	if !algebra.Equal(direct, alg1) {
		t.Fatalf("Proposition 2 violated: direct %v != Algorithm 1 %v", direct.Rows, alg1.Rows)
	}

	// The naive rewrite double-counts m1: ⊕{m1, m1, m2} = 7+7+11 = 25.
	ansQ, err := ev.Answer(q)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	naive, err := NaiveDrillOutFromAns(q, ansQ, "dn")
	if err != nil {
		t.Fatalf("NaiveDrillOutFromAns: %v", err)
	}
	wantCells(t, decodeCells(naive, st), []CubeCell{
		{Dims: []string{exNS + "a1"}, Value: 25},
	})
}

// videoInstance builds the Figure 3 instance.
func videoInstance() *store.Store {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.Triple{S: s, P: p, O: o}) }
	w1, w2 := iri("website1"), iri("website2")
	v1 := iri("video1")
	add(w1, iri("hasUrl"), iri("URL1"))
	add(w1, iri("supportsBrowser"), iri("firefox"))
	add(w2, iri("hasUrl"), iri("URL2"))
	add(w2, iri("supportsBrowser"), iri("chrome"))
	add(v1, iri("postedOn"), w1)
	add(v1, iri("postedOn"), w2)
	add(v1, rdf.Type, iri("Video"))
	add(v1, iri("viewNum"), rdf.NewInt(42)) // n
	return st
}

func videoQuery(t *testing.T) *Query {
	t.Helper()
	c := sparql.MustParseDatalog(
		"c(x, d2) :- x rdf:type :Video, x :postedOn d1, d1 :hasUrl d2, d1 :supportsBrowser d3", exPrefixes())
	m := sparql.MustParseDatalog(
		"m(x, v) :- x rdf:type :Video, x :viewNum v", exPrefixes())
	q, err := New(c, m, agg.Sum)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

// TestPaperExample6 reproduces the DRILL-IN example end to end: q_aux
// derivation, the joined table, and the final answer
// {⟨URL1, firefox, n⟩, ⟨URL2, chrome, n⟩}.
func TestPaperExample6(t *testing.T) {
	st := videoInstance()
	q := videoQuery(t)
	ev := NewEvaluator(st)

	// q_aux per Definition 6: the three connected patterns, head (x, d2, d3).
	aux, err := AuxQuery(q.Classifier, "d3")
	if err != nil {
		t.Fatalf("AuxQuery: %v", err)
	}
	if got, want := len(aux.Patterns), 3; got != want {
		t.Fatalf("q_aux has %d patterns, want %d: %s", got, want, aux)
	}
	wantHead := []string{"x", "d2", "d3"}
	if len(aux.Head) != len(wantHead) {
		t.Fatalf("q_aux head %v, want %v", aux.Head, wantHead)
	}
	for i := range wantHead {
		if aux.Head[i] != wantHead[i] {
			t.Fatalf("q_aux head %v, want %v", aux.Head, wantHead)
		}
	}
	// "x rdf:type Video" must NOT be in q_aux (x is distinguished).
	for _, tp := range aux.Patterns {
		if !tp.P.IsVar() && tp.P.Term == rdf.Type {
			t.Fatalf("q_aux wrongly includes the rdf:type pattern")
		}
	}

	pres, err := ev.Pres(q)
	if err != nil {
		t.Fatalf("Pres: %v", err)
	}
	// pres(Q): (video1, URL1, 1, n), (video1, URL2, 2, n) — note the keys
	// differ because the measure matched twice... no: the measure has one
	// embedding; the classifier has two rows. Keys are per measure tuple,
	// so both rows carry the same key.
	if pres.Len() != 2 {
		t.Fatalf("pres size = %d, want 2", pres.Len())
	}
	kCol := pres.MustColumn(KeyCol)
	if pres.Rows[0][kCol] != pres.Rows[1][kCol] {
		t.Fatalf("pres keys differ across classifier rows of the same measure tuple")
	}

	rewritten, err := ev.DrillInRewrite(q, pres, "d3")
	if err != nil {
		t.Fatalf("DrillInRewrite: %v", err)
	}
	wantCells(t, decodeCells(rewritten, st), []CubeCell{
		{Dims: []string{exNS + "URL1", exNS + "firefox"}, Value: 42},
		{Dims: []string{exNS + "URL2", exNS + "chrome"}, Value: 42},
	})

	// Proposition 3: agrees with direct evaluation of Q_DRILL-IN.
	qIn, err := DrillIn(q, "d3")
	if err != nil {
		t.Fatalf("DrillIn: %v", err)
	}
	direct, err := ev.Answer(qIn)
	if err != nil {
		t.Fatalf("Answer(drill-in): %v", err)
	}
	if !algebra.Equal(direct, rewritten) {
		t.Fatalf("Proposition 3 violated: direct %v != Algorithm 2 %v", direct.Rows, rewritten.Rows)
	}
}

// TestPaperExample3Slice checks SLICE semantics from Example 3: slicing
// dage to 35 keeps only facts with age 35, and agrees with the rewrite.
func TestPaperExample3Slice(t *testing.T) {
	st := bloggerInstance()
	q := bloggerQuery(t)
	ev := NewEvaluator(st)

	ansQ, err := ev.Answer(q)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	sliced, err := Slice(q, "dage", rdf.NewInt(35))
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	direct, err := ev.Answer(sliced)
	if err != nil {
		t.Fatalf("Answer(sliced): %v", err)
	}
	rewritten, err := ev.DiceRewrite(sliced, ansQ)
	if err != nil {
		t.Fatalf("DiceRewrite: %v", err)
	}
	wantCells(t, decodeCells(direct, st), []CubeCell{
		{Dims: []string{"35", exNS + "NY"}, Value: 2},
	})
	if !algebra.Equal(direct, rewritten) {
		t.Fatalf("slice rewrite mismatch: %v vs %v", direct.Rows, rewritten.Rows)
	}
}

// TestDrillOutThenDrillInRoundTrip follows Example 3's final remark:
// drilling dage out of Q and then back in yields Q again (same answers).
func TestDrillOutThenDrillInRoundTrip(t *testing.T) {
	st := bloggerInstance()
	q := bloggerQuery(t)
	ev := NewEvaluator(st)

	out, err := DrillOut(q, "dage")
	if err != nil {
		t.Fatalf("DrillOut: %v", err)
	}
	back, err := DrillIn(out, "dage")
	if err != nil {
		t.Fatalf("DrillIn: %v", err)
	}
	a1, err := ev.Answer(q)
	if err != nil {
		t.Fatalf("Answer(q): %v", err)
	}
	a2, err := ev.Answer(back)
	if err != nil {
		t.Fatalf("Answer(back): %v", err)
	}
	// Dimension order differs (dcity, dage) vs (dage, dcity); compare as
	// sorted decoded cells with dims reordered.
	c1 := decodeCells(a1, st)
	c2raw := DecodeCube(a2, st.Dict())
	// back has dims (dcity, dage): swap to (dage, dcity).
	var c2 []CubeCell
	for _, c := range c2raw {
		c2 = append(c2, CubeCell{Dims: []string{c.Dims[1], c.Dims[0]}, Value: c.Value})
	}
	sort.Slice(c2, func(i, j int) bool {
		for k := range c2[i].Dims {
			if c2[i].Dims[k] != c2[j].Dims[k] {
				return c2[i].Dims[k] < c2[j].Dims[k]
			}
		}
		return c2[i].Value < c2[j].Value
	})
	wantCells(t, c2, c1)
}
