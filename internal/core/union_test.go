package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
)

// TestUnionEqualsFilterRandom: Definition 2's union construction and the
// production Σ-filter evaluation agree on random instances and random
// restrictions.
func TestUnionEqualsFilterRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 20; trial++ {
		nDims := 1 + rng.Intn(3)
		st := randomInstance(rng, 20+rng.Intn(40), nDims)
		q := randomQuery(t, nDims, agg.Count)
		restr := map[string][]rdf.Term{}
		for dIdx := 0; dIdx < nDims; dIdx++ {
			if rng.Intn(2) == 0 {
				continue
			}
			var vals []rdf.Term
			for v := 0; v < 7; v++ {
				if rng.Intn(3) == 0 {
					vals = append(vals, rdf.NewInt(int64(v)))
				}
			}
			if len(vals) == 0 {
				vals = []rdf.Term{rdf.NewInt(int64(rng.Intn(7)))}
			}
			restr[fmt.Sprintf("d%d", dIdx)] = vals
		}
		var diced *Query
		var err error
		if len(restr) == 0 {
			diced = q
		} else {
			diced, err = Dice(q, restr)
			if err != nil {
				t.Fatal(err)
			}
		}
		ev := NewEvaluator(st)
		filter, err := ev.EvalClassifier(diced)
		if err != nil {
			t.Fatal(err)
		}
		union, err := ev.EvalClassifierUnion(diced)
		if err != nil {
			t.Fatal(err)
		}
		filter.Sort()
		union.Sort()
		if !algebra.Equal(filter, union) {
			t.Fatalf("trial %d: union vs filter classifier mismatch\n filter: %v\n union: %v",
				trial, filter.Rows, union.Rows)
		}

		// End-to-end answers agree too.
		a1, err := ev.Answer(diced)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ev.AnswerUnion(diced)
		if err != nil {
			t.Fatal(err)
		}
		if !algebra.Equal(a1, a2) {
			t.Fatalf("trial %d: AnswerUnion mismatch", trial)
		}
	}
}

// TestUnionUnknownValue: Σ values absent from the instance contribute
// no rows on either path.
func TestUnionUnknownValue(t *testing.T) {
	rng := rand.New(rand.NewSource(809))
	st := randomInstance(rng, 30, 2)
	q := randomQuery(t, 2, agg.Count)
	diced, err := Dice(q, map[string][]rdf.Term{
		"d0": {rdf.NewInt(999)}, // never generated
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(st)
	union, err := ev.EvalClassifierUnion(diced)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := ev.EvalClassifier(diced)
	if err != nil {
		t.Fatal(err)
	}
	if union.Len() != 0 || filter.Len() != 0 {
		t.Fatalf("unknown Σ value matched rows: union=%d filter=%d", union.Len(), filter.Len())
	}
}

// TestUnionOverlapDedup: overlapping combinations must not duplicate
// classifier rows (set semantics across the union).
func TestUnionOverlapDedup(t *testing.T) {
	st := bloggerInstance()
	q := bloggerQuery(t)
	// Dice with duplicated value in the set.
	diced, err := Dice(q, map[string][]rdf.Term{
		"dage": {rdf.NewInt(35), rdf.NewInt(35)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(st)
	union, err := ev.EvalClassifierUnion(diced)
	if err != nil {
		t.Fatal(err)
	}
	// user3 and user4: exactly two rows despite the duplicate value.
	if union.Len() != 2 {
		t.Fatalf("union rows = %d, want 2", union.Len())
	}
}

// BenchmarkSigmaFilterVsUnion is the ablation: the filter evaluation is
// one BGP pass; the union path pays one BGP per value combination.
func BenchmarkSigmaFilterVsUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(810))
	st := randomInstance(rng, 2000, 2)
	c := MustNew(
		sparql.MustParseDatalog("c(x, d0, d1) :- x rdf:type :Fact, x :dim0 d0, x :dim1 d1", exPrefixes()),
		sparql.MustParseDatalog("m(x, v) :- x rdf:type :Fact, x :did e, e :score v", exPrefixes()),
		agg.Count)
	var vals0, vals1 []rdf.Term
	for v := 0; v < 4; v++ {
		vals0 = append(vals0, rdf.NewInt(int64(v)))
		vals1 = append(vals1, rdf.NewInt(int64(v)))
	}
	diced, err := Dice(c, map[string][]rdf.Term{"d0": vals0, "d1": vals1})
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(st)
	b.Run("filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.EvalClassifier(diced); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.EvalClassifierUnion(diced); err != nil {
				b.Fatal(err)
			}
		}
	})
}
