package core

// Edge-case tests for the evaluator beyond the paper examples and the
// randomized property suite.

import (
	"math/rand"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

func TestSigmaUnknownValueFiltersAll(t *testing.T) {
	st := bloggerInstance()
	q := bloggerQuery(t)
	sliced, err := Slice(q, "dage", rdf.NewInt(1234)) // not in the data
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(st)
	ansQ, err := ev.Answer(sliced)
	if err != nil {
		t.Fatal(err)
	}
	if ansQ.Len() != 0 {
		t.Fatalf("unknown slice value produced %d cells", ansQ.Len())
	}
}

func TestEmptyClassifierEmptyCube(t *testing.T) {
	st := store.New()
	st.Add(rdf.NewTriple(iri("a"), iri("p"), iri("b"))) // unrelated data
	q := bloggerQuery(t)
	ev := NewEvaluator(st)
	ansQ, err := ev.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if ansQ.Len() != 0 {
		t.Fatalf("cube over unrelated data has %d cells", ansQ.Len())
	}
	pres, err := ev.Pres(q)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Len() != 0 {
		t.Fatalf("pres over unrelated data has %d rows", pres.Len())
	}
}

func TestMeasureKeysUniqueAcrossBag(t *testing.T) {
	rng := rand.New(rand.NewSource(900))
	st := randomInstance(rng, 80, 2)
	q := randomQuery(t, 2, agg.Count)
	ev := NewEvaluator(st)
	mk, err := ev.EvalMeasureKeyed(q)
	if err != nil {
		t.Fatal(err)
	}
	kCol := mk.MustColumn(KeyCol)
	seen := map[uint64]bool{}
	for _, row := range mk.Rows {
		k := row[kCol].Key
		if seen[k] {
			t.Fatalf("duplicate measure key %d", k)
		}
		seen[k] = true
	}
}

func TestPresKeySharedAcrossClassifierRows(t *testing.T) {
	// A fact multi-valued along a dimension repeats in c(I); its measure
	// tuples must keep their keys so δ can undo the duplication.
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	add(iri("x"), rdf.Type, iri("Fact"))
	add(iri("x"), iri("dim0"), rdf.NewInt(1))
	add(iri("x"), iri("dim0"), rdf.NewInt(2))
	add(iri("x"), iri("did"), iri("e1"))
	add(iri("e1"), iri("score"), rdf.NewInt(5))
	q := randomQuery(t, 1, agg.Sum)
	ev := NewEvaluator(st)
	pres, err := ev.Pres(q)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Len() != 2 {
		t.Fatalf("pres rows = %d, want 2", pres.Len())
	}
	kCol := pres.MustColumn(KeyCol)
	if pres.Rows[0][kCol] != pres.Rows[1][kCol] {
		t.Fatal("the same measure tuple must carry the same key in every classifier row")
	}
}

func TestIntermediaryVariableCollision(t *testing.T) {
	// Classifier and measure both use an existential variable "p": the
	// intermediary join must rename rather than conflate them.
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	add(iri("x"), rdf.Type, iri("Fact"))
	add(iri("x"), iri("c1"), iri("mid1"))
	add(iri("mid1"), iri("c2"), rdf.NewInt(1))
	add(iri("x"), iri("m1"), iri("mid2"))
	add(iri("mid2"), iri("m2"), rdf.NewInt(7))
	c := sparql.MustParseDatalog(
		"c(x, d) :- x rdf:type :Fact, x :c1 p, p :c2 d", exPrefixes())
	m := sparql.MustParseDatalog(
		"m(x, v) :- x rdf:type :Fact, x :m1 p, p :m2 v", exPrefixes())
	q, err := New(c, m, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(st)
	intQ, err := ev.Intermediary(q)
	if err != nil {
		t.Fatalf("Intermediary with colliding variables: %v", err)
	}
	if intQ.Len() != 1 {
		t.Fatalf("int(Q) rows = %d, want 1", intQ.Len())
	}
	// The classifier's "p" is existential (not a result column), so the
	// measure's "p" needs no rename; its column must bind mid2 (the
	// measure-side entity), untouched by the classifier's use of the name.
	col := intQ.Column("p")
	if col < 0 {
		t.Fatalf("measure variable column missing: %v", intQ.Cols)
	}
	mid2, _ := st.Dict().Lookup(iri("mid2"))
	if intQ.Rows[0][col].ID != mid2 {
		t.Fatal("measure variable bound the wrong entity")
	}
}

func TestDecodeCubeUnknownID(t *testing.T) {
	st := store.New()
	rel := algebra.NewRelation("d", "v")
	rel.Append(algebra.Row{algebra.TermV(4242), algebra.NumV(1)})
	cells := DecodeCube(rel, st.Dict())
	if len(cells) != 1 || cells[0].Dims[0] != "t4242" {
		t.Fatalf("unknown ID rendering = %v", cells)
	}
}

func TestDrillOutMultipleDims(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	st := randomInstance(rng, 60, 3)
	q := randomQuery(t, 3, agg.Sum)
	ev := NewEvaluator(st)
	pres, err := ev.Pres(q)
	if err != nil {
		t.Fatal(err)
	}
	// Drop two dimensions at once.
	rewritten, err := ev.DrillOutRewrite(q, pres, "d0", "d2")
	if err != nil {
		t.Fatal(err)
	}
	qOut, err := DrillOut(q, "d0", "d2")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ev.Answer(qOut)
	if err != nil {
		t.Fatal(err)
	}
	if !cubesApproxEqual(direct, rewritten) {
		t.Fatal("multi-dimension drill-out rewrite mismatch")
	}
}

func TestCountDistinctEndToEnd(t *testing.T) {
	// countdistinct collapses duplicate measure values per group — the
	// one aggregate where measure-bag duplicates do not matter.
	st := bloggerInstance()
	c := sparql.MustParseDatalog(
		"c(x, dage) :- x rdf:type :Blogger, x :hasAge dage", exPrefixes())
	m := sparql.MustParseDatalog(
		"m(x, vsite) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn vsite", exPrefixes())
	q, err := New(c, m, agg.CountDistinct)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(st)
	ansQ, err := ev.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, cell := range DecodeCube(ansQ, st.Dict()) {
		vals[cell.Dims[0]] = cell.Value
	}
	// user1 (28): sites {s1, s2} → 2; users 3+4 (35): {s2, s3} → 2.
	if vals["28"] != 2 || vals["35"] != 2 {
		t.Fatalf("countdistinct cube = %v", vals)
	}
}

func TestSelfJoinClassifier(t *testing.T) {
	// A classifier whose dimension is reached through a self-referencing
	// property (acquaintedWith from Figure 1).
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	add(iri("u1"), rdf.Type, iri("Blogger"))
	add(iri("u2"), rdf.Type, iri("Blogger"))
	add(iri("u1"), iri("acquaintedWith"), iri("u2"))
	add(iri("u2"), iri("acquaintedWith"), iri("u1"))
	add(iri("u1"), iri("hasAge"), rdf.NewInt(28))
	add(iri("u2"), iri("hasAge"), rdf.NewInt(35))
	add(iri("u1"), iri("score"), rdf.NewInt(10))
	add(iri("u2"), iri("score"), rdf.NewInt(20))
	// Classify each blogger by the age of their acquaintance.
	c := sparql.MustParseDatalog(
		"c(x, dage) :- x rdf:type :Blogger, x :acquaintedWith y, y :hasAge dage", exPrefixes())
	m := sparql.MustParseDatalog("m(x, v) :- x rdf:type :Blogger, x :score v", exPrefixes())
	q, err := New(c, m, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	ansQ, err := NewEvaluator(st).Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, cell := range DecodeCube(ansQ, st.Dict()) {
		vals[cell.Dims[0]] = cell.Value
	}
	// u1's acquaintance is 35 → u1's score 10 lands in the 35 cell;
	// u2's acquaintance is 28 → 20 in the 28 cell.
	if vals["35"] != 10 || vals["28"] != 20 {
		t.Fatalf("self-join cube = %v", vals)
	}
}
