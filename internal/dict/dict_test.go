package dict

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"rdfcube/internal/rdf"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := New()
	terms := []rdf.Term{
		rdf.NewIRI("http://e.org/a"),
		rdf.NewLiteral("x"),
		rdf.NewTypedLiteral("5", rdf.XSDInteger),
		rdf.NewLangLiteral("hi", "en"),
		rdf.NewBlank("b0"),
	}
	ids := make([]ID, len(terms))
	for i, term := range terms {
		ids[i] = d.Encode(term)
		if ids[i] == NoID {
			t.Fatalf("Encode returned NoID for %v", term)
		}
	}
	for i, term := range terms {
		got, ok := d.Decode(ids[i])
		if !ok || got != term {
			t.Errorf("Decode(%d) = %v, %v; want %v", ids[i], got, ok, term)
		}
	}
	if d.Len() != len(terms) {
		t.Errorf("Len = %d, want %d", d.Len(), len(terms))
	}
}

func TestEncodeIdempotent(t *testing.T) {
	d := New()
	a := d.Encode(rdf.NewIRI("http://e.org/a"))
	b := d.Encode(rdf.NewIRI("http://e.org/a"))
	if a != b {
		t.Errorf("re-encoding same term gave %d then %d", a, b)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestIDsAreDense(t *testing.T) {
	d := New()
	for i := 0; i < 100; i++ {
		id := d.Encode(rdf.NewInt(int64(i)))
		if id != ID(i+1) {
			t.Fatalf("term %d got ID %d, want %d", i, id, i+1)
		}
	}
}

func TestLookupWithoutInterning(t *testing.T) {
	d := New()
	if _, ok := d.Lookup(rdf.NewIRI("http://absent")); ok {
		t.Error("Lookup found never-encoded term")
	}
	if d.Len() != 0 {
		t.Error("Lookup must not intern")
	}
	id := d.Encode(rdf.NewIRI("http://present"))
	got, ok := d.Lookup(rdf.NewIRI("http://present"))
	if !ok || got != id {
		t.Errorf("Lookup = %d, %v; want %d, true", got, ok, id)
	}
}

func TestDecodeInvalid(t *testing.T) {
	d := New()
	d.Encode(rdf.NewIRI("http://e"))
	if _, ok := d.Decode(NoID); ok {
		t.Error("Decode(NoID) must fail")
	}
	if _, ok := d.Decode(99); ok {
		t.Error("Decode of out-of-range ID must fail")
	}
}

func TestMustDecodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDecode on unknown ID must panic")
		}
	}()
	New().MustDecode(5)
}

func TestEncodeTriple(t *testing.T) {
	d := New()
	tr := rdf.NewTriple(rdf.NewIRI("http://s"), rdf.NewIRI("http://p"), rdf.NewInt(1))
	s, p, o := d.EncodeTriple(tr)
	back, ok := d.DecodeTriple(s, p, o)
	if !ok || back != tr {
		t.Errorf("DecodeTriple = %v, %v", back, ok)
	}
	if _, ok := d.DecodeTriple(s, p, 999); ok {
		t.Error("DecodeTriple with unknown ID must fail")
	}
}

func TestTermsSnapshot(t *testing.T) {
	d := New()
	want := []rdf.Term{rdf.NewIRI("http://a"), rdf.NewIRI("http://b")}
	for _, term := range want {
		d.Encode(term)
	}
	got := d.Terms()
	if len(got) != len(want) {
		t.Fatalf("Terms len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Terms[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConcurrentEncode(t *testing.T) {
	d := New()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	results := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]ID, perG)
			for i := 0; i < perG; i++ {
				// Heavy collision: all goroutines intern the same terms.
				ids[i] = d.Encode(rdf.NewInt(int64(i)))
			}
			results[g] = ids
		}(g)
	}
	wg.Wait()
	if d.Len() != perG {
		t.Fatalf("Len = %d, want %d", d.Len(), perG)
	}
	for g := 1; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got different ID for term %d", g, i)
			}
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	d := New()
	f := func(s string, kind uint8) bool {
		var term rdf.Term
		switch kind % 4 {
		case 0:
			term = rdf.NewIRI(s)
		case 1:
			term = rdf.NewLiteral(s)
		case 2:
			term = rdf.NewBlank(s)
		default:
			term = rdf.NewTypedLiteral(s, rdf.XSDInteger)
		}
		id := d.Encode(term)
		got, ok := d.Decode(id)
		return ok && got == term
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeNew(b *testing.B) {
	d := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Encode(rdf.NewIRI(fmt.Sprintf("http://e.org/r%d", i)))
	}
}

func BenchmarkEncodeExisting(b *testing.B) {
	d := New()
	term := rdf.NewIRI("http://e.org/hot")
	d.Encode(term)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Encode(term)
	}
}
