// Package dict implements dictionary encoding of RDF terms: a bijective,
// concurrency-safe mapping between rdf.Term values and dense uint64 IDs.
//
// Dictionary encoding is the standard first stage of an RDF store: every
// term is interned once and all downstream structures (indexes, query
// bindings, relations) operate on fixed-width IDs. IDs start at 1; 0 is
// reserved as the invalid/absent ID so that zero values stay meaningful.
package dict

import (
	"fmt"
	"sync"

	"rdfcube/internal/rdf"
)

// NoID is the reserved invalid term ID.
const NoID ID = 0

// ID identifies an interned term. IDs are dense, starting at 1, assigned
// in interning order.
type ID uint64

// Dictionary interns rdf.Term values and resolves IDs back to terms.
// The zero value is not usable; call New.
//
// Dictionary is safe for concurrent use. Lookups take a read lock;
// Encode takes a write lock only on first sight of a term.
type Dictionary struct {
	mu      sync.RWMutex
	termToI map[rdf.Term]ID // overlay terms only (base terms resolve via base)
	iToTerm []rdf.Term      // index 0 unused (NoID); overlay term i has ID baseLen+i

	// base, when non-nil, serves IDs 1..baseLen read-only (see base.go);
	// the map/slice above then hold only the overlay interned on top.
	base    Base
	baseLen int
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{
		termToI: make(map[rdf.Term]ID, 1024),
		iToTerm: make([]rdf.Term, 1, 1025),
	}
}

// Encode interns t and returns its ID, assigning a fresh ID on first sight.
func (d *Dictionary) Encode(t rdf.Term) ID {
	d.mu.RLock()
	id, ok := d.termToI[t]
	base := d.base
	d.mu.RUnlock()
	if ok {
		return id
	}
	if base != nil {
		if id, ok := base.Lookup(t); ok {
			return id
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.termToI[t]; ok {
		return id
	}
	// The base may have been swapped (Rebase) between the optimistic
	// probe above and taking the write lock; re-probe the current one.
	if d.base != nil && d.base != base {
		if id, ok := d.base.Lookup(t); ok {
			return id
		}
	}
	id = ID(d.baseLen + len(d.iToTerm))
	d.termToI[t] = id
	d.iToTerm = append(d.iToTerm, t)
	return id
}

// Lookup returns the ID of t without interning. ok is false if t has
// never been encoded.
func (d *Dictionary) Lookup(t rdf.Term) (id ID, ok bool) {
	d.mu.RLock()
	id, ok = d.termToI[t]
	base := d.base
	d.mu.RUnlock()
	if !ok && base != nil {
		id, ok = base.Lookup(t)
	}
	return id, ok
}

// Decode returns the term for id. ok is false for NoID or out-of-range IDs.
func (d *Dictionary) Decode(id ID) (t rdf.Term, ok bool) {
	if id == NoID {
		return rdf.Term{}, false
	}
	d.mu.RLock()
	if int(id) > d.baseLen {
		i := int(id) - d.baseLen
		if i >= len(d.iToTerm) {
			d.mu.RUnlock()
			return rdf.Term{}, false
		}
		t = d.iToTerm[i]
		d.mu.RUnlock()
		return t, true
	}
	base := d.base
	d.mu.RUnlock()
	return base.Term(id)
}

// MustDecode returns the term for id, panicking on unknown IDs. It is
// intended for internal invariants where the ID is known to be valid.
func (d *Dictionary) MustDecode(id ID) rdf.Term {
	t, ok := d.Decode(id)
	if !ok {
		panic(fmt.Sprintf("dict: unknown term ID %d", id))
	}
	return t
}

// Len reports the number of interned terms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.baseLen + len(d.iToTerm) - 1
}

// EncodeTriple interns all three terms of tr.
func (d *Dictionary) EncodeTriple(tr rdf.Triple) (s, p, o ID) {
	return d.Encode(tr.S), d.Encode(tr.P), d.Encode(tr.O)
}

// DecodeTriple resolves an (s, p, o) ID triple back to terms. ok is false
// if any ID is unknown.
func (d *Dictionary) DecodeTriple(s, p, o ID) (tr rdf.Triple, ok bool) {
	ts, ok1 := d.Decode(s)
	tp, ok2 := d.Decode(p)
	to, ok3 := d.Decode(o)
	if !ok1 || !ok2 || !ok3 {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: ts, P: tp, O: to}, true
}

// Terms returns a snapshot of all interned terms in ID order (index i
// holds the term with ID i+1).
func (d *Dictionary) Terms() []rdf.Term {
	return d.TermsFrom(0)
}

// TermsFrom returns the terms with IDs greater than after, in ID order —
// the tail interned since a caller observed Len() == after. Unlike
// Terms it costs O(tail), which is what the write-ahead logger needs to
// record a batch's newly-interned terms without copying the dictionary.
func (d *Dictionary) TermsFrom(after int) []rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if after < 0 {
		after = 0
	}
	total := d.baseLen + len(d.iToTerm) - 1
	if after >= total {
		return nil
	}
	out := make([]rdf.Term, 0, total-after)
	if after < d.baseLen {
		// Materializing base terms is the slow path by design: only the
		// bulk exporters (whole-dictionary snapshots, N-Triples dumps)
		// reach it; WAL tail logging always passes after >= baseLen.
		out = d.base.AppendTerms(out, after)
		after = d.baseLen
	}
	out = append(out, d.iToTerm[1+after-d.baseLen:]...)
	return out
}
