package dict

// Lazy dictionaries: a Dictionary can sit on top of a read-only Base of
// already-interned terms — in practice the mmap-backed front-coded term
// blocks of a mapped snapshot (internal/store). IDs 1..Base.Len()
// resolve through the base (decoded on demand, never materialized en
// masse); terms first seen after construction land in the normal
// in-memory overlay and get the next dense IDs. The Dictionary API is
// unchanged, so every consumer — stores, the view registry, the WAL's
// TermsFrom tail logging — works identically over either backing.

import "rdfcube/internal/rdf"

// Base is a read-only term substrate: a bijective ID↔term mapping for
// IDs 1..Len() that a Dictionary extends with an in-memory overlay.
// Implementations must be safe for concurrent use (Dictionary calls
// them under its read lock from many goroutines).
type Base interface {
	// Len reports the number of terms in the base; base IDs are exactly
	// 1..Len().
	Len() int
	// Term resolves a base ID. ok is false for IDs outside 1..Len().
	Term(id ID) (rdf.Term, bool)
	// Lookup finds the base ID of t. ok is false when t is not a base
	// term.
	Lookup(t rdf.Term) (ID, bool)
	// AppendTerms appends the terms with IDs in (after, Len()] to out in
	// ID order — the bulk-materialization path behind Dictionary.Terms.
	AppendTerms(out []rdf.Term, after int) []rdf.Term
}

// NewOverBase returns a dictionary whose first base.Len() IDs resolve
// through base; new terms are interned into the in-memory overlay with
// IDs continuing the base's dense sequence.
func NewOverBase(base Base) *Dictionary {
	return &Dictionary{
		termToI: make(map[rdf.Term]ID, 64),
		iToTerm: make([]rdf.Term, 1, 65),
		base:    base,
		baseLen: base.Len(),
	}
}

// Base returns the read-only substrate this dictionary extends, or nil
// for a plain in-memory dictionary.
func (d *Dictionary) Base() Base { return d.base }

// BaseLen reports the number of IDs served by the base substrate (0 for
// a plain dictionary). Terms with larger IDs live in the in-memory
// overlay.
func (d *Dictionary) BaseLen() int { return d.baseLen }

// Rebase swaps in a larger base that covers the old base plus a prefix
// of the overlay — the mapped-compaction install path, where the new
// snapshot interned every term the store held at prepare time. IDs are
// stable: overlay terms the new base now serves are dropped from the
// overlay, and the remaining overlay tail keeps its IDs (its dense
// sequence continues from the new base length). The caller must
// serialize Rebase against writers the same way it serializes any
// store swap; concurrent readers are safe.
func (d *Dictionary) Rebase(b Base) {
	d.mu.Lock()
	defer d.mu.Unlock()
	newLen := b.Len()
	grown := newLen - d.baseLen
	if grown < 0 || grown > len(d.iToTerm)-1 {
		panic("dict: Rebase base must cover the old base plus an overlay prefix")
	}
	kept := d.iToTerm[1+grown:]
	iToTerm := make([]rdf.Term, 1, 1+len(kept))
	iToTerm = append(iToTerm, kept...)
	termToI := make(map[rdf.Term]ID, len(kept)+64)
	for i, t := range kept {
		termToI[t] = ID(newLen + 1 + i)
	}
	d.base, d.baseLen = b, newLen
	d.iToTerm, d.termToI = iToTerm, termToI
}
