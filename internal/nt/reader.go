// Package nt implements streaming readers and writers for the N-Triples
// serialization of RDF, plus a pragmatic Turtle subset (@prefix
// declarations, prefixed names, the "a" keyword, and ";" / "," predicate
// and object lists) sufficient for loading hand-written test fixtures.
package nt

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"rdfcube/internal/rdf"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("nt: line %d: %s", e.Line, e.Msg)
}

// Reader parses N-Triples (and the Turtle subset) from an input stream.
type Reader struct {
	scanner  *bufio.Scanner
	line     int
	prefixes map[string]string
	// pending holds triples already parsed from the current statement
	// (Turtle ";"/"," lists expand to several triples).
	pending []rdf.Triple
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{scanner: sc, prefixes: map[string]string{}}
}

// Next returns the next triple, or io.EOF when the input is exhausted.
func (r *Reader) Next() (rdf.Triple, error) {
	for {
		if len(r.pending) > 0 {
			t := r.pending[0]
			r.pending = r.pending[1:]
			return t, nil
		}
		if !r.scanner.Scan() {
			if err := r.scanner.Err(); err != nil {
				return rdf.Triple{}, err
			}
			return rdf.Triple{}, io.EOF
		}
		r.line++
		line := strings.TrimSpace(r.scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "@prefix") {
			if err := r.parsePrefix(line); err != nil {
				return rdf.Triple{}, err
			}
			continue
		}
		triples, err := r.parseStatement(line)
		if err != nil {
			return rdf.Triple{}, err
		}
		r.pending = triples
	}
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]rdf.Triple, error) {
	var out []rdf.Triple
	for {
		t, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseString parses a complete N-Triples/Turtle-lite document.
func ParseString(s string) ([]rdf.Triple, error) {
	return NewReader(strings.NewReader(s)).ReadAll()
}

func (r *Reader) errf(format string, args ...any) error {
	return &ParseError{Line: r.line, Msg: fmt.Sprintf(format, args...)}
}

// parsePrefix handles "@prefix ex: <http://...> .".
func (r *Reader) parsePrefix(line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "@prefix"))
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return r.errf("malformed @prefix: missing ':'")
	}
	name := strings.TrimSpace(rest[:colon])
	rest = strings.TrimSpace(rest[colon+1:])
	if !strings.HasPrefix(rest, "<") {
		return r.errf("malformed @prefix: expected IRI")
	}
	end := strings.Index(rest, ">")
	if end < 0 {
		return r.errf("malformed @prefix: unterminated IRI")
	}
	r.prefixes[name] = rest[1:end]
	return nil
}

// parseStatement parses one input line, which may contain several
// "."-terminated statements, expanding Turtle ";" and "," lists.
// Statements must not span lines (a deliberate simplification; the
// synthetic generators and fixtures emit complete statements per line).
func (r *Reader) parseStatement(line string) ([]rdf.Triple, error) {
	toks, err := r.tokenize(line)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, nil
	}
	if toks[len(toks)-1] != "." {
		return nil, r.errf("statement must end with '.'")
	}
	var all []rdf.Triple
	start := 0
	for i, tok := range toks {
		if tok != "." {
			continue
		}
		stmt, err := r.parseOneStatement(toks[start:i])
		if err != nil {
			return nil, err
		}
		all = append(all, stmt...)
		start = i + 1
	}
	return all, nil
}

// parseOneStatement parses the tokens of a single statement (without the
// terminating dot).
func (r *Reader) parseOneStatement(toks []string) ([]rdf.Triple, error) {
	if len(toks) < 3 {
		return nil, r.errf("statement needs subject, predicate, object")
	}
	subj, err := r.parseTerm(toks[0], false)
	if err != nil {
		return nil, err
	}
	var out []rdf.Triple
	i := 1
	for {
		if i >= len(toks) {
			return nil, r.errf("expected predicate")
		}
		pred, err := r.parseTerm(toks[i], true)
		if err != nil {
			return nil, err
		}
		i++
		for {
			if i >= len(toks) {
				return nil, r.errf("expected object")
			}
			obj, err := r.parseTerm(toks[i], false)
			if err != nil {
				return nil, err
			}
			i++
			t := rdf.Triple{S: subj, P: pred, O: obj}
			if !t.IsValid() {
				return nil, r.errf("invalid triple %s", t)
			}
			out = append(out, t)
			if i < len(toks) && toks[i] == "," {
				i++
				continue
			}
			break
		}
		if i < len(toks) && toks[i] == ";" {
			i++
			continue
		}
		break
	}
	if i != len(toks) {
		return nil, r.errf("trailing tokens after object")
	}
	return out, nil
}

// tokenize splits a statement into IRI refs, literals, blank nodes,
// prefixed names, and the punctuation tokens "." ";" ",".
func (r *Reader) tokenize(line string) ([]string, error) {
	var toks []string
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '#':
			i = n // comment to end of line
		case c == '<':
			end := strings.IndexByte(line[i:], '>')
			if end < 0 {
				return nil, r.errf("unterminated IRI")
			}
			toks = append(toks, line[i:i+end+1])
			i += end + 1
		case c == '"':
			j := i + 1
			for j < n {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				return nil, r.errf("unterminated literal")
			}
			j++ // past closing quote
			// Absorb @lang or ^^<datatype> suffix.
			for j < n && line[j] != ' ' && line[j] != '\t' && line[j] != ';' && line[j] != ',' {
				if line[j] == '.' {
					// "." terminates the statement only if followed by
					// whitespace or end of line (avoid eating decimals
					// inside datatype IRIs, which can't occur here, but
					// keep the rule uniform).
					if j+1 >= n || line[j+1] == ' ' || line[j+1] == '\t' {
						break
					}
				}
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		case c == '.' || c == ';' || c == ',':
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < n && line[j] != ' ' && line[j] != '\t' && line[j] != ';' && line[j] != ',' {
				if line[j] == '.' && (j+1 >= n || line[j+1] == ' ' || line[j+1] == '\t') {
					break
				}
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks, nil
}

// parseTerm converts one token to a term. predicatePos enables the Turtle
// "a" shorthand for rdf:type.
func (r *Reader) parseTerm(tok string, predicatePos bool) (rdf.Term, error) {
	switch {
	case predicatePos && tok == "a":
		return rdf.Type, nil
	case strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">"):
		return rdf.NewIRI(tok[1 : len(tok)-1]), nil
	case strings.HasPrefix(tok, "_:"):
		return rdf.NewBlank(tok[2:]), nil
	case strings.HasPrefix(tok, `"`):
		return r.parseLiteral(tok)
	default:
		// Prefixed name, or bare integer/double literal (Turtle).
		if isNumeric(tok) {
			if strings.ContainsAny(tok, ".eE") {
				return rdf.NewTypedLiteral(tok, rdf.XSDDouble), nil
			}
			return rdf.NewTypedLiteral(tok, rdf.XSDInteger), nil
		}
		if tok == "true" || tok == "false" {
			return rdf.NewTypedLiteral(tok, rdf.XSDBoolean), nil
		}
		colon := strings.Index(tok, ":")
		if colon < 0 {
			return rdf.Term{}, r.errf("unrecognized token %q", tok)
		}
		ns, ok := r.prefixes[tok[:colon]]
		if !ok {
			return rdf.Term{}, r.errf("unknown prefix %q", tok[:colon])
		}
		return rdf.NewIRI(ns + tok[colon+1:]), nil
	}
}

func isNumeric(tok string) bool {
	if tok == "" {
		return false
	}
	i := 0
	if tok[0] == '+' || tok[0] == '-' {
		i = 1
		if i == len(tok) {
			return false
		}
	}
	digits := false
	for ; i < len(tok); i++ {
		c := tok[i]
		if c >= '0' && c <= '9' {
			digits = true
			continue
		}
		if c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			continue
		}
		return false
	}
	return digits
}

// parseLiteral handles "lex", "lex"@lang and "lex"^^<dt>.
func (r *Reader) parseLiteral(tok string) (rdf.Term, error) {
	// Find the closing quote, honoring escapes.
	j := 1
	for j < len(tok) {
		if tok[j] == '\\' {
			j += 2
			continue
		}
		if tok[j] == '"' {
			break
		}
		j++
	}
	if j >= len(tok) {
		return rdf.Term{}, r.errf("unterminated literal %q", tok)
	}
	lex, err := unescape(tok[1:j])
	if err != nil {
		return rdf.Term{}, r.errf("bad escape in literal: %v", err)
	}
	rest := tok[j+1:]
	switch {
	case rest == "":
		return rdf.NewLiteral(lex), nil
	case strings.HasPrefix(rest, "@"):
		return rdf.NewLangLiteral(lex, rest[1:]), nil
	case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
		return rdf.NewTypedLiteral(lex, rest[3:len(rest)-1]), nil
	default:
		return rdf.Term{}, r.errf("malformed literal suffix %q", rest)
	}
}

// unescape processes N-Triples string escapes.
func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("dangling backslash")
		}
		switch s[i+1] {
		case 't':
			b.WriteByte('\t')
			i += 2
		case 'n':
			b.WriteByte('\n')
			i += 2
		case 'r':
			b.WriteByte('\r')
			i += 2
		case '"':
			b.WriteByte('"')
			i += 2
		case '\\':
			b.WriteByte('\\')
			i += 2
		case 'u', 'U':
			width := 4
			if s[i+1] == 'U' {
				width = 8
			}
			if i+2+width > len(s) {
				return "", fmt.Errorf("truncated \\%c escape", s[i+1])
			}
			var r rune
			for _, h := range s[i+2 : i+2+width] {
				d, ok := hexVal(byte(h))
				if !ok {
					return "", fmt.Errorf("bad hex digit %q", h)
				}
				r = r<<4 | rune(d)
			}
			if !utf8.ValidRune(r) {
				return "", fmt.Errorf("invalid code point %U", r)
			}
			b.WriteRune(r)
			i += 2 + width
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i+1])
		}
	}
	return b.String(), nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
