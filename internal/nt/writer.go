package nt

import (
	"bufio"
	"io"

	"rdfcube/internal/rdf"
)

// Writer serializes triples in canonical N-Triples, one statement per line.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriter(w)} }

// Write serializes one triple.
func (w *Writer) Write(t rdf.Triple) error {
	if _, err := w.bw.WriteString(t.String()); err != nil {
		return err
	}
	return w.bw.WriteByte('\n')
}

// WriteAll serializes a batch of triples.
func (w *Writer) WriteAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := w.Write(t); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output. Call it once after the last Write.
func (w *Writer) Flush() error { return w.bw.Flush() }

// FormatAll renders triples as an N-Triples document string.
func FormatAll(ts []rdf.Triple) string {
	var sb []byte
	for _, t := range ts {
		sb = append(sb, t.String()...)
		sb = append(sb, '\n')
	}
	return string(sb)
}
