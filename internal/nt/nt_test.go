package nt

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rdfcube/internal/rdf"
)

func TestParseBasicNTriples(t *testing.T) {
	doc := `
<http://e/s> <http://e/p> <http://e/o> .
<http://e/s> <http://e/p> "literal" .
<http://e/s> <http://e/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/s> <http://e/p> "hi"@en .
_:b0 <http://e/p> _:b1 .
`
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(triples) != 5 {
		t.Fatalf("parsed %d triples, want 5", len(triples))
	}
	if triples[1].O != rdf.NewLiteral("literal") {
		t.Errorf("literal object = %v", triples[1].O)
	}
	if triples[2].O != rdf.NewInt(5) {
		t.Errorf("typed literal = %v", triples[2].O)
	}
	if triples[3].O != rdf.NewLangLiteral("hi", "en") {
		t.Errorf("lang literal = %v", triples[3].O)
	}
	if !triples[4].S.IsBlank() || !triples[4].O.IsBlank() {
		t.Errorf("blank nodes = %v", triples[4])
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	doc := `
# full line comment

<http://e/s> <http://e/p> <http://e/o> . # trailing comment
`
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(triples) != 1 {
		t.Fatalf("parsed %d triples, want 1", len(triples))
	}
}

func TestParseTurtlePrefixes(t *testing.T) {
	doc := `
@prefix ex: <http://e.org/> .
@prefix : <http://default.org/> .
ex:s ex:p ex:o .
:a ex:p :b .
ex:s a ex:Class .
`
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(triples) != 3 {
		t.Fatalf("parsed %d triples, want 3", len(triples))
	}
	if triples[0].S != rdf.NewIRI("http://e.org/s") {
		t.Errorf("prefixed subject = %v", triples[0].S)
	}
	if triples[1].S != rdf.NewIRI("http://default.org/a") {
		t.Errorf("default-prefixed subject = %v", triples[1].S)
	}
	if triples[2].P != rdf.Type {
		t.Errorf(`"a" keyword = %v`, triples[2].P)
	}
}

func TestParseTurtleLists(t *testing.T) {
	doc := `
@prefix : <http://e/> .
:s :p :o1 , :o2 ; :q :o3 .
`
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(triples) != 3 {
		t.Fatalf("parsed %d triples, want 3", len(triples))
	}
	if triples[0].P != triples[1].P {
		t.Error("object list must share predicate")
	}
	if triples[2].P == triples[0].P {
		t.Error("';' must switch predicate")
	}
	for _, tr := range triples {
		if tr.S != rdf.NewIRI("http://e/s") {
			t.Error("all triples must share the subject")
		}
	}
}

func TestParseMultipleStatementsPerLine(t *testing.T) {
	doc := `@prefix : <http://e/> .
:a :p :b . :c :p :d . :e :p :f .
`
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(triples) != 3 {
		t.Fatalf("parsed %d triples, want 3", len(triples))
	}
}

func TestParseBareNumbersAndBooleans(t *testing.T) {
	doc := `@prefix : <http://e/> .
:s :age 42 .
:s :score 3.14 .
:s :neg -7 .
:s :ok true .
`
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if triples[0].O != rdf.NewTypedLiteral("42", rdf.XSDInteger) {
		t.Errorf("integer = %v", triples[0].O)
	}
	if triples[1].O != rdf.NewTypedLiteral("3.14", rdf.XSDDouble) {
		t.Errorf("double = %v", triples[1].O)
	}
	if triples[2].O != rdf.NewTypedLiteral("-7", rdf.XSDInteger) {
		t.Errorf("negative = %v", triples[2].O)
	}
	if triples[3].O != rdf.NewTypedLiteral("true", rdf.XSDBoolean) {
		t.Errorf("boolean = %v", triples[3].O)
	}
}

func TestParseEscapes(t *testing.T) {
	doc := `<http://e/s> <http://e/p> "tab\there \"quoted\" é\U0001F600" .` + "\n"
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	want := "tab\there \"quoted\" é😀"
	if got := triples[0].O.Value(); got != want {
		t.Errorf("unescaped = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> <http://e/o>`,         // missing dot
		`<http://e/s> <http://e/p> .`,                    // missing object
		`<http://e/s> "lit" <http://e/o> .`,              // literal predicate
		`"lit" <http://e/p> <http://e/o> .`,              // literal subject
		`<http://e/s <http://e/p> <http://e/o> .`,        // unterminated IRI
		`<http://e/s> <http://e/p> "unterminated .`,      // unterminated literal
		`ex:s ex:p ex:o .`,                               // unknown prefix
		`<http://e/s> <http://e/p> "x"^^bad .`,           // malformed datatype
		`<http://e/s> <http://e/p> "bad\q" .`,            // unknown escape
		`<http://e/s> <http://e/p> <http://e/o> extra .`, // trailing token
		"@prefix broken <http://e/> .\n<a> <b> <c> .",    // malformed prefix
		`<http://e/s> <http://e/p> "trunc\u12" .`,        // truncated \u
	}
	for _, doc := range bad {
		if _, err := ParseString(doc + "\n"); err == nil {
			t.Errorf("accepted malformed input %q", doc)
		}
	}
	// Parse errors carry line numbers.
	_, err := ParseString("<http://a> <http://b> <http://c> .\nbroken line .\n")
	perr, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
	if !strings.Contains(perr.Error(), "line 2") {
		t.Errorf("error message %q lacks line info", perr.Error())
	}
}

func TestWriterRoundTrip(t *testing.T) {
	triples := []rdf.Triple{
		rdf.NewTriple(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o")),
		rdf.NewTriple(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewLiteral("with \"quotes\" and\nnewline")),
		rdf.NewTriple(rdf.NewBlank("b0"), rdf.NewIRI("http://e/p"), rdf.NewInt(12)),
		rdf.NewTriple(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewLangLiteral("salut", "fr")),
	}
	doc := FormatAll(triples)
	back, err := ParseString(doc)
	if err != nil {
		t.Fatalf("re-parsing serialized output: %v\n%s", err, doc)
	}
	if len(back) != len(triples) {
		t.Fatalf("round trip %d triples, want %d", len(back), len(triples))
	}
	sort.Slice(back, func(i, j int) bool { return rdf.CompareTriples(back[i], back[j]) < 0 })
	want := append([]rdf.Triple(nil), triples...)
	sort.Slice(want, func(i, j int) bool { return rdf.CompareTriples(want[i], want[j]) < 0 })
	for i := range want {
		if back[i] != want[i] {
			t.Errorf("triple %d: got %v, want %v", i, back[i], want[i])
		}
	}
}

// TestPropertyRoundTrip: serialize-then-parse is the identity on
// arbitrary literal content.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(lex string) bool {
		if !validUTF8(lex) {
			return true
		}
		tr := rdf.NewTriple(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewLiteral(lex))
		back, err := ParseString(FormatAll([]rdf.Triple{tr}))
		return err == nil && len(back) == 1 && back[0] == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func validUTF8(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString(`<http://e/s> <http://e/p> "some literal value" .` + "\n")
	}
	doc := sb.String()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}
