package session

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

const ns = "http://e.org/"

func iri(s string) rdf.Term { return rdf.NewIRI(ns + s) }

func px() sparql.Prefixes {
	p := sparql.DefaultPrefixes()
	p[""] = ns
	return p
}

// instance builds a small multi-valued instance: facts with two
// dimensions (dim0, dim1), a drill-in-able hub attribute, and scores.
func instance(seed int64, facts int) *store.Store {
	rng := rand.New(rand.NewSource(seed))
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	for h := 0; h < 5; h++ {
		hub := iri(fmt.Sprintf("hub%d", h))
		add(hub, iri("label"), rdf.NewInt(int64(h)))
		add(hub, iri("tag"), iri(fmt.Sprintf("tag%d", h%3)))
	}
	for f := 0; f < facts; f++ {
		x := iri(fmt.Sprintf("fact%d", f))
		add(x, rdf.Type, iri("Fact"))
		add(x, iri("dim0"), rdf.NewInt(int64(rng.Intn(4))))
		if rng.Float64() < 0.3 {
			add(x, iri("dim0"), rdf.NewInt(int64(4+rng.Intn(2))))
		}
		add(x, iri("at"), iri(fmt.Sprintf("hub%d", rng.Intn(5))))
		add(x, iri("score"), rdf.NewInt(int64(1+rng.Intn(9))))
	}
	return st
}

// query builds the session's base AnQ: classify facts by dim0 and hub
// label; the hub tag stays existential (drill-in target).
func query(t *testing.T, f agg.Func) *core.Query {
	t.Helper()
	c := sparql.MustParseDatalog(
		"c(x, d0, d1) :- x rdf:type :Fact, x :dim0 d0, x :at h, h :label d1, h :tag d2", px())
	m := sparql.MustParseDatalog("m(x, v) :- x rdf:type :Fact, x :score v", px())
	q, err := core.New(c, m, f)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func answerBoth(t *testing.T, m *Manager, q *core.Query, wantStrategy Strategy) *algebra.Relation {
	t.Helper()
	cube, strategy, err := m.Answer(q)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if strategy != wantStrategy {
		t.Fatalf("strategy = %s, want %s", strategy, wantStrategy)
	}
	// Cross-check against a plain evaluator.
	direct, err := m.Evaluator().Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	reordered := cube.Project(direct.Cols...)
	if !algebra.Equal(direct, reordered) {
		t.Fatalf("strategy %s returned a wrong cube\n got: %v\n want: %v",
			strategy, reordered.Rows, direct.Rows)
	}
	return cube
}

func TestFirstAnswerIsDirect(t *testing.T) {
	m := NewManager(instance(1, 50))
	q := query(t, agg.Sum)
	answerBoth(t, m, q, StrategyDirect)
	if m.Entries() != 1 {
		t.Errorf("Entries = %d, want 1", m.Entries())
	}
}

func TestIdenticalQueryCached(t *testing.T) {
	m := NewManager(instance(2, 50))
	q := query(t, agg.Sum)
	answerBoth(t, m, q, StrategyDirect)
	answerBoth(t, m, q.Clone(), StrategyCached)
	if m.Entries() != 1 {
		t.Errorf("cached hit must not add an entry, Entries = %d", m.Entries())
	}
}

func TestSliceDetected(t *testing.T) {
	m := NewManager(instance(3, 60))
	q := query(t, agg.Sum)
	answerBoth(t, m, q, StrategyDirect)
	sliced, err := core.Slice(q, "d0", rdf.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, sliced, StrategyDice)
}

func TestDiceDetected(t *testing.T) {
	m := NewManager(instance(4, 60))
	q := query(t, agg.Count)
	answerBoth(t, m, q, StrategyDirect)
	diced, err := core.Dice(q, map[string][]rdf.Term{
		"d0": {rdf.NewInt(1), rdf.NewInt(2)},
		"d1": {rdf.NewInt(0), rdf.NewInt(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, diced, StrategyDice)
}

func TestDiceOfDiceDetected(t *testing.T) {
	// A second dice refining the first must rewrite against the *diced*
	// materialization (or the base; both are correct — strategy must be
	// a rewrite, not direct).
	m := NewManager(instance(5, 60))
	q := query(t, agg.Sum)
	answerBoth(t, m, q, StrategyDirect)
	d1, err := core.Dice(q, map[string][]rdf.Term{"d0": {rdf.NewInt(1), rdf.NewInt(2)}})
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, d1, StrategyDice)
	d2, err := core.Dice(d1, map[string][]rdf.Term{"d0": {rdf.NewInt(1)}})
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, d2, StrategyDice)
}

func TestRelaxedDiceNotRefinement(t *testing.T) {
	// Materialize a restricted cube, then ask the unrestricted one: the
	// restricted ans(Q) cannot answer it; direct evaluation required.
	m := NewManager(instance(6, 60))
	q := query(t, agg.Sum)
	sliced, err := core.Slice(q, "d0", rdf.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, sliced, StrategyDirect)
	answerBoth(t, m, q, StrategyDirect)
}

func TestDrillOutDetected(t *testing.T) {
	m := NewManager(instance(7, 80))
	q := query(t, agg.Sum)
	answerBoth(t, m, q, StrategyDirect)
	qOut, err := core.DrillOut(q, "d1")
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, qOut, StrategyDrillOut)
}

func TestDrillOutBlockedByRestrictedDroppedDim(t *testing.T) {
	// e materialized with Σ(d1) restricted: dropping d1 cannot reuse
	// e.Pres (it was filtered); must go direct.
	m := NewManager(instance(8, 80))
	q := query(t, agg.Sum)
	sliced, err := core.Slice(q, "d1", rdf.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, sliced, StrategyDirect)
	qOut, err := core.DrillOut(sliced, "d1")
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, qOut, StrategyDirect)
}

func TestDrillInDetected(t *testing.T) {
	m := NewManager(instance(9, 80))
	q := query(t, agg.Sum)
	answerBoth(t, m, q, StrategyDirect)
	qIn, err := core.DrillIn(q, "d2")
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, qIn, StrategyDrillIn)
}

func TestDifferentMeasureNoReuse(t *testing.T) {
	m := NewManager(instance(10, 50))
	q := query(t, agg.Sum)
	answerBoth(t, m, q, StrategyDirect)
	// Same classifier, different aggregation: no reuse.
	q2 := query(t, agg.Avg)
	answerBoth(t, m, q2, StrategyDirect)
	// Different measure body: no reuse.
	c := q.Classifier.Clone()
	m2 := sparql.MustParseDatalog("m(x, v) :- x rdf:type :Fact, x :dim0 v", px())
	q3, err := core.New(c, m2, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	answerBoth(t, m, q3, StrategyDirect)
}

func TestSessionWorkflow(t *testing.T) {
	// A realistic OLAP session: base cube, slice, drill-out, drill-in,
	// re-ask the base. Only the first answer touches the instance.
	m := NewManager(instance(11, 100))
	q := query(t, agg.Sum)
	answerBoth(t, m, q, StrategyDirect)

	sliced, _ := core.Slice(q, "d0", rdf.NewInt(3))
	answerBoth(t, m, sliced, StrategyDice)

	qOut, _ := core.DrillOut(q, "d0")
	answerBoth(t, m, qOut, StrategyDrillOut)

	qIn, _ := core.DrillIn(q, "d2")
	answerBoth(t, m, qIn, StrategyDrillIn)

	answerBoth(t, m, q, StrategyCached)

	stats := m.Stats()
	if stats[StrategyDirect] != 1 {
		t.Errorf("direct evaluations = %d, want 1: %v", stats[StrategyDirect], stats)
	}
	if m.Entries() != 1 {
		t.Errorf("Entries = %d, want 1 (rewrites are not re-materialized)", m.Entries())
	}
}

func TestEviction(t *testing.T) {
	m := NewManager(instance(12, 40))
	m.MaxEntries = 2
	base := query(t, agg.Sum)
	for i := 0; i < 4; i++ {
		sliced, err := core.Slice(base, "d1", rdf.NewInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		// Each differently-sliced query... sliced queries are dice
		// refinements of each other only when subsets; distinct
		// singletons force direct evaluation and materialization.
		if _, _, err := m.Answer(sliced); err != nil {
			t.Fatal(err)
		}
	}
	if m.Entries() != 2 {
		t.Errorf("Entries = %d, want 2 after eviction", m.Entries())
	}
}

// TestInsertMaintainsSessionViews: an analyst's writes through the
// manager keep the materialized cube alive — the next identical query is
// still answered from the (maintained) view and reflects the new facts.
func TestInsertMaintainsSessionViews(t *testing.T) {
	st := instance(21, 40)
	st.Freeze()
	m := NewManager(st)
	q := query(t, agg.Sum)
	answerBoth(t, m, q, StrategyDirect)

	x := iri("sessfact")
	added := m.Insert([]rdf.Triple{
		{S: x, P: rdf.Type, O: iri("Fact")},
		{S: x, P: iri("dim0"), O: rdf.NewInt(1)},
		{S: x, P: iri("at"), O: iri("hub2")},
		{S: x, P: iri("score"), O: rdf.NewInt(700)},
	})
	if added != 4 {
		t.Fatalf("Insert added %d, want 4", added)
	}
	if m.Insert(nil) != 0 {
		t.Fatal("empty Insert reported additions")
	}
	// Served from the maintained view — not re-evaluated — and correct.
	answerBoth(t, m, q, StrategyCached)
	if got := m.Registry().Stats().Maintained; got == 0 {
		t.Error("Insert did not maintain the registered view")
	}
	if got := m.Stats()[StrategyDirect]; got != 1 {
		t.Errorf("direct evaluations = %d, want 1", got)
	}
}

func TestDescribe(t *testing.T) {
	m := NewManager(instance(13, 30))
	q := query(t, agg.Sum)
	if _, _, err := m.Answer(q); err != nil {
		t.Fatal(err)
	}
	d := m.Describe()
	if !strings.Contains(d, "1 materialized") || !strings.Contains(d, "agg=sum") {
		t.Errorf("Describe = %q", d)
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	m := NewManager(instance(14, 10))
	bad := &core.Query{}
	if _, _, err := m.Answer(bad); err == nil {
		t.Error("invalid query accepted")
	}
}

// The matching-predicate unit tests (head relations, Σ refinement) live
// with the detection logic in internal/viewreg; this file keeps the
// end-to-end session behavior tests.

func TestManagerPreservesRegistryByteBudget(t *testing.T) {
	// A byte budget configured directly on the exposed registry must
	// survive Answer's forwarding of the legacy MaxEntries bound.
	m := NewManager(instance(15, 30))
	m.Registry().SetLimits(0, 123456)
	m.MaxEntries = 7
	if _, _, err := m.Answer(query(t, agg.Sum)); err != nil {
		t.Fatal(err)
	}
	// Shrink the budget below the entry's size: the eviction must kick
	// in, proving the byte bound stayed live after Answer.
	m.Registry().SetLimits(0, 1)
	if got := m.Entries(); got != 0 {
		t.Fatalf("Entries = %d, want 0 after byte-budget eviction", got)
	}
}
