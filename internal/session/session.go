// Package session implements a materialized-cube manager that
// operationalizes the paper's problem statement (Figure 2): given a new
// analytical query Q_T, decide whether it can be answered from the
// materialized results (pres(Q), ans(Q)) of a previously answered query
// Q, and if so which rewriting applies:
//
//   - identical query          → return the cached ans(Q);
//   - SLICE/DICE refinement    → σ_dice over ans(Q) (Proposition 1);
//   - DRILL-OUT                → Algorithm 1 over pres(Q) (Proposition 2);
//   - DRILL-IN                 → Algorithm 2 over pres(Q) + q_aux
//     (Proposition 3);
//   - otherwise                → direct evaluation, after which the new
//     query's results are materialized for future reuse.
//
// The manager is a thin per-client façade over internal/viewreg, which
// holds the detection logic and the materialized views. A Manager owns a
// private registry, preserving the classic single-analyst session; to
// share materializations across many clients, point several frontends
// (or internal/server) at one viewreg.Registry instead.
package session

import (
	"io"

	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/rdf"
	"rdfcube/internal/store"
	"rdfcube/internal/viewreg"
)

// Strategy identifies how a query was answered.
type Strategy = viewreg.Strategy

// The five answering strategies, in preference order.
const (
	StrategyCached   = viewreg.StrategyCached
	StrategyDice     = viewreg.StrategyDice
	StrategyDrillOut = viewreg.StrategyDrillOut
	StrategyDrillIn  = viewreg.StrategyDrillIn
	StrategyDirect   = viewreg.StrategyDirect
)

// Manager answers analytical queries over one AnS instance, reusing
// materialized results of earlier queries whenever a rewriting applies.
// Unlike the historical implementation it is safe for concurrent use
// (the backing registry is), though a Manager models one client.
type Manager struct {
	reg *viewreg.Registry
	// MaxEntries bounds the cache (0 = unbounded). Least-recently-used
	// entries are evicted past it.
	MaxEntries int
}

// NewManager returns a manager over the given AnS instance, backed by a
// fresh private registry.
func NewManager(inst *store.Store) *Manager {
	return &Manager{reg: viewreg.New(inst, viewreg.Config{})}
}

// Registry exposes the backing view registry (e.g. to share it or to
// read its extended stats). The registry's *entry-count* bound is owned
// by this manager — set MaxEntries rather than calling SetLimits, which
// Answer would override; a *byte* budget set directly on the registry
// is preserved.
func (m *Manager) Registry() *viewreg.Registry { return m.reg }

// Evaluator exposes the underlying evaluator.
func (m *Manager) Evaluator() *core.Evaluator { return m.reg.Evaluator() }

// Entries returns the current number of materialized queries.
func (m *Manager) Entries() int { return m.reg.Entries() }

// Stats reports how many queries each strategy has answered.
func (m *Manager) Stats() map[Strategy]int {
	by := m.reg.Stats().ByStrategy
	out := make(map[Strategy]int, len(by))
	for k, v := range by {
		out[k] = int(v)
	}
	return out
}

// Answer answers q, choosing the cheapest applicable strategy. The
// returned cube has the canonical (dims..., measure) layout of
// Evaluator.Answer.
func (m *Manager) Answer(q *core.Query) (*algebra.Relation, Strategy, error) {
	// Forward the legacy count bound without touching any byte budget a
	// caller configured on the shared registry.
	m.reg.SetMaxEntries(m.MaxEntries)
	return m.reg.Answer(q)
}

// Insert appends triples to the managed AnS instance and keeps the
// materialized views alive: on a frozen instance the writes land in the
// store's delta overlay and the registered pres(Q)/ans(Q) are maintained
// through the delta feed (internal/incr) rather than dropped, so the
// analyst keeps paying view-maintenance cost instead of recomputation
// cost across updates. It returns the number of new triples. Insert must
// not run concurrently with Answer (the store's write contract).
func (m *Manager) Insert(triples []rdf.Triple) int {
	inst := m.reg.Instance()
	added := 0
	for _, tr := range triples {
		if inst.Add(tr) {
			added++
		}
	}
	if added > 0 {
		m.reg.NotifyWrite()
	}
	return added
}

// Save snapshots the manager's materialized views to w (see
// viewreg.Registry.Save); it returns the number of views captured.
// Paired with the instance's frozen snapshot, a later Restore warms a
// new session without re-evaluating a single query.
func (m *Manager) Save(w io.Writer) (int, error) { return m.reg.Save(w) }

// Restore warms the manager from a snapshot written by Save against the
// same (recovered) instance, returning the number of views admitted.
func (m *Manager) Restore(r io.Reader) (int, error) { return m.reg.Restore(r) }

// Describe renders the manager state for diagnostics.
func (m *Manager) Describe() string {
	return "session: " + m.reg.Describe()
}
