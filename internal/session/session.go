// Package session implements a materialized-cube manager that
// operationalizes the paper's problem statement (Figure 2): given a new
// analytical query Q_T, decide whether it can be answered from the
// materialized results (pres(Q), ans(Q)) of a previously answered query
// Q, and if so which rewriting applies:
//
//   - identical query          → return the cached ans(Q);
//   - SLICE/DICE refinement    → σ_dice over ans(Q) (Proposition 1);
//   - DRILL-OUT                → Algorithm 1 over pres(Q) (Proposition 2);
//   - DRILL-IN                 → Algorithm 2 over pres(Q) + q_aux
//     (Proposition 3);
//   - otherwise                → direct evaluation, after which the new
//     query's results are materialized for future reuse.
//
// Detection is syntactic: classifier/measure bodies must match pattern
// for pattern (order-insensitive) with identical variable names, the
// aggregation function must be the same, and Σ must relate by refinement.
// This mirrors an interactive OLAP session, where each operation is a
// transformation of the previous query, so syntactic matching is exactly
// what occurs in practice.
package session

import (
	"fmt"
	"sort"

	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// Strategy identifies how a query was answered.
type Strategy string

// The five answering strategies, in preference order.
const (
	StrategyCached   Strategy = "cached"
	StrategyDice     Strategy = "dice-rewrite"
	StrategyDrillOut Strategy = "drillout-rewrite"
	StrategyDrillIn  Strategy = "drillin-rewrite"
	StrategyDirect   Strategy = "direct"
)

// Materialized bundles a query with its stored results.
type Materialized struct {
	Query *core.Query
	Pres  *algebra.Relation
	Ans   *algebra.Relation
}

// Manager answers analytical queries over one AnS instance, reusing
// materialized results of earlier queries whenever a rewriting applies.
// Manager is not safe for concurrent use.
type Manager struct {
	ev *core.Evaluator
	// entries holds materialized queries, most recent first; lookup
	// prefers recent entries, matching OLAP session locality.
	entries []*Materialized
	// MaxEntries bounds the cache (0 = unbounded). Old entries are
	// evicted FIFO.
	MaxEntries int
	// stats counts answers by strategy.
	stats map[Strategy]int
}

// NewManager returns a manager over the given AnS instance.
func NewManager(inst *store.Store) *Manager {
	return &Manager{ev: core.NewEvaluator(inst), stats: map[Strategy]int{}}
}

// Evaluator exposes the underlying evaluator.
func (m *Manager) Evaluator() *core.Evaluator { return m.ev }

// Entries returns the current number of materialized queries.
func (m *Manager) Entries() int { return len(m.entries) }

// Stats reports how many queries each strategy has answered.
func (m *Manager) Stats() map[Strategy]int {
	out := make(map[Strategy]int, len(m.stats))
	for k, v := range m.stats {
		out[k] = v
	}
	return out
}

// Answer answers q, choosing the cheapest applicable strategy. The
// returned cube has the canonical (dims..., measure) layout of
// Evaluator.Answer.
func (m *Manager) Answer(q *core.Query) (*algebra.Relation, Strategy, error) {
	if err := q.Validate(); err != nil {
		return nil, "", err
	}
	for _, e := range m.entries {
		strategy, cube, err := m.tryRewrite(e, q)
		if err != nil {
			return nil, "", err
		}
		if cube != nil {
			m.stats[strategy]++
			return cube, strategy, nil
		}
	}
	// No reuse possible: evaluate directly and materialize.
	pres, err := m.ev.Pres(q)
	if err != nil {
		return nil, "", err
	}
	ansQ, err := m.ev.AnswerFromPres(q, pres)
	if err != nil {
		return nil, "", err
	}
	m.remember(&Materialized{Query: q.Clone(), Pres: pres, Ans: ansQ})
	m.stats[StrategyDirect]++
	return ansQ, StrategyDirect, nil
}

// remember inserts a materialized entry, evicting the oldest if needed.
func (m *Manager) remember(e *Materialized) {
	m.entries = append([]*Materialized{e}, m.entries...)
	if m.MaxEntries > 0 && len(m.entries) > m.MaxEntries {
		m.entries = m.entries[:m.MaxEntries]
	}
}

// tryRewrite attempts to answer q from entry e. A nil cube with nil
// error means "not applicable".
func (m *Manager) tryRewrite(e *Materialized, q *core.Query) (Strategy, *algebra.Relation, error) {
	if !sameMeasure(e.Query, q) || e.Query.Agg.Name() != q.Agg.Name() {
		return "", nil, nil
	}
	if !sameBody(e.Query.Classifier, q.Classifier) {
		return "", nil, nil
	}
	headRel := headRelation(e.Query.Classifier.Head, q.Classifier.Head)
	switch headRel {
	case headEqual:
		if sigmaEqual(e.Query.Sigma, q.Sigma) {
			return StrategyCached, e.Ans, nil
		}
		if sigmaRefines(e.Query.Sigma, q.Sigma) {
			cube, err := m.ev.DiceRewrite(q, e.Ans)
			if err != nil {
				return "", nil, err
			}
			return StrategyDice, cube, nil
		}
	case headSubset:
		// q drops dimensions from e. Algorithm 1 applies when the
		// surviving dimensions carry identical restrictions and the
		// dropped dimensions were unrestricted in e — DrillOut removes a
		// dropped dimension's Σ entry, so a restriction baked into
		// e.Pres would over-filter q's answer.
		if !sigmaEqualOn(e.Query.Sigma, q.Sigma, q.Dims()) {
			return "", nil, nil
		}
		drop := missingDims(e.Query.Dims(), q.Dims())
		for _, d := range drop {
			if e.Query.Sigma.Restricts(d) {
				return "", nil, nil
			}
		}
		cube, err := m.ev.DrillOutRewrite(e.Query, e.Pres, drop...)
		if err != nil {
			return "", nil, err
		}
		// Reorder to q's dimension order if needed.
		cols := append(append([]string(nil), q.Dims()...), q.MeasureVar())
		return StrategyDrillOut, cube.Project(cols...), nil
	case headSuperset:
		// q adds dimensions; Algorithm 2 handles one added existential
		// dimension per application. Apply iteratively for several.
		added := missingDims(q.Dims(), e.Query.Dims())
		if len(added) != 1 {
			return "", nil, nil // multi-dim drill-in: fall back to direct
		}
		if !sigmaEqualOn(e.Query.Sigma, q.Sigma, e.Query.Dims()) || q.Sigma.Restricts(added[0]) {
			return "", nil, nil
		}
		cube, err := m.ev.DrillInRewrite(e.Query, e.Pres, added[0])
		if err != nil {
			// The added variable may not be existential in e's
			// classifier; treat as not applicable.
			return "", nil, nil
		}
		cols := append(append([]string(nil), q.Dims()...), q.MeasureVar())
		return StrategyDrillIn, cube.Project(cols...), nil
	}
	return "", nil, nil
}

type headRelationKind int

const (
	headUnrelated headRelationKind = iota
	headEqual
	headSubset   // q's dims ⊂ e's dims (drill-out candidate)
	headSuperset // q's dims ⊃ e's dims (drill-in candidate)
)

// headRelation compares classifier heads. The root (first variable) must
// match; dimension order is irrelevant.
func headRelation(eHead, qHead []string) headRelationKind {
	if len(eHead) == 0 || len(qHead) == 0 || eHead[0] != qHead[0] {
		return headUnrelated
	}
	eDims := toSet(eHead[1:])
	qDims := toSet(qHead[1:])
	eInQ, qInE := true, true
	for d := range eDims {
		if !qDims[d] {
			eInQ = false
		}
	}
	for d := range qDims {
		if !eDims[d] {
			qInE = false
		}
	}
	switch {
	case eInQ && qInE:
		return headEqual
	case qInE:
		return headSubset
	case eInQ:
		return headSuperset
	default:
		return headUnrelated
	}
}

func toSet(ss []string) map[string]bool {
	out := make(map[string]bool, len(ss))
	for _, s := range ss {
		out[s] = true
	}
	return out
}

// missingDims returns the elements of all that are absent from kept,
// preserving all's order.
func missingDims(all, kept []string) []string {
	k := toSet(kept)
	var out []string
	for _, d := range all {
		if !k[d] {
			out = append(out, d)
		}
	}
	return out
}

// sameMeasure reports whether the two queries' measures are syntactically
// identical (same head, same body patterns up to order).
func sameMeasure(a, b *core.Query) bool {
	if len(a.Measure.Head) != len(b.Measure.Head) {
		return false
	}
	for i := range a.Measure.Head {
		if a.Measure.Head[i] != b.Measure.Head[i] {
			return false
		}
	}
	return sameBody(a.Measure, b.Measure)
}

// sameBody reports whether two queries have the same pattern multiset.
func sameBody(a, b *sparql.Query) bool {
	if len(a.Patterns) != len(b.Patterns) {
		return false
	}
	ka := patternKeys(a)
	kb := patternKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func patternKeys(q *sparql.Query) []string {
	keys := make([]string, len(q.Patterns))
	for i, tp := range q.Patterns {
		keys[i] = tp.String()
	}
	sort.Strings(keys)
	return keys
}

// sigmaEqual reports Σ_a == Σ_b (same restricted dims, same value sets).
func sigmaEqual(a, b core.Sigma) bool {
	if len(a) != len(b) {
		return false
	}
	for dim, va := range a {
		vb, ok := b[dim]
		if !ok || !sameTermSet(va, vb) {
			return false
		}
	}
	return true
}

// sigmaEqualOn reports Σ_a == Σ_b restricted to the given dimensions.
func sigmaEqualOn(a, b core.Sigma, dims []string) bool {
	for _, d := range dims {
		va, aOK := a[d]
		vb, bOK := b[d]
		if aOK != bOK {
			return false
		}
		if aOK && !sameTermSet(va, vb) {
			return false
		}
	}
	return true
}

// sigmaRefines reports whether Σ_q refines Σ_e: every restriction of e
// is at least as strong in q (q's value sets are subsets), so filtering
// e's cube by Σ_q yields exactly q's cube.
func sigmaRefines(e, q core.Sigma) bool {
	for dim, ve := range e {
		vq, ok := q[dim]
		if !ok {
			// q relaxes a restriction of e: e's cube lacks the cells q
			// needs; not a refinement.
			return false
		}
		if !termSubset(vq, ve) {
			return false
		}
	}
	return true
}

func sameTermSet(a, b []rdf.Term) bool {
	if len(a) != len(b) {
		return false
	}
	return termSubset(a, b) && termSubset(b, a)
}

func termSubset(sub, super []rdf.Term) bool {
	set := make(map[rdf.Term]bool, len(super))
	for _, t := range super {
		set[t] = true
	}
	for _, t := range sub {
		if !set[t] {
			return false
		}
	}
	return true
}

// Describe renders the manager state for diagnostics.
func (m *Manager) Describe() string {
	s := fmt.Sprintf("session: %d materialized queries\n", len(m.entries))
	for i, e := range m.entries {
		s += fmt.Sprintf("  [%d] dims=%v agg=%s pres=%d rows ans=%d cells\n",
			i, e.Query.Dims(), e.Query.Agg.Name(), e.Pres.Len(), e.Ans.Len())
	}
	return s
}
