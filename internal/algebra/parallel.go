package algebra

// Parallel grouping, deduplication and join fan-out. All three stay
// byte-identical to their sequential counterparts:
//
//   - γ partitions the HASH space of the group key across workers. All
//     rows of one group share a hash, so exactly one worker owns each
//     group — accumulators never race, every group's measures are fed in
//     input-row order (bit-identical floats to the sequential path), and
//     the final output sorts groups by their first input row, which is
//     the sequential first-seen order.
//   - δ partitions the full-row hash space the same way; every duplicate
//     pair meets inside one partition, each partition keeps the first-
//     occurring index, and survivors compact in input order — the
//     sequential first-occurrence order.
//   - ⋈ builds its hash table once, then probes contiguous chunks of the
//     left side concurrently; per-chunk outputs concatenate in chunk
//     order and bucket lists hold right rows in insertion (ascending)
//     order, so the emitted rows match the sequential nested order.
//
// All three honor the GroupWorkers override.

import (
	"runtime"
	"sort"
	"sync"

	"rdfcube/internal/agg"
)

// parallelGroupMinRows is the input size below which grouping stays
// sequential.
const parallelGroupMinRows = 16384

// GroupWorkers overrides the grouping parallelism; 0 (the default) uses
// runtime.GOMAXPROCS. Exposed for tests and tuning.
var GroupWorkers int

// groupWorkers sizes the fan-out; <= 1 means stay sequential.
func groupWorkers(rows int) int {
	nw := GroupWorkers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
		if max := rows / parallelGroupMinRows; nw > max {
			nw = max
		}
	}
	if nw > rows {
		nw = rows
	}
	return nw
}

// groupAggregateParallel is the fan-out γ. It returns nil when the
// input is too small to be worth it (the caller then runs the
// sequential loop).
func (r *Relation) groupAggregateParallel(gIdx []int, vIdx int, groupCols []string, aggCol string, f agg.Func, resolve NumericResolver) *Relation {
	n := len(r.Rows)
	nw := groupWorkers(n)
	if nw <= 1 {
		return nil
	}
	reprIdx := make([]int, len(gIdx))
	for i := range reprIdx {
		reprIdx[i] = i
	}

	// Pass 1: hash the group key of every row in parallel chunks, each
	// chunk worker bucketing its row indexes by hash partition so pass 2
	// never rescans the whole array.
	hashes := make([]uint64, n)
	chunkParts := make([][][]int, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts := make([][]int, nw)
			for i := lo; i < hi; i++ {
				h := hashCols(r.Rows[i], gIdx)
				hashes[i] = h
				p := int(h % uint64(nw))
				parts[p] = append(parts[p], i)
			}
			chunkParts[w] = parts
		}(w, lo, hi)
	}
	wg.Wait()

	// Pass 2: each worker accumulates the groups of its hash partition.
	// Chunk index lists concatenate in ascending row order, so every
	// group's measures are fed in input order — as sequentially.
	parts := make([][]*group, nw)
	for p := 0; p < nw; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buckets := make(map[uint64][]*group, n/nw+1)
			var order []*group
			for _, cp := range chunkParts {
				if cp == nil {
					continue
				}
				for _, i := range cp[p] {
					h := hashes[i]
					row := r.Rows[i]
					var g *group
					for _, cand := range buckets[h] {
						if colsEqualBits(cand.repr, reprIdx, row, gIdx) {
							g = cand
							break
						}
					}
					if g == nil {
						repr := make(Row, len(gIdx))
						for j, c := range gIdx {
							repr[j] = row[c]
						}
						g = &group{repr: repr, acc: f.New(), first: i}
						buckets[h] = append(buckets[h], g)
						order = append(order, g)
					}
					accumulate(g.acc, row[vIdx], resolve)
				}
			}
			parts[p] = order
		}(p)
	}
	wg.Wait()

	// Merge: first-seen order across partitions.
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	order := make([]*group, 0, total)
	for _, p := range parts {
		order = append(order, p...)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].first < order[j].first })
	return finishGroups(groupCols, aggCol, order)
}

// dedupParallel is the fan-out δ. It returns nil when the input is too
// small (the caller then runs the sequential hash loop).
func (r *Relation) dedupParallel() []Row {
	n := len(r.Rows)
	nw := groupWorkers(n)
	if nw <= 1 {
		return nil
	}

	// Pass 1: hash every row in parallel chunks, bucketing row indexes
	// by hash partition per chunk (ascending within each list).
	hashes := make([]uint64, n)
	chunkParts := make([][][]int, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts := make([][]int, nw)
			for i := lo; i < hi; i++ {
				h := hashRow(r.Rows[i])
				hashes[i] = h
				p := int(h % uint64(nw))
				parts[p] = append(parts[p], i)
			}
			chunkParts[w] = parts
		}(w, lo, hi)
	}
	wg.Wait()

	// Pass 2: worker p owns hash partition p. Concatenating the chunk
	// index lists in chunk order keeps indexes ascending, so the kept
	// row of every duplicate class is its first occurrence.
	keep := make([]bool, n)
	for p := 0; p < nw; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buckets := make(map[uint64][]int, n/nw+1)
			for _, parts := range chunkParts {
				if parts == nil {
					continue
				}
				for _, i := range parts[p] {
					h := hashes[i]
					dup := false
					for _, idx := range buckets[h] {
						if rowsEqualBits(r.Rows[idx], r.Rows[i]) {
							dup = true
							break
						}
					}
					if !dup {
						buckets[h] = append(buckets[h], i)
						keep[i] = true
					}
				}
			}
		}(p)
	}
	wg.Wait()

	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	out := make([]Row, 0, kept)
	for i, k := range keep {
		if k {
			out = append(out, r.Rows[i])
		}
	}
	return out
}

// parallelJoinMinRows is the probe-side size below which the join stays
// sequential.
const parallelJoinMinRows = 16384

// joinWorkers sizes the probe fan-out; <= 1 means stay sequential.
func joinWorkers(rows int) int {
	nw := GroupWorkers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
		if max := rows / parallelJoinMinRows; nw > max {
			nw = max
		}
	}
	if nw > rows {
		nw = rows
	}
	return nw
}

// probeParallel probes contiguous chunks of the left rows against the
// build table concurrently and concatenates the per-chunk outputs in
// chunk order. It returns nil when the probe side is too small.
func probeParallel(left []Row, lIdx, rIdx []int, build map[uint64][]Row, keepRight []int, width int) []Row {
	n := len(left)
	nw := joinWorkers(n)
	if nw <= 1 {
		return nil
	}
	parts := make([][]Row, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []Row
			for _, lrow := range left[lo:hi] {
				h := hashCols(lrow, lIdx)
				for _, rrow := range build[h] {
					if !colsEqualBits(lrow, lIdx, rrow, rIdx) {
						continue
					}
					nr := make(Row, 0, width)
					nr = append(nr, lrow...)
					for _, j := range keepRight {
						nr = append(nr, rrow[j])
					}
					out = append(out, nr)
				}
			}
			parts[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Row, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
