package algebra

// The parallel γ must be identical to the sequential γ — groups, order
// and bit-exact float accumulation.

import (
	"math/rand"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/dict"
)

func randomGroupRelation(rng *rand.Rand, rows, groups int) *Relation {
	r := NewRelation("d0", "d1", "m")
	for i := 0; i < rows; i++ {
		g := rng.Intn(groups)
		r.Append(Row{
			TermV(dict.ID(1 + g%7)),
			TermV(dict.ID(1 + g/7)),
			NumV(rng.Float64() * 100),
		})
	}
	return r
}

func relIdentical(a, b *Relation) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.Rows {
		if !rowsEqualBits(a.Rows[i], b.Rows[i]) {
			return false
		}
	}
	return true
}

func TestGroupAggregateParallelMatchesSequential(t *testing.T) {
	defer func() { GroupWorkers = 0 }()
	rng := rand.New(rand.NewSource(3))
	for _, name := range []string{"count", "sum", "avg", "min", "max"} {
		f, err := agg.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, rows := range []int{100, 5000, 40000} {
			r := randomGroupRelation(rng, rows, 40)
			GroupWorkers = 1
			seq := r.GroupAggregate([]string{"d0", "d1"}, "m", "v", f, nil)
			GroupWorkers = 4
			par := r.GroupAggregate([]string{"d0", "d1"}, "m", "v", f, nil)
			if !relIdentical(seq, par) {
				t.Fatalf("agg=%s rows=%d: parallel grouping diverged (%d vs %d groups)",
					name, rows, seq.Len(), par.Len())
			}
			GroupWorkers = 0
			auto := r.GroupAggregate([]string{"d0", "d1"}, "m", "v", f, nil)
			if !relIdentical(seq, auto) {
				t.Fatalf("agg=%s rows=%d: auto-parallel grouping diverged", name, rows)
			}
		}
	}
}
