package algebra

// Ordering-aware fast paths (δ and γ over relations carrying a sort
// property) and the parallel δ/⋈ fan-outs: every path must be
// byte-identical — rows AND order — to the sequential hash reference.

import (
	"math/rand"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/dict"
)

// sortedDupRelation builds a relation whose rows ascend on every column
// with duplicates adjacent — the shape a sorted pipeline produces.
func sortedDupRelation(rng *rand.Rand, groups, maxRun int) *Relation {
	r := NewRelation("a", "b")
	va, vb := 1, 1
	for g := 0; g < groups; g++ {
		vb += 1 + rng.Intn(3)
		if vb > 40 {
			va, vb = va+1, 1+rng.Intn(3)
		}
		run := 1 + rng.Intn(maxRun)
		for i := 0; i < run; i++ {
			r.Append(Row{TermV(dict.ID(va)), TermV(dict.ID(vb))})
		}
	}
	return r
}

// hashReference re-runs the operation with the sort property stripped,
// forcing the hash path on the same rows.
func stripSorted(r *Relation) *Relation {
	c := r.Clone()
	c.Sorted, c.Strict = nil, false
	return c
}

func TestDedupSortedRunMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		r := sortedDupRelation(rng, 5+rng.Intn(200), 4)
		r.Sorted = []string{"a", "b"}
		run := r.Dedup()
		if !run.Strict {
			t.Fatal("full-column run dedup must yield a strict relation")
		}
		want := stripSorted(r).Dedup()
		if !relIdentical(&Relation{Cols: run.Cols, Rows: run.Rows}, &Relation{Cols: want.Cols, Rows: want.Rows}) {
			t.Fatalf("trial %d: run dedup diverged from hash dedup (%d vs %d rows)", trial, run.Len(), want.Len())
		}
	}
}

func TestDedupStrictFastPath(t *testing.T) {
	r := NewRelation("a", "b")
	for i := 1; i <= 50; i++ {
		r.Append(Row{TermV(dict.ID(i)), TermV(dict.ID(i % 7))})
	}
	r.Sorted, r.Strict = []string{"a"}, true
	got := r.Dedup()
	if got.Len() != r.Len() {
		t.Fatalf("strict relation lost rows in Dedup: %d vs %d", got.Len(), r.Len())
	}
	want := stripSorted(r).Dedup()
	if !relIdentical(&Relation{Cols: got.Cols, Rows: got.Rows}, &Relation{Cols: want.Cols, Rows: want.Rows}) {
		t.Fatal("strict fast path diverged from hash dedup")
	}
}

func TestGroupAggregateStreamMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, name := range []string{"count", "sum", "avg", "min", "max"} {
		f, err := agg.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		// Sorted (d0, d1) input with random measures appended per group.
		r := NewRelation("d0", "d1", "m")
		for a := 1; a <= 12; a++ {
			for b := 1; b <= 9; b++ {
				if rng.Intn(4) == 0 {
					continue
				}
				for i := 0; i < 1+rng.Intn(5); i++ {
					r.Append(Row{TermV(dict.ID(a)), TermV(dict.ID(b)), NumV(rng.Float64() * 100)})
				}
			}
		}
		r.Sorted, r.Strict = []string{"d0", "d1"}, false
		stream := r.GroupAggregate([]string{"d0", "d1"}, "m", "v", f, nil)
		if len(stream.Sorted) != 2 || !stream.Strict {
			t.Fatalf("agg=%s: streamed γ must declare a strict (d0, d1) sort, got %v strict=%v",
				name, stream.Sorted, stream.Strict)
		}
		want := stripSorted(r).GroupAggregate([]string{"d0", "d1"}, "m", "v", f, nil)
		if !relIdentical(&Relation{Cols: stream.Cols, Rows: stream.Rows}, &Relation{Cols: want.Cols, Rows: want.Rows}) {
			t.Fatalf("agg=%s: streamed γ diverged from hash γ (%d vs %d groups)", name, stream.Len(), want.Len())
		}
		// Group columns in permuted order still qualify (set equality).
		perm := r.GroupAggregate([]string{"d1", "d0"}, "m", "v", f, nil)
		wantPerm := stripSorted(r).GroupAggregate([]string{"d1", "d0"}, "m", "v", f, nil)
		if !relIdentical(&Relation{Cols: perm.Cols, Rows: perm.Rows}, &Relation{Cols: wantPerm.Cols, Rows: wantPerm.Rows}) {
			t.Fatalf("agg=%s: permuted streamed γ diverged", name)
		}
	}
}

func TestDedupParallelMatchesSequential(t *testing.T) {
	defer func() { GroupWorkers = 0 }()
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ rows, domain int }{
		{100, 5},     // tiny, heavy duplication
		{5000, 20},   // forced-parallel midsize
		{40000, 500}, // exceeds the auto threshold
	} {
		r := NewRelation("a", "b", "c")
		for i := 0; i < tc.rows; i++ {
			r.Append(Row{
				TermV(dict.ID(1 + rng.Intn(tc.domain))),
				TermV(dict.ID(1 + rng.Intn(tc.domain))),
				NumV(float64(rng.Intn(3))),
			})
		}
		GroupWorkers = 1
		seq := r.Dedup()
		GroupWorkers = 4
		par := r.Dedup()
		if !relIdentical(seq, par) {
			t.Fatalf("rows=%d: parallel dedup diverged (%d vs %d rows)", tc.rows, seq.Len(), par.Len())
		}
		GroupWorkers = 0
		auto := r.Dedup()
		if !relIdentical(seq, auto) {
			t.Fatalf("rows=%d: auto-parallel dedup diverged", tc.rows)
		}
	}
}

func TestJoinParallelMatchesSequential(t *testing.T) {
	defer func() { GroupWorkers = 0 }()
	rng := rand.New(rand.NewSource(34))
	for _, rows := range []int{200, 5000, 40000} {
		left := NewRelation("a", "k")
		right := NewRelation("k", "b")
		for i := 0; i < rows; i++ {
			left.Append(Row{TermV(dict.ID(1 + rng.Intn(50))), TermV(dict.ID(1 + rng.Intn(64)))})
		}
		for i := 0; i < 300; i++ {
			right.Append(Row{TermV(dict.ID(1 + rng.Intn(64))), TermV(dict.ID(1 + rng.Intn(50)))})
		}
		GroupWorkers = 1
		seq, err := left.Join(right, []string{"k"}, []string{"k"})
		if err != nil {
			t.Fatal(err)
		}
		GroupWorkers = 4
		par, err := left.Join(right, []string{"k"}, []string{"k"})
		if err != nil {
			t.Fatal(err)
		}
		if !relIdentical(seq, par) {
			t.Fatalf("rows=%d: parallel join diverged (%d vs %d rows)", rows, seq.Len(), par.Len())
		}
		GroupWorkers = 0
		auto, err := left.Join(right, []string{"k"}, []string{"k"})
		if err != nil {
			t.Fatal(err)
		}
		if !relIdentical(seq, auto) {
			t.Fatalf("rows=%d: auto-parallel join diverged", rows)
		}
	}
}
