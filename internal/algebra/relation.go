// Package algebra implements a small bag-semantics relational algebra —
// selection σ, projection π, duplicate elimination δ, grouping with
// aggregation γ, and hash joins ⋈ — over tables whose cells are RDF term
// IDs, numbers, or the synthetic keys of extended measure results.
//
// Section 3 of the paper expresses its rewriting algorithms in exactly
// these operators ("all relational algebra operators are assumed to have
// bag semantics"); the core package executes Algorithms 1 and 2 as plain
// algebra programs on pres(Q).
package algebra

import (
	"fmt"
	"math"
	"sort"

	"rdfcube/internal/agg"
	"rdfcube/internal/dict"
	"rdfcube/internal/hash64"
)

// ValueKind discriminates cell types.
type ValueKind uint8

// Cell kinds: an RDF term ID, a numeric aggregate, or a measure key
// produced by newk() (Section 3, extended measure result).
const (
	TermValue ValueKind = iota + 1
	NumValue
	KeyValue
)

// Value is one relation cell. Values are comparable; equality is
// structural.
type Value struct {
	Kind ValueKind
	ID   dict.ID // TermValue
	Num  float64 // NumValue
	Key  uint64  // KeyValue
}

// TermV wraps a dictionary ID as a cell.
func TermV(id dict.ID) Value { return Value{Kind: TermValue, ID: id} }

// NumV wraps a number as a cell.
func NumV(f float64) Value { return Value{Kind: NumValue, Num: f} }

// KeyV wraps a measure key as a cell.
func KeyV(k uint64) Value { return Value{Kind: KeyValue, Key: k} }

// String renders the cell for debugging and table output.
func (v Value) String() string {
	switch v.Kind {
	case TermValue:
		return fmt.Sprintf("t%d", v.ID)
	case NumValue:
		if v.Num == math.Trunc(v.Num) && math.Abs(v.Num) < 1e15 {
			return fmt.Sprintf("%d", int64(v.Num))
		}
		return fmt.Sprintf("%g", v.Num)
	case KeyValue:
		return fmt.Sprintf("k%d", v.Key)
	default:
		return "?"
	}
}

// Row is one tuple.
type Row []Value

// Relation is a named-column table with bag semantics: duplicate rows are
// meaningful until an explicit δ.
//
// Sorted and Strict carry the physical sort property of the rows, when
// one is known — typically inherited from the batch BGP engine through
// core's bridge. Sorted names the columns the rows are lexicographically
// ordered by (significance order); Strict additionally promises no two
// rows agree on all Sorted columns. Operators that preserve row order
// propagate the property; δ and γ exploit it to replace hash tables
// with run detection. Both are advisory: a nil Sorted is always safe.
type Relation struct {
	Cols   []string
	Rows   []Row
	Sorted []string
	Strict bool
}

// NewRelation returns an empty relation with the given columns.
func NewRelation(cols ...string) *Relation {
	return &Relation{Cols: append([]string(nil), cols...)}
}

// Len reports the number of rows (with duplicates).
func (r *Relation) Len() int { return len(r.Rows) }

// Byte-footprint model: cells dominate; the estimate charges the Value
// array, the per-row slice header, and the column names, deliberately
// ignoring allocator slack. Shared by the view registry's byte budget
// and the per-query cost accounting.
const (
	valueBytes  = 32 // unsafe.Sizeof(Value{}) on 64-bit
	rowOverhead = 24 // slice header per row
	relOverhead = 64 // Relation struct + slice headers
)

// EstimateBytes estimates the relation's resident size. Nil-safe.
func (r *Relation) EstimateBytes() int64 {
	if r == nil {
		return 0
	}
	b := int64(relOverhead)
	for _, c := range r.Cols {
		b += int64(16 + len(c))
	}
	b += int64(len(r.Rows)) * (rowOverhead + int64(len(r.Cols))*valueBytes)
	return b
}

// Column returns the index of col, or -1.
func (r *Relation) Column(col string) int {
	for i, c := range r.Cols {
		if c == col {
			return i
		}
	}
	return -1
}

// MustColumn returns the index of col, panicking if absent; for internal
// invariants.
func (r *Relation) MustColumn(col string) int {
	i := r.Column(col)
	if i < 0 {
		panic(fmt.Sprintf("algebra: no column %q in %v", col, r.Cols))
	}
	return i
}

// Append adds a row; the row length must match the column count.
func (r *Relation) Append(row Row) {
	if len(row) != len(r.Cols) {
		panic(fmt.Sprintf("algebra: row width %d != %d columns", len(row), len(r.Cols)))
	}
	r.Rows = append(r.Rows, row)
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := &Relation{Cols: append([]string(nil), r.Cols...)}
	out.Rows = make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = append(Row(nil), row...)
	}
	out.Sorted, out.Strict = append([]string(nil), r.Sorted...), r.Strict
	return out
}

// Select returns σ_pred(r): the rows satisfying pred, bag semantics.
// Selection keeps row order, so the sort property survives.
func (r *Relation) Select(pred func(Row) bool) *Relation {
	out := &Relation{Cols: append([]string(nil), r.Cols...)}
	for _, row := range r.Rows {
		if pred(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	out.Sorted, out.Strict = append([]string(nil), r.Sorted...), r.Strict
	return out
}

// Project returns π_cols(r) with bag semantics (duplicates retained).
// The longest sorted prefix whose columns all survive still orders the
// output; strictness survives only when the whole prefix does.
func (r *Relation) Project(cols ...string) *Relation {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.MustColumn(c)
	}
	out := &Relation{Cols: append([]string(nil), cols...)}
	out.Rows = make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		nr := make(Row, len(idx))
		for j, c := range idx {
			nr[j] = row[c]
		}
		out.Rows[i] = nr
	}
	k := 0
	for k < len(r.Sorted) && containsCol(cols, r.Sorted[k]) {
		k++
	}
	out.Sorted = append([]string(nil), r.Sorted[:k]...)
	out.Strict = r.Strict && k == len(r.Sorted)
	return out
}

// Dedup returns δ(r): distinct rows. This is the deduplication step of
// Algorithm 1, which repairs the fact duplication caused by projecting
// out a multi-valued dimension.
//
// A strict input needs no work at all (two identical rows would agree
// on the strict columns); an input sorted on every column deduplicates
// by run detection; otherwise wide inputs fan out across CPUs
// (parallel.go) and small ones run the sequential hash loop. All paths
// keep the first occurrence, in input order.
func (r *Relation) Dedup() *Relation {
	out := &Relation{Cols: append([]string(nil), r.Cols...)}
	out.Sorted, out.Strict = append([]string(nil), r.Sorted...), r.Strict
	if r.Strict && len(r.Sorted) > 0 {
		out.Rows = append([]Row(nil), r.Rows...)
		return out
	}
	if len(r.Sorted) > 0 && len(r.Sorted) == len(r.Cols) && colsCover(r.Cols, r.Sorted) {
		// Sorted on every column: duplicate rows are adjacent.
		out.Rows = make([]Row, 0, len(r.Rows))
		for i, row := range r.Rows {
			if i > 0 && rowsEqualBits(row, out.Rows[len(out.Rows)-1]) {
				continue
			}
			out.Rows = append(out.Rows, row)
		}
		out.Strict = true
		return out
	}
	if rows := r.dedupParallel(); rows != nil {
		out.Rows = rows
		return out
	}
	out.Rows = make([]Row, 0, len(r.Rows))
	buckets := make(map[uint64][]int, len(r.Rows))
	for _, row := range r.Rows {
		h := hashRow(row)
		dup := false
		for _, idx := range buckets[h] {
			if rowsEqualBits(out.Rows[idx], row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		buckets[h] = append(buckets[h], len(out.Rows))
		out.Rows = append(out.Rows, row)
	}
	return out
}

// containsCol reports whether cols contains c.
func containsCol(cols []string, c string) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}

// colsCover reports whether every column in want appears in cols.
func colsCover(cols, want []string) bool {
	for _, c := range want {
		if !containsCol(cols, c) {
			return false
		}
	}
	return true
}

// Hashing: rows and column subsets are keyed by a word-wise FNV-1a hash
// of (kind, payload-bits) pairs instead of allocated string keys. Every
// hash lookup verifies candidates with rowsEqualBits/colsEqualBits, so
// collisions cost a comparison, never correctness. NumValue cells
// compare by bit pattern, preserving the previous string-key semantics
// (NaN equals NaN, -0 differs from +0).

func valueBits(v Value) uint64 {
	switch v.Kind {
	case TermValue:
		return uint64(v.ID)
	case NumValue:
		return math.Float64bits(v.Num)
	default:
		return v.Key
	}
}

func mixValue(h uint64, v Value) uint64 {
	return hash64.Mix(hash64.Mix(h, uint64(v.Kind)), valueBits(v))
}

// hashRow hashes every cell of the row.
func hashRow(row Row) uint64 {
	h := uint64(hash64.Offset)
	for _, v := range row {
		h = mixValue(h, v)
	}
	return h
}

// hashCols hashes the cells at the given column indexes.
func hashCols(row Row, idx []int) uint64 {
	h := uint64(hash64.Offset)
	for _, c := range idx {
		h = mixValue(h, row[c])
	}
	return h
}

func valueEqualBits(a, b Value) bool {
	return a.Kind == b.Kind && valueBits(a) == valueBits(b)
}

func rowsEqualBits(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valueEqualBits(a[i], b[i]) {
			return false
		}
	}
	return true
}

// colsEqualBits compares a[aIdx[i]] to b[bIdx[i]] for all i.
func colsEqualBits(a Row, aIdx []int, b Row, bIdx []int) bool {
	for i := range aIdx {
		if !valueEqualBits(a[aIdx[i]], b[bIdx[i]]) {
			return false
		}
	}
	return true
}

// NumericResolver supplies the numeric interpretation of a term ID, used
// by γ to feed sum/avg/min/max. The core package passes a resolver backed
// by the term dictionary.
type NumericResolver func(id dict.ID) (float64, bool)

// GroupAggregate returns γ_{groupCols, ⊕(valueCol)}(r): one output row
// per distinct group, carrying the group columns followed by a NumValue
// column named aggCol with the aggregate of valueCol.
//
// Groups whose accumulator reports no result (empty measure bag for
// functions requiring numeric input) are dropped, matching Definition 1's
// "if qj(I) is empty, the fact does not contribute to the cube".
// Output group order is deterministic (first-seen order). An input
// sorted on exactly the group columns streams: group changes are
// detected by comparing adjacent rows, with no hash table — first-seen
// order coincides with the sorted order, so the output is identical to
// the hash path's. Otherwise wide inputs fan the grouping out across
// CPUs (parallel.go) with identical output, row for row.
func (r *Relation) GroupAggregate(groupCols []string, valueCol, aggCol string, f agg.Func, resolve NumericResolver) *Relation {
	gIdx := make([]int, len(groupCols))
	for i, c := range groupCols {
		gIdx[i] = r.MustColumn(c)
	}
	vIdx := r.MustColumn(valueCol)
	if r.sortedOnGroups(groupCols) {
		return r.groupAggregateStream(gIdx, vIdx, groupCols, aggCol, f, resolve)
	}
	if out := r.groupAggregateParallel(gIdx, vIdx, groupCols, aggCol, f, resolve); out != nil {
		return out
	}

	reprIdx := make([]int, len(gIdx))
	for i := range reprIdx {
		reprIdx[i] = i
	}
	buckets := make(map[uint64][]*group)
	var order []*group
	for _, row := range r.Rows {
		h := hashCols(row, gIdx)
		var g *group
		for _, cand := range buckets[h] {
			if colsEqualBits(cand.repr, reprIdx, row, gIdx) {
				g = cand
				break
			}
		}
		if g == nil {
			repr := make(Row, len(gIdx))
			for i, c := range gIdx {
				repr[i] = row[c]
			}
			g = &group{repr: repr, acc: f.New()}
			buckets[h] = append(buckets[h], g)
			order = append(order, g)
		}
		accumulate(g.acc, row[vIdx], resolve)
	}
	return finishGroups(groupCols, aggCol, order)
}

// sortedOnGroups reports whether the rows are sorted on exactly the
// group columns: some sorted prefix's column set equals groupCols'.
// Rows of one group are then adjacent.
func (r *Relation) sortedOnGroups(groupCols []string) bool {
	k := len(groupCols)
	if k == 0 || k > len(r.Sorted) {
		return false
	}
	prefix := r.Sorted[:k]
	return colsCover(groupCols, prefix) && colsCover(prefix, groupCols)
}

// groupAggregateStream is the run-detecting γ over group-sorted input:
// one pass, no hash table, a group closes when the group key changes.
func (r *Relation) groupAggregateStream(gIdx []int, vIdx int, groupCols []string, aggCol string, f agg.Func, resolve NumericResolver) *Relation {
	reprIdx := make([]int, len(gIdx))
	for i := range reprIdx {
		reprIdx[i] = i
	}
	var order []*group
	var cur *group
	for _, row := range r.Rows {
		if cur == nil || !colsEqualBits(cur.repr, reprIdx, row, gIdx) {
			repr := make(Row, len(gIdx))
			for i, c := range gIdx {
				repr[i] = row[c]
			}
			cur = &group{repr: repr, acc: f.New()}
			order = append(order, cur)
		}
		accumulate(cur.acc, row[vIdx], resolve)
	}
	out := finishGroups(groupCols, aggCol, order)
	out.Sorted = append([]string(nil), r.Sorted[:len(gIdx)]...)
	out.Strict = true
	return out
}

// group is one in-progress aggregation group; first records the index
// of its first input row (the deterministic output order).
type group struct {
	repr  Row
	acc   agg.Accumulator
	first int
}

// accumulate feeds one measure cell into an accumulator — the single
// place the cell-kind dispatch lives, shared by the sequential and
// parallel grouping paths.
func accumulate(acc agg.Accumulator, v Value, resolve NumericResolver) {
	switch v.Kind {
	case TermValue:
		if resolve != nil {
			num, ok := resolve(v.ID)
			acc.Add(v.ID, num, ok)
		} else {
			acc.Add(v.ID, 0, false)
		}
	case NumValue:
		acc.Add(dict.NoID, v.Num, true)
	case KeyValue:
		acc.Add(dict.ID(v.Key), float64(v.Key), true)
	}
}

// finishGroups renders the accumulated groups, dropping empty results.
func finishGroups(groupCols []string, aggCol string, order []*group) *Relation {
	out := NewRelation(append(append([]string(nil), groupCols...), aggCol)...)
	out.Rows = make([]Row, 0, len(order))
	for _, g := range order {
		v, ok := g.acc.Result()
		if !ok {
			continue
		}
		out.Rows = append(out.Rows, append(append(make(Row, 0, len(g.repr)+1), g.repr...), NumV(v)))
	}
	return out
}

// Join returns r ⋈ other on leftCols = rightCols (hash join, bag
// semantics). Output columns are r's columns followed by other's columns
// minus the join columns. Column name collisions outside the join columns
// are an error.
func (r *Relation) Join(other *Relation, leftCols, rightCols []string) (*Relation, error) {
	if len(leftCols) != len(rightCols) {
		return nil, fmt.Errorf("algebra: join column arity mismatch %d vs %d", len(leftCols), len(rightCols))
	}
	lIdx := make([]int, len(leftCols))
	for i, c := range leftCols {
		j := r.Column(c)
		if j < 0 {
			return nil, fmt.Errorf("algebra: join column %q missing on left", c)
		}
		lIdx[i] = j
	}
	rIdx := make([]int, len(rightCols))
	rightJoinCol := make(map[int]bool)
	for i, c := range rightCols {
		j := other.Column(c)
		if j < 0 {
			return nil, fmt.Errorf("algebra: join column %q missing on right", c)
		}
		rIdx[i] = j
		rightJoinCol[j] = true
	}
	// Output schema.
	outCols := append([]string(nil), r.Cols...)
	leftNames := map[string]bool{}
	for _, c := range r.Cols {
		leftNames[c] = true
	}
	var keepRight []int
	for j, c := range other.Cols {
		if rightJoinCol[j] {
			continue
		}
		if leftNames[c] {
			return nil, fmt.Errorf("algebra: duplicate non-join column %q", c)
		}
		outCols = append(outCols, c)
		keepRight = append(keepRight, j)
	}
	// Build on the right side, bucketed by join-column hash; probes
	// verify the actual join columns, so hash collisions only cost a
	// comparison. Wide probe sides fan out across CPUs (parallel.go)
	// with identical output, row for row.
	build := make(map[uint64][]Row, len(other.Rows))
	for _, row := range other.Rows {
		h := hashCols(row, rIdx)
		build[h] = append(build[h], row)
	}
	out := &Relation{Cols: outCols}
	if rows := probeParallel(r.Rows, lIdx, rIdx, build, keepRight, len(outCols)); rows != nil {
		out.Rows = rows
		return out, nil
	}
	for _, lrow := range r.Rows {
		h := hashCols(lrow, lIdx)
		for _, rrow := range build[h] {
			if !colsEqualBits(lrow, lIdx, rrow, rIdx) {
				continue
			}
			nr := make(Row, 0, len(outCols))
			nr = append(nr, lrow...)
			for _, j := range keepRight {
				nr = append(nr, rrow[j])
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// NaturalJoin joins on all shared column names.
func (r *Relation) NaturalJoin(other *Relation) (*Relation, error) {
	var shared []string
	for _, c := range r.Cols {
		if other.Column(c) >= 0 {
			shared = append(shared, c)
		}
	}
	if len(shared) == 0 {
		return nil, fmt.Errorf("algebra: natural join with no shared columns (%v vs %v)", r.Cols, other.Cols)
	}
	return r.Join(other, shared, shared)
}

// Sort orders rows lexicographically in place (Kind, then payload) for
// deterministic output.
func (r *Relation) Sort() {
	sort.Slice(r.Rows, func(i, j int) bool {
		return compareRows(r.Rows[i], r.Rows[j]) < 0
	})
}

func compareRows(a, b Row) int {
	for k := range a {
		if c := compareValues(a[k], b[k]); c != 0 {
			return c
		}
	}
	return 0
}

func compareValues(a, b Value) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case TermValue:
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
	case NumValue:
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		}
	case KeyValue:
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		}
	}
	return 0
}

// Equal reports whether two relations have identical schema and identical
// bags of rows (order-insensitive).
func Equal(a, b *Relation) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	// Multiset comparison: bucket a's rows by hash, then tick off each
	// of b's rows against a verified match (swap-delete). Row counts are
	// equal, so full drainage follows from every b row matching.
	buckets := make(map[uint64][]Row, len(a.Rows))
	for _, row := range a.Rows {
		h := hashRow(row)
		buckets[h] = append(buckets[h], row)
	}
	for _, row := range b.Rows {
		h := hashRow(row)
		cands := buckets[h]
		found := -1
		for i, cand := range cands {
			if rowsEqualBits(cand, row) {
				found = i
				break
			}
		}
		if found < 0 {
			return false
		}
		cands[found] = cands[len(cands)-1]
		buckets[h] = cands[:len(cands)-1]
	}
	return true
}
