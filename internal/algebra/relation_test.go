package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rdfcube/internal/agg"
	"rdfcube/internal/dict"
)

func rel(cols []string, rows ...Row) *Relation {
	r := NewRelation(cols...)
	for _, row := range rows {
		r.Append(row)
	}
	return r
}

func TestValueConstructorsAndString(t *testing.T) {
	if TermV(3).Kind != TermValue || TermV(3).ID != 3 {
		t.Error("TermV wrong")
	}
	if NumV(2.5).Kind != NumValue || NumV(2.5).Num != 2.5 {
		t.Error("NumV wrong")
	}
	if KeyV(7).Kind != KeyValue || KeyV(7).Key != 7 {
		t.Error("KeyV wrong")
	}
	if TermV(3).String() != "t3" || KeyV(7).String() != "k7" {
		t.Error("String forms wrong")
	}
	if NumV(3).String() != "3" || NumV(2.5).String() != "2.5" {
		t.Errorf("numeric String: %q, %q", NumV(3).String(), NumV(2.5).String())
	}
}

func TestAppendWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append with wrong width must panic")
		}
	}()
	NewRelation("a", "b").Append(Row{TermV(1)})
}

func TestColumnLookup(t *testing.T) {
	r := NewRelation("a", "b")
	if r.Column("b") != 1 || r.Column("z") != -1 {
		t.Error("Column lookup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColumn on missing column must panic")
		}
	}()
	r.MustColumn("z")
}

func TestSelect(t *testing.T) {
	r := rel([]string{"a", "v"},
		Row{TermV(1), NumV(10)},
		Row{TermV(2), NumV(20)},
		Row{TermV(1), NumV(30)},
	)
	got := r.Select(func(row Row) bool { return row[0].ID == 1 })
	if got.Len() != 2 {
		t.Fatalf("Select kept %d rows, want 2", got.Len())
	}
	if r.Len() != 3 {
		t.Error("Select mutated the input")
	}
}

func TestProjectBagSemantics(t *testing.T) {
	r := rel([]string{"a", "b", "v"},
		Row{TermV(1), TermV(9), NumV(10)},
		Row{TermV(1), TermV(8), NumV(10)},
	)
	got := r.Project("a", "v")
	// Bag π keeps both (now identical) rows.
	if got.Len() != 2 {
		t.Fatalf("bag projection kept %d rows, want 2", got.Len())
	}
	if len(got.Cols) != 2 || got.Cols[0] != "a" || got.Cols[1] != "v" {
		t.Errorf("projected cols = %v", got.Cols)
	}
}

func TestDedup(t *testing.T) {
	r := rel([]string{"a", "v"},
		Row{TermV(1), NumV(10)},
		Row{TermV(1), NumV(10)},
		Row{TermV(1), NumV(20)},
	)
	got := r.Dedup()
	if got.Len() != 2 {
		t.Fatalf("Dedup kept %d rows, want 2", got.Len())
	}
	// δ is idempotent.
	if got.Dedup().Len() != 2 {
		t.Error("Dedup not idempotent")
	}
}

func TestDedupDistinguishesValueKinds(t *testing.T) {
	// TermV(1), NumV(1) and KeyV(1) are three distinct values.
	r := rel([]string{"x"},
		Row{TermV(1)},
		Row{NumV(1)},
		Row{KeyV(1)},
	)
	if got := r.Dedup().Len(); got != 3 {
		t.Fatalf("Dedup collapsed distinct kinds: %d rows, want 3", got)
	}
}

func TestGroupAggregateCount(t *testing.T) {
	r := rel([]string{"d", "v"},
		Row{TermV(1), TermV(100)},
		Row{TermV(1), TermV(101)},
		Row{TermV(2), TermV(102)},
	)
	got := r.GroupAggregate([]string{"d"}, "v", "v", agg.Count, nil)
	if got.Len() != 2 {
		t.Fatalf("groups = %d, want 2", got.Len())
	}
	got.Sort()
	if got.Rows[0][1].Num != 2 || got.Rows[1][1].Num != 1 {
		t.Errorf("counts = %v", got.Rows)
	}
}

func TestGroupAggregateSumWithResolver(t *testing.T) {
	// Term IDs resolve to numbers through the resolver.
	resolve := func(id dict.ID) (float64, bool) { return float64(id) * 10, true }
	r := rel([]string{"d", "v"},
		Row{TermV(1), TermV(3)},
		Row{TermV(1), TermV(4)},
	)
	got := r.GroupAggregate([]string{"d"}, "v", "v", agg.Sum, resolve)
	if got.Len() != 1 || got.Rows[0][1].Num != 70 {
		t.Errorf("sum = %v", got.Rows)
	}
}

func TestGroupAggregateDropsEmptyResult(t *testing.T) {
	// sum over non-numeric terms: accumulator never fires, group dropped.
	r := rel([]string{"d", "v"},
		Row{TermV(1), TermV(3)},
	)
	got := r.GroupAggregate([]string{"d"}, "v", "v", agg.Sum, func(dict.ID) (float64, bool) { return 0, false })
	if got.Len() != 0 {
		t.Errorf("group with empty aggregate survived: %v", got.Rows)
	}
}

func TestGroupAggregateNumInput(t *testing.T) {
	r := rel([]string{"d", "v"},
		Row{TermV(1), NumV(2)},
		Row{TermV(1), NumV(4)},
	)
	got := r.GroupAggregate([]string{"d"}, "v", "v", agg.Avg, nil)
	if got.Len() != 1 || got.Rows[0][1].Num != 3 {
		t.Errorf("avg over NumValues = %v", got.Rows)
	}
}

func TestJoin(t *testing.T) {
	left := rel([]string{"x", "d"},
		Row{TermV(1), TermV(10)},
		Row{TermV(2), TermV(20)},
	)
	right := rel([]string{"x", "v"},
		Row{TermV(1), NumV(0.5)},
		Row{TermV(1), NumV(1.5)},
		Row{TermV(3), NumV(9)},
	)
	got, err := left.Join(right, []string{"x"}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("join produced %d rows, want 2", got.Len())
	}
	if len(got.Cols) != 3 {
		t.Errorf("join cols = %v", got.Cols)
	}
}

func TestJoinBagMultiplicity(t *testing.T) {
	left := rel([]string{"x"}, Row{TermV(1)}, Row{TermV(1)})
	right := rel([]string{"x", "v"}, Row{TermV(1), NumV(1)}, Row{TermV(1), NumV(2)})
	got, err := left.Join(right, []string{"x"}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	// 2 left dups × 2 right matches = 4 (bag semantics).
	if got.Len() != 4 {
		t.Fatalf("bag join = %d rows, want 4", got.Len())
	}
}

func TestJoinErrors(t *testing.T) {
	a := rel([]string{"x", "y"}, Row{TermV(1), TermV(2)})
	b := rel([]string{"x", "y"}, Row{TermV(1), TermV(3)})
	if _, err := a.Join(b, []string{"x"}, []string{"x", "y"}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := a.Join(b, []string{"zz"}, []string{"x"}); err == nil {
		t.Error("missing left column accepted")
	}
	if _, err := a.Join(b, []string{"x"}, []string{"zz"}); err == nil {
		t.Error("missing right column accepted")
	}
	// Non-join duplicate column name.
	if _, err := a.Join(b, []string{"x"}, []string{"x"}); err == nil {
		t.Error("duplicate non-join column accepted")
	}
}

func TestNaturalJoin(t *testing.T) {
	a := rel([]string{"x", "d"}, Row{TermV(1), TermV(5)})
	b := rel([]string{"x", "v"}, Row{TermV(1), NumV(7)})
	got, err := a.NaturalJoin(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || len(got.Cols) != 3 {
		t.Errorf("natural join = %v %v", got.Cols, got.Rows)
	}
	c := rel([]string{"q"}, Row{TermV(1)})
	if _, err := a.NaturalJoin(c); err == nil {
		t.Error("natural join without shared columns accepted")
	}
}

func TestEqualBagSemantics(t *testing.T) {
	a := rel([]string{"x"}, Row{TermV(1)}, Row{TermV(1)}, Row{TermV(2)})
	b := rel([]string{"x"}, Row{TermV(2)}, Row{TermV(1)}, Row{TermV(1)})
	c := rel([]string{"x"}, Row{TermV(1)}, Row{TermV(2)}, Row{TermV(2)})
	if !Equal(a, b) {
		t.Error("order-insensitive bags reported unequal")
	}
	if Equal(a, c) {
		t.Error("different multiplicities reported equal")
	}
	d := rel([]string{"y"}, Row{TermV(1)}, Row{TermV(1)}, Row{TermV(2)})
	if Equal(a, d) {
		t.Error("different schemas reported equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := rel([]string{"x"}, Row{TermV(1)})
	b := a.Clone()
	b.Rows[0][0] = TermV(99)
	if a.Rows[0][0].ID != 1 {
		t.Error("Clone shares row storage")
	}
}

func TestSortDeterministic(t *testing.T) {
	r := rel([]string{"x", "v"},
		Row{TermV(2), NumV(1)},
		Row{TermV(1), NumV(5)},
		Row{TermV(1), NumV(2)},
	)
	r.Sort()
	if r.Rows[0][0].ID != 1 || r.Rows[0][1].Num != 2 || r.Rows[2][0].ID != 2 {
		t.Errorf("Sort order = %v", r.Rows)
	}
}

// Property: δ(π(r)) has no duplicates, and group-count over the deduped
// relation equals the number of distinct rows.
func TestPropertyDedupCounts(t *testing.T) {
	f := func(ids []uint8) bool {
		r := NewRelation("a")
		for _, id := range ids {
			r.Append(Row{TermV(dict.ID(id % 8))})
		}
		d := r.Dedup()
		seen := map[dict.ID]bool{}
		for _, row := range d.Rows {
			if seen[row[0].ID] {
				return false
			}
			seen[row[0].ID] = true
		}
		return d.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: join with itself on all columns yields at least the original
// distinct rows, and bag join sizes follow multiplicity products.
func TestPropertyJoinMultiplicity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		r := NewRelation("x")
		counts := map[dict.ID]int{}
		for i := 0; i < rng.Intn(30); i++ {
			id := dict.ID(rng.Intn(5) + 1)
			counts[id]++
			r.Append(Row{TermV(id)})
		}
		j, err := r.Join(r, []string{"x"}, []string{"x"})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, c := range counts {
			want += c * c
		}
		if j.Len() != want {
			t.Fatalf("trial %d: self-join size %d, want %d", trial, j.Len(), want)
		}
	}
}

// Property: GroupAggregate with Count equals per-group multiplicities.
func TestPropertyGroupCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		r := NewRelation("g", "v")
		counts := map[dict.ID]int{}
		for i := 0; i < 1+rng.Intn(40); i++ {
			g := dict.ID(rng.Intn(4) + 1)
			counts[g]++
			r.Append(Row{TermV(g), TermV(dict.ID(rng.Intn(100) + 1))})
		}
		out := r.GroupAggregate([]string{"g"}, "v", "n", agg.Count, nil)
		if out.Len() != len(counts) {
			t.Fatalf("trial %d: %d groups, want %d", trial, out.Len(), len(counts))
		}
		for _, row := range out.Rows {
			if int(row[1].Num) != counts[row[0].ID] {
				t.Fatalf("trial %d: group %d count %g, want %d", trial, row[0].ID, row[1].Num, counts[row[0].ID])
			}
		}
	}
}

func BenchmarkGroupAggregate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := NewRelation("g", "v")
	for i := 0; i < 100000; i++ {
		r.Append(Row{TermV(dict.ID(rng.Intn(1000) + 1)), NumV(rng.Float64())})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.GroupAggregate([]string{"g"}, "v", "v", agg.Sum, nil)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	left := NewRelation("x", "d")
	right := NewRelation("x", "v")
	for i := 0; i < 50000; i++ {
		left.Append(Row{TermV(dict.ID(rng.Intn(10000) + 1)), TermV(dict.ID(rng.Intn(50) + 1))})
		right.Append(Row{TermV(dict.ID(rng.Intn(10000) + 1)), NumV(rng.Float64())})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := left.Join(right, []string{"x"}, []string{"x"}); err != nil {
			b.Fatal(err)
		}
	}
}
