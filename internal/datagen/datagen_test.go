package datagen

import (
	"testing"

	"rdfcube/internal/bgp"
	"rdfcube/internal/core"
	"rdfcube/internal/rdf"
	"rdfcube/internal/rdfs"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

func TestBloggerDeterministic(t *testing.T) {
	cfg := DefaultBloggerConfig()
	cfg.Bloggers = 200
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("same seed produced %d then %d triples", a.Len(), b.Len())
	}
	// Every triple of a is in b.
	d := a.Dict()
	a.ForEach(store.Pattern{}, func(tr store.IDTriple) bool {
		term, _ := d.DecodeTriple(tr.S, tr.P, tr.O)
		if !b.Contains(term) {
			t.Fatalf("non-deterministic generation: %v missing", term)
		}
		return true
	})
	// Different seed differs.
	cfg.Seed = 99
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == a.Len() {
		// Sizes could coincide; check content.
		same := true
		a.ForEach(store.Pattern{}, func(tr store.IDTriple) bool {
			term, _ := d.DecodeTriple(tr.S, tr.P, tr.O)
			if !c.Contains(term) {
				same = false
				return false
			}
			return true
		})
		if same {
			t.Error("different seeds generated identical graphs")
		}
	}
}

func TestBloggerConfigValidation(t *testing.T) {
	bad := []BloggerConfig{
		{Bloggers: 0, Dimensions: 2, PostsPerBlogger: 1, Sites: 1},
		{Bloggers: 1, Dimensions: 0, PostsPerBlogger: 1, Sites: 1},
		{Bloggers: 1, Dimensions: 7, PostsPerBlogger: 1, Sites: 1},
		{Bloggers: 1, Dimensions: 2, PostsPerBlogger: 0, Sites: 1},
		{Bloggers: 1, Dimensions: 2, PostsPerBlogger: 1, Sites: 0},
		{Bloggers: 1, Dimensions: 2, PostsPerBlogger: 1, Sites: 1, MultiValueProb: 1.5},
		{Bloggers: 1, Dimensions: 2, PostsPerBlogger: 1, Sites: 1, MissingProb: -0.1},
	}
	for i, cfg := range bad {
		if _, err := cfg.Generate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestBloggerPipelineEndToEnd(t *testing.T) {
	cfg := DefaultBloggerConfig()
	cfg.Bloggers = 300
	cfg.Dimensions = 2
	cfg.SubPropertyShare = 0.5
	base, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	derived := rdfs.Saturate(base)
	if derived == 0 {
		t.Error("saturation derived nothing; dwellsIn ⊑ livesIn facts expected")
	}
	schema, err := BloggerSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.Validate(); err != nil {
		t.Fatalf("schema invalid: %v", err)
	}
	inst, err := schema.Materialize(base)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len() == 0 {
		t.Fatal("empty instance")
	}
	// Every generated blogger is in the Blogger class.
	q := sparql.MustParseDatalog("q(x) :- x rdf:type :Blogger", Prefixes())
	res, err := bgp.EvalSet(inst, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != cfg.Bloggers {
		t.Errorf("Blogger class has %d members, want %d", res.Len(), cfg.Bloggers)
	}
	// The AnQ answers without error and produces a plausible cube.
	anq, err := BloggerQuery(2, "count")
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	cube, err := ev.Answer(anq)
	if err != nil {
		t.Fatal(err)
	}
	if cube.Len() == 0 {
		t.Error("empty cube over generated data")
	}
	maxCells := DimCardinality(0) * DimCardinality(1)
	if cube.Len() > maxCells {
		t.Errorf("cube has %d cells, exceeding the %d-cell dimension grid", cube.Len(), maxCells)
	}
}

func TestBloggerMultiValueness(t *testing.T) {
	mk := func(p float64) int {
		cfg := DefaultBloggerConfig()
		cfg.Bloggers = 500
		cfg.MultiValueProb = p
		cfg.MissingProb = 0
		cfg.SubPropertyShare = 0
		base, err := cfg.Generate()
		if err != nil {
			t.Fatal(err)
		}
		// Count bloggers with 2 values along dimension 0.
		d := base.Dict()
		prop, ok := d.Lookup(rdf.NewIRI(NS + DimensionProps[0]))
		if !ok {
			t.Fatal("dimension property missing")
		}
		multi := 0
		for _, s := range base.Subjects(prop, store.Wild) {
			if base.Count(store.Pattern{S: s, P: prop}) > 1 {
				multi++
			}
		}
		return multi
	}
	if got := mk(0); got != 0 {
		t.Errorf("MultiValueProb=0 produced %d multi-valued bloggers", got)
	}
	if got := mk(0.5); got < 100 {
		t.Errorf("MultiValueProb=0.5 produced only %d multi-valued bloggers", got)
	}
}

func TestBloggerMissingness(t *testing.T) {
	cfg := DefaultBloggerConfig()
	cfg.Bloggers = 500
	cfg.MissingProb = 0.5
	cfg.SubPropertyShare = 0
	base, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	d := base.Dict()
	prop, _ := d.Lookup(rdf.NewIRI(NS + DimensionProps[0]))
	withValue := len(base.Subjects(prop, store.Wild))
	if withValue > 350 || withValue < 150 {
		t.Errorf("MissingProb=0.5: %d/500 bloggers carry dim0; expected roughly half", withValue)
	}
}

func TestBloggerQueryDimensions(t *testing.T) {
	for dims := 1; dims <= 6; dims++ {
		q, err := BloggerQuery(dims, "sum")
		if err != nil {
			t.Fatalf("dims=%d: %v", dims, err)
		}
		if len(q.Dims()) != dims {
			t.Errorf("dims=%d: query has %d dimensions", dims, len(q.Dims()))
		}
	}
	if _, err := BloggerQuery(0, "sum"); err == nil {
		t.Error("0 dimensions accepted")
	}
	if _, err := BloggerQuery(7, "sum"); err == nil {
		t.Error("7 dimensions accepted")
	}
	if _, err := BloggerQuery(2, "median"); err == nil {
		t.Error("unknown aggregation accepted")
	}
}

func TestVideoPipelineEndToEnd(t *testing.T) {
	cfg := DefaultVideoConfig()
	cfg.Videos = 200
	cfg.Websites = 20
	base, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := VideoSchema().Materialize(base)
	if err != nil {
		t.Fatal(err)
	}
	q, err := VideoQuery("sum")
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	pres, err := ev.Pres(q)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Len() == 0 {
		t.Fatal("empty pres over video data")
	}
	// Drill-in round trip at small scale.
	rewritten, err := ev.DrillInRewrite(q, pres, "d3")
	if err != nil {
		t.Fatal(err)
	}
	qIn, err := core.DrillIn(q, "d3")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ev.Answer(qIn)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Len() != rewritten.Len() {
		t.Fatalf("drill-in sizes differ: %d vs %d", direct.Len(), rewritten.Len())
	}
}

func TestVideoConfigValidation(t *testing.T) {
	bad := []VideoConfig{
		{Videos: 0, Websites: 1, SitesPerVideo: 1, BrowsersPerSite: 1},
		{Videos: 1, Websites: 0, SitesPerVideo: 1, BrowsersPerSite: 1},
		{Videos: 1, Websites: 1, SitesPerVideo: 0, BrowsersPerSite: 1},
		{Videos: 1, Websites: 1, SitesPerVideo: 1, BrowsersPerSite: 0},
	}
	for i, cfg := range bad {
		if _, err := cfg.Generate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDimValueKinds(t *testing.T) {
	// Ages and years are integer literals; the rest IRIs.
	if !DimValue(0, 3).IsLiteral() {
		t.Error("age must be a literal")
	}
	if !DimValue(3, 3).IsLiteral() {
		t.Error("memberSince must be a literal")
	}
	if !DimValue(1, 3).IsIRI() {
		t.Error("city must be an IRI")
	}
	for d := range DimensionProps {
		if DimCardinality(d) < 2 {
			t.Errorf("dimension %d cardinality too small", d)
		}
		// Distinct values really are distinct.
		seen := map[rdf.Term]bool{}
		for v := 0; v < DimCardinality(d); v++ {
			val := DimValue(d, v)
			if seen[val] {
				t.Errorf("dimension %d value %d duplicates an earlier one", d, v)
			}
			seen[val] = true
		}
	}
}

func TestBloggerSchemaRejectsBadDims(t *testing.T) {
	if _, err := BloggerSchema(0); err == nil {
		t.Error("0 dims accepted")
	}
	if _, err := BloggerSchema(99); err == nil {
		t.Error("99 dims accepted")
	}
	for dims := 1; dims <= 6; dims++ {
		s, err := BloggerSchema(dims)
		if err != nil {
			t.Fatalf("dims=%d: %v", dims, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("dims=%d schema invalid: %v", dims, err)
		}
	}
}

func TestGeneratedGraphValidTriples(t *testing.T) {
	cfg := DefaultBloggerConfig()
	cfg.Bloggers = 100
	base, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	d := base.Dict()
	n := 0
	base.ForEach(store.Pattern{}, func(tr store.IDTriple) bool {
		term, ok := d.DecodeTriple(tr.S, tr.P, tr.O)
		if !ok || !term.IsValid() {
			t.Fatalf("invalid generated triple %v (%v)", term, ok)
		}
		n++
		return true
	})
	if n != base.Len() {
		t.Errorf("iterated %d triples, store reports %d", n, base.Len())
	}
}

func BenchmarkGenerateBlogger(b *testing.B) {
	cfg := DefaultBloggerConfig()
	cfg.Bloggers = 5000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := cfg.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializeSchema(b *testing.B) {
	cfg := DefaultBloggerConfig()
	cfg.Bloggers = 5000
	base, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	rdfs.Saturate(base)
	schema, err := BloggerSchema(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := schema.Materialize(base); err != nil {
			b.Fatal(err)
		}
	}
}
