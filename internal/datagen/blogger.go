// Package datagen produces deterministic synthetic RDF datasets modeled
// on the paper's two running scenarios: the blogger analytical schema of
// Figure 1 and the video/website schema of Figure 3.
//
// The generators make the two structural features that motivate the
// paper's algorithms first-class parameters:
//
//   - multi-valuedness: the probability that a fact carries a second
//     value along a dimension (MultiValueProb), which is what makes the
//     naive drill-out incorrect; and
//   - heterogeneity: the probability that a fact lacks a property
//     entirely (MissingProb), the hallmark of RDF data that analytical
//     schemas are designed to absorb.
//
// All randomness flows from a caller-supplied seed, so every experiment
// is reproducible.
package datagen

import (
	"fmt"
	"math/rand"

	"rdfcube/internal/agg"
	"rdfcube/internal/ans"
	"rdfcube/internal/core"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// NS is the namespace of all generated resources.
const NS = "http://rdfcube.example.org/"

// Prefixes returns the parser prefix table for generated data (the empty
// prefix maps to NS).
func Prefixes() sparql.Prefixes {
	p := sparql.DefaultPrefixes()
	p[""] = NS
	return p
}

func res(local string) rdf.Term { return rdf.NewIRI(NS + local) }

// DimensionProps lists the blogger dimension properties in the order the
// n-dimensional classifier uses them. Up to 6 dimensions are supported.
var DimensionProps = []string{
	"hasAge", "livesIn", "hasGender", "memberSince", "usesLanguage", "hasOccupation",
}

// dimCardinality gives each dimension's value-domain size.
var dimCardinality = []int{50, 30, 3, 20, 12, 25}

// BloggerConfig parameterizes the blogger dataset generator.
type BloggerConfig struct {
	// Seed drives all randomness; equal configs generate equal graphs.
	Seed int64
	// Bloggers is the number of blogger facts.
	Bloggers int
	// PostsPerBlogger is the mean number of posts per blogger (the
	// actual count is uniform in [1, 2*mean-1], at least 1).
	PostsPerBlogger int
	// Sites is the number of distinct sites posts can appear on.
	Sites int
	// Dimensions is how many of DimensionProps each blogger gets values
	// for (2..6). The n-dimensional classifier of the benchmarks uses
	// the same count.
	Dimensions int
	// MultiValueProb is the probability that a blogger has a second,
	// distinct value along each dimension.
	MultiValueProb float64
	// MissingProb is the probability that a blogger lacks a dimension
	// value entirely (heterogeneity). Such bloggers do not appear in
	// classifiers mentioning that dimension.
	MissingProb float64
	// SubPropertyShare is the fraction of livesIn facts asserted through
	// the base-level :dwellsIn property, which is declared an
	// rdfs:subPropertyOf :livesIn; reaching them requires RDFS
	// saturation before materializing the analytical schema.
	SubPropertyShare float64
}

// DefaultBloggerConfig returns a small, fully-featured configuration.
func DefaultBloggerConfig() BloggerConfig {
	return BloggerConfig{
		Seed:             1,
		Bloggers:         1000,
		PostsPerBlogger:  4,
		Sites:            50,
		Dimensions:       2,
		MultiValueProb:   0.1,
		MissingProb:      0.05,
		SubPropertyShare: 0.2,
	}
}

// Validate checks configuration bounds.
func (c BloggerConfig) Validate() error {
	if c.Bloggers <= 0 {
		return fmt.Errorf("datagen: Bloggers must be positive")
	}
	if c.Dimensions < 1 || c.Dimensions > len(DimensionProps) {
		return fmt.Errorf("datagen: Dimensions must be in [1,%d]", len(DimensionProps))
	}
	if c.PostsPerBlogger < 1 {
		return fmt.Errorf("datagen: PostsPerBlogger must be at least 1")
	}
	if c.Sites < 1 {
		return fmt.Errorf("datagen: Sites must be at least 1")
	}
	for _, p := range []float64{c.MultiValueProb, c.MissingProb, c.SubPropertyShare} {
		if p < 0 || p > 1 {
			return fmt.Errorf("datagen: probabilities must be in [0,1]")
		}
	}
	return nil
}

// dimValue returns the v-th value of dimension dim as a term. Age and
// memberSince are integer literals; the rest are IRIs.
func dimValue(dim, v int) rdf.Term {
	switch DimensionProps[dim] {
	case "hasAge":
		return rdf.NewInt(int64(18 + v))
	case "memberSince":
		return rdf.NewInt(int64(2000 + v))
	default:
		return res(fmt.Sprintf("%s_val%d", DimensionProps[dim], v))
	}
}

// DimValue exposes dimension value construction to benchmarks that build
// Σ restrictions; dim indexes DimensionProps and v the value domain.
func DimValue(dim, v int) rdf.Term { return dimValue(dim, v) }

// DimCardinality reports the value-domain size of dimension dim.
func DimCardinality(dim int) int { return dimCardinality[dim] }

// Generate builds the base RDF graph. The graph contains, per blogger:
// an rdf:type :BlogAuthor triple (the analysis class :Blogger is defined
// over it), dimension values, posts with :postedOn and :hasWordCount,
// and — for a SubPropertyShare fraction — :dwellsIn instead of :livesIn
// plus the schema triple making :dwellsIn a sub-property of :livesIn.
func (c BloggerConfig) Generate() (*store.Store, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.Triple{S: s, P: p, O: o}) }

	blogAuthor := res("BlogAuthor")
	wrotePost := res("wrotePost")
	postedOn := res("postedOn")
	hasWordCount := res("hasWordCount")
	dwellsIn := res("dwellsIn")
	livesIn := res("livesIn")

	// Schema triple enabling the RDFS-saturation path.
	add(dwellsIn, rdf.SubPropertyOf, livesIn)

	postID := 0
	for b := 0; b < c.Bloggers; b++ {
		u := res(fmt.Sprintf("user%d", b))
		add(u, rdf.Type, blogAuthor)
		for dim := 0; dim < c.Dimensions; dim++ {
			if rng.Float64() < c.MissingProb {
				continue // heterogeneous: no value for this dimension
			}
			prop := res(DimensionProps[dim])
			card := dimCardinality[dim]
			v := rng.Intn(card)
			emit := func(val rdf.Term) {
				if DimensionProps[dim] == "livesIn" && rng.Float64() < c.SubPropertyShare {
					add(u, dwellsIn, val)
				} else {
					add(u, prop, val)
				}
			}
			emit(dimValue(dim, v))
			if rng.Float64() < c.MultiValueProb {
				w := (v + 1 + rng.Intn(card-1)) % card // distinct second value
				emit(dimValue(dim, w))
			}
		}
		nPosts := 1 + rng.Intn(2*c.PostsPerBlogger-1)
		for p := 0; p < nPosts; p++ {
			post := res(fmt.Sprintf("post%d", postID))
			postID++
			add(u, wrotePost, post)
			add(post, postedOn, res(fmt.Sprintf("site%d", rng.Intn(c.Sites))))
			add(post, hasWordCount, rdf.NewInt(int64(50+rng.Intn(1000))))
		}
	}
	return st, nil
}

// BloggerSchema returns the analytical schema of Figure 1, restricted to
// the classes and properties the generator populates. Node and edge
// queries are BGPs over the (saturated) base graph.
func BloggerSchema(dimensions int) (*ans.Schema, error) {
	if dimensions < 1 || dimensions > len(DimensionProps) {
		return nil, fmt.Errorf("datagen: dimensions must be in [1,%d]", len(DimensionProps))
	}
	px := Prefixes()
	s := &ans.Schema{Name: "bloggers"}
	s.AddNode(res("Blogger"), sparql.MustParseDatalog("n(x) :- x rdf:type :BlogAuthor", px))
	s.AddNode(res("BlogPost"), sparql.MustParseDatalog("n(p) :- u :wrotePost p", px))
	s.AddNode(res("Site"), sparql.MustParseDatalog("n(s) :- p :postedOn s", px))
	s.AddNode(res("Value"), sparql.MustParseDatalog("n(w) :- p :hasWordCount w", px))
	s.AddEdge(res("wrotePost"), res("Blogger"), res("BlogPost"),
		sparql.MustParseDatalog("e(u, p) :- u rdf:type :BlogAuthor, u :wrotePost p", px))
	s.AddEdge(res("postedOn"), res("BlogPost"), res("Site"),
		sparql.MustParseDatalog("e(p, s) :- p :postedOn s", px))
	s.AddEdge(res("hasWordCount"), res("BlogPost"), res("Value"),
		sparql.MustParseDatalog("e(p, w) :- p :hasWordCount w", px))
	for dim := 0; dim < dimensions; dim++ {
		prop := DimensionProps[dim]
		s.AddEdge(res(prop), res("Blogger"), res("Value"),
			sparql.MustParseDatalog(
				fmt.Sprintf("e(u, v) :- u rdf:type :BlogAuthor, u :%s v", prop), px))
	}
	return s, nil
}

// BloggerQuery builds the n-dimensional benchmark AnQ over the blogger
// AnS instance: classify bloggers by their first `dimensions` dimension
// properties; the measure depends on aggName:
//
//	count          -> sites the blogger posts on (Example 1)
//	sum, avg, ...  -> word counts of the blogger's posts (Example 4)
func BloggerQuery(dimensions int, aggName string) (*core.Query, error) {
	if dimensions < 1 || dimensions > len(DimensionProps) {
		return nil, fmt.Errorf("datagen: dimensions must be in [1,%d]", len(DimensionProps))
	}
	f, err := agg.ByName(aggName)
	if err != nil {
		return nil, err
	}
	px := Prefixes()
	head := "x"
	body := "x rdf:type :Blogger"
	for dim := 0; dim < dimensions; dim++ {
		head += fmt.Sprintf(", d%d", dim)
		body += fmt.Sprintf(", x :%s d%d", DimensionProps[dim], dim)
	}
	c, err := sparql.ParseDatalog(fmt.Sprintf("c(%s) :- %s", head, body), px)
	if err != nil {
		return nil, err
	}
	var m *sparql.Query
	if aggName == "count" || aggName == "countdistinct" {
		m, err = sparql.ParseDatalog(
			"m(x, vsite) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn vsite", px)
	} else {
		m, err = sparql.ParseDatalog(
			"m(x, vwords) :- x rdf:type :Blogger, x :wrotePost p, p :hasWordCount vwords", px)
	}
	if err != nil {
		return nil, err
	}
	return core.New(c, m, f)
}
