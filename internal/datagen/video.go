package datagen

import (
	"fmt"
	"math/rand"

	"rdfcube/internal/agg"
	"rdfcube/internal/ans"
	"rdfcube/internal/core"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// VideoConfig parameterizes the Figure 3 (video/website) dataset
// generator, the workload of the DRILL-IN experiments: videos posted on
// websites, websites carrying a URL and one or more supported browsers.
type VideoConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Videos is the number of video facts.
	Videos int
	// Websites is the number of websites.
	Websites int
	// SitesPerVideo is the mean number of websites a video is posted on
	// (multi-valued classifier path).
	SitesPerVideo int
	// BrowsersPerSite is the mean number of supported browsers per
	// website (the drilled-in dimension's multi-valuedness).
	BrowsersPerSite int
}

// DefaultVideoConfig returns a small configuration.
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{Seed: 1, Videos: 1000, Websites: 100, SitesPerVideo: 2, BrowsersPerSite: 2}
}

// browsers is the browser value domain.
var browsers = []string{"firefox", "chrome", "safari", "edge", "opera"}

// Validate checks configuration bounds.
func (c VideoConfig) Validate() error {
	if c.Videos <= 0 || c.Websites <= 0 {
		return fmt.Errorf("datagen: Videos and Websites must be positive")
	}
	if c.SitesPerVideo < 1 || c.BrowsersPerSite < 1 {
		return fmt.Errorf("datagen: per-entity means must be at least 1")
	}
	return nil
}

// Generate builds the video base graph.
func (c VideoConfig) Generate() (*store.Store, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.Triple{S: s, P: p, O: o}) }

	videoClass := res("VideoItem")
	postedOn := res("postedOn")
	hasUrl := res("hasUrl")
	supportsBrowser := res("supportsBrowser")
	viewNum := res("viewNum")

	for w := 0; w < c.Websites; w++ {
		site := res(fmt.Sprintf("website%d", w))
		add(site, hasUrl, res(fmt.Sprintf("URL%d", w)))
		nb := 1 + rng.Intn(2*c.BrowsersPerSite-1)
		if nb > len(browsers) {
			nb = len(browsers)
		}
		perm := rng.Perm(len(browsers))
		for i := 0; i < nb; i++ {
			add(site, supportsBrowser, res(browsers[perm[i]]))
		}
	}
	for v := 0; v < c.Videos; v++ {
		video := res(fmt.Sprintf("video%d", v))
		add(video, rdf.Type, videoClass)
		add(video, viewNum, rdf.NewInt(int64(rng.Intn(100000))))
		ns := 1 + rng.Intn(2*c.SitesPerVideo-1)
		if ns > c.Websites {
			ns = c.Websites
		}
		perm := rng.Perm(c.Websites)
		for i := 0; i < ns; i++ {
			add(video, postedOn, res(fmt.Sprintf("website%d", perm[i])))
		}
	}
	return st, nil
}

// VideoSchema returns the analytical schema for the video scenario.
func VideoSchema() *ans.Schema {
	px := Prefixes()
	s := &ans.Schema{Name: "videos"}
	s.AddNode(res("Video"), sparql.MustParseDatalog("n(x) :- x rdf:type :VideoItem", px))
	s.AddNode(res("Website"), sparql.MustParseDatalog("n(w) :- x :postedOn w", px))
	s.AddNode(res("Value"), sparql.MustParseDatalog("n(v) :- x :viewNum v", px))
	s.AddEdge(res("postedOn"), res("Video"), res("Website"),
		sparql.MustParseDatalog("e(x, w) :- x rdf:type :VideoItem, x :postedOn w", px))
	s.AddEdge(res("hasUrl"), res("Website"), res("Value"),
		sparql.MustParseDatalog("e(w, u) :- w :hasUrl u", px))
	s.AddEdge(res("supportsBrowser"), res("Website"), res("Value"),
		sparql.MustParseDatalog("e(w, b) :- w :supportsBrowser b", px))
	s.AddEdge(res("viewNum"), res("Video"), res("Value"),
		sparql.MustParseDatalog("e(x, v) :- x rdf:type :VideoItem, x :viewNum v", px))
	return s
}

// VideoQuery builds the Example 6 AnQ over the video AnS instance: sum
// of view counts per website URL, with the supported browser left as an
// existential variable — the drill-in target.
func VideoQuery(aggName string) (*core.Query, error) {
	f, err := agg.ByName(aggName)
	if err != nil {
		return nil, err
	}
	px := Prefixes()
	c, err := sparql.ParseDatalog(
		"c(x, d2) :- x rdf:type :Video, x :postedOn d1, d1 :hasUrl d2, d1 :supportsBrowser d3", px)
	if err != nil {
		return nil, err
	}
	m, err := sparql.ParseDatalog(
		"m(x, v) :- x rdf:type :Video, x :viewNum v", px)
	if err != nil {
		return nil, err
	}
	return core.New(c, m, f)
}
