// Package sparqlagg implements the SPARQL 1.1 grouping-and-aggregation
// fragment the paper's related-work section positions AnQs against:
//
//	SELECT ?age (COUNT(?site) AS ?n)
//	WHERE { ?x rdf:type :Blogger . ?x :hasAge ?age .
//	        ?x :wrotePost ?p . ?p :postedOn ?site }
//	GROUP BY ?age
//
// Semantics follow the SPARQL specification: the WHERE pattern is
// evaluated under bag semantics, solutions are partitioned by the GROUP
// BY variables, and the aggregate folds each partition's bindings of the
// aggregated variable.
//
// This is strictly less expressive than an analytical query: classifier
// and measure share one BGP, so one cannot count a blogger's posts while
// classifying the blogger by properties the posts lack, nor keep the
// per-fact measure-bag structure of Definition 1. The package exists (a)
// as a baseline the tests compare AnQs against, matching the paper's
// claim, and (b) because the rewriting optimizations apply to this
// restricted dialect too.
package sparqlagg

import (
	"fmt"
	"strings"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/bgp"
	"rdfcube/internal/dict"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// Query is a parsed SPARQL aggregate SELECT.
type Query struct {
	// GroupVars are the plain projected variables, which must equal the
	// GROUP BY list (SPARQL requires projected non-aggregates to be
	// grouped).
	GroupVars []string
	// Agg is the aggregation function.
	Agg agg.Func
	// Distinct applies within the aggregate (e.g. COUNT(DISTINCT ?v)).
	Distinct bool
	// AggVar is the aggregated variable; Alias the output column name.
	AggVar, Alias string
	// Where is the graph pattern.
	Where []sparql.TriplePattern
}

// Parse parses the supported fragment:
//
//	[PREFIX name: <iri>]...
//	SELECT ?g1 ?g2 (FUNC(?v) AS ?alias) WHERE { ... } GROUP BY ?g1 ?g2
//
// FUNC ∈ COUNT, SUM, AVG, MIN, MAX, optionally with DISTINCT inside
// COUNT. Exactly one aggregate expression is supported.
func Parse(text string) (*Query, error) {
	prefixes := sparql.DefaultPrefixes()
	rest := strings.TrimSpace(text)
	for {
		lower := strings.ToLower(rest)
		if !strings.HasPrefix(lower, "prefix") {
			break
		}
		line := rest[len("prefix"):]
		colon := strings.Index(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("sparqlagg: malformed PREFIX")
		}
		name := strings.TrimSpace(line[:colon])
		line = strings.TrimSpace(line[colon+1:])
		if !strings.HasPrefix(line, "<") {
			return nil, fmt.Errorf("sparqlagg: PREFIX needs <IRI>")
		}
		end := strings.Index(line, ">")
		if end < 0 {
			return nil, fmt.Errorf("sparqlagg: unterminated PREFIX IRI")
		}
		prefixes[name] = line[1:end]
		rest = strings.TrimSpace(line[end+1:])
	}
	lower := strings.ToLower(rest)
	if !strings.HasPrefix(lower, "select") {
		return nil, fmt.Errorf("sparqlagg: expected SELECT")
	}
	rest = strings.TrimSpace(rest[len("select"):])
	whereIdx := strings.Index(strings.ToLower(rest), "where")
	if whereIdx < 0 {
		return nil, fmt.Errorf("sparqlagg: missing WHERE")
	}
	q := &Query{}
	if err := q.parseProjection(rest[:whereIdx]); err != nil {
		return nil, err
	}
	rest = strings.TrimSpace(rest[whereIdx+len("where"):])
	open := strings.Index(rest, "{")
	close_ := strings.LastIndex(rest, "}")
	if open != 0 || close_ < 0 {
		return nil, fmt.Errorf("sparqlagg: WHERE clause must be braced")
	}
	body := strings.ReplaceAll(rest[open+1:close_], "\n", " ")
	inner, err := parseWhere(body, prefixes)
	if err != nil {
		return nil, err
	}
	q.Where = inner

	tail := strings.TrimSpace(rest[close_+1:])
	if tail == "" {
		if len(q.GroupVars) > 0 {
			return nil, fmt.Errorf("sparqlagg: projected variables %v require GROUP BY", q.GroupVars)
		}
	} else {
		lowerTail := strings.ToLower(tail)
		if !strings.HasPrefix(lowerTail, "group by") {
			return nil, fmt.Errorf("sparqlagg: unsupported clause %q", tail)
		}
		var groupBy []string
		for _, tok := range strings.Fields(tail[len("group by"):]) {
			if !strings.HasPrefix(tok, "?") {
				return nil, fmt.Errorf("sparqlagg: GROUP BY supports only variables, got %q", tok)
			}
			groupBy = append(groupBy, tok[1:])
		}
		if err := sameStringSets(q.GroupVars, groupBy); err != nil {
			return nil, err
		}
	}
	return q, q.validate()
}

// parseProjection handles "?g1 ?g2 (COUNT(DISTINCT ?v) AS ?alias)".
func (q *Query) parseProjection(s string) error {
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		switch {
		case s[0] == '?':
			end := strings.IndexAny(s, " \t(")
			if end < 0 {
				end = len(s)
			}
			q.GroupVars = append(q.GroupVars, s[1:end])
			s = strings.TrimSpace(s[end:])
		case s[0] == '(':
			depth := 0
			end := -1
			for i, r := range s {
				if r == '(' {
					depth++
				}
				if r == ')' {
					depth--
					if depth == 0 {
						end = i
						break
					}
				}
			}
			if end < 0 {
				return fmt.Errorf("sparqlagg: unbalanced parentheses in projection")
			}
			if err := q.parseAggExpr(s[1:end]); err != nil {
				return err
			}
			s = strings.TrimSpace(s[end+1:])
		default:
			return fmt.Errorf("sparqlagg: unexpected token at %q", s)
		}
	}
	return nil
}

// parseAggExpr handles "COUNT(DISTINCT ?v) AS ?alias".
func (q *Query) parseAggExpr(s string) error {
	if q.Agg != nil {
		return fmt.Errorf("sparqlagg: only one aggregate expression is supported")
	}
	asIdx := strings.LastIndex(strings.ToLower(s), " as ")
	if asIdx < 0 {
		return fmt.Errorf("sparqlagg: aggregate needs an AS alias in %q", s)
	}
	alias := strings.TrimSpace(s[asIdx+4:])
	if !strings.HasPrefix(alias, "?") {
		return fmt.Errorf("sparqlagg: alias must be a variable, got %q", alias)
	}
	q.Alias = alias[1:]
	expr := strings.TrimSpace(s[:asIdx])
	open := strings.Index(expr, "(")
	close_ := strings.LastIndex(expr, ")")
	if open < 0 || close_ < open {
		return fmt.Errorf("sparqlagg: malformed aggregate %q", expr)
	}
	funcName := strings.ToLower(strings.TrimSpace(expr[:open]))
	arg := strings.TrimSpace(expr[open+1 : close_])
	if strings.HasPrefix(strings.ToLower(arg), "distinct ") {
		q.Distinct = true
		arg = strings.TrimSpace(arg[len("distinct "):])
	}
	if !strings.HasPrefix(arg, "?") {
		return fmt.Errorf("sparqlagg: aggregate argument must be a variable, got %q", arg)
	}
	q.AggVar = arg[1:]
	f, err := agg.ByName(funcName)
	if err != nil {
		return fmt.Errorf("sparqlagg: %w", err)
	}
	if q.Distinct && f.Name() != "count" {
		return fmt.Errorf("sparqlagg: DISTINCT is only supported inside COUNT")
	}
	if q.Distinct {
		f = agg.CountDistinct
	}
	q.Agg = f
	return nil
}

func (q *Query) validate() error {
	if q.Agg == nil {
		return fmt.Errorf("sparqlagg: query has no aggregate expression")
	}
	if len(q.Where) == 0 {
		return fmt.Errorf("sparqlagg: empty WHERE clause")
	}
	bodyVars := map[string]bool{}
	for _, tp := range q.Where {
		for _, v := range tp.Vars() {
			bodyVars[v] = true
		}
	}
	for _, v := range append(append([]string(nil), q.GroupVars...), q.AggVar) {
		if !bodyVars[v] {
			return fmt.Errorf("sparqlagg: variable ?%s not bound in WHERE", v)
		}
	}
	for _, v := range q.GroupVars {
		if v == q.Alias {
			return fmt.Errorf("sparqlagg: alias ?%s collides with a grouped variable", v)
		}
	}
	return nil
}

func sameStringSets(a, b []string) error {
	as, bs := map[string]bool{}, map[string]bool{}
	for _, v := range a {
		as[v] = true
	}
	for _, v := range b {
		bs[v] = true
	}
	for v := range as {
		if !bs[v] {
			return fmt.Errorf("sparqlagg: projected ?%s missing from GROUP BY", v)
		}
	}
	for v := range bs {
		if !as[v] {
			return fmt.Errorf("sparqlagg: GROUP BY ?%s not projected", v)
		}
	}
	return nil
}

// parseWhere reuses the sparql package pattern syntax via a synthetic
// datalog query (the datalog body grammar is identical).
func parseWhere(body string, prefixes sparql.Prefixes) ([]sparql.TriplePattern, error) {
	var atoms []string
	for _, stmt := range sparql.SplitStatements(body) {
		stmt = strings.TrimSpace(stmt)
		if stmt != "" {
			atoms = append(atoms, stmt)
		}
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("sparqlagg: empty WHERE clause")
	}
	// Each pattern's first variable serves as a head var so the synthetic
	// query validates; we only keep the patterns.
	synthetic := "q(" + firstVar(atoms) + ") :- " + strings.Join(atoms, ", ")
	q, err := sparql.ParseDatalog(synthetic, prefixes)
	if err != nil {
		return nil, fmt.Errorf("sparqlagg: WHERE clause: %w", err)
	}
	return q.Patterns, nil
}

// firstVar extracts some variable token from the atoms for the synthetic
// head.
func firstVar(atoms []string) string {
	for _, atom := range atoms {
		for _, tok := range strings.Fields(atom) {
			if strings.HasPrefix(tok, "?") {
				return tok[1:]
			}
		}
	}
	return "x"
}

// Eval answers the aggregate query over st: evaluate WHERE under bag
// semantics, group by GroupVars, aggregate AggVar. The result columns
// are GroupVars followed by Alias.
func Eval(st *store.Store, q *Query) (*algebra.Relation, error) {
	inner := &sparql.Query{
		Name:     "w",
		Head:     append(append([]string(nil), q.GroupVars...), q.AggVar),
		Patterns: q.Where,
	}
	if err := inner.Validate(); err != nil {
		return nil, err
	}
	res, err := bgp.EvalBag(st, inner)
	if err != nil {
		return nil, err
	}
	rel := algebra.NewRelation(res.Vars...)
	for _, row := range res.Rows {
		r := make(algebra.Row, len(row))
		for i, id := range row {
			r[i] = algebra.TermV(id)
		}
		rel.Append(r)
	}
	resolve := func(id dict.ID) (float64, bool) {
		t, ok := st.Dict().Decode(id)
		if !ok {
			return 0, false
		}
		return t.AsFloat()
	}
	return rel.GroupAggregate(q.GroupVars, q.AggVar, q.Alias, q.Agg, resolve), nil
}
