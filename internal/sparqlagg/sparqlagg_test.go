package sparqlagg

import (
	"sort"
	"strings"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

const ns = "http://example.org/"

func iri(s string) rdf.Term { return rdf.NewIRI(ns + s) }

// bloggerGraph reproduces the Example 1/2 instance.
func bloggerGraph() *store.Store {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	users := []struct {
		name  string
		age   int64
		city  string
		sites []string
	}{
		{"user1", 28, "Madrid", []string{"s1", "s1", "s2"}},
		{"user3", 35, "NY", []string{"s2"}},
		{"user4", 35, "NY", []string{"s3"}},
	}
	post := 0
	for _, u := range users {
		t := iri(u.name)
		add(t, rdf.Type, iri("Blogger"))
		add(t, iri("hasAge"), rdf.NewInt(u.age))
		add(t, iri("livesIn"), iri(u.city))
		for _, s := range u.sites {
			p := iri("post" + u.name + string(rune('a'+post)))
			post++
			add(t, iri("wrotePost"), p)
			add(p, iri("postedOn"), iri(s))
		}
	}
	return st
}

const queryText = `
PREFIX ex: <http://example.org/>
SELECT ?age ?city (COUNT(?site) AS ?n)
WHERE { ?x rdf:type ex:Blogger . ?x ex:hasAge ?age . ?x ex:livesIn ?city .
        ?x ex:wrotePost ?p . ?p ex:postedOn ?site }
GROUP BY ?age ?city`

func TestParse(t *testing.T) {
	q, err := Parse(queryText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.GroupVars) != 2 || q.GroupVars[0] != "age" || q.GroupVars[1] != "city" {
		t.Errorf("GroupVars = %v", q.GroupVars)
	}
	if q.Agg.Name() != "count" || q.AggVar != "site" || q.Alias != "n" {
		t.Errorf("aggregate = %s(%s) AS %s", q.Agg.Name(), q.AggVar, q.Alias)
	}
	if len(q.Where) != 5 {
		t.Errorf("%d patterns, want 5", len(q.Where))
	}
}

func TestEvalMatchesPaperExample(t *testing.T) {
	st := bloggerGraph()
	q, err := Parse(queryText)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	// SPARQL counts per (age, city): 28/Madrid → 3 sites, 35/NY → 2.
	if out.Len() != 2 {
		t.Fatalf("groups = %d, want 2: %v", out.Len(), out.Rows)
	}
	vals := map[string]float64{}
	for _, row := range out.Rows {
		ageT, _ := st.Dict().Decode(row[0].ID)
		cityT, _ := st.Dict().Decode(row[1].ID)
		vals[ageT.Value()+"/"+cityT.Value()] = row[2].Num
	}
	if vals["28/"+ns+"Madrid"] != 3 || vals["35/"+ns+"NY"] != 2 {
		t.Errorf("vals = %v", vals)
	}
}

func TestEvalAgreesWithAnQWhenBodiesCoincide(t *testing.T) {
	// When the AnQ's classifier and measure share the SPARQL body, the
	// two formalisms agree — the "restricted case" of the related-work
	// discussion.
	st := bloggerGraph()
	q, err := Parse(queryText)
	if err != nil {
		t.Fatal(err)
	}
	sparqlOut, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}

	px := sparql.DefaultPrefixes()
	px[""] = ns
	c := sparql.MustParseDatalog(
		"c(x, age, city) :- x rdf:type :Blogger, x :hasAge age, x :livesIn city", px)
	m := sparql.MustParseDatalog(
		"m(x, site) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn site", px)
	anq, err := core.New(c, m, agg.Count)
	if err != nil {
		t.Fatal(err)
	}
	anqOut, err := core.NewEvaluator(st).Answer(anq)
	if err != nil {
		t.Fatal(err)
	}
	// Same cells, same aggregates (schemas differ in column naming only).
	if sparqlOut.Len() != anqOut.Len() {
		t.Fatalf("SPARQL %d groups vs AnQ %d cells", sparqlOut.Len(), anqOut.Len())
	}
	key := func(rel *algebra.Relation) []string {
		var out []string
		for _, row := range rel.Rows {
			s := ""
			for _, v := range row[:len(row)-1] {
				s += v.String() + "|"
			}
			s += row[len(row)-1].String()
			out = append(out, s)
		}
		sort.Strings(out)
		return out
	}
	a, b := key(sparqlOut), key(anqOut)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestAnQMoreExpressiveThanSPARQL(t *testing.T) {
	// A blogger without posts: the single-BGP SPARQL query silently
	// drops them from all groups, while an AnQ with a *separate* measure
	// also drops them (Definition 1) — but an AnQ can classify on
	// attributes the measure path lacks. Here: classify by age only
	// (user5 has an age but no city); SPARQL's one BGP requires the city
	// pattern and loses user5's sites.
	st := bloggerGraph()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	add(iri("user5"), rdf.Type, iri("Blogger"))
	add(iri("user5"), iri("hasAge"), rdf.NewInt(28))
	// no livesIn for user5
	add(iri("user5"), iri("wrotePost"), iri("p9"))
	add(iri("p9"), iri("postedOn"), iri("s9"))

	// SPARQL: grouping by age but the WHERE still needs livesIn to also
	// return the city-classified cube elsewhere — model the restricted
	// query that an analyst would write with one BGP:
	q, err := Parse(`
		PREFIX ex: <http://example.org/>
		SELECT ?age (COUNT(?site) AS ?n)
		WHERE { ?x rdf:type ex:Blogger . ?x ex:hasAge ?age . ?x ex:livesIn ?city .
		        ?x ex:wrotePost ?p . ?p ex:postedOn ?site }
		GROUP BY ?age`)
	if err != nil {
		t.Fatal(err)
	}
	sparqlOut, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	// AnQ: classifier needs only the age; measure is independent.
	px := sparql.DefaultPrefixes()
	px[""] = ns
	c := sparql.MustParseDatalog("c(x, age) :- x rdf:type :Blogger, x :hasAge age", px)
	m := sparql.MustParseDatalog(
		"m(x, site) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn site", px)
	anq, err := core.New(c, m, agg.Count)
	if err != nil {
		t.Fatal(err)
	}
	anqOut, err := core.NewEvaluator(st).Answer(anq)
	if err != nil {
		t.Fatal(err)
	}
	get := func(rel *algebra.Relation, age string) float64 {
		for _, row := range rel.Rows {
			t, _ := st.Dict().Decode(row[0].ID)
			if t.Value() == age {
				return row[len(row)-1].Num
			}
		}
		return -1
	}
	// The AnQ sees user5's site (28 → 3+1 = 4); SPARQL misses it (3).
	if got := get(anqOut, "28"); got != 4 {
		t.Errorf("AnQ count for age 28 = %g, want 4", got)
	}
	if got := get(sparqlOut, "28"); got != 3 {
		t.Errorf("SPARQL count for age 28 = %g, want 3 (city pattern drops user5)", got)
	}
}

func TestCountDistinct(t *testing.T) {
	st := bloggerGraph()
	q, err := Parse(`
		PREFIX ex: <http://example.org/>
		SELECT ?age (COUNT(DISTINCT ?site) AS ?n)
		WHERE { ?x rdf:type ex:Blogger . ?x ex:hasAge ?age .
		        ?x ex:wrotePost ?p . ?p ex:postedOn ?site }
		GROUP BY ?age`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Fatal("DISTINCT not detected")
	}
	out, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range out.Rows {
		ageT, _ := st.Dict().Decode(row[0].ID)
		vals[ageT.Value()] = row[1].Num
	}
	// user1 posts on s1,s1,s2 → 2 distinct; 35-year-olds on s2,s3 → 2.
	if vals["28"] != 2 || vals["35"] != 2 {
		t.Errorf("distinct counts = %v", vals)
	}
}

func TestGlobalAggregateNoGroupBy(t *testing.T) {
	st := bloggerGraph()
	q, err := Parse(`
		PREFIX ex: <http://example.org/>
		SELECT (COUNT(?site) AS ?n)
		WHERE { ?x ex:wrotePost ?p . ?p ex:postedOn ?site }`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][0].Num != 5 {
		t.Errorf("global count = %v", out.Rows)
	}
}

func TestSumAvg(t *testing.T) {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	add(iri("a"), iri("grp"), iri("g1"))
	add(iri("a"), iri("val"), rdf.NewInt(10))
	add(iri("b"), iri("grp"), iri("g1"))
	add(iri("b"), iri("val"), rdf.NewInt(20))
	add(iri("c"), iri("grp"), iri("g2"))
	add(iri("c"), iri("val"), rdf.NewInt(7))
	for _, tc := range []struct {
		fn   string
		want map[string]float64
	}{
		{"SUM", map[string]float64{"g1": 30, "g2": 7}},
		{"AVG", map[string]float64{"g1": 15, "g2": 7}},
		{"MIN", map[string]float64{"g1": 10, "g2": 7}},
		{"MAX", map[string]float64{"g1": 20, "g2": 7}},
	} {
		q, err := Parse(`
			PREFIX ex: <http://example.org/>
			SELECT ?g (` + tc.fn + `(?v) AS ?out)
			WHERE { ?x ex:grp ?g . ?x ex:val ?v }
			GROUP BY ?g`)
		if err != nil {
			t.Fatalf("%s: %v", tc.fn, err)
		}
		out, err := Eval(st, q)
		if err != nil {
			t.Fatalf("%s: %v", tc.fn, err)
		}
		for _, row := range out.Rows {
			g, _ := st.Dict().Decode(row[0].ID)
			local := strings.TrimPrefix(g.Value(), ns)
			if row[1].Num != tc.want[local] {
				t.Errorf("%s(%s) = %g, want %g", tc.fn, local, row[1].Num, tc.want[local])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT ?g (COUNT(?v) AS ?n) WHERE { ?x <http://e/p> ?v }`,                                  // ?g unbound... actually bound check
		`SELECT ?g (COUNT(?v) AS ?n) WHERE { ?x <http://e/p> ?v . ?x <http://e/g> ?g }`,             // missing GROUP BY
		`SELECT (COUNT(?v) AS ?n) (SUM(?v) AS ?m) WHERE { ?x <http://e/p> ?v }`,                     // two aggregates
		`SELECT (MEDIAN(?v) AS ?n) WHERE { ?x <http://e/p> ?v }`,                                    // unknown function
		`SELECT (SUM(DISTINCT ?v) AS ?n) WHERE { ?x <http://e/p> ?v }`,                              // DISTINCT outside COUNT
		`SELECT (COUNT(?v) AS ?n) WHERE { ?x <http://e/p> ?w }`,                                     // agg var unbound
		`SELECT (COUNT(?v)) WHERE { ?x <http://e/p> ?v }`,                                           // missing AS
		`SELECT ?v (COUNT(?x) AS ?v) WHERE { ?x <http://e/p> ?v } GROUP BY ?v`,                      // alias collision
		`SELECT (COUNT(?v) AS ?n) WHERE { ?x <http://e/p> ?v } ORDER BY ?n`,                         // unsupported clause
		`SELECT (COUNT(?v) AS ?n) FROM <http://g> WHERE { ?x <http://e/p> ?v }`,                     // FROM unsupported
		`SELECT ?g (COUNT(?v) AS ?n) WHERE { ?x <http://e/g> ?g . ?x <http://e/p> ?v } GROUP BY ?h`, // GROUP BY mismatch
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("accepted malformed query %q", text)
		}
	}
}

func TestIRIWithDotsInWhere(t *testing.T) {
	// Full IRIs contain dots; the statement splitter must not break them.
	st := store.New()
	st.Add(rdf.NewTriple(iri("a"), rdf.NewIRI("http://www.w3.org/x"), rdf.NewInt(1)))
	q, err := Parse(`
		SELECT (COUNT(?v) AS ?n)
		WHERE { ?x <http://www.w3.org/x> ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][0].Num != 1 {
		t.Errorf("count = %v", out.Rows)
	}
}
