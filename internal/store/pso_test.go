package store

// Tests of the fourth (PSO) permutation: construction at Freeze time,
// the predicate-keyed subject cursor over frozen and frozen+delta
// stores, snapshot roundtrip, the rebuild fallback for snapshots that
// predate the section, and the zero-copy PatternColumns views the batch
// engine's seed scans bulk-copy from.

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"rdfcube/internal/dict"
	"rdfcube/internal/persist"
)

// psoReference returns every triple with predicate p in (S, O) order —
// the order NewCursorPSO promises.
func psoReference(st *Store, p dict.ID) []IDTriple {
	var want []IDTriple
	st.ForEach(Pattern{P: p}, func(tr IDTriple) bool {
		want = append(want, tr)
		return true
	})
	sort.Slice(want, func(i, j int) bool {
		if want[i].S != want[j].S {
			return want[i].S < want[j].S
		}
		return want[i].O < want[j].O
	})
	return want
}

func TestPSOCursorMatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		fo, wd := cursorStores(rng, 80+rng.Intn(300))
		for _, st := range []*Store{fo, wd} {
			for p := dict.ID(26); p < 34; p++ {
				want := psoReference(st, p)
				var got []IDTriple
				last := dict.NoID
				for c := st.NewCursorPSO(p); c.Valid(); c.Next() {
					if len(got) > 0 && c.Key() < last {
						t.Fatalf("trial %d delta=%d p=%d: subject keys decreased (%d after %d)",
							trial, st.DeltaLen(), p, c.Key(), last)
					}
					last = c.Key()
					got = append(got, c.Triple())
				}
				if !triplesEqual(got, want) {
					t.Fatalf("trial %d delta=%d p=%d: PSO stream differs\n got:  %v\n want: %v",
						trial, st.DeltaLen(), p, got, want)
				}
				if c := st.NewCursorPSO(p); c.Len() != len(want) {
					t.Fatalf("p=%d: Len = %d, want %d", p, c.Len(), len(want))
				}
			}
		}
	}
}

// TestPSOCursorSeek: Seek(s) must land on the first triple whose
// subject is >= s, matching a linear scan over the (S, O)-ordered
// reference — the access pattern of the batch engine's stream steps.
func TestPSOCursorSeek(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		fo, wd := cursorStores(rng, 60+rng.Intn(300))
		for _, st := range []*Store{fo, wd} {
			p := dict.ID(26 + rng.Intn(8))
			all := psoReference(st, p)
			for v := dict.ID(0); v < 62; v += dict.ID(1 + rng.Intn(5)) {
				c := st.NewCursorPSO(p)
				c.Seek(v)
				wantIdx := -1
				for i, tr := range all {
					if tr.S >= v {
						wantIdx = i
						break
					}
				}
				if wantIdx < 0 {
					if c.Valid() {
						t.Fatalf("p=%d seek %d: want exhausted, got %+v", p, v, c.Triple())
					}
					continue
				}
				if !c.Valid() || c.Triple() != all[wantIdx] {
					t.Fatalf("p=%d seek %d: got %+v valid=%v, want %+v",
						p, v, c.Triple(), c.Valid(), all[wantIdx])
				}
			}
		}
	}
}

func TestPSOCursorUnfrozen(t *testing.T) {
	st := New()
	st.AddID(IDTriple{S: 1, P: 2, O: 3})
	if c := st.NewCursorPSO(2); c.Valid() {
		t.Fatal("PSO cursor on an unfrozen store must be exhausted")
	}
}

// permsEqual compares the full columnar content of two permutations.
func permsEqual(a, b *permIndex) bool {
	if a.len() != b.len() || len(a.keys) != len(b.keys) {
		return false
	}
	for i := range a.keys {
		if a.keys[i] != b.keys[i] || a.off[i+1] != b.off[i+1] {
			return false
		}
	}
	for i := 0; i < a.len(); i++ {
		if a.c1.at(i) != b.c1.at(i) || a.c2.at(i) != b.c2.at(i) || a.c3.at(i) != b.c3.at(i) {
			return false
		}
	}
	return true
}

func TestPSOSnapshotRoundtrip(t *testing.T) {
	st := buildTestStore(t, 150)
	st.Freeze()
	var buf bytes.Buffer
	if err := st.WriteFrozenSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !permsEqual(&st.frz.pso, &got.frz.pso) {
		t.Fatal("PSO permutation differs after snapshot roundtrip")
	}
	diffStores(t, st, got)
}

// TestPSOSnapshotOldFormatFallback hand-writes a v2 snapshot WITHOUT
// the PSO section — the format as written before the fourth permutation
// existed — and checks the loader rebuilds PSO from SPO, byte-identical
// to the natively-frozen index.
func TestPSOSnapshotOldFormatFallback(t *testing.T) {
	st := buildTestStore(t, 120)
	st.Freeze()
	terms := st.dict.Terms()
	fw := persist.NewFileWriter(snapshotMagic, snapshotVersionFrozen)
	var meta persist.Enc
	meta.Uvarint(st.Version().Base)
	meta.Uvarint(uint64(st.frz.spo.len()))
	meta.Uvarint(uint64(len(terms)))
	fw.Section(secMeta, meta.Bytes())
	var de persist.Enc
	de.Uvarint(uint64(len(terms)))
	persist.EncodeTermBlock(&de, terms)
	fw.Section(secDict, de.Bytes())
	for _, s := range []struct {
		id uint8
		px *permIndex
	}{{secSPO, &st.frz.spo}, {secPOS, &st.frz.pos}, {secOSP, &st.frz.osp}} {
		var e persist.Enc
		encodePerm(&e, s.px)
		fw.Section(s.id, e.Bytes())
	}
	var buf bytes.Buffer
	if err := fw.Write(&buf); err != nil {
		t.Fatal(err)
	}

	got, err := OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !permsEqual(&st.frz.pso, &got.frz.pso) {
		t.Fatal("rebuilt PSO differs from the natively-frozen permutation")
	}
	diffStores(t, st, got)

	// The rebuilt index must serve cursors like the original.
	var p dict.ID
	st.ForEach(Pattern{}, func(tr IDTriple) bool { p = tr.P; return false })
	want := psoReference(st, p)
	got2 := collectPSO(got, p)
	if !triplesEqual(got2, want) {
		t.Fatalf("PSO cursor over rebuilt index differs\n got:  %v\n want: %v", got2, want)
	}
}

func collectPSO(st *Store, p dict.ID) []IDTriple {
	var out []IDTriple
	for c := st.NewCursorPSO(p); c.Valid(); c.Next() {
		out = append(out, c.Triple())
	}
	return out
}

// TestPatternColumns: the zero-copy column views must agree with
// ForEach on every shape of a frozen store, and must refuse stores
// with a pending overlay or no frozen base.
func TestPatternColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	fo, wd := cursorStores(rng, 300)
	for _, pat := range randomPatterns(rng) {
		var want []IDTriple
		fo.ForEach(pat, func(tr IDTriple) bool {
			want = append(want, tr)
			return true
		})
		s, p, o, ok := fo.PatternColumns(pat)
		if !ok {
			t.Fatalf("pattern %+v: PatternColumns refused a frozen store", pat)
		}
		if len(s) != len(want) || len(p) != len(want) || len(o) != len(want) {
			t.Fatalf("pattern %+v: %d/%d/%d columns, want %d", pat, len(s), len(p), len(o), len(want))
		}
		for i, tr := range want {
			if s[i] != tr.S || p[i] != tr.P || o[i] != tr.O {
				t.Fatalf("pattern %+v row %d: (%d %d %d), want %+v", pat, i, s[i], p[i], o[i], tr)
			}
		}
	}
	if _, _, _, ok := wd.PatternColumns(Pattern{}); ok {
		t.Fatal("PatternColumns must refuse a store with a pending delta overlay")
	}
	if _, _, _, ok := New().PatternColumns(Pattern{}); ok {
		t.Fatal("PatternColumns must refuse an unfrozen store")
	}
}
