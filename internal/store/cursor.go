package store

// Ordered cursors over the frozen permutations — the access-path layer
// the bgp package's merge-join and leapfrog-triejoin operators run on.
//
// A Cursor iterates the triples matching one pattern in the permuted
// sorted order of the permutation frozen.patternRange resolves the
// pattern to, interleaving the frozen base range with the delta
// overlay's range of the same permutation: every operator sees ONE
// sorted stream, exactly the merged view Store.ForEach serves at the
// store's current (baseEpoch, deltaSeq) version. The cursor captures
// the base and overlay at construction, so it stays coherent for its
// lifetime as long as the caller serializes writes against reads (the
// store's usual contract; the server's RWMutex provides it).
//
// The cursor's key is the pattern's leading free component — the first
// column of the permutation not pinned by a bound position. A pattern
// with two bound positions therefore yields strictly increasing keys
// (the run's third column), which is what the join operators intersect:
//
//	(S, P) bound -> SPO run, key = O
//	(P, O) bound -> POS run, key = S
//	(S, O) bound -> OSP run, key = P
//
// Seek(v) advances to the first triple whose key is >= v without
// visiting the skipped triples: a galloping (exponential, then binary)
// search over the base column and the overlay — O(log gap), which is
// what makes leapfrog skip, not scan. Seeks only move forward.

import (
	"sort"

	"rdfcube/internal/dict"
)

// Cursor is an ordered, seekable iterator over the triples matching one
// pattern on a frozen store. Obtain one with Store.NewCursor; the zero
// Cursor is not meaningful.
type Cursor struct {
	// Base side: a [bpos, bhi) range of one frozen permutation; bcol is
	// the key column of that permutation (c1/c2/c3 per keyCol).
	px   *permIndex
	bcol column
	bpos int
	bhi  int

	// Spilled-run side: the matching [rpos, rhi) range of the delta's
	// on-disk run of the same permutation (empty when nothing spilled).
	rts  []IDTriple
	rpos int
	rhi  int

	// In-memory delta side: the matching [dpos, dhi) range of the
	// overlay's sorted tail of the same permutation.
	ts   []IDTriple
	dpos int
	dhi  int

	kind   permKind
	keyCol int
	total  int

	// Current position: the minimum of the three sides in permuted order.
	cur       IDTriple
	key       dict.ID
	src       int8 // cursorBase / cursorRun / cursorMem
	exhausted bool

	// Seeks and Nexts count the cursor's galloping seeks and single-step
	// advances since construction — the per-operator access-path counts
	// EXPLAIN ANALYZE reports. Plain ints: a cursor is single-goroutine
	// by contract, and the increments cost nothing measurable.
	Seeks int
	Nexts int
}

// The side the cursor is currently positioned on.
const (
	cursorBase int8 = iota
	cursorRun
	cursorMem
)

// Counts returns the cursor's accumulated access-path counters — the
// galloping seeks and single-step advances since construction — for
// per-query cost accounting.
func (c *Cursor) Counts() (seeks, nexts int64) {
	if c == nil {
		return 0, 0
	}
	return int64(c.Seeks), int64(c.Nexts)
}

// NewCursor returns a cursor over the triples matching pat, in the
// permuted sorted order of the permutation the pattern resolves to. The
// store must be frozen (a delta overlay is fine — the cursor merges it);
// on an unfrozen store the cursor is empty and Valid reports false
// immediately, so callers gate on IsFrozen.
func (st *Store) NewCursor(pat Pattern) Cursor {
	var c Cursor
	if st.frz == nil {
		c.exhausted = true
		return c
	}
	// mergedRange resolves all sides with the shared shape-to-
	// permutation mapping, so base, spilled run and in-memory tail
	// interleave in one order.
	var ds dspan
	c.px, c.bpos, c.bhi, ds = st.mergedRange(pat)
	c.rts, c.rpos, c.rhi = ds.run, ds.rlo, ds.rhi
	c.ts, c.dpos, c.dhi = ds.mem, ds.mlo, ds.mhi
	c.kind = c.px.kind
	sB, pB, oB := pat.S != Wild, pat.P != Wild, pat.O != Wild
	c.keyCol = 0
	for _, b := range [3]bool{sB, pB, oB} {
		if b {
			c.keyCol++
		}
	}
	switch c.keyCol {
	case 0:
		c.bcol = c.px.c1
	case 1:
		c.bcol = c.px.c2
	default: // two or three bound; c3 is the last (possibly pinned) column
		c.bcol = c.px.c3
	}
	c.total = (c.bhi - c.bpos) + (c.rhi - c.rpos) + (c.dhi - c.dpos)
	c.settle()
	return c
}

// NewCursorPSO returns a cursor over every triple with predicate p in
// (S, O) order — the PSO permutation, which the three classic
// permutations cannot provide — keyed on the subject. Keys are
// non-decreasing but NOT strictly increasing: a subject with several
// p-objects contributes one position per object, so this cursor is not
// an intersection operand. It exists for the batch engine's streamed
// chain steps, which Seek to each already-bound subject and enumerate
// the object run via Triple(). The store must be frozen (a delta
// overlay is merged); otherwise the cursor starts exhausted.
func (st *Store) NewCursorPSO(p dict.ID) Cursor {
	var c Cursor
	if st.frz == nil {
		c.exhausted = true
		return c
	}
	c.px = &st.frz.pso
	c.bpos, c.bhi = c.px.keyRange(p)
	c.ts = st.dlt.pso
	c.dpos, c.dhi = searchPrefix(permPSO, st.dlt.pso, 1, p, 0, 0)
	if run := st.dlt.runPerm(permPSO); len(run) > 0 {
		c.rts = run
		c.rpos, c.rhi = searchPrefix(permPSO, run, 1, p, 0, 0)
	}
	c.kind = permPSO
	c.keyCol = 1
	c.bcol = c.px.c2
	c.total = (c.bhi - c.bpos) + (c.rhi - c.rpos) + (c.dhi - c.dpos)
	c.settle()
	return c
}

// Len reports how many triples the cursor ranged over at construction
// (base plus overlay), before any Next/Seek consumed them.
func (c *Cursor) Len() int { return c.total }

// Valid reports whether the cursor is positioned on a triple.
func (c *Cursor) Valid() bool { return !c.exhausted }

// Triple returns the current triple in (S, P, O) orientation.
func (c *Cursor) Triple() IDTriple { return c.cur }

// Key returns the current triple's leading free component — the value
// the join operators intersect. Strictly increasing for patterns with
// two bound positions; non-decreasing otherwise.
func (c *Cursor) Key() dict.ID { return c.key }

// Next advances to the next triple in merged permuted order.
func (c *Cursor) Next() {
	if c.exhausted {
		return
	}
	c.Nexts++
	switch c.src {
	case cursorBase:
		c.bpos++
	case cursorRun:
		c.rpos++
	default:
		c.dpos++
	}
	c.settle()
}

// Seek advances to the first triple whose key is >= v (a no-op when the
// current key already is). Seeks only move forward; the skipped triples
// are never visited — a galloping search over the base column and the
// overlay range.
func (c *Cursor) Seek(v dict.ID) {
	if c.exhausted || c.key >= v {
		return
	}
	c.Seeks++
	c.bpos = c.bcol.gallop(c.bpos, c.bhi, v)
	if c.rpos < c.rhi {
		c.rpos = gallopTriples(c.kind, c.keyCol, c.rts, c.rpos, c.rhi, v)
	}
	c.dpos = gallopTriples(c.kind, c.keyCol, c.ts, c.dpos, c.dhi, v)
	c.settle()
}

// settle positions the cursor on the smallest of the three sides (full
// permuted-key comparison, so the merged stream is totally ordered) and
// caches the key component.
func (c *Cursor) settle() {
	src := int8(-1)
	var best IDTriple
	if c.bpos < c.bhi {
		best, src = c.px.triple(c.bpos), cursorBase
	}
	if c.rpos < c.rhi {
		if t := c.rts[c.rpos]; src < 0 || permLess(c.kind, t, best) {
			best, src = t, cursorRun
		}
	}
	if c.dpos < c.dhi {
		if t := c.ts[c.dpos]; src < 0 || permLess(c.kind, t, best) {
			best, src = t, cursorMem
		}
	}
	if src < 0 {
		c.exhausted = true
		return
	}
	c.cur, c.src = best, src
	a, b, c3 := permuteTriple(c.kind, c.cur)
	switch c.keyCol {
	case 0:
		c.key = a
	case 1:
		c.key = b
	default:
		c.key = c3
	}
}

// permKeyAt extracts one key component of a triple under a permutation.
func permKeyAt(kind permKind, keyCol int, t IDTriple) dict.ID {
	a, b, c := permuteTriple(kind, t)
	switch keyCol {
	case 0:
		return a
	case 1:
		return b
	default:
		return c
	}
}

// gallopTriples finds the first position in [lo, hi) of the sorted
// triple run ts whose key component is >= v — the overlay-side
// counterpart of column.gallop.
func gallopTriples(kind permKind, keyCol int, ts []IDTriple, lo, hi int, v dict.ID) int {
	if lo >= hi || permKeyAt(kind, keyCol, ts[lo]) >= v {
		return lo
	}
	step := 1
	for lo+step < hi && permKeyAt(kind, keyCol, ts[lo+step]) < v {
		lo += step
		step <<= 1
	}
	lo++ // the key at the old lo was < v
	if bound := lo + step; bound < hi {
		hi = bound
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return permKeyAt(kind, keyCol, ts[lo+i]) >= v })
}

// gallopIDs finds the first index in [lo, hi) of the sorted column col
// with col[i] >= v: exponential probing from lo (seeks in a merge are
// usually short) capped by a binary search.
func gallopIDs(col []dict.ID, lo, hi int, v dict.ID) int {
	if lo >= hi || col[lo] >= v {
		return lo
	}
	step := 1
	for lo+step < hi && col[lo+step] < v {
		lo += step
		step <<= 1
	}
	lo++ // col[old lo] < v
	if bound := lo + step; bound < hi {
		hi = bound
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return col[lo+i] >= v })
}
