package store

// Delta layer: a small sorted in-memory overlay that absorbs writes on
// top of a frozen base, so an insert is no longer a cache-killing event.
//
// While the store is frozen, AddID appends the new triple to
//
//   - log: the arrival-ordered delta feed. Consumers that maintain
//     materializations (internal/incr, internal/viewreg) read it through
//     DeltaSince(seq) and apply exactly the triples they have not seen.
//   - spo/pos/osp/pso: four permutations of the delta kept sorted by
//     their permuted (c1, c2, c3) key via binary-search insertion,
//     mirroring the frozen permIndex layout. Every read path then
//     resolves a pattern to one base range plus one delta range of the
//     same permutation and merge-iterates the two sorted runs.
//
// The delta is disjoint from the base by construction (AddID only
// reaches it for triples absent from the authoritative nested maps), so
// merged counts are sums and merged scans never deduplicate.
//
// When the delta reaches the store's compaction threshold — or on an
// explicit Freeze() — it is folded into a rebuilt frozen base and the
// base epoch advances: the feed is gone, and materializations pinned to
// the old epoch must recompute. Deletions are not representable in the
// overlay; RemoveID on a frozen store falls back to full invalidation.

import (
	"sort"

	"rdfcube/internal/dict"
)

// DefaultCompactThreshold is the delta size at which a write triggers
// compaction into a new frozen base. SetCompactThreshold overrides it
// per store.
const DefaultCompactThreshold = 8192

// delta is the mutable overlay on a frozen base.
type delta struct {
	log                []IDTriple // arrival order: the maintenance feed
	spo, pos, osp, pso []IDTriple // sorted by the respective permuted key
}

func (d *delta) len() int { return len(d.log) }

func (d *delta) reset() { d.log, d.spo, d.pos, d.osp, d.pso = nil, nil, nil, nil, nil }

// add appends t to the feed and sorted-inserts it into the four
// permutations: O(len) per permutation, bounded by the compaction
// threshold.
func (d *delta) add(t IDTriple) {
	d.log = append(d.log, t)
	d.spo = insertSorted(permSPO, d.spo, t)
	d.pos = insertSorted(permPOS, d.pos, t)
	d.osp = insertSorted(permOSP, d.osp, t)
	d.pso = insertSorted(permPSO, d.pso, t)
}

// permuteTriple projects t onto a permutation's (c1, c2, c3) key.
func permuteTriple(kind permKind, t IDTriple) (a, b, c dict.ID) {
	switch kind {
	case permPOS:
		return t.P, t.O, t.S
	case permOSP:
		return t.O, t.S, t.P
	case permPSO:
		return t.P, t.S, t.O
	default:
		return t.S, t.P, t.O
	}
}

// permLess orders two triples by their permuted key.
func permLess(kind permKind, x, y IDTriple) bool {
	ax, bx, cx := permuteTriple(kind, x)
	ay, by, cy := permuteTriple(kind, y)
	if ax != ay {
		return ax < ay
	}
	if bx != by {
		return bx < by
	}
	return cx < cy
}

// insertSorted inserts t into ts, keeping ts sorted by the permuted key.
func insertSorted(kind permKind, ts []IDTriple, t IDTriple) []IDTriple {
	i := sort.Search(len(ts), func(i int) bool { return !permLess(kind, ts[i], t) })
	ts = append(ts, IDTriple{})
	copy(ts[i+1:], ts[i:])
	ts[i] = t
	return ts
}

// searchPrefix returns the [lo, hi) run of ts whose permuted key starts
// with the n bound components (a, b, c).
func searchPrefix(kind permKind, ts []IDTriple, n int, a, b, c dict.ID) (lo, hi int) {
	cmp := func(t IDTriple) int {
		x, y, z := permuteTriple(kind, t)
		got := [3]dict.ID{x, y, z}
		want := [3]dict.ID{a, b, c}
		for i := 0; i < n; i++ {
			if got[i] < want[i] {
				return -1
			}
			if got[i] > want[i] {
				return 1
			}
		}
		return 0
	}
	lo = sort.Search(len(ts), func(i int) bool { return cmp(ts[i]) >= 0 })
	hi = lo + sort.Search(len(ts)-lo, func(i int) bool { return cmp(ts[lo+i]) > 0 })
	return lo, hi
}

// patternRange resolves pat to a contiguous range of one delta
// permutation — the same shape-to-permutation mapping as
// frozen.patternRange, so base and delta ranges merge in one order.
func (d *delta) patternRange(pat Pattern) (kind permKind, ts []IDTriple, lo, hi int) {
	sB, pB, oB := pat.S != Wild, pat.P != Wild, pat.O != Wild
	switch {
	case sB && pB && oB:
		lo, hi = searchPrefix(permSPO, d.spo, 3, pat.S, pat.P, pat.O)
		return permSPO, d.spo, lo, hi
	case sB && pB:
		lo, hi = searchPrefix(permSPO, d.spo, 2, pat.S, pat.P, 0)
		return permSPO, d.spo, lo, hi
	case pB:
		n := 1
		if oB {
			n = 2
		}
		lo, hi = searchPrefix(permPOS, d.pos, n, pat.P, pat.O, 0)
		return permPOS, d.pos, lo, hi
	case oB:
		n := 1
		if sB {
			n = 2
		}
		lo, hi = searchPrefix(permOSP, d.osp, n, pat.O, pat.S, 0)
		return permOSP, d.osp, lo, hi
	case sB:
		lo, hi = searchPrefix(permSPO, d.spo, 1, pat.S, 0, 0)
		return permSPO, d.spo, lo, hi
	default:
		return permSPO, d.spo, 0, len(d.spo)
	}
}

// count returns the number of delta triples matching pat.
func (d *delta) count(pat Pattern) int {
	_, _, lo, hi := d.patternRange(pat)
	return hi - lo
}

// mergedRange resolves pat to its base and delta ranges in one pass —
// the same permutation on both sides — so callers that need the total
// size and the iteration share one resolution.
func (st *Store) mergedRange(pat Pattern) (px *permIndex, blo, bhi int, ts []IDTriple, dlo, dhi int) {
	px, blo, bhi = st.frz.patternRange(pat)
	_, ts, dlo, dhi = st.dlt.patternRange(pat)
	return
}

// mergeRanges iterates a base range and a delta range of the same
// permutation in merged sorted order. fn's early-stop contract matches
// Store.ForEach.
func mergeRanges(px *permIndex, blo, bhi int, ts []IDTriple, dlo, dhi int, fn func(IDTriple) bool) {
	i, j := blo, dlo
	for i < bhi && j < dhi {
		bt := px.triple(i)
		if permLess(px.kind, ts[j], bt) {
			if !fn(ts[j]) {
				return
			}
			j++
		} else {
			if !fn(bt) {
				return
			}
			i++
		}
	}
	if !px.forEachRange(i, bhi, fn) {
		return
	}
	for ; j < dhi; j++ {
		if !fn(ts[j]) {
			return
		}
	}
}

// forEachMerged iterates the triples matching pat in permuted order,
// merging the frozen base range with the delta range.
func (st *Store) forEachMerged(pat Pattern, fn func(IDTriple) bool) {
	px, blo, bhi, ts, dlo, dhi := st.mergedRange(pat)
	mergeRanges(px, blo, bhi, ts, dlo, dhi, fn)
}
