package store

// Delta layer: a small sorted in-memory overlay that absorbs writes on
// top of a frozen base, so an insert is no longer a cache-killing event.
//
// While the store is frozen, AddID appends the new triple to
//
//   - log: the arrival-ordered delta feed. Consumers that maintain
//     materializations (internal/incr, internal/viewreg) read it through
//     DeltaSince(seq) and apply exactly the triples they have not seen.
//   - spo/pos/osp/pso: four permutations of the delta kept sorted by
//     their permuted (c1, c2, c3) key via binary-search insertion,
//     mirroring the frozen permIndex layout. Every read path then
//     resolves a pattern to one base range plus one delta range of the
//     same permutation and merge-iterates the two sorted runs.
//
// The delta is disjoint from the base by construction (AddID only
// reaches it for triples absent from the authoritative nested maps), so
// merged counts are sums and merged scans never deduplicate.
//
// When the delta reaches the store's compaction threshold — or on an
// explicit Freeze() — it is folded into a rebuilt frozen base and the
// base epoch advances: the feed is gone, and materializations pinned to
// the old epoch must recompute. Deletions are not representable in the
// overlay; RemoveID on a frozen store falls back to full invalidation.

import (
	"sort"

	"rdfcube/internal/dict"
)

// DefaultCompactThreshold is the delta size at which a write triggers
// compaction into a new frozen base. SetCompactThreshold overrides it
// per store.
const DefaultCompactThreshold = 8192

// delta is the mutable overlay on a frozen base. Its sorted side is
// two-tier: the four in-memory permutations hold the tail accepted
// since the last spill, and run (when delta spill is enabled and the
// tail outgrew the spill threshold) holds the older prefix as one
// sorted on-disk run per permutation, mmap'd back in. The feed (log)
// always stays fully in memory — it is the maintenance contract of
// DeltaSince and is bounded by the compaction threshold.
type delta struct {
	log                []IDTriple // arrival order: the maintenance feed
	spo, pos, osp, pso []IDTriple // sorted by the respective permuted key
	run                *spillRun  // spilled sorted prefix, nil when none
}

func (d *delta) len() int { return len(d.log) }

// memLen reports the size of the in-memory sorted tail (the spill
// trigger; len() counts spilled triples too).
func (d *delta) memLen() int { return len(d.spo) }

func (d *delta) reset() {
	d.log, d.spo, d.pos, d.osp, d.pso = nil, nil, nil, nil, nil
	if d.run != nil {
		d.run.discard()
		d.run = nil
	}
}

// memPerm returns the in-memory sorted tail of one permutation.
func (d *delta) memPerm(kind permKind) []IDTriple {
	switch kind {
	case permPOS:
		return d.pos
	case permOSP:
		return d.osp
	case permPSO:
		return d.pso
	default:
		return d.spo
	}
}

// runPerm returns the spilled sorted prefix of one permutation (nil
// when nothing is spilled).
func (d *delta) runPerm(kind permKind) []IDTriple {
	if d.run == nil {
		return nil
	}
	return d.run.perm(kind)
}

// add appends t to the feed and sorted-inserts it into the four
// permutations: O(len) per permutation, bounded by the compaction
// threshold.
func (d *delta) add(t IDTriple) {
	d.log = append(d.log, t)
	d.spo = insertSorted(permSPO, d.spo, t)
	d.pos = insertSorted(permPOS, d.pos, t)
	d.osp = insertSorted(permOSP, d.osp, t)
	d.pso = insertSorted(permPSO, d.pso, t)
}

// permuteTriple projects t onto a permutation's (c1, c2, c3) key.
func permuteTriple(kind permKind, t IDTriple) (a, b, c dict.ID) {
	switch kind {
	case permPOS:
		return t.P, t.O, t.S
	case permOSP:
		return t.O, t.S, t.P
	case permPSO:
		return t.P, t.S, t.O
	default:
		return t.S, t.P, t.O
	}
}

// permLess orders two triples by their permuted key.
func permLess(kind permKind, x, y IDTriple) bool {
	ax, bx, cx := permuteTriple(kind, x)
	ay, by, cy := permuteTriple(kind, y)
	if ax != ay {
		return ax < ay
	}
	if bx != by {
		return bx < by
	}
	return cx < cy
}

// insertSorted inserts t into ts, keeping ts sorted by the permuted key.
func insertSorted(kind permKind, ts []IDTriple, t IDTriple) []IDTriple {
	i := sort.Search(len(ts), func(i int) bool { return !permLess(kind, ts[i], t) })
	ts = append(ts, IDTriple{})
	copy(ts[i+1:], ts[i:])
	ts[i] = t
	return ts
}

// searchPrefix returns the [lo, hi) run of ts whose permuted key starts
// with the n bound components (a, b, c).
func searchPrefix(kind permKind, ts []IDTriple, n int, a, b, c dict.ID) (lo, hi int) {
	cmp := func(t IDTriple) int {
		x, y, z := permuteTriple(kind, t)
		got := [3]dict.ID{x, y, z}
		want := [3]dict.ID{a, b, c}
		for i := 0; i < n; i++ {
			if got[i] < want[i] {
				return -1
			}
			if got[i] > want[i] {
				return 1
			}
		}
		return 0
	}
	lo = sort.Search(len(ts), func(i int) bool { return cmp(ts[i]) >= 0 })
	hi = lo + sort.Search(len(ts)-lo, func(i int) bool { return cmp(ts[lo+i]) > 0 })
	return lo, hi
}

// shapeSpec maps a pattern to the permutation it resolves on and the
// bound-prefix (n, a, b, c) within that permutation — the single
// shape-to-permutation mapping shared by frozen.patternRange, the delta
// tiers and the cursors, so all sides merge in one order.
func shapeSpec(pat Pattern) (kind permKind, n int, a, b, c dict.ID) {
	sB, pB, oB := pat.S != Wild, pat.P != Wild, pat.O != Wild
	switch {
	case sB && pB && oB:
		return permSPO, 3, pat.S, pat.P, pat.O
	case sB && pB:
		return permSPO, 2, pat.S, pat.P, 0
	case pB:
		if oB {
			return permPOS, 2, pat.P, pat.O, 0
		}
		return permPOS, 1, pat.P, 0, 0
	case oB:
		if sB {
			return permOSP, 2, pat.O, pat.S, 0
		}
		return permOSP, 1, pat.O, 0, 0
	case sB:
		return permSPO, 1, pat.S, 0, 0
	default:
		return permSPO, 0, 0, 0, 0
	}
}

// dspan is the delta side of a pattern resolution: the matching ranges
// of the spilled run and the in-memory tail of one permutation. Either
// range may be empty; the two are disjoint.
type dspan struct {
	kind     permKind
	run      []IDTriple
	rlo, rhi int
	mem      []IDTriple
	mlo, mhi int
}

func (ds *dspan) count() int { return (ds.rhi - ds.rlo) + (ds.mhi - ds.mlo) }

// spans resolves pat to its delta-side ranges.
func (d *delta) spans(pat Pattern) dspan {
	kind, n, a, b, c := shapeSpec(pat)
	ds := dspan{kind: kind, mem: d.memPerm(kind)}
	ds.mlo, ds.mhi = searchPrefix(kind, ds.mem, n, a, b, c)
	if d.run != nil {
		ds.run = d.run.perm(kind)
		ds.rlo, ds.rhi = searchPrefix(kind, ds.run, n, a, b, c)
	}
	return ds
}

// count returns the number of delta triples matching pat.
func (d *delta) count(pat Pattern) int {
	ds := d.spans(pat)
	return ds.count()
}

// mergedRange resolves pat to its base and delta ranges in one pass —
// the same permutation on all sides — so callers that need the total
// size and the iteration share one resolution.
func (st *Store) mergedRange(pat Pattern) (px *permIndex, blo, bhi int, ds dspan) {
	px, blo, bhi = st.frz.patternRange(pat)
	ds = st.dlt.spans(pat)
	return
}

// mergeRanges iterates a base range and the delta-side ranges of the
// same permutation in merged sorted order — a three-way merge of base,
// spilled run and in-memory tail, all pairwise disjoint. fn's
// early-stop contract matches Store.ForEach.
func mergeRanges(px *permIndex, blo, bhi int, ds dspan, fn func(IDTriple) bool) {
	i, r, m := blo, ds.rlo, ds.mlo
	for r < ds.rhi || m < ds.mhi {
		// The smaller delta-side candidate...
		var dt IDTriple
		fromRun := false
		switch {
		case r < ds.rhi && m < ds.mhi:
			if permLess(ds.kind, ds.run[r], ds.mem[m]) {
				dt, fromRun = ds.run[r], true
			} else {
				dt = ds.mem[m]
			}
		case r < ds.rhi:
			dt, fromRun = ds.run[r], true
		default:
			dt = ds.mem[m]
		}
		// ...drains the base up to its position.
		for i < bhi {
			bt := px.triple(i)
			if permLess(px.kind, dt, bt) {
				break
			}
			if !fn(bt) {
				return
			}
			i++
		}
		if !fn(dt) {
			return
		}
		if fromRun {
			r++
		} else {
			m++
		}
	}
	px.forEachRange(i, bhi, fn)
}

// forEachMerged iterates the triples matching pat in permuted order,
// merging the frozen base range with the delta-side ranges.
func (st *Store) forEachMerged(pat Pattern, fn func(IDTriple) bool) {
	px, blo, bhi, ds := st.mergedRange(pat)
	mergeRanges(px, blo, bhi, ds, fn)
}
