package store

// Delta spill: bigger-than-RAM handling for the write side. When the
// in-memory sorted tail of the delta overlay outgrows the spill
// threshold, the whole sorted side (previous spilled run merged with
// the tail) is rewritten as ONE on-disk run file and mmap'd back, and
// the in-memory permutations shrink to empty. Reads stay bounded
// three-way merges (frozen base + spilled run + in-memory tail); the
// arrival-ordered feed stays fully in memory, so DeltaSince and WAL
// logging are untouched.
//
// The run file is transient node-local serving state, not a durability
// artifact: triples in it are already in the WAL, recovery replays the
// WAL and re-spills, and the server deletes orphaned *.spill files at
// open. That is why the format can be the cheapest possible one — a
// 24-byte header and four native-endian IDTriple arrays viewed in
// place via unsafe.Slice, no varints, no portability. A short header
// CRC over the triple payload guards against torn writes surviving the
// atomic-rename protocol (a crashed spill normally leaves only a temp
// file, which cleanup removes).
//
// At most one run exists per store: each spill re-merges run + tail.
// Spilling is therefore O(run) per trigger — quadratic in the worst
// case over a whole compaction cycle, which is fine because compaction
// bounds the delta and the spill exists to cap the delta's resident
// set, not to be an LSM tree.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"unsafe"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/persist"
)

const (
	spillMagic      = "RDCS"
	spillVersion    = 1
	spillHeaderSize = 24
	spillTripleSize = 24
)

// Compile-time check that IDTriple has the exact wire layout the
// unsafe.Slice views assume (three uint64s, no padding).
var _ [spillTripleSize]byte = [unsafe.Sizeof(IDTriple{})]byte{}

var spillCRC = crc32.MakeTable(crc32.Castagnoli)

// spillRun is one mmap'd on-disk run of delta triples: four sorted
// permutations of the same n triples, viewed zero-copy.
type spillRun struct {
	fsys  faultfs.FS
	path  string
	f     *os.File
	data  []byte
	n     int
	perms [4][]IDTriple // indexed by permKind
}

func (r *spillRun) perm(kind permKind) []IDTriple { return r.perms[kind] }

// discard unmaps and deletes the run file. Errors are ignored: the file
// is transient state that open-time cleanup also removes.
func (r *spillRun) discard() {
	if r.data != nil {
		persist.Unmap(r.data)
		r.data = nil
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	if r.path != "" {
		faultfs.OrOS(r.fsys).Remove(r.path)
	}
}

// triplesBytes views a triple slice as raw bytes (native endianness).
func triplesBytes(ts []IDTriple) []byte {
	if len(ts) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&ts[0])), len(ts)*spillTripleSize)
}

// bytesTriples views raw bytes as n triples. b must be 8-byte aligned
// and at least n*spillTripleSize long.
func bytesTriples(b []byte, n int) []IDTriple {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*IDTriple)(unsafe.Pointer(&b[0])), n)
}

// writeSpillRun writes the four permutations (each n sorted triples) to
// path via the atomic temp-and-rename protocol and returns the payload
// CRC it stamped into the header.
func writeSpillRun(fsys faultfs.FS, path string, n int, perms *[4][]IDTriple) error {
	return persist.AtomicWriteFile(fsys, path, func(f faultfs.File) error {
		var hdr [spillHeaderSize]byte
		copy(hdr[:4], spillMagic)
		hdr[4] = spillVersion
		putU64(hdr[8:16], uint64(n))
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		crc := uint32(0)
		for k := range perms {
			b := triplesBytes(perms[k])
			crc = crc32.Update(crc, spillCRC, b)
			if _, err := f.Write(b); err != nil {
				return err
			}
		}
		putU32(hdr[16:20], crc)
		_, err := f.WriteAt(hdr[16:20], 16)
		return err
	})
}

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }

// openSpillRun maps a run file written by writeSpillRun and validates
// its header and payload CRC.
func openSpillRun(fsys faultfs.FS, path string) (*spillRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := persist.MapFile(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	fail := func(format string, args ...any) (*spillRun, error) {
		persist.Unmap(data)
		f.Close()
		return nil, &persist.ArtifactError{
			Path: path, Kind: "spill", Offset: -1,
			Err: fmt.Errorf("%w: %s", persist.ErrCorrupt, fmt.Sprintf(format, args...)),
		}
	}
	if len(data) < spillHeaderSize {
		return fail("short header: %d bytes", len(data))
	}
	if string(data[:4]) != spillMagic {
		return fail("bad magic %q", data[:4])
	}
	if data[4] != spillVersion {
		return fail("unsupported version %d", data[4])
	}
	n64 := getU64(data[8:16])
	want := uint64(spillHeaderSize) + 4*n64*spillTripleSize
	if n64 > uint64(len(data)) || uint64(len(data)) != want {
		return fail("file is %d bytes, header claims %d triples (%d bytes)", len(data), n64, want)
	}
	n := int(n64)
	payload := data[spillHeaderSize:]
	if crc := crc32.Checksum(payload, spillCRC); crc != getU32(data[16:20]) {
		return fail("payload checksum mismatch")
	}
	r := &spillRun{fsys: fsys, path: path, f: f, data: data, n: n}
	for k := 0; k < 4; k++ {
		r.perms[k] = bytesTriples(payload[k*n*spillTripleSize:], n)
	}
	return r, nil
}

// SetSpill enables delta spill on this store: once the in-memory sorted
// tail of the delta overlay reaches threshold triples, the sorted side
// is spilled to a single mmap'd run file under dir (which must exist).
// threshold < 1 disables spilling again. fsys is the filesystem spill
// files are written through (nil for the OS); reads always map the real
// file. Spill files are transient — see CleanSpillDir.
func (st *Store) SetSpill(fsys faultfs.FS, dir string, threshold int) {
	if threshold < 1 {
		st.spillDir, st.spillThreshold = "", 0
		return
	}
	st.spillFS = fsys
	st.spillDir = dir
	st.spillThreshold = threshold
}

// SpillStats reports the spill state: triples resident in the on-disk
// run, its mapped size in bytes, the number of spills performed, and
// the last spill error (spilling degrades to in-memory on error).
func (st *Store) SpillStats() (runTriples int, runBytes int64, spills uint64, lastErr error) {
	if st.dlt.run != nil {
		runTriples = st.dlt.run.n
		runBytes = int64(len(st.dlt.run.data))
	}
	return runTriples, runBytes, st.spillCount, st.spillErr
}

// maybeSpill spills the delta's sorted side when the in-memory tail has
// reached the spill threshold. A spill failure is recorded and serving
// continues from memory (the overlay is still bounded by compaction).
func (st *Store) maybeSpill() {
	if st.spillDir == "" || st.dlt.memLen() < st.spillThreshold {
		return
	}
	if err := st.spillDelta(); err != nil {
		st.spillErr = err
	}
}

// spillDelta merges the current run (if any) with the in-memory sorted
// tail into a fresh run file, maps it, and drops the in-memory
// permutations. The feed (dlt.log) is untouched.
func (st *Store) spillDelta() error {
	d := &st.dlt
	var merged [4][]IDTriple
	n := 0
	for k := 0; k < 4; k++ {
		kind := permKind(k)
		merged[k] = d.memPerm(kind)
		if run := d.runPerm(kind); len(run) > 0 {
			merged[k] = mergeTripleRuns(kind, run, merged[k])
		}
		n = len(merged[k])
	}
	st.spillSeq++
	path := filepath.Join(st.spillDir, fmt.Sprintf("delta-%06d.spill", st.spillSeq))
	if err := writeSpillRun(st.spillFS, path, n, &merged); err != nil {
		return err
	}
	run, err := openSpillRun(st.spillFS, path)
	if err != nil {
		faultfs.OrOS(st.spillFS).Remove(path)
		return err
	}
	if d.run != nil {
		d.run.discard()
	}
	d.run = run
	d.spo, d.pos, d.osp, d.pso = nil, nil, nil, nil
	st.spillCount++
	return nil
}

// CleanSpillDir removes leftover spill artifacts (*.spill and their
// temp files) under dir — run at open, before any store serves from the
// directory: spill files are transient serving state whose triples are
// re-replayed from the WAL.
func CleanSpillDir(fsys faultfs.FS, dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*.spill*"))
	if err != nil {
		return err
	}
	fs := faultfs.OrOS(fsys)
	for _, m := range matches {
		if err := fs.Remove(m); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
