package store

// Differential tests: the frozen sorted-array indexes must return
// identical result sets to the map-based path for every operation and
// all eight triple-pattern shapes, on random instances mirroring the
// generator style of internal/core/property_test.go (multi-valued,
// heterogeneous, skewed). Plus regression coverage for write-after-
// Freeze invalidation and rebuild.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
)

func mkTerm(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://e.org/t%d", i)) }

// randomTripleStore fills a store with n random triples drawn from small
// ID domains (dense collisions exercise runs and duplicates). Returns
// the store and the encoded triples.
func randomTripleStore(rng *rand.Rand, n int) *Store {
	st := New()
	d := st.Dict()
	// Intern enough terms that IDs 1..60 exist; patterns below draw from
	// the same domain.
	for i := 0; i < 60; i++ {
		d.Encode(mkTerm(i))
	}
	for i := 0; i < n; i++ {
		s := dict.ID(1 + rng.Intn(25))
		p := dict.ID(26 + rng.Intn(8))
		o := dict.ID(34 + rng.Intn(20))
		if rng.Intn(10) == 0 {
			// Occasionally reuse a subject as object (graph shape).
			o = dict.ID(1 + rng.Intn(25))
		}
		st.AddID(IDTriple{S: s, P: p, O: o})
	}
	return st
}

func sortTriples(ts []IDTriple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
}

func sortIDs(ids []dict.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func triplesEqual(a, b []IDTriple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func idsEqual(a, b []dict.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomPatterns yields patterns covering all eight shapes, with bound
// positions drawn from both present and absent IDs.
func randomPatterns(rng *rand.Rand) []Pattern {
	pick := func() dict.ID { return dict.ID(1 + rng.Intn(58)) }
	var pats []Pattern
	for shape := 0; shape < 8; shape++ {
		for rep := 0; rep < 6; rep++ {
			var p Pattern
			if shape&4 != 0 {
				p.S = pick()
			}
			if shape&2 != 0 {
				p.P = pick()
			}
			if shape&1 != 0 {
				p.O = pick()
			}
			pats = append(pats, p)
		}
	}
	return pats
}

// TestFrozenDifferentialAllShapes cross-checks every read operation
// between the map path and the frozen path on random stores.
func TestFrozenDifferentialAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		st := randomTripleStore(rng, 50+rng.Intn(400))
		pats := randomPatterns(rng)

		type snapshot struct {
			match    [][]IDTriple
			count    []int
			est      []float64
			subjects [][]dict.ID
			objects  [][]dict.ID
		}
		capture := func() snapshot {
			var snap snapshot
			for _, pat := range pats {
				m := st.Match(pat)
				sortTriples(m)
				snap.match = append(snap.match, m)
				snap.count = append(snap.count, st.Count(pat))
				subj := st.Subjects(pat.P, pat.O)
				sortIDs(subj)
				snap.subjects = append(snap.subjects, subj)
				obj := st.Objects(pat.S, pat.P)
				sortIDs(obj)
				snap.objects = append(snap.objects, obj)
			}
			return snap
		}

		if st.IsFrozen() {
			t.Fatal("fresh store must not be frozen")
		}
		fromMaps := capture()
		st.Freeze()
		if !st.IsFrozen() {
			t.Fatal("Freeze did not freeze")
		}
		fromFrozen := capture()

		for i, pat := range pats {
			if !triplesEqual(fromMaps.match[i], fromFrozen.match[i]) {
				t.Fatalf("trial %d pattern %+v: Match differs\n maps:   %v\n frozen: %v",
					trial, pat, fromMaps.match[i], fromFrozen.match[i])
			}
			if fromMaps.count[i] != fromFrozen.count[i] {
				t.Fatalf("trial %d pattern %+v: Count differs: maps %d frozen %d",
					trial, pat, fromMaps.count[i], fromFrozen.count[i])
			}
			// Frozen estimates are exact range lengths.
			if got, want := st.EstimateCardinality(pat), float64(fromMaps.count[i]); got != want {
				t.Fatalf("trial %d pattern %+v: frozen estimate %v != exact count %v",
					trial, pat, got, want)
			}
			if !idsEqual(fromMaps.subjects[i], fromFrozen.subjects[i]) {
				t.Fatalf("trial %d pattern %+v: Subjects differ\n maps:   %v\n frozen: %v",
					trial, pat, fromMaps.subjects[i], fromFrozen.subjects[i])
			}
			if !idsEqual(fromMaps.objects[i], fromFrozen.objects[i]) {
				t.Fatalf("trial %d pattern %+v: Objects differ\n maps:   %v\n frozen: %v",
					trial, pat, fromMaps.objects[i], fromFrozen.objects[i])
			}
		}

		// ForEach early-stop must work on the frozen path.
		n := 0
		st.ForEach(Pattern{}, func(IDTriple) bool {
			n++
			return n < 3
		})
		if st.Len() >= 3 && n != 3 {
			t.Fatalf("trial %d: early stop visited %d triples", trial, n)
		}
	}
}

// TestFrozenStats cross-checks the freeze-time distinct statistics
// against the map-path computations.
func TestFrozenStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := randomTripleStore(rng, 300)

	type predStat struct{ s, o int }
	fromMaps := map[dict.ID]predStat{}
	for p := dict.ID(1); p < 60; p++ {
		fromMaps[p] = predStat{st.DistinctSubjects(p), st.DistinctObjects(p)}
	}
	mapDS, mapDO := st.DistinctSubjectsAll(), st.DistinctObjectsAll()

	st.Freeze()
	for p, want := range fromMaps {
		if got := st.DistinctSubjects(p); got != want.s {
			t.Fatalf("DistinctSubjects(%d): frozen %d, maps %d", p, got, want.s)
		}
		if got := st.DistinctObjects(p); got != want.o {
			t.Fatalf("DistinctObjects(%d): frozen %d, maps %d", p, got, want.o)
		}
	}
	if got := st.DistinctSubjectsAll(); got != mapDS {
		t.Fatalf("DistinctSubjectsAll: frozen %d, maps %d", got, mapDS)
	}
	if got := st.DistinctObjectsAll(); got != mapDO {
		t.Fatalf("DistinctObjectsAll: frozen %d, maps %d", got, mapDO)
	}
}

// TestWriteAfterFreezeLandsInDelta: writes after Freeze must keep the
// compacted base (landing in the delta overlay), be visible immediately,
// and an explicit re-Freeze must compact them into a consistent index.
func TestWriteAfterFreezeLandsInDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	st := randomTripleStore(rng, 120)
	st.Freeze()

	fresh := IDTriple{S: 2, P: 27, O: 59}
	for st.ContainsID(fresh) {
		fresh.O-- // find a triple not yet present
	}
	before := st.Count(Pattern{P: fresh.P})

	if !st.AddID(fresh) {
		t.Fatal("AddID reported duplicate for a missing triple")
	}
	if !st.IsFrozen() {
		t.Fatal("AddID dropped the frozen base instead of using the delta overlay")
	}
	if st.DeltaLen() != 1 {
		t.Fatalf("DeltaLen = %d, want 1", st.DeltaLen())
	}
	if !st.ContainsID(fresh) {
		t.Fatal("triple invisible after post-freeze write")
	}
	if got := st.Count(Pattern{P: fresh.P}); got != before+1 {
		t.Fatalf("Count after write: got %d, want %d", got, before+1)
	}

	// Explicit Freeze compacts the overlay into a rebuilt base.
	st.Freeze()
	if !st.IsFrozen() || st.DeltaLen() != 0 {
		t.Fatal("Freeze did not compact the delta")
	}
	if !st.ContainsID(fresh) {
		t.Fatal("compacted index lost the new triple")
	}
	if got := st.Count(Pattern{P: fresh.P}); got != before+1 {
		t.Fatalf("frozen Count after compaction: got %d, want %d", got, before+1)
	}

	// Removal is not representable in the overlay: it must invalidate,
	// and a re-Freeze must rebuild correctly.
	if !st.RemoveID(fresh) {
		t.Fatal("RemoveID failed")
	}
	if st.IsFrozen() {
		t.Fatal("RemoveID did not invalidate the frozen index")
	}
	st.Freeze()
	if st.ContainsID(fresh) {
		t.Fatal("rebuilt frozen index kept a removed triple")
	}
	if got := st.Count(Pattern{P: fresh.P}); got != before {
		t.Fatalf("frozen Count after removal: got %d, want %d", got, before)
	}

	// Thaw drops the compacted view without losing data.
	st.Freeze()
	st.Thaw()
	if st.IsFrozen() {
		t.Fatal("Thaw left the store frozen")
	}
	if got := st.Count(Pattern{P: fresh.P}); got != before {
		t.Fatalf("map Count after thaw: got %d, want %d", got, before)
	}
}

// TestFreezeEmptyStore: freezing an empty store must be safe.
func TestFreezeEmptyStore(t *testing.T) {
	st := New()
	st.Freeze()
	if got := st.Count(Pattern{}); got != 0 {
		t.Fatalf("empty frozen store Count = %d", got)
	}
	if m := st.Match(Pattern{S: 1}); len(m) != 0 {
		t.Fatalf("empty frozen store Match = %v", m)
	}
	st.ForEach(Pattern{}, func(IDTriple) bool {
		t.Fatal("callback on empty store")
		return false
	})
}
