package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rdfcube/internal/persist"
	"rdfcube/internal/rdf"
)

// writeV3File serializes st as a v3 snapshot into a temp file and
// returns its path.
func writeV3File(t *testing.T, st *Store) string {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteFrozenSnapshotV3(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// openMappedT opens path as a mapped store and registers cleanup.
func openMappedT(t *testing.T, path string, opts MappedOptions) *Store {
	t.Helper()
	st, err := OpenFrozenSnapshotMapped(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.CloseMapped() })
	return st
}

func TestSnapshotV3HeapRoundtrip(t *testing.T) {
	st := buildTestStore(t, 300)
	st.Freeze()
	var buf bytes.Buffer
	if err := st.WriteFrozenSnapshotV3(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsFrozen() {
		t.Fatal("reloaded store is not frozen")
	}
	diffStores(t, st, got)
	for _, term := range st.Dict().Terms() {
		wantID, _ := st.Dict().Lookup(term)
		gotID, ok := got.Dict().Lookup(term)
		if !ok || gotID != wantID {
			t.Fatalf("term %v: ID %d vs %d (ok=%v)", term, wantID, gotID, ok)
		}
	}
}

func TestOpenFrozenSnapshotMappedDifferential(t *testing.T) {
	src := buildTestStore(t, 400)
	src.Freeze()
	path := writeV3File(t, src)

	heap, err := OpenFrozenSnapshot(func() *bytes.Reader {
		b, _ := os.ReadFile(path)
		return bytes.NewReader(b)
	}())
	if err != nil {
		t.Fatal(err)
	}
	mapped := openMappedT(t, path, MappedOptions{})
	if !mapped.Mapped() {
		t.Fatal("store does not report mapped")
	}
	if !mapped.IsFrozen() {
		t.Fatal("mapped store is not frozen")
	}
	diffStores(t, heap, mapped)
	diffStores(t, src, mapped)

	// The eight shapes again through cursors and the aggregates.
	for _, pat := range allPatterns(heap) {
		hs, ms := heap.Subjects(pat.P, pat.O), mapped.Subjects(pat.P, pat.O)
		if fmt.Sprint(hs) != fmt.Sprint(ms) {
			t.Fatalf("pattern %+v: Subjects %v vs %v", pat, hs, ms)
		}
		ho, mo := heap.Objects(pat.S, pat.P), mapped.Objects(pat.S, pat.P)
		if fmt.Sprint(ho) != fmt.Sprint(mo) {
			t.Fatalf("pattern %+v: Objects %v vs %v", pat, ho, mo)
		}
		hc, mc := heap.NewCursor(pat), mapped.NewCursor(pat)
		if hc.Len() != mc.Len() {
			t.Fatalf("pattern %+v: cursor Len %d vs %d", pat, hc.Len(), mc.Len())
		}
		for hc.Valid() || mc.Valid() {
			if hc.Valid() != mc.Valid() || hc.Triple() != mc.Triple() {
				t.Fatalf("pattern %+v: cursor diverges", pat)
			}
			hc.Next()
			mc.Next()
		}
	}

	if st, ok := mapped.MappedStats(); !ok || st.MappedBytes == 0 || st.BlockCacheMisses == 0 {
		t.Fatalf("implausible mapped stats: %+v ok=%v", st, ok)
	}
}

func TestMappedDictionary(t *testing.T) {
	src := buildTestStore(t, 150)
	src.Freeze()
	mapped := openMappedT(t, writeV3File(t, src), MappedOptions{TermCacheSlots: 4})

	// Every term resolves both directions with the same IDs; the tiny
	// cache forces constant eviction, which must not affect answers.
	for _, term := range src.Dict().Terms() {
		wantID, _ := src.Dict().Lookup(term)
		gotID, ok := mapped.Dict().Lookup(term)
		if !ok || gotID != wantID {
			t.Fatalf("term %v: ID %d vs %d (ok=%v)", term, wantID, gotID, ok)
		}
		back, ok := mapped.Dict().Decode(wantID)
		if !ok || back != term {
			t.Fatalf("ID %d: decoded %v, want %v", wantID, back, term)
		}
	}
	if _, ok := mapped.Dict().Lookup(rdf.NewIRI("http://ex.org/never-interned")); ok {
		t.Fatal("lookup of unknown term succeeded")
	}
	// Bulk materialization must agree with the source dictionary.
	want, got := src.Dict().Terms(), mapped.Dict().Terms()
	if len(want) != len(got) {
		t.Fatalf("Terms: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("Terms[%d]: %v vs %v", i, got[i], want[i])
		}
	}
	ms, _ := mapped.MappedStats()
	if ms.TermCacheMisses == 0 {
		t.Fatal("term cache recorded no misses")
	}
}

// TestMappedBlockCacheEviction pins the column block cache to a single
// slot, so every block access of one permutation evicts the previous
// one, and interleaves reads across all four permutations (worst-case
// thrash for a direct-mapped cache). Answers must stay identical to the
// heap twin, and the stats must show the cache actually churning.
func TestMappedBlockCacheEviction(t *testing.T) {
	src := buildTestStore(t, 500)
	src.Freeze()
	path := writeV3File(t, src)
	mapped := openMappedT(t, path, MappedOptions{BlockCacheSlots: 1})

	// Three interleaved rounds: the second and third run over blocks the
	// first round's accesses already evicted.
	for round := 0; round < 3; round++ {
		for _, pat := range allPatterns(src) {
			if got, want := mapped.Count(pat), src.Count(pat); got != want {
				t.Fatalf("round %d pattern %+v: Count %d, want %d", round, pat, got, want)
			}
			hc, mc := src.NewCursor(pat), mapped.NewCursor(pat)
			// Alternate Seek and Next so decodes jump between blocks.
			for hc.Valid() {
				if !mc.Valid() || hc.Triple() != mc.Triple() {
					t.Fatalf("round %d pattern %+v: cursor diverges", round, pat)
				}
				k := hc.Key()
				hc.Seek(k + 1)
				mc.Seek(k + 1)
			}
			if mc.Valid() {
				t.Fatalf("round %d pattern %+v: mapped cursor has extra rows", round, pat)
			}
		}
		diffStores(t, src, mapped)
	}
	ms, ok := mapped.MappedStats()
	if !ok || ms.BlockCacheMisses == 0 {
		t.Fatalf("no block-cache misses recorded: %+v", ms)
	}
	if ms.BlockCacheHits == 0 {
		t.Fatal("no block-cache hits recorded (sequential runs should hit)")
	}
	if ms.DecodeStallNanos == 0 {
		t.Fatal("no decode stall time recorded despite misses")
	}
}

func TestMappedWithDeltaDifferential(t *testing.T) {
	src := buildTestStore(t, 200)
	src.Freeze()
	path := writeV3File(t, src)
	mapped := openMappedT(t, path, MappedOptions{})
	heap, err := OpenFrozenSnapshot(func() *bytes.Reader {
		b, _ := os.ReadFile(path)
		return bytes.NewReader(b)
	}())
	if err != nil {
		t.Fatal(err)
	}

	// Writes land in the overlay of both stores; answers must agree.
	// Mix re-inserts (dedup against the mapped base) with fresh triples
	// that intern new terms over the lazy dictionary.
	for i := 0; i < 120; i++ {
		u := rdf.NewIRI(fmt.Sprintf("http://ex.org/user%d", i))
		tr := rdf.Triple{S: u, P: rdf.NewIRI("http://ex.org/follows"),
			O: rdf.NewIRI(fmt.Sprintf("http://ex.org/user%d", (i+7)%200))}
		if mapped.Add(tr) != heap.Add(tr) {
			t.Fatalf("add %d: newness diverges", i)
		}
		dup := rdf.Triple{S: u, P: rdf.Type, O: rdf.NewIRI("http://ex.org/User")}
		if mapped.Add(dup) {
			t.Fatalf("re-insert %d reported new on mapped store", i)
		}
	}
	if mapped.DeltaLen() != heap.DeltaLen() {
		t.Fatalf("delta length %d vs %d", mapped.DeltaLen(), heap.DeltaLen())
	}
	diffStores(t, heap, mapped)
}

func TestMappedSpilledDeltaDifferential(t *testing.T) {
	src := buildTestStore(t, 200)
	src.Freeze()
	path := writeV3File(t, src)
	mapped := openMappedT(t, path, MappedOptions{})
	heap, err := OpenFrozenSnapshot(func() *bytes.Reader {
		b, _ := os.ReadFile(path)
		return bytes.NewReader(b)
	}())
	if err != nil {
		t.Fatal(err)
	}
	mapped.SetSpill(nil, t.TempDir(), 25)

	for i := 0; i < 137; i++ {
		tr := rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://ex.org/user%d", i%50)),
			P: rdf.NewIRI("http://ex.org/scored"),
			O: rdf.NewInt(int64(i)),
		}
		if mapped.Add(tr) != heap.Add(tr) {
			t.Fatalf("add %d: newness diverges", i)
		}
	}
	if _, _, spills, lastErr := mapped.SpillStats(); spills == 0 || lastErr != nil {
		t.Fatalf("expected spills on mapped store (spills=%d err=%v)", spills, lastErr)
	}
	diffStores(t, heap, mapped)
}

func TestMappedFallbackToHeap(t *testing.T) {
	src := buildTestStore(t, 80)
	src.Freeze()
	var buf bytes.Buffer
	if err := src.WriteFrozenSnapshot(&buf); err != nil { // v2 writer
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v2.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenFrozenSnapshotMapped(path, MappedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mapped() {
		t.Fatal("v2 snapshot should fall back to the heap loader")
	}
	diffStores(t, src, st)
}

func TestMappedOpenRejectsCorruption(t *testing.T) {
	src := buildTestStore(t, 120)
	src.Freeze()
	path := writeV3File(t, src)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in every region of the file; every flip must surface
	// as a typed artifact error at open — never a wrong answer, never a
	// panic.
	for _, off := range []int{4, 20, len(raw) / 3, len(raw) / 2, len(raw) - 9} {
		bad := bytes.Clone(raw)
		bad[off] ^= 0x40
		p := filepath.Join(t.TempDir(), "bad.snap")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := OpenFrozenSnapshotMapped(p, MappedOptions{})
		if err == nil {
			st.CloseMapped()
			t.Fatalf("offset %d: corrupted snapshot opened cleanly", off)
		}
		var ae *persist.ArtifactError
		if !errors.As(err, &ae) && !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("offset %d: error %v is neither ArtifactError nor ErrBadSnapshot", off, err)
		}
	}
}

func TestMappedVerifyFull(t *testing.T) {
	src := buildTestStore(t, 150)
	src.Freeze()
	path := writeV3File(t, src)
	st := openMappedT(t, path, MappedOptions{VerifyFull: true})
	diffStores(t, src, st)
}
