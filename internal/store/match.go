package store

import (
	"sort"

	"rdfcube/internal/dict"
)

// Wild is the wildcard ID in a pattern: it matches any term. It equals
// dict.NoID, so an unbound pattern position is simply the zero value.
const Wild = dict.NoID

// Pattern is a triple pattern over IDs; Wild positions are unconstrained.
type Pattern struct {
	S, P, O dict.ID
}

// ForEach calls fn for every triple matching pat, stopping early if fn
// returns false. Iteration order is unspecified on a mutable store and
// sorted (in the chosen permutation's order) on a frozen one — including
// under a pending delta, where the base and overlay ranges of the same
// permutation are merge-iterated.
//
// On a frozen store every shape is one contiguous range of a sorted
// permutation (see index.go) plus, when writes have accumulated, the
// matching range of the sorted delta overlay (delta.go). The map
// fallback picks the index whose prefix covers the bound positions:
//
//	S P O  -> spo point lookup        S - -  -> spo[s] walk
//	S P -  -> spo[s][p] walk          - P O  -> pos[p][o] walk
//	S - O  -> osp[o][s] walk          - P -  -> pos[p] walk
//	- - O  -> osp[o] walk             - - -  -> full spo walk
func (st *Store) ForEach(pat Pattern, fn func(t IDTriple) bool) {
	if st.frz != nil {
		if st.dlt.len() == 0 {
			st.frz.forEach(pat, fn)
		} else {
			st.forEachMerged(pat, fn)
		}
		return
	}
	sB, pB, oB := pat.S != Wild, pat.P != Wild, pat.O != Wild
	switch {
	case sB && pB && oB:
		if st.ContainsID(IDTriple{pat.S, pat.P, pat.O}) {
			fn(IDTriple{pat.S, pat.P, pat.O})
		}
	case sB && pB:
		for o := range st.spo[pat.S][pat.P] {
			if !fn(IDTriple{pat.S, pat.P, o}) {
				return
			}
		}
	case pB && oB:
		for s := range st.pos[pat.P][pat.O] {
			if !fn(IDTriple{s, pat.P, pat.O}) {
				return
			}
		}
	case sB && oB:
		for p := range st.osp[pat.O][pat.S] {
			if !fn(IDTriple{pat.S, p, pat.O}) {
				return
			}
		}
	case sB:
		for p, leaf := range st.spo[pat.S] {
			for o := range leaf {
				if !fn(IDTriple{pat.S, p, o}) {
					return
				}
			}
		}
	case pB:
		for o, leaf := range st.pos[pat.P] {
			for s := range leaf {
				if !fn(IDTriple{s, pat.P, o}) {
					return
				}
			}
		}
	case oB:
		for s, leaf := range st.osp[pat.O] {
			for p := range leaf {
				if !fn(IDTriple{s, p, pat.O}) {
					return
				}
			}
		}
	default:
		for s, m2 := range st.spo {
			for p, leaf := range m2 {
				for o := range leaf {
					if !fn(IDTriple{s, p, o}) {
						return
					}
				}
			}
		}
	}
}

// PatternColumns exposes the triples matching pat as three parallel
// column slices in (S, P, O) orientation — direct, zero-copy views into
// the frozen permutation the pattern resolves to, in that permutation's
// sorted order (the same order ForEach visits). It reports ok = false
// when the store is not frozen, a delta overlay is pending (the merged
// view is not contiguous), or the base is mmap-backed (there are no
// materialized arrays to alias — use PatternColumnRange, which fills
// caller buffers block-wise, instead); callers then fall back to
// ForEach. The batch engine's seed scans bulk-copy from these slices.
func (st *Store) PatternColumns(pat Pattern) (s, p, o []dict.ID, ok bool) {
	if st.frz == nil || st.dlt.len() > 0 {
		return nil, nil, nil, false
	}
	px, lo, hi := st.frz.patternRange(pat)
	a1, a2, a3 := px.c1.arr, px.c2.arr, px.c3.arr
	if a1 == nil && px.len() > 0 {
		return nil, nil, nil, false
	}
	c1, c2, c3 := a1[lo:hi], a2[lo:hi], a3[lo:hi]
	switch px.kind {
	case permPOS:
		return c3, c1, c2, true
	case permOSP:
		return c2, c3, c1, true
	case permPSO:
		return c2, c1, c3, true
	default:
		return c1, c2, c3, true
	}
}

// ColumnRange is a window onto the triples matching one pattern on a
// frozen store with no pending delta — the copying counterpart of
// PatternColumns for bases whose columns are not materialized in heap
// (the mmap-backed read path). Fill decodes into caller buffers
// block-at-a-time, so the batch engine's seed scans stay bulk
// operations on either backing.
type ColumnRange struct {
	px     *permIndex
	lo, hi int
}

// Len reports the number of matching triples.
func (cr *ColumnRange) Len() int { return cr.hi - cr.lo }

// Fill copies up to len(s) triples starting at row off of the range
// into s, p, o (parallel, equal-length buffers) in (S, P, O)
// orientation and returns the count copied. The c1 component is
// reconstructed from the run directory; c2/c3 are bulk block copies.
func (cr *ColumnRange) Fill(off int, s, p, o []dict.ID) int {
	lo := cr.lo + off
	hi := min(cr.hi, lo+len(s))
	if lo >= hi {
		return 0
	}
	px := cr.px
	var d1, d2, d3 []dict.ID
	switch px.kind {
	case permPOS:
		d1, d2, d3 = p, o, s
	case permOSP:
		d1, d2, d3 = o, s, p
	case permPSO:
		d1, d2, d3 = p, s, o
	default:
		d1, d2, d3 = s, p, o
	}
	n := hi - lo
	px.c2.copyRange(d2[:n], lo, hi)
	px.c3.copyRange(d3[:n], lo, hi)
	// c1 via the run directory: each directory run is one constant value.
	ki := sort.Search(len(px.keys), func(j int) bool { return px.off[j+1] > lo })
	for i := lo; i < hi; {
		end := min(hi, px.off[ki+1])
		v := px.keys[ki]
		for ; i < end; i++ {
			d1[i-lo] = v
		}
		ki++
	}
	return n
}

// PatternColumnRange resolves pat to a fillable column range. Like
// PatternColumns it reports ok = false when the store is not frozen or
// a delta overlay is pending; unlike it, it works over mapped bases.
func (st *Store) PatternColumnRange(pat Pattern) (ColumnRange, bool) {
	if st.frz == nil || st.dlt.len() > 0 {
		return ColumnRange{}, false
	}
	px, lo, hi := st.frz.patternRange(pat)
	return ColumnRange{px: px, lo: lo, hi: hi}, true
}

// Match returns all triples matching pat. Prefer ForEach when the caller
// can consume triples incrementally. On a frozen store the result is
// preallocated to its exact size.
func (st *Store) Match(pat Pattern) []IDTriple {
	if st.frz != nil {
		if st.dlt.len() == 0 {
			return st.frz.match(pat)
		}
		px, blo, bhi, ds := st.mergedRange(pat)
		n := (bhi - blo) + ds.count()
		if n == 0 {
			return nil
		}
		out := make([]IDTriple, 0, n)
		mergeRanges(px, blo, bhi, ds, func(t IDTriple) bool {
			out = append(out, t)
			return true
		})
		return out
	}
	var out []IDTriple
	st.ForEach(pat, func(t IDTriple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of triples matching pat without materializing
// them. On a frozen store every shape is O(log n) via the offset
// directories — plus an O(log d) delta-range count when writes are
// pending (base and overlay are disjoint, so the counts add); on the
// mutable maps the single-bound S and O shapes cost one leaf-map walk.
func (st *Store) Count(pat Pattern) int {
	if st.frz != nil {
		n := st.frz.count(pat)
		if st.dlt.len() > 0 {
			n += st.dlt.count(pat)
		}
		return n
	}
	sB, pB, oB := pat.S != Wild, pat.P != Wild, pat.O != Wild
	switch {
	case sB && pB && oB:
		if st.ContainsID(IDTriple{pat.S, pat.P, pat.O}) {
			return 1
		}
		return 0
	case sB && pB:
		return len(st.spo[pat.S][pat.P])
	case pB && oB:
		return len(st.pos[pat.P][pat.O])
	case sB && oB:
		return len(st.osp[pat.O][pat.S])
	case sB:
		n := 0
		for _, leaf := range st.spo[pat.S] {
			n += len(leaf)
		}
		return n
	case pB:
		return st.predCount[pat.P]
	case oB:
		n := 0
		for _, leaf := range st.osp[pat.O] {
			n += len(leaf)
		}
		return n
	default:
		return st.size
	}
}

// Subjects returns the distinct subject IDs of triples with predicate p
// and object o (either may be Wild). On a frozen store this is a
// sorted-run walk with no intermediate map.
func (st *Store) Subjects(p, o dict.ID) []dict.ID {
	if st.frz != nil {
		base := st.frz.subjects(p, o)
		if st.dlt.len() == 0 {
			return base
		}
		ds := st.dlt.spans(Pattern{P: p, O: o})
		for i := ds.rlo; i < ds.rhi; i++ {
			base = append(base, ds.run[i].S)
		}
		for i := ds.mlo; i < ds.mhi; i++ {
			base = append(base, ds.mem[i].S)
		}
		return sortDedup(base)
	}
	seen := make(map[dict.ID]struct{})
	st.ForEach(Pattern{P: p, O: o}, func(t IDTriple) bool {
		seen[t.S] = struct{}{}
		return true
	})
	out := make([]dict.ID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	return out
}

// Objects returns the distinct object IDs of triples with subject s and
// predicate p (either may be Wild).
func (st *Store) Objects(s, p dict.ID) []dict.ID {
	if st.frz != nil {
		base := st.frz.objects(s, p)
		if st.dlt.len() == 0 {
			return base
		}
		ds := st.dlt.spans(Pattern{S: s, P: p})
		for i := ds.rlo; i < ds.rhi; i++ {
			base = append(base, ds.run[i].O)
		}
		for i := ds.mlo; i < ds.mhi; i++ {
			base = append(base, ds.mem[i].O)
		}
		return sortDedup(base)
	}
	seen := make(map[dict.ID]struct{})
	st.ForEach(Pattern{S: s, P: p}, func(t IDTriple) bool {
		seen[t.O] = struct{}{}
		return true
	})
	out := make([]dict.ID, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	return out
}
