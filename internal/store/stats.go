package store

import "rdfcube/internal/dict"

// Stats exposes cardinality statistics for query optimization.
type Stats struct {
	// Triples is the total triple count.
	Triples int
	// Predicates is the number of distinct predicates.
	Predicates int
}

// Stats returns store-level statistics.
func (st *Store) Stats() Stats {
	return Stats{Triples: st.size, Predicates: len(st.predCount)}
}

// PredicateCount returns the number of triples with predicate p.
func (st *Store) PredicateCount(p dict.ID) int { return st.predCount[p] }

// DistinctSubjects returns the number of distinct subjects of predicate p.
// On a frozen store this is a precomputed O(1) lookup; the map fallback
// walks pos[p] and so costs O(triples-of-p).
func (st *Store) DistinctSubjects(p dict.ID) int {
	if st.frz != nil {
		return st.frz.predDistinctS[p]
	}
	seen := make(map[dict.ID]struct{})
	for _, leaf := range st.pos[p] {
		for s := range leaf {
			seen[s] = struct{}{}
		}
	}
	return len(seen)
}

// DistinctObjects returns the number of distinct objects of predicate p.
func (st *Store) DistinctObjects(p dict.ID) int {
	if st.frz != nil {
		return st.frz.predDistinctO[p]
	}
	return len(st.pos[p])
}

// DistinctSubjectsAll returns the number of distinct subjects in the
// store (any predicate).
func (st *Store) DistinctSubjectsAll() int {
	if st.frz != nil {
		return len(st.frz.spo.keys)
	}
	return len(st.spo)
}

// DistinctObjectsAll returns the number of distinct objects in the store
// (any predicate).
func (st *Store) DistinctObjectsAll() int {
	if st.frz != nil {
		return len(st.frz.osp.keys)
	}
	return len(st.osp)
}

// EstimateCardinality estimates the number of triples matching pat. On a
// frozen store every shape resolves to an exact range length through the
// offset directories (O(log n)); on the mutable maps the prefix-covered
// shapes are exact and the single-bound S/O shapes use uniformity
// assumptions to avoid a leaf walk. Used by the BGP optimizer to order
// joins.
func (st *Store) EstimateCardinality(pat Pattern) float64 {
	if st.frz != nil {
		return float64(st.frz.count(pat))
	}
	sB, pB, oB := pat.S != Wild, pat.P != Wild, pat.O != Wild
	n := float64(st.size)
	if n == 0 {
		return 0
	}
	switch {
	case sB && pB && oB:
		return 1
	case sB && pB:
		return float64(len(st.spo[pat.S][pat.P])) // exact, cheap
	case pB && oB:
		return float64(len(st.pos[pat.P][pat.O])) // exact, cheap
	case sB && oB:
		return float64(len(st.osp[pat.O][pat.S])) // exact, cheap
	case sB:
		// Average triples per subject.
		return n / float64(maxInt(len(st.spo), 1))
	case pB:
		return float64(st.predCount[pat.P]) // exact
	case oB:
		return n / float64(maxInt(len(st.osp), 1))
	default:
		return n
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
