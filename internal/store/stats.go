package store

import "rdfcube/internal/dict"

// Stats exposes cardinality statistics for query optimization.
type Stats struct {
	// Triples is the total triple count.
	Triples int
	// Predicates is the number of distinct predicates.
	Predicates int
}

// Stats returns store-level statistics.
func (st *Store) Stats() Stats {
	return Stats{Triples: st.size, Predicates: len(st.predCount)}
}

// PredicateCount returns the number of triples with predicate p.
func (st *Store) PredicateCount(p dict.ID) int { return st.predCount[p] }

// DistinctSubjects returns the number of distinct subjects of predicate
// p. On a frozen store this is the precomputed O(1) lookup, plus — with
// a pending delta — the O(log d) count of p's delta triples, an upper
// bound that keeps the only consumer (the BGP cardinality estimator) off
// the O(triples-of-p) map walk on the hot planning path. The map
// fallback is exact.
func (st *Store) DistinctSubjects(p dict.ID) int {
	if st.frz != nil {
		return st.frz.predDistinctS[p] + st.dlt.count(Pattern{P: p})
	}
	seen := make(map[dict.ID]struct{})
	for _, leaf := range st.pos[p] {
		for s := range leaf {
			seen[s] = struct{}{}
		}
	}
	return len(seen)
}

// DistinctObjects returns the number of distinct objects of predicate p
// (an upper bound under a pending delta, like DistinctSubjects).
func (st *Store) DistinctObjects(p dict.ID) int {
	if st.frz != nil {
		return st.frz.predDistinctO[p] + st.dlt.count(Pattern{P: p})
	}
	return len(st.pos[p])
}

// DistinctSubjectsAll returns the number of distinct subjects in the
// store (any predicate). The nested maps track this exactly; on a
// snapshot-loaded store (no maps) the SPO directory keys count the base
// exactly and the delta size is added as an upper bound — the only
// consumer is the cardinality estimator.
func (st *Store) DistinctSubjectsAll() int {
	if st.noMaps {
		return len(st.frz.spo.keys) + st.dlt.len()
	}
	return len(st.spo)
}

// DistinctObjectsAll returns the number of distinct objects in the store
// (any predicate), with the same bound as DistinctSubjectsAll on a
// snapshot-loaded store.
func (st *Store) DistinctObjectsAll() int {
	if st.noMaps {
		return len(st.frz.osp.keys) + st.dlt.len()
	}
	return len(st.osp)
}

// EstimateCardinality estimates the number of triples matching pat. On a
// frozen store every shape resolves to an exact range length through the
// offset directories (O(log n)), plus the delta range when writes are
// pending; on the mutable maps the prefix-covered shapes are exact and
// the single-bound S/O shapes use uniformity assumptions to avoid a leaf
// walk. Used by the BGP optimizer to order joins.
func (st *Store) EstimateCardinality(pat Pattern) float64 {
	if st.frz != nil {
		return float64(st.Count(pat))
	}
	sB, pB, oB := pat.S != Wild, pat.P != Wild, pat.O != Wild
	n := float64(st.size)
	if n == 0 {
		return 0
	}
	switch {
	case sB && pB && oB:
		return 1
	case sB && pB:
		return float64(len(st.spo[pat.S][pat.P])) // exact, cheap
	case pB && oB:
		return float64(len(st.pos[pat.P][pat.O])) // exact, cheap
	case sB && oB:
		return float64(len(st.osp[pat.O][pat.S])) // exact, cheap
	case sB:
		// Average triples per subject.
		return n / float64(maxInt(len(st.spo), 1))
	case pB:
		return float64(st.predCount[pat.P]) // exact
	case oB:
		return n / float64(maxInt(len(st.osp), 1))
	default:
		return n
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
