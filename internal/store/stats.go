package store

import "rdfcube/internal/dict"

// Stats exposes cardinality statistics for query optimization.
type Stats struct {
	// Triples is the total triple count.
	Triples int
	// Predicates is the number of distinct predicates.
	Predicates int
}

// Stats returns store-level statistics.
func (st *Store) Stats() Stats {
	return Stats{Triples: st.size, Predicates: len(st.predCount)}
}

// PredicateCount returns the number of triples with predicate p.
func (st *Store) PredicateCount(p dict.ID) int { return st.predCount[p] }

// DistinctSubjects returns the number of distinct subjects of predicate p.
// It walks pos[p] and so costs O(objects-of-p); callers should cache it.
func (st *Store) DistinctSubjects(p dict.ID) int {
	seen := make(map[dict.ID]struct{})
	for _, leaf := range st.pos[p] {
		for s := range leaf {
			seen[s] = struct{}{}
		}
	}
	return len(seen)
}

// DistinctObjects returns the number of distinct objects of predicate p.
func (st *Store) DistinctObjects(p dict.ID) int { return len(st.pos[p]) }

// EstimateCardinality estimates the number of triples matching pat using
// the maintained statistics. It never underestimates the fully-wild and
// predicate-bound shapes (exact counts) and uses uniformity assumptions
// for the rest. Used by the BGP optimizer to order joins.
func (st *Store) EstimateCardinality(pat Pattern) float64 {
	sB, pB, oB := pat.S != Wild, pat.P != Wild, pat.O != Wild
	n := float64(st.size)
	if n == 0 {
		return 0
	}
	switch {
	case sB && pB && oB:
		return 1
	case sB && pB:
		return float64(len(st.spo[pat.S][pat.P])) // exact, cheap
	case pB && oB:
		return float64(len(st.pos[pat.P][pat.O])) // exact, cheap
	case sB && oB:
		return float64(len(st.osp[pat.O][pat.S])) // exact, cheap
	case sB:
		// Average triples per subject.
		return n / float64(maxInt(len(st.spo), 1))
	case pB:
		return float64(st.predCount[pat.P]) // exact
	case oB:
		return n / float64(maxInt(len(st.osp), 1))
	default:
		return n
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
