package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rdfcube/internal/persist"
	"rdfcube/internal/rdf"
)

// FuzzOpenFrozenSnapshot asserts the snapshot readers' contract on
// arbitrary input: parse successfully or return a classified error
// (ErrBadSnapshot, or persist.ErrCorrupt from the mapped framing) —
// never panic, never hang, never return a store whose read paths blow
// up. Every input goes through both the streaming reader (v1 flat and
// v2 frozen formats) and the mmap opener with its CRC-verifying full
// pass (v3 mapped format, falling back to the streaming reader for
// v1/v2); the corpus seeds one of each format plus targeted mutations.
func FuzzOpenFrozenSnapshot(f *testing.F) {
	seedStore := func(n int) *Store {
		st := New()
		for i := 0; i < n; i++ {
			u := rdf.NewIRI(fmt.Sprintf("http://ex.org/u%d", i))
			st.Add(rdf.Triple{S: u, P: rdf.Type, O: rdf.NewIRI("http://ex.org/T")})
			st.Add(rdf.Triple{S: u, P: rdf.NewIRI("http://ex.org/n"), O: rdf.NewInt(int64(i % 5))})
			st.Add(rdf.Triple{S: u, P: rdf.NewIRI("http://ex.org/l"), O: rdf.NewLangLiteral(fmt.Sprintf("v%d", i), "en")})
		}
		return st
	}
	var v2 bytes.Buffer
	if err := seedStore(20).WriteFrozenSnapshot(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	var v1 bytes.Buffer
	if err := seedStore(20).WriteSnapshot(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add([]byte("RDFC"))
	f.Add([]byte{'R', 'D', 'F', 'C', 2, 1, 3, 0, 0})
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	mut := append([]byte(nil), v2.Bytes()...)
	mut[30] ^= 0x10
	f.Add(mut)
	var v3 bytes.Buffer
	st3 := seedStore(20)
	st3.Freeze()
	if err := st3.WriteFrozenBaseV3(&v3); err != nil {
		f.Fatal(err)
	}
	f.Add(v3.Bytes())
	f.Add(v3.Bytes()[:len(v3.Bytes())/2])
	mut3 := append([]byte(nil), v3.Bytes()...)
	mut3[len(mut3)/2] ^= 0x40
	f.Add(mut3)

	// exercise runs the read and write paths a fuzz-accepted store must
	// survive.
	exercise := func(t *testing.T, st *Store) {
		t.Helper()
		if st.Len() < 0 {
			t.Fatal("negative length")
		}
		n := 0
		st.ForEach(Pattern{}, func(tr IDTriple) bool {
			if n == 0 {
				if st.Count(Pattern{S: tr.S}) < 1 || !st.ContainsID(tr) {
					t.Fatal("accepted store disagrees with itself")
				}
				st.Subjects(tr.P, Wild)
				st.Objects(tr.S, Wild)
			}
			n++
			return n < 100
		})
		st.Add(rdf.Triple{S: rdf.NewIRI("urn:x"), P: rdf.NewIRI("urn:y"), O: rdf.NewIRI("urn:z")})
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := OpenFrozenSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("non-ErrBadSnapshot error: %v", err)
			}
		} else {
			// A store the reader accepted must hold up under the read and
			// write paths.
			exercise(t, st)
		}

		// The mapped opener holds the same contract on the same bytes:
		// open (with the CRC-verifying full pass) or refuse with
		// ErrBadSnapshot — never panic, never serve garbage. Its heap
		// fallback also accepts v1/v2, so any byte string the streaming
		// reader takes must not crash the mapped path either.
		path := filepath.Join(t.TempDir(), "fuzz.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mst, err := OpenFrozenSnapshotMapped(path, MappedOptions{VerifyFull: true})
		if err != nil {
			// Structural file corruption (bad framing, checksum mismatch)
			// surfaces as persist.ErrCorrupt; semantic snapshot problems as
			// ErrBadSnapshot. Anything else is a contract violation.
			if !errors.Is(err, ErrBadSnapshot) && !errors.Is(err, persist.ErrCorrupt) {
				t.Fatalf("mapped: unclassified error: %v", err)
			}
			return
		}
		exercise(t, mst)
		mst.CloseMapped()
	})
}
