package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"rdfcube/internal/rdf"
)

// FuzzOpenFrozenSnapshot asserts the snapshot readers' contract on
// arbitrary input: parse successfully or return an error wrapping
// ErrBadSnapshot — never panic, never hang, never return a store whose
// read paths blow up. Covers both the v2 frozen format and the v1 flat
// fallback (the corpus seeds one of each plus targeted mutations).
func FuzzOpenFrozenSnapshot(f *testing.F) {
	seedStore := func(n int) *Store {
		st := New()
		for i := 0; i < n; i++ {
			u := rdf.NewIRI(fmt.Sprintf("http://ex.org/u%d", i))
			st.Add(rdf.Triple{S: u, P: rdf.Type, O: rdf.NewIRI("http://ex.org/T")})
			st.Add(rdf.Triple{S: u, P: rdf.NewIRI("http://ex.org/n"), O: rdf.NewInt(int64(i % 5))})
			st.Add(rdf.Triple{S: u, P: rdf.NewIRI("http://ex.org/l"), O: rdf.NewLangLiteral(fmt.Sprintf("v%d", i), "en")})
		}
		return st
	}
	var v2 bytes.Buffer
	if err := seedStore(20).WriteFrozenSnapshot(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	var v1 bytes.Buffer
	if err := seedStore(20).WriteSnapshot(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add([]byte("RDFC"))
	f.Add([]byte{'R', 'D', 'F', 'C', 2, 1, 3, 0, 0})
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	mut := append([]byte(nil), v2.Bytes()...)
	mut[30] ^= 0x10
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := OpenFrozenSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("non-ErrBadSnapshot error: %v", err)
			}
			return
		}
		// A store the reader accepted must hold up under the read and
		// write paths.
		if st.Len() < 0 {
			t.Fatal("negative length")
		}
		n := 0
		st.ForEach(Pattern{}, func(tr IDTriple) bool {
			if n == 0 {
				if st.Count(Pattern{S: tr.S}) < 1 || !st.ContainsID(tr) {
					t.Fatal("accepted store disagrees with itself")
				}
				st.Subjects(tr.P, Wild)
				st.Objects(tr.S, Wild)
			}
			n++
			return n < 100
		})
		st.Add(rdf.Triple{S: rdf.NewIRI("urn:x"), P: rdf.NewIRI("urn:y"), O: rdf.NewIRI("urn:z")})
	})
}
