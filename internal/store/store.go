// Package store implements an in-memory, dictionary-encoded RDF triple
// store with SPO, POS and OSP indexes.
//
// The store answers the eight triple-pattern shapes (each of S, P, O
// either bound or free) by picking the index whose prefix covers the
// bound positions, so every lookup is a hash-map walk rather than a scan.
// Cardinality statistics (per-predicate counts, distinct subjects/objects
// per predicate) feed the BGP evaluator's join ordering.
//
// The store is safe for concurrent readers; writes must not be concurrent
// with reads or other writes (the usual load-then-query lifecycle of an
// analytical system).
package store

import (
	"sync/atomic"

	"rdfcube/internal/dict"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/rdf"
)

// IDTriple is a dictionary-encoded triple.
type IDTriple struct {
	S, P, O dict.ID
}

// Store is an indexed triple store over a term dictionary.
//
// The store is layered: the mutable nested-map indexes below are always
// authoritative; Freeze compacts them into the read-optimized sorted
// columnar arrays of index.go. A write on a frozen store no longer drops
// that compacted base — it lands in a small sorted delta overlay (see
// delta.go) and every read path merges base and delta, so writes stay
// cheap and reads stay on the fast path. The delta is folded into a
// rebuilt base when it reaches the compaction threshold or on an
// explicit Freeze.
type Store struct {
	dict *dict.Dictionary

	// Three nested-map indexes. The leaf set is map[dict.ID]struct{}.
	spo map[dict.ID]map[dict.ID]idSet
	pos map[dict.ID]map[dict.ID]idSet
	osp map[dict.ID]map[dict.ID]idSet

	size int

	// Per-predicate statistics, maintained incrementally.
	predCount map[dict.ID]int

	// frz is the compacted sorted-array base; dlt overlays the writes
	// accepted since it was built. frz == nil means map-only mode (dlt
	// is then empty).
	frz *frozen
	dlt delta

	// noMaps marks a store whose nested maps were never populated — the
	// state of a store opened from a frozen (v2) snapshot, where the
	// columnar base was loaded directly and rebuilding the maps would
	// defeat the fast load. In this mode the frozen base + delta overlay
	// are authoritative: ContainsID binary-searches them and AddID
	// deduplicates against them. Operations that genuinely need the maps
	// (deletion, Thaw) rehydrate them on demand.
	noMaps bool

	// compactThreshold is the delta size that triggers folding the
	// overlay into a rebuilt frozen base.
	compactThreshold int

	// noInlineCompact suppresses the threshold-triggered inline
	// compaction on the write path; the owner is then expected to fold
	// the overlay off the write path via PrepareCompaction /
	// InstallCompaction (the server's background compactor). Explicit
	// Freeze still compacts synchronously.
	noInlineCompact bool

	// Delta-spill configuration and state (see spill.go). spillDir == ""
	// means spilling is disabled.
	spillFS        faultfs.FS
	spillDir       string
	spillThreshold int
	spillSeq       int
	spillCount     uint64
	spillErr       error

	// mapped, when non-nil, owns the mmap'd snapshot the frozen base
	// aliases (see snapshot_mapped.go). The store must not outlive it.
	mapped *mappedSnapshot

	// ver packs the two-part write version (baseEpoch << 32 | deltaSeq).
	// deltaSeq counts the triples accepted into the current delta
	// overlay; baseEpoch advances whenever the base is rebuilt or
	// structurally invalidated (compaction, deletion, thaw with pending
	// delta, map-mode writes) — exactly the events after which the delta
	// feed can no longer replay the difference. Concurrent readers (the
	// view registry, the server) use it to decide between maintaining a
	// materialization (same base, newer delta) and discarding it (base
	// moved); reading it never blocks. Writes themselves must still be
	// serialized against reads by the caller.
	ver atomic.Uint64
}

type idSet map[dict.ID]struct{}

// Version is the decoded two-part write version of a store.
type Version struct {
	// Base counts base rebuilds and structural invalidations.
	Base uint64
	// Seq counts the triples in the current delta overlay (0 outside
	// frozen mode or right after a rebuild).
	Seq uint64
}

// New returns an empty store over a fresh dictionary.
func New() *Store { return NewWithDict(dict.New()) }

// NewWithDict returns an empty store sharing the given dictionary.
// Sharing lets several graphs (base data, AnS instance, materialized
// cubes) use one ID space so results join without re-encoding.
func NewWithDict(d *dict.Dictionary) *Store {
	return &Store{
		dict:             d,
		spo:              make(map[dict.ID]map[dict.ID]idSet),
		pos:              make(map[dict.ID]map[dict.ID]idSet),
		osp:              make(map[dict.ID]map[dict.ID]idSet),
		predCount:        make(map[dict.ID]int),
		compactThreshold: DefaultCompactThreshold,
	}
}

// Dict returns the store's term dictionary.
func (st *Store) Dict() *dict.Dictionary { return st.dict }

// Epoch returns the packed write version: it increases on every
// successful Add/Remove and on every base rebuild, so a materialized
// result tagged with the epoch at evaluation time reflects the store's
// contents exactly while Epoch() still returns that value. Callers that
// can maintain materializations should prefer Version, which separates
// "base rebuilt" (recompute) from "delta grew" (apply the feed). Safe to
// read concurrently with other reads.
func (st *Store) Epoch() uint64 { return st.ver.Load() }

// Version returns the decoded (baseEpoch, deltaSeq) write version.
func (st *Store) Version() Version {
	v := st.ver.Load()
	return Version{Base: v >> 32, Seq: v & 0xffffffff}
}

// bumpBase advances the base epoch and clears the delta sequence. Called
// under the caller's write serialization.
func (st *Store) bumpBase() {
	st.ver.Store(((st.ver.Load() >> 32) + 1) << 32)
}

// DeltaLen reports the number of triples in the delta overlay.
func (st *Store) DeltaLen() int { return st.dlt.len() }

// DeltaSince returns the delta-feed triples accepted after sequence
// number seq (a Version.Seq observed earlier under the same Base). The
// returned slice aliases the feed and must not be mutated; it is valid
// until the next compaction.
func (st *Store) DeltaSince(seq uint64) []IDTriple {
	if seq >= uint64(len(st.dlt.log)) {
		return nil
	}
	return st.dlt.log[seq:]
}

// SetCompactThreshold overrides the delta size at which a write compacts
// the overlay into a rebuilt frozen base (values < 1 restore the
// default).
func (st *Store) SetCompactThreshold(n int) {
	if n < 1 {
		n = DefaultCompactThreshold
	}
	st.compactThreshold = n
}

// CompactThreshold returns the current compaction threshold.
func (st *Store) CompactThreshold() int { return st.compactThreshold }

// SetInlineCompaction controls whether a write that grows the delta
// overlay past the compaction threshold folds it into a rebuilt base
// right there on the write path (the default). Passing false defers
// that work to an external compactor driving PrepareCompaction /
// InstallCompaction — the overlay then grows past the threshold until
// the compactor catches up (or an explicit Freeze compacts inline).
func (st *Store) SetInlineCompaction(inline bool) { st.noInlineCompact = !inline }

// NeedsCompaction reports whether the delta overlay has reached the
// compaction threshold — the signal a background compactor polls.
func (st *Store) NeedsCompaction() bool {
	return st.frz != nil && st.dlt.len() >= st.compactThreshold
}

// Len reports the number of distinct triples.
func (st *Store) Len() int { return st.size }

// Add inserts the term triple tr, interning its terms. It reports whether
// the triple was new.
func (st *Store) Add(tr rdf.Triple) bool {
	s, p, o := st.dict.EncodeTriple(tr)
	return st.AddID(IDTriple{s, p, o})
}

// AddID inserts an already-encoded triple. It reports whether the triple
// was new. On a frozen store the triple lands in the delta overlay (the
// compacted base survives) and the delta sequence advances; past the
// compaction threshold the overlay is folded into a rebuilt base. On a
// map-only store the base epoch advances.
func (st *Store) AddID(t IDTriple) bool {
	if st.noMaps {
		// Snapshot-loaded store: the maps are empty by design, so the
		// dedup check runs against the frozen base + overlay instead.
		if st.ContainsID(t) {
			return false
		}
		st.size++
		st.predCount[t.P]++
		st.dlt.add(t)
		st.ver.Add(1)
		if st.dlt.len() >= st.compactThreshold && !st.noInlineCompact {
			st.compact()
		} else {
			st.maybeSpill()
		}
		return true
	}
	if !insert3(st.spo, t.S, t.P, t.O) {
		return false
	}
	insert3(st.pos, t.P, t.O, t.S)
	insert3(st.osp, t.O, t.S, t.P)
	st.size++
	st.predCount[t.P]++
	if st.frz != nil {
		st.dlt.add(t)
		st.ver.Add(1)
		if st.dlt.len() >= st.compactThreshold && !st.noInlineCompact {
			st.compact()
		} else {
			st.maybeSpill()
		}
	} else {
		st.bumpBase()
	}
	return true
}

// Remove deletes the term triple tr. It reports whether the triple was
// present.
func (st *Store) Remove(tr rdf.Triple) bool {
	s, ok1 := st.dict.Lookup(tr.S)
	p, ok2 := st.dict.Lookup(tr.P)
	o, ok3 := st.dict.Lookup(tr.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return st.RemoveID(IDTriple{s, p, o})
}

// RemoveID deletes an encoded triple. It reports whether the triple was
// present. Deletions are not representable in the append-only delta
// overlay, so on a frozen store a removal drops the compacted base and
// overlay entirely (the warehouse workload is append-oriented; re-Freeze
// after sustained deletion bursts).
func (st *Store) RemoveID(t IDTriple) bool {
	if st.noMaps {
		st.rehydrate()
	}
	if !remove3(st.spo, t.S, t.P, t.O) {
		return false
	}
	remove3(st.pos, t.P, t.O, t.S)
	remove3(st.osp, t.O, t.S, t.P)
	st.size--
	st.predCount[t.P]--
	if st.predCount[t.P] == 0 {
		delete(st.predCount, t.P)
	}
	if st.frz != nil {
		st.frz = nil
		st.dlt.reset()
	}
	st.bumpBase()
	return true
}

// Contains reports whether the term triple tr is in the store.
func (st *Store) Contains(tr rdf.Triple) bool {
	s, ok1 := st.dict.Lookup(tr.S)
	p, ok2 := st.dict.Lookup(tr.P)
	o, ok3 := st.dict.Lookup(tr.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return st.ContainsID(IDTriple{s, p, o})
}

// ContainsID reports whether the encoded triple is in the store: one
// hash walk over the authoritative nested maps, or — on a store opened
// from a frozen snapshot, whose maps were never built — two binary
// searches (frozen base, delta overlay).
func (st *Store) ContainsID(t IDTriple) bool {
	if st.noMaps {
		if st.frz.spo.contains(t.S, t.P, t.O) {
			return true
		}
		if st.dlt.len() == 0 {
			return false
		}
		lo, hi := searchPrefix(permSPO, st.dlt.spo, 3, t.S, t.P, t.O)
		if lo < hi {
			return true
		}
		if run := st.dlt.runPerm(permSPO); len(run) > 0 {
			lo, hi = searchPrefix(permSPO, run, 3, t.S, t.P, t.O)
			return lo < hi
		}
		return false
	}
	m2, ok := st.spo[t.S]
	if !ok {
		return false
	}
	leaf, ok := m2[t.P]
	if !ok {
		return false
	}
	_, ok = leaf[t.O]
	return ok
}

func insert3(idx map[dict.ID]map[dict.ID]idSet, a, b, c dict.ID) bool {
	m2, ok := idx[a]
	if !ok {
		m2 = make(map[dict.ID]idSet)
		idx[a] = m2
	}
	leaf, ok := m2[b]
	if !ok {
		leaf = make(idSet)
		m2[b] = leaf
	}
	if _, dup := leaf[c]; dup {
		return false
	}
	leaf[c] = struct{}{}
	return true
}

func remove3(idx map[dict.ID]map[dict.ID]idSet, a, b, c dict.ID) bool {
	m2, ok := idx[a]
	if !ok {
		return false
	}
	leaf, ok := m2[b]
	if !ok {
		return false
	}
	if _, present := leaf[c]; !present {
		return false
	}
	delete(leaf, c)
	if len(leaf) == 0 {
		delete(m2, b)
		if len(m2) == 0 {
			delete(idx, a)
		}
	}
	return true
}
