// Package store implements an in-memory, dictionary-encoded RDF triple
// store with SPO, POS and OSP indexes.
//
// The store answers the eight triple-pattern shapes (each of S, P, O
// either bound or free) by picking the index whose prefix covers the
// bound positions, so every lookup is a hash-map walk rather than a scan.
// Cardinality statistics (per-predicate counts, distinct subjects/objects
// per predicate) feed the BGP evaluator's join ordering.
//
// The store is safe for concurrent readers; writes must not be concurrent
// with reads or other writes (the usual load-then-query lifecycle of an
// analytical system).
package store

import (
	"sync/atomic"

	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
)

// IDTriple is a dictionary-encoded triple.
type IDTriple struct {
	S, P, O dict.ID
}

// Store is an indexed triple store over a term dictionary.
//
// The store is two-phase: a mutable build phase backed by the nested-map
// indexes below, and a read-optimized frozen phase (see index.go)
// entered via Freeze, which compacts the triple set into sorted columnar
// arrays. Reads transparently use whichever representation is current;
// writes invalidate the frozen state.
type Store struct {
	dict *dict.Dictionary

	// Three nested-map indexes. The leaf set is map[dict.ID]struct{}.
	spo map[dict.ID]map[dict.ID]idSet
	pos map[dict.ID]map[dict.ID]idSet
	osp map[dict.ID]map[dict.ID]idSet

	size int

	// Per-predicate statistics, maintained incrementally.
	predCount map[dict.ID]int

	// frz is the compacted sorted-array view, nil while dirty.
	frz *frozen

	// epoch is a generation counter bumped on every successful write.
	// Concurrent readers (the view registry, the server) use it to
	// validate that results materialized earlier still reflect the
	// store's current contents; reading it never blocks. Writes
	// themselves must still be serialized against reads by the caller.
	epoch atomic.Uint64
}

type idSet map[dict.ID]struct{}

// New returns an empty store over a fresh dictionary.
func New() *Store { return NewWithDict(dict.New()) }

// NewWithDict returns an empty store sharing the given dictionary.
// Sharing lets several graphs (base data, AnS instance, materialized
// cubes) use one ID space so results join without re-encoding.
func NewWithDict(d *dict.Dictionary) *Store {
	return &Store{
		dict:      d,
		spo:       make(map[dict.ID]map[dict.ID]idSet),
		pos:       make(map[dict.ID]map[dict.ID]idSet),
		osp:       make(map[dict.ID]map[dict.ID]idSet),
		predCount: make(map[dict.ID]int),
	}
}

// Dict returns the store's term dictionary.
func (st *Store) Dict() *dict.Dictionary { return st.dict }

// Epoch returns the store's write-generation counter. It increases on
// every successful Add/Remove, so a materialized result tagged with the
// epoch at evaluation time is valid exactly while Epoch() still returns
// that value. Epoch is safe to read concurrently with other reads.
func (st *Store) Epoch() uint64 { return st.epoch.Load() }

// Len reports the number of distinct triples.
func (st *Store) Len() int { return st.size }

// Add inserts the term triple tr, interning its terms. It reports whether
// the triple was new.
func (st *Store) Add(tr rdf.Triple) bool {
	s, p, o := st.dict.EncodeTriple(tr)
	return st.AddID(IDTriple{s, p, o})
}

// AddID inserts an already-encoded triple. It reports whether the triple
// was new.
func (st *Store) AddID(t IDTriple) bool {
	if !insert3(st.spo, t.S, t.P, t.O) {
		return false
	}
	insert3(st.pos, t.P, t.O, t.S)
	insert3(st.osp, t.O, t.S, t.P)
	st.size++
	st.predCount[t.P]++
	st.invalidate()
	return true
}

// Remove deletes the term triple tr. It reports whether the triple was
// present.
func (st *Store) Remove(tr rdf.Triple) bool {
	s, ok1 := st.dict.Lookup(tr.S)
	p, ok2 := st.dict.Lookup(tr.P)
	o, ok3 := st.dict.Lookup(tr.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return st.RemoveID(IDTriple{s, p, o})
}

// RemoveID deletes an encoded triple. It reports whether the triple was
// present.
func (st *Store) RemoveID(t IDTriple) bool {
	if !remove3(st.spo, t.S, t.P, t.O) {
		return false
	}
	remove3(st.pos, t.P, t.O, t.S)
	remove3(st.osp, t.O, t.S, t.P)
	st.size--
	st.predCount[t.P]--
	if st.predCount[t.P] == 0 {
		delete(st.predCount, t.P)
	}
	st.invalidate()
	return true
}

// Contains reports whether the term triple tr is in the store.
func (st *Store) Contains(tr rdf.Triple) bool {
	s, ok1 := st.dict.Lookup(tr.S)
	p, ok2 := st.dict.Lookup(tr.P)
	o, ok3 := st.dict.Lookup(tr.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return st.ContainsID(IDTriple{s, p, o})
}

// ContainsID reports whether the encoded triple is in the store.
func (st *Store) ContainsID(t IDTriple) bool {
	if st.frz != nil {
		return st.frz.spo.contains(t.S, t.P, t.O)
	}
	m2, ok := st.spo[t.S]
	if !ok {
		return false
	}
	leaf, ok := m2[t.P]
	if !ok {
		return false
	}
	_, ok = leaf[t.O]
	return ok
}

func insert3(idx map[dict.ID]map[dict.ID]idSet, a, b, c dict.ID) bool {
	m2, ok := idx[a]
	if !ok {
		m2 = make(map[dict.ID]idSet)
		idx[a] = m2
	}
	leaf, ok := m2[b]
	if !ok {
		leaf = make(idSet)
		m2[b] = leaf
	}
	if _, dup := leaf[c]; dup {
		return false
	}
	leaf[c] = struct{}{}
	return true
}

func remove3(idx map[dict.ID]map[dict.ID]idSet, a, b, c dict.ID) bool {
	m2, ok := idx[a]
	if !ok {
		return false
	}
	leaf, ok := m2[b]
	if !ok {
		return false
	}
	if _, present := leaf[c]; !present {
		return false
	}
	delete(leaf, c)
	if len(leaf) == 0 {
		delete(m2, b)
		if len(m2) == 0 {
			delete(idx, a)
		}
	}
	return true
}
