package store

// The zero-copy snapshot opener: OpenFrozenSnapshotMapped mmaps a v3
// snapshot and builds a Store whose frozen base serves straight off the
// mapping — c2/c3 columns as lazy varint-delta blocks, c1 reconstructed
// from the heap-resident run directories, the dictionary as lazy
// front-coded blocks behind dict.NewOverBase. Open cost is one CRC pass
// over the file plus the (small) directory parses; resident heap is the
// directories, the block cache and the term cache, independent of the
// dataset size — the bigger-than-RAM serving mode.
//
// The store behaves exactly like one from OpenFrozenSnapshot: reads
// merge the mapped base with the delta overlay, writes land in the
// overlay (spilling to disk runs past the spill threshold, see
// spill.go), and compaction is the mapped variant (compact_mapped.go)
// that streams a new v3 snapshot and remaps. Inline compaction is
// disabled at open — folding a delta into an mmap'd base requires
// writing a file, which must not happen implicitly on a write path.

import (
	"fmt"
	"io"
	"os"

	"rdfcube/internal/dict"
	"rdfcube/internal/persist"
)

// MappedOptions tune OpenFrozenSnapshotMapped.
type MappedOptions struct {
	// VerifyFull decodes every column block and dictionary block at open
	// and validates all sort invariants, turning any malformed-but-
	// CRC-valid payload into an open error instead of a serving-time
	// panic. One full pass over the file; intended for fuzzing and
	// paranoid operators.
	VerifyFull bool
	// BlockCacheSlots overrides the decoded column-block cache size
	// (default 1024 slots = 8 MiB of decoded blocks).
	BlockCacheSlots int
	// TermCacheSlots overrides the decoded term-block cache size
	// (default 256 slots = 4096 resident terms).
	TermCacheSlots int
}

// MappedStats is a point-in-time view of a store's mapped-snapshot
// machinery, for /statsz and the rdfcube_mmap_* metrics.
type MappedStats struct {
	Path        string
	MappedBytes int64
	// Column block cache.
	BlockCacheHits   uint64
	BlockCacheMisses uint64
	// Dictionary term-block cache.
	TermCacheHits   uint64
	TermCacheMisses uint64
	// Wall nanoseconds spent decoding blocks on cache misses; cold-block
	// decodes include the page-in fault, so this is the page-in-stall
	// proxy.
	DecodeStallNanos uint64
}

// mappedSnapshot owns one mmap'd snapshot file and the caches its lazy
// structures decode through.
type mappedSnapshot struct {
	path  string
	f     *os.File
	data  []byte
	mf    *persist.MappedFile
	cache *blockCache
	md    *mappedDict
	// frz and epoch identify the base this mapping serves: while the
	// store's frz pointer and base epoch still match them, the file at
	// path IS the frozen base — a checkpoint can skip rewriting it.
	frz   *frozen
	epoch uint64
}

func (ms *mappedSnapshot) close() error {
	var err error
	if ms.data != nil {
		err = persist.Unmap(ms.data)
		ms.data = nil
	}
	if ms.f != nil {
		if cerr := ms.f.Close(); err == nil {
			err = cerr
		}
		ms.f = nil
	}
	return err
}

// OpenFrozenSnapshotMapped opens the snapshot at path for serving off
// the mapping. The file must be a v3 snapshot (WriteFrozenBaseV3); a v1
// or v2 file falls back to the copying loader OpenFrozenSnapshot, so
// callers can pass whatever snapshot the data directory holds. The
// returned store must be released with CloseMapped once no reads are in
// flight.
func OpenFrozenSnapshotMapped(path string, opts MappedOptions) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := persist.MapFile(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if len(data) >= 5 && string(data[:4]) == snapshotMagic && data[4] != snapshotVersionMapped {
		// Older format: serve from heap via the copying loader.
		persist.Unmap(data)
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		st, err := OpenFrozenSnapshot(f)
		f.Close()
		return st, err
	}
	mf, err := persist.OpenMappedFile(data, snapshotMagic, "snapshot", path)
	if err != nil {
		persist.Unmap(data)
		f.Close()
		return nil, err
	}
	ms := &mappedSnapshot{path: path, f: f, data: data, mf: mf}
	st, err := openMapped(ms, opts)
	if err != nil {
		ms.close()
		return nil, err
	}
	// The CRC pass walked the file sequentially; drop those pages and
	// switch to random-access readahead for serving.
	persist.Advise(data, persist.AdviseDontNeed)
	persist.Advise(data, persist.AdviseRandom)
	return st, nil
}

func openMapped(ms *mappedSnapshot, opts MappedOptions) (*Store, error) {
	mf := ms.mf
	meta, err := mf.Section(secMeta)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	baseEpoch := meta.Uvarint()
	nTriples := meta.Uvarint()
	nTerms := meta.Uvarint()
	if err := meta.Err(); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrBadSnapshot, err)
	}
	if baseEpoch > 0xffffffff {
		return nil, fmt.Errorf("%w: base epoch %d out of range", ErrBadSnapshot, baseEpoch)
	}

	md, err := parseMappedDict(mf, nTerms, opts.TermCacheSlots, ms.path)
	if err != nil {
		return nil, err
	}
	ms.md = md

	ms.cache = newBlockCache(opts.BlockCacheSlots)
	frz := &frozen{}
	for i, s := range []struct {
		id   uint8
		kind permKind
		px   *permIndex
	}{
		{secSPO, permSPO, &frz.spo}, {secPOS, permPOS, &frz.pos},
		{secOSP, permOSP, &frz.osp}, {secPSO, permPSO, &frz.pso},
	} {
		sec, ok := mf.SectionBytes(s.id)
		if !ok {
			return nil, fmt.Errorf("%w: missing section %d", ErrBadSnapshot, s.id)
		}
		*s.px, err = parsePermV3(sec, s.kind, nTriples, nTerms, uint32(2*i), ms.cache, ms.path)
		if err != nil {
			return nil, err
		}
	}
	if err := parseMappedStats(mf, frz); err != nil {
		return nil, err
	}

	if opts.VerifyFull {
		for _, px := range []*permIndex{&frz.spo, &frz.pos, &frz.osp, &frz.pso} {
			if err := verifyPermFull(px); err != nil {
				return nil, err
			}
		}
		if err := md.verify(); err != nil {
			return nil, err
		}
	}

	st := NewWithDict(dict.NewOverBase(md))
	st.frz = frz
	st.size = int(nTriples)
	st.noMaps = true
	st.noInlineCompact = true
	st.ver.Store(baseEpoch << 32)
	for i, p := range frz.pos.keys {
		st.predCount[p] = frz.pos.off[i+1] - frz.pos.off[i]
	}
	ms.frz = frz
	ms.epoch = baseEpoch
	st.mapped = ms
	return st, nil
}

// MappedBaseClean reports whether the snapshot file backing this store
// still holds exactly the current frozen base (no compaction, deletion
// or freeze has moved the base since the mapping was created) — when
// true, a checkpoint can skip rewriting the snapshot.
func (st *Store) MappedBaseClean() bool {
	return st.mapped != nil && st.frz == st.mapped.frz && st.Version().Base == st.mapped.epoch
}

// parseMappedDict wires the lazy dictionary: term payload from DICT,
// block restarts from DICTIDX, the term-sorted ID array from DICTSORT.
func parseMappedDict(mf *persist.MappedFile, nTerms uint64, cacheSlots int, path string) (*mappedDict, error) {
	dd, err := mf.Section(secDict)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	declared := dd.Count(2)
	if err := dd.Err(); err != nil || uint64(declared) != nTerms {
		return nil, fmt.Errorf("%w: dictionary holds %d terms, meta says %d", ErrBadSnapshot, declared, nTerms)
	}
	termData := dd.Rest()

	idx, err := mf.Section(secDictIdx)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	nbU := idx.Uvarint()
	nbWant := (nTerms + persist.FrontBlock - 1) / persist.FrontBlock
	if idx.Err() != nil || nbU != nbWant {
		return nil, fmt.Errorf("%w: dictionary index has %d blocks, want %d", ErrBadSnapshot, nbU, nbWant)
	}
	offs := make([]uint64, nbU)
	prev := uint64(0)
	for b := range offs {
		prev += idx.Uvarint()
		if b == 0 && prev != 0 {
			return nil, fmt.Errorf("%w: first dictionary block offset %d, want 0", ErrBadSnapshot, prev)
		}
		if prev >= uint64(len(termData)) {
			return nil, fmt.Errorf("%w: dictionary block offset %d beyond term data", ErrBadSnapshot, prev)
		}
		offs[b] = prev
	}
	if err := idx.Err(); err != nil {
		return nil, fmt.Errorf("%w: dictionary index: %v", ErrBadSnapshot, err)
	}
	if idx.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in dictionary index", ErrBadSnapshot)
	}

	sorted, ok := mf.SectionBytes(secDictSort)
	if !ok {
		return nil, fmt.Errorf("%w: missing term-sorted section", ErrBadSnapshot)
	}
	if uint64(len(sorted)) != 4*nTerms {
		return nil, fmt.Errorf("%w: term-sorted section is %d bytes, want %d", ErrBadSnapshot, len(sorted), 4*nTerms)
	}
	md := newMappedDict(int(nTerms), termData, offs, sorted, cacheSlots, path)
	for i := 0; i < md.n; i++ {
		if id := uint64(md.sortedID(i)); id == 0 || id > nTerms {
			return nil, fmt.Errorf("%w: term-sorted entry %d out of range", ErrBadSnapshot, i)
		}
	}
	return md, nil
}

// parseMappedStats loads the per-predicate distinct counts from STATS.
// The entries must be exactly the POS directory keys in order — the
// writer emits them that way, and the stats consumers (join ordering)
// assume a count exists for every predicate.
func parseMappedStats(mf *persist.MappedFile, frz *frozen) error {
	sec, err := mf.Section(secStats)
	if err != nil {
		// Not written by this writer — but tolerate a stripped section by
		// paying the O(n) pass the heap loader pays.
		frz.computeStats(len(frz.pos.keys))
		return nil
	}
	m := sec.Count(2)
	if sec.Err() != nil || m != len(frz.pos.keys) {
		return fmt.Errorf("%w: stats section covers %d predicates, POS has %d", ErrBadSnapshot, m, len(frz.pos.keys))
	}
	frz.predDistinctS = make(map[dict.ID]int, m)
	frz.predDistinctO = make(map[dict.ID]int, m)
	prev := uint64(0)
	for i := 0; i < m; i++ {
		prev += sec.Uvarint()
		ds := sec.Uvarint()
		do := sec.Uvarint()
		if sec.Err() != nil {
			return fmt.Errorf("%w: stats: %v", ErrBadSnapshot, sec.Err())
		}
		p := dict.ID(prev)
		if p != frz.pos.keys[i] {
			return fmt.Errorf("%w: stats predicate %d does not match POS key %d", ErrBadSnapshot, p, frz.pos.keys[i])
		}
		n := frz.pos.off[i+1] - frz.pos.off[i]
		if ds == 0 || do == 0 || ds > uint64(n) || do > uint64(n) {
			return fmt.Errorf("%w: implausible stats for predicate %d", ErrBadSnapshot, p)
		}
		frz.predDistinctS[p] = int(ds)
		frz.predDistinctO[p] = int(do)
	}
	if sec.Remaining() != 0 {
		return fmt.Errorf("%w: trailing bytes in stats section", ErrBadSnapshot)
	}
	return nil
}

// verifyPermFull decodes every block of a mapped permutation's value
// columns and validates the strict in-run (c2, c3) sort order — the
// VerifyFull pass, returning errors instead of trusting the CRC.
func verifyPermFull(px *permIndex) error {
	mc2, mc3 := px.c2.mc, px.c3.mc
	if mc2 == nil {
		return nil
	}
	ki := 0
	var p2, p3 dict.ID
	for b := 0; b < len(mc2.first); b++ {
		v2, err := mc2.decodeBlock(b)
		if err != nil {
			return err
		}
		v3, err := mc3.decodeBlock(b)
		if err != nil {
			return err
		}
		base := b << colBlockShift
		for j := range v2 {
			i := base + j
			for px.off[ki+1] <= i {
				ki++
			}
			if i > px.off[ki] && (p2 > v2[j] || (p2 == v2[j] && p3 >= v3[j])) {
				return errBadSnapshotf("unsorted run at row %d of permutation %d", i, px.kind)
			}
			p2, p3 = v2[j], v3[j]
		}
	}
	return nil
}

// Mapped reports whether this store serves its frozen base from an
// mmap'd snapshot.
func (st *Store) Mapped() bool { return st.mapped != nil }

// MappedStats returns cache and mapping statistics; ok is false for
// stores not opened with OpenFrozenSnapshotMapped.
func (st *Store) MappedStats() (MappedStats, bool) {
	ms := st.mapped
	if ms == nil {
		return MappedStats{}, false
	}
	var s MappedStats
	s.Path = ms.path
	s.MappedBytes = int64(len(ms.data))
	s.BlockCacheHits, s.BlockCacheMisses = ms.cache.counts()
	s.TermCacheHits, s.TermCacheMisses = ms.md.counts()
	s.DecodeStallNanos = ms.cache.decodeNanos.Load()
	return s, true
}

// CloseMapped unmaps the snapshot backing this store's frozen base. The
// store must not be read after this — the caller (the server's swap
// lock) must ensure no reads are in flight.
func (st *Store) CloseMapped() error {
	if st.mapped == nil {
		return nil
	}
	err := st.mapped.close()
	st.mapped = nil
	return err
}
