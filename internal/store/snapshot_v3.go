package store

// Snapshot format v3: the mmap-servable layout.
//
// v2 (snapshot_v2.go) serializes the frozen layout, but its c2/c3
// columns are one contiguous zigzag-delta stream per permutation —
// random access requires decoding from the start, so the reader must
// materialize everything. v3 keeps the v2 framing and dictionary
// payload but block-codes the columns and adds the directories a
// zero-copy reader needs to serve straight off the file:
//
//	section META     1  baseEpoch, triple count, term count (as v2)
//	section DICT     2  term count + front-coded term blocks (as v2)
//	section SPO..PSO 3-6  per permutation: key directory and run
//	                 lengths (as v2), then per column (c2, c3): block
//	                 count, per-block first values (zigzag deltas),
//	                 per-block byte offsets (uvarint deltas), data
//	                 length, and the concatenated block payloads —
//	                 block b holds blockLen-1 zigzag deltas from its
//	                 first value. Blocks span colBlock rows, so row i
//	                 lives in block i>>colBlockShift: random access is
//	                 one block decode, not a column scan.
//	section DICTIDX  7  byte offset of every FrontBlock restart inside
//	                 DICT's term data — lazy ID→term resolution decodes
//	                 one 16-term block.
//	section DICTSORT 8  all term IDs as fixed-width u32, ordered by
//	                 persist.CompareTerms — lazy term→ID resolution is
//	                 a binary search over this array.
//	section STATS    9  per-predicate distinct-subject/object counts,
//	                 so a mapped open skips the O(n) stats pass.
//
// The copying loader (OpenFrozenSnapshot) reads v3 too — it decodes
// every block into heap columns and revalidates the same invariants the
// v2 decoder checks. The zero-copy loader is OpenFrozenSnapshotMapped
// (snapshot_mapped.go) and accepts only v3.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"rdfcube/internal/dict"
	"rdfcube/internal/persist"
	"rdfcube/internal/rdf"
)

// snapshotVersionMapped is the version byte of the mmap-servable format.
const snapshotVersionMapped = 3

// Section ids added by the v3 snapshot file (1-6 shared with v2).
const (
	secDictIdx  uint8 = 7
	secDictSort uint8 = 8
	secStats    uint8 = 9
)

// WriteFrozenSnapshotV3 serializes the complete store in the mmap-
// servable v3 format, compacting any pending delta first (see
// WriteFrozenSnapshot for the epoch consequences).
func (st *Store) WriteFrozenSnapshotV3(w io.Writer) error {
	st.Freeze()
	return st.WriteFrozenBaseV3(w)
}

// WriteFrozenBaseV3 serializes the frozen base columns and the full
// dictionary in the v3 format, leaving any delta overlay out — the
// checkpoint artifact of the mapped serving mode. The store must be
// frozen.
func (st *Store) WriteFrozenBaseV3(w io.Writer) error {
	if st.frz == nil {
		return fmt.Errorf("store: WriteFrozenBaseV3 requires a frozen store")
	}
	return writeFrozenBaseV3(w, st.Version().Base, st.frz, st.dict.Terms())
}

// writeFrozenBaseV3 serializes one frozen base + dictionary under an
// explicit base epoch — shared by WriteFrozenBaseV3 and the mapped
// compactor, which stamps the post-install epoch.
func writeFrozenBaseV3(w io.Writer, baseEpoch uint64, frz *frozen, terms []rdf.Term) error {
	if uint64(len(terms)) > math.MaxUint32 {
		return fmt.Errorf("store: %d terms exceed the v3 dictionary limit", len(terms))
	}
	fw := persist.NewFileWriter(snapshotMagic, snapshotVersionMapped)

	var meta persist.Enc
	meta.Uvarint(baseEpoch)
	meta.Uvarint(uint64(frz.spo.len()))
	meta.Uvarint(uint64(len(terms)))
	fw.Section(secMeta, meta.Bytes())

	var de persist.Enc
	de.Uvarint(uint64(len(terms)))
	offs := persist.EncodeTermBlockOffsets(&de, terms)
	fw.Section(secDict, de.Bytes())

	var ie persist.Enc
	ie.Uvarint(uint64(len(offs)))
	prev := uint64(0)
	for _, o := range offs {
		ie.Uvarint(o - prev)
		prev = o
	}
	fw.Section(secDictIdx, ie.Bytes())
	fw.Section(secDictSort, encodeDictSort(terms))

	for _, s := range []struct {
		id uint8
		px *permIndex
	}{{secSPO, &frz.spo}, {secPOS, &frz.pos}, {secOSP, &frz.osp}, {secPSO, &frz.pso}} {
		var e persist.Enc
		encodePermV3(&e, s.px)
		fw.Section(s.id, e.Bytes())
	}

	fw.Section(secStats, encodeStatsV3(frz))
	return fw.Write(w)
}

// encodeDictSort serializes the term-sorted ID array: all IDs 1..n as
// fixed-width u32 LE, ordered by persist.CompareTerms over their terms.
func encodeDictSort(terms []rdf.Term) []byte {
	order := make([]uint32, len(terms))
	for i := range order {
		order[i] = uint32(i + 1)
	}
	sort.Slice(order, func(i, j int) bool {
		return persist.CompareTerms(terms[order[i]-1], terms[order[j]-1]) < 0
	})
	out := make([]byte, 4*len(order))
	for i, id := range order {
		binary.LittleEndian.PutUint32(out[4*i:], id)
	}
	return out
}

// encodePermV3 serializes one permutation in the block-coded layout.
func encodePermV3(e *persist.Enc, px *permIndex) {
	n := px.len()
	k := len(px.keys)
	e.Uvarint(uint64(n))
	e.Uvarint(uint64(k))
	prev := dict.ID(0)
	for _, key := range px.keys {
		e.Uvarint(uint64(key - prev))
		prev = key
	}
	for i := 0; i < k; i++ {
		e.Uvarint(uint64(px.off[i+1] - px.off[i]))
	}
	encodeColBlocksV3(e, &px.c2, n)
	encodeColBlocksV3(e, &px.c3, n)
}

// encodeColBlocksV3 serializes one value column as colBlock-row blocks:
// block count, first values (zigzag deltas), byte offsets (uvarint
// deltas, first is 0), data length, block payloads.
func encodeColBlocksV3(e *persist.Enc, col *column, n int) {
	nb := (n + colBlock - 1) / colBlock
	firsts := make([]dict.ID, nb)
	offs := make([]uint64, nb)
	var data persist.Enc
	for b := 0; b < nb; b++ {
		lo := b * colBlock
		hi := min(n, lo+colBlock)
		offs[b] = uint64(data.Len())
		firsts[b] = col.at(lo)
		prev := firsts[b]
		for i := lo + 1; i < hi; i++ {
			v := col.at(i)
			data.Varint(int64(v) - int64(prev))
			prev = v
		}
	}
	e.Uvarint(uint64(nb))
	pf := int64(0)
	for _, f := range firsts {
		e.Varint(int64(f) - pf)
		pf = int64(f)
	}
	po := uint64(0)
	for _, o := range offs {
		e.Uvarint(o - po)
		po = o
	}
	e.Uvarint(uint64(data.Len()))
	e.Raw(data.Bytes())
}

// encodeStatsV3 serializes the per-predicate distinct counts: entry
// count, then (predicate delta, distinct subjects, distinct objects)
// per predicate in ascending predicate order. The predicates are
// exactly the POS directory keys.
func encodeStatsV3(f *frozen) []byte {
	var e persist.Enc
	e.Uvarint(uint64(len(f.pos.keys)))
	prev := dict.ID(0)
	for _, p := range f.pos.keys {
		e.Uvarint(uint64(p - prev))
		prev = p
		e.Uvarint(uint64(f.predDistinctS[p]))
		e.Uvarint(uint64(f.predDistinctO[p]))
	}
	return e.Bytes()
}

// parsePermV3 parses one v3 permutation section into a mapped-backed
// permIndex WITHOUT decoding any block payload: the key directory, run
// lengths and block directories are validated and heap-materialized
// (they are small), while the block data keeps aliasing data. Block
// contents are validated when decoded — see mappedCol.decodeBlock.
func parsePermV3(data []byte, kind permKind, wantN, termCount uint64, baseColID uint32, cache *blockCache, path string) (permIndex, error) {
	px := permIndex{kind: kind}
	d := persist.NewDec(data)
	nU := d.Uvarint()
	kU := d.Uvarint()
	if err := d.Err(); err != nil {
		return px, err
	}
	if nU != wantN {
		return px, fmt.Errorf("%w: permutation holds %d triples, want %d", ErrBadSnapshot, nU, wantN)
	}
	if kU > nU || nU > math.MaxUint32*uint64(colBlock) {
		return px, fmt.Errorf("%w: implausible permutation sizes n=%d k=%d", ErrBadSnapshot, nU, kU)
	}
	if kU > uint64(d.Remaining())/2 {
		return px, fmt.Errorf("%w: key directory larger than section", ErrBadSnapshot)
	}
	if nU > 0 && kU == 0 {
		return px, fmt.Errorf("%w: %d triples but empty key directory", ErrBadSnapshot, nU)
	}
	n, k := int(nU), int(kU)
	px.keys = make([]dict.ID, k)
	px.off = make([]int, k+1)
	prev := uint64(0)
	for i := 0; i < k; i++ {
		delta := d.Uvarint()
		if delta == 0 {
			return px, fmt.Errorf("%w: non-ascending key directory at %d", ErrBadSnapshot, i)
		}
		prev += delta
		if prev > termCount {
			return px, fmt.Errorf("%w: key %d out of dictionary range", ErrBadSnapshot, prev)
		}
		px.keys[i] = dict.ID(prev)
	}
	total := 0
	for i := 0; i < k; i++ {
		run := d.Uvarint()
		if d.Err() != nil {
			return px, d.Err()
		}
		if run == 0 || run > uint64(n-total) {
			return px, fmt.Errorf("%w: bad run length %d at key %d", ErrBadSnapshot, run, i)
		}
		total += int(run)
		px.off[i+1] = total
	}
	if total != n {
		return px, fmt.Errorf("%w: run lengths cover %d of %d triples", ErrBadSnapshot, total, n)
	}
	c2, err := parseColV3(d, n, termCount, baseColID, cache, path)
	if err != nil {
		return px, err
	}
	c3, err := parseColV3(d, n, termCount, baseColID+1, cache, path)
	if err != nil {
		return px, err
	}
	if err := d.Err(); err != nil {
		return px, err
	}
	if d.Remaining() != 0 {
		return px, fmt.Errorf("%w: %d trailing bytes in permutation section", ErrBadSnapshot, d.Remaining())
	}
	px.c1 = column{rf: &runFill{keys: px.keys, off: px.off, n: n}}
	px.c2 = column{mc: c2}
	px.c3 = column{mc: c3}
	return px, nil
}

// parseColV3 parses one block-coded column's directory and takes an
// aliasing view of its payload.
func parseColV3(d *persist.Dec, n int, termCount uint64, id uint32, cache *blockCache, path string) (*mappedCol, error) {
	nbU := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	nbWant := uint64((n + colBlock - 1) / colBlock)
	if nbU != nbWant {
		return nil, fmt.Errorf("%w: column has %d blocks, want %d", ErrBadSnapshot, nbU, nbWant)
	}
	// Each block contributes at least one byte to the first-value deltas
	// and one to the offset deltas — bound the directory allocations by
	// the bytes actually present before allocating.
	if nbU > uint64(d.Remaining())/2 {
		return nil, fmt.Errorf("%w: block directory larger than section", ErrBadSnapshot)
	}
	nb := int(nbU)
	firsts := make([]dict.ID, nb)
	acc := int64(0)
	for b := 0; b < nb; b++ {
		acc += d.Varint()
		if acc <= 0 || uint64(acc) > termCount {
			return nil, fmt.Errorf("%w: block first value %d out of dictionary range", ErrBadSnapshot, acc)
		}
		firsts[b] = dict.ID(acc)
	}
	offs := make([]uint32, nb)
	po := uint64(0)
	for b := 0; b < nb; b++ {
		po += d.Uvarint()
		if b == 0 && po != 0 {
			return nil, fmt.Errorf("%w: first block offset %d, want 0", ErrBadSnapshot, po)
		}
		if po > math.MaxUint32 {
			return nil, fmt.Errorf("%w: block offset %d overflows", ErrBadSnapshot, po)
		}
		offs[b] = uint32(po)
	}
	dataLen := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if dataLen > uint64(d.Remaining()) || dataLen > math.MaxUint32 {
		return nil, fmt.Errorf("%w: column data length %d exceeds section", ErrBadSnapshot, dataLen)
	}
	if po > dataLen {
		return nil, fmt.Errorf("%w: last block offset %d beyond data length %d", ErrBadSnapshot, po, dataLen)
	}
	// Every non-first value takes at least one varint byte: a claimed
	// triple count wildly beyond the payload is rejected here, before the
	// heap loader sizes its arrays from n.
	if uint64(n-nb) > dataLen {
		return nil, fmt.Errorf("%w: %d column values cannot fit in %d data bytes", ErrBadSnapshot, n, dataLen)
	}
	raw := d.Rest()[:dataLen]
	d.Skip(int(dataLen))
	return &mappedCol{
		id: id, n: n, data: raw, offs: offs, first: firsts,
		maxID: termCount, cache: cache, path: path,
	}, nil
}

// decodePermV3Heap materializes a v3 permutation section into heap
// columns, revalidating the in-run sort order the way the v2 decoder
// does — the copying loader's path.
func decodePermV3Heap(data []byte, kind permKind, wantN, termCount uint64) (permIndex, error) {
	mx, err := parsePermV3(data, kind, wantN, termCount, 0, nil, "")
	if err != nil {
		return mx, err
	}
	n := mx.c1.length()
	k := len(mx.keys)
	px := permIndex{kind: kind, keys: mx.keys, off: mx.off}
	cols := make([]dict.ID, 3*n)
	a1, a2, a3 := cols[:n:n], cols[n:2*n:2*n], cols[2*n:]
	for i := 0; i < k; i++ {
		for j := px.off[i]; j < px.off[i+1]; j++ {
			a1[j] = px.keys[i]
		}
	}
	for ci, pair := range []struct {
		mc  *mappedCol
		dst []dict.ID
	}{{mx.c2.mc, a2}, {mx.c3.mc, a3}} {
		for b := 0; b < len(pair.mc.first); b++ {
			vals, err := pair.mc.decodeBlock(b)
			if err != nil {
				return px, fmt.Errorf("column %d block %d: %w", ci, b, err)
			}
			copy(pair.dst[b<<colBlockShift:], vals)
		}
	}
	for i := 0; i < k; i++ {
		for j := px.off[i] + 1; j < px.off[i+1]; j++ {
			if a2[j-1] > a2[j] || (a2[j-1] == a2[j] && a3[j-1] >= a3[j]) {
				return px, fmt.Errorf("%w: unsorted run at row %d", ErrBadSnapshot, j)
			}
		}
	}
	px.c1, px.c2, px.c3 = heapCol(a1), heapCol(a2), heapCol(a3)
	return px, nil
}

// openFrozenV3Heap is the copying loader for a v3 snapshot: identical
// contract to the v2 branch of OpenFrozenSnapshot, with every block
// decoded into heap columns. The lazy sections (DICTIDX, DICTSORT,
// STATS) are ignored — the heap loader pays the O(n) passes anyway.
func openFrozenV3Heap(f *persist.File) (*Store, error) {
	meta, err := f.Section(secMeta)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	baseEpoch := meta.Uvarint()
	nTriples := meta.Uvarint()
	nTerms := meta.Uvarint()
	if err := meta.Err(); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrBadSnapshot, err)
	}
	if baseEpoch > 0xffffffff {
		return nil, fmt.Errorf("%w: base epoch %d out of range", ErrBadSnapshot, baseEpoch)
	}

	dd, err := f.Section(secDict)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	declared := dd.Count(2)
	if uint64(declared) != nTerms {
		return nil, fmt.Errorf("%w: dictionary holds %d terms, meta says %d", ErrBadSnapshot, declared, nTerms)
	}
	terms, err := persist.DecodeTermBlock(dd, declared)
	if err != nil {
		return nil, fmt.Errorf("%w: dictionary: %v", ErrBadSnapshot, err)
	}

	st := New()
	for i, t := range terms {
		if id := st.dict.Encode(t); uint64(id) != uint64(i)+1 {
			return nil, fmt.Errorf("%w: duplicate term at position %d", ErrBadSnapshot, i)
		}
	}

	frz := &frozen{}
	for _, s := range []struct {
		id   uint8
		kind permKind
		px   *permIndex
	}{
		{secSPO, permSPO, &frz.spo}, {secPOS, permPOS, &frz.pos},
		{secOSP, permOSP, &frz.osp}, {secPSO, permPSO, &frz.pso},
	} {
		sec, err := f.Section(s.id)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if *s.px, err = decodePermV3Heap(sec.Rest(), s.kind, nTriples, nTerms); err != nil {
			return nil, err
		}
	}
	frz.computeStats(len(frz.pos.keys))

	st.frz = frz
	st.size = int(nTriples)
	st.noMaps = true
	st.ver.Store(baseEpoch << 32)
	for i, p := range frz.pos.keys {
		st.predCount[p] = frz.pos.off[i+1] - frz.pos.off[i]
	}
	return st, nil
}
