package store

// mappedDict is the lazy dictionary of a mapped snapshot: a dict.Base
// over the front-coded term blocks that stay resident only as mapped
// bytes. ID→term decodes one FrontBlock-term block through a small
// fixed-size cache; term→ID binary-searches the snapshot's term-sorted
// ID section, decoding O(log n) probe terms. Nothing is materialized at
// open, so a dictionary of millions of terms costs a few block
// directories of heap.
//
// Decoded terms are heap copies (the persist decoder builds fresh
// strings), so values handed out remain valid after the snapshot is
// unmapped. Like mapped columns, term bytes are CRC-verified at open;
// a decode failure afterwards panics with *persist.ArtifactError.

import (
	"encoding/binary"
	"sort"
	"sync/atomic"

	"rdfcube/internal/dict"
	"rdfcube/internal/persist"
	"rdfcube/internal/rdf"
)

// defaultTermCacheSlots bounds the decoded-term cache at slots ×
// FrontBlock terms (256 × 16 = 4096 resident terms).
const defaultTermCacheSlots = 256

// mappedDict serves IDs 1..n from mapped front-coded term data. It is
// safe for concurrent use: the block cache is the same lock-free
// direct-mapped design as blockCache.
type mappedDict struct {
	n      int
	data   []byte   // term payload (after the count uvarint), aliasing the map
	offs   []uint64 // byte offset of each FrontBlock restart within data
	sorted []byte   // n × u32 LE term IDs in persist.CompareTerms order
	path   string   // error context

	slots  []atomic.Pointer[termBlock]
	mask   uint32
	hits   atomic.Uint64
	misses atomic.Uint64
}

type termBlock struct {
	idx   int
	terms []rdf.Term
}

var _ dict.Base = (*mappedDict)(nil)

func newMappedDict(n int, data []byte, offs []uint64, sorted []byte, slots int, path string) *mappedDict {
	if slots <= 0 {
		slots = defaultTermCacheSlots
	}
	size := 1
	for size < slots {
		size <<= 1
	}
	return &mappedDict{
		n: n, data: data, offs: offs, sorted: sorted, path: path,
		slots: make([]atomic.Pointer[termBlock], size),
		mask:  uint32(size - 1),
	}
}

func (md *mappedDict) Len() int { return md.n }

// Term resolves a base ID by decoding its block through the cache.
func (md *mappedDict) Term(id dict.ID) (rdf.Term, bool) {
	i := int(id) - 1
	if id == dict.NoID || i < 0 || i >= md.n {
		return rdf.Term{}, false
	}
	b := i / persist.FrontBlock
	return md.block(b)[i%persist.FrontBlock], true
}

// Lookup binary-searches the term-sorted ID section. Each probe decodes
// one term (through the block cache, so hot probe paths stay cheap).
func (md *mappedDict) Lookup(t rdf.Term) (dict.ID, bool) {
	i := sort.Search(md.n, func(i int) bool {
		return persist.CompareTerms(md.termAt(md.sortedID(i)), t) >= 0
	})
	if i < md.n {
		if id := md.sortedID(i); persist.CompareTerms(md.termAt(id), t) == 0 {
			return id, true
		}
	}
	return dict.NoID, false
}

// AppendTerms appends the terms with IDs in (after, n] in ID order —
// the bulk path behind Dictionary.Terms, decoding block by block.
func (md *mappedDict) AppendTerms(out []rdf.Term, after int) []rdf.Term {
	if after < 0 {
		after = 0
	}
	for i := after; i < md.n; {
		b := i / persist.FrontBlock
		terms := md.block(b)
		out = append(out, terms[i-b*persist.FrontBlock:]...)
		i = b*persist.FrontBlock + len(terms)
	}
	return out
}

// sortedID returns the i-th ID of the term-sorted section. The opener
// has range-checked every entry, so no bounds validation here.
func (md *mappedDict) sortedID(i int) dict.ID {
	return dict.ID(binary.LittleEndian.Uint32(md.sorted[4*i:]))
}

// termAt is Term for IDs known to be in range (the sorted section).
func (md *mappedDict) termAt(id dict.ID) rdf.Term {
	i := int(id) - 1
	b := i / persist.FrontBlock
	return md.block(b)[i%persist.FrontBlock]
}

// blockLen returns the term count of block b.
func (md *mappedDict) blockLen(b int) int {
	if n := md.n - b*persist.FrontBlock; n < persist.FrontBlock {
		return n
	}
	return persist.FrontBlock
}

// block returns the decoded terms of block b through the cache. A
// decode failure panics with *persist.ArtifactError (see file comment).
func (md *mappedDict) block(b int) []rdf.Term {
	slot := (uint32(b)*0x9E3779B1 + 1) & md.mask
	if e := md.slots[slot].Load(); e != nil && e.idx == b {
		md.hits.Add(1)
		return e.terms
	}
	md.misses.Add(1)
	terms, err := md.decodeBlockTerms(b)
	if err != nil {
		panic(err)
	}
	md.slots[slot].Store(&termBlock{idx: b, terms: terms})
	return terms
}

// decodeBlockTerms decodes block b from the mapped term data.
func (md *mappedDict) decodeBlockTerms(b int) ([]rdf.Term, error) {
	terms, err := persist.DecodeTermsAt(md.data[md.offs[b]:], md.blockLen(b))
	if err != nil {
		return nil, &persist.ArtifactError{Path: md.path, Kind: "snapshot", Offset: -1, Err: err}
	}
	return terms, nil
}

// counts returns the accumulated term-cache hit/miss counters.
func (md *mappedDict) counts() (hits, misses uint64) {
	return md.hits.Load(), md.misses.Load()
}

// verify decodes every term block and checks the term-sorted section is
// strictly ascending under persist.CompareTerms — the VerifyFull pass,
// returning errors instead of trusting the CRC.
func (md *mappedDict) verify() error {
	nb := len(md.offs)
	for b := 0; b < nb; b++ {
		if _, err := md.decodeBlockTerms(b); err != nil {
			return err
		}
	}
	for i := 1; i < md.n; i++ {
		if persist.CompareTerms(md.termAt(md.sortedID(i-1)), md.termAt(md.sortedID(i))) >= 0 {
			return errBadSnapshotf("term-sorted section not strictly ascending at %d", i)
		}
	}
	return nil
}
