package store

// Snapshot format v2: the frozen layout on disk.
//
// Where the v1 format (snapshot.go) is a flat triple list that the
// reader must re-insert and re-Freeze — paying the nested-map build and
// three sorts on every load — v2 serializes the *frozen* layout itself:
//
//	section META  baseEpoch, triple count, term count
//	section DICT  front-coded dictionary blocks, ID order
//	section SPO/POS/OSP  per permutation: delta-encoded key directory,
//	              run lengths, zigzag-delta c2/c3 columns
//
// (section framing, checksums and codecs in internal/persist). Loading
// is one sequential pass that decodes straight into the columnar arrays:
// no re-sort, no nested-map rebuild — the store comes back in the
// mapless frozen mode (see Store.noMaps) with its maps rehydrated only
// if a deletion or Thaw ever needs them. The section table carries
// per-section lengths and CRCs, so a future reader can mmap the file and
// wire the columns in place; today's reader validates every structural
// invariant (ascending keys, in-run sort order, ID ranges) before
// trusting a file, returning ErrBadSnapshot — never panicking — on
// malformed input.
//
// The snapshot records the store's base epoch and always contains the
// full dictionary, but only the *base* columns: WriteFrozenBase is the
// checkpoint half of a (snapshot, WAL) pair where the delta tail lives
// in the log, while WriteFrozenSnapshot folds any pending delta in
// first (compacting, which moves the base epoch) and is the whole-store
// serialization the CLIs use.

import (
	"bufio"
	"fmt"
	"io"

	"rdfcube/internal/dict"
	"rdfcube/internal/persist"
)

// snapshotVersionFrozen is the version byte of the frozen-layout format.
const snapshotVersionFrozen = 2

// Section ids of the v2 snapshot file.
const (
	secMeta uint8 = 1
	secDict uint8 = 2
	secSPO  uint8 = 3
	secPOS  uint8 = 4
	secOSP  uint8 = 5
	// secPSO carries the fourth permutation. Files written before it
	// existed simply lack the section; the loader detects the absence
	// and rebuilds PSO from SPO, so old snapshots stay readable.
	secPSO uint8 = 6
)

// WriteFrozenSnapshot serializes the complete store in the frozen v2
// format. A pending delta overlay (or an unfrozen store) is compacted
// first via Freeze, so the snapshot reflects every accepted triple; note
// that compacting moves the base epoch, invalidating delta feeds pinned
// to the previous base.
func (st *Store) WriteFrozenSnapshot(w io.Writer) error {
	st.Freeze()
	return st.WriteFrozenBase(w)
}

// WriteFrozenBase serializes the frozen base columns and the full
// dictionary, leaving any delta overlay out: the checkpointing daemon
// pairs this with its write-ahead log, which holds exactly the delta
// tail. The store must be frozen.
func (st *Store) WriteFrozenBase(w io.Writer) error {
	if st.frz == nil {
		return fmt.Errorf("store: WriteFrozenBase requires a frozen store")
	}
	terms := st.dict.Terms()
	fw := persist.NewFileWriter(snapshotMagic, snapshotVersionFrozen)

	var meta persist.Enc
	meta.Uvarint(st.Version().Base)
	meta.Uvarint(uint64(st.frz.spo.len()))
	meta.Uvarint(uint64(len(terms)))
	fw.Section(secMeta, meta.Bytes())

	var de persist.Enc
	de.Uvarint(uint64(len(terms)))
	persist.EncodeTermBlock(&de, terms)
	fw.Section(secDict, de.Bytes())

	for _, s := range []struct {
		id uint8
		px *permIndex
	}{{secSPO, &st.frz.spo}, {secPOS, &st.frz.pos}, {secOSP, &st.frz.osp}, {secPSO, &st.frz.pso}} {
		var e persist.Enc
		encodePerm(&e, s.px)
		fw.Section(s.id, e.Bytes())
	}
	return fw.Write(w)
}

// encodePerm serializes one permutation: triple count, key count, the
// strictly-ascending key directory as unsigned deltas, the run lengths
// (off diffs), then the c2 and c3 columns as zigzag deltas. c1 is not
// stored — it is the run-fill of keys over off.
func encodePerm(e *persist.Enc, px *permIndex) {
	n := px.len()
	k := len(px.keys)
	e.Uvarint(uint64(n))
	e.Uvarint(uint64(k))
	prev := dict.ID(0)
	for _, key := range px.keys {
		e.Uvarint(uint64(key - prev))
		prev = key
	}
	for i := 0; i < k; i++ {
		e.Uvarint(uint64(px.off[i+1] - px.off[i]))
	}
	for _, col := range []*column{&px.c2, &px.c3} {
		prev = 0
		for i := 0; i < n; {
			vals, base := col.block(i)
			end := min(n, base+len(vals))
			for ; i < end; i++ {
				v := vals[i-base]
				e.Varint(int64(v) - int64(prev))
				prev = v
			}
		}
	}
}

// decodePerm reads one permutation, validating every invariant the read
// paths depend on: strictly ascending keys, positive run lengths summing
// to the triple count, IDs in (0, termCount], and strict (c2, c3) sort
// order inside every key run (the triple set is duplicate-free).
func decodePerm(d *persist.Dec, kind permKind, wantN uint64, termCount uint64) (permIndex, error) {
	px := permIndex{kind: kind}
	nU := d.Uvarint()
	kU := d.Uvarint()
	if err := d.Err(); err != nil {
		return px, err
	}
	if nU != wantN {
		return px, fmt.Errorf("%w: permutation holds %d triples, want %d", ErrBadSnapshot, nU, wantN)
	}
	// Bound the claimed sizes by the bytes present BEFORE any int
	// conversion or allocation: each triple contributes at least one
	// byte to each of c2 and c3, each key at least one delta byte and
	// one run-length byte. This also rules out values overflowing int.
	if nU > uint64(d.Remaining()) || kU > nU {
		return px, fmt.Errorf("%w: implausible permutation sizes n=%d k=%d", ErrBadSnapshot, nU, kU)
	}
	if nU > 0 && kU == 0 {
		return px, fmt.Errorf("%w: %d triples but empty key directory", ErrBadSnapshot, nU)
	}
	n, k := int(nU), int(kU)
	px.keys = make([]dict.ID, k)
	px.off = make([]int, k+1)
	prev := uint64(0)
	for i := 0; i < k; i++ {
		delta := d.Uvarint()
		if delta == 0 {
			return px, fmt.Errorf("%w: non-ascending key directory at %d", ErrBadSnapshot, i)
		}
		prev += delta
		if prev > termCount {
			return px, fmt.Errorf("%w: key %d out of dictionary range", ErrBadSnapshot, prev)
		}
		px.keys[i] = dict.ID(prev)
	}
	total := 0
	for i := 0; i < k; i++ {
		run := d.Uvarint()
		if d.Err() != nil {
			return px, d.Err()
		}
		if run == 0 || run > uint64(n-total) {
			return px, fmt.Errorf("%w: bad run length %d at key %d", ErrBadSnapshot, run, i)
		}
		total += int(run)
		px.off[i+1] = total
	}
	if total != n {
		return px, fmt.Errorf("%w: run lengths cover %d of %d triples", ErrBadSnapshot, total, n)
	}
	cols := make([]dict.ID, 3*n)
	a1, a2, a3 := cols[:n:n], cols[n:2*n:2*n], cols[2*n:]
	for i := 0; i < k; i++ {
		for j := px.off[i]; j < px.off[i+1]; j++ {
			a1[j] = px.keys[i]
		}
	}
	for _, col := range [][]dict.ID{a2, a3} {
		acc := int64(0)
		for i := 0; i < n; i++ {
			acc += d.Varint()
			if acc <= 0 || uint64(acc) > termCount {
				return px, fmt.Errorf("%w: column value %d out of dictionary range", ErrBadSnapshot, acc)
			}
			col[i] = dict.ID(acc)
		}
	}
	if err := d.Err(); err != nil {
		return px, err
	}
	// In-run sort order: within one c1 run, (c2, c3) must be strictly
	// ascending — binary searches and the merged-read dedup contract
	// depend on it.
	for i := 0; i < k; i++ {
		for j := px.off[i] + 1; j < px.off[i+1]; j++ {
			if a2[j-1] > a2[j] ||
				(a2[j-1] == a2[j] && a3[j-1] >= a3[j]) {
				return px, fmt.Errorf("%w: unsorted run at row %d", ErrBadSnapshot, j)
			}
		}
	}
	px.c1, px.c2, px.c3 = heapCol(a1), heapCol(a2), heapCol(a3)
	return px, nil
}

// OpenFrozenSnapshot loads a snapshot in either format: a v2 frozen
// snapshot decodes straight into the columnar indexes (the store is
// returned frozen, in the mapless mode), while a v1 flat snapshot falls
// back to ReadSnapshotFrozen — load, rebuild, Freeze. Malformed input of
// either version returns an error wrapping ErrBadSnapshot.
func OpenFrozenSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(5)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(head[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, head[:4])
	}
	if head[4] == snapshotVersion {
		return ReadSnapshotFrozen(br)
	}
	f, err := persist.ReadFile(br, snapshotMagic)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if f.Version == snapshotVersionMapped {
		return openFrozenV3Heap(f)
	}
	if f.Version != snapshotVersionFrozen {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, f.Version)
	}

	meta, err := f.Section(secMeta)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	baseEpoch := meta.Uvarint()
	nTriples := meta.Uvarint()
	nTerms := meta.Uvarint()
	if err := meta.Err(); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrBadSnapshot, err)
	}
	if baseEpoch > 0xffffffff {
		return nil, fmt.Errorf("%w: base epoch %d out of range", ErrBadSnapshot, baseEpoch)
	}

	dd, err := f.Section(secDict)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	declared := dd.Count(2)
	if uint64(declared) != nTerms {
		return nil, fmt.Errorf("%w: dictionary holds %d terms, meta says %d", ErrBadSnapshot, declared, nTerms)
	}
	terms, err := persist.DecodeTermBlock(dd, declared)
	if err != nil {
		return nil, fmt.Errorf("%w: dictionary: %v", ErrBadSnapshot, err)
	}

	st := New()
	for i, t := range terms {
		if id := st.dict.Encode(t); uint64(id) != uint64(i)+1 {
			return nil, fmt.Errorf("%w: duplicate term at position %d", ErrBadSnapshot, i)
		}
	}

	frz := &frozen{}
	for _, s := range []struct {
		id   uint8
		kind permKind
		px   *permIndex
	}{{secSPO, permSPO, &frz.spo}, {secPOS, permPOS, &frz.pos}, {secOSP, permOSP, &frz.osp}} {
		sec, err := f.Section(s.id)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if *s.px, err = decodePerm(sec, s.kind, nTriples, nTerms); err != nil {
			return nil, err
		}
	}
	if f.HasSection(secPSO) {
		sec, err := f.Section(secPSO)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if frz.pso, err = decodePerm(sec, permPSO, nTriples, nTerms); err != nil {
			return nil, err
		}
	} else {
		// Snapshot predates the fourth permutation: rebuild it from the
		// validated SPO columns (one extract + sort at load time).
		frz.rebuildPSO()
	}
	frz.computeStats(len(frz.pos.keys))

	st.frz = frz
	st.size = int(nTriples)
	st.noMaps = true
	st.ver.Store(baseEpoch << 32)
	// Per-predicate triple counts are the POS run lengths.
	for i, p := range frz.pos.keys {
		st.predCount[p] = frz.pos.off[i+1] - frz.pos.off[i]
	}
	return st, nil
}
