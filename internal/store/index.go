package store

// Frozen, read-optimized triple indexes: the RDF-3X/HDT-style layout.
//
// Freeze() compacts the mutable nested-map indexes into three sorted
// permutations of the triple set — SPO, POS and OSP — stored column-wise
// (three parallel []dict.ID slices per permutation) with a first-level
// offset directory over the leading component. Every triple-pattern
// shape then resolves to one contiguous range:
//
//	first component bound        -> directory binary search, O(log k)
//	first two components bound   -> + binary search inside the run
//	all three bound              -> + binary search on the third column
//
// so prefix counts are O(log n), range scans are linear walks over
// contiguous memory, and the Subjects/Objects dedup becomes a sorted-run
// walk with no maps. Freeze also precomputes per-predicate distinct
// subject/object counts (one O(n) pass over SPO and POS), which feed the
// BGP optimizer's bound-aware cardinality estimates.
//
// Inserts do NOT invalidate the frozen state: they accumulate in the
// sorted delta overlay of delta.go, and reads merge the base range with
// the delta range of the same permutation. Freeze on a store with a
// pending delta compacts — folds the overlay into a rebuilt base and
// advances the base epoch — as does crossing the compaction threshold.
// Only deletions (not representable in the append-only overlay) drop
// the frozen state outright.

import (
	"sort"

	"rdfcube/internal/dict"
)

// permKind names a permutation's component order.
type permKind uint8

const (
	permSPO permKind = iota // c1=S c2=P c3=O
	permPOS                 // c1=P c2=O c3=S
	permOSP                 // c1=O c2=S c3=P
	permPSO                 // c1=P c2=S c3=O
)

// permIndex is one sorted permutation in columnar layout. The triple set
// is sorted lexicographically by (c1, c2, c3); keys/off form the
// first-level offset directory: keys holds the distinct c1 values in
// ascending order and off[i:i+2] bounds keys[i]'s run.
type permIndex struct {
	kind       permKind
	c1, c2, c3 column
	keys       []dict.ID
	off        []int
}

// frozen is the read-optimized view of a store.
type frozen struct {
	spo, pos, osp permIndex

	// pso is the fourth permutation (c1=P c2=S c3=O): predicate runs
	// whose rows are subject-sorted. The classic pattern shapes never
	// need it (patternRange covers them with three permutations); it
	// exists for subject-keyed cursors over P-bound patterns with a free
	// object — the batch engine's streamed chain steps (NewCursorPSO).
	pso permIndex

	// Per-predicate distinct-subject/object counts, computed at freeze
	// time in one pass over SPO (distinct (s,p) pairs per p) and POS
	// (distinct (p,o) pairs per p).
	predDistinctS map[dict.ID]int
	predDistinctO map[dict.ID]int
}

// Freeze compacts the store onto sorted-array indexes. On a map-only
// store it builds the frozen base (the version is untouched: contents
// did not change). On a frozen store with a pending delta it compacts —
// rebuilds the base from the authoritative maps, clears the overlay and
// advances the base epoch, so materializations pinned to the old feed
// know to recompute. Repeated calls on an unmodified store are no-ops.
func (st *Store) Freeze() {
	if st.frz != nil {
		if st.dlt.len() == 0 {
			return
		}
		st.compact()
		return
	}
	st.build()
}

// compact folds the delta overlay into a rebuilt frozen base. Base and
// overlay are two sorted runs of the same permutation order, so the
// rebuild is a linear merge per permutation — no extraction from the
// maps and no re-sort.
func (st *Store) compact() {
	st.frz = st.mergedFrozen()
	st.dlt.reset()
	st.bumpBase()
}

// mergedFrozen merges the frozen base with the current delta overlay
// into a fresh base — the shared read-only heart of inline compaction
// and PrepareCompaction.
func (st *Store) mergedFrozen() *frozen {
	f := &frozen{}
	f.spo = mergePerm(&st.frz.spo, st.dlt.runPerm(permSPO), st.dlt.spo)
	f.pos = mergePerm(&st.frz.pos, st.dlt.runPerm(permPOS), st.dlt.pos)
	f.osp = mergePerm(&st.frz.osp, st.dlt.runPerm(permOSP), st.dlt.osp)
	f.pso = mergePerm(&st.frz.pso, st.dlt.runPerm(permPSO), st.dlt.pso)
	f.computeStats(len(st.predCount))
	return f
}

// PreparedCompaction is a frozen base rebuilt off the write path: the
// result of merging a snapshot of the base with the delta overlay as of
// PrepareCompaction. InstallCompaction swaps it in.
type PreparedCompaction struct {
	f        *frozen
	against  *frozen // the base the merge consumed
	base     uint64  // its epoch
	consumed int     // delta-feed prefix folded into f
}

// Pending reports how many delta triples the prepared base folded in.
func (pc *PreparedCompaction) Pending() int { return pc.consumed }

// PrepareCompaction merges the frozen base with the current delta
// overlay into a fresh base without touching the store — the expensive
// half of a compaction, safe to run concurrently with readers (it only
// reads the base and the overlay; the caller must hold whatever lock
// serializes it against writes, e.g. the server's read lock). Returns
// nil when there is nothing to compact. Hand the result to
// InstallCompaction under the write lock to swap it in.
func (st *Store) PrepareCompaction() *PreparedCompaction {
	if st.frz == nil || st.dlt.len() == 0 {
		return nil
	}
	return &PreparedCompaction{
		f:        st.mergedFrozen(),
		against:  st.frz,
		base:     st.Version().Base,
		consumed: st.dlt.len(),
	}
}

// InstallCompaction swaps a prepared base in under the caller's write
// serialization: the folded delta prefix leaves the overlay, the base
// epoch advances (materializations pinned to the old feed recompute,
// as with any compaction), and writes accepted after the prepare are
// re-queued as the head of the new overlay, preserving arrival order.
// It reports false — discarding the prepared work — when the store's
// base moved since the prepare (an inline compaction, deletion, thaw or
// explicit Freeze won the race).
func (st *Store) InstallCompaction(pc *PreparedCompaction) bool {
	if pc == nil || st.frz != pc.against || st.Version().Base != pc.base {
		return false
	}
	tail := append([]IDTriple(nil), st.dlt.log[pc.consumed:]...)
	st.frz = pc.f
	st.dlt.reset()
	st.bumpBase()
	for _, t := range tail {
		st.dlt.add(t)
		st.ver.Add(1)
	}
	return true
}

// mergePerm merges a frozen permutation with the (up to two) sorted
// delta runs of the same permutation — the spilled run and the
// in-memory tail — into a fresh heap-backed columnar index. The three
// sides are pairwise disjoint by construction, so the merge never
// deduplicates.
func mergePerm(px *permIndex, run, mem []IDTriple) permIndex {
	ts := run
	if len(ts) == 0 {
		ts = mem
	} else if len(mem) > 0 {
		// Pre-merge the two delta sides; they are small relative to the
		// base, so the extra pass is noise next to the base merge.
		ts = mergeTripleRuns(px.kind, run, mem)
	}
	n := px.len() + len(ts)
	out := permIndex{kind: px.kind}
	cols := make([]dict.ID, 3*n)
	o1, o2, o3 := cols[:n:n], cols[n:2*n:2*n], cols[2*n:]
	w := 0
	j := 0
	if b1, b2, b3 := px.c1.arr, px.c2.arr, px.c3.arr; b1 != nil {
		i := 0
		for i < len(b1) && j < len(ts) {
			da, db, dc := permuteTriple(px.kind, ts[j])
			if colsLess(da, db, dc, b1[i], b2[i], b3[i]) {
				o1[w], o2[w], o3[w] = da, db, dc
				j++
			} else {
				o1[w], o2[w], o3[w] = b1[i], b2[i], b3[i]
				i++
			}
			w++
		}
		for ; i < len(b1); i++ {
			o1[w], o2[w], o3[w] = b1[i], b2[i], b3[i]
			w++
		}
	} else {
		// Generic backing (a mapped base being folded to heap): iterate
		// triples through the column layer.
		i, bn := 0, px.len()
		for i < bn && j < len(ts) {
			da, db, dc := permuteTriple(px.kind, ts[j])
			ba, bb, bc := permuteTriple(px.kind, px.triple(i))
			if colsLess(da, db, dc, ba, bb, bc) {
				o1[w], o2[w], o3[w] = da, db, dc
				j++
			} else {
				o1[w], o2[w], o3[w] = ba, bb, bc
				i++
			}
			w++
		}
		for ; i < bn; i++ {
			o1[w], o2[w], o3[w] = permuteTriple(px.kind, px.triple(i))
			w++
		}
	}
	for ; j < len(ts); j++ {
		o1[w], o2[w], o3[w] = permuteTriple(px.kind, ts[j])
		w++
	}
	out.c1, out.c2, out.c3 = heapCol(o1), heapCol(o2), heapCol(o3)
	out.buildDirectory()
	return out
}

// mergeTripleRuns merges two triple runs sorted by the permuted key.
func mergeTripleRuns(kind permKind, a, b []IDTriple) []IDTriple {
	out := make([]IDTriple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if permLess(kind, b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// colsLess orders two permuted component triples lexicographically.
func colsLess(a1, b1, c1, a2, b2, c2 dict.ID) bool {
	if a1 != a2 {
		return a1 < a2
	}
	if b1 != b2 {
		return b1 < b2
	}
	return c1 < c2
}

// rehydrate populates the nested maps of a snapshot-loaded store from
// the frozen base and delta overlay, returning it to the invariant that
// the maps are authoritative. Deletion and Thaw — the operations that
// need per-triple mutable structure — call it on demand; the append-only
// serving paths never do.
func (st *Store) rehydrate() {
	if !st.noMaps {
		return
	}
	st.ForEach(Pattern{}, func(t IDTriple) bool {
		insert3(st.spo, t.S, t.P, t.O)
		insert3(st.pos, t.P, t.O, t.S)
		insert3(st.osp, t.O, t.S, t.P)
		return true
	})
	st.noMaps = false
}

// build constructs the frozen indexes from the nested maps.
func (st *Store) build() {
	n := st.size
	base := make([]IDTriple, 0, n)
	for s, m2 := range st.spo {
		for p, leaf := range m2 {
			for o := range leaf {
				base = append(base, IDTriple{s, p, o})
			}
		}
	}
	f := &frozen{
		predDistinctS: make(map[dict.ID]int, len(st.predCount)),
		predDistinctO: make(map[dict.ID]int, len(st.predCount)),
	}
	// One scratch slice is re-copied from base for each permutation's
	// sort, keeping Freeze's transient footprint at 2x the triple set
	// instead of 4x. The component mapping is permuteTriple (delta.go),
	// the same one the delta overlay sorts by — merged reads depend on
	// base and overlay agreeing on the permuted order.
	scratch := make([]IDTriple, n)
	f.spo.build(permSPO, base, scratch)
	f.pos.build(permPOS, base, scratch)
	f.osp.build(permOSP, base, scratch)
	f.pso.build(permPSO, base, scratch)
	f.computeStats(len(st.predCount))
	st.frz = f
}

// computeStats derives the per-predicate distinct counts from the sorted
// permutations: distinct subjects per predicate are the distinct
// (c1,c2)=(s,p) pairs in SPO grouped by p, distinct objects the distinct
// (c1,c2)=(p,o) pairs in POS grouped by p.
func (f *frozen) computeStats(sizeHint int) {
	f.predDistinctS = make(map[dict.ID]int, sizeHint)
	f.predDistinctO = make(map[dict.ID]int, sizeHint)
	spo := &f.spo
	if c1, c2 := spo.c1.arr, spo.c2.arr; c1 != nil {
		for i := range c1 {
			if i == 0 || c1[i] != c1[i-1] || c2[i] != c2[i-1] {
				f.predDistinctS[c2[i]]++
			}
		}
	} else {
		// c1 changes exactly at directory boundaries, so each run is one
		// subject and the distinct (s, p) pairs are the distinct c2
		// values per run.
		var scratch []dict.ID
		for j := 0; j+1 < len(spo.off); j++ {
			scratch = spo.c2.distinctTo(scratch[:0], spo.off[j], spo.off[j+1])
			for _, p := range scratch {
				f.predDistinctS[p]++
			}
		}
	}
	pos := &f.pos
	if c1, c2 := pos.c1.arr, pos.c2.arr; c1 != nil {
		for i := range c1 {
			if i == 0 || c1[i] != c1[i-1] || c2[i] != c2[i-1] {
				f.predDistinctO[c1[i]]++
			}
		}
	} else {
		var scratch []dict.ID
		for j := 0; j+1 < len(pos.off); j++ {
			scratch = pos.c2.distinctTo(scratch[:0], pos.off[j], pos.off[j+1])
			f.predDistinctO[pos.keys[j]] += len(scratch)
		}
	}
}

// rebuildPSO derives the PSO permutation from the SPO columns — the
// load-time fallback for v2 snapshots written before PSO existed.
func (f *frozen) rebuildPSO() {
	n := f.spo.len()
	base := make([]IDTriple, 0, n)
	base = f.spo.appendRange(base, 0, n)
	scratch := make([]IDTriple, n)
	f.pso.build(permPSO, base, scratch)
}

// Thaw drops the frozen indexes (and any delta overlay), returning the
// store to its mutable map-only state. Useful for benchmarking the two
// paths against each other and before sustained write bursts. Discarding
// a non-empty overlay loses the delta feed, so that case advances the
// base epoch.
func (st *Store) Thaw() {
	if st.frz == nil {
		return
	}
	st.rehydrate() // a snapshot-loaded store must regain its maps first
	st.frz = nil
	if st.dlt.len() > 0 {
		st.dlt.reset()
		st.bumpBase()
	}
}

// IsFrozen reports whether the store serves reads from the compacted
// base (possibly merged with a delta overlay).
func (st *Store) IsFrozen() bool { return st.frz != nil }

// build sorts base under the permutation's component order (using
// scratch, len(base), as sort space) and scatters it into the columnar
// layout, then derives the first-level directory.
func (px *permIndex) build(kind permKind, base, scratch []IDTriple) {
	px.kind = kind
	n := len(base)
	perm := scratch
	copy(perm, base)
	sort.Slice(perm, func(i, j int) bool { return permLess(kind, perm[i], perm[j]) })
	cols := make([]dict.ID, 3*n)
	a1, a2, a3 := cols[:n:n], cols[n:2*n:2*n], cols[2*n:]
	for i, t := range perm {
		a1[i], a2[i], a3[i] = permuteTriple(kind, t)
	}
	px.c1, px.c2, px.c3 = heapCol(a1), heapCol(a2), heapCol(a3)
	px.buildDirectory()
}

// buildDirectory derives the first-level offset directory from the
// sorted c1 column.
func (px *permIndex) buildDirectory() {
	c1 := px.c1.arr // directories are built only over heap columns
	n := len(c1)
	px.keys, px.off = px.keys[:0], px.off[:0]
	for i := 0; i < n; i++ {
		if i == 0 || c1[i] != c1[i-1] {
			px.keys = append(px.keys, c1[i])
			px.off = append(px.off, i)
		}
	}
	px.off = append(px.off, n)
}

// len reports the triple count.
func (px *permIndex) len() int { return px.c1.length() }

// keyRange returns the [lo, hi) run of first-component value v, or an
// empty range when v is absent.
func (px *permIndex) keyRange(v dict.ID) (int, int) {
	i := sort.Search(len(px.keys), func(i int) bool { return px.keys[i] >= v })
	if i == len(px.keys) || px.keys[i] != v {
		return 0, 0
	}
	return px.off[i], px.off[i+1]
}

// pairRange narrows a first-component run [lo, hi) to the subrange where
// the second component equals v.
func (px *permIndex) pairRange(lo, hi int, v dict.ID) (int, int) {
	l := px.c2.search(lo, hi, v)
	r := px.c2.searchAbove(l, hi, v)
	return l, r
}

// contains reports whether the permuted triple (a, b, c) is present.
func (px *permIndex) contains(a, b, c dict.ID) bool {
	lo, hi := px.keyRange(a)
	lo, hi = px.pairRange(lo, hi, b)
	i := px.c3.search(lo, hi, c)
	return i < hi && px.c3.at(i) == c
}

// triple reconstructs the i-th triple in (S, P, O) orientation.
func (px *permIndex) triple(i int) IDTriple {
	v1, v2, v3 := px.c1.at(i), px.c2.at(i), px.c3.at(i)
	switch px.kind {
	case permPOS:
		return IDTriple{S: v3, P: v1, O: v2}
	case permOSP:
		return IDTriple{S: v2, P: v3, O: v1}
	case permPSO:
		return IDTriple{S: v2, P: v1, O: v3}
	default:
		return IDTriple{S: v1, P: v2, O: v3}
	}
}

// forEachRange calls fn for triples [lo, hi), reporting false on early
// stop. The per-kind loops keep triple reconstruction branch-free inside
// the hot loop.
func (px *permIndex) forEachRange(lo, hi int, fn func(IDTriple) bool) bool {
	if c1 := px.c1.arr; c1 != nil {
		c2, c3 := px.c2.arr, px.c3.arr
		switch px.kind {
		case permPOS:
			for i := lo; i < hi; i++ {
				if !fn(IDTriple{S: c3[i], P: c1[i], O: c2[i]}) {
					return false
				}
			}
		case permOSP:
			for i := lo; i < hi; i++ {
				if !fn(IDTriple{S: c2[i], P: c3[i], O: c1[i]}) {
					return false
				}
			}
		case permPSO:
			for i := lo; i < hi; i++ {
				if !fn(IDTriple{S: c2[i], P: c1[i], O: c3[i]}) {
					return false
				}
			}
		default:
			for i := lo; i < hi; i++ {
				if !fn(IDTriple{S: c1[i], P: c2[i], O: c3[i]}) {
					return false
				}
			}
		}
		return true
	}
	// Mapped backing: iterate block-sized slabs of c2/c3 and ride the
	// run directory for c1, so the scan decodes each block exactly once
	// instead of paying a cache probe per row.
	if lo >= hi {
		return true
	}
	ki := sort.Search(len(px.keys), func(j int) bool { return px.off[j+1] > lo })
	i := lo
	for i < hi {
		v2, b2 := px.c2.block(i)
		v3, b3 := px.c3.block(i)
		end := min(hi, min(b2+len(v2), b3+len(v3)))
		for ; i < end; i++ {
			for px.off[ki+1] <= i {
				ki++
			}
			k, x2, x3 := px.keys[ki], v2[i-b2], v3[i-b3]
			var t IDTriple
			switch px.kind {
			case permPOS:
				t = IDTriple{S: x3, P: k, O: x2}
			case permOSP:
				t = IDTriple{S: x2, P: x3, O: k}
			case permPSO:
				t = IDTriple{S: x2, P: k, O: x3}
			default:
				t = IDTriple{S: k, P: x2, O: x3}
			}
			if !fn(t) {
				return false
			}
		}
	}
	return true
}

// appendRange appends the triples [lo, hi) to out.
func (px *permIndex) appendRange(out []IDTriple, lo, hi int) []IDTriple {
	px.forEachRange(lo, hi, func(t IDTriple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// patternRange resolves pat to a contiguous range of one permutation.
// In this three-permutation set every shape is contiguous (S+O lands on
// OSP, where the two bounds are adjacent):
//
//	S P O -> spo   S P - -> spo   S - - -> spo
//	- P O -> pos   - P - -> pos
//	S - O -> osp   - - O -> osp   - - - -> spo (full)
func (f *frozen) patternRange(pat Pattern) (px *permIndex, lo, hi int) {
	sB, pB, oB := pat.S != Wild, pat.P != Wild, pat.O != Wild
	switch {
	case sB && pB: // S P O and S P -
		px = &f.spo
		lo, hi = px.keyRange(pat.S)
		lo, hi = px.pairRange(lo, hi, pat.P)
		if oB {
			l := px.c3.search(lo, hi, pat.O)
			if l < hi && px.c3.at(l) == pat.O {
				return px, l, l + 1
			}
			return px, 0, 0
		}
		return px, lo, hi
	case pB: // - P O and - P -
		px = &f.pos
		lo, hi = px.keyRange(pat.P)
		if oB {
			lo, hi = px.pairRange(lo, hi, pat.O)
		}
		return px, lo, hi
	case oB: // S - O and - - O
		px = &f.osp
		lo, hi = px.keyRange(pat.O)
		if sB {
			lo, hi = px.pairRange(lo, hi, pat.S)
		}
		return px, lo, hi
	case sB: // S - -
		px = &f.spo
		lo, hi = px.keyRange(pat.S)
		return px, lo, hi
	default: // - - -
		px = &f.spo
		return px, 0, px.len()
	}
}

// forEach is the frozen implementation of Store.ForEach.
func (f *frozen) forEach(pat Pattern, fn func(IDTriple) bool) {
	px, lo, hi := f.patternRange(pat)
	px.forEachRange(lo, hi, fn)
}

// count is the frozen implementation of Store.Count: every shape is a
// range length, O(log n).
func (f *frozen) count(pat Pattern) int {
	_, lo, hi := f.patternRange(pat)
	return hi - lo
}

// match materializes the matching triples with exact preallocation.
func (f *frozen) match(pat Pattern) []IDTriple {
	px, lo, hi := f.patternRange(pat)
	if hi <= lo {
		return nil
	}
	return px.appendRange(make([]IDTriple, 0, hi-lo), lo, hi)
}

// distinctRuns appends the distinct values of col[lo:hi] — which must be
// sorted ascending — to out via a run walk.
func distinctRuns(out []dict.ID, col []dict.ID, lo, hi int) []dict.ID {
	for i := lo; i < hi; i++ {
		if i == lo || col[i] != col[i-1] {
			out = append(out, col[i])
		}
	}
	return out
}

// sortDedup sorts ids in place and removes adjacent duplicates.
func sortDedup(ids []dict.ID) []dict.ID {
	if len(ids) < 2 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// subjects is the frozen implementation of Store.Subjects.
func (f *frozen) subjects(p, o dict.ID) []dict.ID {
	pB, oB := p != Wild, o != Wild
	switch {
	case pB && oB:
		// POS run (p, o): c3 holds the subjects, sorted and distinct.
		lo, hi := f.pos.keyRange(p)
		lo, hi = f.pos.pairRange(lo, hi, o)
		return f.pos.c3.appendTo(make([]dict.ID, 0, hi-lo), lo, hi)
	case pB:
		// POS run p: subjects repeat across object runs; gather and
		// sort-dedup (one allocation, no map).
		lo, hi := f.pos.keyRange(p)
		return sortDedup(f.pos.c3.appendTo(make([]dict.ID, 0, hi-lo), lo, hi))
	case oB:
		// OSP run o: c2 holds the subjects, sorted with duplicates.
		lo, hi := f.osp.keyRange(o)
		return f.osp.c2.distinctTo(nil, lo, hi)
	default:
		// All distinct subjects: the SPO directory keys.
		return append(make([]dict.ID, 0, len(f.spo.keys)), f.spo.keys...)
	}
}

// objects is the frozen implementation of Store.Objects.
func (f *frozen) objects(s, p dict.ID) []dict.ID {
	sB, pB := s != Wild, p != Wild
	switch {
	case sB && pB:
		// SPO run (s, p): c3 holds the objects, sorted and distinct.
		lo, hi := f.spo.keyRange(s)
		lo, hi = f.spo.pairRange(lo, hi, p)
		return f.spo.c3.appendTo(make([]dict.ID, 0, hi-lo), lo, hi)
	case sB:
		// SPO run s: objects sorted only within each predicate run.
		lo, hi := f.spo.keyRange(s)
		return sortDedup(f.spo.c3.appendTo(make([]dict.ID, 0, hi-lo), lo, hi))
	case pB:
		// POS run p: c2 holds the objects, sorted with duplicates.
		lo, hi := f.pos.keyRange(p)
		return f.pos.c2.distinctTo(nil, lo, hi)
	default:
		// All distinct objects: the OSP directory keys.
		return append(make([]dict.ID, 0, len(f.osp.keys)), f.osp.keys...)
	}
}
