package store

// Off-write-path compaction: PrepareCompaction / InstallCompaction must
// fold exactly the prepared delta prefix into the base, keep writes that
// raced the prepare as the new overlay's head, and refuse to install
// over a base that moved.

import (
	"math/rand"
	"testing"

	"rdfcube/internal/dict"
)

func TestPrepareInstallCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	st := randomTripleStore(rng, 200)
	st.SetInlineCompaction(false)
	st.SetCompactThreshold(4)
	st.Freeze()

	// Grow a delta past the threshold: with inline compaction off it must
	// stay an overlay.
	var delta []IDTriple
	for i := 0; len(delta) < 10; i++ {
		tr := IDTriple{S: dict.ID(1 + i), P: dict.ID(26 + i%8), O: dict.ID(55 + i%5)}
		if st.AddID(tr) {
			delta = append(delta, tr)
		}
	}
	if !st.NeedsCompaction() {
		t.Fatal("NeedsCompaction must report true past the threshold")
	}
	if st.DeltaLen() != len(delta) {
		t.Fatalf("inline compaction ran despite SetInlineCompaction(false): delta=%d", st.DeltaLen())
	}

	pc := st.PrepareCompaction()
	if pc == nil || pc.Pending() != len(delta) {
		t.Fatalf("PrepareCompaction: %+v", pc)
	}

	// Writes racing the prepare (between prepare and install) must
	// survive as the new overlay's head.
	racer := IDTriple{S: 24, P: 26, O: 1}
	for st.ContainsID(racer) {
		racer.O++
	}
	if !st.AddID(racer) {
		t.Fatal("racer insert failed")
	}

	before := st.Version()
	all := st.Match(Pattern{})
	if !st.InstallCompaction(pc) {
		t.Fatal("InstallCompaction refused a clean install")
	}
	after := st.Version()
	if after.Base != before.Base+1 {
		t.Fatalf("base epoch: %d -> %d, want +1", before.Base, after.Base)
	}
	if st.DeltaLen() != 1 {
		t.Fatalf("overlay after install: %d triples, want the 1 racer", st.DeltaLen())
	}
	if got := st.DeltaSince(0); len(got) != 1 || got[0] != racer {
		t.Fatalf("new overlay head: %v, want %v", got, racer)
	}
	got := st.Match(Pattern{})
	sortTriples(all)
	sortTriples(got)
	if !triplesEqual(all, got) {
		t.Fatalf("contents changed across install: %d vs %d triples", len(all), len(got))
	}
	for _, tr := range delta {
		if !st.ContainsID(tr) {
			t.Fatalf("folded delta triple %v missing after install", tr)
		}
	}

	// A second install of the same prepared base must refuse: the base
	// moved.
	if st.InstallCompaction(pc) {
		t.Fatal("InstallCompaction accepted a stale prepare")
	}

	// Prepare, then lose the race to an explicit Freeze: install refuses.
	for i := 0; i < 3; i++ {
		st.AddID(IDTriple{S: dict.ID(20 + i), P: 27, O: dict.ID(40 + i)})
	}
	pc = st.PrepareCompaction()
	if pc == nil {
		t.Fatal("expected a prepared compaction")
	}
	st.Freeze() // inline compaction wins
	if st.InstallCompaction(pc) {
		t.Fatal("InstallCompaction accepted a prepare raced by Freeze")
	}
	if pc := st.PrepareCompaction(); pc != nil {
		t.Fatal("PrepareCompaction on an empty overlay must return nil")
	}
}
