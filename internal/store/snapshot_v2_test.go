package store

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"rdfcube/internal/persist"
	"rdfcube/internal/rdf"
)

// buildTestStore populates a store with a deterministic mixed-shape
// graph: typed nodes, shared predicates, literals with datatypes and
// language tags.
func buildTestStore(t *testing.T, n int) *Store {
	t.Helper()
	st := New()
	for i := 0; i < n; i++ {
		u := rdf.NewIRI(fmt.Sprintf("http://ex.org/user%d", i))
		p := rdf.NewIRI(fmt.Sprintf("http://ex.org/post%d", i))
		st.Add(rdf.Triple{S: u, P: rdf.Type, O: rdf.NewIRI("http://ex.org/User")})
		st.Add(rdf.Triple{S: u, P: rdf.NewIRI("http://ex.org/age"), O: rdf.NewInt(int64(20 + i%9))})
		st.Add(rdf.Triple{S: u, P: rdf.NewIRI("http://ex.org/wrote"), O: p})
		st.Add(rdf.Triple{S: p, P: rdf.NewIRI("http://ex.org/label"), O: rdf.NewLangLiteral(fmt.Sprintf("post %d", i), "en")})
	}
	return st
}

// allPatterns returns one pattern per shape, using IDs present in st.
func allPatterns(st *Store) []Pattern {
	var tr IDTriple
	st.ForEach(Pattern{}, func(t IDTriple) bool { tr = t; return false })
	return []Pattern{
		{},
		{S: tr.S},
		{P: tr.P},
		{O: tr.O},
		{S: tr.S, P: tr.P},
		{P: tr.P, O: tr.O},
		{S: tr.S, O: tr.O},
		{S: tr.S, P: tr.P, O: tr.O},
	}
}

// diffStores fails the test when a and b disagree on any of the eight
// pattern shapes (probed with a's IDs — the dictionaries must assign
// identically for snapshots of the same store).
func diffStores(t *testing.T, a, b *Store) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len: %d != %d", a.Len(), b.Len())
	}
	if a.Dict().Len() != b.Dict().Len() {
		t.Fatalf("dict len: %d != %d", a.Dict().Len(), b.Dict().Len())
	}
	for _, pat := range allPatterns(a) {
		am, bm := a.Match(pat), b.Match(pat)
		if len(am) != len(bm) {
			t.Fatalf("pattern %+v: %d vs %d matches", pat, len(am), len(bm))
		}
		seen := make(map[IDTriple]bool, len(am))
		for _, tr := range am {
			seen[tr] = true
		}
		for _, tr := range bm {
			if !seen[tr] {
				t.Fatalf("pattern %+v: triple %+v only in reloaded store", pat, tr)
			}
		}
		if a.Count(pat) != b.Count(pat) {
			t.Fatalf("pattern %+v: count %d vs %d", pat, a.Count(pat), b.Count(pat))
		}
	}
}

func TestFrozenSnapshotRoundtrip(t *testing.T) {
	st := buildTestStore(t, 200)
	st.Freeze()
	var buf bytes.Buffer
	if err := st.WriteFrozenSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsFrozen() {
		t.Fatal("reloaded store is not frozen")
	}
	diffStores(t, st, got)
	// Dictionary IDs must be assigned identically.
	for _, term := range st.Dict().Terms() {
		wantID, _ := st.Dict().Lookup(term)
		gotID, ok := got.Dict().Lookup(term)
		if !ok || gotID != wantID {
			t.Fatalf("term %v: ID %d vs %d (ok=%v)", term, wantID, gotID, ok)
		}
	}
}

func TestFrozenSnapshotV1Fallback(t *testing.T) {
	st := buildTestStore(t, 50)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil { // v1 writer
		t.Fatal(err)
	}
	got, err := OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsFrozen() {
		t.Fatal("v1 fallback store is not frozen")
	}
	diffStores(t, st, got)
}

func TestFrozenSnapshotFoldsDelta(t *testing.T) {
	st := buildTestStore(t, 50)
	st.Freeze()
	st.Add(rdf.Triple{S: rdf.NewIRI("http://ex.org/late"), P: rdf.Type, O: rdf.NewIRI("http://ex.org/User")})
	if st.DeltaLen() != 1 {
		t.Fatalf("DeltaLen = %d, want 1", st.DeltaLen())
	}
	var buf bytes.Buffer
	if err := st.WriteFrozenSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if st.DeltaLen() != 0 {
		t.Fatal("WriteFrozenSnapshot must compact the pending delta")
	}
	got, err := OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	diffStores(t, st, got)
}

// TestMaplessWrites exercises the snapshot-loaded (mapless) store under
// delta writes: dedup, merged reads, version accounting and threshold
// compaction, differentially against a map-backed twin.
func TestMaplessWrites(t *testing.T) {
	st := buildTestStore(t, 100)
	var buf bytes.Buffer
	if err := st.WriteFrozenSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version().Base != st.Version().Base {
		t.Fatalf("base epoch %d, want %d", loaded.Version().Base, st.Version().Base)
	}

	// Duplicate insert must be rejected in mapless mode.
	dup := rdf.Triple{S: rdf.NewIRI("http://ex.org/user0"), P: rdf.Type, O: rdf.NewIRI("http://ex.org/User")}
	if loaded.Add(dup) {
		t.Fatal("duplicate accepted by mapless store")
	}
	if loaded.DeltaLen() != 0 {
		t.Fatal("duplicate reached the delta overlay")
	}

	twin := buildTestStore(t, 100)
	twin.Freeze()
	loaded.SetCompactThreshold(64)
	twin.SetCompactThreshold(64)
	for i := 0; i < 200; i++ {
		tr := rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://ex.org/new%d", i%150)),
			P: rdf.NewIRI("http://ex.org/age"),
			O: rdf.NewInt(int64(i % 150)),
		}
		if loaded.Add(tr) != twin.Add(tr) {
			t.Fatalf("insert %d: accept disagreement", i)
		}
	}
	diffStores(t, twin, loaded)
	if loaded.Version().Base == st.Version().Base {
		t.Fatal("threshold compaction should have moved the base epoch")
	}

	// ContainsID after compaction (still mapless).
	if !loaded.Contains(dup) {
		t.Fatal("lost a base triple across mapless compaction")
	}
}

func TestMaplessRemoveRehydrates(t *testing.T) {
	st := buildTestStore(t, 30)
	var buf bytes.Buffer
	if err := st.WriteFrozenSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	victim := rdf.Triple{S: rdf.NewIRI("http://ex.org/user3"), P: rdf.Type, O: rdf.NewIRI("http://ex.org/User")}
	if !loaded.Remove(victim) {
		t.Fatal("Remove failed on mapless store")
	}
	if loaded.Contains(victim) {
		t.Fatal("triple still present after Remove")
	}
	if loaded.Len() != st.Len()-1 {
		t.Fatalf("Len = %d, want %d", loaded.Len(), st.Len()-1)
	}
	// The store fell back to map mode; writes must still work.
	if !loaded.Add(victim) {
		t.Fatal("re-insert failed after rehydration")
	}
	diffStores(t, st, loaded)
}

func TestOpenFrozenSnapshotErrors(t *testing.T) {
	st := buildTestStore(t, 40)
	var buf bytes.Buffer
	if err := st.WriteFrozenSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, data []byte) {
		t.Helper()
		if _, err := OpenFrozenSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s: err = %v, want ErrBadSnapshot", name, err)
		}
	}
	check("empty", nil)
	check("bad magic", []byte("NOPE\x02xxxx"))
	check("future version", []byte{'R', 'D', 'F', 'C', 9, 0})
	for _, cut := range []int{5, 20, len(good) / 2, len(good) - 1} {
		check(fmt.Sprintf("truncated at %d", cut), good[:cut])
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-10] ^= 0xff
	check("bit flip", flipped)
}

func TestOpenFrozenSnapshotDuplicateTerm(t *testing.T) {
	// Hand-build a v2 snapshot whose dictionary repeats a term; the
	// loader must reject it rather than silently mis-assign IDs.
	fw := persist.NewFileWriter(snapshotMagic, snapshotVersionFrozen)
	var meta persist.Enc
	meta.Uvarint(0) // base epoch
	meta.Uvarint(0) // triples
	meta.Uvarint(2) // terms
	fw.Section(secMeta, meta.Bytes())
	var de persist.Enc
	de.Uvarint(2)
	dupTerm := rdf.NewIRI("http://ex.org/dup")
	persist.EncodeTermBlock(&de, []rdf.Term{dupTerm, dupTerm})
	fw.Section(secDict, de.Bytes())
	for _, id := range []uint8{secSPO, secPOS, secOSP} {
		var e persist.Enc
		e.Uvarint(0)
		e.Uvarint(0)
		fw.Section(id, e.Bytes())
	}
	var buf bytes.Buffer
	if err := fw.Write(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrBadSnapshot) || !strings.Contains(fmt.Sprint(err), "duplicate term") {
		t.Fatalf("err = %v, want duplicate-term ErrBadSnapshot", err)
	}
}

func TestMergeCompactionMatchesBuild(t *testing.T) {
	// Compaction by sorted merge must produce exactly the layout a
	// from-scratch Freeze produces.
	a := buildTestStore(t, 80)
	a.Freeze()
	b := buildTestStore(t, 80)
	extra := func(st *Store) {
		for i := 0; i < 40; i++ {
			st.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://ex.org/x%d", i)),
				P: rdf.NewIRI("http://ex.org/age"),
				O: rdf.NewInt(int64(i)),
			})
		}
	}
	extra(a) // lands in a's delta overlay
	a.Freeze()
	extra(b) // lands in b's maps
	b.Freeze()

	for _, pair := range []struct {
		name string
		pa   *permIndex
		pb   *permIndex
	}{
		{"spo", &a.frz.spo, &b.frz.spo},
		{"pos", &a.frz.pos, &b.frz.pos},
		{"osp", &a.frz.osp, &b.frz.osp},
	} {
		if pair.pa.len() != pair.pb.len() {
			t.Fatalf("%s: %d vs %d rows", pair.name, pair.pa.len(), pair.pb.len())
		}
		for i := 0; i < pair.pa.len(); i++ {
			if pair.pa.c1.at(i) != pair.pb.c1.at(i) || pair.pa.c2.at(i) != pair.pb.c2.at(i) || pair.pa.c3.at(i) != pair.pb.c3.at(i) {
				t.Fatalf("%s: row %d differs", pair.name, i)
			}
		}
	}
	diffStores(t, b, a)
}
