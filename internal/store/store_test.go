package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e.org/" + s) }

func tri(s, p, o string) rdf.Triple {
	return rdf.NewTriple(iri(s), iri(p), iri(o))
}

func TestAddContainsRemove(t *testing.T) {
	st := New()
	tr := tri("s", "p", "o")
	if st.Contains(tr) {
		t.Error("empty store contains triple")
	}
	if !st.Add(tr) {
		t.Error("first Add must report new")
	}
	if st.Add(tr) {
		t.Error("second Add must report duplicate")
	}
	if !st.Contains(tr) || st.Len() != 1 {
		t.Error("triple not stored")
	}
	if !st.Remove(tr) {
		t.Error("Remove must report present")
	}
	if st.Remove(tr) {
		t.Error("second Remove must report absent")
	}
	if st.Contains(tr) || st.Len() != 0 {
		t.Error("triple not removed")
	}
}

func TestRemoveUnknownTerms(t *testing.T) {
	st := New()
	st.Add(tri("s", "p", "o"))
	if st.Remove(tri("s", "p", "never-seen")) {
		t.Error("Remove of never-interned object must report absent")
	}
	if st.Len() != 1 {
		t.Error("store size changed")
	}
}

func TestAllPatternShapes(t *testing.T) {
	st := New()
	d := st.Dict()
	// 3 subjects x 2 predicates x 2 objects.
	for s := 0; s < 3; s++ {
		for p := 0; p < 2; p++ {
			for o := 0; o < 2; o++ {
				st.Add(tri(fmt.Sprintf("s%d", s), fmt.Sprintf("p%d", p), fmt.Sprintf("o%d", o)))
			}
		}
	}
	id := func(local string) dict.ID {
		v, ok := d.Lookup(iri(local))
		if !ok {
			t.Fatalf("unknown term %s", local)
		}
		return v
	}
	cases := []struct {
		pat  Pattern
		want int
	}{
		{Pattern{}, 12},
		{Pattern{S: id("s0")}, 4},
		{Pattern{P: id("p0")}, 6},
		{Pattern{O: id("o0")}, 6},
		{Pattern{S: id("s0"), P: id("p1")}, 2},
		{Pattern{P: id("p1"), O: id("o1")}, 3},
		{Pattern{S: id("s2"), O: id("o1")}, 2},
		{Pattern{S: id("s1"), P: id("p0"), O: id("o0")}, 1},
	}
	for _, c := range cases {
		if got := len(st.Match(c.pat)); got != c.want {
			t.Errorf("Match(%+v) = %d results, want %d", c.pat, got, c.want)
		}
		if got := st.Count(c.pat); got != c.want {
			t.Errorf("Count(%+v) = %d, want %d", c.pat, got, c.want)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	st := New()
	for i := 0; i < 10; i++ {
		st.Add(tri(fmt.Sprintf("s%d", i), "p", "o"))
	}
	n := 0
	st.ForEach(Pattern{}, func(IDTriple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("iterated %d triples after early stop, want 3", n)
	}
}

// TestMatchAgainstNaiveScan is the core store property: indexed pattern
// matching returns exactly what a full scan filtered by the pattern does.
func TestMatchAgainstNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	st := New()
	var all []IDTriple
	for i := 0; i < 500; i++ {
		tr := IDTriple{
			S: dict.ID(st.Dict().Encode(iri(fmt.Sprintf("s%d", rng.Intn(20))))),
			P: dict.ID(st.Dict().Encode(iri(fmt.Sprintf("p%d", rng.Intn(5))))),
			O: dict.ID(st.Dict().Encode(iri(fmt.Sprintf("o%d", rng.Intn(30))))),
		}
		if st.AddID(tr) {
			all = append(all, tr)
		}
	}
	naive := func(pat Pattern) map[IDTriple]bool {
		out := map[IDTriple]bool{}
		for _, tr := range all {
			if (pat.S == Wild || pat.S == tr.S) &&
				(pat.P == Wild || pat.P == tr.P) &&
				(pat.O == Wild || pat.O == tr.O) {
				out[tr] = true
			}
		}
		return out
	}
	for trial := 0; trial < 200; trial++ {
		var pat Pattern
		if rng.Intn(2) == 0 {
			pat.S = dict.ID(1 + rng.Intn(55))
		}
		if rng.Intn(2) == 0 {
			pat.P = dict.ID(1 + rng.Intn(55))
		}
		if rng.Intn(2) == 0 {
			pat.O = dict.ID(1 + rng.Intn(55))
		}
		want := naive(pat)
		got := st.Match(pat)
		if len(got) != len(want) {
			t.Fatalf("pattern %+v: %d matches, naive %d", pat, len(got), len(want))
		}
		for _, tr := range got {
			if !want[tr] {
				t.Fatalf("pattern %+v: unexpected match %+v", pat, tr)
			}
		}
		if st.Count(pat) != len(want) {
			t.Fatalf("pattern %+v: Count=%d, want %d", pat, st.Count(pat), len(want))
		}
	}
}

func TestRemoveCleansIndexes(t *testing.T) {
	st := New()
	tr := tri("s", "p", "o")
	st.Add(tr)
	st.Remove(tr)
	// After full removal, every index walk must be empty.
	if got := st.Match(Pattern{}); len(got) != 0 {
		t.Errorf("full scan after removal: %d triples", len(got))
	}
	s, _ := st.Dict().Lookup(iri("s"))
	p, _ := st.Dict().Lookup(iri("p"))
	o, _ := st.Dict().Lookup(iri("o"))
	for _, pat := range []Pattern{{S: s}, {P: p}, {O: o}, {S: s, P: p}, {P: p, O: o}, {S: s, O: o}} {
		if st.Count(pat) != 0 {
			t.Errorf("Count(%+v) = %d after removal", pat, st.Count(pat))
		}
	}
	if st.Stats().Predicates != 0 {
		t.Error("predicate stats not cleaned")
	}
}

func TestSubjectsObjects(t *testing.T) {
	st := New()
	st.Add(tri("a", "p", "x"))
	st.Add(tri("a", "p", "y"))
	st.Add(tri("b", "p", "x"))
	p, _ := st.Dict().Lookup(iri("p"))
	if got := st.Subjects(p, Wild); len(got) != 2 {
		t.Errorf("Subjects = %d, want 2", len(got))
	}
	a, _ := st.Dict().Lookup(iri("a"))
	if got := st.Objects(a, p); len(got) != 2 {
		t.Errorf("Objects = %d, want 2", len(got))
	}
}

func TestStats(t *testing.T) {
	st := New()
	st.Add(tri("a", "p", "x"))
	st.Add(tri("b", "p", "x"))
	st.Add(tri("a", "q", "y"))
	stats := st.Stats()
	if stats.Triples != 3 || stats.Predicates != 2 {
		t.Errorf("Stats = %+v", stats)
	}
	p, _ := st.Dict().Lookup(iri("p"))
	if st.PredicateCount(p) != 2 {
		t.Errorf("PredicateCount(p) = %d", st.PredicateCount(p))
	}
	if st.DistinctSubjects(p) != 2 || st.DistinctObjects(p) != 1 {
		t.Error("distinct counts wrong")
	}
}

func TestEstimateCardinalityExactShapes(t *testing.T) {
	st := New()
	for i := 0; i < 10; i++ {
		st.Add(tri(fmt.Sprintf("s%d", i%3), "p", fmt.Sprintf("o%d", i)))
	}
	p, _ := st.Dict().Lookup(iri("p"))
	if got := st.EstimateCardinality(Pattern{P: p}); got != 10 {
		t.Errorf("estimate for bound predicate = %g, want 10 (exact)", got)
	}
	if got := st.EstimateCardinality(Pattern{}); got != 10 {
		t.Errorf("estimate for full scan = %g, want 10", got)
	}
	s0, _ := st.Dict().Lookup(iri("s0"))
	if got := st.EstimateCardinality(Pattern{S: s0, P: p}); got != 4 {
		t.Errorf("estimate for s0,p = %g, want 4 (exact)", got)
	}
}

func TestSharedDictionary(t *testing.T) {
	d := dict.New()
	a := NewWithDict(d)
	b := NewWithDict(d)
	a.Add(tri("s", "p", "o"))
	// The same term must get the same ID in both stores.
	idA, _ := a.Dict().Lookup(iri("s"))
	b.Add(tri("s", "q", "o2"))
	idB, _ := b.Dict().Lookup(iri("s"))
	if idA != idB {
		t.Error("shared dictionary issued different IDs")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		var o rdf.Term
		switch rng.Intn(3) {
		case 0:
			o = iri(fmt.Sprintf("o%d", rng.Intn(40)))
		case 1:
			o = rdf.NewInt(int64(rng.Intn(100)))
		default:
			o = rdf.NewLangLiteral(fmt.Sprintf("text%d", rng.Intn(10)), "en")
		}
		st.Add(rdf.NewTriple(iri(fmt.Sprintf("s%d", rng.Intn(20))), iri(fmt.Sprintf("p%d", rng.Intn(5))), o))
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if back.Len() != st.Len() {
		t.Fatalf("round trip size %d, want %d", back.Len(), st.Len())
	}
	d := st.Dict()
	st.ForEach(Pattern{}, func(tr IDTriple) bool {
		term, _ := d.DecodeTriple(tr.S, tr.P, tr.O)
		if !back.Contains(term) {
			t.Errorf("round trip lost %v", term)
			return false
		}
		return true
	})
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("RDFC\x02"),         // bad version
		[]byte("RDFC\x01\xff\xff"), // truncated term count
	}
	for i, data := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestSnapshotPropertyRoundTrip(t *testing.T) {
	f := func(subjects []uint8, lits []string) bool {
		st := New()
		for i, s := range subjects {
			var o rdf.Term
			if i < len(lits) {
				o = rdf.NewLiteral(lits[i])
			} else {
				o = rdf.NewInt(int64(s))
			}
			st.Add(rdf.NewTriple(iri(fmt.Sprintf("s%d", s%10)), iri("p"), o))
		}
		var buf bytes.Buffer
		if err := st.WriteSnapshot(&buf); err != nil {
			return false
		}
		back, err := ReadSnapshot(&buf)
		return err == nil && back.Len() == st.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	st := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Add(tri(fmt.Sprintf("s%d", i%1000), fmt.Sprintf("p%d", i%10), fmt.Sprintf("o%d", i)))
	}
}

func BenchmarkMatchBoundPredicate(b *testing.B) {
	st := New()
	for i := 0; i < 100000; i++ {
		st.Add(tri(fmt.Sprintf("s%d", i%1000), fmt.Sprintf("p%d", i%10), fmt.Sprintf("o%d", i)))
	}
	p, _ := st.Dict().Lookup(iri("p3"))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		st.ForEach(Pattern{P: p}, func(IDTriple) bool { n++; return true })
	}
}

func TestEpochAdvancesOnWrites(t *testing.T) {
	st := New()
	e0 := st.Epoch()
	st.Add(tri("s", "p", "o"))
	e1 := st.Epoch()
	if e1 <= e0 {
		t.Fatalf("Epoch after Add = %d, want > %d", e1, e0)
	}
	if st.Add(tri("s", "p", "o")) {
		t.Fatal("duplicate Add reported new")
	}
	if st.Epoch() != e1 {
		t.Errorf("duplicate Add changed epoch: %d -> %d", e1, st.Epoch())
	}
	st.Freeze()
	if st.Epoch() != e1 {
		t.Errorf("Freeze changed epoch: %d -> %d", e1, st.Epoch())
	}
	st.Thaw()
	if st.Epoch() != e1 {
		t.Errorf("Thaw changed epoch: %d -> %d", e1, st.Epoch())
	}
	st.Remove(tri("s", "p", "o"))
	if st.Epoch() <= e1 {
		t.Errorf("Epoch after Remove = %d, want > %d", st.Epoch(), e1)
	}
	if st.Remove(tri("s", "p", "o")) {
		t.Fatal("second Remove reported present")
	}
}

func TestReadSnapshotFrozen(t *testing.T) {
	st := New()
	for i := 0; i < 50; i++ {
		st.Add(tri(fmt.Sprintf("s%d", i%7), fmt.Sprintf("p%d", i%3), fmt.Sprintf("o%d", i)))
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshotFrozen(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsFrozen() {
		t.Error("ReadSnapshotFrozen returned an unfrozen store")
	}
	if back.Len() != st.Len() {
		t.Errorf("size %d, want %d", back.Len(), st.Len())
	}
}
