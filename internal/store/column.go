package store

// The column abstraction: one logical sorted-run []dict.ID with three
// physical backings, so every read path — directory searches, range
// scans, galloping cursor seeks, the batch engine's bulk fills — runs
// unchanged against either an in-heap array or an mmap'd snapshot
// section.
//
//	heap     a plain []dict.ID — the Freeze/compact and copying-loader
//	         representation; every hot loop keeps a branch-free fast
//	         path over it.
//	mapped   varint-delta blocks of colBlock values over a byte range
//	         that aliases the mapped snapshot file. A per-column block
//	         directory (byte offset + first value of every block, small
//	         and heap-resident) provides the skip pointers: random
//	         access decodes one block, binary search and galloping Seek
//	         stay O(log n) block probes instead of whole-column decodes.
//	         Decoded blocks go through a fixed-size lock-free cache.
//	runfill  the c1 column of a mapped permutation, which the snapshot
//	         does not store at all: it is reconstructed from the
//	         (keys, off) first-level directory — at(i) is a binary
//	         search for i's run, sequential walks ride the directory.
//
// A decoded mapped block that fails validation (a malformed varint or
// an out-of-range ID behind a valid section CRC) panics with a typed
// *persist.ArtifactError: the open path has already CRC-verified every
// section, so this is memory corruption or a hostile writer, not an
// expected input error. OpenMapped's VerifyFull mode front-loads that
// decode at open for callers (fuzzers, paranoid operators) that want
// malformed files rejected as errors instead.

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"rdfcube/internal/dict"
	"rdfcube/internal/persist"
)

// colBlock is the number of values per mapped column block. 1024 values
// keep a decoded block at 8 KiB — big enough to amortize varint decode,
// small enough that point lookups do not drag megabytes through the
// cache.
const (
	colBlockShift = 10
	colBlock      = 1 << colBlockShift
	colBlockMask  = colBlock - 1
)

// column is one logical value column with a heap, mapped or run-fill
// backing. Exactly one of the fields is set; the zero column is empty.
type column struct {
	arr []dict.ID
	mc  *mappedCol
	rf  *runFill
}

func heapCol(s []dict.ID) column { return column{arr: s} }

func (c *column) length() int {
	switch {
	case c.arr != nil:
		return len(c.arr)
	case c.mc != nil:
		return c.mc.n
	case c.rf != nil:
		return c.rf.n
	}
	return 0
}

// at returns value i. Heap: an index. Mapped: one cached block decode
// plus an index. Run-fill: a binary search over the run directory.
func (c *column) at(i int) dict.ID {
	if c.arr != nil {
		return c.arr[i]
	}
	if c.mc != nil {
		vals, base := c.mc.block(i)
		return vals[i-base]
	}
	return c.rf.at(i)
}

// block returns a decoded slab of consecutive values covering index i
// and the index of its first element — the bulk unit sequential scans
// and copies iterate by. Heap backing returns the whole array; mapped
// returns the (cached) decoded block. Not supported on run-fill columns
// (permutation code walks their run directory instead).
func (c *column) block(i int) (vals []dict.ID, base int) {
	if c.arr != nil {
		return c.arr, 0
	}
	return c.mc.block(i)
}

// search returns the first index in [lo, hi) with value >= v; the range
// must be sorted ascending.
func (c *column) search(lo, hi int, v dict.ID) int {
	if c.arr != nil {
		arr := c.arr
		return lo + sort.Search(hi-lo, func(i int) bool { return arr[lo+i] >= v })
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return c.at(lo+i) >= v })
}

// searchAbove returns the first index in [lo, hi) with value > v.
func (c *column) searchAbove(lo, hi int, v dict.ID) int {
	if c.arr != nil {
		arr := c.arr
		return lo + sort.Search(hi-lo, func(i int) bool { return arr[lo+i] > v })
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return c.at(lo+i) > v })
}

// gallop returns the first index in [lo, hi) with value >= v via
// exponential probing from lo capped by a binary search — O(log gap),
// the cursor Seek workhorse. The range must be sorted ascending.
func (c *column) gallop(lo, hi int, v dict.ID) int {
	if c.arr != nil {
		return gallopIDs(c.arr, lo, hi, v)
	}
	if lo >= hi || c.at(lo) >= v {
		return lo
	}
	step := 1
	for lo+step < hi && c.at(lo+step) < v {
		lo += step
		step <<= 1
	}
	lo++ // at(old lo) < v
	if bound := lo + step; bound < hi {
		hi = bound
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return c.at(lo+i) >= v })
}

// appendTo appends values [lo, hi) to out.
func (c *column) appendTo(out []dict.ID, lo, hi int) []dict.ID {
	if c.arr != nil {
		return append(out, c.arr[lo:hi]...)
	}
	for i := lo; i < hi; {
		vals, base := c.block(i)
		end := min(hi, base+len(vals))
		out = append(out, vals[i-base:end-base]...)
		i = end
	}
	return out
}

// copyRange copies values [lo, hi) into dst (len(dst) == hi-lo).
func (c *column) copyRange(dst []dict.ID, lo, hi int) {
	if c.arr != nil {
		copy(dst, c.arr[lo:hi])
		return
	}
	for i := lo; i < hi; {
		vals, base := c.block(i)
		end := min(hi, base+len(vals))
		copy(dst[i-lo:], vals[i-base:end-base])
		i = end
	}
}

// distinctTo appends the distinct values of the sorted range [lo, hi)
// to out via a run walk.
func (c *column) distinctTo(out []dict.ID, lo, hi int) []dict.ID {
	if c.arr != nil {
		return distinctRuns(out, c.arr, lo, hi)
	}
	var prev dict.ID
	for i := lo; i < hi; {
		vals, base := c.block(i)
		end := min(hi, base+len(vals))
		for ; i < end; i++ {
			v := vals[i-base]
			if i == lo || v != prev {
				out = append(out, v)
			}
			prev = v
		}
	}
	return out
}

func errBadSnapshotf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
}

// runFill reconstructs a permutation's first column from its offset
// directory: rows off[j]..off[j+1] all hold keys[j].
type runFill struct {
	keys []dict.ID
	off  []int
	n    int
}

func (r *runFill) at(i int) dict.ID {
	return r.keys[r.runIndex(i)]
}

// runIndex returns j such that off[j] <= i < off[j+1].
func (r *runFill) runIndex(i int) int {
	return sort.Search(len(r.keys), func(j int) bool { return r.off[j+1] > i })
}

// mappedCol is a varint-delta block-coded column over mapped bytes.
type mappedCol struct {
	id    uint32 // cache key (unique per column within one mapping)
	n     int
	data  []byte // the raw block payload, aliasing the mapping
	offs  []uint32
	first []dict.ID // value of row b<<colBlockShift, per block
	maxID uint64    // IDs must fall in (0, maxID]
	cache *blockCache
	path  string // error context
}

// blockLen returns the value count of block b.
func (m *mappedCol) blockLen(b int) int {
	if b == len(m.first)-1 {
		if tail := m.n & colBlockMask; tail != 0 {
			return tail
		}
	}
	return colBlock
}

// block returns the decoded block containing row i and its base row,
// through the cache.
func (m *mappedCol) block(i int) (vals []dict.ID, base int) {
	b := i >> colBlockShift
	return m.cache.get(m, b), b << colBlockShift
}

// decodeBlock decodes block b, validating every value against the
// dictionary range. It is the only place mapped column bytes are
// interpreted.
func (m *mappedCol) decodeBlock(b int) ([]dict.ID, error) {
	bn := m.blockLen(b)
	lo := int(m.offs[b])
	hi := len(m.data)
	if b+1 < len(m.offs) {
		hi = int(m.offs[b+1])
	}
	d := persist.NewDec(m.data[lo:hi])
	vals := make([]dict.ID, bn)
	acc := int64(m.first[b])
	vals[0] = m.first[b]
	for j := 1; j < bn; j++ {
		acc += d.Varint()
		if acc <= 0 || uint64(acc) > m.maxID {
			return nil, &persist.ArtifactError{
				Path: m.path, Kind: "snapshot", Offset: -1,
				Err: errBadSnapshotf("mapped column value %d out of dictionary range at block %d", acc, b),
			}
		}
		vals[j] = dict.ID(acc)
	}
	if err := d.Err(); err != nil {
		return nil, &persist.ArtifactError{Path: m.path, Kind: "snapshot", Offset: -1, Err: err}
	}
	if d.Remaining() != 0 {
		return nil, &persist.ArtifactError{
			Path: m.path, Kind: "snapshot", Offset: -1,
			Err: errBadSnapshotf("trailing bytes after block %d", b),
		}
	}
	return vals, nil
}

// blockCache is a fixed-size direct-mapped cache of decoded column
// blocks shared by all columns of one mapped snapshot. Reads are
// lock-free (one atomic pointer load); a miss decodes and overwrites
// whatever occupied the slot — eviction is collision. The worst case is
// therefore re-decoding a block (correctness never depends on
// residency), and the cache size bounds decoded-block heap exactly.
type blockCache struct {
	slots []atomic.Pointer[cacheBlock]
	mask  uint32

	hits   atomic.Uint64
	misses atomic.Uint64
	// decodeNanos accumulates wall time spent decoding blocks on cache
	// misses — the first decode of a cold block includes the page-in
	// fault, so this doubles as the page-in-stall proxy /statsz exposes.
	decodeNanos atomic.Uint64
}

type cacheBlock struct {
	col  *mappedCol
	idx  int
	vals []dict.ID
}

// defaultBlockCacheSlots bounds the decoded-block footprint of one
// mapped snapshot at slots * colBlock * 8 bytes — 8 MiB.
const defaultBlockCacheSlots = 1024

func newBlockCache(slots int) *blockCache {
	if slots <= 0 {
		slots = defaultBlockCacheSlots
	}
	size := 1
	for size < slots {
		size <<= 1
	}
	return &blockCache{slots: make([]atomic.Pointer[cacheBlock], size), mask: uint32(size - 1)}
}

// get returns the decoded block idx of col, decoding on miss. A decode
// failure panics with *persist.ArtifactError (see package comment on
// column).
func (bc *blockCache) get(col *mappedCol, idx int) []dict.ID {
	slot := (col.id*0x9E3779B1 ^ uint32(idx)*0x85EBCA77) & bc.mask
	if e := bc.slots[slot].Load(); e != nil && e.col == col && e.idx == idx {
		bc.hits.Add(1)
		return e.vals
	}
	bc.misses.Add(1)
	start := time.Now()
	vals, err := col.decodeBlock(idx)
	bc.decodeNanos.Add(uint64(time.Since(start)))
	if err != nil {
		panic(err)
	}
	bc.slots[slot].Store(&cacheBlock{col: col, idx: idx, vals: vals})
	return vals
}

// counts returns the accumulated hit/miss counters.
func (bc *blockCache) counts() (hits, misses uint64) {
	return bc.hits.Load(), bc.misses.Load()
}
