package store

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"rdfcube/internal/rdf"
)

func TestMappedCompactionRoundtrip(t *testing.T) {
	src := buildTestStore(t, 250)
	src.Freeze()
	path := writeV3File(t, src)
	mapped := openMappedT(t, path, MappedOptions{})
	heap, err := OpenFrozenSnapshot(func() *bytes.Reader {
		b, _ := os.ReadFile(path)
		return bytes.NewReader(b)
	}())
	if err != nil {
		t.Fatal(err)
	}

	addBatch := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			tr := rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://ex.org/user%d", i%100)),
				P: rdf.NewIRI("http://ex.org/visited"),
				O: rdf.NewIRI(fmt.Sprintf("http://ex.org/place%d", i)), // new terms
			}
			if mapped.Add(tr) != heap.Add(tr) {
				t.Fatalf("add %d: newness diverges", i)
			}
		}
	}
	addBatch(0, 90)

	verBefore := mapped.Version()
	pm, err := mapped.PrepareMappedCompaction(nil, path, MappedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pm == nil || pm.Pending() != 90 {
		t.Fatalf("prepare: pm=%v", pm)
	}
	// Writes racing the prepare must be requeued by the install.
	addBatch(90, 110)

	ok, err := mapped.InstallMappedCompaction(pm)
	if err != nil || !ok {
		t.Fatalf("install: ok=%v err=%v", ok, err)
	}
	if got := mapped.Version(); got.Base != verBefore.Base+1 || got.Seq != 20 {
		t.Fatalf("post-install version %+v, want base %d seq 20", got, verBefore.Base+1)
	}
	if !mapped.Mapped() || !mapped.MappedBaseClean() {
		t.Fatal("store lost its clean mapped base after install")
	}
	diffStores(t, heap, mapped)

	// Dictionary IDs must be stable across the rebase: terms interned
	// into the overlay before compaction now resolve through the new
	// mapping with the same IDs.
	for i := 0; i < 110; i++ {
		term := rdf.NewIRI(fmt.Sprintf("http://ex.org/place%d", i))
		wantID, ok1 := heap.Dict().Lookup(term)
		gotID, ok2 := mapped.Dict().Lookup(term)
		if !ok1 || !ok2 || wantID != gotID {
			t.Fatalf("term %v: ID %d vs %d", term, wantID, gotID)
		}
	}

	// A second cycle over the already-compacted base, draining the delta
	// completely this time, must also converge.
	pm, err = mapped.PrepareMappedCompaction(nil, path, MappedOptions{})
	if err != nil || pm == nil {
		t.Fatalf("second prepare: pm=%v err=%v", pm, err)
	}
	if ok, err := mapped.InstallMappedCompaction(pm); err != nil || !ok {
		t.Fatalf("second install: ok=%v err=%v", ok, err)
	}
	if mapped.DeltaLen() != 0 {
		t.Fatalf("delta not drained: %d", mapped.DeltaLen())
	}
	diffStores(t, heap, mapped)

	// A reopen from the compacted file must serve the full folded state.
	reopened := openMappedT(t, path, MappedOptions{VerifyFull: true})
	if reopened.Version().Base != mapped.Version().Base {
		t.Fatalf("reopened base epoch %d, want %d", reopened.Version().Base, mapped.Version().Base)
	}
	diffStores(t, heap, reopened)
}

func TestMappedCompactionRaceDiscards(t *testing.T) {
	src := buildTestStore(t, 100)
	src.Freeze()
	path := writeV3File(t, src)
	mapped := openMappedT(t, path, MappedOptions{})
	mapped.Add(rdf.Triple{S: rdf.NewIRI("http://ex.org/a"), P: rdf.NewIRI("http://ex.org/b"), O: rdf.NewIRI("http://ex.org/c")})

	pm, err := mapped.PrepareMappedCompaction(nil, path, MappedOptions{})
	if err != nil || pm == nil {
		t.Fatalf("prepare: pm=%v err=%v", pm, err)
	}
	// A structural change (explicit freeze-compaction) wins the race.
	mapped.Freeze()
	if ok, _ := mapped.InstallMappedCompaction(pm); ok {
		t.Fatal("install accepted a stale prepare")
	}
}

func TestMappedCompactionWithSpilledDelta(t *testing.T) {
	src := buildTestStore(t, 150)
	src.Freeze()
	path := writeV3File(t, src)
	mapped := openMappedT(t, path, MappedOptions{})
	heap, err := OpenFrozenSnapshot(func() *bytes.Reader {
		b, _ := os.ReadFile(path)
		return bytes.NewReader(b)
	}())
	if err != nil {
		t.Fatal(err)
	}
	spillDir := t.TempDir()
	mapped.SetSpill(nil, spillDir, 20)
	for i := 0; i < 75; i++ {
		tr := rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://ex.org/user%d", i%40)),
			P: rdf.NewIRI("http://ex.org/rated"),
			O: rdf.NewInt(int64(i % 13)),
		}
		if mapped.Add(tr) != heap.Add(tr) {
			t.Fatalf("add %d diverges", i)
		}
	}
	if _, _, spills, _ := mapped.SpillStats(); spills == 0 {
		t.Fatal("no spills before compaction")
	}
	pm, err := mapped.PrepareMappedCompaction(nil, path, MappedOptions{})
	if err != nil || pm == nil {
		t.Fatalf("prepare: %v %v", pm, err)
	}
	if ok, err := mapped.InstallMappedCompaction(pm); err != nil || !ok {
		t.Fatalf("install: %v %v", ok, err)
	}
	// The spilled run was folded into the base and its file discarded.
	if runTriples, _, _, _ := mapped.SpillStats(); runTriples != 0 {
		t.Fatalf("spill run still holds %d triples after compaction", runTriples)
	}
	diffStores(t, heap, mapped)
}
