package store

// Differential and regression tests for the delta overlay: a frozen
// store with pending writes must answer every read operation and all
// eight triple-pattern shapes identically to the authoritative map path,
// the (baseEpoch, deltaSeq) version must separate "base rebuilt" from
// "delta grew", and the delta feed must replay exactly the accepted
// writes.

import (
	"bytes"
	"math/rand"
	"testing"

	"rdfcube/internal/dict"
)

// TestDeltaDifferentialAllShapes freezes a random store, streams more
// random writes through the overlay, and cross-checks every read
// operation against the map path (captured by thawing a copy at the
// end — the maps are authoritative in both modes).
func TestDeltaDifferentialAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 10; trial++ {
		st := randomTripleStore(rng, 100+rng.Intn(300))
		st.Freeze()

		// Stream random writes through the frozen store; some are
		// duplicates of existing triples (no-ops).
		added := 0
		for i := 0; i < 60; i++ {
			tr := IDTriple{
				S: dict.ID(1 + rng.Intn(25)),
				P: dict.ID(26 + rng.Intn(8)),
				O: dict.ID(34 + rng.Intn(20)),
			}
			if st.AddID(tr) {
				added++
			}
		}
		if !st.IsFrozen() {
			t.Fatal("writes dropped the frozen base")
		}
		if st.DeltaLen() != added {
			t.Fatalf("DeltaLen = %d, want %d", st.DeltaLen(), added)
		}

		// Capture every operation on the merged path, then on the map
		// path (same store, thawed), and compare.
		pats := randomPatterns(rng)
		type snapshot struct {
			match    [][]IDTriple
			count    []int
			subjects [][]dict.ID
			objects  [][]dict.ID
		}
		capture := func() snapshot {
			var snap snapshot
			for _, pat := range pats {
				m := st.Match(pat)
				sortTriples(m)
				snap.match = append(snap.match, m)
				snap.count = append(snap.count, st.Count(pat))
				subj := st.Subjects(pat.P, pat.O)
				sortIDs(subj)
				snap.subjects = append(snap.subjects, subj)
				obj := st.Objects(pat.S, pat.P)
				sortIDs(obj)
				snap.objects = append(snap.objects, obj)
			}
			return snap
		}
		merged := capture()
		for _, pat := range pats {
			if got, want := st.EstimateCardinality(pat), float64(st.Count(pat)); got != want {
				t.Fatalf("trial %d pattern %+v: merged estimate %v != exact count %v",
					trial, pat, got, want)
			}
		}
		st.Thaw()
		fromMaps := capture()

		for i, pat := range pats {
			if !triplesEqual(merged.match[i], fromMaps.match[i]) {
				t.Fatalf("trial %d pattern %+v: Match differs\n merged: %v\n maps:   %v",
					trial, pat, merged.match[i], fromMaps.match[i])
			}
			if merged.count[i] != fromMaps.count[i] {
				t.Fatalf("trial %d pattern %+v: Count differs: merged %d maps %d",
					trial, pat, merged.count[i], fromMaps.count[i])
			}
			if !idsEqual(merged.subjects[i], fromMaps.subjects[i]) {
				t.Fatalf("trial %d pattern %+v: Subjects differ\n merged: %v\n maps:   %v",
					trial, pat, merged.subjects[i], fromMaps.subjects[i])
			}
			if !idsEqual(merged.objects[i], fromMaps.objects[i]) {
				t.Fatalf("trial %d pattern %+v: Objects differ\n merged: %v\n maps:   %v",
					trial, pat, merged.objects[i], fromMaps.objects[i])
			}
		}
	}
}

// TestDeltaMergedIterationSorted: ForEach on a frozen store with pending
// delta must still yield the chosen permutation's sorted order (the
// merge must interleave, not concatenate).
func TestDeltaMergedIterationSorted(t *testing.T) {
	st := New()
	for s := 10; s <= 50; s += 10 {
		st.AddID(IDTriple{S: dict.ID(s), P: 1, O: 1})
	}
	st.Freeze()
	// Delta subjects interleave with the base subjects.
	for _, s := range []dict.ID{5, 25, 45, 55} {
		st.AddID(IDTriple{S: s, P: 1, O: 1})
	}
	var got []dict.ID
	st.ForEach(Pattern{}, func(t IDTriple) bool {
		got = append(got, t.S)
		return true
	})
	want := []dict.ID{5, 10, 20, 25, 30, 40, 45, 50, 55}
	if !idsEqual(got, want) {
		t.Fatalf("merged iteration order = %v, want %v", got, want)
	}
	// Early stop mid-merge.
	n := 0
	st.ForEach(Pattern{}, func(IDTriple) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("early stop visited %d triples, want 4", n)
	}
}

// TestVersionSemantics pins the (baseEpoch, deltaSeq) protocol: delta
// writes advance only Seq; compaction, deletion, map-mode writes and
// delta-discarding thaws advance Base and reset Seq; no-op freezes and
// thaws leave the version untouched.
func TestVersionSemantics(t *testing.T) {
	st := New()
	v0 := st.Version()

	// Map-mode write: base bump.
	st.AddID(IDTriple{S: 1, P: 2, O: 3})
	v1 := st.Version()
	if v1.Base <= v0.Base || v1.Seq != 0 {
		t.Fatalf("map-mode write: %+v -> %+v, want base bump with seq 0", v0, v1)
	}

	// Freeze of a clean map store: no version change.
	st.Freeze()
	if st.Version() != v1 {
		t.Fatalf("clean Freeze changed version: %+v -> %+v", v1, st.Version())
	}

	// Frozen writes: seq grows, base stable, epoch still advances.
	e1 := st.Epoch()
	st.AddID(IDTriple{S: 1, P: 2, O: 4})
	st.AddID(IDTriple{S: 1, P: 2, O: 5})
	v2 := st.Version()
	if v2.Base != v1.Base || v2.Seq != 2 {
		t.Fatalf("delta writes: %+v, want base %d seq 2", v2, v1.Base)
	}
	if st.Epoch() <= e1 {
		t.Fatal("Epoch did not advance across delta writes")
	}

	// Duplicate write: no change.
	if st.AddID(IDTriple{S: 1, P: 2, O: 4}) {
		t.Fatal("duplicate AddID reported new")
	}
	if st.Version() != v2 {
		t.Fatalf("duplicate write changed version: %+v", st.Version())
	}

	// The feed replays exactly the delta triples, in arrival order.
	feed := st.DeltaSince(0)
	if len(feed) != 2 || feed[0] != (IDTriple{S: 1, P: 2, O: 4}) || feed[1] != (IDTriple{S: 1, P: 2, O: 5}) {
		t.Fatalf("DeltaSince(0) = %v", feed)
	}
	if tail := st.DeltaSince(1); len(tail) != 1 || tail[0] != (IDTriple{S: 1, P: 2, O: 5}) {
		t.Fatalf("DeltaSince(1) = %v", tail)
	}
	if st.DeltaSince(2) != nil {
		t.Fatalf("DeltaSince(len) = %v, want nil", st.DeltaSince(2))
	}

	// Compaction: base bump, seq reset, feed gone.
	st.Freeze()
	v3 := st.Version()
	if v3.Base <= v2.Base || v3.Seq != 0 {
		t.Fatalf("compaction: %+v, want base bump with seq 0", v3)
	}
	if st.DeltaLen() != 0 || st.DeltaSince(0) != nil {
		t.Fatal("compaction left a delta feed behind")
	}

	// Clean thaw: no change. Thaw with pending delta: base bump.
	st.Thaw()
	if st.Version() != v3 {
		t.Fatalf("clean Thaw changed version: %+v", st.Version())
	}
	st.Freeze()
	st.AddID(IDTriple{S: 9, P: 9, O: 9})
	st.Thaw()
	v4 := st.Version()
	if v4.Base <= v3.Base || v4.Seq != 0 {
		t.Fatalf("delta-discarding Thaw: %+v, want base bump", v4)
	}

	// Deletion on a frozen store: invalidation, base bump.
	st.Freeze()
	st.RemoveID(IDTriple{S: 9, P: 9, O: 9})
	if st.IsFrozen() {
		t.Fatal("RemoveID left the store frozen")
	}
	if v5 := st.Version(); v5.Base <= v4.Base {
		t.Fatalf("deletion did not bump the base: %+v", v5)
	}
}

// TestCompactionThreshold: crossing the threshold folds the overlay into
// a rebuilt base automatically.
func TestCompactionThreshold(t *testing.T) {
	st := New()
	st.AddID(IDTriple{S: 1, P: 1, O: 1})
	st.Freeze()
	st.SetCompactThreshold(8)
	base := st.Version().Base
	for o := dict.ID(2); st.Version().Base == base; o++ {
		if o > 100 {
			t.Fatal("no compaction after 99 delta writes with threshold 8")
		}
		st.AddID(IDTriple{S: 1, P: 1, O: o})
	}
	if st.DeltaLen() != 0 {
		t.Fatalf("DeltaLen after auto-compaction = %d", st.DeltaLen())
	}
	if !st.IsFrozen() {
		t.Fatal("auto-compaction left the store unfrozen")
	}
	if got := st.Count(Pattern{S: 1}); got != 9 {
		t.Fatalf("Count after auto-compaction = %d, want 9 (1 base + 8 delta)", got)
	}
	// Writes continue into a fresh overlay.
	st.AddID(IDTriple{S: 2, P: 1, O: 1})
	if st.DeltaLen() != 1 {
		t.Fatalf("DeltaLen after post-compaction write = %d, want 1", st.DeltaLen())
	}
}

// TestSnapshotWithPendingDelta: WriteSnapshot must serialize the merged
// contents, not just the frozen base.
func TestSnapshotWithPendingDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	st := randomTripleStore(rng, 150)
	st.Freeze()
	for i := 0; i < 20; i++ {
		st.AddID(IDTriple{
			S: dict.ID(1 + rng.Intn(25)),
			P: dict.ID(26 + rng.Intn(8)),
			O: dict.ID(34 + rng.Intn(20)),
		})
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != st.Len() {
		t.Fatalf("snapshot size %d, want %d", back.Len(), st.Len())
	}
	st.ForEach(Pattern{}, func(tr IDTriple) bool {
		if !back.ContainsID(tr) {
			t.Fatalf("snapshot lost %+v", tr)
		}
		return true
	})
}
