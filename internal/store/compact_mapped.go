package store

// Mapped compaction: folding the delta overlay of an mmap-backed store
// into a NEW snapshot file, then atomically remapping — the counterpart
// of PrepareCompaction/InstallCompaction for stores opened with
// OpenFrozenSnapshotMapped, where "the base" is a file and rebuilding
// it in heap would defeat bigger-than-RAM serving.
//
// The split mirrors the heap compactor: PrepareMappedCompaction does
// the expensive work (merge base + overlay, serialize a v3 snapshot,
// atomic-rename it over the target path) under the caller's read lock,
// concurrent with queries; InstallMappedCompaction runs under the write
// lock, mmaps the file it wrote, swaps the frozen base and rebases the
// dictionary onto the new mapping, requeues post-prepare writes, and
// unmaps the old snapshot.
//
// The merge materializes the combined base in heap transiently (the
// same mergedFrozen the heap compactor uses, plus the full term list) —
// a deliberate simplicity/peak-RSS trade: the spike lasts for the
// serialization only, is bounded by one snapshot's decoded size, and
// compaction frequency is controlled by the compaction threshold.
// Steady-state resident memory stays cache-bounded.
//
// Crash safety: the snapshot written at prepare time carries the
// POST-install epoch, and the WAL keeps every delta batch until the
// next checkpoint trims it. Whatever window a crash hits, recovery
// replays the WAL over whichever snapshot is on disk — replay
// deduplicates against the base, so a folded-and-logged triple is
// harmless.

import (
	"fmt"
	"io"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/persist"
)

// PreparedMappedCompaction is a merged v3 snapshot written to disk off
// the write path, awaiting InstallMappedCompaction.
type PreparedMappedCompaction struct {
	against  *frozen
	base     uint64
	consumed int
	path     string
	opts     MappedOptions
}

// Pending reports how many delta triples the prepared snapshot folded.
func (pm *PreparedMappedCompaction) Pending() int { return pm.consumed }

// PrepareMappedCompaction merges the mapped frozen base with the delta
// overlay and writes the result as a v3 snapshot over path (atomic
// temp-and-rename through fsys). Returns nil when there is nothing to
// compact or the store is not serving a clean mapped base. The caller
// must hold whatever lock serializes it against writes; queries may run
// concurrently. opts configures the mapping the install will open.
func (st *Store) PrepareMappedCompaction(fsys faultfs.FS, path string, opts MappedOptions) (*PreparedMappedCompaction, error) {
	if st.mapped == nil || st.frz != st.mapped.frz || st.dlt.len() == 0 {
		return nil, nil
	}
	pm := &PreparedMappedCompaction{
		against:  st.frz,
		base:     st.Version().Base,
		consumed: st.dlt.len(),
		path:     path,
		opts:     opts,
	}
	merged := st.mergedFrozen()
	terms := st.dict.Terms()
	err := persist.AtomicWriteFS(fsys, path, func(w io.Writer) error {
		// Stamp the epoch the store will have once this base installs,
		// so a restart from the file resumes at the post-install version.
		return writeFrozenBaseV3(w, pm.base+1, merged, terms)
	})
	if err != nil {
		return nil, &persist.ArtifactError{Path: path, Kind: "snapshot", Err: err}
	}
	return pm, nil
}

// InstallMappedCompaction swaps the prepared snapshot in under the
// caller's write serialization: the file is mmap'd, the frozen base and
// block caches are replaced, the dictionary is rebased onto the new
// mapping's term blocks (IDs are stable — see Dictionary.Rebase), the
// delta overlay resets (discarding any spilled run) with post-prepare
// writes requeued in arrival order, and the old snapshot is unmapped.
// Reports false — leaving the store untouched, the written file stale —
// when the base moved since the prepare. The caller must guarantee no
// concurrent readers during the swap AND that none still hold cursors
// into the old mapping when this returns (the old file is unmapped).
func (st *Store) InstallMappedCompaction(pm *PreparedMappedCompaction) (bool, error) {
	if pm == nil || st.frz != pm.against || st.Version().Base != pm.base {
		return false, nil
	}
	nst, err := OpenFrozenSnapshotMapped(pm.path, pm.opts)
	if err != nil {
		return false, err
	}
	if !nst.Mapped() {
		// The path no longer holds a v3 snapshot — something else owns
		// the file; refuse rather than serve it.
		nst.CloseMapped()
		return false, fmt.Errorf("store: prepared snapshot %s is not mappable", pm.path)
	}
	if nst.mapped.epoch != pm.base+1 {
		// The file was rewritten since the prepare — a checkpoint ran
		// between our read-locked prepare and this write-locked install
		// and serialized the *unfolded* base (stamped with the current
		// epoch, not the post-install one). Installing it would drop the
		// delta overlay that only the prepared fold contained. Discard;
		// the next threshold write schedules a fresh prepare.
		nst.CloseMapped()
		return false, nil
	}
	tail := append([]IDTriple(nil), st.dlt.log[pm.consumed:]...)
	st.dict.Rebase(nst.mapped.md)
	old := st.mapped
	st.mapped = nst.mapped
	st.frz = nst.mapped.frz
	st.dlt.reset()
	st.bumpBase()
	for _, t := range tail {
		st.dlt.add(t)
		st.ver.Add(1)
	}
	st.maybeSpill()
	if old != nil {
		old.close()
	}
	return true, nil
}
