package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
)

// Binary snapshot format:
//
//	magic "RDFC" | version u8 | termCount uvarint
//	per term: kind u8 | value str | datatype str | lang str
//	tripleCount uvarint
//	per triple: s uvarint | p uvarint | o uvarint  (dictionary IDs)
//
// Strings are uvarint length-prefixed UTF-8. IDs are positional: the i-th
// term record (0-based) has ID i+1, matching dictionary assignment order.

const snapshotMagic = "RDFC"
const snapshotVersion = 1

// ErrBadSnapshot reports a malformed or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("store: bad snapshot")

// WriteSnapshot serializes the store (dictionary and triples) to w.
func (st *Store) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	terms := st.dict.Terms()
	writeUvarint(bw, uint64(len(terms)))
	for _, t := range terms {
		if err := writeTerm(bw, t); err != nil {
			return err
		}
	}
	writeUvarint(bw, uint64(st.size))
	var err error
	st.ForEach(Pattern{}, func(t IDTriple) bool {
		writeUvarint(bw, uint64(t.S))
		writeUvarint(bw, uint64(t.P))
		writeUvarint(bw, uint64(t.O))
		return true
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a snapshot produced by WriteSnapshot into a
// fresh store with a fresh dictionary.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, ver)
	}
	st := New()
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	for i := uint64(0); i < nTerms; i++ {
		t, err := readTerm(br)
		if err != nil {
			return nil, fmt.Errorf("%w: term %d: %v", ErrBadSnapshot, i, err)
		}
		id := st.dict.Encode(t)
		if uint64(id) != i+1 {
			return nil, fmt.Errorf("%w: duplicate term at position %d", ErrBadSnapshot, i)
		}
	}
	nTriples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	for i := uint64(0); i < nTriples; i++ {
		s, err1 := binary.ReadUvarint(br)
		p, err2 := binary.ReadUvarint(br)
		o, err3 := binary.ReadUvarint(br)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: truncated triple %d", ErrBadSnapshot, i)
		}
		if s == 0 || s > nTerms || p == 0 || p > nTerms || o == 0 || o > nTerms {
			return nil, fmt.Errorf("%w: triple %d references unknown term", ErrBadSnapshot, i)
		}
		st.AddID(IDTriple{dict.ID(s), dict.ID(p), dict.ID(o)})
	}
	return st, nil
}

// ReadSnapshotFrozen is ReadSnapshot followed by Freeze: the store is
// returned already compacted onto the sorted columnar indexes, so the
// first query served after a snapshot load does not pay the unfrozen
// map-path cost. This is what the CLIs and the rdfcubed daemon use on
// their load-to-serve boundary.
func ReadSnapshotFrozen(r io.Reader) (*Store, error) {
	st, err := ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	st.Freeze()
	return st, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func writeTerm(w *bufio.Writer, t rdf.Term) error {
	if err := w.WriteByte(byte(t.Kind())); err != nil {
		return err
	}
	writeString(w, t.Value())
	if t.IsLiteral() {
		writeString(w, t.Datatype())
		writeString(w, t.Lang())
	} else {
		writeString(w, "")
		writeString(w, "")
	}
	return nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", errors.New("string too long")
	}
	// Copy incrementally so a hostile length prefix costs only the bytes
	// actually present, not an up-front allocation.
	var sb strings.Builder
	if m, err := io.CopyN(&sb, r, int64(n)); err != nil || uint64(m) != n {
		return "", errors.New("truncated string")
	}
	return sb.String(), nil
}

func readTerm(r *bufio.Reader) (rdf.Term, error) {
	kindB, err := r.ReadByte()
	if err != nil {
		return rdf.Term{}, err
	}
	value, err := readString(r)
	if err != nil {
		return rdf.Term{}, err
	}
	datatype, err := readString(r)
	if err != nil {
		return rdf.Term{}, err
	}
	lang, err := readString(r)
	if err != nil {
		return rdf.Term{}, err
	}
	switch rdf.TermKind(kindB) {
	case rdf.KindIRI:
		return rdf.NewIRI(value), nil
	case rdf.KindBlank:
		return rdf.NewBlank(value), nil
	case rdf.KindLiteral:
		if lang != "" {
			return rdf.NewLangLiteral(value, lang), nil
		}
		return rdf.NewTypedLiteral(value, datatype), nil
	default:
		return rdf.Term{}, fmt.Errorf("unknown term kind %d", kindB)
	}
}
