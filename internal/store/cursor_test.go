package store

// Cursor differential tests: the merged cursor stream must visit exactly
// the triples ForEach visits, in the same (permuted) order, for every
// pattern shape on frozen-only and frozen+delta stores; Seek must land
// where a linear scan would.

import (
	"math/rand"
	"testing"

	"rdfcube/internal/dict"
)

// cursorStores builds a frozen-only store and a frozen+delta twin with
// identical contents (the twin froze midway so the rest landed in the
// overlay).
func cursorStores(rng *rand.Rand, n int) (frozenOnly, withDelta *Store) {
	frozenOnly, withDelta = New(), New()
	for i := 0; i < 60; i++ {
		frozenOnly.Dict().Encode(mkTerm(i))
		withDelta.Dict().Encode(mkTerm(i))
	}
	var ts []IDTriple
	for i := 0; i < n; i++ {
		t := IDTriple{
			S: dict.ID(1 + rng.Intn(25)),
			P: dict.ID(26 + rng.Intn(8)),
			O: dict.ID(34 + rng.Intn(20)),
		}
		if rng.Intn(10) == 0 {
			t.O = dict.ID(1 + rng.Intn(25))
		}
		ts = append(ts, t)
	}
	for _, t := range ts {
		frozenOnly.AddID(t)
	}
	frozenOnly.Freeze()
	for _, t := range ts[:n/2] {
		withDelta.AddID(t)
	}
	withDelta.Freeze()
	for _, t := range ts[n/2:] {
		withDelta.AddID(t)
	}
	if withDelta.IsFrozen() && frozenOnly.Len() > withDelta.Len() {
		panic("twin stores diverged")
	}
	return frozenOnly, withDelta
}

func collectCursor(st *Store, pat Pattern) []IDTriple {
	var out []IDTriple
	for c := st.NewCursor(pat); c.Valid(); c.Next() {
		out = append(out, c.Triple())
	}
	return out
}

func TestCursorMatchesForEachAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		fo, wd := cursorStores(rng, 80+rng.Intn(300))
		for _, st := range []*Store{fo, wd} {
			for _, pat := range randomPatterns(rng) {
				var want []IDTriple
				st.ForEach(pat, func(tr IDTriple) bool {
					want = append(want, tr)
					return true
				})
				got := collectCursor(st, pat)
				if !triplesEqual(got, want) {
					t.Fatalf("trial %d delta=%d pattern %+v: cursor stream differs\n got:  %v\n want: %v",
						trial, st.DeltaLen(), pat, got, want)
				}
				if c := st.NewCursor(pat); c.Len() != len(want) {
					t.Fatalf("pattern %+v: Len = %d, want %d", pat, c.Len(), len(want))
				}
			}
		}
	}
}

// TestCursorKeysSorted: for two-bound patterns the key sequence must be
// strictly increasing — the property the join operators intersect on.
func TestCursorKeysSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	_, st := cursorStores(rng, 400)
	pats := []Pattern{
		{S: 3, P: 27},  // key = O over SPO
		{P: 27, O: 40}, // key = S over POS
		{S: 3, O: 40},  // key = P over OSP
		{P: 27},        // key = O over POS (non-decreasing)
	}
	for _, pat := range pats {
		last := dict.NoID
		first := true
		strict := pat.S != Wild && pat.P != Wild || pat.P != Wild && pat.O != Wild || pat.S != Wild && pat.O != Wild
		for c := st.NewCursor(pat); c.Valid(); c.Next() {
			if !first {
				if strict && c.Key() <= last {
					t.Fatalf("pattern %+v: keys not strictly increasing (%d after %d)", pat, c.Key(), last)
				}
				if !strict && c.Key() < last {
					t.Fatalf("pattern %+v: keys decreased (%d after %d)", pat, c.Key(), last)
				}
			}
			last, first = c.Key(), false
		}
	}
}

// TestCursorSeek: Seek must land on the first triple with key >= v, for
// every v, matching a linear scan — including seeks to absent keys, past
// the end, and no-op backward seeks.
func TestCursorSeek(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		fo, wd := cursorStores(rng, 60+rng.Intn(300))
		for _, st := range []*Store{fo, wd} {
			for _, pat := range []Pattern{
				{P: dict.ID(26 + rng.Intn(8)), O: dict.ID(34 + rng.Intn(20))},
				{S: dict.ID(1 + rng.Intn(25)), P: dict.ID(26 + rng.Intn(8))},
				{P: dict.ID(26 + rng.Intn(8))},
				{},
			} {
				all := collectCursor(st, pat)
				ref := st.NewCursor(pat)
				keyOf := func(tr IDTriple) dict.ID {
					a, b, c3 := permuteTriple(ref.kind, tr)
					switch ref.keyCol {
					case 0:
						return a
					case 1:
						return b
					default:
						return c3
					}
				}
				for v := dict.ID(0); v < 62; v += dict.ID(1 + rng.Intn(7)) {
					c := st.NewCursor(pat)
					c.Seek(v)
					wantIdx := -1
					for i, tr := range all {
						if keyOf(tr) >= v {
							wantIdx = i
							break
						}
					}
					if wantIdx < 0 {
						if c.Valid() {
							t.Fatalf("pattern %+v seek %d: want exhausted, got %+v", pat, v, c.Triple())
						}
						continue
					}
					if !c.Valid() || c.Triple() != all[wantIdx] {
						t.Fatalf("pattern %+v seek %d: got %+v valid=%v, want %+v",
							pat, v, c.Triple(), c.Valid(), all[wantIdx])
					}
					// A backward/no-op seek must not move.
					c.Seek(0)
					if c.Triple() != all[wantIdx] {
						t.Fatalf("pattern %+v: backward seek moved the cursor", pat)
					}
				}
			}
		}
	}
}

func TestCursorUnfrozenAndEmpty(t *testing.T) {
	st := New()
	if c := st.NewCursor(Pattern{}); c.Valid() {
		t.Fatal("cursor on an unfrozen store must be exhausted")
	}
	st.AddID(IDTriple{S: 1, P: 2, O: 3})
	if c := st.NewCursor(Pattern{}); c.Valid() {
		t.Fatal("cursor on an unfrozen store must be exhausted")
	}
	st.Freeze()
	if c := st.NewCursor(Pattern{S: 9}); c.Valid() || c.Len() != 0 {
		t.Fatal("cursor over an empty range must be exhausted with Len 0")
	}
	c := st.NewCursor(Pattern{})
	if !c.Valid() || c.Len() != 1 {
		t.Fatalf("full-scan cursor: valid=%v len=%d", c.Valid(), c.Len())
	}
	c.Next()
	if c.Valid() {
		t.Fatal("cursor past the end must be exhausted")
	}
	c.Next() // must not panic
	c.Seek(5)
}
