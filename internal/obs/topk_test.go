package obs

import (
	"sync"
	"testing"
)

// TestTopKExact: below capacity the sketch is exact and Entries comes
// back count-descending, key-ascending on ties.
func TestTopKExact(t *testing.T) {
	tk := NewTopK(8)
	tk.Offer(1, 10)
	tk.Offer(2, 30)
	tk.Offer(3, 10)
	tk.Offer(2, 5)
	got := tk.Entries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	if got[0].Key != 2 || got[0].Count != 35 || got[0].Err != 0 {
		t.Fatalf("top = %+v, want key 2 count 35 err 0", got[0])
	}
	// Tie on 10: key 1 before key 3.
	if got[1].Key != 1 || got[2].Key != 3 {
		t.Fatalf("tie order = %d, %d, want 1, 3", got[1].Key, got[2].Key)
	}
}

// TestTopKReplacement: a full sketch evicts the minimum slot; the
// newcomer inherits its count as the error floor, and a true heavy
// hitter is never displaced.
func TestTopKReplacement(t *testing.T) {
	tk := NewTopK(2)
	tk.Offer(100, 1000) // heavy
	tk.Offer(1, 5)      // light
	tk.Offer(2, 3)      // evicts key 1 (min=5): count 5+3, err 5
	got := tk.Entries()
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0].Key != 100 || got[0].Count != 1000 {
		t.Fatalf("heavy hitter displaced: %+v", got[0])
	}
	if got[1].Key != 2 || got[1].Count != 8 || got[1].Err != 5 {
		t.Fatalf("replacement slot = %+v, want key 2 count 8 err 5", got[1])
	}
	if got[1].Count-got[1].Err != 3 {
		t.Fatalf("count-err lower bound = %d, want true weight 3", got[1].Count-got[1].Err)
	}
	tk.Offer(0, 1) // ignored weight guard
	tk.Offer(7, 0)
	tk.Offer(7, -4)
	if tk.Len() != 2 {
		t.Fatalf("len after no-op offers = %d, want 2", tk.Len())
	}
}

// TestTopKConcurrentDeterministic: concurrent recorders with a fixed
// total workload must converge to one deterministic Entries() output —
// the property the workload registry's -race test leans on. Capacity
// covers every key, so no replacement races can perturb counts.
func TestTopKConcurrentDeterministic(t *testing.T) {
	run := func() []TopKEntry {
		tk := NewTopK(16)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					key := (seed + uint64(i)) % 10
					tk.Offer(key, int64(key+1))
				}
			}(uint64(w))
		}
		wg.Wait()
		return tk.Entries()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 10 {
		t.Fatalf("lens %d vs %d, want 10", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Count > a[i-1].Count {
			t.Fatalf("entries not count-descending at %d: %+v", i, a)
		}
	}
}
