package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestCostNilSafe: without a Cost on the context every meter call must
// be a free no-op — the zero-overhead contract the bench gate relies
// on.
func TestCostNilSafe(t *testing.T) {
	if c := CostFromContext(context.Background()); c != nil {
		t.Fatal("background context reported an active cost")
	}
	var c *Cost
	c.AddRowsScanned(1)
	c.AddRowsProduced(1)
	c.AddSeeks(1)
	c.AddNexts(1)
	c.AddBatches(1)
	c.AddBytes(1)
	c.AddWallNs(1)
	c.AddCPUNs(1)
	if snap := c.Snapshot(); snap != (CostSnapshot{}) {
		t.Fatalf("nil cost snapshot = %+v, want zeros", snap)
	}
}

// TestCostAccumulate: concurrent meters sum exactly and the snapshot
// reflects every field.
func TestCostAccumulate(t *testing.T) {
	ctx, c := WithCost(context.Background())
	if CostFromContext(ctx) != c {
		t.Fatal("WithCost did not install the accumulator")
	}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddRowsScanned(2)
				c.AddRowsProduced(1)
				c.AddSeeks(3)
				c.AddNexts(4)
				c.AddBatches(1)
				c.AddBytes(8)
			}
		}()
	}
	wg.Wait()
	c.AddWallNs(12345)
	c.AddCPUNs(54321)
	const n = workers * per
	want := CostSnapshot{
		RowsScanned: 2 * n, RowsProduced: n, Seeks: 3 * n, Nexts: 4 * n,
		Batches: n, Bytes: 8 * n, WallNs: 12345, CPUNs: 54321,
	}
	if got := c.Snapshot(); got != want {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
}

// TestCostSnapshotAddAndHeader: snapshots merge field-wise and the
// header rendering carries every number.
func TestCostSnapshotAddAndHeader(t *testing.T) {
	a := CostSnapshot{RowsScanned: 1, RowsProduced: 2, Seeks: 3, Nexts: 4, Batches: 5, Bytes: 6, WallNs: 7, CPUNs: 8}
	b := a
	b.Add(a)
	want := CostSnapshot{RowsScanned: 2, RowsProduced: 4, Seeks: 6, Nexts: 8, Batches: 10, Bytes: 12, WallNs: 14, CPUNs: 16}
	if b != want {
		t.Fatalf("merged = %+v, want %+v", b, want)
	}
	h := a.HeaderString()
	for _, frag := range []string{"scanned=1", "produced=2", "seeks=3", "nexts=4", "batches=5", "bytes=6", "wall_ns=7", "cpu_ns=8"} {
		if !strings.Contains(h, frag) {
			t.Errorf("header %q missing %q", h, frag)
		}
	}
}
