package obs

// Per-query resource accounting. A Cost rides the request context next
// to (and independent of) the span tree: the engines meter rows
// scanned/produced, cursor seeks, batches and materialized bytes into
// it as they run, and the server snapshots the totals into the
// X-RDFCube-Cost header, EXPLAIN ANALYZE, the slow-query log and the
// workload profiler.
//
// The same no-cost-when-absent discipline as spans applies: with no
// Cost on the context, CostFromContext returns nil and every method is
// a nil-safe no-op, so benchmarks and internal evaluations pay nothing.

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Cost accumulates one query's resource usage. All fields are atomic
// because parallel join workers account concurrently.
type Cost struct {
	rowsScanned  atomic.Int64
	rowsProduced atomic.Int64
	seeks        atomic.Int64
	nexts        atomic.Int64
	batches      atomic.Int64
	bytes        atomic.Int64
	wallNs       atomic.Int64
	cpuNs        atomic.Int64
}

type costKey struct{}

// WithCost installs a fresh Cost on ctx and returns it.
func WithCost(ctx context.Context) (context.Context, *Cost) {
	c := &Cost{}
	return context.WithValue(ctx, costKey{}, c), c
}

// ContextWithCost installs c as the active cost accumulator.
func ContextWithCost(ctx context.Context, c *Cost) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, costKey{}, c)
}

// CostFromContext returns the active cost accumulator, or nil.
func CostFromContext(ctx context.Context) *Cost {
	c, _ := ctx.Value(costKey{}).(*Cost)
	return c
}

// AddRowsScanned etc. meter into the accumulator; all nil-safe.
func (c *Cost) AddRowsScanned(n int64) {
	if c != nil {
		c.rowsScanned.Add(n)
	}
}
func (c *Cost) AddRowsProduced(n int64) {
	if c != nil {
		c.rowsProduced.Add(n)
	}
}
func (c *Cost) AddSeeks(n int64) {
	if c != nil {
		c.seeks.Add(n)
	}
}
func (c *Cost) AddNexts(n int64) {
	if c != nil {
		c.nexts.Add(n)
	}
}
func (c *Cost) AddBatches(n int64) {
	if c != nil {
		c.batches.Add(n)
	}
}
func (c *Cost) AddBytes(n int64) {
	if c != nil {
		c.bytes.Add(n)
	}
}
func (c *Cost) AddWallNs(n int64) {
	if c != nil {
		c.wallNs.Add(n)
	}
}
func (c *Cost) AddCPUNs(n int64) {
	if c != nil {
		c.cpuNs.Add(n)
	}
}

// CostSnapshot is a point-in-time copy of a Cost, used for JSON
// rendering and workload aggregation.
type CostSnapshot struct {
	RowsScanned  int64 `json:"rows_scanned"`
	RowsProduced int64 `json:"rows_produced"`
	Seeks        int64 `json:"seeks"`
	Nexts        int64 `json:"nexts"`
	Batches      int64 `json:"batches"`
	Bytes        int64 `json:"bytes_materialized"`
	WallNs       int64 `json:"wall_ns"`
	CPUNs        int64 `json:"cpu_ns"`
}

// Snapshot copies the current totals. A nil Cost snapshots to zeros.
func (c *Cost) Snapshot() CostSnapshot {
	if c == nil {
		return CostSnapshot{}
	}
	return CostSnapshot{
		RowsScanned:  c.rowsScanned.Load(),
		RowsProduced: c.rowsProduced.Load(),
		Seeks:        c.seeks.Load(),
		Nexts:        c.nexts.Load(),
		Batches:      c.batches.Load(),
		Bytes:        c.bytes.Load(),
		WallNs:       c.wallNs.Load(),
		CPUNs:        c.cpuNs.Load(),
	}
}

// Add merges another snapshot into s.
func (s *CostSnapshot) Add(o CostSnapshot) {
	s.RowsScanned += o.RowsScanned
	s.RowsProduced += o.RowsProduced
	s.Seeks += o.Seeks
	s.Nexts += o.Nexts
	s.Batches += o.Batches
	s.Bytes += o.Bytes
	s.WallNs += o.WallNs
	s.CPUNs += o.CPUNs
}

// HeaderString renders the snapshot as the compact k=v list carried on
// the X-RDFCube-Cost response header.
func (s CostSnapshot) HeaderString() string {
	return fmt.Sprintf(
		"scanned=%d produced=%d seeks=%d nexts=%d batches=%d bytes=%d wall_ns=%d cpu_ns=%d",
		s.RowsScanned, s.RowsProduced, s.Seeks, s.Nexts, s.Batches, s.Bytes, s.WallNs, s.CPUNs)
}
