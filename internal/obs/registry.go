package obs

// The metric registry: named families of collectors, each family one
// metric name with a fixed type and any number of label sets.
// Registration is idempotent — asking for an existing (name, labels)
// pair returns the same collector — so subsystems that are recreated
// (a view registry swapped by re-materialization, a WAL swapped by a
// checkpoint) keep accumulating into the same process-wide series.

import (
	"fmt"
	"sort"
	"sync"
)

// metricKind discriminates the collector types of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one collector with its label set.
type series struct {
	labels string // pre-rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	gf     *GaugeFunc
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // keyed by rendered labels
	order  []string           // registration order of label keys, for stable output
}

// Registry is a set of named metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use; the
// internal lock is only held at registration and scrape, never by the
// collectors themselves.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// renderLabels formats alternating key, value pairs as a Prometheus
// label block, sorted by key. Odd trailing arguments panic — metric
// wiring is programmer-controlled, not data-driven.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %v", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := "{"
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += p.k + `="` + escapeLabelValue(p.v) + `"`
	}
	return out + "}"
}

// escapeLabelValue escapes backslash, double-quote and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// lookup returns (creating if needed) the series for (name, labels),
// enforcing kind and help consistency.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
		r.names = append(r.names, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	ls := renderLabels(labels)
	s, ok := f.series[ls]
	if !ok {
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.c = newCounter()
		case kindGauge:
			s.g = newGauge()
		case kindHistogram:
			s.h = newHistogram()
		}
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// Counter registers (or finds) a counter. labels are alternating
// key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, kindCounter, labels).c
}

// Gauge registers (or finds) a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, kindGauge, labels).g
}

// GaugeFunc registers a gauge evaluated at scrape time. Re-registering
// the same (name, labels) replaces the callback — the caller owning the
// freshest state wins, which is what a server swapping its view
// registry or serving instance needs.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.lookup(name, help, kindGaugeFunc, labels)
	r.mu.Lock()
	s.gf = &GaugeFunc{fn: fn}
	r.mu.Unlock()
}

// Histogram registers (or finds) a nanosecond-duration histogram. By
// convention the name should end in _seconds: the exposition divides
// the recorded nanoseconds down to seconds.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.lookup(name, help, kindHistogram, labels).h
}
