// Package workload aggregates per-query costs by query-shape
// fingerprint: the server records one obs.CostSnapshot per answered
// query (keyed by viewreg's canonical fingerprint) and the registry
// keeps per-shape call counts, summed costs, a wall-time histogram,
// and a Space-Saving top-K by total wall cost.
//
// It answers the capacity-planning questions — which shapes dominate
// the workload and what does each cost — and feeds the view registry's
// cost-based admission: a shape's observed call count is the expected
// reuse of a view materialized for it.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"rdfcube/internal/obs"
)

// Config sizes the registry.
type Config struct {
	// TopK is the Space-Saving sketch size (default 20).
	TopK int
	// MaxShapes bounds the per-shape detail map (default 4096); shapes
	// past the bound still count in the aggregate series but carry no
	// per-shape detail.
	MaxShapes int
	// Metrics, when set, wires the rdfcube_workload_* series.
	Metrics *obs.Registry
}

const (
	defaultTopK      = 20
	defaultMaxShapes = 4096
)

// shape is one fingerprint's accumulated detail.
type shape struct {
	fp         uint64
	desc       string
	calls      int64
	byStrategy map[string]int64
	total      obs.CostSnapshot
	wall       *obs.Histogram
}

// metrics are the process-wide aggregate series.
type metrics struct {
	queries      *obs.Counter
	rowsScanned  *obs.Counter
	rowsProduced *obs.Counter
	seeks        *obs.Counter
	batches      *obs.Counter
	bytes        *obs.Counter
	wall         *obs.Histogram
}

// Registry is the workload profiler. All methods are safe for
// concurrent use; recording is once per query, so a single mutex is
// plenty.
type Registry struct {
	mu      sync.Mutex
	shapes  map[uint64]*shape
	dropped int64 // records whose shape detail was refused by MaxShapes
	queries int64

	topk *obs.TopK
	cfg  Config
	met  *metrics
}

// New builds a registry and, when cfg.Metrics is set, registers the
// rdfcube_workload_* series.
func New(cfg Config) *Registry {
	if cfg.TopK <= 0 {
		cfg.TopK = defaultTopK
	}
	if cfg.MaxShapes <= 0 {
		cfg.MaxShapes = defaultMaxShapes
	}
	r := &Registry{
		shapes: make(map[uint64]*shape),
		topk:   obs.NewTopK(cfg.TopK),
		cfg:    cfg,
	}
	if m := cfg.Metrics; m != nil {
		r.met = &metrics{
			queries:      m.Counter("rdfcube_workload_queries_total", "Queries recorded by the workload profiler."),
			rowsScanned:  m.Counter("rdfcube_workload_rows_scanned_total", "Rows scanned across all recorded queries."),
			rowsProduced: m.Counter("rdfcube_workload_rows_produced_total", "Rows produced across all recorded queries."),
			seeks:        m.Counter("rdfcube_workload_seeks_total", "Cursor seeks across all recorded queries."),
			batches:      m.Counter("rdfcube_workload_batches_total", "Pipeline batches across all recorded queries."),
			bytes:        m.Counter("rdfcube_workload_bytes_materialized_total", "Bytes materialized across all recorded queries."),
			wall:         m.Histogram("rdfcube_workload_wall_seconds", "Recorded per-query wall time."),
		}
		m.GaugeFunc("rdfcube_workload_shapes", "Distinct query shapes tracked by the workload profiler.", func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.shapes))
		})
	}
	return r
}

// Record aggregates one answered query: fp is the shape fingerprint,
// desc a human-readable shape label (first writer wins), strategy the
// answer strategy, snap the measured cost. Nil-safe.
func (r *Registry) Record(fp uint64, desc, strategy string, snap obs.CostSnapshot) {
	if r == nil {
		return
	}
	weight := snap.WallNs
	if weight <= 0 {
		weight = 1 // zero-cost calls still deserve a sketch slot
	}
	r.topk.Offer(fp, weight)
	if m := r.met; m != nil {
		m.queries.Inc()
		m.rowsScanned.Add(snap.RowsScanned)
		m.rowsProduced.Add(snap.RowsProduced)
		m.seeks.Add(snap.Seeks)
		m.batches.Add(snap.Batches)
		m.bytes.Add(snap.Bytes)
		m.wall.Observe(snap.WallNs)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries++
	s, ok := r.shapes[fp]
	if !ok {
		if len(r.shapes) >= r.cfg.MaxShapes {
			r.dropped++
			return
		}
		s = &shape{fp: fp, desc: desc, byStrategy: map[string]int64{}, wall: obs.NewHistogram()}
		r.shapes[fp] = s
	}
	s.calls++
	s.byStrategy[strategy]++
	s.total.Add(snap)
	s.wall.Observe(snap.WallNs)
}

// ShapeCost reports a shape's observed call count and summed wall
// nanoseconds — the expected-reuse and cost signals viewreg's
// cost-based admission consumes. ok is false for untracked shapes.
func (r *Registry) ShapeCost(fp uint64) (calls, totalWallNs int64, ok bool) {
	if r == nil {
		return 0, 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.shapes[fp]
	if !ok {
		return 0, 0, false
	}
	return s.calls, s.total.WallNs, true
}

// ShapeStats is one shape's JSON rendering.
type ShapeStats struct {
	Fingerprint string           `json:"fingerprint"`
	Desc        string           `json:"desc,omitempty"`
	Calls       int64            `json:"calls"`
	ByStrategy  map[string]int64 `json:"by_strategy,omitempty"`
	Cost        obs.CostSnapshot `json:"cost"`
	TotalCost   int64            `json:"total_cost_ns"`
	CostErr     int64            `json:"cost_err_ns,omitempty"`
	WallP50Ns   int64            `json:"wall_p50_ns"`
	WallP99Ns   int64            `json:"wall_p99_ns"`
	WallMaxNs   int64            `json:"wall_max_ns"`
}

// Snapshot is the GET /debug/workload payload.
type Snapshot struct {
	Queries       int64        `json:"queries"`
	Shapes        int          `json:"shapes"`
	DroppedShapes int64        `json:"dropped_shapes,omitempty"`
	TopK          []ShapeStats `json:"top_k"`
}

// Snapshot renders the registry: the sketch's top shapes by total wall
// cost, joined with their tracked detail, in the sketch's
// deterministic order.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{TopK: []ShapeStats{}}
	}
	entries := r.topk.Entries()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &Snapshot{
		Queries:       r.queries,
		Shapes:        len(r.shapes),
		DroppedShapes: r.dropped,
		TopK:          make([]ShapeStats, 0, len(entries)),
	}
	for _, e := range entries {
		st := ShapeStats{
			Fingerprint: fmt.Sprintf("%016x", e.Key),
			TotalCost:   e.Count,
			CostErr:     e.Err,
		}
		if s, ok := r.shapes[e.Key]; ok {
			st.Desc = s.desc
			st.Calls = s.calls
			st.Cost = s.total
			st.WallP50Ns = s.wall.Quantile(0.5)
			st.WallP99Ns = s.wall.Quantile(0.99)
			st.WallMaxNs = s.wall.Max()
			if len(s.byStrategy) > 0 {
				st.ByStrategy = make(map[string]int64, len(s.byStrategy))
				for k, v := range s.byStrategy {
					st.ByStrategy[k] = v
				}
			}
		}
		out.TopK = append(out.TopK, st)
	}
	return out
}

// Shapes returns every tracked fingerprint sorted ascending (test
// hook; the public surface is Snapshot).
func (r *Registry) Shapes() []uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, 0, len(r.shapes))
	for fp := range r.shapes {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
