package workload

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"rdfcube/internal/obs"
)

func snap(wallNs, scanned, produced int64) obs.CostSnapshot {
	return obs.CostSnapshot{
		RowsScanned: scanned, RowsProduced: produced,
		Seeks: scanned / 2, Batches: 1, Bytes: produced * 8, WallNs: wallNs,
	}
}

// TestRecordAggregates: per-shape call counts, strategy splits and
// summed costs line up, and the top-K orders by total wall cost.
func TestRecordAggregates(t *testing.T) {
	r := New(Config{TopK: 4})
	r.Record(1, "cheap", "direct", snap(100, 10, 5))
	r.Record(1, "cheap", "cached", snap(200, 20, 5))
	r.Record(2, "pricey", "direct", snap(5000, 900, 30))

	calls, wall, ok := r.ShapeCost(1)
	if !ok || calls != 2 || wall != 300 {
		t.Fatalf("ShapeCost(1) = (%d, %d, %v), want (2, 300, true)", calls, wall, ok)
	}
	if _, _, ok := r.ShapeCost(99); ok {
		t.Fatal("untracked shape reported ok")
	}

	s := r.Snapshot()
	if s.Queries != 3 || s.Shapes != 2 || len(s.TopK) != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	top := s.TopK[0]
	if top.Fingerprint != fmt.Sprintf("%016x", uint64(2)) || top.TotalCost != 5000 {
		t.Fatalf("top shape = %+v, want fingerprint 2 cost 5000", top)
	}
	second := s.TopK[1]
	if second.Calls != 2 || second.Cost.RowsScanned != 30 || second.ByStrategy["cached"] != 1 {
		t.Fatalf("second shape = %+v", second)
	}
	if second.WallMaxNs != 200 {
		t.Fatalf("wall max = %d, want 200", second.WallMaxNs)
	}
}

// TestMaxShapesBound: shapes past the bound drop detail but still
// count toward the aggregate query total and the sketch.
func TestMaxShapesBound(t *testing.T) {
	r := New(Config{TopK: 8, MaxShapes: 2})
	for fp := uint64(1); fp <= 5; fp++ {
		r.Record(fp, "s", "direct", snap(int64(fp)*100, 1, 1))
	}
	s := r.Snapshot()
	if s.Shapes != 2 || s.DroppedShapes != 3 || s.Queries != 5 {
		t.Fatalf("snapshot = %+v, want 2 shapes, 3 dropped, 5 queries", s)
	}
	if len(s.TopK) != 5 {
		t.Fatalf("sketch tracked %d shapes, want all 5", len(s.TopK))
	}
}

// TestTopKDeterministicUnderRace: concurrent recorders with a fixed
// total workload converge to one snapshot — same top-K order, same
// counts — regardless of interleaving. Run under -race this also
// proves the recording path is synchronization-clean.
func TestTopKDeterministicUnderRace(t *testing.T) {
	run := func() *Snapshot {
		r := New(Config{TopK: 16})
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					fp := uint64((seed+i)%10 + 1)
					r.Record(fp, fmt.Sprintf("shape-%d", fp), "direct", snap(int64(fp)*10, int64(fp), 1))
				}
			}(w)
		}
		wg.Wait()
		return r.Snapshot()
	}
	a, b := run(), run()
	if a.Queries != b.Queries || a.Shapes != b.Shapes || len(a.TopK) != len(b.TopK) {
		t.Fatalf("snapshots disagree: %+v vs %+v", a, b)
	}
	for i := range a.TopK {
		x, y := a.TopK[i], b.TopK[i]
		if x.Fingerprint != y.Fingerprint || x.TotalCost != y.TotalCost || x.Calls != y.Calls || x.Cost != y.Cost {
			t.Fatalf("top-K entry %d differs:\n%+v\nvs\n%+v", i, x, y)
		}
	}
	for i := 1; i < len(a.TopK); i++ {
		if a.TopK[i].TotalCost > a.TopK[i-1].TotalCost {
			t.Fatalf("top-K not cost-descending at %d", i)
		}
	}
}

// TestPrometheusSeries: the rdfcube_workload_* series land on a valid
// exposition and move when queries are recorded.
func TestPrometheusSeries(t *testing.T) {
	m := obs.NewRegistry()
	r := New(Config{Metrics: m})
	r.Record(7, "shape", "direct", snap(1000, 50, 10))
	r.Record(7, "shape", "cached", snap(2000, 0, 10))

	var b bytes.Buffer
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, w := range []string{
		"rdfcube_workload_queries_total 2",
		"rdfcube_workload_rows_scanned_total 50",
		"rdfcube_workload_rows_produced_total 20",
		"rdfcube_workload_bytes_materialized_total 160",
		"rdfcube_workload_wall_seconds_count 2",
		"rdfcube_workload_shapes 1",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("exposition lacks %q:\n%s", w, out)
		}
	}
}

// TestNilRegistry: a nil registry swallows every call.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Record(1, "x", "direct", snap(1, 1, 1))
	if _, _, ok := r.ShapeCost(1); ok {
		t.Fatal("nil registry tracked a shape")
	}
	if s := r.Snapshot(); s == nil || len(s.TopK) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if r.Shapes() != nil {
		t.Fatal("nil registry returned shapes")
	}
}
