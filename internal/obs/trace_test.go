package obs

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// TestStartSpanWithoutTrace: on a bare context, StartSpan must return a
// nil span whose every method is a no-op — the zero-cost-when-off
// contract the instrumented layers rely on.
func TestStartSpanWithoutTrace(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "stage")
	if s != nil {
		t.Fatal("StartSpan on an untraced context returned a live span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan on an untraced context rewrapped the context")
	}
	// All nil-safe.
	s.End()
	s.Attr("k", "v")
	s.AttrInt("n", 1)
	s.AddRows(1)
	s.AddSeeks(1)
	s.AddBytes(1)
	s.SetDurationNs(5)
	if s.NewChild("c") != nil {
		t.Fatal("nil span produced a child")
	}
	if s.Dump() != nil {
		t.Fatal("nil span produced a dump")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("bare context carries a span")
	}
}

// TestSpanTree builds a trace through the context-propagation API and
// checks the dumped tree: structure, counters, attrs, and that Render
// indents children under parents.
func TestSpanTree(t *testing.T) {
	var tracer Tracer
	ctx, tr := tracer.Start(context.Background(), "/query")
	if tr == nil || tr.ID == "" {
		t.Fatal("Start returned no trace / empty ID")
	}
	ctx1, plan := StartSpan(ctx, "bgp.plan")
	plan.Attr("steps", "3")
	plan.End()
	_, eval := StartSpan(ctx1, "bgp.eval")
	eval.AddRows(42)
	eval.AddSeeks(7)
	eval.End()
	tracer.Finish(tr)
	if !tr.Root.Ended() {
		t.Fatal("Finish did not end the root span")
	}

	d := tr.Dump()
	if d.Root.Name != "/query" || len(d.Root.Children) != 1 {
		t.Fatalf("root = %q with %d children, want /query with 1", d.Root.Name, len(d.Root.Children))
	}
	p := d.Root.Children[0]
	if p.Name != "bgp.plan" || p.Attrs["steps"] != "3" {
		t.Fatalf("child 0 = %+v, want bgp.plan with steps=3", p)
	}
	if len(p.Children) != 1 || p.Children[0].Name != "bgp.eval" {
		t.Fatalf("bgp.plan children = %+v, want [bgp.eval]", p.Children)
	}
	e := p.Children[0]
	if e.Rows != 42 || e.Seeks != 7 {
		t.Fatalf("bgp.eval rows/seeks = %d/%d, want 42/7", e.Rows, e.Seeks)
	}

	r := d.Root.Render()
	if !strings.Contains(r, "/query") ||
		!strings.Contains(r, "\n  bgp.plan") ||
		!strings.Contains(r, "\n    bgp.eval") ||
		!strings.Contains(r, "rows=42") {
		t.Fatalf("render lacks the indented tree:\n%s", r)
	}
}

// TestSpanEndIdempotent: the first End wins; SetDurationNs overrides.
func TestSpanEndIdempotent(t *testing.T) {
	var tracer Tracer
	_, tr := tracer.Start(context.Background(), "q")
	s := tr.Root.NewChild("stage")
	time.Sleep(time.Millisecond)
	s.End()
	d1 := s.DurNs()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.DurNs() != d1 {
		t.Fatal("second End re-stamped the duration")
	}
	s.SetDurationNs(123)
	if s.DurNs() != 123 {
		t.Fatal("SetDurationNs did not override")
	}
}

// TestTracerRing: the ring keeps the most recent traces, newest first,
// bounded by the default size.
func TestTracerRing(t *testing.T) {
	var tracer Tracer
	const total = defaultRingSize + 5
	for i := 0; i < total; i++ {
		_, tr := tracer.Start(context.Background(), fmt.Sprintf("q%d", i))
		tracer.Finish(tr)
	}
	last := tracer.Last(0)
	if len(last) != defaultRingSize {
		t.Fatalf("Last(0) = %d traces, want %d", len(last), defaultRingSize)
	}
	for i, d := range last {
		want := fmt.Sprintf("q%d", total-1-i)
		if d.Root.Name != want {
			t.Fatalf("Last[%d] = %q, want %q", i, d.Root.Name, want)
		}
	}
	if got := tracer.Last(3); len(got) != 3 || got[0].Root.Name != fmt.Sprintf("q%d", total-1) {
		t.Fatalf("Last(3) = %v", got)
	}
	if got := tracer.Started.Load(); got != total {
		t.Fatalf("Started = %d, want %d", got, total)
	}
}

// TestSlowQueryLog: a finished trace past the threshold must land in
// the slog destination with its trace ID and rendered stages, and
// Finish must report it slow.
func TestSlowQueryLog(t *testing.T) {
	var tracer Tracer
	tracer.SetSlowThreshold(time.Nanosecond)
	var buf bytes.Buffer
	tracer.SetLogger(slog.New(slog.NewJSONHandler(&buf, nil)))
	if !tracer.ShouldTrace() {
		t.Fatal("armed slow threshold did not enable tracing")
	}

	ctx, tr := tracer.Start(context.Background(), "/query")
	_, s := StartSpan(ctx, "viewreg.answer")
	s.AddRows(9)
	s.End()
	time.Sleep(time.Millisecond)
	if !tracer.Finish(tr, slog.String("endpoint", "/query")) {
		t.Fatal("Finish did not report the trace as slow")
	}
	if tracer.Slow.Load() != 1 {
		t.Fatalf("Slow = %d, want 1", tracer.Slow.Load())
	}
	out := buf.String()
	for _, want := range []string{"slow query", tr.ID, "viewreg.answer", `"endpoint":"/query"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow log lacks %q:\n%s", want, out)
		}
	}

	// Under the threshold (or with none armed) nothing is logged.
	buf.Reset()
	tracer.SetSlowThreshold(time.Hour)
	_, tr2 := tracer.Start(context.Background(), "/query")
	if tracer.Finish(tr2) {
		t.Fatal("fast trace reported slow")
	}
	if buf.Len() != 0 {
		t.Fatalf("fast trace logged: %s", buf.String())
	}
}

// TestSlowLogRateLimit: slow traces sharing a fingerprint emit at most
// burst log lines per second; the suppressed count rides the next
// emitted record; untagged traces (fp 0) are never limited.
func TestSlowLogRateLimit(t *testing.T) {
	var tracer Tracer
	tracer.SetSlowThreshold(time.Nanosecond)
	tracer.SetSlowQueryBurst(1)
	var buf bytes.Buffer
	tracer.SetLogger(slog.New(slog.NewJSONHandler(&buf, nil)))

	slowTrace := func(fp uint64) bool {
		_, tr := tracer.Start(context.Background(), "/query")
		tr.SetFingerprint(fp)
		time.Sleep(time.Microsecond)
		return tracer.Finish(tr)
	}

	const fp = uint64(0xabcdef)
	if !slowTrace(fp) {
		t.Fatal("first slow trace not reported slow")
	}
	first := buf.String()
	if !strings.Contains(first, "slow query") || !strings.Contains(first, "0000000000abcdef") {
		t.Fatalf("first slow log missing fingerprint:\n%s", first)
	}
	buf.Reset()
	for i := 0; i < 3; i++ {
		if !slowTrace(fp) {
			t.Fatal("suppressed trace must still report slow")
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("burst-exhausted fingerprint still logged:\n%s", buf.String())
	}
	if got := tracer.SlowSuppressed.Load(); got != 3 {
		t.Fatalf("SlowSuppressed = %d, want 3", got)
	}
	if got := tracer.Slow.Load(); got != 4 {
		t.Fatalf("Slow = %d, want 4 (suppression must not hide slowness)", got)
	}

	// A different fingerprint has its own bucket.
	slowTrace(fp + 1)
	if !strings.Contains(buf.String(), "slow query") {
		t.Fatal("fresh fingerprint was rate-limited")
	}
	buf.Reset()

	// Untagged traces bypass the limiter entirely.
	for i := 0; i < 3; i++ {
		slowTrace(0)
	}
	if got := strings.Count(buf.String(), "slow query"); got != 3 {
		t.Fatalf("untagged traces logged %d times, want 3", got)
	}
	buf.Reset()

	// Refill: hand the fingerprint's bucket a token by backdating its
	// last refill, then the next emit carries the suppressed count.
	tracer.limMu.Lock()
	tracer.limiters[fp].last = time.Now().Add(-2 * time.Second)
	tracer.limMu.Unlock()
	slowTrace(fp)
	out := buf.String()
	if !strings.Contains(out, `"suppressed":3`) {
		t.Fatalf("refilled emit lacks suppressed=3:\n%s", out)
	}
}

// TestTracerDisabledByDefault: the zero Tracer traces nothing.
func TestTracerDisabledByDefault(t *testing.T) {
	var tracer Tracer
	if tracer.ShouldTrace() {
		t.Fatal("zero tracer wants to trace")
	}
	tracer.SetEnabled(true)
	if !tracer.ShouldTrace() {
		t.Fatal("enabled tracer refuses to trace")
	}
}
