package obs

// A weighted Space-Saving sketch over uint64 keys: bounded memory,
// approximate heavy hitters. When a new key arrives with the sketch
// full, the minimum-count entry is evicted and the newcomer inherits
// its count (the classic Metwally et al. replacement rule); Err records
// that inherited floor, so Count-Err is a guaranteed lower bound on the
// key's true weight.
//
// The workload registry uses it to keep the top query shapes by total
// cost without tracking every fingerprint ever seen.

import (
	"sort"
	"sync"
)

// TopKEntry is one sketch slot.
type TopKEntry struct {
	Key   uint64
	Count int64 // estimated total weight (upper bound)
	Err   int64 // possible overestimate inherited at replacement
}

// TopK is a concurrency-safe weighted Space-Saving sketch. A mutex is
// fine here: offers happen once per query, not per row.
type TopK struct {
	mu    sync.Mutex
	k     int
	slots map[uint64]*TopKEntry
}

// NewTopK returns a sketch tracking up to k keys. k < 1 is clamped to 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, slots: make(map[uint64]*TopKEntry, k)}
}

// Offer adds weight w for key. Non-positive weights are ignored.
func (t *TopK) Offer(key uint64, w int64) {
	if t == nil || w <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.slots[key]; ok {
		e.Count += w
		return
	}
	if len(t.slots) < t.k {
		t.slots[key] = &TopKEntry{Key: key, Count: w}
		return
	}
	// Evict the minimum-count slot; ties broken by largest key so the
	// choice is deterministic regardless of map iteration order.
	var min *TopKEntry
	for _, e := range t.slots {
		if min == nil || e.Count < min.Count || (e.Count == min.Count && e.Key > min.Key) {
			min = e
		}
	}
	delete(t.slots, min.Key)
	t.slots[key] = &TopKEntry{Key: key, Count: min.Count + w, Err: min.Count}
}

// Entries returns the current slots sorted by count descending, key
// ascending on ties — a fixed merge order, so concurrent recorders
// always converge to the same output once offers stop.
func (t *TopK) Entries() []TopKEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TopKEntry, 0, len(t.slots))
	for _, e := range t.slots {
		out = append(out, *e)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Len returns the number of tracked keys.
func (t *TopK) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slots)
}
