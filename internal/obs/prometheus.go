package obs

// Prometheus text exposition (format version 0.0.4), written by hand:
// one # HELP and # TYPE header per family, then one sample line per
// series — histograms expand into cumulative _bucket lines plus _sum
// and _count. Families appear in registration order (stable across
// scrapes of one process); series within a family likewise.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, f := range fams {
		r.mu.Lock()
		order := append([]string(nil), f.order...)
		ss := make([]*series, len(order))
		for i, ls := range order {
			ss[i] = f.series[ls]
		}
		help, kind := f.help, f.kind
		r.mu.Unlock()
		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, kind)
		for _, s := range ss {
			switch kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case kindGaugeFunc:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, formatFloat(s.gf.Value()))
			case kindHistogram:
				writeHistogram(bw, f.name, s.labels, s.h)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with
// le bounds in seconds, then _sum (seconds) and _count.
func writeHistogram(w *bufio.Writer, name, labels string, h *Histogram) {
	buckets, count, sum := h.snapshot()
	var cum int64
	for i := 0; i < histNumFinite; i++ {
		cum += buckets[i]
		le := formatFloat(float64(bucketBound(i)) / 1e9)
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="`+le+`"`), cum)
	}
	cum += buckets[histNumFinite]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(float64(sum)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

// mergeLabels splices an extra label into a rendered label block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders a float the shortest way that round-trips,
// avoiding exponent notation for the common magnitudes.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// The exposition format accepts exponents, but fixed notation is
	// kinder to eyeballs and to naive line parsers in smoke tests.
	if strings.ContainsAny(s, "eE") {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return s
}

// escapeHelp escapes backslash and newline in help text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
