package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one striped counter from many
// goroutines; the summed value must be exact. Run under -race this also
// proves the hot path is synchronization-clean.
func TestCounterConcurrent(t *testing.T) {
	c := newCounter()
	const workers, perWorker = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramConcurrent checks count/sum/max exactness under
// concurrent observation, and that the bucket snapshot is internally
// consistent.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	const workers, perWorker = 8, 5_000
	const obsNs = 10_000 // one fixed value keeps sum/max exactly checkable
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(obsNs)
			}
		}()
	}
	wg.Wait()
	const n = workers * perWorker
	if got := h.Count(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	if got := h.Sum(); got != n*obsNs {
		t.Fatalf("sum = %d, want %d", got, n*obsNs)
	}
	if got := h.Max(); got != obsNs {
		t.Fatalf("max = %d, want %d", got, obsNs)
	}
	buckets, count, _ := h.snapshot()
	var total int64
	for _, b := range buckets {
		total += b
	}
	if total != count {
		t.Fatalf("bucket total %d != count %d", total, count)
	}
}

// TestBucketIdx pins the bucket layout: values land in the smallest
// bucket whose bound covers them, and past 2^histMaxExp they overflow.
func TestBucketIdx(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{1 << histMinExp, 0},       // exactly the first bound: inclusive
		{1<<histMinExp + 1, 1},     // one past: next bucket
		{1 << (histMinExp + 3), 3}, // exact power of two stays in its bucket
		{1 << histMaxExp, histNumFinite - 1},
		{1<<histMaxExp + 1, histNumFinite}, // overflow → +Inf
	}
	for _, c := range cases {
		if got := bucketIdx(c.ns); got != c.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	for i := 0; i < histNumFinite; i++ {
		if got := bucketIdx(bucketBound(i)); got != i {
			t.Errorf("bound %d maps to bucket %d, want %d", bucketBound(i), got, i)
		}
	}
}

// TestHistogramQuantile: quantiles interpolate inside the covering
// bucket, so they must bracket the true value by that bucket's bounds.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", got)
	}
	const v = 5_000 // bucket (4096, 8192]
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got <= 4096 || got > 8192 {
			t.Errorf("p%v = %d, want in (4096, 8192]", q*100, got)
		}
	}
	// An observation past the finite range lands in +Inf; the top
	// quantile falls back to the tracked max.
	huge := int64(1)<<histMaxExp + 12345
	h.Observe(huge)
	if got := h.Quantile(1.0); got != huge {
		t.Errorf("p100 = %d, want max %d", got, huge)
	}
}

// TestHistogramQuantileEdges pins the degenerate cases: an empty
// histogram reports 0 at every q, q=0 lands inside the first occupied
// bucket (not on an empty leading bucket's bound), and a histogram
// whose whole mass overflowed to +Inf reports the tracked max rather
// than interpolated garbage.
func TestHistogramQuantileEdges(t *testing.T) {
	empty := newHistogram()
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty histogram q=%v = %d, want 0", q, got)
		}
	}

	h := newHistogram()
	const v = 100_000 // bucket (65536, 131072], well past bucket 0
	h.Observe(v)
	if got := h.Quantile(0); got <= 65536 || got > 131072 {
		t.Errorf("q=0 = %d, want in the occupied bucket (65536, 131072]", got)
	}

	inf := newHistogram()
	huge := int64(1)<<histMaxExp + 999
	for i := 0; i < 10; i++ {
		inf.Observe(huge)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := inf.Quantile(q); got != huge {
			t.Errorf("all-mass-in-+Inf q=%v = %d, want max %d", q, got, huge)
		}
	}
}

// TestNilCollectors: every collector method must be a nil-receiver
// no-op, so optional instrumentation never branches.
func TestNilCollectors(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	var g *Gauge
	g.Inc()
	g.Dec()
	g.Set(7)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	var h *Histogram
	h.Observe(100)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram reported data")
	}
	var gf *GaugeFunc
	if gf.Value() != 0 {
		t.Error("nil gaugefunc value != 0")
	}
}

// TestRegistryIdempotent: registering the same (name, labels) returns
// the same collector — the property WAL/viewreg handle swaps rely on to
// keep accumulating into one process-wide series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "k", "v")
	b := r.Counter("x_total", "help", "k", "v")
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	other := r.Counter("x_total", "help", "k", "w")
	if other == a {
		t.Error("distinct labels returned the same counter")
	}
	h1 := r.Histogram("y_seconds", "help")
	h2 := r.Histogram("y_seconds", "help")
	if h1 != h2 {
		t.Error("same histogram name returned distinct histograms")
	}
}

// TestRegistryKindMismatch: one name, two kinds is a wiring bug and
// must panic loudly at registration, not corrupt the exposition.
func TestRegistryKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("z_total", "help")
}

// TestGaugeFuncReplace: re-registering a GaugeFunc must replace the
// callback — the freshest owner (a swapped view registry) wins.
func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("live", "help", func() float64 { return 1 })
	r.GaugeFunc("live", "help", func() float64 { return 2 })
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\nlive 2\n") {
		t.Fatalf("exposition lacks \"live 2\" after GaugeFunc replacement:\n%s", b.String())
	}
}
