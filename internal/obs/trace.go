package obs

// Lightweight query tracing: a context-propagated span tree recording
// per-stage timing and row/seek/byte counts through the request path.
//
// The design trades generality for cost: spans exist only while a
// trace is active on the request's context. When tracing is off,
// StartSpan is one context lookup returning a nil *Span, and every
// *Span method is a nil-safe no-op — so the instrumentation can stay
// compiled into every layer (server → viewreg → bgp → store → persist)
// at ~zero cost.
//
// A Tracer owns a ring buffer of the most recently finished traces
// (GET /debug/traces/last) and the slow-query log: a finished trace
// whose root outlives the threshold is logged through slog with its
// trace ID and per-stage breakdown.

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one stage of a trace. Counters are atomic because parallel
// join workers may account into one span concurrently; children and
// attrs are guarded by mu.
type Span struct {
	name  string
	start time.Time
	durNs atomic.Int64

	rows  atomic.Int64
	seeks atomic.Int64
	bytes atomic.Int64

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

type spanKey struct{}

// StartSpan starts a child of the active span on ctx, if any. With no
// active trace it returns (ctx, nil); the nil span swallows every
// method, so callers never branch.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := parent.NewChild(name)
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithSpan installs s as the active span (used by tracers and
// tests; StartSpan is the usual entry point).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// NewChild creates and attaches a started child span.
func (s *Span) NewChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's duration (idempotent: the first End wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.durNs.CompareAndSwap(0, time.Since(s.start).Nanoseconds())
}

// SetDurationNs overrides the duration — for spans that aggregate CPU
// time across parallel workers rather than wall time.
func (s *Span) SetDurationNs(ns int64) {
	if s == nil {
		return
	}
	s.durNs.Store(ns)
}

// Ended reports whether the span's duration has been stamped.
func (s *Span) Ended() bool { return s != nil && s.durNs.Load() != 0 }

// DurNs returns the stamped duration (0 while the span is open).
func (s *Span) DurNs() int64 {
	if s == nil {
		return 0
	}
	return s.durNs.Load()
}

// Attr annotates the span.
func (s *Span) Attr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, val})
	s.mu.Unlock()
}

// AttrInt annotates the span with an integer.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attr(key, fmt.Sprintf("%d", v))
}

// AddRows, AddSeeks and AddBytes account row/seek/byte counts; safe
// from parallel workers.
func (s *Span) AddRows(n int64) {
	if s != nil {
		s.rows.Add(n)
	}
}
func (s *Span) AddSeeks(n int64) {
	if s != nil {
		s.seeks.Add(n)
	}
}
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.bytes.Add(n)
	}
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SpanDump is the JSON rendering of a span subtree.
type SpanDump struct {
	Name     string            `json:"name"`
	DurNs    int64             `json:"dur_ns"`
	Rows     int64             `json:"rows,omitempty"`
	Seeks    int64             `json:"seeks,omitempty"`
	Bytes    int64             `json:"bytes,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanDump       `json:"children,omitempty"`
}

// Dump renders the span subtree. Open spans report the time elapsed so
// far.
func (s *Span) Dump() *SpanDump {
	if s == nil {
		return nil
	}
	d := &SpanDump{Name: s.name, DurNs: s.durNs.Load()}
	if d.DurNs == 0 {
		d.DurNs = time.Since(s.start).Nanoseconds()
	}
	d.Rows = s.rows.Load()
	d.Seeks = s.seeks.Load()
	d.Bytes = s.bytes.Load()
	s.mu.Lock()
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.Key] = a.Val
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Dump())
	}
	return d
}

// Render pretty-prints the subtree, one span per line, indented by
// depth — the human face of EXPLAIN ANALYZE and the slow-query log.
func (d *SpanDump) Render() string {
	var b []byte
	d.render(&b, 0)
	return string(b)
}

func (d *SpanDump) render(b *[]byte, depth int) {
	if d == nil {
		return
	}
	for i := 0; i < depth; i++ {
		*b = append(*b, "  "...)
	}
	*b = append(*b, d.Name...)
	*b = append(*b, fmt.Sprintf("  %.3fms", float64(d.DurNs)/1e6)...)
	if d.Rows > 0 {
		*b = append(*b, fmt.Sprintf("  rows=%d", d.Rows)...)
	}
	if d.Seeks > 0 {
		*b = append(*b, fmt.Sprintf("  seeks=%d", d.Seeks)...)
	}
	if d.Bytes > 0 {
		*b = append(*b, fmt.Sprintf("  bytes=%d", d.Bytes)...)
	}
	if len(d.Attrs) > 0 {
		keys := make([]string, 0, len(d.Attrs))
		for k := range d.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			*b = append(*b, fmt.Sprintf("  %s=%s", k, d.Attrs[k])...)
		}
	}
	*b = append(*b, '\n')
	for _, c := range d.Children {
		c.render(b, depth+1)
	}
}

// Walk visits the dump tree depth-first.
func (d *SpanDump) Walk(fn func(depth int, s *SpanDump)) {
	d.walk(0, fn)
}

func (d *SpanDump) walk(depth int, fn func(int, *SpanDump)) {
	if d == nil {
		return
	}
	fn(depth, d)
	for _, c := range d.Children {
		c.walk(depth+1, fn)
	}
}

// Trace is one request's span tree.
type Trace struct {
	ID   string
	Root *Span

	// fp is the query-shape fingerprint (viewreg's canonical exact
	// key), set by the server once the query is parsed; the slow-query
	// log rate-limits per fingerprint. Atomic because Finish may race a
	// late SetFingerprint under client cancellation.
	fp atomic.Uint64
}

// SetFingerprint tags the trace with a query-shape fingerprint.
func (t *Trace) SetFingerprint(fp uint64) {
	if t != nil {
		t.fp.Store(fp)
	}
}

// Fingerprint returns the tagged fingerprint (0 = untagged).
func (t *Trace) Fingerprint() uint64 {
	if t == nil {
		return 0
	}
	return t.fp.Load()
}

// TraceDump is the JSON rendering of a finished trace.
type TraceDump struct {
	ID   string    `json:"trace_id"`
	Root *SpanDump `json:"root"`
}

// Dump renders the trace.
func (t *Trace) Dump() *TraceDump {
	if t == nil {
		return nil
	}
	return &TraceDump{ID: t.ID, Root: t.Root.Dump()}
}

// traceSeq feeds trace IDs; combined with the start timestamp the IDs
// are unique per process and sortable-ish across restarts.
var traceSeq atomic.Uint64

// newTraceID returns a 16-hex-digit trace ID.
func newTraceID() string {
	seq := traceSeq.Add(1)
	return fmt.Sprintf("%012x%04x", uint64(time.Now().UnixNano()/1000)&0xffffffffffff, seq&0xffff)
}

// Tracer decides when traces exist and keeps the recent ones. The zero
// value is usable: tracing off, no slow log, ring of defaultRingSize.
type Tracer struct {
	enabled atomic.Bool
	slowNs  atomic.Int64
	logger  atomic.Pointer[slog.Logger]

	mu   sync.Mutex
	ring []*Trace
	next int
	size int

	// Slow counts traces past the threshold; Started counts traces;
	// SlowSuppressed counts slow traces whose log line was rate-limited
	// away (they still count in Slow).
	Slow           atomic.Int64
	Started        atomic.Int64
	SlowSuppressed atomic.Int64

	// Per-fingerprint slow-log token buckets: 1 token/s refill, burst
	// slowBurst (0 = default 1). Fingerprint 0 (untagged traces) is
	// never limited.
	slowBurst atomic.Int64
	limMu     sync.Mutex
	limiters  map[uint64]*slowLimiter
}

// slowLimiter is one fingerprint's token bucket plus the count of log
// lines suppressed since the last emitted one.
type slowLimiter struct {
	tokens     float64
	last       time.Time
	suppressed int64
}

// maxSlowLimiters bounds the limiter map; past it the map is reset
// wholesale (a burst of fresh tokens for everyone beats unbounded
// growth under fingerprint churn).
const maxSlowLimiters = 1024

// SetSlowQueryBurst sets the per-fingerprint slow-log burst (minimum
// 1). The refill rate is fixed at one line per second.
func (t *Tracer) SetSlowQueryBurst(n int) {
	if n < 1 {
		n = 1
	}
	t.slowBurst.Store(int64(n))
}

// allowSlowLog runs fp's token bucket: it reports whether this slow
// trace's log line may be emitted, and how many earlier lines for the
// same fingerprint were suppressed since the last emit.
func (t *Tracer) allowSlowLog(fp uint64) (suppressed int64, emit bool) {
	if fp == 0 {
		return 0, true
	}
	burst := float64(t.slowBurst.Load())
	if burst < 1 {
		burst = 1
	}
	now := time.Now()
	t.limMu.Lock()
	defer t.limMu.Unlock()
	if t.limiters == nil || len(t.limiters) > maxSlowLimiters {
		t.limiters = make(map[uint64]*slowLimiter)
	}
	l, ok := t.limiters[fp]
	if !ok {
		l = &slowLimiter{tokens: burst, last: now}
		t.limiters[fp] = l
	}
	l.tokens += now.Sub(l.last).Seconds() // 1 token/s
	l.last = now
	if l.tokens > burst {
		l.tokens = burst
	}
	if l.tokens < 1 {
		l.suppressed++
		t.SlowSuppressed.Add(1)
		return 0, false
	}
	l.tokens--
	suppressed = l.suppressed
	l.suppressed = 0
	return suppressed, true
}

const defaultRingSize = 16

// SetEnabled turns always-on tracing on or off. Explicitly requested
// traces (Force) work either way.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether every request is traced.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetSlowThreshold arms the slow-query log: finished traces whose root
// exceeds d are logged. Zero disables.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(d.Nanoseconds()) }

// SlowThresholdNs returns the armed threshold (0 = off).
func (t *Tracer) SlowThresholdNs() int64 { return t.slowNs.Load() }

// SetLogger sets the slow-query slog destination.
func (t *Tracer) SetLogger(l *slog.Logger) { t.logger.Store(l) }

// ShouldTrace reports whether a new request should carry a trace: the
// always-on flag, or an armed slow-query threshold (the trace is the
// evidence the log wants to print).
func (t *Tracer) ShouldTrace() bool {
	return t.enabled.Load() || t.slowNs.Load() > 0
}

// Start begins a trace rooted at name and installs it on ctx.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Trace) {
	root := &Span{name: name, start: time.Now()}
	tr := &Trace{ID: newTraceID(), Root: root}
	t.Started.Add(1)
	return ContextWithSpan(ctx, root), tr
}

// Finish ends the trace's root span, records it in the ring, and logs
// it when slow. extra attrs (endpoint, status, error) join the log
// line. It reports whether the trace crossed the slow threshold.
func (t *Tracer) Finish(tr *Trace, extra ...slog.Attr) bool {
	if tr == nil {
		return false
	}
	tr.Root.End()
	t.mu.Lock()
	if t.size == 0 {
		t.size = defaultRingSize
	}
	if len(t.ring) < t.size {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
	}
	t.next = (t.next + 1) % t.size
	t.mu.Unlock()

	slow := t.slowNs.Load()
	if slow > 0 && tr.Root.DurNs() >= slow {
		t.Slow.Add(1)
		suppressed, emit := t.allowSlowLog(tr.Fingerprint())
		if !emit {
			return true
		}
		if l := t.logger.Load(); l != nil {
			attrs := append([]slog.Attr{
				slog.String("trace_id", tr.ID),
				slog.Duration("elapsed", time.Duration(tr.Root.DurNs())),
				slog.String("stages", tr.Root.Dump().Render()),
			}, extra...)
			if fp := tr.Fingerprint(); fp != 0 {
				attrs = append(attrs, slog.String("fingerprint", fmt.Sprintf("%016x", fp)))
			}
			if suppressed > 0 {
				attrs = append(attrs, slog.Int64("suppressed", suppressed))
			}
			l.LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
		}
		return true
	}
	return false
}

// Last returns up to n recently finished traces, newest first.
func (t *Tracer) Last(n int) []*TraceDump {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := len(t.ring)
	if total == 0 {
		return nil
	}
	if n <= 0 || n > total {
		n = total
	}
	out := make([]*TraceDump, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + 2*total) % total
		if tr := t.ring[idx]; tr != nil {
			out = append(out, tr.Dump())
		}
	}
	return out
}
