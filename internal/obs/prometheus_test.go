package obs

import (
	"bytes"
	"strings"
	"testing"
)

// expose renders r and fails the test on error.
func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestExpositionGolden pins the rendered text of each collector kind
// and runs the full output through the validator.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "Requests served.").Add(42)
	r.Counter("req_by_route_total", "Requests by route.", "route", "/query").Add(7)
	r.Counter("req_by_route_total", "Requests by route.", "route", "/insert").Add(3)
	r.Gauge("in_flight", "Requests in flight.").Set(5)
	r.GaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	h := r.Histogram("latency_seconds", "Latency.")
	h.Observe(5_000)   // bucket le=8192ns = 8.192e-6s
	h.Observe(5_000)
	h.Observe(100_000) // bucket le=131072ns

	out := expose(t, r)
	wantLines := []string{
		"# HELP req_total Requests served.",
		"# TYPE req_total counter",
		"req_total 42",
		"# TYPE req_by_route_total counter",
		`req_by_route_total{route="/query"} 7`,
		`req_by_route_total{route="/insert"} 3`,
		"# TYPE in_flight gauge",
		"in_flight 5",
		"# TYPE uptime_seconds gauge",
		"uptime_seconds 12.5",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.000004096"} 0`,
		`latency_seconds_bucket{le="0.000008192"} 2`,
		`latency_seconds_bucket{le="0.000131072"} 3`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 0.00011",
		"latency_seconds_count 3",
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q\n---\n%s", want, out)
		}
	}
	// Families must render in registration order.
	if strings.Index(out, "req_total") > strings.Index(out, "latency_seconds") {
		t.Error("families not in registration order")
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("golden exposition fails validation: %v", err)
	}
}

// TestExpositionLabelEscaping: quotes, backslashes and newlines in
// label values must be escaped and still validate.
func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Escapes.", "v", `a"b\c`+"\n").Inc()
	out := expose(t, r)
	want := `esc_total{v="a\"b\\c\n"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("escaped exposition fails validation: %v", err)
	}
}

// TestValidateExpositionRejects drives the validator over known-bad
// texts — the cases CI's smoke scrape must catch if the renderer ever
// regresses.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the expected error
	}{
		{
			"sample without TYPE",
			"orphan_total 1\n",
			"without a preceding # TYPE",
		},
		{
			"duplicate series",
			"# TYPE a counter\na 1\na 2\n",
			"duplicate series",
		},
		{
			"duplicate TYPE",
			"# TYPE a counter\n# TYPE a counter\na 1\n",
			"second TYPE line",
		},
		{
			"unknown type",
			"# TYPE a widget\na 1\n",
			"unknown metric type",
		},
		{
			"bad metric name",
			"# TYPE a counter\n9a 1\n",
			"bad metric name",
		},
		{
			"negative counter",
			"# TYPE a counter\na -1\n",
			"negative value",
		},
		{
			"bad sample value",
			"# TYPE a counter\na one\n",
			"bad sample value",
		},
		{
			"unterminated label value",
			"# TYPE a counter\na{k=\"v} 1\n",
			"unterminated label value",
		},
		{
			"bad escape",
			"# TYPE a counter\na{k=\"\\t\"} 1\n",
			"bad escape",
		},
		{
			"missing comma",
			"# TYPE a counter\na{k=\"v\"j=\"w\"} 1\n",
			"missing comma",
		},
		{
			"histogram without +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"no le=\"+Inf\" bucket",
		},
		{
			"histogram +Inf != count",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
			"+Inf bucket 1 != count 2",
		},
		{
			"histogram buckets not cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"cumulative bucket decreased",
		},
		{
			"histogram le bounds not increasing",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"le bounds not increasing",
		},
		{
			"bare histogram sample",
			"# TYPE h histogram\nh 1\n",
			"bare sample",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateExposition(strings.NewReader(c.text))
			if err == nil {
				t.Fatalf("validator accepted bad exposition:\n%s", c.text)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestValidateExpositionAccepts: corner-case texts that are legal must
// pass — timestamps, free-form comments, NaN gauges, empty input.
func TestValidateExpositionAccepts(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"free-form comment", "# just a note\n# TYPE a counter\na 1\n"},
		{"timestamp", "# TYPE a counter\na 1 1700000000000\n"},
		{"NaN gauge", "# TYPE g gauge\ng NaN\n"},
		{"untyped", "# TYPE u untyped\nu 3.14\n"},
		{"summary passthrough", "# TYPE s summary\ns_sum 1\ns_count 2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := ValidateExposition(strings.NewReader(c.text)); err != nil {
				t.Fatalf("validator rejected legal exposition: %v\n%s", err, c.text)
			}
		})
	}
}
