package obs

// ValidateExposition: a strict line-format checker for the Prometheus
// text exposition (0.0.4). It is library code, not test-only, so the
// package's own tests, the server's /metrics tests and the CI smoke
// can all run the same validator against a live scrape.
//
// Checked invariants:
//
//   - every line is a # HELP / # TYPE comment or a sample
//   - # TYPE precedes its family's samples and names a known type
//   - metric and label names are legal, label values quoted with only
//     legal escapes, sample values parse as Go floats
//   - no duplicate (name, labelset) series
//   - histogram series expose _bucket/_sum/_count, buckets are
//     cumulative (non-decreasing in le order), an le="+Inf" bucket
//     exists and equals _count

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// histSeries accumulates one histogram series' samples for the
// cross-line invariants.
type histSeries struct {
	buckets []bucketSample // in exposition order
	hasInf  bool
	infVal  float64
	count   float64
	hasCnt  bool
}

type bucketSample struct {
	le  float64
	val float64
}

// ValidateExposition reads a full exposition and returns the first
// violation found (nil when the text is valid).
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{}   // family -> declared type
	seen := map[string]bool{}      // name + labels, duplicate detection
	hists := map[string]*histSeries{}
	sawSample := map[string]bool{} // family -> sample seen (TYPE must precede)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types, sawSample); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := name + labels
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %s%s", lineNo, name, labels)
		}
		seen[key] = true
		fam := familyOf(name, types)
		sawSample[fam] = true
		typ, ok := types[fam]
		if !ok {
			return fmt.Errorf("line %d: sample %s without a preceding # TYPE", lineNo, name)
		}
		if typ == "counter" && value < 0 {
			return fmt.Errorf("line %d: counter %s has negative value %g", lineNo, name, value)
		}
		if typ == "histogram" {
			if err := collectHistogram(name, fam, labels, value, hists); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := hists[k].check(k); err != nil {
			return err
		}
	}
	return nil
}

// validateComment checks a # HELP / # TYPE line and records the type.
func validateComment(line string, types map[string]string, sawSample map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return nil // free-form comment: legal, ignored
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validMetricName(name) {
			return fmt.Errorf("TYPE line with bad metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("second TYPE line for %s", name)
		}
		if sawSample[name] {
			return fmt.Errorf("TYPE line for %s after its samples", name)
		}
		types[name] = typ
	}
	return nil
}

// parseSample splits a sample line into name, rendered labels and value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[i : j+1]
		if err := validateLabels(labels); err != nil {
			return "", "", 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		k := strings.IndexByte(rest, ' ')
		if k < 0 {
			return "", "", 0, fmt.Errorf("sample without value: %q", line)
		}
		name = rest[:k]
		rest = strings.TrimSpace(rest[k:])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	// A timestamp may follow the value; only the value is mandatory.
	valField := rest
	if k := strings.IndexByte(rest, ' '); k >= 0 {
		valField = rest[:k]
	}
	value, err = parseExpositionFloat(valField)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q: %v", valField, err)
	}
	return name, labels, value, nil
}

// validateLabels checks a rendered {k="v",...} block.
func validateLabels(block string) error {
	inner := block[1 : len(block)-1]
	if inner == "" {
		return fmt.Errorf("empty label block")
	}
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair near %q", inner)
		}
		lname := inner[:eq]
		if !validLabelName(lname) {
			return fmt.Errorf("bad label name %q", lname)
		}
		rest := inner[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value near %q", rest)
		}
		// Scan the quoted value, honoring \\ \" \n escapes.
		i := 1
		for {
			if i >= len(rest) {
				return fmt.Errorf("unterminated label value near %q", rest)
			}
			if rest[i] == '\\' {
				if i+1 >= len(rest) || !strings.ContainsRune(`\"n`, rune(rest[i+1])) {
					return fmt.Errorf("bad escape in label value near %q", rest)
				}
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		inner = rest[i+1:]
		if strings.HasPrefix(inner, ",") {
			inner = inner[1:]
			if inner == "" {
				return fmt.Errorf("trailing comma in label block")
			}
		} else if inner != "" {
			return fmt.Errorf("missing comma between labels near %q", inner)
		}
	}
	return nil
}

// collectHistogram files one histogram-family sample into its series
// accumulator, keyed by family + labels-without-le.
func collectHistogram(name, fam, labels string, value float64, hists map[string]*histSeries) error {
	suffix := strings.TrimPrefix(name, fam)
	key := fam + stripLabel(labels, "le")
	hs := hists[key]
	if hs == nil {
		hs = &histSeries{}
		hists[key] = hs
	}
	switch suffix {
	case "_bucket":
		le, ok := labelValue(labels, "le")
		if !ok {
			return fmt.Errorf("histogram bucket %s%s without le label", name, labels)
		}
		if le == "+Inf" {
			hs.hasInf = true
			hs.infVal = value
			return nil
		}
		f, err := parseExpositionFloat(le)
		if err != nil {
			return fmt.Errorf("bad le value %q: %v", le, err)
		}
		hs.buckets = append(hs.buckets, bucketSample{le: f, val: value})
	case "_sum":
	case "_count":
		hs.count = value
		hs.hasCnt = true
	case "":
		return fmt.Errorf("bare sample %s for histogram family %s", name, fam)
	default:
		return fmt.Errorf("unknown histogram suffix %q on %s", suffix, name)
	}
	return nil
}

// check enforces the per-series histogram invariants after the full
// text has been read.
func (hs *histSeries) check(key string) error {
	if !hs.hasInf {
		return fmt.Errorf("histogram %s: no le=\"+Inf\" bucket", key)
	}
	if !hs.hasCnt {
		return fmt.Errorf("histogram %s: no _count sample", key)
	}
	if hs.infVal != hs.count {
		return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", key, hs.infVal, hs.count)
	}
	prevLe := math.Inf(-1)
	prevVal := 0.0
	for _, b := range hs.buckets {
		if b.le <= prevLe {
			return fmt.Errorf("histogram %s: le bounds not increasing (%g after %g)", key, b.le, prevLe)
		}
		if b.val < prevVal {
			return fmt.Errorf("histogram %s: cumulative bucket decreased (%g after %g)", key, b.val, prevVal)
		}
		prevLe, prevVal = b.le, b.val
	}
	if len(hs.buckets) > 0 && hs.buckets[len(hs.buckets)-1].val > hs.infVal {
		return fmt.Errorf("histogram %s: finite bucket exceeds +Inf bucket", key)
	}
	return nil
}

// familyOf maps a sample name to its family: histogram and summary
// samples carry _bucket/_sum/_count suffixes on the declared family
// name.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		switch types[base] {
		case "histogram", "summary":
			return base
		}
	}
	return name
}

// labelValue extracts one label's (unescaped-free) value from a
// rendered block.
func labelValue(block, name string) (string, bool) {
	needle := name + `="`
	i := strings.Index(block, needle)
	if i < 0 {
		return "", false
	}
	rest := block[i+len(needle):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// stripLabel removes one label pair from a rendered block (for keying
// histogram series without their le).
func stripLabel(block, name string) string {
	if block == "" {
		return ""
	}
	inner := block[1 : len(block)-1]
	parts := strings.Split(inner, ",")
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, name+"=") {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// parseExpositionFloat accepts the exposition's float syntax, including
// +Inf/-Inf/NaN.
func parseExpositionFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
