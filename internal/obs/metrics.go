// Package obs is the engine's dependency-free observability layer: a
// process-wide registry of named counters, gauges and log-bucketed
// latency histograms (metrics.go, prometheus.go), and a lightweight
// context-propagated span tracer (trace.go).
//
// Design constraints, in order:
//
//   - Nothing on a request hot path takes a lock. Counters and
//     histograms are striped across cache-line-padded atomic cells
//     indexed by a cheap goroutine-affine hash, so concurrent writers
//     on different CPUs rarely share a line. The registry's own mutex
//     is touched only at registration (once per metric, at wiring
//     time) and at scrape.
//   - Tracing costs ~nothing when off: StartSpan is a single context
//     lookup returning a nil *Span, and every Span method is nil-safe.
//   - No dependencies beyond the standard library; the exposition
//     format is Prometheus text 0.0.4, written by hand.
package obs

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// nStripes is the stripe count for counters and histograms: the next
// power of two covering the CPUs, bounded to keep per-metric memory
// reasonable on very wide machines.
var nStripes = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 32 {
		n <<= 1
	}
	return n
}()

// stripe returns a goroutine-affine stripe index. Goroutine stacks are
// spread across the address space, so the page bits of a stack address
// distribute concurrent goroutines across stripes without any runtime
// support; the exact distribution does not matter for correctness, only
// for contention.
func stripe() int {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	return int((p >> 12) ^ (p >> 19)) & (nStripes - 1)
}

// cell is one cache-line-padded atomic counter, preventing false
// sharing between stripes.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter.
type Counter struct {
	cells []cell
}

func newCounter() *Counter { return &Counter{cells: make([]cell, nStripes)} }

// Add adds n (which should be non-negative) to the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.cells[stripe()].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

func newGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (use a negative n to decrement).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc and Dec adjust by one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value loads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: exponential powers of two over nanoseconds,
// 2^histMinExp .. 2^histMaxExp, plus a +Inf overflow bucket. 4096ns
// (~4µs) to 2^36ns (~69s) covers everything from a cache-warm counter
// bump to a pathological analytical query.
const (
	histMinExp    = 12
	histMaxExp    = 36
	histNumFinite = histMaxExp - histMinExp + 1
	histBuckets   = histNumFinite + 1 // + overflow
)

// histStripe is one stripe's buckets and sum, padded out to its own
// cache lines.
type histStripe struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	_       [56]byte
}

// Histogram is a striped, log-bucketed histogram of nanosecond
// durations. Observations are lock-free; quantiles and the Prometheus
// exposition are derived from the cumulative bucket counts at read
// time.
type Histogram struct {
	stripes []histStripe
	// max tracks the largest observation (CAS loop; contention is
	// bounded because losing the race means someone observed a larger
	// value already).
	max atomic.Int64
}

func newHistogram() *Histogram { return &Histogram{stripes: make([]histStripe, nStripes)} }

// NewHistogram returns a standalone histogram not attached to any
// registry — for aggregations (the workload profiler's per-shape
// latency histograms) that render through their own exposition.
func NewHistogram() *Histogram { return newHistogram() }

// bucketIdx maps a nanosecond value onto its bucket: the smallest k
// with v <= 2^k, clamped to the finite range.
func bucketIdx(v int64) int {
	if v <= 1<<histMinExp {
		return 0
	}
	k := bits.Len64(uint64(v - 1)) // ceil(log2 v)
	if k > histMaxExp {
		return histNumFinite // +Inf
	}
	return k - histMinExp
}

// bucketBound returns the inclusive upper bound of finite bucket i, in
// nanoseconds.
func bucketBound(i int) int64 { return 1 << (histMinExp + i) }

// Observe records a duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	s := &h.stripes[stripe()]
	s.buckets[bucketIdx(ns)].Add(1)
	s.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// snapshot sums the stripes into one bucket array plus count and sum.
func (h *Histogram) snapshot() (buckets [histBuckets]int64, count, sum int64) {
	if h == nil {
		return
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := 0; b < histBuckets; b++ {
			v := s.buckets[b].Load()
			buckets[b] += v
			count += v
		}
		sum += s.sum.Load()
	}
	return
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	_, c, _ := h.snapshot()
	return c
}

// Sum returns the sum of observations in nanoseconds.
func (h *Histogram) Sum() int64 {
	_, _, s := h.snapshot()
	return s
}

// Max returns the largest observation in nanoseconds.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) in nanoseconds: the
// upper bound of the bucket the rank falls into, with linear
// interpolation inside the bucket. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	buckets, count, _ := h.snapshot()
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	if rank < 1 {
		// q=0 (or tiny q) must land on the first *occupied* bucket, not
		// bucket 0's bound: with rank 0 the cumulative test passes on an
		// empty leading bucket and interpolation returns garbage.
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		prev := cum
		cum += buckets[i]
		if float64(cum) >= rank {
			if i == histNumFinite {
				return h.Max() // rank landed in +Inf: best estimate is the max
			}
			hi := bucketBound(i)
			lo := int64(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			if buckets[i] == 0 {
				return hi
			}
			frac := (rank - float64(prev)) / float64(buckets[i])
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + int64(frac*float64(hi-lo))
		}
	}
	return h.Max()
}

// GaugeFunc is a read-at-scrape gauge backed by a callback.
type GaugeFunc struct {
	fn func() float64
}

// Value evaluates the callback.
func (g *GaugeFunc) Value() float64 {
	if g == nil || g.fn == nil {
		return 0
	}
	return g.fn()
}
