package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfcube/internal/ans"
	"rdfcube/internal/datagen"
	"rdfcube/internal/nt"
	"rdfcube/internal/rdf"
	"rdfcube/internal/store"
)

// ntBody renders a store as an N-Triples request body.
func ntBody(t *testing.T, st *store.Store) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := nt.NewWriter(&buf)
	d := st.Dict()
	st.ForEach(store.Pattern{}, func(tr store.IDTriple) bool {
		term, ok := d.DecodeTriple(tr.S, tr.P, tr.O)
		if !ok {
			t.Fatal("undecodable triple")
		}
		if err := w.Write(term); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// schemaRequest serializes an ans.Schema through the wire format.
func schemaRequest(s *ans.Schema, saturate bool) *SchemaRequest {
	req := &SchemaRequest{Name: s.Name, Saturate: saturate}
	for _, n := range s.Nodes {
		req.Nodes = append(req.Nodes, SchemaNode{Class: n.Class.String(), Query: n.Query.String()})
	}
	for _, e := range s.Edges {
		req.Edges = append(req.Edges, SchemaEdge{
			Property: e.Property.String(),
			From:     e.From.String(),
			To:       e.To.String(),
			Query:    e.Query.String(),
		})
	}
	return req
}

func postJSON(t *testing.T, client *http.Client, url string, body any, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %s: %v (body %q)", url, err, data)
		}
	}
	return resp.StatusCode, string(data)
}

// startBloggerServer boots a server, loads a saturated blogger dataset
// and materializes the 2-dimensional blogger schema over HTTP.
func startBloggerServer(t *testing.T, bloggers int) (*httptest.Server, *QueryRequest) {
	t.Helper()
	return startBloggerServerCfg(t, bloggers, Config{})
}

// startBloggerServerCfg is startBloggerServer with a custom Config.
func startBloggerServerCfg(t *testing.T, bloggers int, scfg Config) (*httptest.Server, *QueryRequest) {
	t.Helper()
	srv := New(nil, scfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	cfg := datagen.DefaultBloggerConfig()
	cfg.Bloggers = bloggers
	cfg.Dimensions = 2
	base, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/load", "text/plain", ntBody(t, base))
	if err != nil {
		t.Fatal(err)
	}
	var lr LoadResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lr.Triples == 0 || !lr.Frozen {
		t.Fatalf("/load: status %d resp %+v", resp.StatusCode, lr)
	}

	schema, err := datagen.BloggerSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	var mr MaterializeResponse
	status, body := postJSON(t, ts.Client(), ts.URL+"/materialize", schemaRequest(schema, true), &mr)
	if status != http.StatusOK || mr.InstanceTriples == 0 {
		t.Fatalf("/materialize: status %d body %s", status, body)
	}

	baseQuery := &QueryRequest{
		Classifier: "c(x, d0, d1) :- x rdf:type :Blogger, x :hasAge d0, x :livesIn d1",
		Measure:    "m(x, v) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn v",
		Agg:        "count",
		Prefixes:   map[string]string{"": datagen.NS},
	}
	return ts, baseQuery
}

// cloneQuery deep-copies a QueryRequest through JSON.
func cloneQuery(t *testing.T, q *QueryRequest) *QueryRequest {
	t.Helper()
	raw, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var out QueryRequest
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestEndToEndConcurrentOLAPSession is the acceptance scenario: load →
// materialize → cube → DICE → DRILL-OUT over HTTP from concurrent
// clients; the transformed queries must be answered by rewriting, with
// results byte-identical to direct evaluation.
func TestEndToEndConcurrentOLAPSession(t *testing.T) {
	ts, baseQuery := startBloggerServer(t, 400)

	diceOps := []OpSpec{{
		Op: "dice",
		Restrictions: map[string][]string{
			"d0": {"20", "21", "22", "23"},
			"d1": {":livesIn_val0", ":livesIn_val1", ":livesIn_val2"},
		},
	}}
	drillOps := []OpSpec{{Op: "drillout", Dims: []string{"d1"}}}

	const clients = 5
	type session struct {
		cube, dice, drill QueryResponse
		err               error
	}
	results := make([]session, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run := func(req *QueryRequest, out *QueryResponse) bool {
				raw, _ := json.Marshal(req)
				resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(raw))
				if err != nil {
					results[i].err = err
					return false
				}
				defer resp.Body.Close()
				data, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != http.StatusOK {
					results[i].err = fmt.Errorf("status %d: %s", resp.StatusCode, data)
					return false
				}
				if err := json.Unmarshal(data, out); err != nil {
					results[i].err = err
					return false
				}
				return true
			}
			if !run(baseQuery, &results[i].cube) {
				return
			}
			diced := cloneQuery(t, baseQuery)
			diced.Ops = diceOps
			if !run(diced, &results[i].dice) {
				return
			}
			drilled := cloneQuery(t, baseQuery)
			drilled.Ops = drillOps
			run(drilled, &results[i].drill)
		}(i)
	}
	wg.Wait()

	// Direct-evaluation references for the transformed queries.
	directOf := func(ops []OpSpec) *QueryResponse {
		req := cloneQuery(t, baseQuery)
		req.Ops = ops
		req.Direct = true
		var out QueryResponse
		status, body := postJSON(t, ts.Client(), ts.URL+"/query", req, &out)
		if status != http.StatusOK {
			t.Fatalf("direct query: status %d body %s", status, body)
		}
		return &out
	}
	directDice := directOf(diceOps)
	directDrill := directOf(drillOps)
	if len(directDice.Rows) == 0 || len(directDrill.Rows) == 0 {
		t.Fatalf("degenerate references: dice %d rows, drill %d rows",
			len(directDice.Rows), len(directDrill.Rows))
	}

	rowsJSON := func(r *QueryResponse) string {
		raw, err := json.Marshal(struct {
			Cols []string   `json:"cols"`
			Rows [][]string `json:"rows"`
		}{r.Cols, r.Rows})
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	wantDice, wantDrill := rowsJSON(directDice), rowsJSON(directDrill)

	directCubes := 0
	for i := range results {
		if results[i].err != nil {
			t.Fatalf("client %d: %v", i, results[i].err)
		}
		switch results[i].cube.Strategy {
		case string("direct"):
			directCubes++
		case string("cached"):
		default:
			t.Errorf("client %d: cube strategy %q", i, results[i].cube.Strategy)
		}
		if results[i].dice.Strategy != "dice-rewrite" {
			t.Errorf("client %d: dice strategy %q, want dice-rewrite", i, results[i].dice.Strategy)
		}
		if results[i].drill.Strategy != "drillout-rewrite" {
			t.Errorf("client %d: drill strategy %q, want drillout-rewrite", i, results[i].drill.Strategy)
		}
		if got := rowsJSON(&results[i].dice); got != wantDice {
			t.Errorf("client %d: dice rows differ from direct evaluation\n got %s\nwant %s", i, got, wantDice)
		}
		if got := rowsJSON(&results[i].drill); got != wantDrill {
			t.Errorf("client %d: drill rows differ from direct evaluation\n got %s\nwant %s", i, got, wantDrill)
		}
	}
	if directCubes != 1 {
		t.Errorf("direct cube evaluations = %d, want exactly 1 (single-flight)", directCubes)
	}

	// Server-side counters agree.
	var stats StatsResponse
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := stats.Registry.Strategies
	if st["direct"] != 1 {
		t.Errorf("statsz direct = %d, want 1 (stats %+v)", st["direct"], st)
	}
	if st["cached"] != clients-1 {
		t.Errorf("statsz cached = %d, want %d", st["cached"], clients-1)
	}
	if st["dice-rewrite"] != clients || st["drillout-rewrite"] != clients {
		t.Errorf("rewrite counters %+v, want %d each", st, clients)
	}
	if stats.Endpoints["/query"].Count == 0 {
		t.Error("statsz missing /query endpoint metrics")
	}
	if !stats.Instance.Frozen {
		t.Error("instance not frozen after materialize")
	}
}

func TestDrillInOverHTTP(t *testing.T) {
	ts, baseQuery := startBloggerServer(t, 150)
	// The base query keeps d1 existential in the classifier body, so
	// drilling it in adds a dimension Algorithm 2 can reconstruct from
	// pres via q_aux. (The full (d0, d1) cube must NOT be materialized
	// first: it would equal the drill-in target and win as "cached".)
	drillin := &QueryRequest{
		Classifier: "c(x, d0) :- x rdf:type :Blogger, x :hasAge d0, x :livesIn d1",
		Measure:    baseQuery.Measure,
		Agg:        "count",
		Prefixes:   baseQuery.Prefixes,
	}
	var first QueryResponse
	if status, body := postJSON(t, ts.Client(), ts.URL+"/query", drillin, &first); status != http.StatusOK {
		t.Fatalf("base: %s", body)
	}
	added := cloneQuery(t, drillin)
	added.Ops = []OpSpec{{Op: "drillin", Dim: "d1"}}
	var resp QueryResponse
	if status, body := postJSON(t, ts.Client(), ts.URL+"/query", added, &resp); status != http.StatusOK {
		t.Fatalf("drillin: %s", body)
	}
	if resp.Strategy != "drillin-rewrite" {
		t.Errorf("strategy %q, want drillin-rewrite", resp.Strategy)
	}
	direct := cloneQuery(t, added)
	direct.Direct = true
	var want QueryResponse
	if status, body := postJSON(t, ts.Client(), ts.URL+"/query", direct, &want); status != http.StatusOK {
		t.Fatalf("direct: %s", body)
	}
	got, _ := json.Marshal(resp.Rows)
	wantRaw, _ := json.Marshal(want.Rows)
	if !bytes.Equal(got, wantRaw) {
		t.Errorf("drill-in rows differ from direct evaluation")
	}
}

func TestWriteInvalidatesViewsOverHTTP(t *testing.T) {
	ts, baseQuery := startBloggerServer(t, 120)
	var first QueryResponse
	postJSON(t, ts.Client(), ts.URL+"/query", baseQuery, &first)
	if first.Strategy != "direct" {
		t.Fatalf("first answer strategy %q", first.Strategy)
	}
	var again QueryResponse
	postJSON(t, ts.Client(), ts.URL+"/query", baseQuery, &again)
	if again.Strategy != "cached" {
		t.Fatalf("second answer strategy %q, want cached", again.Strategy)
	}

	// A write to the serving instance's dictionary-shared base does not
	// invalidate (the instance is separate); re-materializing does.
	schema, err := datagen.BloggerSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	var mr MaterializeResponse
	if status, body := postJSON(t, ts.Client(), ts.URL+"/materialize", schemaRequest(schema, false), &mr); status != http.StatusOK {
		t.Fatalf("re-materialize: %s", body)
	}
	var after QueryResponse
	postJSON(t, ts.Client(), ts.URL+"/query", baseQuery, &after)
	if after.Strategy != "direct" {
		t.Errorf("post-rematerialize strategy %q, want direct (registry must reset)", after.Strategy)
	}
}

// insertBody renders a batch of new blogger facts — instance-vocabulary
// triples matching the benchmark query — as an N-Triples body.
func insertBody(t *testing.T, batch, perBatch int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := nt.NewWriter(&buf)
	write := func(s, p, o rdf.Term) {
		if err := w.Write(rdf.Triple{S: s, P: p, O: o}); err != nil {
			t.Fatal(err)
		}
	}
	res := func(local string) rdf.Term { return rdf.NewIRI(datagen.NS + local) }
	for i := 0; i < perBatch; i++ {
		id := batch*perBatch + i
		u := res(fmt.Sprintf("wuser%d", id))
		write(u, rdf.Type, res("Blogger"))
		write(u, res("hasAge"), datagen.DimValue(0, id%8))
		write(u, res("livesIn"), datagen.DimValue(1, id%3))
		post := res(fmt.Sprintf("wpost%d", id))
		write(u, res("wrotePost"), post)
		write(post, res("postedOn"), res(fmt.Sprintf("wsite%d", id%5)))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestInterleavedInsertQueryDifferential is the write-heavy acceptance
// scenario: interleaved Insert/Slice/Dice through the server must
// produce cubes byte-identical to a from-scratch direct evaluation, with
// the registered views *maintained* across the writes (one direct
// evaluation per query shape in total, maintained counters growing, no
// invalidations while the delta stays below the compaction threshold).
func TestInterleavedInsertQueryDifferential(t *testing.T) {
	ts, baseQuery := startBloggerServer(t, 120)

	diced := cloneQuery(t, baseQuery)
	diced.Ops = []OpSpec{{
		Op: "dice",
		Restrictions: map[string][]string{
			"d0": {"18", "19", "20", "21"},
		},
	}}
	sliced := cloneQuery(t, baseQuery)
	sliced.Ops = []OpSpec{{Op: "slice", Dim: "d1", Value: ":livesIn_val1"}}

	query := func(req *QueryRequest, direct bool) *QueryResponse {
		t.Helper()
		q := cloneQuery(t, req)
		q.Direct = direct
		var out QueryResponse
		status, body := postJSON(t, ts.Client(), ts.URL+"/query", q, &out)
		if status != http.StatusOK {
			t.Fatalf("query: status %d body %s", status, body)
		}
		return &out
	}
	rowsJSON := func(r *QueryResponse) string {
		raw, err := json.Marshal(struct {
			Cols []string   `json:"cols"`
			Rows [][]string `json:"rows"`
		}{r.Cols, r.Rows})
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	// Materialize the base cube once; everything after must be served by
	// rewriting over the maintained views.
	if first := query(baseQuery, false); first.Strategy != "direct" {
		t.Fatalf("first cube strategy %q", first.Strategy)
	}

	var maintained int64
	for round := 0; round < 6; round++ {
		resp, err := ts.Client().Post(ts.URL+"/insert", "text/plain", insertBody(t, round, 3))
		if err != nil {
			t.Fatal(err)
		}
		var ir InsertResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ir.Added == 0 || !ir.Frozen {
			t.Fatalf("round %d: insert %+v", round, ir)
		}
		if ir.Invalidated != 0 {
			t.Fatalf("round %d: insert invalidated %d views below the compaction threshold", round, ir.Invalidated)
		}
		maintained += ir.Maintained

		for _, req := range []*QueryRequest{baseQuery, sliced, diced} {
			got := query(req, false)
			want := query(req, true)
			switch got.Strategy {
			case "cached", "dice-rewrite":
			default:
				t.Fatalf("round %d: strategy %q, want a view-based answer", round, got.Strategy)
			}
			if rowsJSON(got) != rowsJSON(want) {
				t.Fatalf("round %d (%v): maintained cube differs from direct evaluation\n got %s\nwant %s",
					round, req.Ops, rowsJSON(got), rowsJSON(want))
			}
		}
	}
	if maintained == 0 {
		t.Fatal("no view maintenance was reported across six write rounds")
	}

	var stats StatsResponse
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Registry.Strategies["direct"] != 1 {
		t.Errorf("direct evaluations = %d, want 1 (views must be maintained, not recomputed; stats %+v)",
			stats.Registry.Strategies["direct"], stats.Registry)
	}
	if stats.Registry.Maintained == 0 {
		t.Error("statsz maintained counter is 0")
	}
	if !stats.Instance.Frozen {
		t.Error("instance lost its frozen base across delta writes")
	}
	if stats.Instance.DeltaTriples == 0 || stats.Instance.DeltaSeq == 0 {
		t.Errorf("instance delta not visible in statsz: %+v", stats.Instance)
	}
	if stats.Endpoints["/insert"].Count == 0 {
		t.Error("statsz missing /insert endpoint metrics")
	}
}

func TestQueryValidation(t *testing.T) {
	srv := New(nil, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	cases := []QueryRequest{
		{}, // missing queries
		{Classifier: "c(x) :-", Measure: "m(x, v) :- x :p v"},                                                                   // parse error
		{Classifier: "c(x) :- x :p y", Measure: "m(x, v) :- x :p v", Agg: "nope", Prefixes: map[string]string{"": "http://e/"}}, // bad agg
		{Classifier: "c(x) :- x :p y", Measure: "m(x, v) :- x :p v", Prefixes: map[string]string{"": "http://e/"},
			Ops: []OpSpec{{Op: "teleport"}}}, // bad op
	}
	for i, c := range cases {
		status, _ := postJSON(t, ts.Client(), ts.URL+"/query", &c, nil)
		if status != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, status)
		}
	}

	if resp, err := ts.Client().Post(ts.URL+"/load", "text/plain", strings.NewReader("not ntriples at all")); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/load garbage: status %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", err, resp)
	}
	resp.Body.Close()
}

func TestSnapshotRoundTripOverHTTP(t *testing.T) {
	ts, baseQuery := startBloggerServer(t, 100)

	// Pull a snapshot of the materialized instance, boot a second server
	// from it, and check it answers the same cube.
	resp, err := ts.Client().Get(ts.URL + "/snapshot?graph=instance")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(snap) == 0 {
		t.Fatalf("snapshot: %v (%d bytes)", err, len(snap))
	}

	srv2 := New(nil, Config{})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	resp, err = ts2.Client().Post(ts2.URL+"/load-snapshot", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	var lr LoadResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !lr.Frozen || lr.Triples == 0 {
		t.Fatalf("load-snapshot: %+v", lr)
	}

	var a, b QueryResponse
	postJSON(t, ts.Client(), ts.URL+"/query", baseQuery, &a)
	postJSON(t, ts2.Client(), ts2.URL+"/query", baseQuery, &b)
	ra, _ := json.Marshal(a.Rows)
	rb, _ := json.Marshal(b.Rows)
	if !bytes.Equal(ra, rb) {
		t.Error("snapshot round trip changed the cube")
	}
}

// TestBackgroundCompaction: with Config.BackgroundCompaction, a write
// that fills the delta overlay past the threshold returns immediately
// and a background goroutine folds the overlay into a rebuilt base —
// observable as the /statsz background_compactions counter, a drained
// delta, an advanced instance base epoch, and answers that stay
// byte-identical to direct evaluation throughout.
func TestBackgroundCompaction(t *testing.T) {
	const threshold = 12
	ts, baseQuery := startBloggerServerCfg(t, 120, Config{
		CompactThreshold:     threshold,
		BackgroundCompaction: true,
	})

	statsz := func() *StatsResponse {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}
	epoch0 := statsz().Instance.BaseEpoch

	var first QueryResponse
	postJSON(t, ts.Client(), ts.URL+"/query", baseQuery, &first)
	if first.Strategy != "direct" {
		t.Fatalf("first answer strategy %q", first.Strategy)
	}

	// One insert round writes 15 instance triples — past the threshold.
	// The response must come back with the overlay still pending (the
	// compaction happens behind it, not on the write path).
	resp, err := ts.Client().Post(ts.URL+"/insert", "text/plain", insertBody(t, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	var ir InsertResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ir.Added == 0 || !ir.Frozen {
		t.Fatalf("insert: %+v", ir)
	}
	if ir.Delta < threshold {
		t.Fatalf("insert returned delta %d < threshold %d: compaction ran inline", ir.Delta, threshold)
	}

	deadline := time.Now().Add(10 * time.Second)
	var st *StatsResponse
	for {
		st = statsz()
		if st.BackgroundCompactions >= 1 && st.Instance.DeltaTriples == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never completed: %+v", st.Instance)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Instance.BaseEpoch <= epoch0 {
		t.Fatalf("instance base epoch %d did not advance past %d", st.Instance.BaseEpoch, epoch0)
	}

	// Correctness across the swap: registry answer == direct answer.
	reg := cloneQuery(t, baseQuery)
	direct := cloneQuery(t, baseQuery)
	direct.Direct = true
	var got, want QueryResponse
	postJSON(t, ts.Client(), ts.URL+"/query", reg, &got)
	postJSON(t, ts.Client(), ts.URL+"/query", direct, &want)
	gotRows, _ := json.Marshal(got.Rows)
	wantRows, _ := json.Marshal(want.Rows)
	if string(gotRows) != string(wantRows) {
		t.Fatalf("post-compaction cube differs from direct evaluation\n got %s\nwant %s", gotRows, wantRows)
	}
}
