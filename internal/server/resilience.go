package server

// Serving resilience: panic containment, admission control, and the
// degraded read-only mode a durable server enters when it can no longer
// make writes durable.
//
// The contract of degraded mode follows from the durability invariant
// (persist.go): an acknowledged write is on disk. When a WAL append or
// checkpoint fails — disk full, fsync error, torn rename — the server
// cannot hold that promise, so instead of acknowledging writes it may
// lose, it refuses them with 503 + Retry-After while queries keep being
// served from memory. A background loop retries a full checkpoint under
// exponential backoff; the first success re-baselines every durable
// artifact (snapshots rewritten, WAL handles recreated) and re-opens the
// write path. /readyz reflects the mode so load balancers drain writes
// away from a degraded replica; /healthz stays green — the process is
// healthy, its disk is not.

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"
)

const (
	defaultQueueTimeout = time.Second
	defaultRetryMin     = 100 * time.Millisecond
	defaultRetryMax     = 5 * time.Second
)

// degraded is the read-only-mode state machine. All fields are guarded
// by mu; the retry timer re-arms itself until re-arming durability
// succeeds or the server closes.
type degraded struct {
	mu        sync.Mutex
	active    bool
	reason    string // what broke ("wal append", "checkpoint")
	lastErr   string // most recent failure, original or retry
	retries   int64  // re-arm attempts so far
	backoff   time.Duration
	nextRetry time.Time
	timer     *time.Timer
}

// enterDegraded switches the server into read-only mode (idempotent —
// a failure while already degraded just refreshes lastErr) and arms the
// backoff retry. Callers may hold s.mu in either mode; the state machine
// has its own lock and the retry runs on a timer goroutine.
func (s *Server) enterDegraded(reason string, err error) {
	d := &s.deg
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastErr = err.Error()
	if d.active {
		return
	}
	d.active = true
	d.reason = reason
	d.retries = 0
	d.backoff = s.retryMin()
	d.scheduleLocked(s)
	attrs := append([]any{slog.String("reason", reason)}, artifactAttrs(err)...)
	s.slog().Error("entering degraded read-only mode", attrs...)
}

// scheduleLocked arms the retry timer for the current backoff.
func (d *degraded) scheduleLocked(s *Server) {
	d.nextRetry = time.Now().Add(d.backoff)
	if d.timer != nil {
		d.timer.Stop()
	}
	d.timer = time.AfterFunc(d.backoff, s.retryDurability)
}

// retryDurability attempts to re-arm durability with a full checkpoint:
// snapshots are rewritten atomically and the WAL handles recreated, so
// one success heals whatever artifact failed. On failure the backoff
// doubles (bounded) and the timer re-arms.
func (s *Server) retryDurability() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	err := s.checkpointLocked()
	s.mu.Unlock()

	d := &s.deg
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.active {
		return
	}
	d.retries++
	if err == nil {
		d.active = false
		d.reason, d.lastErr = "", ""
		d.timer = nil
		s.slog().Info("durability re-armed; leaving read-only mode",
			slog.Int64("retries", d.retries))
		return
	}
	d.lastErr = err.Error()
	d.backoff *= 2
	if max := s.retryMax(); d.backoff > max {
		d.backoff = max
	}
	d.scheduleLocked(s)
}

func (s *Server) retryMin() time.Duration {
	if s.cfg.RetryMin > 0 {
		return s.cfg.RetryMin
	}
	return defaultRetryMin
}

func (s *Server) retryMax() time.Duration {
	if s.cfg.RetryMax > 0 {
		return s.cfg.RetryMax
	}
	if s.cfg.RetryMin > defaultRetryMax {
		return s.cfg.RetryMin
	}
	return defaultRetryMax
}

// Degraded reports whether the server is in read-only mode, and why.
func (s *Server) Degraded() (bool, string) {
	s.deg.mu.Lock()
	defer s.deg.mu.Unlock()
	return s.deg.active, s.deg.reason
}

// stopRetry fences the re-arm loop during shutdown.
func (s *Server) stopRetry() {
	s.deg.mu.Lock()
	defer s.deg.mu.Unlock()
	if s.deg.timer != nil {
		s.deg.timer.Stop()
		s.deg.timer = nil
	}
}

// refuseIfDegraded rejects a mutating request while durability is down:
// 503 with a Retry-After hinting at the next re-arm attempt. Returning
// (0, nil) admits the request.
func (s *Server) refuseIfDegraded(w http.ResponseWriter) (int, error) {
	d := &s.deg
	d.mu.Lock()
	if !d.active {
		d.mu.Unlock()
		return 0, nil
	}
	reason, lastErr := d.reason, d.lastErr
	retryAfter := int(time.Until(d.nextRetry).Seconds()) + 1
	d.mu.Unlock()
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	return http.StatusServiceUnavailable,
		fmt.Errorf("read-only mode: %s failed (%s); writes refused until durability re-arms", reason, lastErr)
}

// failDurable records a durability failure on the write path: the server
// goes read-only and the request is answered 503 (the write may have
// been applied in memory but is NOT acknowledged as durable; inserts are
// idempotent, so clients retry safely after recovery).
func (s *Server) failDurable(w http.ResponseWriter, reason string, err error) (int, error) {
	s.enterDegraded(reason, err)
	w.Header().Set("Retry-After", "1")
	return http.StatusServiceUnavailable, fmt.Errorf("%s: %v; entering read-only mode", reason, err)
}

// acquire admits a request under the max-in-flight cap, waiting at most
// the queue timeout for a slot. It returns a release function, or false
// when the request was shed (503 + Retry-After already written).
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) (func(), bool) {
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	qt := s.cfg.QueueTimeout
	if qt <= 0 {
		qt = defaultQueueTimeout
	}
	t := time.NewTimer(qt)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	case <-t.C:
		s.met.shed.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "server at capacity: request queued past the admission timeout"})
		return nil, false
	case <-r.Context().Done():
		s.met.shed.Inc()
		return nil, false // client gone; nothing to write
	}
}

// exemptFromAdmission keeps probes and diagnostics answerable while the
// request pool is saturated — exactly when operators need them.
func exemptFromAdmission(route string) bool {
	switch route {
	case "/healthz", "/readyz", "/statsz", "/metrics", "/debug/traces/last":
		return true
	}
	return false
}

// statusWriter remembers whether a response has started, so the panic
// handler knows if a 500 can still be rendered.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(p)
}

// handleReadyz is the readiness probe: not-ready while degraded (writes
// would be refused) so orchestrators route around the replica, ready
// otherwise. Liveness (/healthz) is intentionally independent.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) (int, error) {
	if deg, reason := s.Degraded(); deg {
		s.writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "degraded", "reason": reason})
		return http.StatusServiceUnavailable, nil
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	return http.StatusOK, nil
}
