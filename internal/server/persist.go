package server

// The data-dir lifecycle: open-or-recover startup, write-ahead logging
// of delta writes, and checkpointing.
//
// A durable server keeps, under Config.DataDir,
//
//	base.snap / base.wal   the base graph: frozen v2 snapshot + delta WAL
//	inst.snap / inst.wal   the serving instance, when a materialized
//	                       schema distinct from the base is installed
//	views.snap             the view registry over the serving instance
//
// Invariant: at every instant the on-disk state recovers the acknowledged
// writes. A delta write is fsynced into the graph's WAL before the HTTP
// 200 goes out; a checkpoint replaces the snapshot atomically and then
// swaps in a WAL holding exactly the still-pending delta tail
// (persist.ReplaceWAL), so every crash window replays to the same
// (baseEpoch, deltaSeq) state. Structural writes — materialize, snapshot
// load, freeze-compaction, a write that crossed the compaction
// threshold — are made durable by checkpointing instead of logging.
//
// Recovery (Open) is the reverse: load base.snap (or seed an empty
// graph), replay base.wal, ditto for inst.*, then warm the registry from
// views.snap — restored views are Sync'd through the recovered delta
// feed, so they answer without a direct evaluation. Restart cost is the
// snapshot read (sequential, no rebuild) plus the WAL tail, not the
// dataset.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rdfcube/internal/dict"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/obs"
	"rdfcube/internal/persist"
	"rdfcube/internal/store"
)

// durability is the persistent half of a Server. Counters are guarded by
// mu; the WALs and file operations are guarded by the server's write
// lock.
type durability struct {
	dir     string
	fsys    faultfs.FS // every durable file operation goes through here
	baseWAL *persist.WAL
	instWAL *persist.WAL // nil while the instance is the base graph

	// commitWG tracks in-flight group-commit waits (stageWrite commits
	// running outside the write lock). Checkpoints and Close wait on it
	// before swapping or closing WAL handles; new stages are fenced by
	// the write lock those callers hold.
	commitWG sync.WaitGroup

	// baseWALDict / instWALDict track how many dictionary terms are
	// already durable for each graph (in its snapshot or earlier WAL
	// records). Batch term tails are computed against THIS, not against
	// the dictionary length observed before a write: base and a
	// materialized instance share one live dictionary, so a write to one
	// graph can intern terms a later write to the other graph
	// references — each WAL must carry every term its own replay needs.
	baseWALDict int
	instWALDict int

	mu               sync.Mutex
	checkpoints      int64
	lastCheckpointNs int64
	lastViews        int
	walFailures      int64
	checkpointErrors int64
	recoveredTriples int64
	recoveredBatches int64
	recoveredViews   int64
	recoveredSnap    bool
}

func (d *durability) path(name string) string { return filepath.Join(d.dir, name) }

// HasState reports whether dir holds recoverable durable state (a base
// snapshot) — the single place the data-dir layout is known, so callers
// deciding between seeding and recovering (cmd/rdfcubed) need not
// hardcode file names.
func HasState(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, "base.snap"))
	return err == nil
}

// Open returns a server over the durable state in cfg.DataDir, seeding
// an empty or missing directory from seed (which may be nil). With no
// DataDir it is exactly New. Recovery loads the snapshots, replays the
// write-ahead logs and warms the view registry; the returned server
// answers queries at the exact (baseEpoch, deltaSeq) version the state
// was persisted at.
func Open(seed *store.Store, cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return New(seed, cfg), nil
	}
	fsys := faultfs.OrOS(cfg.FS)
	if err := fsys.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	d := &durability{dir: cfg.DataDir, fsys: fsys}
	_, baseSnapErr := fsys.Stat(d.path("base.snap"))
	freshDir := baseSnapErr != nil

	base, baseWAL, err := d.recoverGraph("base.snap", "base.wal", seed, cfg, cfg.Mapped)
	if err != nil {
		return nil, err
	}
	d.baseWAL = baseWAL
	d.baseWALDict = base.Dict().Len()
	srv := New(base, cfg)
	srv.dur = d

	if _, err := fsys.Stat(d.path("inst.snap")); err == nil {
		inst, instWAL, err := d.recoverGraph("inst.snap", "inst.wal", nil, cfg, false)
		if err != nil {
			return nil, fmt.Errorf("recovering instance: %w", err)
		}
		d.instWAL = instWAL
		d.instWALDict = inst.Dict().Len()
		srv.installInstance(inst)
	}
	srv.armWALMetrics()

	// Warm the registry from the view snapshot, if one lines up with the
	// recovered instance. A corrupt or mismatched view snapshot only
	// costs warmth, never correctness: whatever was admitted before the
	// failure stays, the rest is re-evaluated on demand.
	if f, err := fsys.Open(d.path("views.snap")); err == nil {
		n, _ := srv.reg.Restore(f)
		f.Close()
		d.recoveredViews = int64(n)
	}

	d.mu.Lock()
	srv.slog().Info("recovered durable state",
		slog.String("data_dir", d.dir),
		slog.Bool("from_snapshot", d.recoveredSnap),
		slog.Int64("replayed_batches", d.recoveredBatches),
		slog.Int64("replayed_triples", d.recoveredTriples),
		slog.Int64("recovered_views", d.recoveredViews))
	d.mu.Unlock()

	// Converge: a fresh directory checkpoints immediately, so recovery
	// never depends on the seed file staying byte-identical (WAL term
	// IDs are only meaningful against the exact dictionary the snapshot
	// records). Likewise if a crash interleaved a checkpoint (snapshot
	// written, WAL not yet swapped) or replay itself compacted, the WAL
	// epochs trail the stores — rewrite a clean checkpoint so the next
	// recovery is single-pass.
	if freshDir ||
		d.baseWAL.Epoch() != srv.base.Version().Base ||
		(d.instWAL != nil && d.instWAL.Epoch() != srv.inst.Version().Base) {
		if err := srv.checkpointLocked(); err != nil {
			return nil, err
		}
	}
	// Mapped mode with a heap base — first boot, a seed, or a pre-mmap
	// snapshot: checkpoint (mapped mode writes the base snapshot in the
	// mappable format) and swap the serving base for a mapping of the
	// file just written, so bigger-than-RAM serving starts now rather
	// than at the next restart.
	if cfg.Mapped && !srv.base.Mapped() {
		if err := srv.remapBase(); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// remapBase (mapped mode, startup) replaces a heap-recovered base graph
// with an mmap of its freshly checkpointed snapshot. Falls back to heap
// serving silently if the snapshot is not mappable.
func (s *Server) remapBase() error {
	// Fold any delta overlay (a recovered WAL tail) into the heap base
	// first: base.snap serializes only the frozen base, and the swap
	// below replaces the whole store — an unfolded overlay would be
	// silently dropped.
	if pc := s.base.PrepareCompaction(); pc != nil {
		s.base.InstallCompaction(pc)
	}
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	d := s.dur
	g, err := store.OpenFrozenSnapshotMapped(d.path("base.snap"), store.MappedOptions{})
	if err != nil {
		return &persist.ArtifactError{Path: d.path("base.snap"), Kind: "snapshot", Err: err}
	}
	if !g.Mapped() {
		g.CloseMapped()
		return nil // keep the heap base
	}
	if s.cfg.CompactThreshold > 0 {
		g.SetCompactThreshold(s.cfg.CompactThreshold)
	}
	if s.cfg.SpillThreshold > 0 {
		if err := d.armSpill(g, s.cfg.SpillThreshold); err != nil {
			g.CloseMapped()
			return err
		}
	}
	wasServing := s.inst == s.base
	s.base = g
	d.baseWALDict = g.Dict().Len()
	if wasServing {
		s.installInstance(g)
	}
	s.armWALMetrics()
	return nil
}

// recoverGraph loads one graph from its snapshot + WAL pair. A missing
// snapshot falls back to seed (frozen) or a fresh store. Failures are
// typed persist.ArtifactError values naming the artifact that broke —
// "snapshot" (unreadable/corrupt snapshot), "wal" (log framing), or
// "dict" (a replayed triple referencing a term the dictionary never
// assigned) — so operators know which file to restore.
//
// With mapped set (the base graph under Config.Mapped), the snapshot is
// served by mmap instead of loaded onto the heap: OpenFrozenSnapshotMapped
// maps the file directly (a pre-mmap v1/v2 snapshot transparently falls
// back to the heap loader — Open converges it to the mappable format
// afterwards), leftover spill runs are swept, and delta spill is armed
// before the WAL replays so a long replay tail never balloons memory.
func (d *durability) recoverGraph(snapName, walName string, seed *store.Store, cfg Config, mapped bool) (*store.Store, *persist.WAL, error) {
	var g *store.Store
	snapPath := d.path(snapName)
	if mapped {
		if _, err := d.fsys.Stat(snapPath); err == nil {
			g, err = store.OpenFrozenSnapshotMapped(snapPath, store.MappedOptions{})
			if err != nil {
				return nil, nil, &persist.ArtifactError{Path: snapPath, Kind: "snapshot", Err: err}
			}
			d.recoveredSnap = true
		}
	} else if f, err := d.fsys.Open(snapPath); err == nil {
		g, err = store.OpenFrozenSnapshot(f)
		f.Close()
		if err != nil {
			return nil, nil, &persist.ArtifactError{Path: snapPath, Kind: "snapshot", Err: err}
		}
		d.recoveredSnap = true
	}
	if g == nil {
		g = seed
		if g == nil {
			g = store.New()
		}
		g.Freeze()
	}
	if cfg.CompactThreshold > 0 {
		g.SetCompactThreshold(cfg.CompactThreshold)
	}
	if mapped && cfg.SpillThreshold > 0 {
		if err := d.armSpill(g, cfg.SpillThreshold); err != nil {
			return nil, nil, err
		}
	}
	w, batches, _, err := persist.OpenWALFS(d.fsys, d.path(walName), g.Version().Base)
	if err != nil {
		return nil, nil, err // already a typed "wal" artifact error
	}
	for i, b := range batches {
		n, err := applyBatch(g, b)
		if err != nil {
			w.Close()
			return nil, nil, &persist.ArtifactError{
				Path: d.path(walName),
				Kind: "dict",
				Err:  fmt.Errorf("replaying batch %d: %w", i, err),
			}
		}
		d.recoveredTriples += int64(n)
		d.recoveredBatches++
	}
	return g, w, nil
}

// armSpill sweeps leftover spill runs (transient serving state — their
// triples re-replay from the WAL) and points g's delta spill at the
// data-dir's spill subdirectory.
func (d *durability) armSpill(g *store.Store, threshold int) error {
	dir := d.path("spill")
	if err := d.fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := store.CleanSpillDir(d.fsys, dir); err != nil {
		return err
	}
	g.SetSpill(d.fsys, dir, threshold)
	return nil
}

// applyBatch replays one WAL batch into g: intern the batch's new terms
// (idempotently — replays of already-snapshotted batches re-encode to
// the existing IDs), then insert its triples. Triples referencing IDs
// the dictionary never assigned are corruption.
func applyBatch(g *store.Store, b persist.Batch) (added int, err error) {
	for _, t := range b.Terms {
		g.Dict().Encode(t)
	}
	dictLen := g.Dict().Len()
	for _, t := range b.Triples {
		if int(t.S) > dictLen || int(t.P) > dictLen || int(t.O) > dictLen {
			return added, fmt.Errorf("%w: triple references unknown term ID %d (dictionary has %d terms)",
				persist.ErrCorrupt, maxID(t.S, t.P, t.O), dictLen)
		}
		if g.AddID(store.IDTriple{S: t.S, P: t.P, O: t.O}) {
			added++
		}
	}
	return added, nil
}

// durable reports whether the server persists to a data-dir.
func (s *Server) durable() bool { return s.dur != nil }

// walFor returns the WAL backing graph g (nil when g has none yet).
func (s *Server) walFor(g *store.Store) *persist.WAL {
	if g == s.base {
		return s.dur.baseWAL
	}
	return s.dur.instWAL
}

// walDictFor returns a pointer to the durable-dictionary-length counter
// of graph g's WAL.
func (s *Server) walDictFor(g *store.Store) *int {
	if g == s.base {
		return &s.dur.baseWALDict
	}
	return &s.dur.instWALDict
}

// logWrite makes a just-applied write to g durable before returning —
// stageWrite plus the commit wait, for callers that keep the write lock
// across the acknowledgement anyway.
func (s *Server) logWrite(ctx context.Context, g *store.Store, before store.Version) error {
	commit, err := s.stageWrite(ctx, g, before)
	if err != nil || commit == nil {
		return err
	}
	return commit()
}

// stageWrite makes a just-applied write to g durable. Caller holds the
// write lock and captured the graph's version before applying. Delta
// writes append one fsynced WAL batch carrying every dictionary term
// not yet durable for this graph (terms may have been interned by
// writes to the *other* graph — the dictionary is shared while an
// instance is materialized in-process); a write that moved the base
// epoch (threshold compaction, map-mode writes, freeze) checkpoints
// instead — which also truncates the log across the base move, so it
// cannot grow unboundedly.
//
// Without WAL group commit the append (fsync included) happens inline
// and the returned commit is nil. With group commit armed, only the
// record *staging* happens here — under the write lock, so replay order
// matches apply order — and the returned commit function blocks until a
// (shared) fsync covers the record. The caller MUST invoke it before
// acknowledging the write, after releasing the write lock, and treat
// its error exactly like an append failure.
func (s *Server) stageWrite(ctx context.Context, g *store.Store, before store.Version) (func() error, error) {
	if !s.durable() {
		return nil, nil
	}
	after := g.Version()
	if after == before {
		return nil, nil // nothing accepted
	}
	w := s.walFor(g)
	if after.Base != before.Base || !g.IsFrozen() || w == nil {
		_, span := obs.StartSpan(ctx, "persist.checkpoint")
		err := s.checkpointLocked()
		span.End()
		return nil, err
	}
	durableDict := s.walDictFor(g)
	batch := persist.Batch{
		DictLen: *durableDict,
		Terms:   g.Dict().TermsFrom(*durableDict),
		Triples: toPersistTriples(g.DeltaSince(before.Seq)),
	}
	_, span := obs.StartSpan(ctx, "wal.append")
	span.AttrInt("triples", int64(len(batch.Triples)))
	span.AttrInt("terms", int64(len(batch.Terms)))
	if !w.GroupCommit() {
		err := w.Append(batch)
		span.End()
		if err != nil {
			s.countWALFailure()
			return nil, fmt.Errorf("wal append: %w", err)
		}
		*durableDict = g.Dict().Len()
		return nil, nil
	}
	p, err := w.Stage(batch)
	span.End()
	if err != nil {
		s.countWALFailure()
		return nil, fmt.Errorf("wal append: %w", err)
	}
	// The record is in the log (though not yet durable): later batches
	// staged behind it may already reference these terms, so the durable
	// dictionary length advances now. If the commit fails, the server
	// degrades read-only and re-baselines everything before the next
	// write.
	*durableDict = g.Dict().Len()
	// Checkpoints (and Close) must not swap the WAL handle out from
	// under an in-flight commit: they wait on commitWG under the write
	// lock, which also fences new stages.
	s.dur.commitWG.Add(1)
	return func() error {
		defer s.dur.commitWG.Done()
		if err := p.Commit(); err != nil {
			s.countWALFailure()
			return fmt.Errorf("wal append: %w", err)
		}
		return nil
	}, nil
}

func (s *Server) countWALFailure() {
	s.dur.mu.Lock()
	s.dur.walFailures++
	s.dur.mu.Unlock()
}

// maxID returns the largest of a triple's three term IDs — the one a
// corruption report should name.
func maxID(ids ...dict.ID) dict.ID {
	m := ids[0]
	for _, id := range ids[1:] {
		if id > m {
			m = id
		}
	}
	return m
}

func toPersistTriples(ts []store.IDTriple) []persist.Triple {
	out := make([]persist.Triple, len(ts))
	for i, t := range ts {
		out[i] = persist.Triple{S: t.S, P: t.P, O: t.O}
	}
	return out
}

// Checkpoint takes the write lock and persists a full checkpoint:
// snapshots, trimmed WALs, view-registry snapshot. It is what POST
// /snapshot (?checkpoint), the periodic checkpointer and graceful
// shutdown call.
func (s *Server) Checkpoint() (CheckpointResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.durable() {
		return CheckpointResponse{}, fmt.Errorf("server has no data-dir")
	}
	t0 := time.Now()
	if err := s.checkpointLocked(); err != nil {
		return CheckpointResponse{}, err
	}
	s.dur.mu.Lock()
	views := s.dur.lastViews
	s.dur.mu.Unlock()
	return CheckpointResponse{
		Triples:   s.base.Len(),
		DeltaTail: s.base.DeltaLen(),
		Views:     views,
		ElapsedNs: time.Since(t0).Nanoseconds(),
	}, nil
}

// checkpointLocked persists the full durable state. Caller holds the
// write lock. The sequence per graph is crash-safe: the snapshot
// replaces atomically first, then the WAL is atomically swapped for one
// holding only the still-pending delta tail — every intermediate state
// recovers (an over-long WAL replays idempotently). Every failure is
// counted in checkpointErrors; callers additionally decide whether it
// trips read-only mode (failDurable / enterDegraded).
func (s *Server) checkpointLocked() error {
	d := s.dur
	if d == nil {
		return nil
	}
	err := s.checkpointFilesLocked()
	if err != nil {
		d.mu.Lock()
		d.checkpointErrors++
		d.mu.Unlock()
		s.met.checkpointErrors.Inc()
	}
	return err
}

// armWALMetrics points the current WAL handles at the server's
// append/fsync collectors and (re-)arms group commit. Must be re-run
// after every handle swap — checkpoints replace the WALs with fresh
// ones holding only the delta tail — or the new handles record nothing.
func (s *Server) armWALMetrics() {
	if s.dur == nil {
		return
	}
	if s.dur.baseWAL != nil {
		s.dur.baseWAL.SetMetrics(s.met.wal)
		s.dur.baseWAL.SetGroupCommit(s.cfg.WALGroupCommit)
	}
	if s.dur.instWAL != nil {
		s.dur.instWAL.SetMetrics(s.met.wal)
		s.dur.instWAL.SetGroupCommit(s.cfg.WALGroupCommit)
	}
}

func (s *Server) checkpointFilesLocked() error {
	d := s.dur
	// Fence in-flight group commits: they hold PendingAppend handles
	// into the WALs this checkpoint is about to replace. Their staged
	// records are covered either way — the snapshot below serializes the
	// store state those writes already mutated.
	d.commitWG.Wait()
	t0 := time.Now()
	var err error
	if d.baseWAL, err = checkpointGraph(d.fsys, s.base, d.path("base.snap"), d.baseWAL, s.cfg.Mapped || s.base.Mapped()); err != nil {
		return err
	}
	d.baseWALDict = s.base.Dict().Len() // the snapshot holds the full dictionary
	if s.inst != s.base {
		if d.instWAL, err = checkpointGraph(d.fsys, s.inst, d.path("inst.snap"), d.instWAL, false); err != nil {
			return err
		}
		d.instWALDict = s.inst.Dict().Len()
	} else {
		if d.instWAL != nil {
			d.instWAL.Close()
			d.instWAL = nil
		}
		d.instWALDict = 0
		d.fsys.Remove(d.path("inst.snap"))
		d.fsys.Remove(d.path("inst.wal"))
	}
	views := 0
	if err := persist.AtomicWriteFS(d.fsys, d.path("views.snap"), func(w io.Writer) error {
		n, err := s.reg.Save(w)
		views = n
		return err
	}); err != nil {
		return &persist.ArtifactError{Path: d.path("views.snap"), Kind: "views", Err: err}
	}
	s.armWALMetrics() // the swaps above installed fresh WAL handles
	elapsed := time.Since(t0).Nanoseconds()
	s.met.checkpoints.Inc()
	s.met.checkpointSec.Observe(elapsed)
	d.mu.Lock()
	d.checkpoints++
	d.lastCheckpointNs = elapsed
	d.lastViews = views
	d.mu.Unlock()
	return nil
}

// checkpointGraph persists one graph: freeze (a no-op on an already
// frozen graph with no pending delta; a map-mode graph is compacted onto
// the frozen layout without a version change), snapshot the base
// columns, swap the WAL down to the delta tail.
//
// With v3 set (mapped mode), the snapshot is written in the mappable
// format — and skipped entirely when the graph's mmap'd file already IS
// its current frozen base (the common case after a mapped compaction:
// only the WAL needs trimming).
func checkpointGraph(fsys faultfs.FS, g *store.Store, snapPath string, wal *persist.WAL, v3 bool) (*persist.WAL, error) {
	if !g.IsFrozen() {
		g.Freeze()
	}
	switch {
	case g.MappedBaseClean():
		// base.snap is the mapping we serve from; rewriting it would be
		// a byte-identical no-op at best and would churn the page cache.
	case v3:
		if err := persist.AtomicWriteFS(fsys, snapPath, g.WriteFrozenBaseV3); err != nil {
			return wal, &persist.ArtifactError{Path: snapPath, Kind: "snapshot", Err: err}
		}
	default:
		if err := persist.AtomicWriteFS(fsys, snapPath, g.WriteFrozenBase); err != nil {
			return wal, &persist.ArtifactError{Path: snapPath, Kind: "snapshot", Err: err}
		}
	}
	var tail []persist.Batch
	if g.DeltaLen() > 0 {
		tail = []persist.Batch{{
			DictLen: g.Dict().Len(),
			Triples: toPersistTriples(g.DeltaSince(0)),
		}}
	}
	next, err := persist.ReplaceWALFS(fsys, walPathFor(snapPath), g.Version().Base, tail)
	if err != nil {
		return wal, err
	}
	if wal != nil {
		wal.Close()
	}
	return next, nil
}

// walPathFor maps a snapshot path to its WAL sibling (base.snap ->
// base.wal).
func walPathFor(snapPath string) string {
	return snapPath[:len(snapPath)-len(".snap")] + ".wal"
}

// Close releases the durable file handles (after a final checkpoint if
// requested by the caller). Safe on a non-durable server. Background
// compactions are fenced off first — the closed flag (set under the
// write lock, checked by maybeCompact under the same lock) stops new
// ones, and any in-flight one is awaited — because a compaction may
// checkpoint, which would otherwise reopen WAL handles and rewrite the
// data-dir after Close returned.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopRetry() // after closed is set: a racing retry sees it and exits
	s.compactWG.Wait()
	if !s.durable() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dur.commitWG.Wait() // in-flight group commits finish before the handles close
	if s.dur.baseWAL != nil {
		s.dur.baseWAL.Close()
	}
	if s.dur.instWAL != nil {
		s.dur.instWAL.Close()
	}
	if s.base.Mapped() {
		s.base.CloseMapped()
	}
	return nil
}
