package server

// The data-dir lifecycle: open-or-recover startup, write-ahead logging
// of delta writes, and checkpointing.
//
// A durable server keeps, under Config.DataDir,
//
//	base.snap / base.wal   the base graph: frozen v2 snapshot + delta WAL
//	inst.snap / inst.wal   the serving instance, when a materialized
//	                       schema distinct from the base is installed
//	views.snap             the view registry over the serving instance
//
// Invariant: at every instant the on-disk state recovers the acknowledged
// writes. A delta write is fsynced into the graph's WAL before the HTTP
// 200 goes out; a checkpoint replaces the snapshot atomically and then
// swaps in a WAL holding exactly the still-pending delta tail
// (persist.ReplaceWAL), so every crash window replays to the same
// (baseEpoch, deltaSeq) state. Structural writes — materialize, snapshot
// load, freeze-compaction, a write that crossed the compaction
// threshold — are made durable by checkpointing instead of logging.
//
// Recovery (Open) is the reverse: load base.snap (or seed an empty
// graph), replay base.wal, ditto for inst.*, then warm the registry from
// views.snap — restored views are Sync'd through the recovered delta
// feed, so they answer without a direct evaluation. Restart cost is the
// snapshot read (sequential, no rebuild) plus the WAL tail, not the
// dataset.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rdfcube/internal/dict"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/obs"
	"rdfcube/internal/persist"
	"rdfcube/internal/store"
)

// durability is the persistent half of a Server. Counters are guarded by
// mu; the WALs and file operations are guarded by the server's write
// lock.
type durability struct {
	dir     string
	fsys    faultfs.FS // every durable file operation goes through here
	baseWAL *persist.WAL
	instWAL *persist.WAL // nil while the instance is the base graph

	// baseWALDict / instWALDict track how many dictionary terms are
	// already durable for each graph (in its snapshot or earlier WAL
	// records). Batch term tails are computed against THIS, not against
	// the dictionary length observed before a write: base and a
	// materialized instance share one live dictionary, so a write to one
	// graph can intern terms a later write to the other graph
	// references — each WAL must carry every term its own replay needs.
	baseWALDict int
	instWALDict int

	mu               sync.Mutex
	checkpoints      int64
	lastCheckpointNs int64
	lastViews        int
	walFailures      int64
	checkpointErrors int64
	recoveredTriples int64
	recoveredBatches int64
	recoveredViews   int64
	recoveredSnap    bool
}

func (d *durability) path(name string) string { return filepath.Join(d.dir, name) }

// HasState reports whether dir holds recoverable durable state (a base
// snapshot) — the single place the data-dir layout is known, so callers
// deciding between seeding and recovering (cmd/rdfcubed) need not
// hardcode file names.
func HasState(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, "base.snap"))
	return err == nil
}

// Open returns a server over the durable state in cfg.DataDir, seeding
// an empty or missing directory from seed (which may be nil). With no
// DataDir it is exactly New. Recovery loads the snapshots, replays the
// write-ahead logs and warms the view registry; the returned server
// answers queries at the exact (baseEpoch, deltaSeq) version the state
// was persisted at.
func Open(seed *store.Store, cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return New(seed, cfg), nil
	}
	fsys := faultfs.OrOS(cfg.FS)
	if err := fsys.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	d := &durability{dir: cfg.DataDir, fsys: fsys}
	_, baseSnapErr := fsys.Stat(d.path("base.snap"))
	freshDir := baseSnapErr != nil

	base, baseWAL, err := d.recoverGraph("base.snap", "base.wal", seed, cfg.CompactThreshold)
	if err != nil {
		return nil, err
	}
	d.baseWAL = baseWAL
	d.baseWALDict = base.Dict().Len()
	srv := New(base, cfg)
	srv.dur = d

	if _, err := fsys.Stat(d.path("inst.snap")); err == nil {
		inst, instWAL, err := d.recoverGraph("inst.snap", "inst.wal", nil, cfg.CompactThreshold)
		if err != nil {
			return nil, fmt.Errorf("recovering instance: %w", err)
		}
		d.instWAL = instWAL
		d.instWALDict = inst.Dict().Len()
		srv.installInstance(inst)
	}
	srv.armWALMetrics()

	// Warm the registry from the view snapshot, if one lines up with the
	// recovered instance. A corrupt or mismatched view snapshot only
	// costs warmth, never correctness: whatever was admitted before the
	// failure stays, the rest is re-evaluated on demand.
	if f, err := fsys.Open(d.path("views.snap")); err == nil {
		n, _ := srv.reg.Restore(f)
		f.Close()
		d.recoveredViews = int64(n)
	}

	d.mu.Lock()
	srv.slog().Info("recovered durable state",
		slog.String("data_dir", d.dir),
		slog.Bool("from_snapshot", d.recoveredSnap),
		slog.Int64("replayed_batches", d.recoveredBatches),
		slog.Int64("replayed_triples", d.recoveredTriples),
		slog.Int64("recovered_views", d.recoveredViews))
	d.mu.Unlock()

	// Converge: a fresh directory checkpoints immediately, so recovery
	// never depends on the seed file staying byte-identical (WAL term
	// IDs are only meaningful against the exact dictionary the snapshot
	// records). Likewise if a crash interleaved a checkpoint (snapshot
	// written, WAL not yet swapped) or replay itself compacted, the WAL
	// epochs trail the stores — rewrite a clean checkpoint so the next
	// recovery is single-pass.
	if freshDir ||
		d.baseWAL.Epoch() != srv.base.Version().Base ||
		(d.instWAL != nil && d.instWAL.Epoch() != srv.inst.Version().Base) {
		if err := srv.checkpointLocked(); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// recoverGraph loads one graph from its snapshot + WAL pair. A missing
// snapshot falls back to seed (frozen) or a fresh store. Failures are
// typed persist.ArtifactError values naming the artifact that broke —
// "snapshot" (unreadable/corrupt snapshot), "wal" (log framing), or
// "dict" (a replayed triple referencing a term the dictionary never
// assigned) — so operators know which file to restore.
func (d *durability) recoverGraph(snapName, walName string, seed *store.Store, compactThreshold int) (*store.Store, *persist.WAL, error) {
	var g *store.Store
	if f, err := d.fsys.Open(d.path(snapName)); err == nil {
		g, err = store.OpenFrozenSnapshot(f)
		f.Close()
		if err != nil {
			return nil, nil, &persist.ArtifactError{Path: d.path(snapName), Kind: "snapshot", Err: err}
		}
		d.recoveredSnap = true
	} else {
		g = seed
		if g == nil {
			g = store.New()
		}
		g.Freeze()
	}
	if compactThreshold > 0 {
		g.SetCompactThreshold(compactThreshold)
	}
	w, batches, _, err := persist.OpenWALFS(d.fsys, d.path(walName), g.Version().Base)
	if err != nil {
		return nil, nil, err // already a typed "wal" artifact error
	}
	for i, b := range batches {
		n, err := applyBatch(g, b)
		if err != nil {
			w.Close()
			return nil, nil, &persist.ArtifactError{
				Path: d.path(walName),
				Kind: "dict",
				Err:  fmt.Errorf("replaying batch %d: %w", i, err),
			}
		}
		d.recoveredTriples += int64(n)
		d.recoveredBatches++
	}
	return g, w, nil
}

// applyBatch replays one WAL batch into g: intern the batch's new terms
// (idempotently — replays of already-snapshotted batches re-encode to
// the existing IDs), then insert its triples. Triples referencing IDs
// the dictionary never assigned are corruption.
func applyBatch(g *store.Store, b persist.Batch) (added int, err error) {
	for _, t := range b.Terms {
		g.Dict().Encode(t)
	}
	dictLen := g.Dict().Len()
	for _, t := range b.Triples {
		if int(t.S) > dictLen || int(t.P) > dictLen || int(t.O) > dictLen {
			return added, fmt.Errorf("%w: triple references unknown term ID %d (dictionary has %d terms)",
				persist.ErrCorrupt, maxID(t.S, t.P, t.O), dictLen)
		}
		if g.AddID(store.IDTriple{S: t.S, P: t.P, O: t.O}) {
			added++
		}
	}
	return added, nil
}

// durable reports whether the server persists to a data-dir.
func (s *Server) durable() bool { return s.dur != nil }

// walFor returns the WAL backing graph g (nil when g has none yet).
func (s *Server) walFor(g *store.Store) *persist.WAL {
	if g == s.base {
		return s.dur.baseWAL
	}
	return s.dur.instWAL
}

// walDictFor returns a pointer to the durable-dictionary-length counter
// of graph g's WAL.
func (s *Server) walDictFor(g *store.Store) *int {
	if g == s.base {
		return &s.dur.baseWALDict
	}
	return &s.dur.instWALDict
}

// logWrite makes a just-applied write to g durable. Caller holds the
// write lock and captured the graph's version before applying. Delta
// writes append one fsynced WAL batch carrying every dictionary term
// not yet durable for this graph (terms may have been interned by
// writes to the *other* graph — the dictionary is shared while an
// instance is materialized in-process); a write that moved the base
// epoch (threshold compaction, map-mode writes, freeze) checkpoints
// instead — which also truncates the log across the base move, so it
// cannot grow unboundedly.
func (s *Server) logWrite(ctx context.Context, g *store.Store, before store.Version) error {
	if !s.durable() {
		return nil
	}
	after := g.Version()
	if after == before {
		return nil // nothing accepted
	}
	w := s.walFor(g)
	if after.Base != before.Base || !g.IsFrozen() || w == nil {
		_, span := obs.StartSpan(ctx, "persist.checkpoint")
		err := s.checkpointLocked()
		span.End()
		return err
	}
	durableDict := s.walDictFor(g)
	batch := persist.Batch{
		DictLen: *durableDict,
		Terms:   g.Dict().TermsFrom(*durableDict),
		Triples: toPersistTriples(g.DeltaSince(before.Seq)),
	}
	_, span := obs.StartSpan(ctx, "wal.append")
	span.AttrInt("triples", int64(len(batch.Triples)))
	span.AttrInt("terms", int64(len(batch.Terms)))
	err := w.Append(batch)
	span.End()
	if err != nil {
		s.dur.mu.Lock()
		s.dur.walFailures++
		s.dur.mu.Unlock()
		return fmt.Errorf("wal append: %w", err)
	}
	*durableDict = g.Dict().Len()
	return nil
}

// maxID returns the largest of a triple's three term IDs — the one a
// corruption report should name.
func maxID(ids ...dict.ID) dict.ID {
	m := ids[0]
	for _, id := range ids[1:] {
		if id > m {
			m = id
		}
	}
	return m
}

func toPersistTriples(ts []store.IDTriple) []persist.Triple {
	out := make([]persist.Triple, len(ts))
	for i, t := range ts {
		out[i] = persist.Triple{S: t.S, P: t.P, O: t.O}
	}
	return out
}

// Checkpoint takes the write lock and persists a full checkpoint:
// snapshots, trimmed WALs, view-registry snapshot. It is what POST
// /snapshot (?checkpoint), the periodic checkpointer and graceful
// shutdown call.
func (s *Server) Checkpoint() (CheckpointResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.durable() {
		return CheckpointResponse{}, fmt.Errorf("server has no data-dir")
	}
	t0 := time.Now()
	if err := s.checkpointLocked(); err != nil {
		return CheckpointResponse{}, err
	}
	s.dur.mu.Lock()
	views := s.dur.lastViews
	s.dur.mu.Unlock()
	return CheckpointResponse{
		Triples:   s.base.Len(),
		DeltaTail: s.base.DeltaLen(),
		Views:     views,
		ElapsedNs: time.Since(t0).Nanoseconds(),
	}, nil
}

// checkpointLocked persists the full durable state. Caller holds the
// write lock. The sequence per graph is crash-safe: the snapshot
// replaces atomically first, then the WAL is atomically swapped for one
// holding only the still-pending delta tail — every intermediate state
// recovers (an over-long WAL replays idempotently). Every failure is
// counted in checkpointErrors; callers additionally decide whether it
// trips read-only mode (failDurable / enterDegraded).
func (s *Server) checkpointLocked() error {
	d := s.dur
	if d == nil {
		return nil
	}
	err := s.checkpointFilesLocked()
	if err != nil {
		d.mu.Lock()
		d.checkpointErrors++
		d.mu.Unlock()
		s.met.checkpointErrors.Inc()
	}
	return err
}

// armWALMetrics points the current WAL handles at the server's
// append/fsync collectors. Must be re-run after every handle swap —
// checkpoints replace the WALs with fresh ones holding only the delta
// tail — or the new handles record nothing.
func (s *Server) armWALMetrics() {
	if s.dur == nil {
		return
	}
	if s.dur.baseWAL != nil {
		s.dur.baseWAL.SetMetrics(s.met.wal)
	}
	if s.dur.instWAL != nil {
		s.dur.instWAL.SetMetrics(s.met.wal)
	}
}

func (s *Server) checkpointFilesLocked() error {
	d := s.dur
	t0 := time.Now()
	var err error
	if d.baseWAL, err = checkpointGraph(d.fsys, s.base, d.path("base.snap"), d.baseWAL); err != nil {
		return err
	}
	d.baseWALDict = s.base.Dict().Len() // the snapshot holds the full dictionary
	if s.inst != s.base {
		if d.instWAL, err = checkpointGraph(d.fsys, s.inst, d.path("inst.snap"), d.instWAL); err != nil {
			return err
		}
		d.instWALDict = s.inst.Dict().Len()
	} else {
		if d.instWAL != nil {
			d.instWAL.Close()
			d.instWAL = nil
		}
		d.instWALDict = 0
		d.fsys.Remove(d.path("inst.snap"))
		d.fsys.Remove(d.path("inst.wal"))
	}
	views := 0
	if err := persist.AtomicWriteFS(d.fsys, d.path("views.snap"), func(w io.Writer) error {
		n, err := s.reg.Save(w)
		views = n
		return err
	}); err != nil {
		return &persist.ArtifactError{Path: d.path("views.snap"), Kind: "views", Err: err}
	}
	s.armWALMetrics() // the swaps above installed fresh WAL handles
	elapsed := time.Since(t0).Nanoseconds()
	s.met.checkpoints.Inc()
	s.met.checkpointSec.Observe(elapsed)
	d.mu.Lock()
	d.checkpoints++
	d.lastCheckpointNs = elapsed
	d.lastViews = views
	d.mu.Unlock()
	return nil
}

// checkpointGraph persists one graph: freeze (a no-op on an already
// frozen graph with no pending delta; a map-mode graph is compacted onto
// the frozen layout without a version change), snapshot the base
// columns, swap the WAL down to the delta tail.
func checkpointGraph(fsys faultfs.FS, g *store.Store, snapPath string, wal *persist.WAL) (*persist.WAL, error) {
	if !g.IsFrozen() {
		g.Freeze()
	}
	if err := persist.AtomicWriteFS(fsys, snapPath, g.WriteFrozenBase); err != nil {
		return wal, &persist.ArtifactError{Path: snapPath, Kind: "snapshot", Err: err}
	}
	var tail []persist.Batch
	if g.DeltaLen() > 0 {
		tail = []persist.Batch{{
			DictLen: g.Dict().Len(),
			Triples: toPersistTriples(g.DeltaSince(0)),
		}}
	}
	next, err := persist.ReplaceWALFS(fsys, walPathFor(snapPath), g.Version().Base, tail)
	if err != nil {
		return wal, err
	}
	if wal != nil {
		wal.Close()
	}
	return next, nil
}

// walPathFor maps a snapshot path to its WAL sibling (base.snap ->
// base.wal).
func walPathFor(snapPath string) string {
	return snapPath[:len(snapPath)-len(".snap")] + ".wal"
}

// Close releases the durable file handles (after a final checkpoint if
// requested by the caller). Safe on a non-durable server. Background
// compactions are fenced off first — the closed flag (set under the
// write lock, checked by maybeCompact under the same lock) stops new
// ones, and any in-flight one is awaited — because a compaction may
// checkpoint, which would otherwise reopen WAL handles and rewrite the
// data-dir after Close returned.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopRetry() // after closed is set: a racing retry sees it and exits
	s.compactWG.Wait()
	if !s.durable() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur.baseWAL != nil {
		s.dur.baseWAL.Close()
	}
	if s.dur.instWAL != nil {
		s.dur.instWAL.Close()
	}
	return nil
}
