package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"rdfcube/internal/obs"
	"rdfcube/internal/store"
)

// findSpan walks a dumped span tree for the first span named name.
func findSpan(d *obs.SpanDump, name string) *obs.SpanDump {
	var found *obs.SpanDump
	d.Walk(func(_ int, s *obs.SpanDump) {
		if found == nil && s.Name == name {
			found = s
		}
	})
	return found
}

// TestExplainAnalyze drives ?explain=analyze on the registry path and
// checks both halves of its contract: the span tree shows the pipeline
// (viewreg → bgp evaluation → render) with row counts matching the
// result cardinality, and the result rows are byte-identical to the
// same query answered without explain.
func TestExplainAnalyze(t *testing.T) {
	srv := New(starGraph(30), Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Explain first: the first registry-path answer runs the full bgp
	// evaluation (later ones may serve from the registered view, which
	// would legitimately skip the eval spans).
	req := slowStarQuery(false)
	var explained QueryResponse
	if st, body := postJSON(t, ts.Client(), ts.URL+"/query?explain=analyze", req, &explained); st != http.StatusOK {
		t.Fatalf("explain query: status %d body %s", st, body)
	}
	var plain QueryResponse
	if st, body := postJSON(t, ts.Client(), ts.URL+"/query", req, &plain); st != http.StatusOK {
		t.Fatalf("plain query: status %d body %s", st, body)
	}

	// Explain only observes: same columns, same rows, same cardinality.
	if !reflect.DeepEqual(explained.Cols, plain.Cols) ||
		!reflect.DeepEqual(explained.Rows, plain.Rows) ||
		explained.Cells != plain.Cells {
		t.Fatalf("explain changed the result:\nexplained %+v\nplain %+v", explained, plain)
	}
	if len(explained.Rows) == 0 {
		t.Fatal("star query returned no rows; the span assertions below would be vacuous")
	}
	if explained.TraceID == "" || explained.Explain == nil {
		t.Fatalf("explain response lacks trace: id=%q explain=%v", explained.TraceID, explained.Explain)
	}
	if plain.TraceID != "" || plain.Explain != nil {
		t.Fatal("plain response carries trace fields")
	}

	root := explained.Explain
	if root.Name != "/query" || root.DurNs <= 0 {
		t.Fatalf("root span = %q dur %d, want /query with positive duration", root.Name, root.DurNs)
	}
	answer := findSpan(root, "viewreg.answer")
	if answer == nil {
		t.Fatalf("no viewreg.answer span in tree:\n%s", root.Render())
	}
	if answer.Rows != int64(explained.Cells) {
		t.Errorf("viewreg.answer rows = %d, want result cardinality %d", answer.Rows, explained.Cells)
	}
	eval := findSpan(answer, "bgp.eval")
	if eval == nil {
		t.Fatalf("no bgp.eval span nested under viewreg.answer:\n%s", root.Render())
	}
	if len(eval.Children) == 0 {
		t.Errorf("bgp.eval span has no per-step children:\n%s", root.Render())
	}
	if findSpan(root, "render") == nil {
		t.Errorf("no render span in tree:\n%s", root.Render())
	}
}

// TestMetricsEndpoint scrapes GET /metrics after traffic and validates
// the exposition: parseable, right content type, and the request/query
// histograms actually moved.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(starGraph(10), Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 2; i++ {
		if st, body := postJSON(t, ts.Client(), ts.URL+"/query", fastStarQuery(), &QueryResponse{}); st != http.StatusOK {
			t.Fatalf("query %d: status %d body %s", i, st, body)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("content type = %q, want %q", got, obs.ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`rdfcube_http_requests_total{route="/query"} 2`,
		`rdfcube_http_request_seconds_count{route="/query"} 2`,
		`rdfcube_query_seconds_count{strategy="direct"} 2`,
		"rdfcube_uptime_seconds ",
		"rdfcube_degraded 0",
		`rdfcube_graph_triples{graph="instance"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTraceRingOn504: under TraceAll, a query killed by the server-side
// deadline must still finish its trace — the root span lands in the
// ring ended, retrievable via /debug/traces/last.
func TestTraceRingOn504(t *testing.T) {
	srv := New(starGraph(1500), Config{TraceAll: true, QueryTimeout: 3 * time.Millisecond})
	w := httptest.NewRecorder()
	status, err := srv.handleQuery(w, queryHTTPRequest(t, context.Background(), slowStarQuery(true)))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (err %v), want 504", status, err)
	}

	rec := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, "/debug/traces/last?n=1", nil)
	if st, err := srv.handleTraces(rec, r); st != http.StatusOK || err != nil {
		t.Fatalf("handleTraces: status %d err %v", st, err)
	}
	var traces []obs.TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("unmarshal traces: %v (body %s)", err, rec.Body.String())
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID == "" || tr.Root == nil || tr.Root.Name != "/query" {
		t.Fatalf("trace = %+v, want rooted at /query with an ID", tr)
	}
	if tr.Root.DurNs <= 0 {
		t.Fatal("cancelled query's root span was not ended")
	}
	if got := srv.Tracer().Started.Load(); got != 1 {
		t.Fatalf("Started = %d, want 1", got)
	}
}

// TestTracesEndpointEmpty: with no traffic the endpoint returns an
// empty JSON array, not null.
func TestTracesEndpointEmpty(t *testing.T) {
	srv := New(store.New(), Config{})
	rec := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, "/debug/traces/last", nil)
	if st, err := srv.handleTraces(rec, r); st != http.StatusOK || err != nil {
		t.Fatalf("handleTraces: status %d err %v", st, err)
	}
	if got := strings.TrimSpace(rec.Body.String()); got != "[]" {
		t.Fatalf("empty ring rendered %q, want []", got)
	}
}

// TestStatszQuantiles: /statsz derives its per-endpoint percentiles
// from the same histograms /metrics exposes.
func TestStatszQuantiles(t *testing.T) {
	srv := New(starGraph(10), Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		if st, body := postJSON(t, ts.Client(), ts.URL+"/query", fastStarQuery(), &QueryResponse{}); st != http.StatusOK {
			t.Fatalf("query %d: status %d body %s", i, st, body)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ep, ok := stats.Endpoints["/query"]
	if !ok {
		t.Fatalf("no /query endpoint stats: %+v", stats.Endpoints)
	}
	if ep.Count != 3 || ep.Errors != 0 {
		t.Fatalf("count/errors = %d/%d, want 3/0", ep.Count, ep.Errors)
	}
	if ep.P50Ns <= 0 || ep.P90Ns < ep.P50Ns || ep.P99Ns < ep.P90Ns {
		t.Fatalf("quantiles not ordered: p50=%d p90=%d p99=%d", ep.P50Ns, ep.P90Ns, ep.P99Ns)
	}
	if ep.MaxNs < ep.LastNs || ep.TotalNs <= 0 {
		t.Fatalf("max/last/total inconsistent: max=%d last=%d total=%d", ep.MaxNs, ep.LastNs, ep.TotalNs)
	}
}

// TestWriteJSONEncodeError: an unencodable response body must be
// counted and logged instead of silently dropped.
func TestWriteJSONEncodeError(t *testing.T) {
	var logBuf bytes.Buffer
	srv := New(store.New(), Config{Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	rec := httptest.NewRecorder()
	srv.writeJSON(rec, http.StatusOK, make(chan int)) // channels cannot marshal
	if got := srv.met.jsonErrors.Value(); got != 1 {
		t.Fatalf("encode errors = %d, want 1", got)
	}
	if !strings.Contains(logBuf.String(), "response encode failed") {
		t.Fatalf("no encode-failure log line: %s", logBuf.String())
	}
}

// TestSlowQueryLogWiring: Config.SlowQuery arms the tracer end to end —
// a query past the threshold is logged with its trace ID and counted.
func TestSlowQueryLogWiring(t *testing.T) {
	var logBuf bytes.Buffer
	srv := New(starGraph(10), Config{
		SlowQuery: time.Nanosecond, // everything is slow
		Logger:    slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	w := httptest.NewRecorder()
	if st, err := srv.handleQuery(w, queryHTTPRequest(t, context.Background(), fastStarQuery())); st != http.StatusOK {
		t.Fatalf("query: status %d err %v", st, err)
	}
	if got := srv.met.querySlo.Value(); got != 1 {
		t.Fatalf("slow query counter = %d, want 1", got)
	}
	out := logBuf.String()
	for _, want := range []string{"slow query", "trace_id", `"endpoint":"/query"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow log lacks %q:\n%s", want, out)
		}
	}
}
