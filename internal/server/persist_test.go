package server

// Restart-recovery tests: the durable server must come back at the exact
// (baseEpoch, deltaSeq) state — answers byte-identical, warmed views
// answering without a direct evaluation — from every crash window: after
// a checkpoint, with a WAL tail, and with a torn WAL record.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"rdfcube/internal/datagen"
	"rdfcube/internal/persist"
	"rdfcube/internal/rdf"
	"rdfcube/internal/store"
)

// durableServer boots a server over dir and returns it with its test
// frontend.
func durableServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := Open(nil, Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// loadBloggers streams a generated blogger dataset into the server.
func loadBloggers(t *testing.T, ts *httptest.Server, n int) {
	t.Helper()
	cfg := datagen.DefaultBloggerConfig()
	cfg.Bloggers = n
	cfg.Dimensions = 2
	base, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/load?saturate=1", "text/plain", ntBody(t, base))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/load: status %d", resp.StatusCode)
	}
}

func bloggerQueryRequest() *QueryRequest {
	return &QueryRequest{
		Classifier: "c(x, d0, d1) :- x rdf:type :Blogger, x :hasAge d0, x :livesIn d1",
		Measure:    "m(x, v) :- x rdf:type :Blogger, x :wrotePost p, p :postedOn v",
		Agg:        "count",
		Prefixes:   map[string]string{"": datagen.NS},
	}
}

// queryRows answers q and returns the response with volatile fields
// (strategy, latency) separated out.
func queryRows(t *testing.T, ts *httptest.Server, q *QueryRequest) (rows string, strategy string) {
	t.Helper()
	var qr QueryResponse
	status, body := postJSON(t, ts.Client(), ts.URL+"/query", q, &qr)
	if status != http.StatusOK {
		t.Fatalf("/query: status %d body %s", status, body)
	}
	raw, err := json.Marshal(struct {
		Cols []string   `json:"cols"`
		Rows [][]string `json:"rows"`
	}{qr.Cols, qr.Rows})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), qr.Strategy
}

// insertFacts writes count new bloggers through POST /insert.
func insertFacts(t *testing.T, ts *httptest.Server, start, count int) {
	t.Helper()
	var buf bytes.Buffer
	for i := start; i < start+count; i++ {
		fmt.Fprintf(&buf, "<%vwu%d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <%vBlogger> .\n", datagen.NS, i, datagen.NS)
		fmt.Fprintf(&buf, "<%vwu%d> <%vhasAge> \"%d\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n", datagen.NS, i, datagen.NS, 20+i%7)
		fmt.Fprintf(&buf, "<%vwu%d> <%vlivesIn> <%vcity%d> .\n", datagen.NS, i, datagen.NS, datagen.NS, i%3)
		fmt.Fprintf(&buf, "<%vwu%d> <%vwrotePost> <%vwp%d> .\n", datagen.NS, i, datagen.NS, datagen.NS, i)
		fmt.Fprintf(&buf, "<%vwp%d> <%vpostedOn> <%vsite%d> .\n", datagen.NS, i, datagen.NS, datagen.NS, i%4)
	}
	resp, err := ts.Client().Post(ts.URL+"/insert", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/insert: status %d", resp.StatusCode)
	}
}

func statsz(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestRestartRecovery is the acceptance scenario: load → query (register
// view) → insert → checkpoint → insert more (WAL tail) → "kill" →
// restart from the data-dir. The recovered server must answer
// byte-identically, at the same (baseEpoch, deltaSeq), with the warmed
// view answering from cache — zero direct evaluations.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := durableServer(t, dir)
	loadBloggers(t, ts1, 150)
	q := bloggerQueryRequest()

	if _, strat := queryRows(t, ts1, q); strat != "direct" {
		t.Fatalf("first query strategy %s, want direct", strat)
	}
	insertFacts(t, ts1, 0, 5)
	var cp CheckpointResponse
	if status, body := postJSON(t, ts1.Client(), ts1.URL+"/snapshot", struct{}{}, &cp); status != http.StatusOK {
		t.Fatalf("/snapshot: status %d body %s", status, body)
	}
	if cp.Views != 1 {
		t.Fatalf("checkpoint persisted %d views, want 1", cp.Views)
	}
	insertFacts(t, ts1, 5, 7) // after the checkpoint: lives only in the WAL

	wantRows, strat := queryRows(t, ts1, q)
	if strat != "cached" {
		t.Fatalf("pre-restart strategy %s, want cached (maintained view)", strat)
	}
	preStats := statsz(t, ts1)
	srv1.Close()
	ts1.Close()

	// Restart from the same directory.
	srv2, ts2 := durableServer(t, dir)
	post := statsz(t, ts2)
	if post.Durability == nil || !post.Durability.RecoveredSnap {
		t.Fatal("restart did not recover from the snapshot")
	}
	if post.Durability.RecoveredViews != 1 {
		t.Fatalf("recovered %d views, want 1", post.Durability.RecoveredViews)
	}
	if post.Instance.BaseEpoch != preStats.Instance.BaseEpoch || post.Instance.DeltaSeq != preStats.Instance.DeltaSeq {
		t.Fatalf("recovered version (%d,%d), want (%d,%d)",
			post.Instance.BaseEpoch, post.Instance.DeltaSeq,
			preStats.Instance.BaseEpoch, preStats.Instance.DeltaSeq)
	}
	if post.Instance.Triples != preStats.Instance.Triples {
		t.Fatalf("recovered %d triples, want %d", post.Instance.Triples, preStats.Instance.Triples)
	}

	gotRows, strat := queryRows(t, ts2, q)
	if strat != "cached" {
		t.Fatalf("post-restart strategy %s, want cached (warmed view, no direct eval)", strat)
	}
	if gotRows != wantRows {
		t.Fatalf("post-restart rows differ:\n got %s\nwant %s", gotRows, wantRows)
	}
	if n := statsz(t, ts2).Registry.Strategies["direct"]; n != 0 {
		t.Fatalf("restart performed %d direct evaluations, want 0", n)
	}

	// And a differential: the registry answer must equal a forced direct
	// evaluation on the recovered instance.
	direct := *q
	direct.Direct = true
	directRows, _ := queryRows(t, ts2, &direct)
	if directRows != gotRows {
		t.Fatalf("recovered registry answer differs from direct evaluation:\n reg %s\n dir %s", gotRows, directRows)
	}
	_ = srv2
}

// TestRestartWithoutExplicitCheckpoint relies only on the write-path
// durability: /load re-baselines automatically (structural write) and
// /insert batches go to the WAL.
func TestRestartWithoutExplicitCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := durableServer(t, dir)
	loadBloggers(t, ts1, 80)
	q := bloggerQueryRequest()
	queryRows(t, ts1, q)
	insertFacts(t, ts1, 0, 9)
	wantRows, _ := queryRows(t, ts1, q)
	want := statsz(t, ts1)
	srv1.Close()
	ts1.Close()

	_, ts2 := durableServer(t, dir)
	got := statsz(t, ts2)
	if got.Instance.Triples != want.Instance.Triples {
		t.Fatalf("recovered %d triples, want %d", got.Instance.Triples, want.Instance.Triples)
	}
	if got.Durability.RecoveredBatches == 0 {
		t.Fatal("expected WAL batches to replay")
	}
	gotRows, _ := queryRows(t, ts2, q)
	if gotRows != wantRows {
		t.Fatalf("rows differ after WAL-only recovery:\n got %s\nwant %s", gotRows, wantRows)
	}
}

// TestTornWALRecovery appends garbage to the WAL (a crash mid-append)
// and verifies recovery keeps every intact batch and drops the tail.
func TestTornWALRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := durableServer(t, dir)
	loadBloggers(t, ts1, 60)
	insertFacts(t, ts1, 0, 4)
	want := statsz(t, ts1)
	srv1.Close()
	ts1.Close()

	walPath := filepath.Join(dir, "base.wal")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, ts2 := durableServer(t, dir)
	got := statsz(t, ts2)
	if got.Instance.Triples != want.Instance.Triples {
		t.Fatalf("torn-tail recovery: %d triples, want %d", got.Instance.Triples, want.Instance.Triples)
	}
	if got.Instance.DeltaSeq != want.Instance.DeltaSeq {
		t.Fatalf("torn-tail recovery: delta seq %d, want %d", got.Instance.DeltaSeq, want.Instance.DeltaSeq)
	}
}

// TestSharedDictCrossGraphWAL: base and a materialized instance share
// one live dictionary. Terms interned by a write to ONE graph can be
// referenced by a later write to the OTHER — each graph's WAL must
// carry every term its own replay needs, or recovery of the second
// graph hits unknown term IDs.
func TestSharedDictCrossGraphWAL(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := durableServer(t, dir)
	loadBloggers(t, ts1, 80)
	schema, err := datagen.BloggerSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	var mr MaterializeResponse
	if status, body := postJSON(t, ts1.Client(), ts1.URL+"/materialize", schemaRequest(schema, true), &mr); status != http.StatusOK {
		t.Fatalf("/materialize: status %d body %s", status, body)
	}

	// Write to the BASE graph first: the new subject/object IRIs are
	// interned into the shared dictionary and logged in base.wal only.
	body := fmt.Sprintf("<%vshared0> <%vhasAge> \"31\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n", datagen.NS, datagen.NS)
	resp, err := ts1.Client().Post(ts1.URL+"/insert?graph=base", "text/plain", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Now write a triple to the INSTANCE that reuses those terms: no new
	// dictionary growth at write time, but inst.wal's replay still needs
	// the definitions.
	resp, err = ts1.Client().Post(ts1.URL+"/insert", "text/plain", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := statsz(t, ts1)
	srv1.Close()
	ts1.Close()

	srv2, ts2 := durableServer(t, dir) // pre-fix: Open failed on inst.wal replay
	got := statsz(t, ts2)
	if got.Instance.Triples != want.Instance.Triples || got.Base.Triples != want.Base.Triples {
		t.Fatalf("recovered base/inst %d/%d, want %d/%d",
			got.Base.Triples, got.Instance.Triples, want.Base.Triples, want.Instance.Triples)
	}
	srv2.mu.RLock()
	inst := srv2.inst
	srv2.mu.RUnlock()
	if !inst.Contains(rdf.NewTriple(
		rdf.NewIRI(datagen.NS+"shared0"),
		rdf.NewIRI(datagen.NS+"hasAge"),
		rdf.NewTypedLiteral("31", "http://www.w3.org/2001/XMLSchema#integer"))) {
		t.Fatal("cross-graph triple missing from recovered instance")
	}
}

// TestCrashRecoveryDifferential simulates a crash at every WAL offset
// (stride-sampled): recovery from the truncated log must match an
// in-memory twin built from exactly the batches that survived — the
// kill-after-N-inserts differential.
func TestCrashRecoveryDifferential(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := durableServer(t, dir)
	loadBloggers(t, ts1, 40)
	for i := 0; i < 6; i++ {
		insertFacts(t, ts1, i*4, 2)
	}
	srv1.Close()
	ts1.Close()
	snapRaw, err := os.ReadFile(filepath.Join(dir, "base.snap"))
	if err != nil {
		t.Fatal(err)
	}
	walRaw, err := os.ReadFile(filepath.Join(dir, "base.wal"))
	if err != nil {
		t.Fatal(err)
	}
	const walHeader = 13 // magic + version + epoch

	for cut := len(walRaw); cut >= walHeader; cut -= 11 {
		// Build the twin from the batches intact at this cut, parsed
		// from a scratch copy (recovery mutates its own files).
		scratch := filepath.Join(t.TempDir(), "twin.wal")
		if err := os.WriteFile(scratch, walRaw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, batches, _, err := persist.OpenWAL(scratch, 0)
		if err != nil {
			t.Fatalf("cut %d: twin wal: %v", cut, err)
		}
		w.Close()
		twin, err := store.OpenFrozenSnapshot(bytes.NewReader(snapRaw))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			for _, tm := range b.Terms {
				twin.Dict().Encode(tm)
			}
			for _, tr := range b.Triples {
				twin.AddID(store.IDTriple{S: tr.S, P: tr.P, O: tr.O})
			}
		}

		// Recover a server from the truncated state.
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, "base.snap"), snapRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, "base.wal"), walRaw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		srv, err := Open(nil, Config{DataDir: cdir})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if srv.base.Len() != twin.Len() {
			t.Fatalf("cut %d: recovered %d triples, twin has %d", cut, srv.base.Len(), twin.Len())
		}
		if srv.base.Version() != twin.Version() {
			t.Fatalf("cut %d: version %+v, twin %+v", cut, srv.base.Version(), twin.Version())
		}
		mismatch := 0
		twin.ForEach(store.Pattern{}, func(tr store.IDTriple) bool {
			if !srv.base.ContainsID(tr) {
				mismatch++
			}
			return mismatch == 0
		})
		if mismatch != 0 {
			t.Fatalf("cut %d: recovered store is missing twin triples", cut)
		}
		srv.Close()
	}
}

// TestRestartWithMaterializedInstance recovers the two-graph layout:
// base + materialized serving instance + views over the instance.
func TestRestartWithMaterializedInstance(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := durableServer(t, dir)
	loadBloggers(t, ts1, 120)
	schema, err := datagen.BloggerSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	var mr MaterializeResponse
	if status, body := postJSON(t, ts1.Client(), ts1.URL+"/materialize", schemaRequest(schema, true), &mr); status != http.StatusOK {
		t.Fatalf("/materialize: status %d body %s", status, body)
	}
	q := bloggerQueryRequest()
	queryRows(t, ts1, q) // register over the materialized instance
	var cp CheckpointResponse
	if status, body := postJSON(t, ts1.Client(), ts1.URL+"/snapshot", struct{}{}, &cp); status != http.StatusOK || cp.Views != 1 {
		t.Fatalf("/snapshot: status %d views %d body %s", status, cp.Views, body)
	}
	insertFacts(t, ts1, 0, 6) // delta-written to the instance + WAL
	wantRows, _ := queryRows(t, ts1, q)
	want := statsz(t, ts1)
	srv1.Close()
	ts1.Close()

	_, ts2 := durableServer(t, dir)
	got := statsz(t, ts2)
	if got.Instance.Triples != want.Instance.Triples || got.Base.Triples != want.Base.Triples {
		t.Fatalf("recovered base/inst %d/%d triples, want %d/%d",
			got.Base.Triples, got.Instance.Triples, want.Base.Triples, want.Instance.Triples)
	}
	gotRows, strat := queryRows(t, ts2, q)
	if strat != "cached" {
		t.Fatalf("post-restart strategy %s, want cached", strat)
	}
	if gotRows != wantRows {
		t.Fatalf("materialized-instance recovery rows differ:\n got %s\nwant %s", gotRows, wantRows)
	}
}
