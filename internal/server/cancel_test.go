package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"rdfcube/internal/rdf"
	"rdfcube/internal/store"
)

const starNS = "http://rdfcube.example.org/star#"

// starGraph builds an E11-style star instance: n subjects, each the hub
// of attribute triples a0..a2, plus one shared group node every subject
// links to. The cancellation tests fan a star join out through that
// group, which blows the intermediate result up to n^2 rows — long
// enough that a deadline always lands mid-evaluation.
func starGraph(n int) *store.Store {
	st := store.New()
	attr := func(k int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sa%d", starNS, k)) }
	group := rdf.NewIRI(starNS + "group")
	member := rdf.NewIRI(starNS + "member")
	hub := rdf.NewIRI(starNS + "g0")
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("%ss%d", starNS, i))
		for k := 0; k < 3; k++ {
			st.Add(rdf.NewTriple(subj, attr(k), rdf.NewIRI(fmt.Sprintf("%sv%d_%d", starNS, k, i))))
		}
		st.Add(rdf.NewTriple(subj, group, hub))
		st.Add(rdf.NewTriple(hub, member, subj))
	}
	return st
}

// slowStarQuery is a rooted star join whose fan-out through the shared
// group node scans ~n^2 rows (every root reaches every member).
func slowStarQuery(direct bool) *QueryRequest {
	return &QueryRequest{
		Classifier: "c(x, d) :- x s:a0 u, x s:group g, g s:member y, y s:a1 d",
		Measure:    "m(x, v) :- x s:a0 v",
		Agg:        "count",
		Prefixes:   map[string]string{"s": starNS},
		Direct:     direct,
	}
}

// fastStarQuery is the selective anchored version, used to prove the
// server still answers after cancellations.
func fastStarQuery() *QueryRequest {
	return &QueryRequest{
		Classifier: "c(x, u) :- x s:a0 u",
		Measure:    "m(x, v) :- x s:a1 v",
		Agg:        "count",
		Prefixes:   map[string]string{"s": starNS},
		Direct:     true,
	}
}

func queryHTTPRequest(t *testing.T, ctx context.Context, req *QueryRequest) *http.Request {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	return r.WithContext(ctx)
}

// TestQueryDeadlineReturns504 runs the long star join under a server
// query timeout far shorter than its evaluation: the handler must map
// the deadline to 504 and return promptly, on both the direct path and
// the registry path.
func TestQueryDeadlineReturns504(t *testing.T) {
	srv := New(starGraph(1500), Config{QueryTimeout: 3 * time.Millisecond})
	for _, direct := range []bool{true, false} {
		start := time.Now()
		w := httptest.NewRecorder()
		status, err := srv.handleQuery(w, queryHTTPRequest(t, context.Background(), slowStarQuery(direct)))
		if status != http.StatusGatewayTimeout {
			t.Fatalf("direct=%v: status = %d (err %v), want 504", direct, status, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("direct=%v: err = %v, want DeadlineExceeded", direct, err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("direct=%v: deadline query took %v to return", direct, el)
		}
	}
}

// TestQueryClientCancelReturns499 cancels the request context
// mid-evaluation, as a disconnecting client would: the handler must
// abandon the join cooperatively and report 499.
func TestQueryClientCancelReturns499(t *testing.T) {
	srv := New(starGraph(1500), Config{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	w := httptest.NewRecorder()
	status, err := srv.handleQuery(w, queryHTTPRequest(t, ctx, slowStarQuery(true)))
	if status != StatusClientClosedRequest {
		t.Fatalf("status = %d (err %v), want %d", status, err, StatusClientClosedRequest)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled query took %v to return", el)
	}
}

// TestQueryCancelNoGoroutineLeak fires a burst of client-side-timeout
// queries over real HTTP and verifies the goroutine count settles back
// to its baseline — a cancelled evaluation must not strand workers —
// and that the server still answers afterwards.
func TestQueryCancelNoGoroutineLeak(t *testing.T) {
	srv := New(starGraph(1500), Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// One warm-up round trip so the client pool's goroutines exist
	// before the baseline is taken.
	if st, _ := postJSON(t, ts.Client(), ts.URL+"/query", fastStarQuery(), &QueryResponse{}); st != http.StatusOK {
		t.Fatalf("warm-up query: status %d", st)
	}
	baseline := runtime.NumGoroutine()

	body, err := json.Marshal(slowStarQuery(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
			t.Fatalf("round %d: slow query finished under a 15ms client timeout", i)
		}
		cancel()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}

	var qr QueryResponse
	if st, body := postJSON(t, ts.Client(), ts.URL+"/query", fastStarQuery(), &qr); st != http.StatusOK {
		t.Fatalf("post-cancel query: status %d body %s", st, body)
	}
	if len(qr.Rows) == 0 {
		t.Fatal("post-cancel query returned no rows")
	}
}
