package server

// The crash matrix: every registered fault point is tripped against a
// live server under a mixed insert/query workload, the process is
// "crashed" (abandoned without a clean Close), and the recovered store
// must be byte-identical to an in-memory twin that applied exactly the
// acknowledged writes. This is the durability invariant measured from
// the outside: a 200 survives any crash window, a 503 never commits.

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/nt"
	"rdfcube/internal/persist"
	"rdfcube/internal/store"
)

// ntDump renders a store as sorted decoded N-Triples lines, so twin and
// recovered stores compare by content even though their term IDs differ.
func ntDump(t *testing.T, g *store.Store) string {
	t.Helper()
	var lines []string
	g.ForEach(store.Pattern{}, func(tr store.IDTriple) bool {
		s, okS := g.Dict().Decode(tr.S)
		p, okP := g.Dict().Decode(tr.P)
		o, okO := g.Dict().Decode(tr.O)
		if !okS || !okP || !okO {
			t.Fatalf("dangling term ID in triple %+v", tr)
		}
		lines = append(lines, fmt.Sprintf("%v\t%v\t%v", s, p, o))
		return true
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// matrixHarness drives the workload and mirrors every acknowledged
// insert into the in-memory twin.
type matrixHarness struct {
	t    *testing.T
	ts   *httptest.Server
	twin *store.Store
}

// insert posts one batch of blogger facts and returns the HTTP status.
// Only a 200 reaches the twin: an unacknowledged write must not count.
func (h *matrixHarness) insert(round int) int {
	h.t.Helper()
	resp, err := h.ts.Client().Post(h.ts.URL+"/insert", "text/plain", insertBody(h.t, round, 3))
	if err != nil {
		h.t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		triples, err := nt.NewReader(bytes.NewReader(insertBody(h.t, round, 3).Bytes())).ReadAll()
		if err != nil {
			h.t.Fatal(err)
		}
		for _, tr := range triples {
			h.twin.Add(tr)
		}
	}
	return resp.StatusCode
}

func (h *matrixHarness) get(path string) int {
	h.t.Helper()
	resp, err := h.ts.Client().Get(h.ts.URL + path)
	if err != nil {
		h.t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func (h *matrixHarness) checkpoint() int {
	h.t.Helper()
	resp, err := h.ts.Client().Post(h.ts.URL+"/snapshot", "application/json", nil)
	if err != nil {
		h.t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// verifyRecovered reopens dir with a clean filesystem and compares the
// recovered base graph to the twin, content-identical.
func verifyRecovered(t *testing.T, dir string, twin *store.Store) {
	t.Helper()
	srv, err := Open(nil, Config{DataDir: dir})
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	defer srv.Close()
	if srv.base.Len() != twin.Len() {
		t.Fatalf("recovered %d triples, twin has %d", srv.base.Len(), twin.Len())
	}
	if got, want := ntDump(t, srv.base), ntDump(t, twin); got != want {
		t.Fatalf("recovered store diverges from acknowledged twin:\n--- recovered ---\n%s\n--- twin ---\n%s", got, want)
	}
}

// TestCrashMatrix trips every registered fault point mid-workload and
// verifies recovery lands on exactly the acknowledged writes.
func TestCrashMatrix(t *testing.T) {
	for name, spec := range faultfs.CrashMatrixPoints() {
		t.Run(name, func(t *testing.T) {
			if name == "recovery-corrupt" {
				testRecoveryCorruption(t, spec)
				return
			}
			if strings.HasPrefix(name, "spill-") {
				testSpillTorn(t, spec)
				return
			}
			dir := t.TempDir()
			in := faultfs.NewInjector(nil)
			// RetryMin of an hour pins the server in degraded mode for
			// the rest of the subtest: the re-arm checkpoint must never
			// run, or it would persist in-memory state the client was
			// never acknowledged for.
			srv, err := Open(nil, Config{DataDir: dir, FS: in, RetryMin: time.Hour, RetryMax: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close() // srv deliberately not Closed: the crash
			h := &matrixHarness{t: t, ts: ts, twin: store.New()}

			// Acknowledged phase: inserts plus a query, so the registry
			// holds a view and checkpoints write a non-trivial views.snap.
			for round := 0; round < 3; round++ {
				if st := h.insert(round); st != http.StatusOK {
					t.Fatalf("pre-fault insert round %d: status %d", round, st)
				}
			}
			if rows, _ := queryRows(t, ts, bloggerQueryRequest()); rows == "" {
				t.Fatal("pre-fault query returned nothing")
			}
			if st := h.checkpoint(); st != http.StatusOK {
				t.Fatalf("pre-fault checkpoint: status %d", st)
			}

			// Trip the fault: WAL-class points fire on the next logged
			// write, checkpoint-class points on the next checkpoint.
			in.ArmPlan(faultfs.MustParsePlan(spec))
			if strings.HasPrefix(name, "wal-") {
				if st := h.insert(3); st != http.StatusServiceUnavailable {
					t.Fatalf("faulted insert: status %d, want 503", st)
				}
			} else {
				if st := h.checkpoint(); st != http.StatusServiceUnavailable {
					t.Fatalf("faulted checkpoint: status %d, want 503", st)
				}
			}
			if in.Fails() == 0 {
				t.Fatal("fault point never fired")
			}

			// Degraded contract: writes refused, reads and probes alive.
			if st := h.insert(4); st != http.StatusServiceUnavailable {
				t.Fatalf("degraded insert: status %d, want 503", st)
			}
			if st := h.get("/readyz"); st != http.StatusServiceUnavailable {
				t.Fatalf("degraded /readyz: status %d, want 503", st)
			}
			if st := h.get("/healthz"); st != http.StatusOK {
				t.Fatalf("degraded /healthz: status %d, want 200", st)
			}
			if rows, _ := queryRows(t, ts, bloggerQueryRequest()); rows == "" {
				t.Fatal("degraded query returned nothing")
			}

			// Crash (abandon) and recover on a clean filesystem.
			ts.Close()
			verifyRecovered(t, dir, h.twin)
		})
	}
}

// testRecoveryCorruption covers the read-corruption point: a clean
// shutdown whose snapshot is bit-flipped on the next startup must fail
// recovery with a typed error naming the artifact — never come up with
// silently wrong data — and recover cleanly once the corruption clears.
func testRecoveryCorruption(t *testing.T, spec string) {
	dir := t.TempDir()
	srv, err := Open(nil, Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	h := &matrixHarness{t: t, ts: ts, twin: store.New()}
	for round := 0; round < 3; round++ {
		if st := h.insert(round); st != http.StatusOK {
			t.Fatalf("insert round %d: status %d", round, st)
		}
	}
	if st := h.checkpoint(); st != http.StatusOK {
		t.Fatalf("checkpoint: status %d", st)
	}
	ts.Close()
	srv.Close()

	in := faultfs.NewInjector(nil)
	in.ArmPlan(faultfs.MustParsePlan(spec))
	_, err = Open(nil, Config{DataDir: dir, FS: in})
	if err == nil {
		t.Fatal("recovery over a corrupted snapshot succeeded")
	}
	var ae *persist.ArtifactError
	if !errors.As(err, &ae) {
		t.Fatalf("recovery error %v is not an ArtifactError", err)
	}
	if ae.Kind != "snapshot" {
		t.Fatalf("ArtifactError kind %q (path %q), want snapshot", ae.Kind, ae.Path)
	}
	if in.Fails() == 0 {
		t.Fatal("corruption fault never fired")
	}

	verifyRecovered(t, dir, h.twin)
}

// testSpillTorn covers the delta-spill fault points: a torn spill-run
// write (short write, or the rename that would publish it) must NOT
// fail the insert — the triples were fsynced to the WAL before the
// spill ran, and the run file is transient serving state — and the
// store must degrade to serving the overlay from memory, stay
// consistent, and recover exactly the acknowledged writes after a
// crash (open-time cleanup removes whatever the torn spill left).
func testSpillTorn(t *testing.T, spec string) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	srv, err := Open(nil, Config{
		DataDir: dir, FS: in,
		Mapped:         true,
		SpillThreshold: 10, // one 15-triple insert round crosses it
		RetryMin:       time.Hour, RetryMax: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close() // srv deliberately not Closed: the crash
	h := &matrixHarness{t: t, ts: ts, twin: store.New()}

	// Armed before the first insert: the very first spill tears.
	in.ArmPlan(faultfs.MustParsePlan(spec))
	if st := h.insert(0); st != http.StatusOK {
		t.Fatalf("insert over torn spill: status %d, want 200 (spill is not a durability artifact)", st)
	}
	if in.Fails() == 0 {
		t.Fatal("spill fault never fired")
	}
	if _, _, _, lastErr := srv.base.SpillStats(); lastErr == nil {
		t.Fatal("torn spill left no recorded spill error")
	}

	// Degraded-to-memory contract: writes and reads keep working.
	for round := 1; round < 3; round++ {
		if st := h.insert(round); st != http.StatusOK {
			t.Fatalf("post-fault insert round %d: status %d", round, st)
		}
	}
	if rows, _ := queryRows(t, ts, bloggerQueryRequest()); rows == "" {
		t.Fatal("post-fault query returned nothing")
	}

	// Crash (abandon) and recover on a clean filesystem: the WAL holds
	// every acknowledged triple; torn spill leftovers are swept at open.
	ts.Close()
	verifyRecovered(t, dir, h.twin)
}

// TestDegradedModeRecovers is the end-to-end degraded-mode scenario: a
// transient fsync failure flips the server read-only, probes and stats
// reflect it, and the backoff retry re-arms durability without operator
// action — after which writes are accepted again.
func TestDegradedModeRecovers(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	srv, err := Open(nil, Config{DataDir: dir, FS: in, RetryMin: 25 * time.Millisecond, RetryMax: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	h := &matrixHarness{t: t, ts: ts, twin: store.New()}

	if st := h.insert(0); st != http.StatusOK {
		t.Fatalf("healthy insert: status %d", st)
	}

	// One transient fsync failure on the WAL.
	in.Arm(faultfs.Fault{Op: faultfs.OpSync, Path: ".wal", Count: 1})
	resp, err := ts.Client().Post(ts.URL+"/insert", "text/plain", insertBody(t, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted insert: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}

	stats := statsz(t, ts)
	if stats.Durability == nil || !stats.Durability.Degraded {
		t.Fatalf("statsz does not report degraded mode: %+v", stats.Durability)
	}
	if stats.Durability.DegradedReason == "" || stats.Durability.LastError == "" {
		t.Fatalf("degraded statsz missing reason/last error: %+v", stats.Durability)
	}
	if stats.Durability.WALAppendErrors == 0 {
		t.Fatalf("statsz WAL append errors = 0 after a WAL fault")
	}
	if st := h.get("/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz: status %d, want 503", st)
	}
	if st := h.get("/healthz"); st != http.StatusOK {
		t.Fatalf("degraded /healthz: status %d, want 200", st)
	}
	if rows, _ := queryRows(t, ts, bloggerQueryRequest()); rows == "" {
		t.Fatal("degraded query returned nothing")
	}

	// The fault was transient (Count: 1): the backoff retry's checkpoint
	// succeeds and re-opens the write path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := statsz(t, ts); s.Durability != nil && !s.Durability.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never left degraded mode")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := h.get("/readyz"); st != http.StatusOK {
		t.Fatalf("recovered /readyz: status %d, want 200", st)
	}
	if st := h.insert(2); st != http.StatusOK {
		t.Fatalf("post-recovery insert: status %d, want 200", st)
	}
}
