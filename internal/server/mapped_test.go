package server

// Bigger-than-RAM serving tests: the -mmap server must recover a mapped
// base from its data-dir, answer byte-identically to the heap path,
// spill an oversized delta overlay to disk, fold and remap under
// concurrent readers, and coalesce concurrent WAL appends into shared
// fsyncs — all without changing a single answer.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rdfcube/internal/datagen"
)

// mappedServer boots a durable server in mapped mode over dir.
func mappedServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	cfg.Mapped = true
	srv, err := Open(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestMappedServerLifecycle is the mapped acceptance scenario: load →
// restart into a mapped base → answers identical to the heap epoch →
// inserts past the spill threshold spill the overlay to disk → another
// restart recovers everything (spill runs are transient; the WAL is the
// durable copy).
func TestMappedServerLifecycle(t *testing.T) {
	dir := t.TempDir()
	q := bloggerQueryRequest()

	// Epoch 1: heap-durable server seeds the data-dir.
	_, ts1 := durableServer(t, dir)
	loadBloggers(t, ts1, 120)
	insertFacts(t, ts1, 0, 3)
	heapRows, _ := queryRows(t, ts1, q)
	heapStats := statsz(t, ts1)
	if heapStats.Mmap != nil {
		t.Fatalf("heap server reports mmap stats: %+v", heapStats.Mmap)
	}
	ts1.Close()

	// Epoch 2: mapped boot migrates the v2 snapshot to the v3 mapped
	// layout and serves the base zero-copy.
	srv2, ts2 := mappedServer(t, dir, Config{
		SpillThreshold:   40,
		CompactThreshold: 1 << 20, // keep compaction out of the spill assertion
	})
	if !srv2.base.Mapped() {
		t.Fatal("base not mapped after -mmap recovery")
	}
	mappedRows, _ := queryRows(t, ts2, q)
	if mappedRows != heapRows {
		t.Fatalf("mapped rows diverge from heap rows:\n heap  %s\n mapped %s", heapRows, mappedRows)
	}
	st := statsz(t, ts2)
	if st.Mmap == nil || st.Mmap.MappedBytes == 0 || st.Mmap.Path == "" {
		t.Fatalf("mapped server /statsz mmap block: %+v", st.Mmap)
	}

	// Push the delta overlay past the spill threshold: 3 bloggers stay
	// in memory (15 triples), 9 more cross 40 and spill.
	insertFacts(t, ts2, 100, 12)
	spilledRows, _ := queryRows(t, ts2, q)
	st = statsz(t, ts2)
	if st.Mmap.Spills == 0 {
		t.Fatalf("no spill after %d delta triples (threshold 40): %+v",
			st.Instance.DeltaTriples, st.Mmap)
	}
	if st.Mmap.SpillRunTriples == 0 {
		t.Fatalf("spill counted but no run triples: %+v", st.Mmap)
	}
	ts2.Close()
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	// Epoch 3: recovery replays the WAL over the mapped snapshot — the
	// spilled rows come back even though spill runs are transient.
	srv3, ts3 := mappedServer(t, dir, Config{SpillThreshold: 40})
	if !srv3.base.Mapped() {
		t.Fatal("base not mapped after second recovery")
	}
	recoveredRows, _ := queryRows(t, ts3, q)
	if recoveredRows != spilledRows {
		t.Fatalf("recovered rows diverge:\n before %s\n after  %s", spilledRows, recoveredRows)
	}
}

// TestMappedCompactionRemap drives the delta overlay past the compact
// threshold on a mapped durable base and checks the background fold
// lands: a new v3 snapshot is written, the mapping swaps, the overlay
// drains — and answers never change.
func TestMappedCompactionRemap(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := durableServer(t, dir)
	loadBloggers(t, ts1, 80)
	ts1.Close()

	srv, ts := mappedServer(t, dir, Config{
		CompactThreshold:     30,
		BackgroundCompaction: true,
	})
	q := bloggerQueryRequest()
	before, _ := queryRows(t, ts, q)
	insertFacts(t, ts, 200, 10) // 50 triples: crosses the threshold
	after, _ := queryRows(t, ts, q)
	if before == after {
		t.Fatal("inserts did not change the aggregate (test is vacuous)")
	}

	// The fold runs in a background goroutine; wait for the overlay to
	// drain into a new mapped base.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := statsz(t, ts)
		if st.Base.DeltaTriples == 0 && st.Base.BaseEpoch >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction never folded: %+v", st.Base)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !srv.base.Mapped() {
		t.Fatal("base lost its mapping across compaction")
	}
	folded, _ := queryRows(t, ts, q)
	if folded != after {
		t.Fatalf("fold changed answers:\n before %s\n after  %s", after, folded)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from the folded snapshot agrees too.
	_, ts2 := mappedServer(t, dir, Config{})
	recovered, _ := queryRows(t, ts2, q)
	if recovered != after {
		t.Fatalf("post-fold recovery diverges:\n want %s\n got  %s", after, recovered)
	}
}

// TestMappedRemapUnderConcurrentReaders hammers queries while writes
// force repeated mapped compactions — the remap swap must never tear a
// reader (run with -race).
func TestMappedRemapUnderConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := durableServer(t, dir)
	loadBloggers(t, ts1, 60)
	ts1.Close()

	_, ts := mappedServer(t, dir, Config{
		CompactThreshold:     25,
		BackgroundCompaction: true,
	})
	q := bloggerQueryRequest()

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var qr QueryResponse
				status, body := postJSONE(ts.Client(), ts.URL+"/query", q, &qr)
				if status != http.StatusOK {
					errs <- fmt.Errorf("query status %d: %s", status, body)
					return
				}
			}
		}()
	}
	// Writer: every round of inserts crosses the compact threshold, so
	// the readers race several remap cycles.
	for i := 0; i < 8; i++ {
		if err := insertFactsE(ts, 1000+i*10, 10); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestServerWALGroupCommit runs many concurrent inserters against a
// group-commit WAL and checks the fsyncs coalesced, the accounting adds
// up, and recovery sees every acknowledged batch.
func TestServerWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	srv, ts := func() (*Server, *httptest.Server) {
		srv, err := Open(nil, Config{DataDir: dir, WALGroupCommit: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, ts
	}()
	loadBloggers(t, ts, 40)

	const writers, rounds = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := insertFactsE(ts, 5000+wi*1000+r*10, 2); err != nil {
					errs <- err
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	st := statsz(t, ts)
	d := st.Durability
	if d == nil {
		t.Fatal("no durability stats")
	}
	if d.WALGroupSyncs == 0 {
		t.Fatal("group commit armed but zero group syncs")
	}
	// Every durable batch was covered by exactly one fsync: either its
	// own (syncs) or another writer's (coalesced).
	if d.WALGroupSyncs+d.WALGroupCoalesced != d.WALBatches {
		t.Fatalf("accounting: syncs %d + coalesced %d != batches %d",
			d.WALGroupSyncs, d.WALGroupCoalesced, d.WALBatches)
	}
	q := bloggerQueryRequest()
	rows, _ := queryRows(t, ts, q)
	wantTriples := st.Base.Triples

	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_, ts2 := durableServer(t, dir)
	st2 := statsz(t, ts2)
	if st2.Base.Triples != wantTriples {
		t.Fatalf("recovered %d triples, want %d", st2.Base.Triples, wantTriples)
	}
	if got, _ := queryRows(t, ts2, q); got != rows {
		t.Fatalf("group-commit recovery diverges:\n want %s\n got  %s", rows, got)
	}
}

// postJSONE is postJSON for goroutines: it returns errors through the
// status/body instead of calling t.Fatal.
func postJSONE(client *http.Client, url string, body any, out any) (int, string) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err.Error()
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err.Error()
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			return 0, err.Error()
		}
	}
	return resp.StatusCode, string(data)
}

// insertFactsE is insertFacts for goroutines: it returns the error
// instead of calling t.Fatal.
func insertFactsE(ts *httptest.Server, start, count int) error {
	var buf bytes.Buffer
	for i := start; i < start+count; i++ {
		fmt.Fprintf(&buf, "<%vwu%d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <%vBlogger> .\n", datagen.NS, i, datagen.NS)
		fmt.Fprintf(&buf, "<%vwu%d> <%vhasAge> \"%d\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n", datagen.NS, i, datagen.NS, 20+i%7)
		fmt.Fprintf(&buf, "<%vwu%d> <%vlivesIn> <%vcity%d> .\n", datagen.NS, i, datagen.NS, datagen.NS, i%3)
		fmt.Fprintf(&buf, "<%vwu%d> <%vwrotePost> <%vwp%d> .\n", datagen.NS, i, datagen.NS, datagen.NS, i)
		fmt.Fprintf(&buf, "<%vwp%d> <%vpostedOn> <%vsite%d> .\n", datagen.NS, i, datagen.NS, datagen.NS, i%4)
	}
	resp, err := ts.Client().Post(ts.URL+"/insert", "text/plain", &buf)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/insert: status %d", resp.StatusCode)
	}
	return nil
}
