package server

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestPanicRecovery: a panicking handler must yield a 500 — not kill the
// process — and be counted in statsz.
func TestPanicRecovery(t *testing.T) {
	srv := New(nil, Config{})
	boom := srv.instrument("/boom", func(w http.ResponseWriter, r *http.Request) (int, error) {
		panic("boom")
	})
	req := httptest.NewRequest(http.MethodGet, "/boom", nil)
	w := httptest.NewRecorder()
	boom.ServeHTTP(w, req)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", w.Code)
	}
	if got := srv.met.panics.Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	// The server keeps serving.
	w2 := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w2.Code != http.StatusOK {
		t.Fatalf("/healthz after panic: status %d", w2.Code)
	}
}

// TestAdmissionControl: with one in-flight slot held, queued requests
// past the admission timeout are shed with 503 + Retry-After, while
// probe endpoints stay exempt.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	srv := New(nil, Config{MaxInFlight: 1, QueueTimeout: 30 * time.Millisecond})
	slow := srv.instrument("/slow", func(w http.ResponseWriter, r *http.Request) (int, error) {
		<-release
		w.WriteHeader(http.StatusOK)
		return http.StatusOK, nil
	})
	mux := http.NewServeMux()
	mux.Handle("/slow", slow)
	mux.Handle("/healthz", srv.instrument("/healthz", srv.handleHealthz))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	released := false
	t.Cleanup(func() {
		if !released {
			close(release)
		}
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Get(ts.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait until the slow request holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never acquired the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 missing Retry-After")
	}
	if srv.met.shed.Value() == 0 {
		t.Fatal("shed counter not incremented")
	}

	// Probes bypass admission even while the pool is saturated.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz under saturation: status %d, want 200", hresp.StatusCode)
	}

	released = true
	close(release)
	wg.Wait()
}
