package server

// Observability wiring: the server's obs.Registry (GET /metrics), the
// per-route request collectors that replaced the old mutex-guarded
// endpoint map (the request path now touches only striped atomics), the
// query tracer (?explain=analyze, the slow-query log, GET
// /debug/traces/last), and structured logging.

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rdfcube/internal/obs"
	"rdfcube/internal/obs/workload"
	"rdfcube/internal/persist"
	"rdfcube/internal/store"
	"rdfcube/internal/viewreg"
)

// serverMetrics holds the server-level collectors. Everything is
// registered once in New; the WAL metrics are re-armed onto fresh WAL
// handles after every checkpoint swap (obs registration is idempotent,
// so the series survive the swaps).
type serverMetrics struct {
	shed          *obs.Counter
	panics        *obs.Counter
	bgCompactions *obs.Counter
	jsonErrors    *obs.Counter

	queries  map[viewreg.Strategy]*obs.Histogram
	querySlo *obs.Counter // slow queries past the armed threshold

	checkpoints      *obs.Counter
	checkpointErrors *obs.Counter
	checkpointSec    *obs.Histogram
	wal              *persist.WALMetrics
}

func newServerMetrics(m *obs.Registry) serverMetrics {
	sm := serverMetrics{
		shed: m.Counter("rdfcube_requests_shed_total",
			"Requests refused by admission control (queue timeout past the in-flight cap)."),
		panics: m.Counter("rdfcube_handler_panics_total",
			"Handler panics contained by the recovery middleware."),
		bgCompactions: m.Counter("rdfcube_bg_compactions_total",
			"Delta overlays folded into a rebuilt frozen base off the write path."),
		jsonErrors: m.Counter("rdfcube_response_encode_errors_total",
			"JSON response bodies that failed to encode or write mid-stream."),
		querySlo: m.Counter("rdfcube_slow_queries_total",
			"Queries that crossed the slow-query threshold."),
		checkpoints: m.Counter("rdfcube_checkpoints_total",
			"Full durable checkpoints completed."),
		checkpointErrors: m.Counter("rdfcube_checkpoint_errors_total",
			"Failed checkpoints (including background-compaction checkpoints)."),
		checkpointSec: m.Histogram("rdfcube_checkpoint_seconds",
			"Latency of a full durable checkpoint."),
		queries: make(map[viewreg.Strategy]*obs.Histogram, len(viewreg.Strategies)),
		wal: &persist.WALMetrics{
			AppendSeconds: m.Histogram("rdfcube_wal_append_seconds",
				"Full WAL append latency per batch (encode, write, fsync)."),
			SyncSeconds: m.Histogram("rdfcube_wal_sync_seconds",
				"The fsync portion of a WAL append."),
			AppendedBytes: m.Counter("rdfcube_wal_appended_bytes_total",
				"Record bytes durably appended to the write-ahead logs."),
			AppendErrors: m.Counter("rdfcube_wal_append_errors_total",
				"WAL appends that failed (rolled back or log marked broken)."),
			GroupSyncs: m.Counter("rdfcube_wal_group_commit_syncs_total",
				"Fsyncs issued by WAL group-commit leaders (one may cover many batches)."),
			GroupCoalesced: m.Counter("rdfcube_wal_group_commit_coalesced_total",
				"WAL batches made durable by another writer's fsync."),
		},
	}
	for _, st := range viewreg.Strategies {
		sm.queries[st] = m.Histogram("rdfcube_query_seconds",
			"Query evaluation latency, by answering strategy.",
			"strategy", string(st))
	}
	return sm
}

// endpointMetrics is one route's request collectors plus the last
// observed latency (an atomic, for /statsz's last_ns field — the only
// per-endpoint number the histogram cannot reproduce). No locks: the
// old endpointMetrics map updated five int64 fields under a global
// mutex on every request.
type endpointMetrics struct {
	count    *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
	inFlight *obs.Gauge
	lastNs   atomic.Int64
}

// endpoint returns (registering on first use) the collectors for route.
// Called at handler wiring time, never on the request path.
func (s *Server) endpoint(route string) *endpointMetrics {
	s.epMu.Lock()
	defer s.epMu.Unlock()
	m, ok := s.endpoints[route]
	if !ok {
		m = &endpointMetrics{
			count: s.obs.Counter("rdfcube_http_requests_total",
				"Requests served, by route.", "route", route),
			errors: s.obs.Counter("rdfcube_http_request_errors_total",
				"Requests that ended in an error, by route.", "route", route),
			latency: s.obs.Histogram("rdfcube_http_request_seconds",
				"Request latency, by route.", "route", route),
			inFlight: s.obs.Gauge("rdfcube_http_in_flight",
				"Requests currently being handled, by route.", "route", route),
		}
		s.endpoints[route] = m
	}
	return m
}

// wireGauges registers the scrape-time gauges reading live server
// state. Registered once in New; every callback reads through the
// locked fields, so the gauges follow instance/registry swaps and a
// scrape never sees a half-swapped instance.
func (s *Server) wireGauges() {
	s.obs.GaugeFunc("rdfcube_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.obs.GaugeFunc("rdfcube_degraded",
		"1 while the server is in degraded read-only mode, else 0.",
		func() float64 {
			if active, _ := s.Degraded(); active {
				return 1
			}
			return 0
		})
	s.obs.GaugeFunc("rdfcube_viewreg_entries",
		"Materialized views currently registered.",
		func() float64 { return float64(s.Registry().Entries()) })
	s.obs.GaugeFunc("rdfcube_viewreg_bytes",
		"Estimated byte footprint of the registered views.",
		func() float64 { return float64(s.Registry().Bytes()) })
	graphGauge := func(graph string, read func() float64) {
		s.obs.GaugeFunc("rdfcube_graph_triples",
			"Triples in the graph.", read, "graph", graph)
	}
	graphGauge("base", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(s.base.Len())
	})
	graphGauge("instance", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(s.inst.Len())
	})
	s.obs.GaugeFunc("rdfcube_graph_delta_triples",
		"Triples pending in the instance's delta overlay.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.inst.DeltaLen())
		}, "graph", "instance")
	// The mmap read path (Config.Mapped). Like the WAL gauges below,
	// registered unconditionally and reading 0 when the base graph is
	// not mapped — the mapping is installed after New returns.
	mmapGauge := func(name, help string, read func(store.MappedStats, *store.Store) float64) {
		s.obs.GaugeFunc(name, help, func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			ms, ok := s.base.MappedStats()
			if !ok {
				return 0
			}
			return read(ms, s.base)
		})
	}
	mmapGauge("rdfcube_mmap_mapped_bytes",
		"Bytes of base snapshot currently mmap'd (0 when not in mapped mode).",
		func(ms store.MappedStats, _ *store.Store) float64 { return float64(ms.MappedBytes) })
	mmapGauge("rdfcube_mmap_block_cache_hits_total",
		"Column block-cache hits on the mapped snapshot.",
		func(ms store.MappedStats, _ *store.Store) float64 { return float64(ms.BlockCacheHits) })
	mmapGauge("rdfcube_mmap_block_cache_misses_total",
		"Column block-cache misses (each decodes a block from the mapping).",
		func(ms store.MappedStats, _ *store.Store) float64 { return float64(ms.BlockCacheMisses) })
	mmapGauge("rdfcube_mmap_term_cache_hits_total",
		"Dictionary term block-cache hits on the mapped snapshot.",
		func(ms store.MappedStats, _ *store.Store) float64 { return float64(ms.TermCacheHits) })
	mmapGauge("rdfcube_mmap_term_cache_misses_total",
		"Dictionary term block-cache misses.",
		func(ms store.MappedStats, _ *store.Store) float64 { return float64(ms.TermCacheMisses) })
	mmapGauge("rdfcube_mmap_decode_stall_seconds_total",
		"Wall time spent decoding column blocks on cache misses (page-in stall proxy).",
		func(ms store.MappedStats, _ *store.Store) float64 { return float64(ms.DecodeStallNanos) / 1e9 })
	mmapGauge("rdfcube_mmap_spill_run_triples",
		"Delta triples resident in the on-disk spill run.",
		func(_ store.MappedStats, g *store.Store) float64 {
			n, _, _, _ := g.SpillStats()
			return float64(n)
		})
	mmapGauge("rdfcube_mmap_spills_total",
		"Delta spill runs written since startup.",
		func(_ store.MappedStats, g *store.Store) float64 {
			_, _, spills, _ := g.SpillStats()
			return float64(spills)
		})
	// Registered unconditionally: s.dur is armed by Open *after* New
	// returns, so gating on it here would skip durable servers. Reads 0
	// while (or forever, when) the server is purely in-memory.
	s.obs.GaugeFunc("rdfcube_wal_bytes",
		"On-disk size of the write-ahead logs (0 when not durable).",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			if s.dur == nil {
				return 0
			}
			var b int64
			if s.dur.baseWAL != nil {
				b += s.dur.baseWAL.Bytes()
			}
			if s.dur.instWAL != nil {
				b += s.dur.instWAL.Bytes()
			}
			return float64(b)
		})
}

// slog returns the structured logger (Config.Logger or the process
// default).
func (s *Server) slog() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return slog.Default()
}

// Metrics exposes the server's metric registry (tests, embedding).
func (s *Server) Metrics() *obs.Registry { return s.obs }

// Tracer exposes the query tracer (tests, embedding).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// artifactAttrs renders a durability error's typed detail as slog
// attributes: persist.ArtifactError carries which file broke, what kind
// of artifact it is, and the byte offset of the damage.
func artifactAttrs(err error) []any {
	attrs := []any{slog.String("err", err.Error())}
	var ae *persist.ArtifactError
	if errors.As(err, &ae) {
		attrs = append(attrs,
			slog.String("artifact_kind", ae.Kind),
			slog.String("artifact_file", ae.Path),
			slog.Int64("artifact_offset", ae.Offset))
	}
	return attrs
}

// writeJSON renders v as the response body. Encode/write failures used
// to vanish; now they are counted and logged (mid-stream failures
// cannot be reported to the client — the headers are gone).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	s.writeJSONT(w, status, v, nil)
}

// writeJSONT is writeJSON carrying the request's trace, so an encode
// failure of a traced query logs with its trace ID.
func (s *Server) writeJSONT(w http.ResponseWriter, status int, v any, tr *obs.Trace) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.met.jsonErrors.Inc()
		attrs := []any{slog.String("err", err.Error()), slog.Int("status", status)}
		if tr != nil {
			attrs = append(attrs, slog.String("trace_id", tr.ID))
		}
		s.slog().Warn("response encode failed", attrs...)
	}
}

// handleMetrics serves the Prometheus text exposition of every
// registered metric.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) (int, error) {
	w.Header().Set("Content-Type", obs.ContentType)
	if err := s.obs.WritePrometheus(w); err != nil {
		return 0, err // mid-stream: headers are out, just count the error
	}
	return http.StatusOK, nil
}

// handleTraces serves the most recently finished traces, newest first
// (?n= bounds the count; default the whole ring).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) (int, error) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		n, _ = strconv.Atoi(v)
	}
	traces := s.tracer.Last(n)
	if traces == nil {
		traces = []*obs.TraceDump{}
	}
	s.writeJSON(w, http.StatusOK, traces)
	return http.StatusOK, nil
}

// handleWorkload serves the workload profiler's snapshot: every tracked
// query shape (canonical fingerprint, call counts by strategy,
// accumulated cost, wall-time quantiles) plus the top-K shapes by total
// cost from the Space-Saving sketch.
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) (int, error) {
	s.writeJSON(w, http.StatusOK, s.workload.Snapshot())
	return http.StatusOK, nil
}

// Workload exposes the workload profiler (tests, embedding).
func (s *Server) Workload() *workload.Registry { return s.workload }
