package server

// Wire types of the HTTP/JSON API, and their translation to the core
// query model. Queries travel in the paper's datalog surface syntax;
// Σ restrictions and OLAP operation values as constant-term strings
// (see sparql.ParseTerm).

import (
	"fmt"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/ans"
	"rdfcube/internal/core"
	"rdfcube/internal/dict"
	"rdfcube/internal/obs"
	"rdfcube/internal/obs/workload"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/viewreg"
)

// QueryRequest submits an analytical query, optionally transformed by a
// sequence of OLAP operations (applied in order to the base query).
type QueryRequest struct {
	// Classifier and Measure are datalog-syntax BGP queries, e.g.
	// "c(x, age) :- x rdf:type :Blogger, x :hasAge age".
	Classifier string `json:"classifier"`
	Measure    string `json:"measure"`
	// Agg names the aggregation function: count, sum, avg, min, max,
	// countdistinct.
	Agg string `json:"agg"`
	// Sigma restricts dimensions to value sets (extended AnQ), values in
	// constant-term syntax.
	Sigma map[string][]string `json:"sigma,omitempty"`
	// Prefixes extends the default rdf/rdfs/xsd prefix table for this
	// request.
	Prefixes map[string]string `json:"prefixes,omitempty"`
	// Ops transforms the base query before answering.
	Ops []OpSpec `json:"ops,omitempty"`
	// Direct bypasses the view registry and evaluates from the instance
	// (differential testing, benchmarking). Direct answers are not
	// registered and do not touch strategy counters.
	Direct bool `json:"direct,omitempty"`
}

// OpSpec is one OLAP operation application.
type OpSpec struct {
	// Op is slice, dice, drillout or drillin.
	Op string `json:"op"`
	// Dim names the dimension for slice (existing) or drillin (new).
	Dim string `json:"dim,omitempty"`
	// Value is the slice value (constant-term syntax).
	Value string `json:"value,omitempty"`
	// Restrictions maps dimensions to allowed value sets for dice.
	Restrictions map[string][]string `json:"restrictions,omitempty"`
	// Dims lists the dimensions a drillout removes.
	Dims []string `json:"dims,omitempty"`
}

// QueryResponse carries the answered cube. Rows are sorted
// lexicographically and rendered with terms in N-Triples syntax, so two
// equal cubes serialize byte-identically.
type QueryResponse struct {
	Strategy  string     `json:"strategy"`
	Cols      []string   `json:"cols"`
	Rows      [][]string `json:"rows"`
	Cells     int        `json:"cells"`
	ElapsedNs int64      `json:"elapsed_ns"`
	// TraceID, Explain and Cost are set by ?explain=analyze: the
	// request's finished span tree (per-operator timings, rows, seeks)
	// and its exact resource accounting. The result rows above are
	// unaffected by explaining; the same cost numbers travel on every
	// response — explained or not — in the X-RDFCube-Cost header.
	TraceID string            `json:"trace_id,omitempty"`
	Explain *obs.SpanDump     `json:"explain,omitempty"`
	Cost    *obs.CostSnapshot `json:"cost,omitempty"`
}

// LoadResponse reports a data load.
type LoadResponse struct {
	Added   int  `json:"added"`
	Triples int  `json:"triples"`
	Frozen  bool `json:"frozen"`
}

// InsertResponse reports a delta write. Maintained/Invalidated describe
// what the write notification did to the registered views so clients
// can observe the maintenance economy per request.
type InsertResponse struct {
	Added int `json:"added"`
	// Triples is the target graph's size after the write.
	Triples int `json:"triples"`
	// Delta is the size of the store's delta overlay (0 right after a
	// compaction or on an unfrozen graph).
	Delta int `json:"delta"`
	// Frozen reports whether the sorted base survived the write (it does
	// unless the write crossed the compaction threshold, which rebuilds
	// it — still frozen — or the graph was never frozen).
	Frozen bool `json:"frozen"`
	// Maintained and Invalidated are the registry-wide counter deltas
	// caused by this write's notification.
	Maintained  int64 `json:"maintained"`
	Invalidated int64 `json:"invalidated"`
}

// SchemaRequest declares an analytical schema to materialize over the
// base graph. The serving instance becomes the materialization and the
// view registry is reset.
type SchemaRequest struct {
	Name     string            `json:"name,omitempty"`
	Prefixes map[string]string `json:"prefixes,omitempty"`
	// Saturate applies RDFS entailment to the base graph first.
	Saturate bool         `json:"saturate,omitempty"`
	Nodes    []SchemaNode `json:"nodes"`
	Edges    []SchemaEdge `json:"edges"`
}

// SchemaNode declares an analysis class and its defining unary query.
type SchemaNode struct {
	Class string `json:"class"`
	Query string `json:"query"`
}

// SchemaEdge declares an analysis property, its endpoints, and its
// defining binary query.
type SchemaEdge struct {
	Property string `json:"property"`
	From     string `json:"from,omitempty"`
	To       string `json:"to,omitempty"`
	Query    string `json:"query"`
}

// MaterializeResponse reports a schema materialization.
type MaterializeResponse struct {
	Name            string `json:"name,omitempty"`
	InstanceTriples int    `json:"instance_triples"`
	SaturationAdded int    `json:"saturation_added,omitempty"`
}

// StatsResponse is the /statsz payload.
type StatsResponse struct {
	UptimeNs int64      `json:"uptime_ns"`
	Base     GraphStats `json:"base"`
	Instance GraphStats `json:"instance"`
	Registry RegStats   `json:"registry"`
	// BackgroundCompactions counts delta overlays folded into a rebuilt
	// frozen base off the write path (Config.BackgroundCompaction).
	BackgroundCompactions int64 `json:"background_compactions"`
	// Panics counts handler panics contained by the recovery middleware;
	// Shed counts requests refused by admission control (queue timeout
	// past the max-in-flight cap).
	Panics int64 `json:"panics"`
	Shed   int64 `json:"shed"`
	// Workload is the workload profiler's fingerprint-aggregated view of
	// the query mix: per-shape call counts and cost totals plus the
	// top-K shapes by total cost (the full detail lives at GET
	// /debug/workload).
	Workload *workload.Snapshot `json:"workload,omitempty"`
	// Durability describes the data-dir state; absent on in-memory
	// servers.
	Durability *DurabilityStats `json:"durability,omitempty"`
	// Mmap describes the mmap read path of the base graph; absent unless
	// the server serves a mapped snapshot (Config.Mapped / -mmap).
	Mmap *MmapStats `json:"mmap,omitempty"`
	// Endpoints maps route to request metrics.
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// DurabilityStats describes the persistent state of a durable server.
type DurabilityStats struct {
	DataDir string `json:"data_dir"`
	// Checkpoints counts full checkpoints since startup; LastCheckpointNs
	// is the duration of the most recent one; PersistedViews how many
	// maintainable views it captured.
	Checkpoints      int64 `json:"checkpoints"`
	LastCheckpointNs int64 `json:"last_checkpoint_ns"`
	PersistedViews   int   `json:"persisted_views"`
	// WALBatches/WALBytes describe the current write-ahead logs (the
	// replay cost of a crash right now); WALAppendErrors counts writes
	// that could not be made durable; CheckpointErrors counts failed
	// checkpoints (including background-compaction checkpoints, which
	// have no request to report through).
	WALBatches       int64 `json:"wal_batches"`
	WALBytes         int64 `json:"wal_bytes"`
	WALAppendErrors  int64 `json:"wal_append_errors"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
	// WALGroupSyncs/WALGroupCoalesced describe WAL group commit (both
	// zero unless Config.WALGroupCommit / -wal-group-commit): fsyncs
	// issued by commit leaders, and batches made durable by another
	// writer's fsync. batches/syncs is the coalescing factor.
	WALGroupSyncs     int64 `json:"wal_group_syncs,omitempty"`
	WALGroupCoalesced int64 `json:"wal_group_coalesced,omitempty"`
	// Recovered* describe what startup found: whether a snapshot was
	// loaded, and how many WAL batches/triples and registry views were
	// replayed or warmed.
	RecoveredSnap    bool  `json:"recovered_snapshot"`
	RecoveredBatches int64 `json:"recovered_batches"`
	RecoveredTriples int64 `json:"recovered_triples"`
	RecoveredViews   int64 `json:"recovered_views"`
	// Degraded reports read-only mode: writes are refused with 503 while
	// the durability path is broken; DegradedReason names what failed,
	// LastError the most recent failure, DegradedRetries how many re-arm
	// attempts ran, and NextRetryNs when the next one fires.
	Degraded        bool   `json:"degraded"`
	DegradedReason  string `json:"degraded_reason,omitempty"`
	LastError       string `json:"last_error,omitempty"`
	DegradedRetries int64  `json:"degraded_retries,omitempty"`
	NextRetryNs     int64  `json:"next_retry_ns,omitempty"`
}

// MmapStats describes the bigger-than-RAM read path: the mmap'd
// snapshot backing the base graph, its block caches, and the delta
// spill state.
type MmapStats struct {
	// Path is the mapped snapshot file; MappedBytes its mmap'd size —
	// address space, not resident memory, which stays bounded by the
	// block caches plus whatever the page cache keeps warm.
	Path        string `json:"path"`
	MappedBytes int64  `json:"mapped_bytes"`
	// BlockCache*: the column delta-block cache. TermCache*: the
	// front-coded dictionary block cache.
	BlockCacheHits   uint64 `json:"block_cache_hits"`
	BlockCacheMisses uint64 `json:"block_cache_misses"`
	TermCacheHits    uint64 `json:"term_cache_hits"`
	TermCacheMisses  uint64 `json:"term_cache_misses"`
	// DecodeStallNs accumulates wall time spent decoding column blocks
	// on cache misses — the page-in stall proxy: on a cold mapping this
	// is dominated by major faults against the snapshot file.
	DecodeStallNs uint64 `json:"decode_stall_ns"`
	// Spill state of the delta overlay (Config.SpillThreshold).
	SpillRunTriples int    `json:"spill_run_triples"`
	SpillRunBytes   int64  `json:"spill_run_bytes"`
	Spills          uint64 `json:"spills"`
}

// CheckpointResponse reports a POST /snapshot checkpoint.
type CheckpointResponse struct {
	// Triples is the base graph size; DeltaTail the delta triples still
	// pending in the (freshly trimmed) WAL; Views how many materialized
	// views were persisted.
	Triples   int   `json:"triples"`
	DeltaTail int   `json:"delta_tail"`
	Views     int   `json:"views"`
	ElapsedNs int64 `json:"elapsed_ns"`
}

// GraphStats describes one graph.
type GraphStats struct {
	Triples int  `json:"triples"`
	Frozen  bool `json:"frozen"`
	// Epoch is the packed write version (legacy field); BaseEpoch and
	// DeltaSeq decompose it: BaseEpoch counts base rebuilds, DeltaSeq
	// the writes in the current delta overlay, whose size DeltaTriples
	// reports.
	Epoch        uint64 `json:"epoch"`
	BaseEpoch    uint64 `json:"base_epoch"`
	DeltaSeq     uint64 `json:"delta_seq"`
	DeltaTriples int    `json:"delta_triples"`
}

// RegStats describes the view registry.
type RegStats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxBytes      int64 `json:"max_bytes,omitempty"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Coalesced     int64 `json:"coalesced"`
	// CoalescedRewrites counts queries that piggybacked on another
	// client's in-flight rewrite computation.
	CoalescedRewrites int64 `json:"coalesced_rewrites"`
	// Maintained counts delta-feed maintenance applications (views kept
	// alive across writes); LazyUpgrades counts entries upgraded to the
	// maintained form on their first write; NegSkips counts candidate
	// scans skipped by the negative cache.
	Maintained   int64 `json:"maintained"`
	LazyUpgrades int64 `json:"lazy_upgrades"`
	NegSkips     int64 `json:"neg_skips"`
	// Admitted/Refused count cost-based admission decisions (both zero
	// unless the server runs with -admission=cost).
	Admitted   int64            `json:"admitted"`
	Refused    int64            `json:"refused"`
	Strategies map[string]int64 `json:"strategies"`
}

// EndpointStats aggregates per-route request metrics.
type EndpointStats struct {
	Count    int64 `json:"count"`
	Errors   int64 `json:"errors"`
	TotalNs  int64 `json:"total_ns"`
	MaxNs    int64 `json:"max_ns"`
	AvgNs    int64 `json:"avg_ns"`
	LastNs   int64 `json:"last_ns"`
	P50Ns    int64 `json:"p50_ns"`
	P90Ns    int64 `json:"p90_ns"`
	P99Ns    int64 `json:"p99_ns"`
	InFlight int64 `json:"in_flight"`
}

// errorResponse is the uniform error payload.
type errorResponse struct {
	Error string `json:"error"`
}

// requestPrefixes merges the default prefix table with a request's.
func requestPrefixes(extra map[string]string) sparql.Prefixes {
	px := sparql.DefaultPrefixes()
	for name, iri := range extra {
		px[name] = iri
	}
	return px
}

// buildQuery translates a QueryRequest into a validated core.Query with
// all OLAP operations applied.
func buildQuery(req *QueryRequest) (*core.Query, error) {
	px := requestPrefixes(req.Prefixes)
	if req.Classifier == "" || req.Measure == "" {
		return nil, fmt.Errorf("classifier and measure are required")
	}
	c, err := sparql.ParseDatalog(req.Classifier, px)
	if err != nil {
		return nil, fmt.Errorf("classifier: %w", err)
	}
	m, err := sparql.ParseDatalog(req.Measure, px)
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	aggName := req.Agg
	if aggName == "" {
		aggName = "count"
	}
	f, err := agg.ByName(aggName)
	if err != nil {
		return nil, err
	}
	q, err := core.New(c, m, f)
	if err != nil {
		return nil, err
	}
	if len(req.Sigma) > 0 {
		q.Sigma = core.Sigma{}
		for dim, vals := range req.Sigma {
			terms, err := parseTerms(vals, px)
			if err != nil {
				return nil, fmt.Errorf("sigma[%s]: %w", dim, err)
			}
			q.Sigma[dim] = terms
		}
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	for i, op := range req.Ops {
		q, err = applyOp(q, op, px)
		if err != nil {
			return nil, fmt.Errorf("ops[%d] %s: %w", i, op.Op, err)
		}
	}
	return q, nil
}

// applyOp applies one OLAP operation to q.
func applyOp(q *core.Query, op OpSpec, px sparql.Prefixes) (*core.Query, error) {
	switch op.Op {
	case "slice":
		v, err := sparql.ParseTerm(op.Value, px)
		if err != nil {
			return nil, err
		}
		return core.Slice(q, op.Dim, v)
	case "dice":
		restrictions := make(map[string][]rdf.Term, len(op.Restrictions))
		for dim, vals := range op.Restrictions {
			terms, err := parseTerms(vals, px)
			if err != nil {
				return nil, fmt.Errorf("restrictions[%s]: %w", dim, err)
			}
			restrictions[dim] = terms
		}
		return core.Dice(q, restrictions)
	case "drillout":
		return core.DrillOut(q, op.Dims...)
	case "drillin":
		return core.DrillIn(q, op.Dim)
	default:
		return nil, fmt.Errorf("unknown op %q (want slice, dice, drillout or drillin)", op.Op)
	}
}

func parseTerms(vals []string, px sparql.Prefixes) ([]rdf.Term, error) {
	terms := make([]rdf.Term, len(vals))
	for i, v := range vals {
		t, err := sparql.ParseTerm(v, px)
		if err != nil {
			return nil, err
		}
		terms[i] = t
	}
	return terms, nil
}

// buildSchema translates a SchemaRequest into a validated ans.Schema.
func buildSchema(req *SchemaRequest) (*ans.Schema, error) {
	px := requestPrefixes(req.Prefixes)
	if len(req.Nodes) == 0 {
		return nil, fmt.Errorf("schema needs at least one node")
	}
	s := &ans.Schema{Name: req.Name}
	for i, n := range req.Nodes {
		class, err := sparql.ParseTerm(n.Class, px)
		if err != nil {
			return nil, fmt.Errorf("nodes[%d].class: %w", i, err)
		}
		q, err := sparql.ParseDatalog(n.Query, px)
		if err != nil {
			return nil, fmt.Errorf("nodes[%d].query: %w", i, err)
		}
		s.AddNode(class, q)
	}
	for i, e := range req.Edges {
		prop, err := sparql.ParseTerm(e.Property, px)
		if err != nil {
			return nil, fmt.Errorf("edges[%d].property: %w", i, err)
		}
		var from, to rdf.Term
		if e.From != "" {
			if from, err = sparql.ParseTerm(e.From, px); err != nil {
				return nil, fmt.Errorf("edges[%d].from: %w", i, err)
			}
		}
		if e.To != "" {
			if to, err = sparql.ParseTerm(e.To, px); err != nil {
				return nil, fmt.Errorf("edges[%d].to: %w", i, err)
			}
		}
		q, err := sparql.ParseDatalog(e.Query, px)
		if err != nil {
			return nil, fmt.Errorf("edges[%d].query: %w", i, err)
		}
		s.AddEdge(prop, from, to, q)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// renderCube sorts a copy of the cube and renders its cells
// deterministically: term IDs in N-Triples syntax through the
// dictionary, numbers like algebra.Value (integral floats without a
// point). Equal cubes therefore serialize byte-identically regardless of
// the strategy that produced them.
func renderCube(cube *algebra.Relation, d *dict.Dictionary, strategy viewreg.Strategy, elapsedNs int64) *QueryResponse {
	sorted := cube.Clone()
	sorted.Sort()
	rows := make([][]string, len(sorted.Rows))
	for i, row := range sorted.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			if v.Kind == algebra.TermValue {
				if t, ok := d.Decode(v.ID); ok {
					cells[j] = t.String()
					continue
				}
			}
			cells[j] = v.String()
		}
		rows[i] = cells
	}
	return &QueryResponse{
		Strategy:  string(strategy),
		Cols:      append([]string(nil), sorted.Cols...),
		Rows:      rows,
		Cells:     len(rows),
		ElapsedNs: elapsedNs,
	}
}
