package server

// Per-query cost accounting and the workload profiler over HTTP: the
// X-RDFCube-Cost header, ?explain=analyze's cost block, GET
// /debug/workload's fingerprint-aggregated top-K, the /statsz workload
// section, and cost-based admission driven end-to-end through the wire.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"rdfcube/internal/obs/workload"
	"rdfcube/internal/viewreg"
)

// postQueryResp posts a query and returns the decoded response plus the
// raw *http.Response (headers).
func postQueryResp(t *testing.T, client *http.Client, url string, q *QueryRequest) (*QueryResponse, *http.Response) {
	t.Helper()
	raw, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d body %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	return &qr, resp
}

func TestQueryCostHeaderAndWorkload(t *testing.T) {
	ts, baseQuery := startBloggerServer(t, 200)

	qr, resp := postQueryResp(t, ts.Client(), ts.URL+"/query", baseQuery)
	hdr := resp.Header.Get("X-RDFCube-Cost")
	if hdr == "" {
		t.Fatal("response has no X-RDFCube-Cost header")
	}
	for _, field := range []string{"scanned=", "produced=", "seeks=", "bytes=", "wall_ns="} {
		if !strings.Contains(hdr, field) {
			t.Errorf("cost header %q lacks %s", hdr, field)
		}
	}
	if qr.Cost != nil {
		t.Error("cost block attached without ?explain=analyze")
	}

	// explain=analyze carries the same numbers in the response body. A
	// direct evaluation (the first query materialized the view, and a
	// cached answer rightly scans nothing) exercises the full engine.
	direct := cloneQuery(t, baseQuery)
	direct.Direct = true
	qr, _ = postQueryResp(t, ts.Client(), ts.URL+"/query?explain=analyze", direct)
	if qr.Cost == nil || qr.Cost.RowsProduced == 0 || qr.Cost.WallNs == 0 {
		t.Fatalf("explain cost block missing or empty: %+v", qr.Cost)
	}
	if qr.Cost.RowsScanned == 0 {
		t.Fatalf("explain cost block has zero rows scanned: %+v", qr.Cost)
	}

	// The profiler aggregated both calls under the query's canonical
	// fingerprint — the same one viewreg computes.
	q, err := buildQuery(baseQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := fmt.Sprintf("%016x", viewreg.Fingerprint(q))

	wresp, err := ts.Client().Get(ts.URL + "/debug/workload")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var snap workload.Snapshot
	if err := json.NewDecoder(wresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Queries != 2 {
		t.Fatalf("workload queries = %d, want 2", snap.Queries)
	}
	if len(snap.TopK) == 0 {
		t.Fatal("workload top-K is empty after two queries")
	}
	var found *workload.ShapeStats
	for i := range snap.TopK {
		if snap.TopK[i].Fingerprint == wantFP {
			found = &snap.TopK[i]
		}
	}
	if found == nil {
		t.Fatalf("workload top-K has no shape %s (entries: %d)", wantFP, len(snap.TopK))
	}
	if found.Calls != 2 || found.Cost.RowsProduced == 0 {
		t.Fatalf("shape stats: %+v", found)
	}
	if found.ByStrategy["direct"] == 0 {
		t.Fatalf("shape strategies: %+v", found.ByStrategy)
	}

	// /statsz embeds the same snapshot; /metrics exposes the series.
	var stats StatsResponse
	if status, body := getJSON(t, ts.Client(), ts.URL+"/statsz", &stats); status != http.StatusOK {
		t.Fatalf("/statsz: %d %s", status, body)
	}
	if stats.Workload == nil || stats.Workload.Queries != 2 {
		t.Fatalf("statsz workload: %+v", stats.Workload)
	}
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	for _, series := range []string{"rdfcube_workload_queries_total", "rdfcube_workload_rows_scanned_total", "rdfcube_workload_shapes"} {
		if !strings.Contains(string(mbody), series) {
			t.Errorf("/metrics lacks %s", series)
		}
	}
}

// TestCostAdmissionOverHTTP drives -admission=cost end to end: the
// first evaluation of a shape is refused (the profiler has not seen it
// yet), the second is admitted on its observed reuse, the third is
// served from the materialized view.
func TestCostAdmissionOverHTTP(t *testing.T) {
	// A tiny threshold makes the decision depend only on reuse, not on
	// machine speed: refuse at reuse 0, admit at reuse ≥ 1.
	ts, baseQuery := startBloggerServerCfg(t, 200, Config{
		AdmissionCost:      true,
		AdmissionThreshold: 1e-9,
	})

	wantStrategies := []string{"direct", "direct", "cached"}
	for i, want := range wantStrategies {
		qr, _ := postQueryResp(t, ts.Client(), ts.URL+"/query", baseQuery)
		if qr.Strategy != want {
			t.Fatalf("query %d: strategy %q, want %q", i, qr.Strategy, want)
		}
	}
	var stats StatsResponse
	if status, body := getJSON(t, ts.Client(), ts.URL+"/statsz", &stats); status != http.StatusOK {
		t.Fatalf("/statsz: %d %s", status, body)
	}
	if stats.Registry.Refused != 1 || stats.Registry.Admitted != 1 {
		t.Fatalf("admission stats: %d refused / %d admitted, want 1/1",
			stats.Registry.Refused, stats.Registry.Admitted)
	}
	if stats.Registry.Entries != 1 {
		t.Fatalf("registry entries = %d, want 1", stats.Registry.Entries)
	}
}

func getJSON(t *testing.T, client *http.Client, url string, out any) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("unmarshal %s: %v", url, err)
		}
	}
	return resp.StatusCode, string(body)
}
